(** Token-standard interface classification over recovered signatures.

    The headline downstream application of signature recovery (Fröwis
    et al., {e Detecting Token Systems on Ethereum}): match a
    contract's recovered 4-byte ids and parameter types against ERC
    interface specs and report conformance — exact, partial with the
    missing members listed, or no match.

    The matcher is deliberately tolerant of SigRec's §5.2 recovery
    inaccuracies ({!compatible}): a spec [uint256] accepts any
    recovered [uintN], [bytes] accepts [string], and so on — the
    relaxations mirror exactly the information the bytecode cannot
    preserve, never more, so a selector collision with genuinely wrong
    parameter types still counts as a mismatch.

    The classifier consumes neutral {!evidence} values rather than
    engine reports, so the library sits below [Sigrec] in the
    dependency order; [Engine.classify] adapts its reports and adds
    caching on top. *)

(* -- interface specs ---------------------------------------------------- *)

type member = {
  fsig : Abi.Funsig.t;  (** canonical signature of the interface member *)
  required : bool;      (** optional members refine the score only *)
}

type spec = {
  spec_name : string;   (** e.g. ["ERC-20"] *)
  extension : bool;
      (** extensions (Ownable, ERC-165, ERC-2612 permit) are reported
          alongside the winning standard but never compete for it *)
  members : member list;
  wants_mapping : bool;
      (** the standard implies per-holder state, so a recovered
          [mapping] slot corroborates it (typed-state tie-breaker) *)
}

val standards : spec list
(** ERC-20, ERC-721, ERC-1155 — the specs that compete for the
    verdict, in tie-break declaration order. *)

val extensions : spec list
(** ERC-165, Ownable, ERC-2612 — matched and reported, never the
    headline answer. *)

val specs : spec list
(** [standards @ extensions]. *)

val spec_by_name : string -> spec option
val required_members : spec -> member list

(* -- evidence ----------------------------------------------------------- *)

type evidence = {
  ev_selector : string;  (** 4 raw bytes *)
  ev_params : Abi.Abity.t list option;
      (** [None]: the dispatcher proves the selector exists but no
          parameter types were recovered *)
  ev_partial : bool;
      (** the recovery ran out of budget: the types are a lower bound,
          good enough for partial credit, never for an exact match *)
}

val evidence : ?partial:bool -> selector:string -> Abi.Abity.t list -> evidence
val bare : string -> evidence

(* -- matching ----------------------------------------------------------- *)

val compatible : Abi.Abity.t -> Abi.Abity.t -> bool
(** [compatible spec recovered]: equal, or apart only by a §5.2
    recovery tolerance — [uintN] width, [address]/[uint160],
    [bytes]/[string], [bytes32]/[uint256], recursively under arrays. *)

type member_match =
  | Matched of { relaxed : bool }
      (** full recovery, types compatible; [relaxed] when not
          byte-identical to the canonical types *)
  | Corroborated
      (** the member is present on behavioural or partial-recovery
          evidence only — counts toward partial conformance, never
          toward an exact match *)
  | Mismatched  (** selector present with incompatible types *)
  | Missing

type level = Exact | Partial | No_match

val level_to_string : level -> string

type spec_result = {
  spec : spec;
  level : level;
  required_total : int;
  required_matched : int;  (** [Matched] or [Corroborated] required members *)
  optional_matched : int;
  relaxed : int;           (** matched only through {!compatible} *)
  corroborated : int;
  missing : string list;      (** canonical sigs of absent required members *)
  mismatched : string list;   (** selector present, wrong types *)
  layout_support : bool;
      (** [wants_mapping] and the storage layout shows a mapping slot *)
  member_matches : (member * member_match) list;
}

type verdict = {
  best : spec_result option;  (** [None]: no standard reached [Partial] *)
  results : spec_result list;
      (** every standard, scored, best first (ties broken by layout
          support, then declaration order) *)
  matched_extensions : spec_result list;
      (** extensions at [Exact] or [Partial] only *)
  probes_run : int;
}

val label : verdict -> string
(** ["ERC-20"], ["ERC-721 (partial)"], or ["unknown"]. *)

val run :
  ?layout:(unit -> Sigrec_layout.Layout.t) ->
  ?probe:(Abi.Funsig.t -> bool) ->
  ?max_probes:int ->
  evidence list ->
  verdict
(** Score the evidence against every spec. [probe] is consulted for
    near-miss specs only (at most two required members short) on
    members the recovery left bare or missing — at most [max_probes]
    (default 8) calls per classification. [layout] is forced only when
    two standards tie on level and required-match ratio — the one case
    where a mapping slot breaks the tie — so callers can pass the full
    storage-layout recovery without paying for it on every
    contract. *)

val probe_dispatch : code:string -> Abi.Funsig.t -> bool
(** Behavioural corroboration: execute [code] with canonical calldata
    for the member and with two junk selectors, comparing halt
    fingerprints (outcome and step count). The member counts as
    dispatched when the junk runs agree with each other (the fallback
    is stable) and the member's run diverges from it.
    Deterministic: argument values come from a fixed-seed generator.
    [probe_dispatch ~code] computes the fallback trace once and shares
    it across every probe of the same closure, so partially apply it
    per contract. *)

val pp : Format.formatter -> verdict -> unit
