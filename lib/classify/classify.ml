module Abity = Abi.Abity
module Funsig = Abi.Funsig
module Layout = Sigrec_layout.Layout

(* -- interface specs ---------------------------------------------------- *)

type member = { fsig : Funsig.t; required : bool }

type spec = {
  spec_name : string;
  extension : bool;
  members : member list;
  wants_mapping : bool;
}

let req name params = { fsig = Funsig.make name params; required = true }
let opt name params = { fsig = Funsig.make name params; required = false }

open Abity

(* Selectors are always computed from the canonical signature via
   [Funsig.selector]; no 4-byte constant is ever written down. *)
let erc20 =
  {
    spec_name = "ERC-20";
    extension = false;
    wants_mapping = true;
    members =
      [
        req "totalSupply" [];
        req "balanceOf" [ Address ];
        req "transfer" [ Address; Uint 256 ];
        req "transferFrom" [ Address; Address; Uint 256 ];
        req "approve" [ Address; Uint 256 ];
        req "allowance" [ Address; Address ];
        opt "name" [];
        opt "symbol" [];
        opt "decimals" [];
      ];
  }

let erc721 =
  {
    spec_name = "ERC-721";
    extension = false;
    wants_mapping = true;
    members =
      [
        req "balanceOf" [ Address ];
        req "ownerOf" [ Uint 256 ];
        req "safeTransferFrom" [ Address; Address; Uint 256; Bytes ];
        req "safeTransferFrom" [ Address; Address; Uint 256 ];
        req "transferFrom" [ Address; Address; Uint 256 ];
        req "approve" [ Address; Uint 256 ];
        req "setApprovalForAll" [ Address; Bool ];
        req "getApproved" [ Uint 256 ];
        req "isApprovedForAll" [ Address; Address ];
        req "supportsInterface" [ Bytes_n 4 ];
        opt "name" [];
        opt "symbol" [];
        opt "tokenURI" [ Uint 256 ];
      ];
  }

let erc1155 =
  {
    spec_name = "ERC-1155";
    extension = false;
    wants_mapping = true;
    members =
      [
        req "safeTransferFrom" [ Address; Address; Uint 256; Uint 256; Bytes ];
        req "safeBatchTransferFrom"
          [ Address; Address; Darray (Uint 256); Darray (Uint 256); Bytes ];
        req "balanceOf" [ Address; Uint 256 ];
        req "balanceOfBatch" [ Darray Address; Darray (Uint 256) ];
        req "setApprovalForAll" [ Address; Bool ];
        req "isApprovedForAll" [ Address; Address ];
        req "supportsInterface" [ Bytes_n 4 ];
        opt "uri" [ Uint 256 ];
      ];
  }

let erc165 =
  {
    spec_name = "ERC-165";
    extension = true;
    wants_mapping = false;
    members = [ req "supportsInterface" [ Bytes_n 4 ] ];
  }

let ownable =
  {
    spec_name = "Ownable";
    extension = true;
    wants_mapping = false;
    members =
      [
        req "owner" [];
        req "transferOwnership" [ Address ];
        req "renounceOwnership" [];
      ];
  }

let erc2612 =
  {
    spec_name = "ERC-2612";
    extension = true;
    wants_mapping = true;
    members =
      [
        req "permit"
          [
            Address; Address; Uint 256; Uint 256; Uint 8; Bytes_n 32;
            Bytes_n 32;
          ];
        req "nonces" [ Address ];
        req "DOMAIN_SEPARATOR" [];
      ];
  }

let standards = [ erc20; erc721; erc1155 ]
let extensions = [ erc165; ownable; erc2612 ]
let specs = standards @ extensions

let spec_by_name name =
  List.find_opt (fun s -> s.spec_name = name) specs

let required_members spec = List.filter (fun m -> m.required) spec.members

(* -- evidence ----------------------------------------------------------- *)

type evidence = {
  ev_selector : string;
  ev_params : Abity.t list option;
  ev_partial : bool;
}

let evidence ?(partial = false) ~selector params =
  { ev_selector = selector; ev_params = Some params; ev_partial = partial }

let bare selector =
  { ev_selector = selector; ev_params = None; ev_partial = false }

(* -- type-compatibility relaxation -------------------------------------- *)

(* Exactly the §5.2 information losses: width of an integer after a
   conversion, address vs uint160, bytes vs string (indistinguishable
   without a byte access), bytes32 vs uint256 (same word, different
   alignment convention when the word is never sliced). Anything else —
   address where an integer was recovered, a different arity, a
   different array shape — is a real mismatch. *)
let rec compatible spec got =
  Abity.equal spec got
  ||
  match (spec, got) with
  | Uint _, Uint _ | Int _, Int _ -> true
  | Address, Uint 160 | Uint 160, Address -> true
  | Bytes, String_t | String_t, Bytes -> true
  | Bytes_n 32, Uint 256 | Uint 256, Bytes_n 32 -> true
  | Darray a, Darray b -> compatible a b
  | Sarray (a, n), Sarray (b, m) -> n = m && compatible a b
  | _ -> false

(* -- matching ----------------------------------------------------------- *)

type member_match =
  | Matched of { relaxed : bool }
  | Corroborated
  | Mismatched
  | Missing

type level = Exact | Partial | No_match

let level_to_string = function
  | Exact -> "exact"
  | Partial -> "partial"
  | No_match -> "no match"

type spec_result = {
  spec : spec;
  level : level;
  required_total : int;
  required_matched : int;
  optional_matched : int;
  relaxed : int;
  corroborated : int;
  missing : string list;
  mismatched : string list;
  layout_support : bool;
  member_matches : (member * member_match) list;
}

type verdict = {
  best : spec_result option;
  results : spec_result list;
  matched_extensions : spec_result list;
  probes_run : int;
}

let label v =
  match v.best with
  | None -> "unknown"
  | Some r -> (
    match r.level with
    | Exact -> r.spec.spec_name
    | Partial -> r.spec.spec_name ^ " (partial)"
    | No_match -> "unknown")

(* Member selectors are fixed at module initialization: Keccak-256 per
   member per classified contract would dominate the whole scoring
   pass. *)
let spec_table : (spec * (member * string) list) list =
  List.map
    (fun s -> (s, List.map (fun m -> (m, Funsig.selector m.fsig)) s.members))
    specs

let members_with_selectors spec = List.assq spec spec_table

let match_member evs (m, selector) =
  match Hashtbl.find_opt evs selector with
  | None -> Missing
  | Some { ev_params = None; _ } ->
    (* dispatcher entry without types: presence evidence only *)
    Corroborated
  | Some { ev_params = Some got; ev_partial = true; _ } ->
    (* a truncated recovery's parameter list is a lower bound: compare
       only the recovered prefix, and lend partial credit, never an
       exact match *)
    let rec prefix_ok want got =
      match (want, got) with
      | _, [] -> true
      | [], _ :: _ -> false
      | w :: want, g :: got -> compatible w g && prefix_ok want got
    in
    if prefix_ok m.fsig.Funsig.params got then Corroborated else Mismatched
  | Some { ev_params = Some got; ev_partial = false; _ } ->
    let want = m.fsig.Funsig.params in
    if
      List.length want = List.length got
      && List.for_all2 compatible want got
    then Matched { relaxed = not (List.for_all2 Abity.equal want got) }
    else Mismatched

(* Near-miss threshold for behavioural corroboration: exactly one
   required member short of full conformance — the one genuinely
   ambiguous boundary, where recovery noise and real absence read the
   same. Two or more members short is partial whatever a probe says
   (corroboration never upgrades to exact), so probing there would
   burn interpreter time without moving the verdict. *)
let near_miss ~present ~total = total - present = 1 && present > 0

let score_spec ~probe ~probe_budget ~probes_run spec matches =
  let required = List.filter (fun (m, _) -> m.required) matches in
  let required_total = List.length required in
  let present =
    List.length
      (List.filter
         (fun (_, mm) ->
           match mm with Matched _ | Corroborated -> true | _ -> false)
         required)
  in
  (* behavioural corroboration for the members recovery left open *)
  let matches =
    match probe with
    | Some probe when near_miss ~present ~total:required_total ->
      List.map
        (fun (m, mm) ->
          match mm with
          | Missing when m.required && !probe_budget > 0 ->
            decr probe_budget;
            incr probes_run;
            if probe m.fsig then (m, Corroborated) else (m, mm)
          | _ -> (m, mm))
        matches
    | _ -> matches
  in
  let required = List.filter (fun (m, _) -> m.required) matches in
  let count p = List.length (List.filter p matches) in
  let required_matched =
    List.length
      (List.filter
         (fun (_, mm) ->
           match mm with Matched _ | Corroborated -> true | _ -> false)
         required)
  in
  let fully_matched =
    List.for_all
      (fun (_, mm) -> match mm with Matched _ -> true | _ -> false)
      required
  in
  let level =
    if required_total > 0 && fully_matched then Exact
    else if required_matched > 0 && 2 * required_matched >= required_total
    then Partial
    else No_match
  in
  {
    spec;
    level;
    required_total;
    required_matched;
    optional_matched =
      count (fun (m, mm) ->
          (not m.required)
          && match mm with Matched _ | Corroborated -> true | _ -> false);
    relaxed =
      count (fun (_, mm) ->
          match mm with Matched { relaxed } -> relaxed | _ -> false);
    corroborated =
      count (fun (_, mm) -> match mm with Corroborated -> true | _ -> false);
    missing =
      List.filter_map
        (fun (m, mm) ->
          if m.required && mm = Missing then Some (Funsig.canonical m.fsig)
          else None)
        matches;
    mismatched =
      List.filter_map
        (fun (m, mm) ->
          if m.required && mm = Mismatched then
            Some (Funsig.canonical m.fsig)
          else None)
        matches;
    layout_support = false;
    member_matches = matches;
  }

let level_rank = function Exact -> 2 | Partial -> 1 | No_match -> 0

(* [a] strictly better than [b]: level, then required-match ratio (by
   cross-multiplication), then absolute match count, then typed-state
   support. Declaration order breaks exact ties because the fold keeps
   the earlier result unless [b] strictly improves on it. *)
let better a b =
  let la = level_rank a.level and lb = level_rank b.level in
  if la <> lb then la > lb
  else
    let ra = a.required_matched * b.required_total
    and rb = b.required_matched * a.required_total in
    if ra <> rb then ra > rb
    else if a.required_matched <> b.required_matched then
      a.required_matched > b.required_matched
    else a.layout_support && not b.layout_support

let run ?layout ?probe ?(max_probes = 8) evs =
  let probes_run = ref 0 in
  let probe_budget = ref max_probes in
  (* memoize probes by selector: shared members (balanceOf, approve...)
     appear in several specs and must not pay twice *)
  let probe =
    Option.map
      (fun p ->
        let memo = Hashtbl.create 8 in
        fun fsig ->
          let key = Funsig.selector fsig in
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
            let r = p fsig in
            Hashtbl.add memo key r;
            r)
      probe
  in
  let index = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem index e.ev_selector) then
        Hashtbl.add index e.ev_selector e)
    evs;
  let score spec =
    let matches =
      List.map
        (fun ms -> (fst ms, match_member index ms))
        (members_with_selectors spec)
    in
    score_spec ~probe ~probe_budget ~probes_run spec matches
  in
  let std_results = List.map score standards in
  let ext_results = List.map score extensions in
  (* The storage layout is a tie-breaker, so it is only forced when
     two standards actually tie on level and required-match ratio —
     the one case where {!better} consults [layout_support]. Any
     single-winner verdict, exact or partial, never pays for the
     layout pass. *)
  let contenders =
    List.filter (fun r -> level_rank r.level >= 1) std_results
  in
  let need_layout =
    match contenders with
    | [] | [ _ ] -> false
    | r :: rest ->
      List.exists
        (fun r' ->
          level_rank r'.level = level_rank r.level
          && r'.required_matched * r.required_total
             = r.required_matched * r'.required_total)
        rest
  in
  let mapping_present =
    if need_layout then
      match layout with
      | None -> false
      | Some force ->
        let l = force () in
        List.exists
          (fun (e : Layout.entry) -> e.Layout.decl = Layout.Mapping)
          l.Layout.entries
    else false
  in
  let support r =
    if mapping_present && r.spec.wants_mapping && level_rank r.level >= 1
    then { r with layout_support = true }
    else r
  in
  let std_results = List.map support std_results in
  let ext_results = List.map support ext_results in
  let best =
    List.fold_left
      (fun acc r ->
        if level_rank r.level >= 1 then
          match acc with
          | None -> Some r
          | Some b -> if better r b then Some r else acc
        else acc)
      None std_results
  in
  let std_sorted =
    List.stable_sort
      (fun a b ->
        Stdlib.compare
          (level_rank b.level, b.required_matched * a.required_total)
          (level_rank a.level, a.required_matched * b.required_total))
      std_results
  in
  {
    best;
    results = std_sorted;
    matched_extensions =
      List.filter (fun r -> level_rank r.level >= 1) ext_results;
    probes_run = !probes_run;
  }

(* -- behavioural corroboration ------------------------------------------ *)

(* Deterministic calldata: the argument values come from a generator
   seeded with the selector bytes, so the same member probes the same
   way in every run and on every domain. *)
let probe_calldata fsig =
  let selector = Funsig.selector fsig in
  let seed =
    Array.init 4 (fun i -> Char.code selector.[i]) |> Array.append [| 0x51672ec |]
  in
  let rng = Random.State.make seed in
  let params = fsig.Funsig.params in
  let values = List.map (Abi.Valgen.value rng) params in
  Abi.Encode.encode_call ~selector params values

let xor_selector mask s = String.map (fun c -> Char.chr (Char.code c lxor mask)) s

let probe_dispatch ~code =
  (* The fallback trace is a property of the contract, not of the
     probed member — junk selectors all fall through the dispatcher the
     same way — so one probe closure computes it once and every further
     probe of the same contract pays a single execution. *)
  let fallback = ref None in
  fun fsig ->
    let calldata = probe_calldata fsig in
    (* the halt fingerprint — outcome plus step count — separates "fell
       through to the fallback" from "dispatched into a body" exactly as
       well as a full pc trace, without recording one *)
    let trace calldata =
      let r = Evm.Interp.execute ~code ~calldata () in
      (r.Evm.Interp.outcome, r.Evm.Interp.steps)
    in
    let fb =
      match !fallback with
      | Some fb -> fb
      | None ->
        let args = String.sub calldata 4 (String.length calldata - 4) in
        let selector = String.sub calldata 0 4 in
        let junk1 = xor_selector 0xff selector
        and junk2 = xor_selector 0x5a selector in
        let fallback1 = trace (junk1 ^ args)
        and fallback2 = trace (junk2 ^ args) in
        (* an unstable fallback means the junk selectors hit real
           functions — every probe of this contract is inconclusive,
           never a confirmation *)
        let fb = if fallback1 = fallback2 then Some fallback1 else None in
        fallback := Some fb;
        fb
    in
    match fb with None -> false | Some f -> trace calldata <> f

(* -- rendering ---------------------------------------------------------- *)

let pp fmt v =
  Format.fprintf fmt "@[<v>classification: %s@," (label v);
  List.iter
    (fun r ->
      if level_rank r.level >= 1 then begin
        Format.fprintf fmt "  %s: %s (%d/%d required, %d optional%s%s)@,"
          r.spec.spec_name
          (level_to_string r.level)
          r.required_matched r.required_total r.optional_matched
          (if r.relaxed > 0 then
             Printf.sprintf ", %d relaxed" r.relaxed
           else "")
          (if r.layout_support then ", mapping state" else "");
        List.iter
          (fun sig_ -> Format.fprintf fmt "    missing: %s@," sig_)
          r.missing;
        List.iter
          (fun sig_ -> Format.fprintf fmt "    mismatched: %s@," sig_)
          r.mismatched
      end)
    v.results;
  (match v.matched_extensions with
  | [] -> ()
  | exts ->
    Format.fprintf fmt "  extensions: %s@,"
      (String.concat ", "
         (List.map
            (fun r ->
              Printf.sprintf "%s (%s)" r.spec.spec_name
                (level_to_string r.level))
            exts)));
  if v.probes_run > 0 then
    Format.fprintf fmt "  behavioural probes: %d@," v.probes_run;
  Format.fprintf fmt "@]"
