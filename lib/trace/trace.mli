(** Low-overhead structured telemetry for the recovery pipeline.

    Every layer of the pipeline (engine, lift, abstract interpretation,
    symbolic execution, rule matching, lint) emits timestamped events
    into a per-domain ring buffer. Tracing is globally off by default;
    the disabled path is a single atomic load and allocates nothing, so
    instrumentation can stay in the hot paths permanently.

    Two usage idioms:

    - coarse call sites (CLI, bench, per-contract work) use
      {!with_span}, which wraps a closure;
    - hot call sites use the allocation-free explicit pattern:

    {[
      let t0 = if Trace.enabled () then Trace.now_us () else 0. in
      ... work ...
      if Trace.enabled () then
        Trace.complete Trace.Symex "run" ~t0_us:t0 [ ("paths", Trace.Int n) ]
    ]}

    where the argument list is only constructed when tracing is on.

    Buffers are domain-local ([Domain.DLS]); a buffer is registered in a
    global registry on first use, so events survive the worker domain
    that produced them and {!collect} sees every domain's stream. When a
    ring wraps, the oldest events are dropped and counted ({!dropped}).

    Timestamps are microseconds since {!enable} (wall clock), which is
    what the Chrome [trace_event] format wants; {!now_ns} is a
    monotonic-enough integer nanosecond reading for latency deltas that
    must work with tracing off. *)

(** Pipeline phase taxonomy. One per architectural layer; rendered as
    the Chrome trace category. *)
type phase =
  | Engine  (** batch engine: per-input analysis, cache, dedup *)
  | Lift    (** disassembly + CFG construction *)
  | Absint  (** static abstract interpretation fixpoints *)
  | Symex   (** TASE symbolic execution *)
  | Rules   (** R1-R31 matching: attempted / fired / rejected *)
  | Lint    (** differential lint verdicts *)
  | Layout  (** storage-layout recovery passes *)
  | Bench   (** harness-level sections *)

val phase_name : phase -> string

type value = Int of int | Str of string | Bool of bool | Float of float
type arg = string * value

type kind =
  | Complete  (** a span: [ts_us] start, [dur_us] duration *)
  | Instant   (** a point event *)
  | Counter   (** a sampled counter value (single [Int] arg) *)

type event = {
  ts_us : float;   (** µs since the {!enable} epoch *)
  dur_us : float;  (** duration for [Complete]; [0.] otherwise *)
  dom : int;       (** numeric id of the emitting domain *)
  phase : phase;
  name : string;
  kind : kind;
  args : arg list;
}

type config = {
  capacity : int;
      (** ring-buffer slots per domain (default 65536) *)
  sample_every : int;
      (** symbolic-execution step-sampling period; rounded up to a
          power of two (default 1024) *)
}

val default_config : config

val enable : ?config:config -> unit -> unit
(** Reset all buffers, set the timestamp epoch to now, start recording. *)

val disable : unit -> unit
(** Stop recording. Buffered events remain available to {!collect}. *)

val enabled : unit -> bool
(** One atomic load; the guard for every hot-path emission. True when
    ring recording is on {e or} a span observer is installed — either
    consumer needs the call sites to take their instrumented paths. *)

val recording : unit -> bool
(** Ring recording specifically (what {!enable}/{!disable} toggle),
    independent of any installed span observer. *)

val set_observer : (phase -> string -> float -> unit) option -> unit
(** Install (or remove, with [None]) the span-close observer: called as
    [f phase name dur_us] every time a span completes — {!complete} or
    the end of {!with_span} — whether or not ring recording is on.
    Installing one flips {!enabled} so guarded call sites reach the
    span close; instants and counters stay ring-only and still allocate
    nothing. One slot, last writer wins: this is the metrics layer's
    histogram feed, not a general subscription surface. *)

val sample_mask : unit -> int
(** [sample_every - 1] (a power-of-two mask); hot loops test
    [steps land sample_mask () = 0] before even reading {!enabled}. *)

val now_us : unit -> float
(** Microseconds since the {!enable} epoch. *)

val now_ns : unit -> int
(** Integer nanoseconds since process start — immediate (no boxing),
    always available, for latency fields that exist without tracing. *)

val instant : phase -> string -> arg list -> unit
val counter : phase -> string -> int -> unit

val complete : phase -> string -> t0_us:float -> arg list -> unit
(** Record a span that started at [t0_us] and ends now. *)

val with_span : phase -> ?args:(unit -> arg list) -> string -> (unit -> 'a) -> 'a
(** [with_span phase name f] runs [f] inside a span; [args] is only
    evaluated (at span end) when tracing is on. The span is recorded
    even when [f] raises. *)

val collect : unit -> event list
(** Every buffered event from every domain that recorded any, in
    timestamp order. Safe to call with tracing on or off (workers must
    have been joined). *)

val dropped : unit -> int
(** Events lost to ring wrap-around since the last {!enable}. *)

val reset : unit -> unit
(** Drop all buffered events and the drop counts; keep enabled state. *)
