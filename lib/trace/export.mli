(** Render a collected event stream for humans and machines.

    Three formats, one input ({!Trace.collect}):

    - {!to_chrome}: the Chrome [trace_event] JSON array format; load
      the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
      Perfetto}. Spans are ["ph":"X"] complete events, instants
      ["ph":"i"], counters ["ph":"C"]; the domain id becomes the
      [tid], the phase the [cat].
    - {!to_jsonl}: one self-contained JSON object per line with a
      stable key order, for diffing two runs with line-oriented tools.
      {!of_jsonl} parses it back losslessly (timestamps are printed
      with round-trip precision).
    - {!summary}: a human tree — per-phase/per-span-name latency
      aggregates with duration histograms, a per-rule
      fired/rejected table, and final counter values. *)

val to_chrome : Trace.event list -> string
(** A complete [{"traceEvents":[...]}] document. *)

val to_jsonl : Trace.event list -> string
(** One JSON object per event, newline-terminated lines. *)

val of_jsonl : string -> Trace.event list
(** Parse {!to_jsonl} output back into events.
    @raise Failure on malformed input. *)

val summary : Trace.event list -> string
(** The human-readable aggregate tree. *)
