(* -- JSON building blocks --------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

(* A float that parses back to the same value and is unambiguously a
   JSON number with a fractional part (so [of_jsonl] can tell it from
   an int). *)
let float_rt f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ ".0"

let value_json = function
  | Trace.Int i -> string_of_int i
  | Trace.Str s -> quote s
  | Trace.Bool b -> string_of_bool b
  | Trace.Float f -> float_rt f

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> quote k ^ ":" ^ value_json v) args)
  ^ "}"

let kind_name = function
  | Trace.Complete -> "span"
  | Trace.Instant -> "instant"
  | Trace.Counter -> "counter"

(* -- Chrome trace_event ------------------------------------------------ *)

let chrome_event (e : Trace.event) =
  let common =
    Printf.sprintf "\"name\":%s,\"cat\":%s,\"pid\":1,\"tid\":%d,\"ts\":%.3f"
      (quote e.Trace.name)
      (quote (Trace.phase_name e.Trace.phase))
      e.Trace.dom e.Trace.ts_us
  in
  match e.Trace.kind with
  | Trace.Complete ->
    Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%.3f,\"args\":%s}" common
      e.Trace.dur_us (args_json e.Trace.args)
  | Trace.Instant ->
    Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\",\"args\":%s}" common
      (args_json e.Trace.args)
  | Trace.Counter ->
    Printf.sprintf "{%s,\"ph\":\"C\",\"args\":%s}" common
      (args_json e.Trace.args)

let to_chrome events =
  "{\"traceEvents\":[\n"
  ^ String.concat ",\n" (List.map chrome_event events)
  ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

(* -- JSONL ------------------------------------------------------------- *)

let jsonl_event (e : Trace.event) =
  Printf.sprintf
    "{\"ts_us\":%s,\"dur_us\":%s,\"domain\":%d,\"phase\":%s,\"name\":%s,\
     \"kind\":%s,\"args\":%s}"
    (float_rt e.Trace.ts_us) (float_rt e.Trace.dur_us) e.Trace.dom
    (quote (Trace.phase_name e.Trace.phase))
    (quote e.Trace.name)
    (quote (kind_name e.Trace.kind))
    (args_json e.Trace.args)

let to_jsonl events =
  String.concat "" (List.map (fun e -> jsonl_event e ^ "\n") events)

(* -- JSONL parsing (round-trip) ---------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          advance ();
          if !pos + 3 >= n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 3;
          (* the emitter only escapes control bytes, so this is ASCII *)
          Buffer.add_char buf (Char.chr (code land 0xff))
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      Jfloat (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Jint i
      | None -> Jfloat (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jlist []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jlist (items [])
      end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let phase_of_name = function
  | "engine" -> Trace.Engine
  | "lift" -> Trace.Lift
  | "absint" -> Trace.Absint
  | "symex" -> Trace.Symex
  | "rules" -> Trace.Rules
  | "lint" -> Trace.Lint
  | "layout" -> Trace.Layout
  | "bench" -> Trace.Bench
  | p -> raise (Bad ("unknown phase " ^ p))

let kind_of_name = function
  | "span" -> Trace.Complete
  | "instant" -> Trace.Instant
  | "counter" -> Trace.Counter
  | k -> raise (Bad ("unknown kind " ^ k))

let event_of_json j =
  let field obj k =
    match List.assoc_opt k obj with
    | Some v -> v
    | None -> raise (Bad ("missing field " ^ k))
  in
  match j with
  | Jobj obj ->
    let num = function
      | Jint i -> float_of_int i
      | Jfloat f -> f
      | _ -> raise (Bad "expected number")
    in
    let str = function
      | Jstr s -> s
      | _ -> raise (Bad "expected string")
    in
    let args =
      match field obj "args" with
      | Jobj kvs ->
        List.map
          (fun (k, v) ->
            ( k,
              match v with
              | Jint i -> Trace.Int i
              | Jfloat f -> Trace.Float f
              | Jstr s -> Trace.Str s
              | Jbool b -> Trace.Bool b
              | _ -> raise (Bad "unsupported arg value") ))
          kvs
      | _ -> raise (Bad "args must be an object")
    in
    {
      Trace.ts_us = num (field obj "ts_us");
      dur_us = num (field obj "dur_us");
      dom = (match field obj "domain" with
            | Jint i -> i
            | _ -> raise (Bad "domain must be an int"));
      phase = phase_of_name (str (field obj "phase"));
      name = str (field obj "name");
      kind = kind_of_name (str (field obj "kind"));
      args;
    }
  | _ -> raise (Bad "event must be an object")

let of_jsonl text =
  try
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line -> event_of_json (parse_json line))
  with Bad msg -> failwith ("Export.of_jsonl: " ^ msg)

(* -- human summary ----------------------------------------------------- *)

type span_agg = {
  mutable count : int;
  mutable total_us : float;
  mutable max_us : float;
  buckets : int array; (* <10us, <100us, <1ms, <10ms, >=10ms *)
}

let bucket_labels = [| "<10us"; "<100us"; "<1ms"; "<10ms"; ">=10ms" |]

let bucket_of dur =
  if dur < 10. then 0
  else if dur < 100. then 1
  else if dur < 1_000. then 2
  else if dur < 10_000. then 3
  else 4

let rule_number name =
  if String.length name > 1 && name.[0] = 'R' then
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some n -> n
    | None -> max_int
  else max_int

let summary events =
  let buf = Buffer.create 1024 in
  let spans : (string * string, span_agg) Hashtbl.t = Hashtbl.create 32 in
  let rules : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let counters : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Complete ->
        let k = (Trace.phase_name e.Trace.phase, e.Trace.name) in
        let agg =
          match Hashtbl.find_opt spans k with
          | Some a -> a
          | None ->
            let a =
              { count = 0; total_us = 0.; max_us = 0.; buckets = Array.make 5 0 }
            in
            Hashtbl.replace spans k a;
            a
        in
        agg.count <- agg.count + 1;
        agg.total_us <- agg.total_us +. e.Trace.dur_us;
        if e.Trace.dur_us > agg.max_us then agg.max_us <- e.Trace.dur_us;
        let b = bucket_of e.Trace.dur_us in
        agg.buckets.(b) <- agg.buckets.(b) + 1
      | Trace.Instant when e.Trace.phase = Trace.Rules ->
        let fired =
          match List.assoc_opt "fired" e.Trace.args with
          | Some (Trace.Bool b) -> b
          | _ -> true
        in
        let f, r =
          Option.value ~default:(0, 0) (Hashtbl.find_opt rules e.Trace.name)
        in
        Hashtbl.replace rules e.Trace.name
          (if fired then (f + 1, r) else (f, r + 1))
      | Trace.Counter ->
        let k = (Trace.phase_name e.Trace.phase, e.Trace.name) in
        (match e.Trace.args with
        | (_, Trace.Int v) :: _ -> Hashtbl.replace counters k v
        | _ -> ())
      | Trace.Instant -> ())
    events;
  Buffer.add_string buf "trace summary\n";
  Buffer.add_string buf
    (Printf.sprintf "  events: %d\n" (List.length events));
  (* span tree: phases in pipeline order, names by total time *)
  let phase_order =
    [ "engine"; "lift"; "absint"; "symex"; "rules"; "lint"; "layout"; "bench" ]
  in
  List.iter
    (fun phase ->
      let rows =
        Hashtbl.fold
          (fun (p, name) agg acc -> if p = phase then (name, agg) :: acc else acc)
          spans []
        |> List.sort (fun (_, a) (_, b) -> Float.compare b.total_us a.total_us)
      in
      if rows <> [] then begin
        Buffer.add_string buf (Printf.sprintf "  %s\n" phase);
        List.iter
          (fun (name, agg) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "    %-18s %6d spans  total %9.1f us  mean %8.1f us  max \
                  %8.1f us\n"
                 name agg.count agg.total_us
                 (agg.total_us /. float_of_int (Stdlib.max 1 agg.count))
                 agg.max_us);
            let hist =
              String.concat "  "
                (List.filteri
                   (fun i _ -> agg.buckets.(i) > 0)
                   (Array.to_list
                      (Array.mapi
                         (fun i label ->
                           Printf.sprintf "%s:%d" label agg.buckets.(i))
                         bucket_labels)))
            in
            if hist <> "" then
              Buffer.add_string buf (Printf.sprintf "      latency  %s\n" hist))
          rows
      end)
    phase_order;
  let rule_rows =
    Hashtbl.fold (fun name fr acc -> (name, fr) :: acc) rules []
    |> List.sort (fun (a, _) (b, _) ->
           compare (rule_number a, a) (rule_number b, b))
  in
  if rule_rows <> [] then begin
    Buffer.add_string buf "  rules (fired / rejected)\n";
    let maxf =
      List.fold_left (fun acc (_, (f, _)) -> Stdlib.max acc f) 1 rule_rows
    in
    List.iter
      (fun (name, (f, r)) ->
        Buffer.add_string buf
          (Printf.sprintf "    %-4s %6d / %-6d %s\n" name f r
             (String.make (40 * f / maxf) '#')))
      rule_rows
  end;
  let counter_rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
    |> List.sort compare
  in
  if counter_rows <> [] then begin
    Buffer.add_string buf "  counters (last value)\n";
    List.iter
      (fun ((phase, name), v) ->
        Buffer.add_string buf (Printf.sprintf "    %s/%-16s %d\n" phase name v))
      counter_rows
  end;
  Buffer.contents buf
