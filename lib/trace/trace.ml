type phase = Engine | Lift | Absint | Symex | Rules | Lint | Layout | Bench

let phase_name = function
  | Engine -> "engine"
  | Lift -> "lift"
  | Absint -> "absint"
  | Symex -> "symex"
  | Rules -> "rules"
  | Lint -> "lint"
  | Layout -> "layout"
  | Bench -> "bench"

type value = Int of int | Str of string | Bool of bool | Float of float
type arg = string * value
type kind = Complete | Instant | Counter

type event = {
  ts_us : float;
  dur_us : float;
  dom : int;
  phase : phase;
  name : string;
  kind : kind;
  args : arg list;
}

type config = { capacity : int; sample_every : int }

let default_config = { capacity = 65536; sample_every = 1024 }

(* -- global switches ------------------------------------------------- *)

(* Two consumers share the span instrumentation: the ring buffers
   (tracing proper, gated by [on]) and an optional span-close observer
   (the metrics layer's histogram feed). [active] caches their
   disjunction so the hot-path guard stays a single atomic load
   whichever combination is live. *)
let on = Atomic.make false

let observer : (phase -> string -> float -> unit) option Atomic.t =
  Atomic.make None

let active = Atomic.make false

let refresh_active () =
  Atomic.set active (Atomic.get on || Atomic.get observer <> None)

let enabled () = Atomic.get active
let recording () = Atomic.get on

let set_observer f =
  Atomic.set observer f;
  refresh_active ()

(* Plain (non-atomic) reads: a torn read of an immutable int is
   impossible, and these only change under [enable]. *)
let capacity = ref default_config.capacity
let mask = ref (default_config.sample_every - 1)
let sample_mask () = !mask

(* Epoch for [now_us]: wall clock at [enable]. [epoch0] anchors
   [now_ns] at module load so the float->int conversion keeps full
   precision over any realistic process lifetime. *)
let epoch0 = Unix.gettimeofday ()
let epoch = Atomic.make epoch0
let now_ns () = int_of_float ((Unix.gettimeofday () -. epoch0) *. 1e9)
let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

(* -- per-domain ring buffers ------------------------------------------ *)

let dummy =
  {
    ts_us = 0.;
    dur_us = 0.;
    dom = 0;
    phase = Engine;
    name = "";
    kind = Instant;
    args = [];
  }

type buffer = {
  dom_id : int;
  mutable ring : event array;
  mutable next : int; (* monotone write count; slot = next mod capacity *)
  mutable lost : int;
}

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let make_buffer () =
  let b =
    {
      dom_id = (Domain.self () :> int);
      ring = Array.make !capacity dummy;
      next = 0;
      lost = 0;
    }
  in
  Mutex.protect registry_lock (fun () -> registry := b :: !registry);
  b

let key = Domain.DLS.new_key make_buffer
let buffer () = Domain.DLS.get key

let push b ev =
  let cap = Array.length b.ring in
  if b.next >= cap then b.lost <- b.lost + 1;
  b.ring.(b.next mod cap) <- ev;
  b.next <- b.next + 1

let record phase name kind ~ts ~dur args =
  let b = buffer () in
  push b
    { ts_us = ts; dur_us = dur; dom = b.dom_id; phase; name; kind; args }

(* -- emission --------------------------------------------------------- *)

(* Instants and counters only exist for the rings, so they gate on
   [recording]: with just the observer live, the probe costs the same
   two loads and still allocates nothing. *)
let instant phase name args =
  if recording () then record phase name Instant ~ts:(now_us ()) ~dur:0. args

let counter phase name v =
  if recording () then
    record phase name Counter ~ts:(now_us ()) ~dur:0. [ (name, Int v) ]

let complete phase name ~t0_us args =
  if recording () then
    record phase name Complete ~ts:t0_us ~dur:(now_us () -. t0_us) args;
  match Atomic.get observer with
  | Some f -> f phase name (now_us () -. t0_us)
  | None -> ()

let with_span phase ?args name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      let a = match args with None -> [] | Some g -> g () in
      complete phase name ~t0_us:t0 a
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* -- control and collection ------------------------------------------- *)

let reset_buffer b =
  if Array.length b.ring <> !capacity then b.ring <- Array.make !capacity dummy;
  b.next <- 0;
  b.lost <- 0

let reset () =
  Mutex.protect registry_lock (fun () -> List.iter reset_buffer !registry)

let enable ?(config = default_config) () =
  capacity := Stdlib.max 16 config.capacity;
  let rec pow2 n = if n >= config.sample_every then n else pow2 (2 * n) in
  mask := pow2 1 - 1;
  reset ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set on true;
  refresh_active ()

let disable () =
  Atomic.set on false;
  refresh_active ()

let buffer_events b =
  let cap = Array.length b.ring in
  let first = if b.next > cap then b.next - cap else 0 in
  List.init (b.next - first) (fun i -> b.ring.((first + i) mod cap))

let collect () =
  let buffers = Mutex.protect registry_lock (fun () -> !registry) in
  List.concat_map buffer_events buffers
  |> List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us)

let dropped () =
  let buffers = Mutex.protect registry_lock (fun () -> !registry) in
  List.fold_left (fun acc b -> acc + b.lost) 0 buffers
