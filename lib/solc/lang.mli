(** Source model for the synthetic compiler: what a generated contract
    function declares and how its body uses each parameter. The body
    usage drives which accessing patterns appear in the bytecode, and
    therefore which SigRec rules can fire (the paper's rules exploit how
    parameters are {e used}). *)

type usage = {
  math : bool;
  (** the parameter (or its items) is used in arithmetic — distinguishes
      uint160 from address (R16) *)
  signed_math : bool;
  (** SDIV/SMOD usage — distinguishes int256 from uint256 (R15) *)
  byte_access : bool;
  (** a single byte is read — distinguishes bytes32 from uint256 (R18),
      bytes from string (R17), Vyper bytes\[N\] from string\[N\] (R26) *)
  item_access : bool;
  (** array/struct items are read (needed for external arrays and for
      refining item types) *)
}

val default_usage : usage
(** Everything on except signed_math: the common case in the corpus. *)

val plain_usage : usage
(** Nothing accessed beyond reading: triggers the paper's case-5
    ambiguities. *)

(** §5.2 inaccuracy cases that the corpus plants. *)
type quirk =
  | No_quirk
  | Converted of Abi.Abity.t
      (** case 2: the declared type is immediately cast to this type and
          only used as such *)
  | Storage_ref
      (** case 4: the parameter has the [storage] modifier — only a slot
          reference appears in the call data *)
  | Const_index_optimized
      (** case 5a: external static array, optimizer on, constant index —
          no bound checks survive *)

type param_spec = { ty : Abi.Abity.t; usage : usage; quirk : quirk }

val param : ?usage:usage -> ?quirk:quirk -> Abi.Abity.t -> param_spec

(** Planted fuzzing oracles: a [Deep] bug traps when the first
    argument word equals a magic constant (only findable through the
    dictionary of PUSH immediates); a [Shallow] bug traps when the low
    nibble of the first argument word matches (findable by any fuzzer
    that reaches the code with a varied argument). *)
type bug =
  | Deep of Evm.U256.t
  | Shallow of { shift : int; nibble : int }
      (** trap when [(word >> shift) land 0xf = nibble]; the generator
          places the nibble where the first parameter's type actually
          has entropy *)

type fn_spec = {
  fsig : Abi.Funsig.t;
  param_specs : param_spec list;  (** aligned with [fsig.params] *)
  asm_reads : int;
      (** case 1: number of undeclared parameters the body reads via
          [calldataload] in inline assembly (0 normally) *)
  returns_word : bool;
      (** the body ends with RETURN of a 32-byte result instead of STOP
          (roughly a third of deployed functions return data) *)
  bug : bug option;
}

val fn :
  ?asm_reads:int ->
  ?returns_word:bool ->
  ?bug:bug ->
  Abi.Funsig.t ->
  param_spec list ->
  fn_spec
(** Raises [Invalid_argument] if the spec list does not align with the
    signature's parameters. *)

val fn_of_sig : ?usage:usage -> ?returns_word:bool -> Abi.Funsig.t -> fn_spec
(** All parameters with the same usage and no quirks. *)

val declared_arity : fn_spec -> int

(** A contract-level storage declaration — the ground truth the
    storage-layout recovery pass is measured against. *)
type svar_kind =
  | Svalue of int list
      (** member widths in bits, low lane first; [[256]] is a plain
          word, several widths share one packed slot *)
  | Smapping  (** data at keccak(key . slot) *)
  | Sarray    (** length at the slot, data at keccak(slot) *)

type svar = { slot : int; kind : svar_kind }

val svalue : ?widths:int list -> int -> svar
(** Raises [Invalid_argument] when the widths are empty, non-positive
    or sum past 256 bits. *)

val smapping : int -> svar
val sarray : int -> svar
val show_svar : svar -> string
