(** Dataset generation for the evaluation (paper §5.1, §5.6).

    The paper evaluates on Etherscan corpora; this sealed reproduction
    generates statistically similar corpora: the same type-frequency
    shape (basic types dominate — R4 is the paper's most-used rule),
    multiple compiler versions with and without optimisation, and the
    §5.2 inaccuracy cases planted at the paper's observed rates so the
    accuracy *shape* (≈98.7 %) reproduces. *)

type sample = {
  fn : Lang.fn_spec;
  version : Version.t;
  code : string;  (** single-function contract bytecode *)
}

val truth : sample -> Abi.Funsig.t

val expected_failure : sample -> bool
(** Whether this sample carries a planted §5.2 inaccuracy (the ground
    truth cannot be recovered from the bytecode by design). *)

val random_type : ?abiv2:bool -> Random.State.t -> Abi.Abity.t
(** One Solidity parameter type drawn from the corpus type-frequency
    shape (basic types dominate, multidimensional dynamic arrays
    outnumber multidimensional static ones). Exposed so the property
    harness generates signatures with the same distribution the
    accuracy calibration was done against. *)

val random_fn :
  ?abiv2:bool -> ?vyper:bool -> Random.State.t -> int -> Lang.fn_spec
(** A synthesized function: unique name, 1-5 random parameters, random
    visibility, body accessing every parameter. The int is a
    disambiguating counter mixed into the name. *)

val dataset1 : seed:int -> n:int -> sample list
(** "Closed-source" corpus: same distribution as {!dataset3}. *)

val dataset2 : seed:int -> n:int -> sample list
(** The 1 000-synthesized-functions set of Table 2: 1-5 parameters,
    arrays of <= 3 dimensions with <= 5 items per dimension, Solidity
    0.5.5 with a 50 % chance of optimisation, no quirks. *)

val dataset3 : seed:int -> n:int -> sample list
(** "Open-source" corpus: full type distribution over all Solidity
    versions, §5.2 failure cases planted at the paper's rates. *)

val vyper_set : seed:int -> n:int -> sample list
val abiv2_set : seed:int -> n:int -> sample list
(** Functions taking struct or nested-array parameters (Table 4). *)

val fuzz_set : seed:int -> n:int -> sample list
(** Contracts with planted bug oracles for the §6.2 fuzzing study: the
    first parameter is basic and a magic value triggers INVALID. *)

val versioned : seed:int -> per_version:int -> (Version.t * sample list) list
(** For Fig. 15/16: a fixed-size sample per compiler version. *)

(** One contract of the storage-layout corpus: the declared state
    variables are the ground truth the {!Sigrec_layout} pass is
    measured against. *)
type layout_sample = {
  svars : Lang.svar list;  (** declaration order = slot order *)
  lversion : Version.t;
  lcode : string;
}

val random_svar : Random.State.t -> int -> Lang.svar
(** One state-variable declaration for the given slot, drawn from the
    layout-corpus shape: words dominate, then packed slots with
    byte-granular lanes, then mappings and dynamic arrays. Exposed so
    the property harness declares storage with the same distribution
    {!layout_set} calibrates against. *)

val layout_set : seed:int -> n:int -> layout_sample list
(** Contracts with randomized storage declarations — words, packed
    slots (byte-granular lanes, sometimes filling the word exactly),
    mappings, dynamic arrays — spread round-robin over 1-3 function
    bodies, across all Solidity versions (both shift idioms). *)

val multi_body :
  seed:int -> n:int -> bodies:int -> (Abi.Funsig.t * string list) list
(** For the §7 aggregation study: each signature compiled into several
    contracts whose bodies use the parameters differently (and with
    different compiler versions), so individual recoveries hit the
    usage-dependent ambiguities at different parameters. *)

(** One contract of the token-classification corpus, with its ground
    truth: the standard whose members it was built from ([tlabel];
    ["none"] for a non-token), whether the full required set is present
    ([texact]) and which required members were deliberately dropped
    ([tmissing], canonical signatures). *)
type token_sample = {
  tcode : string;
  tlabel : string;
  texact : bool;
  tmissing : string list;
  tversion : Version.t;
}

val token_set : seed:int -> n:int -> token_sample list
(** Labeled token contracts for the classification harness: exact
    ERC-20/721/1155 positives (random optional members, occasional
    Ownable/ERC-2612 extensions, decoy functions, a quarter with a
    §5.2-compatible parameter cast so relaxation is exercised),
    "almost" negatives missing 1-2 required members, planted selector
    collisions (an [address] parameter cast to [uint8] — same 4-byte
    id, wrong types), and plain non-tokens. Every member signature
    comes from the {!Sigrec_classify.Classify} spec table, so the
    corpus can never drift from the specs it measures. *)

val stream :
  seed:int -> n:int -> ?dup_rate:float -> ?distinct_cap:int ->
  (string -> unit) -> unit
(** Chain-scale corpus emitter: calls the callback with [n] bytecodes,
    one at a time, never materializing the corpus. Each emission is a
    duplicate of an earlier contract with probability [dup_rate]
    (default 0.9, mirroring mainnet's ~90 % bytecode-duplication rate)
    and a freshly synthesized contract otherwise. At most
    [distinct_cap] (default 16 384) distinct contracts are remembered
    for re-emission, so memory stays bounded at any [n]. *)
