type sample = { fn : Lang.fn_spec; version : Version.t; code : string }

let truth s = s.fn.Lang.fsig

let quirky (spec : Lang.param_spec) =
  match spec.Lang.quirk with
  | Lang.No_quirk -> false
  | Lang.Converted _ | Lang.Storage_ref | Lang.Const_index_optimized -> true

(* Planted case-5 shapes that lose information without a quirk marker:
   a bytes/dynamic parameter never accessed (recovered as string), an
   unaccessed external static array (invisible), a static struct
   (flattened). *)
let info_lossy (spec : Lang.param_spec) ~(visibility : Abi.Funsig.visibility)
    =
  let u = spec.Lang.usage in
  match spec.Lang.ty with
  | Abi.Abity.Bytes -> not u.Lang.byte_access
  | Abi.Abity.Darray _ when visibility = Abi.Funsig.External ->
    not u.Lang.item_access
  | Abi.Abity.Sarray _ when visibility = Abi.Funsig.External ->
    not u.Lang.item_access
  | Abi.Abity.Tuple _ when not (Abi.Abity.is_dynamic spec.Lang.ty) -> true
  | _ -> false

let expected_failure s =
  s.fn.Lang.asm_reads > 0
  || List.exists
       (fun spec ->
         quirky spec
         || info_lossy spec ~visibility:s.fn.Lang.fsig.Abi.Funsig.visibility)
       s.fn.Lang.param_specs

(* -- random function synthesis ----------------------------------------- *)

let letters = "abcdefghijklmnopqrstuvwxyz"

let random_name rng counter =
  let base =
    String.init 5 (fun _ -> letters.[Random.State.int rng 26])
  in
  Printf.sprintf "%s_%d" base counter

(* Type distribution shaped like the paper's corpus: basic types
   dominate (R4 is the most-used rule; R9 the least). *)
let random_sol_type ?(abiv2 = false) rng =
  let roll = Random.State.int rng 100 in
  if roll < 62 then Abi.Valgen.sol_basic rng
  else if roll < 74 then Abi.Abity.Darray (Abi.Valgen.sol_basic rng)
  else if roll < 82 then
    Abi.Abity.Sarray (Abi.Valgen.sol_basic rng, 1 + Random.State.int rng 5)
  else if roll < 88 then Abi.Abity.Bytes
  else if roll < 93 then Abi.Abity.String_t
  else if roll < 96 then
    (* multidimensional dynamic arrays outnumber multidimensional
       static arrays among deployed parameters (R9 is the paper's
       least-used rule) *)
    Abi.Abity.Darray
      (Abi.Abity.Sarray (Abi.Valgen.sol_basic rng, 1 + Random.State.int rng 4))
  else if roll < 98 then
    Abi.Abity.Sarray
      ( Abi.Abity.Sarray (Abi.Valgen.sol_basic rng, 1 + Random.State.int rng 4),
        1 + Random.State.int rng 4 )
  else if abiv2 then
    if Random.State.bool rng then
      Abi.Abity.Darray (Abi.Abity.Darray (Abi.Valgen.sol_basic rng))
    else
      Abi.Abity.Tuple
        [ Abi.Abity.Darray (Abi.Valgen.sol_basic rng); Abi.Abity.Uint 256 ]
  else Abi.Valgen.sol_basic rng

let random_type = random_sol_type

let random_fn ?(abiv2 = false) ?(vyper = false) rng counter =
  let nparams = 1 + Random.State.int rng 5 in
  let tys =
    List.init nparams (fun _ ->
        if vyper then Abi.Valgen.vy_type rng else random_sol_type ~abiv2 rng)
  in
  let visibility =
    if vyper || Random.State.bool rng then Abi.Funsig.Public
    else Abi.Funsig.External
  in
  let lang = if vyper then Abi.Abity.Vyper else Abi.Abity.Solidity in
  let fsig = Abi.Funsig.make ~visibility ~lang (random_name rng counter) tys in
  Lang.fn_of_sig ~returns_word:(Random.State.int rng 100 < 35) fsig

(* -- sample assembly ---------------------------------------------------- *)

let compile_sample fn version =
  {
    fn;
    version;
    code = Compile.compile { Compile.fns = [ fn ]; version; storage = [] };
  }

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Transform the first parameter matching [f], if any. *)
let map_first_param (fn : Lang.fn_spec) f =
  let applied = ref false in
  let specs =
    List.map
      (fun spec ->
        if !applied then spec
        else
          match f spec with
          | Some spec' ->
            applied := true;
            spec'
          | None -> spec)
      fn.Lang.param_specs
  in
  if !applied then Some { fn with Lang.param_specs = specs } else None

(* Plant the §5.2 inaccuracy cases at the paper's observed per-case
   rates (case 1: 0.24 %, case 2: 0.18 %, case 4: 0.29 %, case 5:
   0.53 % of signatures). *)
let maybe_plant_quirk rng (fn : Lang.fn_spec) version =
  let roll = Random.State.int rng 10_000 in
  let case1 () =
    (* inline assembly reading undeclared parameters *)
    Some { fn with Lang.asm_reads = 1 + Random.State.int rng 2 }
  in
  let case2 () =
    (* type conversion right after entry *)
    map_first_param fn (fun spec ->
        match spec.Lang.ty with
        | Abi.Abity.Uint 256 ->
          Some { spec with Lang.quirk = Lang.Converted (Abi.Abity.Uint 8) }
        | Abi.Abity.Sarray (Abi.Abity.Uint 256, n) ->
          Some
            {
              spec with
              Lang.quirk =
                Lang.Converted (Abi.Abity.Sarray (Abi.Abity.Uint 8, n));
            }
        | _ -> None)
  in
  let case4 () =
    (* storage-modifier parameter *)
    map_first_param fn (fun spec ->
        if Abi.Abity.is_dynamic spec.Lang.ty then
          Some { spec with Lang.quirk = Lang.Storage_ref }
        else None)
  in
  let case5 () =
    (* information-lossy shapes *)
    let const_index spec =
      match spec.Lang.ty with
      | Abi.Abity.Sarray _
        when version.Version.optimize
             && fn.Lang.fsig.Abi.Funsig.visibility = Abi.Funsig.External ->
        Some { spec with Lang.quirk = Lang.Const_index_optimized }
      | _ -> None
    in
    let unaccessed_bytes spec =
      match spec.Lang.ty with
      | Abi.Abity.Bytes ->
        Some
          {
            spec with
            Lang.usage = { spec.Lang.usage with Lang.byte_access = false };
          }
      | _ -> None
    in
    let unaccessed_dynamic spec =
      match spec.Lang.ty with
      | Abi.Abity.Darray _
        when fn.Lang.fsig.Abi.Funsig.visibility = Abi.Funsig.External ->
        Some
          {
            spec with
            Lang.usage = { spec.Lang.usage with Lang.item_access = false };
          }
      | _ -> None
    in
    let variants =
      match Random.State.int rng 3 with
      | 0 -> [ const_index; unaccessed_bytes; unaccessed_dynamic ]
      | 1 -> [ unaccessed_bytes; unaccessed_dynamic; const_index ]
      | _ -> [ unaccessed_dynamic; const_index; unaccessed_bytes ]
    in
    List.find_map (fun v -> map_first_param fn v) variants
  in
  let chosen =
    if roll < 32 then case1 ()
    else if roll < 56 then case2 ()
    else if roll < 95 then case4 ()
    else if roll < 165 then case5 ()
    else None
  in
  Option.value ~default:fn chosen

let dataset3 ~seed ~n =
  let rng = Random.State.make [| seed; 3 |] in
  List.init n (fun i ->
      let version = pick rng Version.solidity_versions in
      let fn = random_fn ~abiv2:version.Version.abiv2 rng i in
      let fn = maybe_plant_quirk rng fn version in
      compile_sample fn version)

let dataset1 ~seed ~n =
  let rng = Random.State.make [| seed; 1 |] in
  List.init n (fun i ->
      let version = pick rng Version.solidity_versions in
      let fn = random_fn ~abiv2:version.Version.abiv2 rng (100_000 + i) in
      let fn = maybe_plant_quirk rng fn version in
      compile_sample fn version)

let dataset2 ~seed ~n =
  let rng = Random.State.make [| seed; 2 |] in
  let version_base =
    List.find (fun v -> v.Version.name = "0.5.5") Version.solidity_versions
  in
  let version_opt =
    List.find (fun v -> v.Version.name = "0.5.5+opt") Version.solidity_versions
  in
  List.init n (fun i ->
      let version =
        if Random.State.bool rng then version_opt else version_base
      in
      let fn = random_fn rng (200_000 + i) in
      compile_sample fn version)

let vyper_set ~seed ~n =
  let rng = Random.State.make [| seed; 4 |] in
  List.init n (fun i ->
      let version = pick rng Version.vyper_versions in
      let fn = random_fn ~vyper:true rng (300_000 + i) in
      compile_sample fn version)

let abiv2_set ~seed ~n =
  let rng = Random.State.make [| seed; 5 |] in
  let abiv2_versions =
    List.filter (fun v -> v.Version.abiv2) Version.solidity_versions
  in
  List.init n (fun i ->
      let version = pick rng abiv2_versions in
      let special =
        match Random.State.int rng 5 with
        | 0 -> Abi.Abity.Darray (Abi.Abity.Darray (Abi.Valgen.sol_basic rng))
        | 1 ->
          Abi.Abity.Sarray
            ( Abi.Abity.Darray (Abi.Valgen.sol_basic rng),
              1 + Random.State.int rng 3 )
        | 2 ->
          Abi.Abity.Tuple
            [ Abi.Abity.Darray (Abi.Valgen.sol_basic rng); Abi.Abity.Uint 256 ]
        | 3 | _ ->
          (* static struct: flattened in the call data, unrecoverable *)
          Abi.Abity.Tuple [ Abi.Abity.Uint 256; Abi.Abity.Uint 256 ]
      in
      let extra =
        List.init (Random.State.int rng 2) (fun _ ->
            random_sol_type rng)
      in
      let fsig =
        Abi.Funsig.make
          ~visibility:(if Random.State.bool rng then Abi.Funsig.Public else Abi.Funsig.External)
          (random_name rng (400_000 + i))
          (special :: extra)
      in
      compile_sample (Lang.fn_of_sig fsig) version)

let fuzz_set ~seed ~n =
  let rng = Random.State.make [| seed; 6 |] in
  List.init n (fun i ->
      let version = pick rng Version.solidity_versions in
      let rec non_bool () =
        match Abi.Valgen.sol_basic rng with
        | Abi.Abity.Bool -> non_bool ()
        | ty -> ty
      in
      let first = non_bool () in
      let rest =
        List.init (Random.State.int rng 3) (fun _ -> random_sol_type rng)
      in
      let fsig =
        Abi.Funsig.make
          ~visibility:(if Random.State.bool rng then Abi.Funsig.Public else Abi.Funsig.External)
          (random_name rng (500_000 + i))
          (first :: rest)
      in
      (* the paper's +23 % fuzzing gain comes from the mix: most bugs
         are reachable by any fuzzer that varies the argument (shallow)
         while some need the exact magic value at the exact position
         (deep) *)
      let bug =
        if Random.State.int rng 100 < 21 then begin
          let magic = Abi.Valgen.value rng first in
          let pad_right s =
            s ^ String.make (32 - String.length s) '\000'
          in
          let word =
            match magic with
            | Abi.Value.VUint v | Abi.Value.VInt v | Abi.Value.VAddr v -> v
            | Abi.Value.VFixed s -> Evm.U256.of_bytes_be (pad_right s)
            | _ -> Evm.U256.of_int 0xdeadbeef
          in
          Lang.Deep word
        end
        else begin
          let shift =
            match first with Abi.Abity.Bytes_n _ -> 252 | _ -> 0
          in
          Lang.Shallow { shift; nibble = Random.State.int rng 16 }
        end
      in
      let fn =
        Lang.fn ~bug fsig
          (List.map (fun ty -> Lang.param ty) fsig.Abi.Funsig.params)
      in
      compile_sample fn version)

let versioned ~seed ~per_version =
  let all = Version.solidity_versions @ Version.vyper_versions in
  List.map
    (fun version ->
      let rng =
        Random.State.make [| seed; 7; Hashtbl.hash version.Version.name |]
      in
      let samples =
        List.init per_version (fun i ->
            let vyper = version.Version.lang = Abi.Abity.Vyper in
            let fn =
              random_fn ~abiv2:version.Version.abiv2 ~vyper rng (600_000 + i)
            in
            compile_sample fn version)
      in
      (version, samples))
    all

(* One signature, many function bodies: the same function id deployed
   in several contracts whose bodies use the parameters differently
   (the aggregation study of paper sec. 7). *)
(* -- storage-layout corpus ---------------------------------------------- *)

type layout_sample = {
  svars : Lang.svar list;
  lversion : Version.t;
  lcode : string;
}

(* Random lane widths that sum to at most 256 bits, 2-4 lanes, byte
   granularity like real Solidity packing; half the time the last lane
   is stretched to fill the word exactly, exercising the write path
   whose clear mask degenerates to a low run. *)
let random_widths rng =
  let lanes = 2 + Random.State.int rng 3 in
  let rec draw budget k =
    if k = 0 then []
    else
      let max_bytes = (budget / 8) - (k - 1) in
      let w = 8 * (1 + Random.State.int rng (Stdlib.min 20 max_bytes)) in
      w :: draw (budget - w) (k - 1)
  in
  let ws = draw 256 lanes in
  if Random.State.bool rng then
    let used = List.fold_left ( + ) 0 ws in
    match List.rev ws with
    | last :: rest -> List.rev ((last + 256 - used) :: rest)
    | [] -> ws
  else ws

let random_svar rng slot =
  let roll = Random.State.int rng 100 in
  if roll < 35 then Lang.svalue slot
  else if roll < 70 then Lang.svalue ~widths:(random_widths rng) slot
  else if roll < 85 then Lang.smapping slot
  else Lang.sarray slot

let layout_set ~seed ~n =
  let rng = Random.State.make [| seed; 9 |] in
  List.init n (fun i ->
      let lversion = pick rng Version.solidity_versions in
      let nfns = 1 + Random.State.int rng 3 in
      let fns =
        List.init nfns (fun j ->
            Lang.fn_of_sig
              (Abi.Funsig.make
                 (random_name rng (800_000 + (10 * i) + j))
                 [ Abi.Abity.Uint 256 ]))
      in
      let svars =
        List.init
          (1 + Random.State.int rng 6)
          (fun slot -> random_svar rng slot)
      in
      {
        svars;
        lversion;
        lcode =
          Compile.compile { Compile.fns = fns; version = lversion; storage = svars };
      })

let multi_body ~seed ~n ~bodies =
  let rng = Random.State.make [| seed; 8 |] in
  List.init n (fun i ->
      let fn0 = random_fn rng (700_000 + i) in
      let fsig = fn0.Lang.fsig in
      let variants =
        List.init bodies (fun _ ->
            let usage =
              {
                Lang.math = Random.State.int rng 100 < 40;
                Lang.signed_math = false;
                Lang.byte_access = Random.State.int rng 100 < 40;
                Lang.item_access = Random.State.int rng 100 < 70;
              }
            in
            let version = pick rng Version.solidity_versions in
            Compile.compile
              {
                Compile.fns = [ Lang.fn_of_sig ~usage fsig ];
                version;
                storage = [];
              })
      in
      (fsig, variants))

(* -- token-classification corpus ---------------------------------------- *)

type token_sample = {
  tcode : string;
  tlabel : string;
  texact : bool;
  tmissing : string list;
  tversion : Version.t;
}

module Classify = Sigrec_classify.Classify

(* Per-holder state every token shape implies: a value slot (supply),
   the balances mapping, sometimes a packed (decimals, owner) slot. *)
let token_storage rng =
  let base = [ Lang.svalue 0; Lang.smapping 1 ] in
  if Random.State.bool rng then base @ [ Lang.svalue ~widths:[ 8; 160 ] 2 ]
  else base

(* Replace one parameter of the member with a §5.2-convertible cast:
   the declared type (and so the selector) is unchanged, the body only
   uses the converted value, so recovery reports the converted type.
   [to_] compatible with the declaration keeps the sample exact under
   the classifier's relaxation; an incompatible [to_] is a planted
   selector collision. *)
let convert_param ~param_ty ~to_ (fsig : Abi.Funsig.t) =
  let specs =
    let converted = ref false in
    List.map
      (fun ty ->
        if (not !converted) && Abi.Abity.equal ty param_ty then begin
          converted := true;
          Lang.param ~quirk:(Lang.Converted to_) ty
        end
        else Lang.param ty)
      fsig.Abi.Funsig.params
  in
  Lang.fn fsig specs

let has_param ty (fsig : Abi.Funsig.t) =
  List.exists (Abi.Abity.equal ty) fsig.Abi.Funsig.params

let member_sigs ms = List.map (fun (m : Classify.member) -> m.Classify.fsig) ms

(* Labeled token corpus for the classification accuracy harness.

   Mix per sample (salt 12):
   - exact positives: the full required set of ERC-20/721/1155, random
     optional members, sometimes Ownable/ERC-2612 extensions, 0-2
     decoy functions — a quarter carry a compatible [Converted] cast so
     the relaxation path is exercised with [texact = true];
   - "almost" negatives: 1-2 required members dropped ([tmissing]),
     [texact = false] — these must never classify exact;
   - collision negatives: the full set but one member's [address]
     parameter cast to [uint8], so the selector matches with genuinely
     wrong types;
   - non-tokens ([tlabel = "none"]): a few random functions. *)
let token_set ~seed ~n =
  let rng = Random.State.make [| seed; 12 |] in
  let spec name = Option.get (Classify.spec_by_name name) in
  List.init n (fun i ->
      let tversion = pick rng Version.solidity_versions in
      let standard =
        pick rng
          [ "ERC-20"; "ERC-20"; "ERC-20"; "ERC-721"; "ERC-721"; "ERC-1155" ]
      in
      let sp = spec standard in
      let required = member_sigs (Classify.required_members sp) in
      let optional =
        List.filter_map
          (fun (m : Classify.member) ->
            if (not m.Classify.required) && Random.State.int rng 100 < 50
            then Some m.Classify.fsig
            else None)
          sp.Classify.members
      in
      let exts =
        List.concat_map
          (fun (name, pct) ->
            if Random.State.int rng 100 < pct then
              member_sigs (Classify.required_members (spec name))
            else [])
          [ ("Ownable", 30); ("ERC-2612", if standard = "ERC-20" then 20 else 0) ]
      in
      let decoys =
        List.init (Random.State.int rng 3) (fun j ->
            Abi.Funsig.make
              (random_name rng (950_000 + (10 * i) + j))
              [ Abi.Valgen.sol_basic rng ])
      in
      let storage = token_storage rng in
      let compile_sigs fns extra_fns =
        Compile.compile
          {
            Compile.fns = List.map Lang.fn_of_sig fns @ extra_fns;
            version = tversion;
            storage;
          }
      in
      let roll = Random.State.int rng 100 in
      if roll < 52 then begin
        (* exact positive; a quarter with a compatible conversion *)
        let convertible =
          List.filter (has_param (Abi.Abity.Uint 256)) required
        in
        if Random.State.int rng 100 < 25 && convertible <> [] then begin
          let target = pick rng convertible in
          let rest =
            List.filter (fun f -> not (Abi.Funsig.equal f target)) required
          in
          let converted =
            convert_param ~param_ty:(Abi.Abity.Uint 256)
              ~to_:(Abi.Abity.Uint (if Random.State.bool rng then 128 else 64))
              target
          in
          {
            tcode = compile_sigs (rest @ optional @ exts @ decoys) [ converted ];
            tlabel = standard;
            texact = true;
            tmissing = [];
            tversion;
          }
        end
        else
          {
            tcode = compile_sigs (required @ optional @ exts @ decoys) [];
            tlabel = standard;
            texact = true;
            tmissing = [];
            tversion;
          }
      end
      else if roll < 78 then begin
        (* almost: drop 1-2 required members *)
        let k = 1 + Random.State.int rng 2 in
        let dropped = ref [] in
        let kept = ref required in
        for _ = 1 to k do
          match !kept with
          | [] -> ()
          | kept_now ->
            let victim = pick rng kept_now in
            dropped := victim :: !dropped;
            kept :=
              List.filter (fun f -> not (Abi.Funsig.equal f victim)) kept_now
        done;
        {
          tcode = compile_sigs (!kept @ optional @ decoys) [];
          tlabel = standard;
          texact = false;
          tmissing = List.map Abi.Funsig.canonical !dropped;
          tversion;
        }
      end
      else if roll < 88 then begin
        (* selector collision: full set, one address param cast away *)
        let collidable = List.filter (has_param Abi.Abity.Address) required in
        let target = pick rng collidable in
        let rest =
          List.filter (fun f -> not (Abi.Funsig.equal f target)) required
        in
        let collided =
          convert_param ~param_ty:Abi.Abity.Address ~to_:(Abi.Abity.Uint 8)
            target
        in
        {
          tcode = compile_sigs (rest @ optional) [ collided ];
          tlabel = standard;
          texact = false;
          tmissing = [];
          tversion;
        }
      end
      else
        (* not a token at all *)
        let fns =
          List.init
            (1 + Random.State.int rng 3)
            (fun j ->
              Lang.fn_of_sig
                (Abi.Funsig.make
                   (random_name rng (960_000 + (10 * i) + j))
                   [ Abi.Valgen.sol_basic rng ]))
        in
        {
          tcode =
            Compile.compile { Compile.fns = fns; version = tversion; storage };
          tlabel = "none";
          texact = false;
          tmissing = [];
          tversion;
        })

(* -- chain-scale streaming emitter -------------------------------------- *)

let stream ~seed ~n ?(dup_rate = 0.9) ?(distinct_cap = 16_384) f =
  let rng = Random.State.make [| seed; 11 |] in
  let pool = Array.make (Stdlib.max 1 distinct_cap) "" in
  let filled = ref 0 in
  let counter = ref 0 in
  let fresh () =
    let version = pick rng Version.solidity_versions in
    let fn = random_fn ~abiv2:version.Version.abiv2 rng (900_000 + !counter) in
    incr counter;
    let code =
      Compile.compile { Compile.fns = [ fn ]; version; storage = [] }
    in
    (* remember it so later emissions can duplicate it *)
    if !filled < Array.length pool then begin
      pool.(!filled) <- code;
      incr filled
    end
    else pool.(Random.State.int rng (Array.length pool)) <- code;
    code
  in
  for _ = 1 to n do
    let code =
      if !filled > 0 && Random.State.float rng 1.0 < dup_rate then
        pool.(Random.State.int rng !filled)
      else fresh ()
    in
    f code
  done
