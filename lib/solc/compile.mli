(** Whole-contract compilation: function-id dispatcher plus the
    per-function parameter-accessing code. The output is runtime
    bytecode, the only artefact SigRec ever sees. *)

type contract = {
  fns : Lang.fn_spec list;
  version : Version.t;
  storage : Lang.svar list;
      (** contract-level state variables; svar [j] is accessed in the
          body of function [j mod nfns] (from the fallback when the
          contract has no functions) *)
}

val compile : contract -> string
(** Runtime bytecode. Raises [Invalid_argument] on specs invalid for the
    version's language. *)

val compile_items : contract -> Evm.Asm.item list
(** The labelled instruction stream before assembly — the input the
    {!Obfuscate} pass transforms. *)

val compile_fn : ?version:Version.t -> Lang.fn_spec -> string
(** A single-function contract with the default latest Solidity (or, for
    Vyper signatures, latest Vyper) version. *)

val contract_of_sigs :
  ?version:Version.t -> ?storage:Lang.svar list -> Abi.Funsig.t list -> contract
(** Default usages, no quirks, no bugs, no storage unless given. *)
