open Evm

type contract = {
  fns : Lang.fn_spec list;
  version : Version.t;
  storage : Lang.svar list;
}

(* A static struct's call-data layout and accessing code are those of
   its flattened fields (§2.3.1), so the emitters see the fields. *)
let rec flatten_spec (spec : Lang.param_spec) =
  match spec.Lang.ty with
  | Abi.Abity.Tuple fields when not (Abi.Abity.is_dynamic spec.Lang.ty) ->
    List.concat_map
      (fun f -> flatten_spec { spec with Lang.ty = f })
      fields
  | _ -> [ spec ]

let emit_dispatcher_prelude e ~(version : Version.t) ~fallback =
  (* free-memory-pointer initialisation, as solc emits *)
  Emit.push_int e 0x80;
  Emit.push_int e 0x40;
  Emit.op e Opcode.MSTORE;
  (* calldatasize < 4 -> fallback *)
  Emit.push_int e 4;
  Emit.op e Opcode.CALLDATASIZE;
  Emit.op e Opcode.LT;
  Emit.jumpi_to e fallback;
  (* extract the function id from the first 4 bytes of the call data *)
  if version.Version.shr_dispatch then begin
    Emit.push_int e 0;
    Emit.op e Opcode.CALLDATALOAD;
    Emit.push_int e 0xe0;
    Emit.op e Opcode.SHR
  end
  else begin
    Emit.push_u256 e (U256.pow2 224);
    Emit.push_int e 0;
    Emit.op e Opcode.CALLDATALOAD;
    Emit.op e Opcode.DIV;
    Emit.push_u256 e (U256.ones_low 4);
    Emit.op e Opcode.AND
  end

let emit_dispatch_entry e ~selector ~target =
  Emit.op e (Opcode.DUP 1);
  Emit.op e (Opcode.PUSH (4, U256.of_bytes_be selector));
  Emit.op e Opcode.EQ;
  Emit.jumpi_to e target

let emit_fn_body e ~(version : Version.t) ~revert_label ?(svars = [])
    (fn : Lang.fn_spec) =
  (* drop the selector copy left by the dispatcher *)
  Emit.op e Opcode.POP;
  if version.Version.callvalue_guard then begin
    Emit.op e Opcode.CALLVALUE;
    Emit.op e Opcode.ISZERO;
    let ok = Emit.fresh_label e "nonpayable_ok" in
    Emit.jumpi_to e ok;
    Emit.jump_to e revert_label;
    Emit.label e ok
  end;
  (match fn.Lang.bug with
  | None -> ()
  | Some bug ->
    (* planted fuzzing oracle *)
    let skip = Emit.fresh_label e "no_bug" in
    Emit.push_int e 4;
    Emit.op e Opcode.CALLDATALOAD;
    (match bug with
    | Lang.Deep magic ->
      (* trap when the first argument word equals a magic constant *)
      Emit.op e (Opcode.PUSH (32, magic));
      Emit.op e Opcode.EQ
    | Lang.Shallow { shift; nibble } ->
      (* trap when a nibble of the first argument matches *)
      if shift > 0 then begin
        (* stack: [word]; SHR pops the shift amount from the top *)
        Emit.push_int e shift;
        Emit.op e Opcode.SHR
      end;
      Emit.push_int e 0xf;
      Emit.op e Opcode.AND;
      Emit.push_int e (nibble land 0xf);
      Emit.op e Opcode.EQ);
    Emit.op e Opcode.ISZERO;
    Emit.jumpi_to e skip;
    Emit.op e Opcode.INVALID;
    Emit.label e skip);
  List.iter (Storage.emit_svar e ~version) svars;
  let specs = List.concat_map flatten_spec fn.Lang.param_specs in
  let heads = Access.head_offsets (List.map (fun s -> s.Lang.ty) specs) in
  List.iter2
    (fun head spec ->
      match version.Version.lang with
      | Abi.Abity.Solidity ->
        Access.emit_param e ~optimize:version.Version.optimize
          ~visibility:fn.Lang.fsig.Abi.Funsig.visibility ~revert_label ~head
          spec
      | Abi.Abity.Vyper -> Vyper.emit_param e ~version ~revert_label ~head spec)
    heads specs;
  if fn.Lang.asm_reads > 0 then begin
    let head_end =
      List.fold_left (fun acc s -> acc + Abi.Abity.head_size s.Lang.ty) 4 specs
    in
    Access.emit_inline_assembly_reads e ~base:head_end fn.Lang.asm_reads
  end;
  if fn.Lang.returns_word then begin
    (* return a 32-byte result from scratch memory *)
    Emit.push_int e 1;
    Emit.push_int e 0;
    Emit.op e Opcode.MSTORE;
    Emit.push_int e 32;
    Emit.push_int e 0;
    Emit.op e Opcode.RETURN
  end
  else Emit.op e Opcode.STOP

let compile_items { fns; version; storage } =
  List.iter
    (fun fn ->
      List.iter
        (fun spec ->
          if not (Abi.Abity.valid_in version.Version.lang spec.Lang.ty) then
            invalid_arg
              (Printf.sprintf "Compile.compile: %s is not valid in %s"
                 (Abi.Abity.to_string spec.Lang.ty)
                 (match version.Version.lang with
                 | Abi.Abity.Solidity -> "Solidity"
                 | Abi.Abity.Vyper -> "Vyper")))
        fn.Lang.param_specs)
    fns;
  let e = Emit.create () in
  let fallback = Emit.fresh_label e "fallback" in
  let revert_label = Emit.fresh_label e "revert" in
  let entries =
    List.map
      (fun fn -> (fn, Emit.fresh_label e "fn"))
      fns
  in
  (* state variables ride along round-robin: svar [j] is accessed in
     the body of function [j mod nfns] (all from the fallback when the
     contract has no functions), so every declared slot is reachable
     from the dispatcher. *)
  let nfns = List.length fns in
  let svars_for i =
    if nfns = 0 then []
    else List.filteri (fun j _ -> j mod nfns = i) storage
  in
  emit_dispatcher_prelude e ~version ~fallback;
  List.iter
    (fun (fn, target) ->
      emit_dispatch_entry e ~selector:(Abi.Funsig.selector fn.Lang.fsig)
        ~target)
    entries;
  Emit.label e fallback;
  if nfns = 0 then List.iter (Storage.emit_svar e ~version) storage;
  Emit.op e Opcode.STOP;
  List.iteri
    (fun i (fn, target) ->
      Emit.label e target;
      emit_fn_body e ~version ~revert_label ~svars:(svars_for i) fn)
    entries;
  Emit.label e revert_label;
  Emit.push_int e 0;
  Emit.push_int e 0;
  Emit.op e Opcode.REVERT;
  Emit.items e

let compile contract = Asm.assemble (compile_items contract)

let default_version_for (fsig : Abi.Funsig.t) =
  match fsig.Abi.Funsig.lang with
  | Abi.Abity.Solidity -> Version.latest_solidity
  | Abi.Abity.Vyper -> Version.latest_vyper

let compile_fn ?version fn =
  let version =
    match version with
    | Some v -> v
    | None -> default_version_for fn.Lang.fsig
  in
  compile { fns = [ fn ]; version; storage = [] }

let contract_of_sigs ?version ?(storage = []) sigs =
  let version =
    match (version, sigs) with
    | Some v, _ -> v
    | None, fsig :: _ -> default_version_for fsig
    | None, [] -> Version.latest_solidity
  in
  { fns = List.map Lang.fn_of_sig sigs; version; storage }
