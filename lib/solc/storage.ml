open Evm

(* Storage-access emission, mirroring the solc idioms the layout pass
   recovers. Scratch memory at 0x00/0x20 is the keccak staging area —
   reserved for exactly this in real solc output, and below the 0x80
   cursor everything else allocates from. *)

let ones_bits w =
  if w >= 256 then U256.max_int else U256.sub (U256.pow2 w) U256.one

(* A small per-variable value constant: derived from the slot so
   different variables store different words, masked to the member
   width, never zero (an SSTORE of zero is a delete and real code
   mostly stores values). *)
let value_const ~slot ~width =
  let v = U256.logand (U256.of_int (0x2b + (7 * slot))) (ones_bits width) in
  if U256.is_zero v then U256.one else v

let emit_read_word e slot =
  Emit.push_int e slot;
  Emit.op e Opcode.SLOAD;
  Emit.op e Opcode.POP

let emit_write_word e slot =
  Emit.push_u256 e (value_const ~slot ~width:256);
  Emit.push_int e slot;
  Emit.op e Opcode.SSTORE

(* [SLOAD; >> k; AND ones(w)]: post-0.5 code shifts, earlier code
   divides by a power of two — the divisor is staged under the loaded
   word so DIV sees the numerator on top. *)
let emit_read_member e ~(version : Version.t) ~slot ~bit_offset ~width =
  if bit_offset > 0 && not version.Version.shr_dispatch then
    Emit.push_u256 e (U256.pow2 bit_offset);
  Emit.push_int e slot;
  Emit.op e Opcode.SLOAD;
  if bit_offset > 0 then
    if version.Version.shr_dispatch then begin
      Emit.push_int e bit_offset;
      Emit.op e Opcode.SHR
    end
    else Emit.op e Opcode.DIV;
  Emit.push_u256 e (ones_bits width);
  Emit.op e Opcode.AND;
  Emit.op e Opcode.POP

(* Read-modify-write: clear the member's lane in the old word, OR in
   the new value positioned at its bit offset. *)
let emit_write_member e ~(version : Version.t) ~slot ~bit_offset ~width =
  Emit.push_int e slot;
  Emit.op e Opcode.SLOAD;
  Emit.push_u256 e (U256.lognot (U256.shift_left (ones_bits width) bit_offset));
  Emit.op e Opcode.AND;
  let v = value_const ~slot:(slot + bit_offset) ~width in
  if bit_offset > 0 && version.Version.shr_dispatch then begin
    Emit.push_u256 e v;
    Emit.push_int e bit_offset;
    Emit.op e Opcode.SHL
  end
  else Emit.push_u256 e (U256.shift_left v bit_offset);
  Emit.op e Opcode.OR;
  Emit.push_int e slot;
  Emit.op e Opcode.SSTORE

(* keccak(key . slot) with the caller as key: key word at 0x00, slot
   word at 0x20, hash of the 64-byte region. *)
let emit_map_slot e slot =
  Emit.op e Opcode.CALLER;
  Emit.push_int e 0;
  Emit.op e Opcode.MSTORE;
  Emit.push_int e slot;
  Emit.push_int e 0x20;
  Emit.op e Opcode.MSTORE;
  Emit.push_int e 0x40;
  Emit.push_int e 0;
  Emit.op e Opcode.SHA3

let emit_map_read e slot =
  emit_map_slot e slot;
  Emit.op e Opcode.SLOAD;
  Emit.op e Opcode.POP

let emit_map_write e slot =
  Emit.push_u256 e (value_const ~slot ~width:256);
  emit_map_slot e slot;
  Emit.op e Opcode.SSTORE

(* keccak(slot): the dynamic array's data base. *)
let emit_array_base e slot =
  Emit.push_int e slot;
  Emit.push_int e 0;
  Emit.op e Opcode.MSTORE;
  Emit.push_int e 0x20;
  Emit.push_int e 0;
  Emit.op e Opcode.SHA3

(* arr.push: store at keccak(slot) + length, then bump the length. *)
let emit_array_push e slot =
  Emit.push_u256 e (value_const ~slot ~width:256);
  Emit.push_int e slot;
  Emit.op e Opcode.SLOAD;
  emit_array_base e slot;
  Emit.op e Opcode.ADD;
  Emit.op e Opcode.SSTORE;
  Emit.push_int e 1;
  Emit.push_int e slot;
  Emit.op e Opcode.SLOAD;
  Emit.op e Opcode.ADD;
  Emit.push_int e slot;
  Emit.op e Opcode.SSTORE

let emit_array_read e slot =
  emit_array_base e slot;
  Emit.op e Opcode.SLOAD;
  Emit.op e Opcode.POP

let emit_svar e ~version (v : Lang.svar) =
  match v.Lang.kind with
  | Lang.Svalue [ 256 ] ->
    emit_write_word e v.Lang.slot;
    emit_read_word e v.Lang.slot
  | Lang.Svalue widths ->
    let _ =
      List.fold_left
        (fun bit_offset width ->
          emit_write_member e ~version ~slot:v.Lang.slot ~bit_offset ~width;
          emit_read_member e ~version ~slot:v.Lang.slot ~bit_offset ~width;
          bit_offset + width)
        0 widths
    in
    ()
  | Lang.Smapping ->
    emit_map_write e v.Lang.slot;
    emit_map_read e v.Lang.slot
  | Lang.Sarray ->
    emit_array_push e v.Lang.slot;
    emit_array_read e v.Lang.slot

(* The truth the oracles compare against, in the layout pass's own
   vocabulary-free terms: (slot, kind, member lanes). *)
let truth_members widths =
  match widths with
  | [ 256 ] -> None
  | ws ->
    let _, lanes =
      List.fold_left
        (fun (off, acc) w -> (off + w, (off, w) :: acc))
        (0, []) ws
    in
    Some (List.rev lanes)
