(** Storage-access emission for the synthetic compiler: the solc idioms
    (direct word access, packed read/write with shift+mask, mapping and
    dynamic-array slot derivation through keccak) that the
    [Sigrec_layout] pass recovers. Each emitter is stack-neutral. *)

val emit_svar : Emit.t -> version:Version.t -> Lang.svar -> unit
(** Emit one write-then-read round trip for the variable: word and
    packed slots through SSTORE/SLOAD with mask/shift lanes, mappings
    through keccak(caller . slot), arrays through a push at
    keccak(slot) + length. Pre-0.5 versions use the DIV/MUL shift
    idiom instead of SHR/SHL, following [version.shr_dispatch]. *)

val value_const : slot:int -> width:int -> Evm.U256.t
(** The (deterministic, non-zero) word the emitters store for a given
    slot, masked to [width] bits — lets oracles predict stored values. *)

val truth_members : int list -> (int * int) list option
(** Ground-truth lanes [(bit_offset, bit_width)] for an [Svalue] width
    list; [None] for the plain full word [[256]]. *)
