type usage = {
  math : bool;
  signed_math : bool;
  byte_access : bool;
  item_access : bool;
}

let default_usage =
  { math = true; signed_math = false; byte_access = true; item_access = true }

let plain_usage =
  { math = false; signed_math = false; byte_access = false; item_access = false }

type quirk =
  | No_quirk
  | Converted of Abi.Abity.t
  | Storage_ref
  | Const_index_optimized

type param_spec = { ty : Abi.Abity.t; usage : usage; quirk : quirk }

let param ?(usage = default_usage) ?(quirk = No_quirk) ty =
  { ty; usage; quirk }

type bug = Deep of Evm.U256.t | Shallow of { shift : int; nibble : int }

type fn_spec = {
  fsig : Abi.Funsig.t;
  param_specs : param_spec list;
  asm_reads : int;
  returns_word : bool;
  bug : bug option;
}

let fn ?(asm_reads = 0) ?(returns_word = false) ?bug fsig param_specs =
  if List.length fsig.Abi.Funsig.params <> List.length param_specs then
    invalid_arg "Lang.fn: spec list does not align with signature";
  List.iter2
    (fun ty spec ->
      if not (Abi.Abity.equal ty spec.ty) then
        invalid_arg "Lang.fn: spec type differs from signature type")
    fsig.Abi.Funsig.params param_specs;
  { fsig; param_specs; asm_reads; returns_word; bug }

let fn_of_sig ?(usage = default_usage) ?(returns_word = false) fsig =
  {
    fsig;
    param_specs = List.map (fun ty -> param ~usage ty) fsig.Abi.Funsig.params;
    asm_reads = 0;
    returns_word;
    bug = None;
  }

let declared_arity t = List.length t.fsig.Abi.Funsig.params

(* -- state variables ---------------------------------------------------- *)

(* A contract-level storage declaration. [Svalue] widths are in bits,
   low lane first; [Svalue [256]] is a plain full-word variable, more
   than one width is a packed slot. [Smapping] and [Sarray] occupy
   their slot the Solidity way: the mapping slot holds nothing (it
   only salts keccak(key . slot)), the array slot holds the length and
   the data lives at keccak(slot). *)
type svar_kind =
  | Svalue of int list
  | Smapping
  | Sarray

type svar = { slot : int; kind : svar_kind }

let svalue ?(widths = [ 256 ]) slot =
  if widths = [] then invalid_arg "Lang.svalue: empty width list";
  let sum = List.fold_left ( + ) 0 widths in
  if sum > 256 then invalid_arg "Lang.svalue: widths exceed one slot";
  List.iter
    (fun w ->
      if w <= 0 || w > 256 then invalid_arg "Lang.svalue: bad width")
    widths;
  { slot; kind = Svalue widths }

let smapping slot = { slot; kind = Smapping }
let sarray slot = { slot; kind = Sarray }

let show_svar v =
  match v.kind with
  | Svalue [ 256 ] -> Printf.sprintf "s%d:word" v.slot
  | Svalue ws ->
    Printf.sprintf "s%d:packed(%s)" v.slot
      (String.concat "," (List.map string_of_int ws))
  | Smapping -> Printf.sprintf "s%d:mapping" v.slot
  | Sarray -> Printf.sprintf "s%d:array" v.slot
