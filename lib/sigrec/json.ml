(* Minimal JSON: a recursive-descent parser for the serve request
   protocol and the escape/print helpers every JSON-emitting corner of
   the tree shares (CLI --format json, serve responses, Stats.to_json
   renders its own). No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = Printf.sprintf "\"%s\"" (escape s)
let arr items = Printf.sprintf "[%s]" (String.concat "," items)

let obj fields =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (quote k) v) fields))

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> number f
  | Str s -> quote s
  | Arr items -> arr (List.map to_string items)
  | Obj fields -> obj (List.map (fun (k, v) -> (k, to_string v)) fields)

(* ---- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr items -> Some items | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

(* ---- parsing -------------------------------------------------------- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))

(* UTF-8 encode one code point (for \uXXXX escapes; surrogate pairs are
   combined by the caller) *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail !pos "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xd800 && cp <= 0xdbff then begin
              (* high surrogate: expect a \uXXXX low surrogate next *)
              if
                !pos + 2 <= n
                && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                else fail !pos "invalid low surrogate"
              end
              else fail !pos "lone high surrogate"
            end
            else cp
          in
          add_utf8 buf cp
        | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
        loop ()
      | c when Char.code c < 0x20 -> fail !pos "raw control character"
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let span = String.sub s start (!pos - start) in
    match float_of_string_opt span with
    | Some f -> Num f
    | None -> fail start (Printf.sprintf "bad number %S" span)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec elems () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            elems ()
          | Some ']' -> advance ()
          | _ -> fail !pos "expected ',' or ']'"
        in
        elems ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ field () ] in
        let rec members () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            members ()
          | Some '}' -> advance ()
          | _ -> fail !pos "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "at byte %d: trailing input" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg
