type batch = {
  codes : string list;
  skipped : (int * string) list;
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_line line =
  let line = String.trim (strip_cr line) in
  if line = "" || line.[0] = '#' then `Blank
  else
    match Evm.Hex.decode line with
    | "" ->
      (* a bare "0x" decodes to zero bytes — feeding that downstream
         would produce a report for a contract that doesn't exist *)
      `Bad "empty bytecode"
    | code -> `Code code
    | exception Invalid_argument msg -> `Bad msg

let parse_batch ?warn text =
  let codes = ref [] and skipped = ref [] in
  List.iteri
    (fun i line ->
      match parse_line line with
      | `Blank -> ()
      | `Code code -> codes := code :: !codes
      | `Bad msg ->
        (match warn with
        | Some f -> f ~line:(i + 1) ~reason:msg
        | None -> ());
        skipped := (i + 1, msg) :: !skipped)
    (String.split_on_char '\n' text);
  { codes = List.rev !codes; skipped = List.rev !skipped }

let parse_codes entries =
  let codes = ref [] and skipped = ref [] in
  List.iteri
    (fun i entry ->
      match parse_line entry with
      | `Code code -> codes := code :: !codes
      (* an explicitly supplied blank entry is a caller mistake, not a
         skippable file row *)
      | `Blank -> skipped := (i, "empty bytecode") :: !skipped
      | `Bad msg -> skipped := (i, msg) :: !skipped)
    entries;
  { codes = List.rev !codes; skipped = List.rev !skipped }

let warn_stderr ~line ~reason =
  Printf.eprintf "warning: skipping line %d: %s\n%!" line reason

(* -- streaming reader -------------------------------------------------- *)

type totals = { lines : int; codes : int; skipped : int }

let default_max_line_bytes = 4 * 1024 * 1024

let fold_reads ?warn ?(max_line_bytes = default_max_line_bytes) ~read ~f init =
  let chunk = Bytes.create 65536 in
  (* holds a line spanning chunk boundaries; empty in the common case
     of a line completed within one chunk, so short lines never go
     through the buffer at all *)
  let pending = Buffer.create 256 in
  (* an oversized line is skipped without ever being materialized: the
     buffer is dropped and the remainder of the line discarded as it
     streams past *)
  let discarding = ref false in
  let lineno = ref 0 in
  let codes = ref 0 and skipped = ref 0 in
  let acc = ref init in
  let dispatch line =
    incr lineno;
    if !discarding then begin
      discarding := false;
      incr skipped;
      match warn with
      | Some w ->
        w ~line:!lineno
          ~reason:(Printf.sprintf "line exceeds %d bytes" max_line_bytes)
      | None -> ()
    end
    else
      match parse_line line with
      | `Blank -> ()
      | `Code code ->
        incr codes;
        acc := f !acc code
      | `Bad msg -> (
        incr skipped;
        match warn with
        | Some w -> w ~line:!lineno ~reason:msg
        | None -> ())
  in
  let eof = ref false in
  while not !eof do
    let n = read chunk in
    if n = 0 then eof := true
    else begin
      let start = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get chunk i = '\n' then begin
          (if !discarding || Buffer.length pending = 0 then
             dispatch (Bytes.sub_string chunk !start (i - !start))
           else begin
             Buffer.add_subbytes pending chunk !start (i - !start);
             dispatch (Buffer.contents pending);
             Buffer.clear pending
           end);
          start := i + 1
        end
      done;
      if !start < n && not !discarding then begin
        let len = n - !start in
        if Buffer.length pending + len > max_line_bytes then begin
          discarding := true;
          Buffer.clear pending
        end
        else Buffer.add_subbytes pending chunk !start len
      end
    end
  done;
  (* a final line without a trailing newline is still a line; input
     ending exactly at a newline adds nothing (the trailing "" that
     [parse_batch] sees there is blank anyway) *)
  if Buffer.length pending > 0 || !discarding then begin
    let line = Buffer.contents pending in
    Buffer.clear pending;
    dispatch line
  end;
  (!acc, { lines = !lineno; codes = !codes; skipped = !skipped })

let fold_lines ?warn ?max_line_bytes ~f init ic =
  fold_reads ?warn ?max_line_bytes
    ~read:(fun buf -> In_channel.input ic buf 0 (Bytes.length buf))
    ~f init
