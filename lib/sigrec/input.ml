type batch = {
  codes : string list;
  skipped : (int * string) list;
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_line line =
  let line = String.trim (strip_cr line) in
  if line = "" || line.[0] = '#' then `Blank
  else
    match Evm.Hex.decode line with
    | "" ->
      (* a bare "0x" decodes to zero bytes — feeding that downstream
         would produce a report for a contract that doesn't exist *)
      `Bad "empty bytecode"
    | code -> `Code code
    | exception Invalid_argument msg -> `Bad msg

let parse_batch ?warn text =
  let codes = ref [] and skipped = ref [] in
  List.iteri
    (fun i line ->
      match parse_line line with
      | `Blank -> ()
      | `Code code -> codes := code :: !codes
      | `Bad msg ->
        (match warn with
        | Some f -> f ~line:(i + 1) ~reason:msg
        | None -> ());
        skipped := (i + 1, msg) :: !skipped)
    (String.split_on_char '\n' text);
  { codes = List.rev !codes; skipped = List.rev !skipped }

let parse_codes entries =
  let codes = ref [] and skipped = ref [] in
  List.iteri
    (fun i entry ->
      match parse_line entry with
      | `Code code -> codes := code :: !codes
      (* an explicitly supplied blank entry is a caller mistake, not a
         skippable file row *)
      | `Blank -> skipped := (i, "empty bytecode") :: !skipped
      | `Bad msg -> skipped := (i, msg) :: !skipped)
    entries;
  { codes = List.rev !codes; skipped = List.rev !skipped }

let warn_stderr ~line ~reason =
  Printf.eprintf "warning: skipping line %d: %s\n%!" line reason
