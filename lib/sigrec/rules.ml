open Evm
module Sexpr = Symex.Sexpr
module Trace = Symex.Trace

type config = {
  fine_masks : bool;
  guard_dims : bool;
  nested : bool;
  vyper : bool;
}

let default_config =
  { fine_masks = true; guard_dims = true; nested = true; vyper = true }

type ctx = {
  trace : Trace.t;
  cfg : Cfg.t;
  deps : (int, int list) Hashtbl.t;
  stats : Stats.t option;
  config : config;
  path_sink : string list ref option ref;
      (* when set, fired rules also append here: the per-parameter rule
         path of the Fig. 13 decision tree *)
  guards_cache : (int, guard list) Hashtbl.t;
      (* pc -> parsed guard chain; the matchers re-ask per load and the
         chain walk (transitive deps + condition parsing) is the
         expensive part *)
  usages_cache : (Trace.subject, Trace.usage_kind list) Hashtbl.t;
      (* subject -> usage kinds, replacing a linear trace scan per query *)
}

and guard = { gpc : int; idx : Sexpr.t; bound : bound }
and bound = Bconst of int | Bload of int | Bother

let make ?stats ?(config = default_config) ?deps trace cfg =
  let deps =
    match deps with Some d -> d | None -> Cfg.control_deps cfg
  in
  {
    trace;
    cfg;
    deps;
    stats;
    config;
    path_sink = ref None;
    guards_cache = Hashtbl.create 32;
    usages_cache = Hashtbl.create 32;
  }

let usages ctx subject =
  match Hashtbl.find_opt ctx.usages_cache subject with
  | Some kinds -> kinds
  | None ->
    let kinds = Trace.usages_of ctx.trace subject in
    Hashtbl.replace ctx.usages_cache subject kinds;
    kinds

let hit ctx name =
  (match !(ctx.path_sink) with
  | Some sink -> sink := name :: !sink
  | None -> ());
  match ctx.stats with
  | None -> ()
  | Some stats -> Stats.hit_rule stats name

(* Run a classification and collect the rules it fires, in firing
   order — the path through the decision tree of Fig. 13. *)
let with_path ctx f =
  let saved = !(ctx.path_sink) in
  let sink = ref [] in
  ctx.path_sink := Some sink;
  let finish () = ctx.path_sink := saved in
  match f () with
  | v ->
    finish ();
    (v, List.rev !sink)
  | exception e ->
    finish ();
    raise e

let all_rule_names = List.init 31 (fun i -> Printf.sprintf "R%d" (i + 1))

(* Parse the conditions observed at a JUMPI into an LT guard. Loop
   guards and bound checks are LT comparisons, possibly under ISZERO
   from the branch polarity; the bound is the second operand. Multiple
   observations (one per unrolled iteration) are unified on the bound. *)
let parse_guard ctx gpc =
  let conds = Trace.conds_at ctx.trace gpc in
  let parse cond =
    let core, _ = Sexpr.iszero_depth cond in
    match Sexpr.node core with
    | Sexpr.Bin (Sexpr.Blt, lhs, rhs) ->
      let bound =
        match Sexpr.node rhs with
        | Sexpr.Const v -> (
          match U256.to_int v with Some n -> Bconst n | None -> Bother)
        | Sexpr.CDLoad id -> Bload id
        | _ -> Bother
      in
      Some { gpc; idx = lhs; bound }
    | _ -> None
  in
  match List.filter_map parse conds with
  | [] -> None
  | first :: rest ->
    (* all unrolled instances must agree on the bound *)
    if List.for_all (fun g -> g.bound = first.bound) rest then Some first
    else None

let guards_for_pc ctx pc =
  if not ctx.config.guard_dims then []
  else
    match Hashtbl.find_opt ctx.guards_cache pc with
    | Some guards -> guards
    | None ->
      let guards =
        match Cfg.block_of_pc ctx.cfg pc with
        | None -> []
        | Some block ->
          let chain = Cfg.transitive_deps ctx.deps block.Cfg.start in
          List.filter_map
            (fun branch_start ->
              match Cfg.block_at ctx.cfg branch_start with
              | None -> None
              | Some bblock ->
                Option.bind (Cfg.branch_condition_pc bblock) (parse_guard ctx))
            chain
      in
      Hashtbl.replace ctx.guards_cache pc guards;
      guards

let guards_with_idx_in guards loc =
  List.filter
    (fun g ->
      match Sexpr.to_const g.idx with
      | Some _ -> false (* concrete loop counters carry no index term *)
      | None -> Sexpr.contains loc g.idx)
    guards

let loop_const_guards guards =
  List.filter_map
    (fun g ->
      match (Sexpr.to_const g.idx, g.bound) with
      | Some _, Bconst n -> Some n
      | _ -> None)
    guards

(* Flatten an addition into (sum of constant terms, other terms). *)
let split_terms loc =
  let terms = Sexpr.add_terms loc in
  let consts, others =
    List.partition (fun t -> Sexpr.to_const t <> None) terms
  in
  let sum =
    List.fold_left
      (fun acc t ->
        match Sexpr.to_const_int t with Some n -> acc + n | None -> acc)
      0 consts
  in
  (sum, others)

let is_offset_plus_4 loc x =
  match split_terms loc with
  | 4, [ only ] -> (
    match Sexpr.node only with Sexpr.CDLoad id -> id = x | _ -> false)
  | _ -> false

(* R20: comparison-based range enforcement marks Vyper output. *)
let vyper_contract ctx =
  ctx.config.vyper
  && List.exists
    (fun u ->
      match u.Trace.kind with
      | Trace.Range_lt _ | Trace.Range_sgt _ | Trace.Range_slt _ -> true
      | _ -> false)
    ctx.trace.Trace.usages

(* Decompose an AND mask into its shape. *)
let mask_shape m =
  let low k = U256.ones_low k and high k = U256.ones_high k in
  let rec find k =
    if k > 32 then None
    else if U256.equal m (low k) then Some (`Low k)
    else if U256.equal m (high k) then Some (`High k)
    else find (k + 1)
  in
  find 1

let fine_basic ctx ~vyper subject =
  if not ctx.config.fine_masks then Abi.Abity.Uint 256
  else
  let kinds = usages ctx subject in
  let has k = List.mem k kinds in
  let find_map f = List.find_map f kinds in
  if vyper then begin
    (* R25 default + R27-R31 refinements *)
    let range_lt =
      find_map (function Trace.Range_lt b -> Some b | _ -> None)
    in
    let range_signed =
      List.exists
        (function Trace.Range_sgt _ | Trace.Range_slt _ -> true | _ -> false)
        kinds
    in
    match range_lt with
    | Some b when U256.equal b (U256.pow2 160) ->
      hit ctx "R27";
      Abi.Abity.Address
    | Some b when U256.equal b (U256.of_int 2) ->
      hit ctx "R30";
      Abi.Abity.Bool
    | _ ->
      if range_signed then begin
        (* int128 vs decimal: the decimal bounds are scaled by 10^10 *)
        let big_bound =
          find_map (function
            | Trace.Range_sgt b | Trace.Range_slt b ->
              if U256.compare b (U256.pow2 130) > 0
                 && not (U256.get_bit b 255)
              then Some ()
              else None
            | _ -> None)
        in
        match big_bound with
        | Some () ->
          hit ctx "R29";
          Abi.Abity.Decimal
        | None ->
          hit ctx "R28";
          Abi.Abity.Int 128
      end
      else if has Trace.Byte_read then begin
        hit ctx "R31";
        Abi.Abity.Bytes_n 32
      end
      else begin
        hit ctx "R25";
        Abi.Abity.Uint 256
      end
  end
  else begin
    (* Solidity: R11-R18 after the R4 uint256 default *)
    let mask =
      find_map (function Trace.Mask_and m -> mask_shape m | _ -> None)
    in
    let signext =
      find_map (function Trace.Mask_signext k -> Some k | _ -> None)
    in
    match mask with
    | Some (`Low 20) ->
      if has Trace.Math_use then begin
        hit ctx "R16";
        Abi.Abity.Uint 160
      end
      else begin
        hit ctx "R16";
        Abi.Abity.Address
      end
    | Some (`Low k) ->
      hit ctx "R11";
      Abi.Abity.Uint (8 * k)
    | Some (`High k) ->
      hit ctx "R12";
      Abi.Abity.Bytes_n k
    | None -> (
      match signext with
      | Some k when k < 31 ->
        hit ctx "R13";
        Abi.Abity.Int (8 * (k + 1))
      | _ ->
        if has Trace.Mask_bool then begin
          hit ctx "R14";
          Abi.Abity.Bool
        end
        else if has Trace.Signed_use then begin
          hit ctx "R15";
          Abi.Abity.Int 256
        end
        else if has Trace.Byte_read then begin
          hit ctx "R18";
          Abi.Abity.Bytes_n 32
        end
        else Abi.Abity.Uint 256)
  end
