open Evm
module Sexpr = Symex.Sexpr
module Trace = Symex.Trace
module Tr = Sigrec_trace.Trace

type evidence = { rule : string; pc : int; fired : bool; note : string }

type config = {
  fine_masks : bool;
  guard_dims : bool;
  nested : bool;
  vyper : bool;
}

let default_config =
  { fine_masks = true; guard_dims = true; nested = true; vyper = true }

type ctx = {
  trace : Trace.t;
  cfg : Cfg.t;
  deps : (int, int list) Hashtbl.t;
  stats : Stats.t option;
  config : config;
  path_sink : string list ref option ref;
      (* when set, fired rules also append here: the per-parameter rule
         path of the Fig. 13 decision tree *)
  evidence : evidence list ref;
      (* every rule decision (fired and rejected) with its pc, newest
         first; always collected — rule events are rare enough that the
         explain narrative can exist without tracing enabled *)
  guards_cache : (int, guard list) Hashtbl.t;
      (* pc -> parsed guard chain; the matchers re-ask per load and the
         chain walk (transitive deps + condition parsing) is the
         expensive part *)
  usages_cache : (Trace.subject, Trace.usage_kind list) Hashtbl.t;
      (* subject -> usage kinds, replacing a linear trace scan per query *)
}

and guard = { gpc : int; idx : Sexpr.t; bound : bound }
and bound = Bconst of int | Bload of int | Bother

let make ?stats ?(config = default_config) ?deps trace cfg =
  let deps =
    match deps with Some d -> d | None -> Cfg.control_deps cfg
  in
  {
    trace;
    cfg;
    deps;
    stats;
    config;
    path_sink = ref None;
    evidence = ref [];
    guards_cache = Hashtbl.create 32;
    usages_cache = Hashtbl.create 32;
  }

let usages ctx subject =
  match Hashtbl.find_opt ctx.usages_cache subject with
  | Some kinds -> kinds
  | None ->
    let kinds = Trace.usages_of ctx.trace subject in
    Hashtbl.replace ctx.usages_cache subject kinds;
    kinds

let record_evidence ctx ~rule ~pc ~fired ~note =
  ctx.evidence := { rule; pc; fired; note } :: !(ctx.evidence);
  if Tr.enabled () then
    Tr.instant Tr.Rules rule
      [ ("pc", Tr.Int pc); ("fired", Tr.Bool fired); ("note", Tr.Str note) ]

let hit ?(pc = -1) ?(note = "") ctx name =
  record_evidence ctx ~rule:name ~pc ~fired:true ~note;
  (match !(ctx.path_sink) with
  | Some sink -> sink := name :: !sink
  | None -> ());
  match ctx.stats with
  | None -> ()
  | Some stats -> Stats.hit_rule stats name

(* A rule that was attempted but did not apply: evidence for the
   explain narrative only — no Fig. 19 counter, no decision path. *)
let reject ?(pc = -1) ?(note = "") ctx name =
  record_evidence ctx ~rule:name ~pc ~fired:false ~note

let evidence ctx = List.rev !(ctx.evidence)

(* Run a classification and collect the rules it fires, in firing
   order — the path through the decision tree of Fig. 13. *)
let with_path ctx f =
  let saved = !(ctx.path_sink) in
  let sink = ref [] in
  ctx.path_sink := Some sink;
  let finish () = ctx.path_sink := saved in
  match f () with
  | v ->
    finish ();
    (v, List.rev !sink)
  | exception e ->
    finish ();
    raise e

let all_rule_names = List.init 31 (fun i -> Printf.sprintf "R%d" (i + 1))

(* Parse the conditions observed at a JUMPI into an LT guard. Loop
   guards and bound checks are LT comparisons, possibly under ISZERO
   from the branch polarity; the bound is the second operand. Multiple
   observations (one per unrolled iteration) are unified on the bound. *)
let parse_guard ctx gpc =
  let conds = Trace.conds_at ctx.trace gpc in
  let parse cond =
    let core, _ = Sexpr.iszero_depth cond in
    match Sexpr.node core with
    | Sexpr.Bin (Sexpr.Blt, lhs, rhs) ->
      let bound =
        match Sexpr.node rhs with
        | Sexpr.Const v -> (
          match U256.to_int v with Some n -> Bconst n | None -> Bother)
        | Sexpr.CDLoad id -> Bload id
        | _ -> Bother
      in
      Some { gpc; idx = lhs; bound }
    | _ -> None
  in
  match List.filter_map parse conds with
  | [] -> None
  | first :: rest ->
    (* all unrolled instances must agree on the bound *)
    if List.for_all (fun g -> g.bound = first.bound) rest then Some first
    else None

let guards_for_pc ctx pc =
  if not ctx.config.guard_dims then []
  else
    match Hashtbl.find_opt ctx.guards_cache pc with
    | Some guards -> guards
    | None ->
      let guards =
        match Cfg.block_of_pc ctx.cfg pc with
        | None -> []
        | Some block ->
          let chain = Cfg.transitive_deps ctx.deps block.Cfg.start in
          List.filter_map
            (fun branch_start ->
              match Cfg.block_at ctx.cfg branch_start with
              | None -> None
              | Some bblock ->
                Option.bind (Cfg.branch_condition_pc bblock) (parse_guard ctx))
            chain
      in
      Hashtbl.replace ctx.guards_cache pc guards;
      guards

let guards_with_idx_in guards loc =
  List.filter
    (fun g ->
      match Sexpr.to_const g.idx with
      | Some _ -> false (* concrete loop counters carry no index term *)
      | None -> Sexpr.contains loc g.idx)
    guards

let loop_const_guards guards =
  List.filter_map
    (fun g ->
      match (Sexpr.to_const g.idx, g.bound) with
      | Some _, Bconst n -> Some n
      | _ -> None)
    guards

(* Flatten an addition into (sum of constant terms, other terms). *)
let split_terms loc =
  let terms = Sexpr.add_terms loc in
  let consts, others =
    List.partition (fun t -> Sexpr.to_const t <> None) terms
  in
  let sum =
    List.fold_left
      (fun acc t ->
        match Sexpr.to_const_int t with Some n -> acc + n | None -> acc)
      0 consts
  in
  (sum, others)

let is_offset_plus_4 loc x =
  match split_terms loc with
  | 4, [ only ] -> (
    match Sexpr.node only with Sexpr.CDLoad id -> id = x | _ -> false)
  | _ -> false

(* R20: comparison-based range enforcement marks Vyper output. *)
let vyper_contract ctx =
  ctx.config.vyper
  && List.exists
    (fun u ->
      match u.Trace.kind with
      | Trace.Range_lt _ | Trace.Range_sgt _ | Trace.Range_slt _ -> true
      | _ -> false)
    ctx.trace.Trace.usages

(* Decompose an AND mask into its shape. *)
let mask_shape m =
  let low k = U256.ones_low k and high k = U256.ones_high k in
  let rec find k =
    if k > 32 then None
    else if U256.equal m (low k) then Some (`Low k)
    else if U256.equal m (high k) then Some (`High k)
    else find (k + 1)
  in
  find 1

(* pc of the first recorded usage of [subject] matching [pred] — the
   instruction the refinement's evidence points at. *)
let usage_pc ctx subject pred =
  let rec find = function
    | [] -> -1
    | u :: rest ->
      if u.Trace.subject = subject && pred u.Trace.kind then u.Trace.upc
      else find rest
  in
  find ctx.trace.Trace.usages

let fine_basic ctx ~vyper subject =
  if not ctx.config.fine_masks then Abi.Abity.Uint 256
  else
  let kinds = usages ctx subject in
  let has k = List.mem k kinds in
  let find_map f = List.find_map f kinds in
  let pc_of pred = usage_pc ctx subject pred in
  if vyper then begin
    (* R25 default + R27-R31 refinements *)
    let range_lt =
      find_map (function Trace.Range_lt b -> Some b | _ -> None)
    in
    let range_signed =
      List.exists
        (function Trace.Range_sgt _ | Trace.Range_slt _ -> true | _ -> false)
        kinds
    in
    let range_pc =
      pc_of (function
        | Trace.Range_lt _ | Trace.Range_sgt _ | Trace.Range_slt _ -> true
        | _ -> false)
    in
    match range_lt with
    | Some b when U256.equal b (U256.pow2 160) ->
      hit ctx "R27" ~pc:range_pc ~note:"range check against 2^160";
      Abi.Abity.Address
    | Some b when U256.equal b (U256.of_int 2) ->
      hit ctx "R30" ~pc:range_pc ~note:"range check against 2";
      Abi.Abity.Bool
    | _ ->
      if range_signed then begin
        (* int128 vs decimal: the decimal bounds are scaled by 10^10 *)
        let big_bound =
          find_map (function
            | Trace.Range_sgt b | Trace.Range_slt b ->
              if U256.compare b (U256.pow2 130) > 0
                 && not (U256.get_bit b 255)
              then Some ()
              else None
            | _ -> None)
        in
        match big_bound with
        | Some () ->
          hit ctx "R29" ~pc:range_pc ~note:"signed range bound > 2^130";
          Abi.Abity.Decimal
        | None ->
          hit ctx "R28" ~pc:range_pc ~note:"signed range check";
          Abi.Abity.Int 128
      end
      else if has Trace.Byte_read then begin
        hit ctx "R31"
          ~pc:(pc_of (( = ) Trace.Byte_read))
          ~note:"BYTE extraction";
        Abi.Abity.Bytes_n 32
      end
      else begin
        reject ctx "R27" ~note:"no range check";
        hit ctx "R25" ~note:"no refinement hint";
        Abi.Abity.Uint 256
      end
  end
  else begin
    (* Solidity: R11-R18 after the R4 uint256 default *)
    let mask =
      find_map (function Trace.Mask_and m -> mask_shape m | _ -> None)
    in
    let signext =
      find_map (function Trace.Mask_signext k -> Some k | _ -> None)
    in
    let mask_pc =
      pc_of (function Trace.Mask_and _ -> true | _ -> false)
    in
    match mask with
    | Some (`Low 20) ->
      if has Trace.Math_use then begin
        hit ctx "R16" ~pc:mask_pc
          ~note:"mask 0xff..ff (20 bytes) with arithmetic use";
        Abi.Abity.Uint 160
      end
      else begin
        hit ctx "R16" ~pc:mask_pc ~note:"mask 0xff..ff (20 bytes)";
        Abi.Abity.Address
      end
    | Some (`Low k) ->
      hit ctx "R11" ~pc:mask_pc
        ~note:(Printf.sprintf "AND mask keeps low %d bytes" k);
      Abi.Abity.Uint (8 * k)
    | Some (`High k) ->
      hit ctx "R12" ~pc:mask_pc
        ~note:(Printf.sprintf "AND mask keeps high %d bytes" k);
      Abi.Abity.Bytes_n k
    | None -> (
      reject ctx "R11" ~note:"no AND mask on raw value";
      match signext with
      | Some k when k < 31 ->
        hit ctx "R13"
          ~pc:(pc_of (function Trace.Mask_signext _ -> true | _ -> false))
          ~note:(Printf.sprintf "SIGNEXTEND from byte %d" k);
        Abi.Abity.Int (8 * (k + 1))
      | _ ->
        reject ctx "R13" ~note:"no narrowing SIGNEXTEND";
        if has Trace.Mask_bool then begin
          hit ctx "R14"
            ~pc:(pc_of (( = ) Trace.Mask_bool))
            ~note:"double ISZERO normalisation";
          Abi.Abity.Bool
        end
        else if has Trace.Signed_use then begin
          hit ctx "R15"
            ~pc:(pc_of (( = ) Trace.Signed_use))
            ~note:"signed arithmetic (SDIV/SMOD)";
          Abi.Abity.Int 256
        end
        else if has Trace.Byte_read then begin
          hit ctx "R18"
            ~pc:(pc_of (( = ) Trace.Byte_read))
            ~note:"BYTE extraction";
          Abi.Abity.Bytes_n 32
        end
        else Abi.Abity.Uint 256)
  end
