type t = {
  code : string;
  code_hash : string;
  program : Symex.Exec.program;
  cfg : Evm.Cfg.t;
  deps : (int, int list) Hashtbl.t;
  entries : Ids.entry list;
}

let hash_of_code code = Evm.Keccak.digest code

let make code =
  let program = Symex.Exec.prepare code in
  let cfg = Evm.Cfg.of_instructions (Symex.Exec.instructions program) in
  {
    code;
    code_hash = hash_of_code code;
    program;
    cfg;
    deps = Evm.Cfg.control_deps cfg;
    entries = Ids.extract_prepared program;
  }

let of_hex hex = make (Evm.Hex.decode hex)

let of_input input =
  let trimmed = String.trim input in
  if Evm.Hex.is_valid trimmed then of_hex trimmed else make input

let code t = t.code
let code_hash t = t.code_hash
let code_hash_hex t = Evm.Hex.encode t.code_hash
let entries t = t.entries
let function_count t = List.length t.entries
