type t = {
  code : string;
  code_hash : string;
  program : Symex.Exec.program;
  cfg : Evm.Cfg.t;
  deps : (int, int list) Hashtbl.t;
  entries : Ids.entry list;
  static : Sigrec_static.Absint.result;
  unresolved_before : int;
  unresolved_after : int;
  absint_cache : (int, Sigrec_static.Absint.result) Hashtbl.t;
}

let hash_of_code code = Evm.Keccak.digest code

let make code =
  let module Tr = Sigrec_trace.Trace in
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  let program = Symex.Exec.prepare code in
  let raw_cfg = Evm.Cfg.of_instructions (Symex.Exec.instructions program) in
  (* One whole-contract abstract-interpretation run from offset 0:
     resolves cross-block pushed jump targets before anything downstream
     looks at the graph, so the control-dependence table and every
     per-function pass see the fed-back edges. *)
  let static = Sigrec_static.Absint.analyze ~depth:0 ~entry:0 raw_cfg in
  let cfg = Sigrec_static.Absint.resolved_cfg static in
  let t =
    {
      code;
      code_hash = hash_of_code code;
      program;
      cfg;
      deps = Evm.Cfg.control_deps cfg;
      entries = Ids.extract_prepared program;
      static;
      unresolved_before = Evm.Cfg.unresolved_count raw_cfg;
      unresolved_after = Evm.Cfg.unresolved_count cfg;
      absint_cache = Hashtbl.create 8;
    }
  in
  if Tr.enabled () then
    Tr.complete Tr.Lift "contract" ~t0_us
      [
        ("bytes", Tr.Int (String.length code));
        ("entries", Tr.Int (List.length t.entries));
        ("jumps_resolved", Tr.Int (t.unresolved_before - t.unresolved_after));
      ];
  t

let absint_for t ~entry =
  match Hashtbl.find_opt t.absint_cache entry with
  | Some r -> r
  | None ->
    let r = Sigrec_static.Absint.analyze ~depth:1 ~entry t.cfg in
    Hashtbl.replace t.absint_cache entry r;
    r

let of_hex hex = make (Evm.Hex.decode hex)

let of_input input =
  let trimmed = String.trim input in
  if Evm.Hex.is_valid trimmed then of_hex trimmed else make input

let code t = t.code
let code_hash t = t.code_hash
let code_hash_hex t = Evm.Hex.encode t.code_hash
let entries t = t.entries
let function_count t = List.length t.entries
let static t = t.static
let jumps_resolved t = t.unresolved_before - t.unresolved_after
