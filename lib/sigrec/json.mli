(** Minimal JSON parsing and printing (no external dependency).

    Parses the line-oriented request protocol of [sigrec serve] and
    carries the escape/print helpers shared by every JSON-emitting
    surface ({!Render}, the CLI, serve responses). Number fidelity is
    [float]: fine for ids and counters, not a general-purpose library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict single-value parse; trailing non-whitespace is an error.
    [\uXXXX] escapes (including surrogate pairs) decode to UTF-8. *)

val to_string : t -> string
(** Compact one-line rendering; object fields keep their order. *)

(** {2 Print helpers for hand-rendered JSON} *)

val escape : string -> string
val quote : string -> string
(** [quote s] is [s] escaped and double-quoted. *)

val arr : string list -> string
(** Join already-rendered values into ["[...]"] . *)

val obj : (string * string) list -> string
(** Join (key, already-rendered value) pairs into ["{...}"]. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_int_opt : t -> int option
(** [Some] only for an integral [Num]. *)
