(** SigRec's public entry point: runtime bytecode in, recovered function
    signatures out (paper Fig. 12). *)

type recovered = {
  selector : string;           (** 4-byte function id *)
  selector_hex : string;
  params : Abi.Abity.t list;
  rule_paths : string list list;
      (** per parameter: the rule path through the Fig. 13 decision
          tree that produced its type *)
  evidence : Rules.evidence list;
      (** every rule decision (fired and rejected) with pc witnesses,
          oldest first — the raw material of [sigrec explain] *)
  lang : Abi.Abity.lang;
  entry_pc : int;
  paths_explored : int;  (** symbolic paths the executor walked *)
}

val recover :
  ?stats:Stats.t ->
  ?config:Rules.config ->
  ?static_prune:bool ->
  ?budget:Symex.Exec.budget ->
  string ->
  recovered list
(** [recover bytecode] extracts the function ids from the dispatcher and
    runs TASE on each function body. [stats] accumulates per-rule usage
    counts (Fig. 19). Builds a fresh {!Contract.t} per call; batch
    workloads should use {!Engine} (caching, parallel fan-out) or
    {!recover_contract} instead. *)

val recover_contract :
  ?stats:Stats.t ->
  ?config:Rules.config ->
  ?static_prune:bool ->
  ?budget:Symex.Exec.budget ->
  Contract.t ->
  recovered list
(** Same over a pre-built analysis context: the disassembly, CFG and
    dispatcher entries are not recomputed. *)

val of_infer :
  selector:string -> entry_pc:int -> Infer.result -> recovered
(** Package one inference result as a [recovered]. *)

val type_list : recovered -> string
(** Canonical comma-separated parameter list, e.g. ["uint8\[\],address"]. *)

val pp : Format.formatter -> recovered -> unit
