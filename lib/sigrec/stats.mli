(** Typed analysis counters.

    Replaces the [(string, int) Hashtbl.t] side-channel that used to be
    threaded through [Recover.recover] / [Infer.infer] / [Rules.make]:
    per-rule usage counts (Fig. 19), engine cache hits/misses, and the
    symbolic-execution path totals. A [t] is cheap to create; parallel
    workers each accumulate into their own and the engine combines them
    with {!merge}, which is associative and commutative, so per-domain
    stats merge deterministically regardless of scheduling. *)

type t

val create : unit -> t

val hit_rule : t -> string -> unit
(** Count one firing of the named rule (["R1"] .. ["R31"]). *)

val rule_count : t -> string -> int
(** Firings recorded for the named rule; 0 when never fired. *)

val rule_counts : t -> (string * int) list
(** All 31 rules in numbering order, including zero counts. *)

val unexercised : t -> string list
(** The canonical rules (R1-R31) with a zero count, in numbering order.
    The property harness turns this into a regression gate: a run over
    the generated corpus must leave it empty, so silently disabling a
    rule fails the suite instead of just shifting an accuracy figure. *)

val cache_hit : t -> unit
val cache_miss : t -> unit
val cache_hits : t -> int
val cache_misses : t -> int
(** A miss is an actual analysis; a hit is a bytecode answered from the
    content-addressed cache (or deduplicated within one batch). *)

val add_paths : t -> int -> unit
val paths_explored : t -> int
(** Total symbolic-execution paths explored across all inferences. *)

val functions_recovered : t -> int
val add_functions : t -> int -> unit

val add_pruned : t -> int -> unit
val forks_pruned : t -> int
(** JUMPI forks the executor skipped on a static prune hint. *)

val lint_agree : t -> unit
val lint_disagree : t -> unit
val lint_agreements : t -> int
val lint_disagreements : t -> int
(** Differential-lint verdicts: a function whose TASE recovery and
    static summary produced no finding counts as one agreement. *)

val add_deduped : t -> int -> unit
val inputs_deduped : t -> int
(** Batch inputs [Engine.recover_all] answered by pointing at another
    input of the same batch with identical bytecode (cache hits are
    counted separately, under {!cache_hits}). *)

val add_interner : t -> hits:int -> misses:int -> unit
val intern_hits : t -> int
val intern_misses : t -> int
(** Expression-interner traffic ({!Symex.Sexpr.interner_counters})
    attributed to the engine's analyses: a miss allocates a fresh node,
    a hit reuses one. Recorded as per-analysis deltas of the worker
    domain's counters, so merging worker stats stays commutative. *)

val add_evictions : t -> int -> unit
val cache_evictions : t -> int
(** Reports the engine's bounded LRU cache dropped to stay within its
    configured capacity ([Engine.Config.cache_capacity]); 0 when the
    cache is unbounded. *)

val add_layout : t -> slots:int -> unknown:int -> unit
(** Count one storage-layout recovery: [slots] declared slots found,
    [unknown] storage operations whose slot the pass could not
    resolve. *)

val layouts_recovered : t -> int
val layout_slots : t -> int
val layout_unknown_ops : t -> int

val add_stream_lines : t -> lines:int -> skipped:int -> unit
(** Count physical input lines a streaming reader processed and how
    many of them it skipped as malformed. *)

val add_stream_dedup : t -> int -> unit
(** Count streamed bytecodes answered from the report cache or by a
    duplicate earlier in the stream, without a fresh analysis. *)

val stream_lines : t -> int
val stream_skipped : t -> int
val stream_dedup_hits : t -> int

val add_classification :
  t -> outcome:[ `Exact | `Partial | `Unknown ] -> probes:int -> unit
(** Count one fresh interface classification by its verdict level,
    plus the behavioural probes it spent. *)

val add_classify_cache_hits : t -> int -> unit
(** Count classifications answered from the verdict LRU. *)

val classifications : t -> int
val classify_exact : t -> int
val classify_partial : t -> int
val classify_unknown : t -> int
val classify_probes : t -> int
val classify_cache_hits : t -> int

val merge : t -> t -> t
(** Pointwise sum into a fresh [t]; neither argument is modified. *)

val merge_into : into:t -> t -> unit
(** Pointwise sum in place. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: non-zero rule counters, cache ratio, paths. *)

val to_json : t -> string
(** One JSON object with a stable key order: a ["rules"] sub-object
    holding all 31 canonical counters (zeros included) and then every
    scalar counter. [pp] and [to_json] read the scalars through the
    same descriptor list, so the two field sets cannot drift apart. *)

val scalar_counters : t -> (string * int) list
(** Every scalar counter with its current value, in the canonical
    descriptor order both {!pp} and {!to_json} render through —
    exported so tests can assert the rendered surfaces stay in sync
    with the descriptor list. *)

val to_openmetrics : ?prefix:string -> t -> string
(** The third renderer off the same descriptor list: an OpenMetrics
    exposition chunk — one [counter] family per scalar ([prefix ^ key],
    default prefix ["sigrec_"], with the [_total] sample suffix) plus
    one [prefix ^ "rule_fired"] family carrying all 31 canonical rule
    counters under a [rule] label. Fed to the metrics registry as a
    collector so stats render through the same surface as histograms
    and gauges. *)
