let rule_names = List.init 31 (fun i -> Printf.sprintf "R%d" (i + 1))

type t = {
  rules : (string, int) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable paths : int;
  mutable functions : int;
  mutable pruned : int;
  mutable lint_agree : int;
  mutable lint_disagree : int;
  mutable deduped : int;
  mutable intern_hits : int;
  mutable intern_misses : int;
  mutable evictions : int;
  mutable layouts : int;
  mutable layout_slots : int;
  mutable layout_unknown : int;
  mutable stream_lines : int;
  mutable stream_skipped : int;
  mutable stream_dedup : int;
  mutable classifications : int;
  mutable classify_exact : int;
  mutable classify_partial : int;
  mutable classify_unknown : int;
  mutable classify_probes : int;
  mutable classify_cache : int;
}

let create () =
  {
    rules = Hashtbl.create 31;
    cache_hits = 0;
    cache_misses = 0;
    paths = 0;
    functions = 0;
    pruned = 0;
    lint_agree = 0;
    lint_disagree = 0;
    deduped = 0;
    intern_hits = 0;
    intern_misses = 0;
    evictions = 0;
    layouts = 0;
    layout_slots = 0;
    layout_unknown = 0;
    stream_lines = 0;
    stream_skipped = 0;
    stream_dedup = 0;
    classifications = 0;
    classify_exact = 0;
    classify_partial = 0;
    classify_unknown = 0;
    classify_probes = 0;
    classify_cache = 0;
  }

let hit_rule t name =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.rules name) in
  Hashtbl.replace t.rules name (cur + 1)

let rule_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.rules name)

let rule_counts t = List.map (fun name -> (name, rule_count t name)) rule_names
let unexercised t = List.filter (fun name -> rule_count t name = 0) rule_names

let cache_hit t = t.cache_hits <- t.cache_hits + 1
let cache_miss t = t.cache_misses <- t.cache_misses + 1
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let add_paths t n = t.paths <- t.paths + n
let paths_explored t = t.paths
let functions_recovered t = t.functions
let add_functions t n = t.functions <- t.functions + n
let add_pruned t n = t.pruned <- t.pruned + n
let forks_pruned t = t.pruned
let lint_agree t = t.lint_agree <- t.lint_agree + 1
let lint_disagree t = t.lint_disagree <- t.lint_disagree + 1
let lint_agreements t = t.lint_agree
let lint_disagreements t = t.lint_disagree
let add_deduped t n = t.deduped <- t.deduped + n
let inputs_deduped t = t.deduped

let add_interner t ~hits ~misses =
  t.intern_hits <- t.intern_hits + hits;
  t.intern_misses <- t.intern_misses + misses

let intern_hits t = t.intern_hits
let intern_misses t = t.intern_misses
let add_evictions t n = t.evictions <- t.evictions + n
let cache_evictions t = t.evictions

let add_layout t ~slots ~unknown =
  t.layouts <- t.layouts + 1;
  t.layout_slots <- t.layout_slots + slots;
  t.layout_unknown <- t.layout_unknown + unknown

let add_stream_lines t ~lines ~skipped =
  t.stream_lines <- t.stream_lines + lines;
  t.stream_skipped <- t.stream_skipped + skipped

let add_stream_dedup t n = t.stream_dedup <- t.stream_dedup + n
let stream_lines t = t.stream_lines
let stream_skipped t = t.stream_skipped
let stream_dedup_hits t = t.stream_dedup

let add_classification t ~outcome ~probes =
  t.classifications <- t.classifications + 1;
  (match outcome with
  | `Exact -> t.classify_exact <- t.classify_exact + 1
  | `Partial -> t.classify_partial <- t.classify_partial + 1
  | `Unknown -> t.classify_unknown <- t.classify_unknown + 1);
  t.classify_probes <- t.classify_probes + probes

let add_classify_cache_hits t n = t.classify_cache <- t.classify_cache + n
let classifications t = t.classifications
let classify_exact t = t.classify_exact
let classify_partial t = t.classify_partial
let classify_unknown t = t.classify_unknown
let classify_probes t = t.classify_probes
let classify_cache_hits t = t.classify_cache

let layouts_recovered t = t.layouts
let layout_slots t = t.layout_slots
let layout_unknown_ops t = t.layout_unknown

let merge_into ~into src =
  List.iter
    (fun name ->
      let n = rule_count src name in
      if n > 0 then
        Hashtbl.replace into.rules name (rule_count into name + n))
    rule_names;
  (* rules outside the canonical numbering (future extensions) *)
  Hashtbl.iter
    (fun name n ->
      if not (List.mem name rule_names) then
        Hashtbl.replace into.rules name (rule_count into name + n))
    src.rules;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.cache_misses <- into.cache_misses + src.cache_misses;
  into.paths <- into.paths + src.paths;
  into.functions <- into.functions + src.functions;
  into.pruned <- into.pruned + src.pruned;
  into.lint_agree <- into.lint_agree + src.lint_agree;
  into.lint_disagree <- into.lint_disagree + src.lint_disagree;
  into.deduped <- into.deduped + src.deduped;
  into.intern_hits <- into.intern_hits + src.intern_hits;
  into.intern_misses <- into.intern_misses + src.intern_misses;
  into.evictions <- into.evictions + src.evictions;
  into.layouts <- into.layouts + src.layouts;
  into.layout_slots <- into.layout_slots + src.layout_slots;
  into.layout_unknown <- into.layout_unknown + src.layout_unknown;
  into.stream_lines <- into.stream_lines + src.stream_lines;
  into.stream_skipped <- into.stream_skipped + src.stream_skipped;
  into.stream_dedup <- into.stream_dedup + src.stream_dedup;
  into.classifications <- into.classifications + src.classifications;
  into.classify_exact <- into.classify_exact + src.classify_exact;
  into.classify_partial <- into.classify_partial + src.classify_partial;
  into.classify_unknown <- into.classify_unknown + src.classify_unknown;
  into.classify_probes <- into.classify_probes + src.classify_probes;
  into.classify_cache <- into.classify_cache + src.classify_cache

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* The one descriptor list both renderers draw from: [pp] reads every
   value it prints through [scalar], and [to_json] emits exactly these
   keys in exactly this order — adding a counter here extends both
   outputs at once, and forgetting one can't desynchronise them. *)
let scalars : (string * (t -> int)) list =
  [
    ("functions_recovered", fun t -> t.functions);
    ("paths_explored", fun t -> t.paths);
    ("forks_pruned", fun t -> t.pruned);
    ("cache_hits", fun t -> t.cache_hits);
    ("cache_misses", fun t -> t.cache_misses);
    ("inputs_deduped", fun t -> t.deduped);
    ("cache_evictions", fun t -> t.evictions);
    ("intern_hits", fun t -> t.intern_hits);
    ("intern_misses", fun t -> t.intern_misses);
    ("lint_agreements", fun t -> t.lint_agree);
    ("lint_disagreements", fun t -> t.lint_disagree);
    ("layouts_recovered", fun t -> t.layouts);
    ("layout_slots", fun t -> t.layout_slots);
    ("layout_unknown_ops", fun t -> t.layout_unknown);
    ("stream_lines", fun t -> t.stream_lines);
    ("stream_skipped", fun t -> t.stream_skipped);
    ("stream_dedup_hits", fun t -> t.stream_dedup);
    ("classifications", fun t -> t.classifications);
    ("classify_exact", fun t -> t.classify_exact);
    ("classify_partial", fun t -> t.classify_partial);
    ("classify_unknown", fun t -> t.classify_unknown);
    ("classify_probes", fun t -> t.classify_probes);
    ("classify_cache_hits", fun t -> t.classify_cache);
  ]

let scalar t key = (List.assoc key scalars) t
let scalar_counters t = List.map (fun (key, get) -> (key, get t)) scalars

let pp fmt t =
  let v key = scalar t key in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, n) ->
      if n > 0 then Format.fprintf fmt "%-4s %d@," name n)
    (rule_counts t);
  Format.fprintf fmt "functions recovered: %d@," (v "functions_recovered");
  Format.fprintf fmt "paths explored: %d@," (v "paths_explored");
  if v "forks_pruned" > 0 then
    Format.fprintf fmt "forks pruned statically: %d@," (v "forks_pruned");
  if v "lint_agreements" + v "lint_disagreements" > 0 then
    Format.fprintf fmt "lint: %d agree / %d disagree@," (v "lint_agreements")
      (v "lint_disagreements");
  let total = v "cache_hits" + v "cache_misses" in
  if total > 0 then
    Format.fprintf fmt "cache: %d hits / %d misses (%.1f%% hit rate)@,"
      (v "cache_hits") (v "cache_misses")
      (100.0 *. float_of_int (v "cache_hits") /. float_of_int total);
  if v "inputs_deduped" > 0 then
    Format.fprintf fmt "batch inputs deduplicated: %d@," (v "inputs_deduped");
  if v "cache_evictions" > 0 then
    Format.fprintf fmt "cache evictions: %d@," (v "cache_evictions");
  let itotal = v "intern_hits" + v "intern_misses" in
  if itotal > 0 then
    Format.fprintf fmt "interner: %d hits / %d misses (%.1f%% hit rate)@,"
      (v "intern_hits") (v "intern_misses")
      (100.0 *. float_of_int (v "intern_hits") /. float_of_int itotal);
  if v "layouts_recovered" > 0 then
    Format.fprintf fmt "layouts: %d recovered, %d slots (%d unresolved ops)@,"
      (v "layouts_recovered") (v "layout_slots") (v "layout_unknown_ops");
  if v "stream_lines" > 0 then
    Format.fprintf fmt "stream: %d lines (%d skipped, %d dedup hits)@,"
      (v "stream_lines") (v "stream_skipped") (v "stream_dedup_hits");
  if v "classifications" + v "classify_cache_hits" > 0 then
    Format.fprintf fmt
      "classify: %d verdicts (%d exact / %d partial / %d unknown), %d        probes, %d cache hits@,"
      (v "classifications") (v "classify_exact") (v "classify_partial")
      (v "classify_unknown") (v "classify_probes")
      (v "classify_cache_hits");
  Format.fprintf fmt "@]"

(* The third renderer off the same descriptor list: an OpenMetrics
   exposition chunk, so the metrics registry absorbs every stats
   counter (and the per-rule counts as one labelled family) without a
   second list to keep in sync. *)
let to_openmetrics ?(prefix = "sigrec_") t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, get) ->
      let name = prefix ^ key in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
      Buffer.add_string buf
        (Printf.sprintf "%s_total %d\n" name (get t)))
    scalars;
  let rule_family = prefix ^ "rule_fired" in
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s counter\n" rule_family);
  List.iter
    (fun (name, n) ->
      Buffer.add_string buf
        (Printf.sprintf "%s_total{rule=\"%s\"} %d\n" rule_family name n))
    (rule_counts t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"rules\":{";
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name n))
    (rule_counts t);
  (* rules outside the canonical numbering, if any, in sorted order *)
  let extras =
    Hashtbl.fold
      (fun name n acc ->
        if List.mem name rule_names then acc else (name, n) :: acc)
      t.rules []
    |> List.sort compare
  in
  List.iter
    (fun (name, n) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" name n))
    extras;
  Buffer.add_char buf '}';
  List.iter
    (fun (key, get) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" key (get t)))
    scalars;
  Buffer.add_char buf '}';
  Buffer.contents buf
