(** Batch recovery engine.

    Layers three production concerns over the TASE core:

    - a content-addressed cache keyed by the Keccak-256 code hash, so
      the byte-identical duplicates that dominate deployed contracts
      are analyzed exactly once (hit/miss counters in {!stats});
    - a multicore fan-out over OCaml domains ([?jobs], default
      [Domain.recommended_domain_count ()]) with a deterministic merge:
      {!recover_all} output is byte-identical whatever [jobs] is;
    - a structured per-function {!outcome} replacing silently-empty
      result lists, so callers can tell "no public functions" from
      "symbolic execution gave up" from "the analysis crashed".

    An engine is safe to share between domains; all cache and stats
    mutation happens under an internal lock. *)

type error = {
  selector : string;       (** 4 raw bytes; [""] for contract-level failure *)
  selector_hex : string;
  entry_pc : int;          (** [-1] for contract-level failure *)
  message : string;
}

type outcome =
  | Recovered of { result : Recover.recovered; elapsed_ns : int }
      (** [elapsed_ns] is this function's wall-clock analysis time —
          measured unconditionally, so [batch --format json] reports
          per-contract latency without tracing enabled. Never rendered
          by {!pp_outcome}: the printed report stays byte-identical
          across runs. *)
  | Budget_exhausted of {
      partial : Recover.recovered;
      paths_explored : int;
      elapsed_ns : int;
    }
      (** symbolic execution hit its path/step budget: [partial] holds
          whatever the truncated trace supported and may be missing
          parameters or refinements *)
  | Failed of error

type report = {
  code_hash : string;      (** lowercase hex Keccak-256 of the bytecode *)
  outcomes : outcome list; (** one per dispatcher entry, dispatch order;
                               empty = no public/external functions *)
  from_cache : bool;
}

type t

val create :
  ?config:Rules.config ->
  ?budget:Symex.Exec.budget ->
  ?static_prune:bool ->
  unit ->
  t
(** A fresh engine with an empty cache. [config], [budget] and
    [static_prune] apply to every analysis the engine runs (they are
    part of what a cached report means, so use one engine per
    configuration). [static_prune] (default [true]) turns on the
    abstract-interpretation pre-screen that skips forking at branches
    proven calldata-independent; see [Stats.forks_pruned]. *)

val recover : t -> string -> report
(** [recover t bytecode] answers from the cache or analyzes and fills
    it. *)

val recover_all : ?jobs:int -> t -> string list -> report list
(** [recover_all t codes] returns one report per input, in input order.
    Distinct uncached bytecodes are analyzed in parallel on [jobs]
    domains; duplicates and cache hits are answered without re-analysis.
    The result is byte-identical to [~jobs:1]. *)

val signatures : report -> Recover.recovered list
(** The recovered signatures including budget-exhausted partials — the
    closest equivalent of the old [Recover.recover] result. *)

val stats : t -> Stats.t
(** Cumulative counters: rule usage, functions recovered, paths
    explored, cache hits/misses ([cache_misses] = analyses actually
    run). *)

val cache_size : t -> int
val clear : t -> unit

val outcome_selector_hex : outcome -> string

val outcome_elapsed_ns : outcome -> int option
(** Per-function wall-clock analysis time; [None] for [Failed]. *)


val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
