(** Batch recovery engine.

    Layers three production concerns over the TASE core:

    - a content-addressed cache keyed by the Keccak-256 code hash —
      optionally bounded ({!Config.cache_capacity}), LRU-evicted — so
      the byte-identical duplicates that dominate deployed contracts
      are analyzed exactly once (hit/miss/eviction counters in
      {!stats});
    - a multicore fan-out over a persistent domain pool ({!Pool}) with
      a deterministic merge: {!recover_all} output is byte-identical
      whatever {!Config.jobs} is;
    - a structured per-function {!outcome} replacing silently-empty
      result lists, so callers can tell "no public functions" from
      "symbolic execution gave up" from "the analysis crashed".

    An engine is safe to share between domains; all cache and stats
    mutation happens under an internal lock.

    Engines are configured with one explicit {!Config.t} record
    ({!make}) rather than a sprawl of optional arguments.

    Besides signatures, an engine also serves the second recovery
    product: {!layout} / {!layout_all} run the static storage-layout
    pass ({!Sigrec_layout.Layout}) behind the same content-addressed
    caching and pool fan-out. *)

(** Everything an engine's behavior depends on, in one explicit record.

    Build one with functional updates from {!Config.default}:
    {[
      Engine.make
        Config.(default |> with_jobs 4 |> with_cache_capacity 4096)
    ]}
    The configuration is part of what a cached report means, so use one
    engine per configuration. *)
module Config : sig
  type t = {
    rules : Rules.config;  (** recovery-rule switches (masks, guards…) *)
    budget : Symex.Exec.budget option;
        (** symbolic-execution budget; [None] = unbounded *)
    static_prune : bool;
        (** abstract-interpretation pre-screen that skips forking at
            branches proven calldata-independent; see
            [Stats.forks_pruned] *)
    jobs : int;
        (** upper bound on worker domains for {!recover_all}; [0] (the
            default) means [Domain.recommended_domain_count ()]. This
            is a cap, not a demand: the engine never runs more domains
            than the hardware can schedule simultaneously, because
            OCaml's stop-the-world minor collector makes timesharing
            domains slower than one — on a one-core machine every
            [jobs] value is the sequential engine. *)
    cache_capacity : int;
        (** max cached reports before LRU eviction; [0] = unbounded
            (the one-shot CLI default — a resident service should set a
            bound) *)
  }

  val default : t
  (** [{ rules = Rules.default_config; budget = None;
        static_prune = true; jobs = 0; cache_capacity = 0 }] —
      identical behavior to the old [create ()]. *)

  val with_rules : Rules.config -> t -> t
  val with_budget : Symex.Exec.budget -> t -> t
  val without_budget : t -> t
  val with_static_prune : bool -> t -> t

  val with_jobs : int -> t -> t
  (** Clamped to [>= 0]; [0] = auto. See {!type-t.jobs}: the value is
      an upper bound, further clamped to the hardware domain count at
      run time. *)

  val with_cache_capacity : int -> t -> t
  (** Clamped to [>= 0]; [0] = unbounded. *)
end

type error = {
  selector : string;       (** 4 raw bytes; [""] for contract-level failure *)
  selector_hex : string;
  entry_pc : int;          (** [-1] for contract-level failure *)
  message : string;
}

type outcome =
  | Recovered of { result : Recover.recovered; elapsed_ns : int }
      (** [elapsed_ns] is this function's wall-clock analysis time —
          measured unconditionally, so [batch --format json] reports
          per-contract latency without tracing enabled. Never rendered
          by {!pp_outcome}: the printed report stays byte-identical
          across runs. *)
  | Budget_exhausted of {
      partial : Recover.recovered;
      paths_explored : int;
      elapsed_ns : int;
    }
      (** symbolic execution hit its path/step budget: [partial] holds
          whatever the truncated trace supported and may be missing
          parameters or refinements *)
  | Failed of error

type report = {
  code_hash : string;      (** lowercase hex Keccak-256 of the bytecode *)
  outcomes : outcome list; (** one per dispatcher entry, dispatch order;
                               empty = no public/external functions *)
  from_cache : bool;
}

type t

val make : Config.t -> t
(** A fresh engine with an empty cache, configured by [config]. *)

val config : t -> Config.t
(** The configuration the engine was made with. *)

val recover : t -> string -> report
(** [recover t bytecode] answers from the cache or analyzes and fills
    it. *)

val recover_all : t -> string list -> report list
(** [recover_all t codes] returns one report per input, in input order.
    Distinct uncached bytecodes are analyzed in parallel on up to
    [Config.jobs] domains (pooled, persistent across batches, and
    never more than the hardware supports); duplicates and cache hits
    are answered without re-analysis. The result is byte-identical to
    [jobs = 1]. *)

(** Streaming recovery: feed bytecodes one at a time, receive reports
    through a callback, and never hold more than one batch in memory.

    A session buffers up to [batch] bytecodes (default
    {!Stream.default_batch}) and pushes each full buffer through
    {!recover_all}, so worker fan-out, in-batch dedup and the report
    LRU all apply; reports are emitted in feed order. Cross-batch
    duplicates — ~90 % of a mainnet corpus — are answered from the
    cache without re-analysis and counted in [Stats.stream_dedup_hits].
    A session is not thread-safe; feed it from one thread (the engine
    underneath still parallelizes each batch). *)
module Stream : sig
  type session

  (** One census heartbeat: a monotonic snapshot of the session so far,
      delivered at batch boundaries. *)
  type progress = {
    contracts : int;  (** bytecodes fed so far *)
    distinct : int;  (** answered by a fresh analysis *)
    dedup_hits : int;  (** answered from cache / in-batch dedup *)
    elapsed_ns : int;
    rate : float;  (** contracts per second since [start] *)
    heap_mb : float;  (** live major-heap size at the heartbeat *)
    eta_ns : int option;
        (** remaining time at the current rate; [None] unless the
            caller declared [expected] and it is still ahead *)
  }

  val default_batch : int
  (** 256 — large enough to amortize pool fan-out and in-batch dedup,
      small enough that buffered bytecodes stay in cache-friendly
      memory. *)

  val start :
    ?batch:int ->
    ?progress_every:int ->
    ?progress:(progress -> unit) ->
    ?expected:int ->
    t ->
    emit:(report -> unit) ->
    session
  (** [emit] is called once per fed bytecode, in feed order, as each
      internal batch completes. When [progress] is given it fires at
      the first batch boundary after every [progress_every] contracts
      (default 1000) — never mid-batch, so the numbers always describe
      completed analyses — plus once at {!finish} if anything was fed
      since the last heartbeat. [expected] (a known corpus size)
      enables the [eta_ns] field. *)

  val feed : session -> string -> unit
  (** Buffer one bytecode; runs a batch (invoking [emit]) when the
      buffer reaches the batch size. *)

  val finish : session -> int
  (** Flush the remaining partial batch and return the total number of
      bytecodes fed over the session's lifetime. *)
end

val recover_stream :
  ?batch:int -> t -> string Seq.t -> emit:(report -> unit) -> int
(** [recover_stream t codes ~emit] drains [codes] through a
    {!Stream.session} and returns the contract count. Output (the
    [emit] sequence) is report-for-report identical to
    [recover_all t (List.of_seq codes)] up to [from_cache] flags —
    which batch first analyzes a given bytecode depends on the batch
    boundaries. *)

val signatures : report -> Recover.recovered list
(** The recovered signatures including budget-exhausted partials — the
    closest equivalent of the old [Recover.recover] result. *)

val stats : t -> Stats.t
(** Cumulative counters: rule usage, functions recovered, paths
    explored, cache hits/misses/evictions ([cache_misses] = analyses
    actually run). *)

val cache_size : t -> int
val clear : t -> unit

val effective_jobs : t -> int
(** The worker-domain count {!recover_all} actually uses: [Config.jobs]
    clamped to the hardware ([Domain.recommended_domain_count ()]), or
    the hardware count when [jobs = 0]. The ["workers"] field a serve
    [metrics] reply reports. *)

val cache_stats : t -> (string * int * int * int) list
(** Every LRU the engine owns as [(name, length, capacity, evictions)]
    — [("reports", …); ("layouts", …); ("verdicts", …)] — read under
    the engine lock. Capacity 0 means unbounded. Feeds the cache gauges
    on the metrics surface. *)

val outcome_selector_hex : outcome -> string

val outcome_elapsed_ns : outcome -> int option
(** Per-function wall-clock analysis time; [None] for [Failed]. *)


val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Storage-layout recovery} *)

type layout_report = {
  layout_code_hash : string;
      (** lowercase hex Keccak-256 of the bytecode *)
  layout : Sigrec_layout.Layout.t;
  layout_from_cache : bool;
}

val layout : t -> string -> layout_report
(** [layout t bytecode] recovers the contract's storage layout,
    answering from the engine's layout cache when the same bytecode
    was already analyzed. Layout reports live in their own LRU (same
    {!Config.cache_capacity} bound as signature reports): the two
    products cache independently, so interleaving them never evicts
    the other's entries early. *)

val layout_all : t -> string list -> layout_report list
(** One layout report per input, in input order; distinct uncached
    bytecodes fan out over the worker pool like {!recover_all}, with
    byte-identical output whatever the parallelism. *)

(** {1 Token-standard interface classification} *)

type classify_report = {
  classify_code_hash : string;
      (** lowercase hex Keccak-256 of the bytecode *)
  verdict : Sigrec_classify.Classify.verdict;
  classify_from_cache : bool;
}

val classify : t -> string -> classify_report
(** [classify t bytecode] recovers the contract's signatures (through
    the report cache) and scores them against the ERC interface specs
    ({!Sigrec_classify.Classify.run}), with behavioural corroboration
    on the contract's own bytecode and the engine's layout pass as
    lazy typed-state evidence. Verdicts live in their own LRU (same
    {!Config.cache_capacity} bound), so a resident service answers
    repeated classifications without re-scoring. *)

val classify_all : t -> string list -> classify_report list
(** One classification per input, in input order. Recovery fans out
    through {!recover_all} (pool, dedup, report LRU); scoring itself
    is cheap and runs in input order, so the output is deterministic
    whatever the parallelism. *)

val evidence_of_report : report -> Sigrec_classify.Classify.evidence list
(** The classification evidence a report carries: full recoveries,
    budget-exhausted partials (marked — they never support an exact
    match), and bare selectors of per-function failures. *)
