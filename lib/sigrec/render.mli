(** JSON rendering of engine reports and lint verdicts.

    The single definition of the machine-readable report shape, shared
    by [sigrec … --format json], the [sigrec serve] response stream,
    and the protocol tests. Each function returns one compact JSON
    value (no trailing newline). *)

val recovered : Recover.recovered -> (string * string) list -> string
(** [recovered r extra] renders one recovered signature, appending the
    already-rendered [extra] fields (e.g. [("outcome", Json.quote
    "recovered")]). *)

val outcome : Engine.outcome -> string
val report : Engine.report -> string

val layout_entry : Sigrec_layout.Layout.entry -> string
(** One storage slot: its kind, packed members when present, and the
    static read/write counts. *)

val layout_report : Engine.layout_report -> string
(** The full storage layout of one contract, slots in slot order. *)

val classify_spec_result : Sigrec_classify.Classify.spec_result -> string
(** One standard's score: level, member counts, missing/mismatched
    canonical signatures, typed-state support. *)

val classify_report : Engine.classify_report -> string
(** The full interface classification of one contract: headline label,
    best standard (or [null]), every standard's score, matched
    extensions, probe count. *)

val finding : Lint.finding -> string
val verdict : Lint.verdict -> string

val layout_finding : Lint.layout_finding -> string
val layout_verdict : Lint.layout_verdict -> string
(** The storage-layout differential: verdict, counters, and the
    recovered layout it judged. *)
