(** JSON rendering of engine reports and lint verdicts.

    The single definition of the machine-readable report shape, shared
    by [sigrec … --format json], the [sigrec serve] response stream,
    and the protocol tests. Each function returns one compact JSON
    value (no trailing newline). *)

val recovered : Recover.recovered -> (string * string) list -> string
(** [recovered r extra] renders one recovered signature, appending the
    already-rendered [extra] fields (e.g. [("outcome", Json.quote
    "recovered")]). *)

val outcome : Engine.outcome -> string
val report : Engine.report -> string
val finding : Lint.finding -> string
val verdict : Lint.verdict -> string
