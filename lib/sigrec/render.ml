(* JSON rendering of engine reports and lint verdicts.

   One definition shared by [--format json] in the CLI, the [sigrec
   serve] response stream, and the protocol tests — so the serialized
   shape cannot drift between the one-shot and resident surfaces. *)

let recovered (r : Recover.recovered) extra =
  Json.obj
    ([
       ("selector", Json.quote ("0x" ^ r.Recover.selector_hex));
       ( "types",
         Json.arr
           (List.map
              (fun ty -> Json.quote (Abi.Abity.to_string ty))
              r.Recover.params) );
       ( "lang",
         Json.quote
           (match r.Recover.lang with
           | Abi.Abity.Solidity -> "solidity"
           | Abi.Abity.Vyper -> "vyper") );
       ( "rule_paths",
         Json.arr
           (List.map
              (fun path -> Json.arr (List.map Json.quote path))
              r.Recover.rule_paths) );
       ("entry_pc", string_of_int r.Recover.entry_pc);
     ]
    @ extra)

let outcome = function
  | Engine.Recovered { result; elapsed_ns } ->
    recovered result
      [
        ("outcome", Json.quote "recovered");
        ("elapsed_ns", string_of_int elapsed_ns);
      ]
  | Engine.Budget_exhausted { partial; paths_explored; elapsed_ns } ->
    recovered partial
      [
        ("outcome", Json.quote "budget_exhausted");
        ("paths_explored", string_of_int paths_explored);
        ("elapsed_ns", string_of_int elapsed_ns);
      ]
  | Engine.Failed e ->
    Json.obj
      [
        ("selector", Json.quote ("0x" ^ e.Engine.selector_hex));
        ("entry_pc", string_of_int e.Engine.entry_pc);
        ("outcome", Json.quote "failed");
        ("error", Json.quote e.Engine.message);
      ]

let report (r : Engine.report) =
  Json.obj
    [
      ("code_hash", Json.quote ("0x" ^ r.Engine.code_hash));
      ("from_cache", string_of_bool r.Engine.from_cache);
      ("functions", Json.arr (List.map outcome r.Engine.outcomes));
    ]

module Layout = Sigrec_layout.Layout

let layout_entry (e : Layout.entry) =
  let base =
    [
      ("slot", Json.quote ("0x" ^ Evm.U256.to_hex e.Layout.slot));
      ( "kind",
        Json.quote
          (match e.Layout.decl with
          | Layout.Word -> "word"
          | Layout.Packed _ -> "packed"
          | Layout.Mapping -> "mapping"
          | Layout.Dyn_array -> "dynamic_array") );
    ]
  in
  let members =
    match e.Layout.decl with
    | Layout.Packed ms ->
      [
        ( "members",
          Json.arr
            (List.map
               (fun (m : Layout.member) ->
                 Json.obj
                   [
                     ("bit_offset", string_of_int m.Layout.bit_offset);
                     ("bit_width", string_of_int m.Layout.bit_width);
                   ])
               ms) );
      ]
    | _ -> []
  in
  Json.obj
    (base @ members
    @ [
        ("reads", string_of_int e.Layout.reads);
        ("writes", string_of_int e.Layout.writes);
      ])

let layout_report (r : Engine.layout_report) =
  let l = r.Engine.layout in
  Json.obj
    [
      ("code_hash", Json.quote ("0x" ^ r.Engine.layout_code_hash));
      ("from_cache", string_of_bool r.Engine.layout_from_cache);
      ("complete", string_of_bool l.Layout.complete);
      ("slots", Json.arr (List.map layout_entry l.Layout.entries));
      ("unknown_ops", string_of_int l.Layout.unknown_ops);
      ("total_ops", string_of_int l.Layout.total_ops);
    ]

module Classify = Sigrec_classify.Classify

let classify_spec_result (r : Classify.spec_result) =
  Json.obj
    [
      ("standard", Json.quote r.Classify.spec.Classify.spec_name);
      ("level", Json.quote (Classify.level_to_string r.Classify.level));
      ("required_matched", string_of_int r.Classify.required_matched);
      ("required_total", string_of_int r.Classify.required_total);
      ("optional_matched", string_of_int r.Classify.optional_matched);
      ("relaxed", string_of_int r.Classify.relaxed);
      ("corroborated", string_of_int r.Classify.corroborated);
      ("missing", Json.arr (List.map Json.quote r.Classify.missing));
      ("mismatched", Json.arr (List.map Json.quote r.Classify.mismatched));
      ("layout_support", string_of_bool r.Classify.layout_support);
    ]

let classify_report (r : Engine.classify_report) =
  let v = r.Engine.verdict in
  Json.obj
    [
      ("code_hash", Json.quote ("0x" ^ r.Engine.classify_code_hash));
      ("from_cache", string_of_bool r.Engine.classify_from_cache);
      ("label", Json.quote (Classify.label v));
      ( "best",
        match v.Classify.best with
        | None -> "null"
        | Some b -> classify_spec_result b );
      ( "standards",
        Json.arr (List.map classify_spec_result v.Classify.results) );
      ( "extensions",
        Json.arr
          (List.map classify_spec_result v.Classify.matched_extensions) );
      ("probes", string_of_int v.Classify.probes_run);
    ]

let finding f =
  match f with
  | Lint.Mask_conflict { offset; mask; recovered } ->
    Json.obj
      [
        ("kind", Json.quote "mask_conflict");
        ("offset", string_of_int offset);
        ("mask", Json.quote ("0x" ^ Evm.U256.to_hex mask));
        ("recovered", Json.quote (Abi.Abity.to_string recovered));
      ]
  | Lint.Signext_conflict { offset; byte; recovered } ->
    Json.obj
      [
        ("kind", Json.quote "signext_conflict");
        ("offset", string_of_int offset);
        ("byte", string_of_int byte);
        ("recovered", Json.quote (Abi.Abity.to_string recovered));
      ]
  | Lint.Param_never_read { offset; recovered } ->
    Json.obj
      [
        ("kind", Json.quote "param_never_read");
        ("offset", string_of_int offset);
        ("recovered", Json.quote (Abi.Abity.to_string recovered));
      ]
  | Lint.Read_beyond_params { offset } ->
    Json.obj
      [
        ("kind", Json.quote "read_beyond_params");
        ("offset", string_of_int offset);
      ]
  | Lint.Dead_firing { rule; param_index } ->
    Json.obj
      [
        ("kind", Json.quote "dead_firing");
        ("rule", Json.quote rule);
        ("param_index", string_of_int param_index);
      ]
  | Lint.Unreachable_entry -> Json.obj [ ("kind", Json.quote "unreachable_entry") ]

let layout_finding = function
  | Lint.Unexplained_write { slot } ->
    Json.obj
      [
        ("kind", Json.quote "unexplained_write");
        ("slot", Json.quote ("0x" ^ Evm.U256.to_hex slot));
      ]
  | Lint.Unexercised_slot { slot } ->
    Json.obj
      [
        ("kind", Json.quote "unexercised_slot");
        ("slot", Json.quote ("0x" ^ Evm.U256.to_hex slot));
      ]

let layout_verdict (v : Lint.layout_verdict) =
  Json.obj
    [
      ("agree", string_of_bool (Lint.layout_agree v));
      ("selectors_run", string_of_int v.Lint.selectors_run);
      ("selectors_ok", string_of_int v.Lint.selectors_ok);
      ("writes_observed", string_of_int v.Lint.writes_observed);
      ( "findings",
        Json.arr (List.map layout_finding v.Lint.layout_findings) );
      ("slots", Json.arr (List.map layout_entry v.Lint.layout.Layout.entries));
    ]

let verdict (v : Lint.verdict) =
  Json.obj
    [
      ("selector", Json.quote ("0x" ^ v.Lint.selector_hex));
      ("entry_pc", string_of_int v.Lint.entry_pc);
      ( "types",
        Json.arr
          (List.map
             (fun ty -> Json.quote (Abi.Abity.to_string ty))
             v.Lint.recovered.Recover.params) );
      ("agree", string_of_bool (Lint.agree v));
      ("findings", Json.arr (List.map finding v.Lint.findings));
    ]
