(** Per-contract analysis context.

    Everything TASE needs that depends only on the bytecode — the
    disassembly, the control-flow graph, the dispatcher's function-id
    entries, and the Keccak-256 code hash — is computed once here and
    shared across every per-function {!Infer.infer} run and across the
    batch engine's cache. All fields are immutable after construction,
    so a [t] can be read from multiple domains. *)

type t = {
  code : string;                  (** raw runtime bytecode *)
  code_hash : string;             (** 32-byte Keccak-256 of [code] *)
  program : Symex.Exec.program;   (** shared disassembly *)
  cfg : Evm.Cfg.t;
  deps : (int, int list) Hashtbl.t;
      (** control-dependence table, shared by every per-function run *)
  entries : Ids.entry list;       (** dispatcher entries, dispatch order *)
}

val make : string -> t
(** [make code] builds the context from raw runtime bytecode. *)

val of_hex : string -> t
(** Decode a hex string (optional ["0x"] prefix) first. *)

val of_input : string -> t
(** Accept either hex or raw bytecode, as the CLI does: valid hex is
    decoded, anything else is treated as raw bytes. *)

val hash_of_code : string -> string
(** The cache key: 32-byte Keccak-256 of the raw bytecode. *)

val code : t -> string
val code_hash : t -> string
val code_hash_hex : t -> string
val entries : t -> Ids.entry list
val function_count : t -> int
