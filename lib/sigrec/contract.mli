(** Per-contract analysis context.

    Everything TASE needs that depends only on the bytecode — the
    disassembly, the control-flow graph, the dispatcher's function-id
    entries, and the Keccak-256 code hash — is computed once here and
    shared across every per-function {!Infer.infer} run and across the
    batch engine's cache. Apart from the per-entry absint memo (see
    {!absint_for}), all fields are immutable after construction. A [t]
    is built and analyzed within one domain (the batch engine gives each
    worker its own); the memo table is not synchronized, so don't share
    a [t] between domains that both call {!absint_for}. *)

type t = {
  code : string;                  (** raw runtime bytecode *)
  code_hash : string;             (** 32-byte Keccak-256 of [code] *)
  program : Symex.Exec.program;   (** shared disassembly *)
  cfg : Evm.Cfg.t;
      (** the graph after static jump resolution: [Unresolved] edges the
          whole-contract abstract interpretation pinned down are already
          concrete [Jump_to] edges here *)
  deps : (int, int list) Hashtbl.t;
      (** control-dependence table over the resolved graph, shared by
          every per-function run *)
  entries : Ids.entry list;       (** dispatcher entries, dispatch order *)
  static : Sigrec_static.Absint.result;
      (** the whole-contract (entry 0) abstract-interpretation run *)
  unresolved_before : int;        (** [Unresolved] edges in the raw CFG *)
  unresolved_after : int;         (** ... still left after resolution *)
  absint_cache : (int, Sigrec_static.Absint.result) Hashtbl.t;
      (** per-entry depth-1 absint runs, memoized by {!absint_for} *)
}

val make : string -> t
(** [make code] builds the context from raw runtime bytecode. *)

val of_hex : string -> t
(** Decode a hex string (optional ["0x"] prefix) first. *)

val of_input : string -> t
(** Accept either hex or raw bytecode, as the CLI does: valid hex is
    decoded, anything else is treated as raw bytes. *)

val hash_of_code : string -> string
(** The cache key: 32-byte Keccak-256 of the raw bytecode. *)

val code : t -> string
val code_hash : t -> string
val code_hash_hex : t -> string
val entries : t -> Ids.entry list
val function_count : t -> int

val static : t -> Sigrec_static.Absint.result
val jumps_resolved : t -> int
(** How many [Unresolved] edges the static pass turned concrete. *)

val absint_for : t -> entry:int -> Sigrec_static.Absint.result
(** The depth-1 abstract-interpretation run from a function entry,
    memoized per contract — {!Infer.infer}'s prune oracle asks for the
    same entry on every (re-)inference. *)
