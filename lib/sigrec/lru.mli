(** Bounded LRU map backing the engine's report cache.

    A resident [sigrec serve] process would otherwise grow its
    content-addressed cache without bound; this map keeps the most
    recently requested reports and evicts from the least-recent end
    once {!capacity} is exceeded. Capacity 0 means unbounded — the
    one-shot CLI default, where the process lifetime bounds the cache.

    Not thread-safe; callers serialize access (the engine holds its
    lock around every cache operation). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity <= 0] is unbounded. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries dropped from the least-recent end since {!create}. *)

val mem : ('k, 'v) t -> 'k -> bool

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used on a hit. *)

val peek_opt : ('k, 'v) t -> 'k -> 'v option
(** Like {!find_opt} but does not touch recency order. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite as most-recently-used, then evict
    least-recently-used entries until within capacity. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (the eviction counter is kept). *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold over entries in unspecified order. *)
