(** The 31 inference rules of TASE (paper §3), as predicates and
    extractors over the access-event trace, plus the per-rule usage
    counters behind Fig. 19.

    The rule numbering follows the paper:
    - R1-R4: CALLDATALOAD rules (offset/num chains, external arrays,
      the uint256 default)
    - R5-R10, R23: CALLDATACOPY rules (public-mode arrays, bytes,
      strings, Vyper fixed byte arrays)
    - R11-R18: Solidity refinements (masks, SIGNEXTEND, ISZERO pairs,
      BYTE, signed instructions, math usage)
    - R19-R22: struct and nested arrays
    - R20, R24-R31: Vyper discrimination and refinements. *)

(** Rule-group switches for the ablation study: disabling a group
    shows its contribution to overall accuracy. *)
type config = {
  fine_masks : bool;   (** R11-R18 / R26-R31 refinements *)
  guard_dims : bool;   (** bound-check dimension analysis (R2/R3/R9/R10) *)
  nested : bool;       (** struct / nested arrays (R19, R21, R22) *)
  vyper : bool;        (** Vyper discrimination (R20, R23-R31) *)
}

val default_config : config

type evidence = { rule : string; pc : int; fired : bool; note : string }
(** One rule decision: [fired] distinguishes a rule that applied from
    one that was attempted and rejected; [pc] is the bytecode offset of
    the witnessing instruction ([-1] when the decision has no single
    program point); [note] is a short human clause for the explain
    narrative. *)

type ctx = {
  trace : Symex.Trace.t;
  cfg : Evm.Cfg.t;
  deps : (int, int list) Hashtbl.t;  (** control-dependence table *)
  stats : Stats.t option;
  config : config;
  path_sink : string list ref option ref;
  evidence : evidence list ref;  (** newest first; see {!evidence} *)
  guards_cache : (int, guard list) Hashtbl.t;
      (** per-pc memo of {!guards_for_pc} — the matchers re-ask the same
          chain for every load at a pc *)
  usages_cache : (Symex.Trace.subject, Symex.Trace.usage_kind list) Hashtbl.t;
      (** per-subject memo of [Trace.usages_of] (see {!usages}) *)
}

and guard = { gpc : int; idx : Symex.Sexpr.t; bound : bound }
(** A parsed bound-check / loop guard condition. *)

and bound = Bconst of int | Bload of int | Bother

val make :
  ?stats:Stats.t ->
  ?config:config ->
  ?deps:(int, int list) Hashtbl.t ->
  Symex.Trace.t ->
  Evm.Cfg.t ->
  ctx
(** [deps] supplies a precomputed control-dependence table (see
    {!Contract.t}); when absent it is derived from the CFG here. *)

val hit : ?pc:int -> ?note:string -> ctx -> string -> unit
(** Record that a rule fired (Fig. 19 counters and, when a path is
    being collected, the per-parameter explanation). [pc] and [note]
    feed the evidence record and, when tracing is on, a [Rules]-phase
    instant event. *)

val reject : ?pc:int -> ?note:string -> ctx -> string -> unit
(** Record that a rule was attempted and did not apply — evidence for
    the explain narrative only; no usage counter, no decision path. *)

val evidence : ctx -> evidence list
(** Every rule decision recorded so far, oldest first. *)

val with_path : ctx -> (unit -> 'a) -> 'a * string list
(** Collect the rules fired while classifying one parameter — its path
    through the Fig. 13 decision tree. *)

val all_rule_names : string list
(** R1 .. R31, for reporting. *)

val usages : ctx -> Symex.Trace.subject -> Symex.Trace.usage_kind list
(** Usage kinds recorded for a subject, memoized per context. *)

val guards_for_pc : ctx -> int -> guard list
(** LT-shaped conditions of the branches the instruction at [pc] is
    (transitively) control-dependent on, innermost dependence first.
    This is the [LT_n <c ... <c LT_1 <c CALLDATALOAD] chain of R2/R3. *)

val guards_with_idx_in : guard list -> Symex.Sexpr.t -> guard list
(** Keep the guards whose index term occurs in the given location
    expression — links a bound check to the access it protects. *)

val loop_const_guards : guard list -> int list
(** Bounds of the concrete-counter loop guards (public-mode copy loops,
    R9/R10), innermost first. *)

val split_terms : Symex.Sexpr.t -> int * Symex.Sexpr.t list
(** Flatten an addition into (sum of constant terms, remaining terms). *)

val is_offset_plus_4 : Symex.Sexpr.t -> int -> bool
(** R1's second load: location is exactly [value-of-load + 4]. *)

val vyper_contract : ctx -> bool
(** R20: range-check comparisons instead of masks identify Vyper
    bytecode. *)

val fine_basic :
  ctx -> vyper:bool -> Symex.Trace.subject -> Abi.Abity.t
(** R11-R18 (Solidity) / R25-R31 (Vyper): refine a 32-byte word to its
    specific basic type from the masks, comparisons and instructions
    applied to it; [uint256] when no hint exists (R4/R25). *)
