(** Resident recovery service (the protocol core of [sigrec serve]).

    Line-oriented JSON: one request object per line, one response line
    per request. The engine — and with it the report cache and the
    process-wide worker-domain pool — persists across requests, so a
    resident daemon answers repeated batches from a warm cache and
    never re-pays domain spawn.

    Requests: [{"id": <any>, "op": "recover", "codes": ["0x…", …]}],
    or [op] one of ["layout"], ["classify"], ["metrics"], ["ping"],
    ["shutdown"], ["stream"].
    The [id] is echoed verbatim in the response ([null] when absent or
    the request was unparseable).

    Responses (one line each):
    - recover: [{"id":…, "ok":true, "reports":[…], "warnings":
      [{"index":N, "reason":"…"}]}] — reports rendered by
      {!Render.report} in input order (skipped entries excluded);
      warnings carry the 0-based index of each malformed ["codes"]
      entry, routed into the response stream rather than stderr;
    - layout / classify: same shape with ["layouts"]
      ({!Render.layout_report}) / ["classifications"]
      ({!Render.classify_report}) instead of ["reports"] — repeated
      classifications of the same bytecode are answered from the
      engine's verdict LRU ([from_cache] flips to [true] and
      [Stats.classify_cache_hits] counts them);
    - metrics: cumulative {!Stats} JSON plus request count, uptime,
      cache size/capacity, pool size and ["workers"] (the effective,
      hardware-clamped worker count — {!Engine.effective_jobs}). Two
      v2 variants select alternate shapes:
      [{"op":"metrics","format":"openmetrics"}] answers with the full
      OpenMetrics exposition ({!Sigrec_metrics.Metrics.expose} —
      phase-latency histograms, pool/LRU/GC gauges, the {!Stats}
      counter families) as one JSON-escaped ["exposition"] string;
      [{"op":"metrics","top":true}] answers with ["slowest"], the
      top-K slowest-contracts ring ([code_hash] / [elapsed_ns] /
      per-phase [detail]);
    - any error: [{"id":…, "ok":false, "error":"…"}] — a malformed
      request never kills the daemon.

    {b Streaming.} [{"id":X, "op":"stream"}] is acked with
    [{"id":X, "ok":true, "streaming":true}], after which the
    connection carries corpus lines — the batch-file grammar: one hex
    bytecode per line, blank lines and [#] comments skipped — until a
    lone ["."] line (back to request mode) or EOF. The server answers
    with one [{"id":X, "report":…}] line per contract in feed order
    (batched through {!Engine.Stream}, so cross-batch duplicates are
    answered from the warm cache), in-band
    [{"id":X, "warning":{"line":N, "reason":…}}] lines for malformed
    input, and a final
    [{"id":X, "ok":true, "done":true, "contracts":…, "lines":…,
    "skipped":…, "dedup_hits":…}] summary. Constant memory: at most
    one batch of bytecodes is resident at a time. *)

type t

val create : Engine.Config.t -> t
(** A fresh service around a fresh engine. Also registers the engine's
    exposition chunk as the process-wide ["engine"] metrics collector
    (replace-by-name: the newest service owns it), so a subsequent
    {!Sigrec_metrics.Metrics.expose} includes the Stats counters and
    LRU/pool gauges without further wiring. *)

val engine : t -> Engine.t

type reply = {
  response : string; (** one JSON line, no trailing newline *)
  shutdown : bool;  (** true after a ["shutdown"] request *)
  stream : string option;
      (** [Some id] after a ["stream"] request: once the ack is
          written, the channel owner must switch the connection into
          corpus-line mode ({!run} does this internally) *)
}

val handle_line : t -> string -> reply
(** Handle one request line. Never raises. *)

val run_stream :
  t -> string -> in_channel -> out_channel -> [ `Eof | `Done ]
(** Drive one streaming session (after its ack has been written): read
    corpus lines from [ic] until ["."] ([`Done] — the caller resumes
    request mode) or EOF ([`Eof]), emitting report/warning/summary
    lines on [oc] as described above. {!run} calls this; it is
    exposed for channel owners that run their own request loop. *)

val run : t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve until EOF or a ["shutdown"] request; each response line is
    flushed before the next request is read. Blank lines are skipped.
    A ["stream"] request switches the connection into streaming mode
    until its sentinel or EOF. The result tells a socket listener
    whether to keep accepting ([`Eof] — the client hung up) or stop
    the daemon ([`Shutdown]). *)
