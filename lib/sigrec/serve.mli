(** Resident recovery service (the protocol core of [sigrec serve]).

    Line-oriented JSON: one request object per line, one response line
    per request. The engine — and with it the report cache and the
    process-wide worker-domain pool — persists across requests, so a
    resident daemon answers repeated batches from a warm cache and
    never re-pays domain spawn.

    Requests: [{"id": <any>, "op": "recover", "codes": ["0x…", …]}],
    or [op] one of ["metrics"], ["ping"], ["shutdown"]. The [id] is
    echoed verbatim in the response ([null] when absent or the request
    was unparseable).

    Responses (one line each):
    - recover: [{"id":…, "ok":true, "reports":[…], "warnings":
      [{"index":N, "reason":"…"}]}] — reports rendered by
      {!Render.report} in input order (skipped entries excluded);
      warnings carry the 0-based index of each malformed ["codes"]
      entry, routed into the response stream rather than stderr;
    - metrics: cumulative {!Stats} JSON plus request count, uptime,
      cache size/capacity and pool size;
    - any error: [{"id":…, "ok":false, "error":"…"}] — a malformed
      request never kills the daemon. *)

type t

val create : Engine.Config.t -> t
val engine : t -> Engine.t

type reply = {
  response : string; (** one JSON line, no trailing newline *)
  shutdown : bool;  (** true after a ["shutdown"] request *)
}

val handle_line : t -> string -> reply
(** Handle one request line. Never raises. *)

val run : t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve until EOF or a ["shutdown"] request; each response line is
    flushed before the next request is read. Blank lines are skipped.
    The result tells a socket listener whether to keep accepting
    ([`Eof] — the client hung up) or stop the daemon ([`Shutdown]). *)
