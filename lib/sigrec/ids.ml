open Evm
module Sexpr = Symex.Sexpr

type entry = { selector : string; entry_pc : int; entry_stack_depth : int }

(* Primary extraction: symbolic execution of the dispatcher. The
   selector is whatever the contract computes from the first call-data
   word; every branch whose condition compares that expression against
   a 4-byte constant is a dispatch decision, and the equal branch leads
   to the function body. This is robust to junk instructions and
   constant re-encodings, because it looks at the executed comparison,
   not the instruction text (the same philosophy as TASE itself). *)
let extract_symbolic program =
  let budget =
    { Symex.Exec.default_budget with Symex.Exec.max_paths = 256 }
  in
  let trace =
    Symex.Exec.run_prepared ~budget program ~entry:0 ~init_stack:[] ()
  in
  (* the selector expression derives from the load at offset 0 *)
  let selector_load_ids =
    List.filter_map
      (fun (l : Symex.Trace.load) ->
        match Sexpr.to_const_int l.Symex.Trace.loc with
        | Some 0 -> Some l.Symex.Trace.id
        | _ -> None)
      trace.Symex.Trace.loads
  in
  let is_selector_expr e =
    List.exists (fun id -> Sexpr.mentions_load e id) selector_load_ids
    && Sexpr.to_const e = None
  in
  let out = ref [] in
  Hashtbl.iter
    (fun pc conds ->
      match Hashtbl.find_opt trace.Symex.Trace.jumpi_targets pc with
      | None -> ()
      | Some target ->
        List.iter
          (fun cond ->
            let core, iszeros = Sexpr.iszero_depth cond in
            match Sexpr.node core with
            | Sexpr.Bin (Sexpr.Beq, a, b) when iszeros mod 2 = 0 -> (
              let id_of e =
                match Sexpr.to_const e with
                | Some v when U256.bits v <= 32 ->
                  Some (String.sub (U256.to_bytes_be v) 28 4)
                | _ -> None
              in
              match (id_of a, id_of b, a, b) with
              | Some id, None, _, e when is_selector_expr e ->
                out := (pc, id, target) :: !out
              | None, Some id, e, _ when is_selector_expr e ->
                out := (pc, id, target) :: !out
              | _ -> ())
            | _ -> ())
          conds)
    trace.Symex.Trace.jumpi_conds;
  (* dispatch order = ascending JUMPI pc *)
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !out
  |> List.map (fun (_, selector, target) ->
         { selector; entry_pc = target; entry_stack_depth = 1 })

(* Fallback: the static compare-and-jump idioms
     DUP1; PUSH4 id; EQ; PUSH2 t; JUMPI
     PUSH4 id; DUP2; EQ; PUSH2 t; JUMPI
   — cheap and sufficient for unobfuscated compiler output. *)
let extract_static program =
  let instrs = Array.of_list (Symex.Exec.instructions program) in
  let n = Array.length instrs in
  let op i = if i < n then Some instrs.(i).Disasm.op else None in
  let out = ref [] in
  let push4 = function
    | Some (Opcode.PUSH (4, v)) -> Some (String.sub (U256.to_bytes_be v) 28 4)
    | _ -> None
  in
  let push_target = function
    | Some (Opcode.PUSH (_, v)) -> U256.to_int v
    | _ -> None
  in
  for i = 0 to n - 1 do
    match op i with
    | Some (Opcode.DUP 1) -> (
      match (push4 (op (i + 1)), op (i + 2)) with
      | Some sel, Some Opcode.EQ -> (
        match (push_target (op (i + 3)), op (i + 4)) with
        | Some target, Some Opcode.JUMPI -> out := (sel, target) :: !out
        | _ -> ())
      | _ -> ())
    | Some (Opcode.PUSH (4, _)) -> (
      match (push4 (op i), op (i + 1), op (i + 2)) with
      | Some sel, Some (Opcode.DUP 2), Some Opcode.EQ -> (
        match (push_target (op (i + 3)), op (i + 4)) with
        | Some target, Some Opcode.JUMPI -> out := (sel, target) :: !out
        | _ -> ())
      | _ -> ())
    | _ -> ()
  done;
  List.rev !out
  |> List.map (fun (selector, target) ->
         { selector; entry_pc = target; entry_stack_depth = 1 })

let dedup entries =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.selector then false
      else begin
        Hashtbl.replace seen e.selector ();
        true
      end)
    entries

let extract_prepared program =
  let static = dedup (extract_static program) in
  let symbolic = dedup (extract_symbolic program) in
  (* prefer the richer result: obfuscation defeats the static idioms,
     while plain compiler output yields identical answers from both *)
  if List.length symbolic > List.length static then symbolic else static

let extract bytecode = extract_prepared (Symex.Exec.prepare bytecode)

let uses_shr_dispatch bytecode =
  let instrs = Disasm.disassemble bytecode in
  let rec scan = function
    | { Disasm.op = Opcode.CALLDATALOAD; _ }
      :: { Disasm.op = Opcode.PUSH (_, v); _ }
      :: { Disasm.op = Opcode.SHR; _ }
      :: _
      when U256.to_int v = Some 0xe0 ->
      true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan instrs
