module Sexpr = Symex.Sexpr
module Trace = Symex.Trace
module Tr = Sigrec_trace.Trace

type result = {
  params : Abi.Abity.t list;
  rule_paths : string list list;  (* per parameter, in firing order *)
  evidence : Rules.evidence list; (* every rule decision, oldest first *)
  lang : Abi.Abity.lang;
  trace : Trace.t;
}

(* A parameter anchor: where its head slot sits in the call data, the
   inferred type, and how many head bytes it spans (for absorbing the
   item loads of static arrays). *)
type anchor = { head : int; ty : Abi.Abity.t; span : int; path : string list }

let product = List.fold_left ( * ) 1

(* Wrap an element type in static dimensions given outermost-first:
   [D1; D2] over elem yields elem[...][D2][D1]-style nesting, i.e.
   Sarray (Sarray (elem, D2), D1). *)
let wrap_outer_first elem dims =
  List.fold_left (fun acc n -> Abi.Abity.Sarray (acc, n)) elem
    (List.rev dims)

(* The static pre-screen for one function body: abstract-interpret from
   its entry (one opaque stack slot, the selector residue) and hand the
   executor a prune oracle for calldata-independent branches. The
   per-entry analysis is memoized on the contract, so re-inferring the
   same entry (config sweeps, ablations) reuses it. *)
let prune_oracle contract entry =
  let absint = Contract.absint_for contract ~entry in
  fun pc ->
    match Sigrec_static.Absint.prune_decision absint pc with
    | Some Sigrec_static.Absint.Take_jump -> Some Symex.Exec.Take_jump
    | Some Sigrec_static.Absint.Take_fallthrough ->
      Some Symex.Exec.Take_fallthrough
    | None -> None

let infer ?stats ?config ?(static_prune = true) ?budget ~contract ~entry () =
  let prune =
    if static_prune then prune_oracle contract entry else fun _ -> None
  in
  let trace =
    Symex.Exec.run_prepared ?budget ~prune contract.Contract.program ~entry
      ~init_stack:[ Sexpr.env "selector_residue" ] ()
  in
  Option.iter
    (fun s ->
      Stats.add_paths s trace.Trace.paths_explored;
      Stats.add_pruned s trace.Trace.forks_pruned)
    stats;
  let t_rules = if Tr.enabled () then Tr.now_us () else 0. in
  let ctx =
    Rules.make ?stats ?config ~deps:contract.Contract.deps trace
      contract.Contract.cfg
  in
  let vyper = Rules.vyper_contract ctx in
  if vyper then
    Rules.hit ctx "R20" ~note:"range-check comparisons mark Vyper output";
  let loads = trace.Trace.loads in
  let claimed : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let claim (l : Trace.load) = Hashtbl.replace claimed l.Trace.id () in
  let is_claimed (l : Trace.load) = Hashtbl.mem claimed l.Trace.id in
  let anchors : anchor list ref = ref [] in
  let add_anchor ?(path = []) head ty span =
    anchors := { head; ty; span; path } :: !anchors
  in
  let mentions (l : Trace.load) id = Sexpr.mentions_load l.Trace.loc id in
  let derefs_of id =
    List.filter (fun l -> l.Trace.id <> id && mentions l id) loads
  in
  let is_dereffed (l : Trace.load) = derefs_of l.Trace.id <> [] in
  let fine subject = Rules.fine_basic ctx ~vyper subject in

  (* ---- pass 1: CALLDATACOPY anchors (public-mode parameters, Vyper
     fixed byte arrays) ---------------------------------------------- *)
  let copies_by_pc = Hashtbl.create 16 in
  List.iter
    (fun (c : Trace.copy) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt copies_by_pc c.Trace.pc)
      in
      Hashtbl.replace copies_by_pc c.Trace.pc (c :: cur))
    trace.Trace.copies;
  Hashtbl.iter
    (fun pc cs ->
      let c0 = List.hd (List.rev cs) in
      let srcs_const =
        List.filter_map (fun c -> Sexpr.to_const_int c.Trace.src) cs
      in
      if List.length srcs_const = List.length cs then begin
        (* R6/R9: static array of a public function; the innermost row
           is the copy length, outer dimensions come from the constant
           loop bounds the copy is control-dependent on *)
        let base = List.fold_left Stdlib.min (List.hd srcs_const) srcs_const in
        match Sexpr.to_const_int c0.Trace.len with
        | Some len when len >= 32 ->
          let ty, path =
            Rules.with_path ctx (fun () ->
                let guards = Rules.guards_for_pc ctx pc in
                let outer = List.rev (Rules.loop_const_guards guards) in
                Rules.hit ctx
                  (if outer = [] then "R6" else "R9")
                  ~pc ~note:"constant-source CALLDATACOPY";
                let row_items = len / 32 in
                let elem = fine (Trace.Sub_region pc) in
                ( wrap_outer_first (Abi.Abity.Sarray (elem, row_items)) outer,
                  product outer ))
          in
          let ty, outer_product = ty in
          add_anchor ~path base ty (len * outer_product)
        | _ -> ()
      end
      else begin
        (* the source involves an offset field: dynamic data *)
        let src_loads = Sexpr.loads_of c0.Trace.src in
        let offset_load =
          List.find_map
            (fun id ->
              match Trace.load_by_id trace id with
              | Some l when Sexpr.to_const_int l.Trace.loc <> None -> Some l
              | _ -> None)
            src_loads
        in
        match offset_load with
        | None -> ()
        | Some x ->
          let head = Option.get (Sexpr.to_const_int x.Trace.loc) in
          claim x;
          let num =
            List.find_opt
              (fun (l : Trace.load) ->
                Rules.is_offset_plus_4 l.Trace.loc x.Trace.id)
              loads
          in
          Option.iter claim num;
          let region = Trace.Sub_region pc in
          let has_byte_read =
            List.mem Trace.Byte_read (Rules.usages ctx region)
          in
          let rec contains_div e =
            match Sexpr.node e with
            | Sexpr.Bin (Sexpr.Bdiv, _, _) -> true
            | Sexpr.Bin (_, a, b) -> contains_div a || contains_div b
            | Sexpr.Un (_, a) -> contains_div a
            | _ -> false
          in
          let ty, path =
            Rules.with_path ctx (fun () ->
            match Sexpr.to_const_int c0.Trace.len with
            | Some const_len when const_len >= 32 && num = None ->
              (* R23: Vyper fixed byte array / string: a constant
                 32+maxLen bytes are copied *)
              Rules.hit ctx "R23" ~pc
                ~note:
                  (Printf.sprintf "constant %d-byte copy (32+maxLen)"
                     const_len);
              let max_len = const_len - 32 in
              if has_byte_read then begin
                Rules.hit ctx "R26" ~pc ~note:"byte reads of copied region";
                Abi.Abity.Vbytes max_len
              end
              else Abi.Abity.Vstring max_len
            | Some const_len when const_len >= 32 ->
              (* R10 with constant rows under loops *)
              Rules.hit ctx "R1" ~pc ~note:"offset field feeds copy source";
              Rules.hit ctx "R10" ~pc ~note:"constant rows copied under loop";
              let guards = Rules.guards_for_pc ctx pc in
              let outer = List.rev (Rules.loop_const_guards guards) in
              let row_items = const_len / 32 in
              let elem = fine region in
              Abi.Abity.Darray
                (wrap_outer_first (Abi.Abity.Sarray (elem, row_items)) outer)
            | _ ->
              Rules.hit ctx "R1" ~pc ~note:"offset field feeds copy source";
              Rules.hit ctx "R5" ~pc ~note:"dynamic-length CALLDATACOPY";
              if contains_div c0.Trace.len then begin
                (* R8: ceil32 read size: bytes or string *)
                Rules.hit ctx "R8" ~pc ~note:"copy length is ceil32(num)";
                if has_byte_read then begin
                  Rules.hit ctx "R17" ~pc ~note:"byte reads of copied region";
                  Abi.Abity.Bytes
                end
                else Abi.Abity.String_t
              end
              else begin
                (* R7: read size is num*32: one-dimensional dynamic *)
                Rules.hit ctx "R7" ~pc ~note:"copy length is num*32";
                Abi.Abity.Darray (fine region)
              end)
          in
          add_anchor ~path head ty 32
      end)
    copies_by_pc;

  (* ---- pass 2: offset-chain parameters accessed with CALLDATALOAD
     (external dynamic arrays, nested arrays, dynamic structs, external
     bytes) ----------------------------------------------------------- *)
  (* classify the block owned by offset-load [o]; consumes loads *)
  let rec classify_block (o : Trace.load) : Abi.Abity.t =
    let derefs = derefs_of o.Trace.id in
    List.iter claim derefs;
    let o2 = List.filter is_dereffed derefs in
    let o2_ids = List.map (fun l -> l.Trace.id) o2 in
    let direct =
      List.filter
        (fun (l : Trace.load) ->
          not (List.exists (fun id -> mentions l id) o2_ids)
          && not (List.memq l o2))
        derefs
    in
    let num =
      List.find_opt
        (fun (l : Trace.load) ->
          Rules.is_offset_plus_4 l.Trace.loc o.Trace.id
          && not (List.memq l o2))
        direct
    in
    let indexed =
      List.filter
        (fun (l : Trace.load) ->
          Sexpr.has_mul_by l.Trace.loc 32 && Some l <> num)
        direct
    in
    let indexed_leaves =
      List.filter (fun l -> not (List.memq l o2)) indexed
    in
    let o2 = if ctx.Rules.config.Rules.nested then o2 else [] in
    match (o2, indexed_leaves) with
    | [], il :: _ ->
      (* R2: n-dimensional dynamic array in an external function: the
         location is offset-relative and 32-scaled, the load sits under
         one dynamic and n-1 constant bound checks *)
      Rules.hit ctx "R1" ~pc:o.Trace.pc ~note:"offset field dereferenced";
      Rules.hit ctx "R2" ~pc:il.Trace.pc
        ~note:"32-scaled item loads under bound checks";
      let guards =
        Rules.guards_with_idx_in
          (Rules.guards_for_pc ctx il.Trace.pc)
          il.Trace.loc
      in
      let emission_order = List.rev guards in
      let const_dims =
        List.filter_map
          (fun (g : Rules.guard) ->
            match g.Rules.bound with Rules.Bconst n -> Some n | _ -> None)
          emission_order
      in
      let elem = fine (Trace.Sub_load il.Trace.id) in
      Abi.Abity.Darray (wrap_outer_first elem const_dims)
    | [], [] ->
      Rules.hit ctx "R1" ~pc:o.Trace.pc ~note:"offset field dereferenced";
      let byte_item =
        List.exists
          (fun (l : Trace.load) ->
            Some l <> num
            && List.mem Trace.Byte_read
                 (Rules.usages ctx (Trace.Sub_load l.Trace.id)))
          direct
      in
      if byte_item then begin
        (* byte-granular addressing without the 32 multiplier: a bytes
           value accessed byte-wise in an external function (R17) *)
        Rules.hit ctx "R17" ~pc:o.Trace.pc ~note:"byte-granular item access";
        Abi.Abity.Bytes
      end
      else
        (* R1 alone: a dynamic parameter that is never item-accessed.
           Byte-wise access would have revealed a bytes (R17) and scaled
           access an array (R2), so the default is string — the paper's
           case-5 ambiguity *)
        Abi.Abity.String_t
    | _ :: _, _ ->
      let nested_offsets =
        List.filter
          (fun (l : Trace.load) -> Sexpr.has_mul_by l.Trace.loc 32)
          o2
      in
      if nested_offsets <> [] then begin
        (* R22/R19: a nested array: the items of the top dimension are
           themselves offset fields *)
        let z = List.hd nested_offsets in
        Rules.hit ctx "R22" ~pc:z.Trace.pc
          ~note:"items of top dimension are offset fields";
        let child = classify_block z in
        let guards =
          Rules.guards_with_idx_in
            (Rules.guards_for_pc ctx z.Trace.pc)
            z.Trace.loc
        in
        let top =
          List.find_map
            (fun (g : Rules.guard) ->
              match g.Rules.bound with
              | Rules.Bload id
                when Some id
                     = Option.map (fun (l : Trace.load) -> l.Trace.id) num ->
                Some `Dyn
              | Rules.Bconst n -> Some (`Const n)
              | _ -> None)
            guards
        in
        match top with
        | Some (`Const n) when num = None -> Abi.Abity.Sarray (child, n)
        | _ -> Abi.Abity.Darray child
      end
      else begin
        (* R21: dynamic struct: fields sit at constant offsets behind
           the struct's offset field *)
        Rules.hit ctx "R21" ~pc:o.Trace.pc
          ~note:"fields at constant offsets behind struct offset";
        let fields =
          List.filter_map
            (fun (l : Trace.load) ->
              match Rules.split_terms l.Trace.loc with
              | c, [ only ] when c >= 4 -> (
                match Sexpr.node only with
                | Sexpr.CDLoad id when id = o.Trace.id -> Some (c, l)
                | _ -> None)
              | _ -> None)
            derefs
        in
        let fields = List.sort (fun (a, _) (b, _) -> compare a b) fields in
        let field_tys =
          List.map
            (fun (_, (l : Trace.load)) ->
              if List.memq l o2 then begin
                Rules.hit ctx "R19" ~pc:l.Trace.pc ~note:"nested dynamic field";
                classify_block l
              end
              else fine (Trace.Sub_load l.Trace.id))
            fields
        in
        match field_tys with
        | [] -> Abi.Abity.Darray (Abi.Abity.Uint 256)
        | tys -> Abi.Abity.Tuple tys
      end
  in
  List.iter
    (fun (x : Trace.load) ->
      match Sexpr.to_const_int x.Trace.loc with
      | Some head when head >= 4 && (not (is_claimed x)) && is_dereffed x ->
        claim x;
        let ty, path = Rules.with_path ctx (fun () -> classify_block x) in
        add_anchor ~path head ty 32
      | _ -> ())
    loads;

  (* ---- pass 3: external static arrays (R3) / Vyper fixed lists (R24):
     item loads at locations built from a constant base plus scaled
     symbolic indices, protected by constant bound checks -------------- *)
  let static_groups = Hashtbl.create 8 in
  List.iter
    (fun (l : Trace.load) ->
      if
        (not (is_claimed l))
        && Sexpr.to_const_int l.Trace.loc = None
        && Sexpr.loads_of l.Trace.loc = []
        && Sexpr.has_mul_by l.Trace.loc 32
      then begin
        let base = Sexpr.const_offset l.Trace.loc in
        if base >= 4 then begin
          claim l;
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt static_groups base)
          in
          Hashtbl.replace static_groups base (l :: cur)
        end
      end)
    loads;
  Hashtbl.iter
    (fun base group ->
      let (l : Trace.load) = List.hd group in
      let guards =
        Rules.guards_with_idx_in (Rules.guards_for_pc ctx l.Trace.pc)
          l.Trace.loc
      in
      let dims =
        List.filter_map
          (fun (g : Rules.guard) ->
            match g.Rules.bound with Rules.Bconst n -> Some n | _ -> None)
          (List.rev guards)
      in
      if dims = [] then begin
        (* no surviving bound checks: indistinguishable from a basic
           parameter (the paper's case-5 optimisation blind spot) *)
        let elem, path =
          Rules.with_path ctx (fun () -> fine (Trace.Sub_load l.Trace.id))
        in
        add_anchor ~path base elem 32
      end
      else begin
        let ty, path =
          Rules.with_path ctx (fun () ->
              Rules.hit ctx
                (if vyper then "R24" else "R3")
                ~pc:l.Trace.pc ~note:"scaled loads under constant bounds";
              let elem = fine (Trace.Sub_load l.Trace.id) in
              wrap_outer_first elem dims)
        in
        add_anchor ~path base ty (32 * product dims)
      end)
    static_groups;

  (* ---- pass 4: remaining constant-location loads are basic-type
     parameters (R4 default, then fine-grained refinement) ------------- *)
  let spans = List.map (fun a -> (a.head, a.span)) !anchors in
  let inside_span off =
    List.exists (fun (h, s) -> off >= h && off < h + s) spans
  in
  List.iter
    (fun (l : Trace.load) ->
      match Sexpr.to_const_int l.Trace.loc with
      | Some off
        when off >= 4 && (off - 4) mod 32 = 0 && (not (is_claimed l))
             && not (inside_span off) ->
        claim l;
        let ty, path =
          Rules.with_path ctx (fun () ->
              Rules.hit ctx
                (if vyper then "R25" else "R4")
                ~pc:l.Trace.pc ~note:"word load at constant head slot";
              fine (Trace.Sub_load l.Trace.id))
        in
        add_anchor ~path off ty 32
      | _ -> ())
    loads;

  (* ---- assemble: order parameters by head location ------------------ *)
  let by_head = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt by_head a.head with
      | Some prev when prev.ty <> Abi.Abity.Uint 256 -> ignore prev
      | _ -> Hashtbl.replace by_head a.head a)
    (List.rev !anchors);
  let ordered =
    Hashtbl.fold (fun _ a acc -> a :: acc) by_head []
    |> List.filter (fun a ->
           not
             (List.exists
                (fun (h, s) -> a.head > h && a.head < h + s)
                spans))
    |> List.sort (fun a b -> compare a.head b.head)
  in
  if Tr.enabled () then
    Tr.complete Tr.Rules "classify" ~t0_us:t_rules
      [
        ("entry", Tr.Int entry);
        ("params", Tr.Int (List.length ordered));
        ("paths", Tr.Int trace.Trace.paths_explored);
      ];
  {
    params = List.map (fun a -> a.ty) ordered;
    rule_paths = List.map (fun a -> a.path) ordered;
    evidence = Rules.evidence ctx;
    lang = (if vyper then Abi.Abity.Vyper else Abi.Abity.Solidity);
    trace;
  }
