(** TASE: type-aware symbolic execution (paper §4.2).

    Step 1 (coarse-grained inference) classifies each parameter's shape
    from the CALLDATALOAD/CALLDATACOPY rules; step 2 derives the number
    and order of parameters from the head-slot locations of the anchors
    found; step 3 is the symbol marking the executor performs (regions
    and load ids); step 4 (fine-grained inference) refines each 32-byte
    word to a specific basic type from the masks, comparisons and
    instructions applied to it. *)

type result = {
  params : Abi.Abity.t list;
  rule_paths : string list list;
      (** for each parameter, the rules that fired while classifying it,
          in firing order — its path through the Fig. 13 decision tree *)
  evidence : Rules.evidence list;
      (** every rule decision made while classifying this function —
          fired and rejected, with pc witnesses — oldest first; feeds
          the CLI [explain] narrative *)
  lang : Abi.Abity.lang;
  trace : Symex.Trace.t;      (** for downstream consumers (Erays+) *)
}

val infer :
  ?stats:Stats.t ->
  ?config:Rules.config ->
  ?static_prune:bool ->
  ?budget:Symex.Exec.budget ->
  contract:Contract.t ->
  entry:int ->
  unit ->
  result
(** Run TASE on the function body at [entry] of [contract]. The
    contract's shared disassembly and CFG are reused; only the symbolic
    exploration is per-entry work. [static_prune] (default [true]) runs
    the abstract-interpretation pre-screen first and skips forking at
    branches it proves calldata-independent with a single relevant arm;
    skipped forks are counted in [Trace.forks_pruned] and
    [Stats.forks_pruned]. *)
