type recovered = {
  selector : string;
  selector_hex : string;
  params : Abi.Abity.t list;
  rule_paths : string list list;
  evidence : Rules.evidence list;
  lang : Abi.Abity.lang;
  entry_pc : int;
  paths_explored : int;
}

let of_infer ~selector ~entry_pc (result : Infer.result) =
  {
    selector;
    selector_hex = Evm.Hex.encode selector;
    params = result.Infer.params;
    rule_paths = result.Infer.rule_paths;
    evidence = result.Infer.evidence;
    lang = result.Infer.lang;
    entry_pc;
    paths_explored = result.Infer.trace.Symex.Trace.paths_explored;
  }

let recover_contract ?stats ?config ?static_prune ?budget contract =
  List.map
    (fun { Ids.selector; entry_pc; entry_stack_depth = _ } ->
      of_infer ~selector ~entry_pc
        (Infer.infer ?stats ?config ?static_prune ?budget ~contract
           ~entry:entry_pc ()))
    contract.Contract.entries

let recover ?stats ?config ?static_prune ?budget bytecode =
  recover_contract ?stats ?config ?static_prune ?budget (Contract.make bytecode)

let type_list r = String.concat "," (List.map Abi.Abity.to_string r.params)

let pp fmt r =
  Format.fprintf fmt "0x%s(%s)%s" r.selector_hex (type_list r)
    (match r.lang with Abi.Abity.Solidity -> "" | Abi.Abity.Vyper -> " [vyper]")
