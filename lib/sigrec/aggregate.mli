(** Cross-contract evidence aggregation — the paper's §7 proposal for
    the case-5 ambiguities: "one function signature may be found in many
    smart contracts with various function bodies that may provide
    sufficient clues".

    The same function id appears in thousands of deployed contracts
    whose bodies use the parameters differently: one body never touches
    a [bytes] parameter byte-wise (recovered [string]), another does
    (recovered [bytes]). Joining the recoveries keeps the most specific
    evidence seen anywhere. *)

val more_specific : Abi.Abity.t -> Abi.Abity.t -> bool
(** [more_specific a b]: a carries strictly more evidence than b in the
    refinement order of the rules ([uint256] is the unrefined default;
    byte access refines [string] to [bytes]; arithmetic refines
    [address] to [uint160]). *)

val join_type : Abi.Abity.t -> Abi.Abity.t -> Abi.Abity.t
(** Least upper bound in the evidence order; structural types join
    pointwise. Unrelated conflicts keep the left type (resolved by
    {!join_all}'s majority vote). *)

val join_params :
  Abi.Abity.t list -> Abi.Abity.t list -> Abi.Abity.t list option
(** Pointwise join; [None] when the arities disagree. *)

val join_all : Abi.Abity.t list list -> Abi.Abity.t list option
(** Join the recoveries of one function id from many contracts: the
    majority arity wins, then types join pointwise across the majority
    class. [None] on empty input. *)

val recover_many :
  ?engine:Engine.t ->
  ?jobs:int ->
  string list ->
  (string * Abi.Abity.t list) list
(** [recover_many bytecodes] recovers every contract and returns one
    aggregated parameter list per function id (selector, joined
    types). Runs through an {!Engine}: byte-identical duplicates are
    analyzed once, distinct bytecodes fan out over [jobs] domains
    ([jobs] shapes the engine built here; a caller-supplied [engine]
    runs with its own configuration — the recovered output is
    byte-identical either way). Pass [engine] to reuse its cache (and
    read its hit/miss counters) across calls. *)
