(* Process-wide pool of worker domains.

   [Engine.recover_all] used to spawn fresh domains for every batch and
   join them at the end; at sub-second batch sizes the spawn cost (and
   each new domain rebuilding its expression interner from cold)
   dominated the fan-out and made jobs>=2 *slower* than sequential. The
   pool spawns a worker domain once, hands it a warm-interner snapshot
   from the spawning domain, and keeps it alive for the life of the
   process — so a resident [sigrec serve] daemon (or a test suite, or a
   bench loop) pays the spawn and warm-up cost once, not per batch.

   The pool is deliberately global rather than per-engine: OCaml caps
   live domains (Domain.spawn fails past ~128), and engines are cheap
   enough that test suites create hundreds. Workers are generic — they
   run closures — so any number of engines share them safely. *)

module Tr = Sigrec_trace.Trace
module Mx = Sigrec_metrics.Metrics

let max_workers = 30 (* hard cap, well under the runtime's domain limit *)

type batch = {
  bm : Mutex.t;
  bcv : Condition.t;
  mutable remaining : int;
  mutable failed : exn option; (* first task exception, re-raised by await *)
  submitted_ns : int; (* for the hand-off histogram; 0 when metrics off *)
}

type task = {
  run : unit -> unit;
  batch : batch;
  queued_ns : int; (* push time; 0 when metrics off *)
}

(* Health histograms for the resident-service story: how long tasks
   sit in the queue before a worker picks them up, and how long a full
   submit→await round trip takes (hand-off plus the work itself).
   Created lazily so a process that never enables metrics never builds
   them. *)
let queue_wait_hist =
  lazy
    (Mx.histogram
       ~help:"time a pool task waits in the queue before a worker dequeues it"
       "sigrec_pool_queue_wait_seconds")

let handoff_hist =
  lazy
    (Mx.histogram
       ~help:"pool submit-to-await round trip, including task run time"
       "sigrec_pool_handoff_seconds")

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : task Queue.t = Queue.create ()
let worker_count = ref 0

let workers () = Mutex.protect lock (fun () -> !worker_count)

let worker_main warm () =
  (* Seed this domain's interner from the spawner's snapshot before the
     first task: the worker's first analyses then reuse nodes instead of
     rebuilding the common expression population from cold. *)
  Symex.Sexpr.adopt warm;
  let rec loop () =
    Mutex.lock lock;
    while Queue.is_empty queue do
      Condition.wait work_available lock
    done;
    let task = Queue.pop queue in
    Mutex.unlock lock;
    if task.queued_ns <> 0 && Mx.enabled () then
      Mx.observe (Lazy.force queue_wait_hist) (Tr.now_ns () - task.queued_ns);
    (try task.run ()
     with e ->
       Mutex.lock task.batch.bm;
       if task.batch.failed = None then task.batch.failed <- Some e;
       Mutex.unlock task.batch.bm);
    Mutex.lock task.batch.bm;
    task.batch.remaining <- task.batch.remaining - 1;
    if task.batch.remaining = 0 then Condition.broadcast task.batch.bcv;
    Mutex.unlock task.batch.bm;
    loop ()
  in
  loop ()

(* Grow the pool to [n] workers (within the cap). Safe to call from any
   domain; spawning happens outside the pool lock so running workers
   keep draining the queue meanwhile. The snapshot is captured once per
   call, after we know at least one spawn is needed. *)
let ensure n =
  let target = Stdlib.min n max_workers in
  let missing =
    Mutex.protect lock (fun () ->
        let missing = target - !worker_count in
        if missing > 0 then worker_count := target;
        missing)
  in
  if missing > 0 then begin
    let warm = Symex.Sexpr.snapshot () in
    for _ = 1 to missing do
      (* workers live for the rest of the process; their Domain.t
         handles are never joined, so don't keep them *)
      ignore (Domain.spawn (worker_main warm) : unit Domain.t)
    done
  end

let submit tasks =
  let now = if Mx.enabled () then Tr.now_ns () else 0 in
  match tasks with
  | [] ->
    {
      bm = Mutex.create ();
      bcv = Condition.create ();
      remaining = 0;
      failed = None;
      submitted_ns = now;
    }
  | _ ->
    let batch =
      {
        bm = Mutex.create ();
        bcv = Condition.create ();
        remaining = List.length tasks;
        failed = None;
        submitted_ns = now;
      }
    in
    Mutex.protect lock (fun () ->
        List.iter
          (fun run -> Queue.push { run; batch; queued_ns = now } queue)
          tasks;
        Condition.broadcast work_available);
    batch

let await batch =
  Mutex.lock batch.bm;
  while batch.remaining > 0 do
    Condition.wait batch.bcv batch.bm
  done;
  let failed = batch.failed in
  Mutex.unlock batch.bm;
  if batch.submitted_ns <> 0 && Mx.enabled () then
    Mx.observe (Lazy.force handoff_hist) (Tr.now_ns () - batch.submitted_ns);
  match failed with Some e -> raise e | None -> ()
