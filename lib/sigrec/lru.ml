(* Bounded LRU map: a hashtable over an intrusive doubly-linked list in
   recency order. [find] promotes to most-recent; [add] evicts from the
   least-recent end once the capacity is exceeded. Capacity 0 means
   unbounded (the list still tracks recency, which costs two pointer
   writes per hit — negligible against a recovery analysis).

   Not thread-safe: Engine guards its instance with the engine lock. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards most-recent *)
  mutable next : ('k, 'v) node option; (* towards least-recent *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity = Stdlib.max 0 capacity;
    table = Hashtbl.create (if capacity > 0 then Stdlib.min capacity 1024 else 256);
    head = None;
    tail = None;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions
let mem t k = Hashtbl.mem t.table k

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let find_opt t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

(* Peek without touching recency: metrics and assertions must not
   reorder the eviction queue. *)
let peek_opt t k =
  Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    promote t n
  | None ->
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n);
  if t.capacity > 0 then
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold f t acc =
  Hashtbl.fold (fun k n acc -> f k n.value acc) t.table acc
