(** Process-wide pool of reusable worker domains.

    Replaces per-batch [Domain.spawn] in {!Engine.recover_all}: workers
    are spawned once (seeded with a warm expression-interner snapshot
    from the spawning domain, {!Symex.Sexpr.adopt}) and then persist
    for the life of the process, so a resident service pays domain
    startup and interner warm-up once rather than on every request.

    The pool is global: all engines share it, which keeps the number of
    live domains bounded regardless of how many engines a process (or a
    test suite) creates. Tasks are plain closures; submitting from
    several domains concurrently is safe. *)

val max_workers : int
(** Upper bound on pooled domains (kept well under the OCaml runtime's
    live-domain limit). *)

val workers : unit -> int
(** Worker domains spawned so far. *)

val ensure : int -> unit
(** [ensure n] grows the pool to at least [min n max_workers] workers.
    No-op when the pool is already that large. *)

type batch
(** A group of submitted tasks awaiting completion. *)

val submit : (unit -> unit) list -> batch
(** Queue the tasks for the pool; returns immediately. The caller
    typically runs one share of the work itself before {!await}ing.
    Tasks must not themselves block on {!await} of another batch
    submitted after theirs (the pool has no work-stealing between
    blocked tasks). *)

val await : batch -> unit
(** Block until every task of the batch has finished. Re-raises the
    first exception a task raised, if any (after all tasks finished). *)
