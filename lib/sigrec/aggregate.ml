(* Evidence order: how refined a recovered type is, following the rule
   structure. uint256 is the R4/R25 default (no evidence); string is
   the no-byte-access default among byte sequences (R17); address is
   the no-arithmetic default of the 20-byte mask (R16). *)
let rank ty =
  match ty with
  | Abi.Abity.Uint 256 -> 0 (* the unrefined default *)
  | Abi.Abity.String_t -> 1 (* default among bytes/string *)
  | Abi.Abity.Address -> 1 (* default among 20-byte-masked words *)
  | _ -> 2

let rec more_specific a b =
  if Abi.Abity.equal a b then false
  else
    match (a, b) with
    | _, Abi.Abity.Uint 256 -> true
    | Abi.Abity.Bytes, Abi.Abity.String_t -> true
    | Abi.Abity.Uint 160, Abi.Abity.Address -> true
    | Abi.Abity.Darray x, Abi.Abity.String_t ->
      (* structural array evidence beats the ambiguous dynamic default *)
      ignore x;
      true
    | Abi.Abity.Darray x, Abi.Abity.Darray y
    | Abi.Abity.Sarray (x, _), Abi.Abity.Sarray (y, _) ->
      more_specific x y
    | _ -> false

let rec join_type a b =
  if Abi.Abity.equal a b then a
  else
    match (a, b) with
    | Abi.Abity.Darray x, Abi.Abity.Darray y -> Abi.Abity.Darray (join_type x y)
    | Abi.Abity.Sarray (x, n), Abi.Abity.Sarray (y, m) when n = m ->
      Abi.Abity.Sarray (join_type x y, n)
    | Abi.Abity.Tuple xs, Abi.Abity.Tuple ys
      when List.length xs = List.length ys ->
      Abi.Abity.Tuple (List.map2 join_type xs ys)
    | _ ->
      if more_specific b a then b
      else if more_specific a b then a
      else if rank b > rank a then b
      else a

let join_params a b =
  if List.length a <> List.length b then None
  else Some (List.map2 join_type a b)

let join_all recoveries =
  match recoveries with
  | [] -> None
  | _ ->
    (* majority arity first: a body that misses parameters entirely
       (unaccessed external arrays) must not poison the others *)
    let by_arity = Hashtbl.create 4 in
    List.iter
      (fun tys ->
        let n = List.length tys in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_arity n) in
        Hashtbl.replace by_arity n (tys :: cur))
      recoveries;
    let _, winner =
      Hashtbl.fold
        (fun _ group (best_count, best) ->
          if List.length group > best_count then (List.length group, group)
          else (best_count, best))
        by_arity (0, [])
    in
    (match winner with
    | [] -> None
    | first :: rest ->
      Some (List.fold_left (fun acc tys -> List.map2 join_type acc tys) first rest))

let recover_many ?engine ?jobs bytecodes =
  (* byte-identical bodies carry identical evidence: the engine cache
     analyzes each distinct bytecode once and replays the result for
     its duplicates instead of re-running full recovery *)
  let engine =
    match engine with
    | Some e -> e
    | None ->
      Engine.make
        (match jobs with
        | Some j -> Engine.Config.(default |> with_jobs j)
        | None -> Engine.Config.default)
  in
  (* a caller-supplied engine runs with its own configuration: the
     fan-out is deterministic (output is byte-identical whatever the
     parallelism), so [jobs] only matters when we build the engine *)
  let reports = Engine.recover_all engine bytecodes in
  let table = Hashtbl.create 32 in
  List.iter
    (fun report ->
      List.iter
        (fun r ->
          let cur =
            Option.value ~default:[]
              (Hashtbl.find_opt table r.Recover.selector)
          in
          Hashtbl.replace table r.Recover.selector
            (r.Recover.params :: cur))
        (Engine.signatures report))
    reports;
  Hashtbl.fold
    (fun selector recoveries acc ->
      match join_all recoveries with
      | Some params -> (selector, params) :: acc
      | None -> acc)
    table []
