(* Resident recovery service: the protocol core of [sigrec serve].

   Line-oriented JSON over any channel pair — stdin/stdout or an
   accepted Unix-socket connection (the listener lives in the CLI,
   which owns the unix dependency). One request per line, one response
   line per request, flushed immediately. The engine persists across
   requests, so its report cache and the process-wide domain pool stay
   warm: repeated batches hit the cache and never pay domain spawn
   again.

   A malformed request produces an {"ok":false} response, never a dead
   daemon: [handle_line] catches everything. *)

module Tr = Sigrec_trace.Trace

type t = {
  engine : Engine.t;
  started_ns : int;
  mutable requests : int; (* requests answered, including failed ones *)
}

let create config =
  { engine = Engine.make config; started_ns = Tr.now_ns (); requests = 0 }

let engine t = t.engine

type reply = {
  response : string; (* one JSON line, no trailing newline *)
  shutdown : bool;
}

let error_response id msg =
  Json.obj [ ("id", id); ("ok", "false"); ("error", Json.quote msg) ]

let warning_json (index, reason) =
  Json.obj
    [ ("index", string_of_int index); ("reason", Json.quote reason) ]

let recover_response t id codes_json =
  match Json.to_list_opt codes_json with
  | None -> error_response id "\"codes\" must be an array of hex strings"
  | Some items ->
    let rec as_strings acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> as_strings (s :: acc) rest
      | _ -> None
    in
    (match as_strings [] items with
    | None -> error_response id "\"codes\" must be an array of hex strings"
    | Some entries ->
      let batch = Input.parse_codes entries in
      let reports = Engine.recover_all t.engine batch.Input.codes in
      Json.obj
        [
          ("id", id);
          ("ok", "true");
          ("reports", Json.arr (List.map Render.report reports));
          ( "warnings",
            Json.arr (List.map warning_json batch.Input.skipped) );
        ])

let layout_response t id codes_json =
  match Json.to_list_opt codes_json with
  | None -> error_response id "\"codes\" must be an array of hex strings"
  | Some items ->
    let rec as_strings acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> as_strings (s :: acc) rest
      | _ -> None
    in
    (match as_strings [] items with
    | None -> error_response id "\"codes\" must be an array of hex strings"
    | Some entries ->
      let batch = Input.parse_codes entries in
      let layouts = Engine.layout_all t.engine batch.Input.codes in
      Json.obj
        [
          ("id", id);
          ("ok", "true");
          ("layouts", Json.arr (List.map Render.layout_report layouts));
          ( "warnings",
            Json.arr (List.map warning_json batch.Input.skipped) );
        ])

let metrics_response t id =
  let stats = Engine.stats t.engine in
  Json.obj
    [
      ("id", id);
      ("ok", "true");
      ("requests", string_of_int t.requests);
      ("uptime_ns", string_of_int (Tr.now_ns () - t.started_ns));
      ("cache_size", string_of_int (Engine.cache_size t.engine));
      ( "cache_capacity",
        string_of_int (Engine.config t.engine).Engine.Config.cache_capacity
      );
      ("pool_workers", string_of_int (Pool.workers ()));
      ("trace_enabled", string_of_bool (Tr.enabled ()));
      ("stats", Stats.to_json stats);
    ]

let handle_line t line =
  t.requests <- t.requests + 1;
  match Json.parse line with
  | Error msg ->
    { response = error_response "null" ("parse error " ^ msg); shutdown = false }
  | Ok req ->
    let id =
      match Json.member "id" req with
      | Some v -> Json.to_string v
      | None -> "null"
    in
    let result =
      match Json.member "op" req with
      | None -> { response = error_response id "missing \"op\""; shutdown = false }
      | Some op ->
        (match Json.to_string_opt op with
        | None -> { response = error_response id "\"op\" must be a string"; shutdown = false }
        | Some "ping" ->
          {
            response = Json.obj [ ("id", id); ("ok", "true"); ("pong", "true") ];
            shutdown = false;
          }
        | Some "shutdown" ->
          {
            response =
              Json.obj [ ("id", id); ("ok", "true"); ("shutdown", "true") ];
            shutdown = true;
          }
        | Some "metrics" ->
          { response = metrics_response t id; shutdown = false }
        | Some "recover" ->
          let codes =
            Option.value ~default:Json.Null (Json.member "codes" req)
          in
          { response = recover_response t id codes; shutdown = false }
        | Some "layout" ->
          let codes =
            Option.value ~default:Json.Null (Json.member "codes" req)
          in
          { response = layout_response t id codes; shutdown = false }
        | Some op ->
          {
            response = error_response id (Printf.sprintf "unknown op %S" op);
            shutdown = false;
          })
    in
    result

(* Belt and braces: the engine reifies analysis failures into Failed
   outcomes already, so exceptions here mean a bug in the protocol
   layer itself — answer with ok:false rather than killing the daemon. *)
let handle_line t line =
  try handle_line t line
  with e ->
    {
      response = error_response "null" ("internal error: " ^ Printexc.to_string e);
      shutdown = false;
    }

let run t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Eof
    | Some line ->
      if String.trim line = "" then loop ()
      else begin
        let reply = handle_line t line in
        Out_channel.output_string oc reply.response;
        Out_channel.output_char oc '\n';
        Out_channel.flush oc;
        if reply.shutdown then `Shutdown else loop ()
      end
  in
  loop ()
