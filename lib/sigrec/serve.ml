(* Resident recovery service: the protocol core of [sigrec serve].

   Line-oriented JSON over any channel pair — stdin/stdout or an
   accepted Unix-socket connection (the listener lives in the CLI,
   which owns the unix dependency). One request per line, one response
   line per request, flushed immediately. The engine persists across
   requests, so its report cache and the process-wide domain pool stay
   warm: repeated batches hit the cache and never pay domain spawn
   again.

   A malformed request produces an {"ok":false} response, never a dead
   daemon: [handle_line] catches everything. *)

module Tr = Sigrec_trace.Trace
module Mx = Sigrec_metrics.Metrics

type t = {
  engine : Engine.t;
  started_ns : int;
  mutable requests : int; (* requests answered, including failed ones *)
  mutable last_op : string; (* op of the request being handled, for the
                               per-op latency histogram *)
}

(* The engine-side exposition chunk: the Stats descriptor list rendered
   as counter families, plus the LRU/pool/service gauges that live in
   engine or serve state rather than the metric registry. Registered as
   a collector so [Metrics.expose] emits one self-contained surface. *)
let engine_exposition t () =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Stats.to_openmetrics (Engine.stats t.engine));
  (* [lru] prefix, not [cache]: the Stats descriptor list already owns
     the sigrec_cache_* family names (hits/misses/evictions of the
     report cache), and a family must not appear twice in one
     exposition *)
  let caches = Engine.cache_stats t.engine in
  Buffer.add_string b "# TYPE sigrec_lru_entries gauge\n";
  List.iter
    (fun (name, len, _, _) ->
      Buffer.add_string b
        (Printf.sprintf "sigrec_lru_entries{cache=%S} %d\n" name len))
    caches;
  Buffer.add_string b "# TYPE sigrec_lru_capacity gauge\n";
  List.iter
    (fun (name, _, cap, _) ->
      Buffer.add_string b
        (Printf.sprintf "sigrec_lru_capacity{cache=%S} %d\n" name cap))
    caches;
  Buffer.add_string b "# TYPE sigrec_lru_evictions counter\n";
  List.iter
    (fun (name, _, _, ev) ->
      Buffer.add_string b
        (Printf.sprintf "sigrec_lru_evictions_total{cache=%S} %d\n" name ev))
    caches;
  Buffer.add_string b "# TYPE sigrec_pool_workers gauge\n";
  Buffer.add_string b
    (Printf.sprintf "sigrec_pool_workers %d\n" (Pool.workers ()));
  Buffer.add_string b "# TYPE sigrec_engine_workers gauge\n";
  Buffer.add_string b
    (Printf.sprintf "sigrec_engine_workers %d\n"
       (Engine.effective_jobs t.engine));
  Buffer.add_string b "# TYPE sigrec_serve_requests counter\n";
  Buffer.add_string b
    (Printf.sprintf "sigrec_serve_requests_total %d\n" t.requests);
  Buffer.add_string b "# TYPE sigrec_serve_uptime_seconds gauge\n";
  Buffer.add_string b
    (Printf.sprintf "sigrec_serve_uptime_seconds %.3f\n"
       (float_of_int (Tr.now_ns () - t.started_ns) *. 1e-9));
  Buffer.contents b

let create config =
  let t =
    {
      engine = Engine.make config;
      started_ns = Tr.now_ns ();
      requests = 0;
      last_op = "other";
    }
  in
  (* replace-by-name: the newest service owns the process-wide chunk,
     so tests creating many services stay well-defined *)
  Mx.register_collector ~name:"engine" (engine_exposition t);
  t

let engine t = t.engine

type reply = {
  response : string; (* one JSON line, no trailing newline *)
  shutdown : bool;
  stream : string option;
      (* [Some id] after a "stream" request: the caller owning the
         channel pair should switch to corpus-line input (see
         [run_stream]) once the ack is written *)
}

let reply response = { response; shutdown = false; stream = None }

let error_response id msg =
  Json.obj [ ("id", id); ("ok", "false"); ("error", Json.quote msg) ]

let warning_json (index, reason) =
  Json.obj
    [ ("index", string_of_int index); ("reason", Json.quote reason) ]

let recover_response t id codes_json =
  match Json.to_list_opt codes_json with
  | None -> error_response id "\"codes\" must be an array of hex strings"
  | Some items ->
    let rec as_strings acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> as_strings (s :: acc) rest
      | _ -> None
    in
    (match as_strings [] items with
    | None -> error_response id "\"codes\" must be an array of hex strings"
    | Some entries ->
      let batch = Input.parse_codes entries in
      let reports = Engine.recover_all t.engine batch.Input.codes in
      Json.obj
        [
          ("id", id);
          ("ok", "true");
          ("reports", Json.arr (List.map Render.report reports));
          ( "warnings",
            Json.arr (List.map warning_json batch.Input.skipped) );
        ])

let layout_response t id codes_json =
  match Json.to_list_opt codes_json with
  | None -> error_response id "\"codes\" must be an array of hex strings"
  | Some items ->
    let rec as_strings acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> as_strings (s :: acc) rest
      | _ -> None
    in
    (match as_strings [] items with
    | None -> error_response id "\"codes\" must be an array of hex strings"
    | Some entries ->
      let batch = Input.parse_codes entries in
      let layouts = Engine.layout_all t.engine batch.Input.codes in
      Json.obj
        [
          ("id", id);
          ("ok", "true");
          ("layouts", Json.arr (List.map Render.layout_report layouts));
          ( "warnings",
            Json.arr (List.map warning_json batch.Input.skipped) );
        ])

let classify_response t id codes_json =
  match Json.to_list_opt codes_json with
  | None -> error_response id "\"codes\" must be an array of hex strings"
  | Some items ->
    let rec as_strings acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> as_strings (s :: acc) rest
      | _ -> None
    in
    (match as_strings [] items with
    | None -> error_response id "\"codes\" must be an array of hex strings"
    | Some entries ->
      let batch = Input.parse_codes entries in
      let verdicts = Engine.classify_all t.engine batch.Input.codes in
      Json.obj
        [
          ("id", id);
          ("ok", "true");
          ( "classifications",
            Json.arr (List.map Render.classify_report verdicts) );
          ( "warnings",
            Json.arr (List.map warning_json batch.Input.skipped) );
        ])

let metrics_response t id =
  let stats = Engine.stats t.engine in
  Json.obj
    [
      ("id", id);
      ("ok", "true");
      ("requests", string_of_int t.requests);
      ("uptime_ns", string_of_int (Tr.now_ns () - t.started_ns));
      ("cache_size", string_of_int (Engine.cache_size t.engine));
      ( "cache_capacity",
        string_of_int (Engine.config t.engine).Engine.Config.cache_capacity
      );
      ("pool_workers", string_of_int (Pool.workers ()));
      ("workers", string_of_int (Engine.effective_jobs t.engine));
      ("trace_enabled", string_of_bool (Tr.recording ()));
      ("stats", Stats.to_json stats);
    ]

(* v2 of the metrics op: {"op":"metrics","format":"openmetrics"} gets
   the full Prometheus-scrapeable exposition (registry histograms and
   gauges plus the engine collector chunk) as one JSON-escaped string
   field; the legacy JSON shape above stays the default. *)
let openmetrics_response id =
  Mx.sample_gc ();
  Json.obj
    [
      ("id", id);
      ("ok", "true");
      ("format", Json.quote "openmetrics");
      ("exposition", Json.quote (Mx.expose ()));
    ]

let top_response id =
  Json.obj
    [
      ("id", id);
      ("ok", "true");
      ( "slowest",
        Json.arr
          (List.map
             (fun (e : Mx.Top.entry) ->
               Json.obj
                 [
                   ("code_hash", Json.quote e.Mx.Top.key);
                   ("elapsed_ns", string_of_int e.Mx.Top.elapsed_ns);
                   ( "detail",
                     Json.obj
                       (List.map
                          (fun (k, v) -> (k, string_of_int v))
                          e.Mx.Top.detail) );
                 ])
             (Mx.Top.slowest ())) );
    ]

let handle_line t line =
  t.requests <- t.requests + 1;
  match Json.parse line with
  | Error msg -> reply (error_response "null" ("parse error " ^ msg))
  | Ok req ->
    let id =
      match Json.member "id" req with
      | Some v -> Json.to_string v
      | None -> "null"
    in
    let result =
      match Json.member "op" req with
      | None -> reply (error_response id "missing \"op\"")
      | Some op ->
        (match Json.to_string_opt op with
        | None -> reply (error_response id "\"op\" must be a string")
        | Some opname ->
          t.last_op <-
            (match opname with
            | "ping" | "shutdown" | "metrics" | "recover" | "layout"
            | "classify" | "stream" ->
              opname
            | _ -> "other");
          (match opname with
          | "ping" ->
            reply (Json.obj [ ("id", id); ("ok", "true"); ("pong", "true") ])
          | "shutdown" ->
            {
              response =
                Json.obj [ ("id", id); ("ok", "true"); ("shutdown", "true") ];
              shutdown = true;
              stream = None;
            }
          | "metrics" ->
            (match Json.member "top" req with
            | Some _ -> reply (top_response id)
            | None ->
              (match Json.member "format" req with
              | Some f when Json.to_string_opt f = Some "openmetrics" ->
                reply (openmetrics_response id)
              | Some _ ->
                reply
                  (error_response id
                     "unknown \"format\" (expected \"openmetrics\")")
              | None -> reply (metrics_response t id)))
          | "recover" ->
            let codes =
              Option.value ~default:Json.Null (Json.member "codes" req)
            in
            reply (recover_response t id codes)
          | "layout" ->
            let codes =
              Option.value ~default:Json.Null (Json.member "codes" req)
            in
            reply (layout_response t id codes)
          | "classify" ->
            let codes =
              Option.value ~default:Json.Null (Json.member "codes" req)
            in
            reply (classify_response t id codes)
          | "stream" ->
            {
              response =
                Json.obj
                  [ ("id", id); ("ok", "true"); ("streaming", "true") ];
              shutdown = false;
              stream = Some id;
            }
          | op ->
            reply (error_response id (Printf.sprintf "unknown op %S" op))))
    in
    result

(* Belt and braces: the engine reifies analysis failures into Failed
   outcomes already, so exceptions here mean a bug in the protocol
   layer itself — answer with ok:false rather than killing the daemon.
   This wrapper also owns the per-request latency histogram: one
   observation per line, labelled by the op the dispatch resolved. *)
let handle_line t line =
  t.last_op <- "other";
  let t0 = if Mx.enabled () then Tr.now_ns () else 0 in
  let result =
    try handle_line t line
    with e ->
      reply
        (error_response "null" ("internal error: " ^ Printexc.to_string e))
  in
  if t0 <> 0 && Mx.enabled () then
    Mx.observe
      (Mx.histogram ~help:"serve request latency by op"
         ~labels:[ ("op", t.last_op) ]
         "sigrec_request_duration_seconds")
      (Tr.now_ns () - t0);
  result

(* Streaming mode: after a {"op":"stream"} ack the connection carries
   corpus lines — the same grammar as a batch file (hex bytecodes,
   blank lines and # comments skipped) — until a lone "." sentinel
   (back to request mode) or EOF. Each contract's report goes out as
   one {"id":…,"report":…} line in feed order; malformed lines become
   in-band {"id":…,"warning":…} lines so stderr stays quiet on a
   socket. Batching, cross-batch dedup against the engine's report
   cache and worker fan-out all come from [Engine.Stream]. *)
let run_stream t id ic oc =
  let emit_line s =
    Out_channel.output_string oc s;
    Out_channel.output_char oc '\n';
    Out_channel.flush oc
  in
  let dedup = ref 0 in
  let emit r =
    if r.Engine.from_cache then incr dedup;
    emit_line (Json.obj [ ("id", id); ("report", Render.report r) ])
  in
  let session = Engine.Stream.start t.engine ~emit in
  let lines = ref 0 and skipped = ref 0 in
  let eof = ref false and ended = ref false in
  while not !ended do
    match In_channel.input_line ic with
    | None ->
      eof := true;
      ended := true
    | Some line ->
      if String.trim line = "." then ended := true
      else begin
        incr lines;
        match Input.parse_line line with
        | `Blank -> ()
        | `Code code -> Engine.Stream.feed session code
        | `Bad reason ->
          incr skipped;
          emit_line
            (Json.obj
               [
                 ("id", id);
                 ( "warning",
                   Json.obj
                     [
                       ("line", string_of_int !lines);
                       ("reason", Json.quote reason);
                     ] );
               ])
      end
  done;
  let contracts = Engine.Stream.finish session in
  Stats.add_stream_lines (Engine.stats t.engine) ~lines:!lines
    ~skipped:!skipped;
  emit_line
    (Json.obj
       [
         ("id", id);
         ("ok", "true");
         ("done", "true");
         ("contracts", string_of_int contracts);
         ("lines", string_of_int !lines);
         ("skipped", string_of_int !skipped);
         ("dedup_hits", string_of_int !dedup);
       ]);
  if !eof then `Eof else `Done

let run t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Eof
    | Some line ->
      if String.trim line = "" then loop ()
      else begin
        let reply = handle_line t line in
        Out_channel.output_string oc reply.response;
        Out_channel.output_char oc '\n';
        Out_channel.flush oc;
        if reply.shutdown then `Shutdown
        else
          match reply.stream with
          | None -> loop ()
          | Some id ->
            (match run_stream t id ic oc with
            | `Eof -> `Eof
            | `Done -> loop ())
      end
  in
  loop ()
