(** Tolerant parsing of batch input files.

    A batch file carries one hex runtime bytecode per line, with an
    optional ["0x"] prefix. Blank lines and [#] comments are skipped;
    CRLF line endings are accepted. A malformed line is reported with
    its 1-based line number instead of failing the whole file, so one
    bad row in a million-line dump costs one contract, not the batch. *)

type batch = {
  codes : string list;         (** decoded bytecodes, in file order *)
  skipped : (int * string) list;
      (** (1-based line number, reason) for each malformed line *)
}

val parse_batch :
  ?warn:(line:int -> reason:string -> unit) -> string -> batch
(** [warn] is invoked for each malformed line as it is encountered (in
    addition to recording it in [skipped]); use {!warn_stderr} to keep
    diagnostics off stdout so [--format json] output stays
    machine-parseable. *)

val parse_codes : string list -> batch
(** Classify an explicit list of hex bytecodes (a [sigrec serve]
    request's ["codes"] array). Unlike {!parse_batch} the positions in
    [skipped] are 0-based indices into the input list, and a blank
    entry is malformed (["empty bytecode"]) rather than skippable —
    callers supplied it on purpose. Warnings are returned, never
    printed: the serve loop routes them into the JSON response stream
    instead of stderr. *)

val warn_stderr : line:int -> reason:string -> unit
(** A [warn] callback printing ["warning: skipping line N: reason"] to
    stderr (flushed). *)

val parse_line : string -> [ `Blank | `Code of string | `Bad of string ]
(** Classify a single line: skippable, decoded bytecode, or malformed
    with the decoder's reason. A line that decodes to zero bytes (a
    bare ["0x"]) is malformed — [`Bad "empty bytecode"] — not a
    contract. *)

(** What a streaming read saw: physical lines processed (blank and
    comment lines included), bytecodes delivered, malformed lines
    skipped. *)
type totals = { lines : int; codes : int; skipped : int }

val fold_lines :
  ?warn:(line:int -> reason:string -> unit) ->
  ?max_line_bytes:int ->
  f:('a -> string -> 'a) ->
  'a ->
  in_channel ->
  'a * totals
(** Incremental {!parse_batch}: read the channel in fixed-size chunks
    and fold [f] over each decoded bytecode, holding at most one line
    in memory — a million-line corpus streams through in constant
    space. Line classification, CRLF handling, 1-based [warn] line
    numbers and skip semantics are identical to {!parse_batch} (the
    property suite holds the two to agreement). A line longer than
    [max_line_bytes] (default 4 MiB) is skipped — reported like any
    malformed line — without ever being materialized. *)

val fold_reads :
  ?warn:(line:int -> reason:string -> unit) ->
  ?max_line_bytes:int ->
  read:(bytes -> int) ->
  f:('a -> string -> 'a) ->
  'a ->
  'a * totals
(** The reader underneath {!fold_lines}, over an arbitrary block
    source: [read buf] fills [buf] from the front and returns the
    number of bytes written, 0 at end of input. *)
