open Evm
module Summary = Sigrec_static.Summary
module Absint = Sigrec_static.Absint

type finding =
  | Mask_conflict of { offset : int; mask : U256.t; recovered : Abi.Abity.t }
  | Signext_conflict of { offset : int; byte : int; recovered : Abi.Abity.t }
  | Param_never_read of { offset : int; recovered : Abi.Abity.t }
  | Read_beyond_params of { offset : int }
  | Dead_firing of { rule : string; param_index : int }
  | Unreachable_entry

type verdict = {
  selector_hex : string;
  entry_pc : int;
  recovered : Recover.recovered;
  findings : finding list;
  summary : Summary.t;
}

let agree v = v.findings = []

(* -- head layout ------------------------------------------------------ *)

let head_offsets params =
  let rec go off = function
    | [] -> []
    | ty :: rest -> (off, ty) :: go (off + Abi.Abity.head_size ty) rest
  in
  go 4 params

let head_end params =
  List.fold_left (fun acc ty -> acc + Abi.Abity.head_size ty) 4 params

(* The basic type occupying the 32-byte word at byte [rel] of [ty]'s
   head block; [None] when the word is an offset slot, out of range, or
   not a basic value we can judge. *)
let rec word_type ty rel =
  match ty with
  | _ when Abi.Abity.is_dynamic ty -> None
  | Abi.Abity.Sarray (elem, n) ->
    let esz = Abi.Abity.head_size elem in
    if esz > 0 && rel < n * esz then word_type elem (rel mod esz) else None
  | Abi.Abity.Tuple fields ->
    let rec walk rel = function
      | [] -> None
      | f :: rest ->
        let sz = Abi.Abity.head_size f in
        if rel < sz then word_type f rel else walk (rel - sz) rest
    in
    walk rel fields
  | ty when Abi.Abity.is_basic ty -> if rel = 0 then Some ty else None
  | _ -> None

let word_type_at params off =
  List.find_map
    (fun (h, ty) ->
      if off >= h && off < h + Abi.Abity.head_size ty then
        word_type ty (off - h)
      else None)
    (head_offsets params)

(* -- mask shapes ------------------------------------------------------ *)

(* Only canonical solc type masks are judged: anything else (a nibble
   test, a flag probe) is application logic the lint has no opinion
   on. *)
let low_shape m =
  let rec go k =
    if k > 31 then None
    else if U256.equal m (U256.ones_low k) then Some k
    else go (k + 1)
  in
  go 1

let high_shape m =
  let rec go k =
    if k > 31 then None
    else if U256.equal m (U256.ones_high k) then Some k
    else go (k + 1)
  in
  go 1

let mask_agrees ty m =
  match (low_shape m, high_shape m) with
  | Some k, _ -> (
    match ty with
    | Abi.Abity.Uint w -> w = 8 * k
    | Abi.Abity.Address -> k = 20
    | _ -> false)
  | None, Some k -> ( match ty with Abi.Abity.Bytes_n w -> w = k | _ -> false)
  | None, None -> true

(* -- rule groups ------------------------------------------------------ *)

let copy_rules = [ "R5"; "R6"; "R7"; "R8"; "R9"; "R10"; "R23" ]
let item_load_rules = [ "R2"; "R3"; "R24" ]

(* -- the per-function diff -------------------------------------------- *)

let check_function ~(global : Absint.result) ~(summary : Summary.t)
    (r : Recover.recovered) =
  let params = r.Recover.params in
  let solidity = r.Recover.lang = Abi.Abity.Solidity in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let quiescent =
    (* the summary provably saw every call-data access of the body *)
    summary.Summary.complete
    && summary.Summary.sym_reads = 0
    && summary.Summary.copies = []
    && not summary.Summary.uses_cdsize
  in
  (* 1. a canonical type mask the static pass saw must match the type
     TASE recovered for that word *)
  if solidity then
    List.iter
      (fun (off, m) ->
        if off >= 4 then
          match word_type_at params off with
          | Some ty when not (mask_agrees ty m) ->
            add (Mask_conflict { offset = off; mask = m; recovered = ty })
          | _ -> ())
      summary.Summary.masks;
  (* 2. same for sign extensions: SIGNEXTEND k pins int(8(k+1)) *)
  if solidity then
    List.iter
      (fun (off, k) ->
        if off >= 4 && k <= 30 then
          match word_type_at params off with
          | Some ty when not (Abi.Abity.equal ty (Abi.Abity.Int (8 * (k + 1))))
            ->
            add (Signext_conflict { offset = off; byte = k; recovered = ty })
          | _ -> ())
      summary.Summary.signexts;
  (* 3. a recovered parameter whose head slot the static pass proves is
     never read anywhere *)
  if quiescent then
    List.iter
      (fun (h, ty) ->
        if not (Summary.reads_offset summary h) then
          add (Param_never_read { offset = h; recovered = ty }))
      (head_offsets params);
  (* 4. head-aligned constant reads past the recovered head: TASE
     dropped a parameter the body demonstrably touches *)
  if solidity && summary.Summary.complete then begin
    let bound = head_end params in
    List.iter
      (fun off ->
        if off >= bound && (off - 4) mod 32 = 0 then
          add (Read_beyond_params { offset = off }))
      summary.Summary.const_reads
  end;
  (* 5. rule firings whose premise the static pass refutes: a copy rule
     with no CALLDATACOPY in the body, an item-load rule with no
     symbolic-location read *)
  if summary.Summary.complete then
    List.iteri
      (fun i path ->
        List.iter
          (fun rule ->
            if List.mem rule copy_rules && summary.Summary.copies = [] then
              add (Dead_firing { rule; param_index = i })
            else if
              List.mem rule item_load_rules && summary.Summary.sym_reads = 0
            then add (Dead_firing { rule; param_index = i }))
          (List.sort_uniq compare path))
      r.Recover.rule_paths;
  (* 6. a dispatcher entry the whole-contract run proves unreachable *)
  if
    global.Absint.summary.Summary.complete
    && not (Absint.reached global r.Recover.entry_pc)
  then add Unreachable_entry;
  List.rev !findings

let check_contract ?stats ?config ?static_prune ?budget contract =
  let module Tr = Sigrec_trace.Trace in
  let recovered =
    Recover.recover_contract ?stats ?config ?static_prune ?budget contract
  in
  let global = Contract.static contract in
  let verdicts =
    List.map
      (fun (r : Recover.recovered) ->
        let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
        let absint =
          Absint.analyze ~depth:1 ~entry:r.Recover.entry_pc
            contract.Contract.cfg
        in
        let summary = absint.Absint.summary in
        let findings = check_function ~global ~summary r in
        if Tr.enabled () then
          Tr.complete Tr.Lint "verdict" ~t0_us
            [
              ("selector", Tr.Str ("0x" ^ r.Recover.selector_hex));
              ("findings", Tr.Int (List.length findings));
              ("agree", Tr.Bool (findings = []));
            ];
        {
          selector_hex = r.Recover.selector_hex;
          entry_pc = r.Recover.entry_pc;
          recovered = r;
          findings;
          summary;
        })
      recovered
  in
  Option.iter
    (fun s ->
      List.iter
        (fun v -> if agree v then Stats.lint_agree s else Stats.lint_disagree s)
        verdicts)
    stats;
  verdicts

let check ?stats ?config ?static_prune ?budget code =
  check_contract ?stats ?config ?static_prune ?budget (Contract.make code)

(* -- storage-layout differential -------------------------------------- *)

module Layout = Sigrec_layout.Layout

type layout_finding =
  | Unexplained_write of { slot : U256.t }
  | Unexercised_slot of { slot : U256.t }

type layout_verdict = {
  layout : Layout.t;
  selectors_run : int;
  selectors_ok : int;
  writes_observed : int;
  layout_findings : layout_finding list;
}

let layout_agree v = v.layout_findings = []

(* Every slot the recovered layout can account for, as 32-byte keys:
   direct slots themselves, the caller-keyed keccak(key . slot) cell of
   each mapping (the concrete drive below calls with the interpreter's
   default caller), and a small window of element cells above each
   dynamic array's keccak(slot) data base. *)
let explained_slots (layout : Layout.t) =
  let key32 = U256.to_bytes_be in
  let explained = Hashtbl.create 32 in
  let add u = Hashtbl.replace explained (key32 u) () in
  let caller = Interp.default_env.Interp.caller in
  List.iter
    (fun (e : Layout.entry) ->
      match e.Layout.decl with
      | Layout.Word | Layout.Packed _ -> add e.Layout.slot
      | Layout.Mapping ->
        add
          (U256.of_bytes_be
             (Keccak.digest (key32 caller ^ key32 e.Layout.slot)))
      | Layout.Dyn_array ->
        add e.Layout.slot;
        let base = U256.of_bytes_be (Keccak.digest (key32 e.Layout.slot)) in
        for k = 0 to 7 do
          add (U256.add base (U256.of_int k))
        done)
    layout.Layout.entries;
  explained

let check_layout ?stats code =
  let module Tr = Sigrec_trace.Trace in
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  let contract = Contract.make code in
  let layout = Layout.recover code in
  let explained = explained_slots layout in
  (* Drive every dispatcher entry concretely with benign word
     arguments; each run starts from empty storage and only successful
     outcomes contribute (a reverted frame's writes are rolled back). *)
  let arg_word = String.make 31 '\000' ^ "\001" in
  let calldata_tail = String.concat "" (List.init 8 (fun _ -> arg_word)) in
  let observed = Hashtbl.create 32 in
  let ok = ref 0 in
  let entries = Contract.entries contract in
  List.iter
    (fun { Ids.selector; _ } ->
      let r = Interp.execute ~code ~calldata:(selector ^ calldata_tail) () in
      if Interp.succeeded r.Interp.outcome then begin
        incr ok;
        List.iter
          (fun (slot, _) ->
            Hashtbl.replace observed (U256.to_bytes_be slot) slot)
          (Machine.Storage.bindings r.Interp.storage)
      end)
    entries;
  let findings = ref [] in
  Hashtbl.iter
    (fun key slot ->
      if not (Hashtbl.mem explained key) then
        findings := Unexplained_write { slot } :: !findings)
    observed;
  (* A slot the static pass saw written must show concrete traffic —
     meaningful only when every entry actually ran to completion, so
     reverted paths cannot masquerade as missing writes. *)
  if !ok = List.length entries then
    List.iter
      (fun (e : Layout.entry) ->
        if e.Layout.writes > 0 then begin
          let probe =
            match e.Layout.decl with
            | Layout.Word | Layout.Packed _ | Layout.Dyn_array ->
              Some e.Layout.slot
            | Layout.Mapping ->
              Some
                (U256.of_bytes_be
                   (Keccak.digest
                      (U256.to_bytes_be Interp.default_env.Interp.caller
                      ^ U256.to_bytes_be e.Layout.slot)))
          in
          match probe with
          | Some slot when not (Hashtbl.mem observed (U256.to_bytes_be slot))
            -> findings := Unexercised_slot { slot = e.Layout.slot } :: !findings
          | _ -> ()
        end)
      layout.Layout.entries;
  let layout_findings =
    List.sort
      (fun a b ->
        let key = function
          | Unexplained_write { slot } -> (0, U256.to_bytes_be slot)
          | Unexercised_slot { slot } -> (1, U256.to_bytes_be slot)
        in
        compare (key a) (key b))
      !findings
  in
  let v =
    {
      layout;
      selectors_run = List.length entries;
      selectors_ok = !ok;
      writes_observed = Hashtbl.length observed;
      layout_findings;
    }
  in
  Option.iter
    (fun s -> if layout_agree v then Stats.lint_agree s else Stats.lint_disagree s)
    stats;
  if Tr.enabled () then
    Tr.complete Tr.Layout "lint" ~t0_us
      [
        ("selectors", Tr.Int v.selectors_run);
        ("writes_observed", Tr.Int v.writes_observed);
        ("findings", Tr.Int (List.length layout_findings));
      ];
  v

(* -- reporting -------------------------------------------------------- *)

let finding_to_string = function
  | Mask_conflict { offset; mask; recovered } ->
    Printf.sprintf
      "mask conflict at offset %d: static mask 0x%s vs recovered %s" offset
      (U256.to_hex mask)
      (Abi.Abity.to_string recovered)
  | Signext_conflict { offset; byte; recovered } ->
    Printf.sprintf
      "signextend conflict at offset %d: static byte %d vs recovered %s"
      offset byte
      (Abi.Abity.to_string recovered)
  | Param_never_read { offset; recovered } ->
    Printf.sprintf "parameter at offset %d (%s) is never read statically"
      offset
      (Abi.Abity.to_string recovered)
  | Read_beyond_params { offset } ->
    Printf.sprintf "static read at offset %d beyond the recovered head"
      offset
  | Dead_firing { rule; param_index } ->
    Printf.sprintf "rule %s fired for parameter %d without its premise"
      rule param_index
  | Unreachable_entry -> "dispatcher entry unreachable in the static CFG"

let layout_finding_to_string = function
  | Unexplained_write { slot } ->
    Printf.sprintf "concrete write to slot 0x%s unexplained by the layout"
      (U256.to_hex slot)
  | Unexercised_slot { slot } ->
    Printf.sprintf
      "declared slot 0x%s is written statically but never concretely"
      (U256.to_hex slot)

let pp_layout_verdict fmt v =
  Format.fprintf fmt "@[<v>layout lint: %s (%d/%d selectors ok, %d cells written)@,"
    (if layout_agree v then "agree" else "DISAGREE")
    v.selectors_ok v.selectors_run v.writes_observed;
  List.iter
    (fun f -> Format.fprintf fmt "  %s@," (layout_finding_to_string f))
    v.layout_findings;
  Format.fprintf fmt "@]"

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>0x%s entry %04x: %s@," v.selector_hex v.entry_pc
    (if agree v then "agree" else "DISAGREE");
  List.iter
    (fun f -> Format.fprintf fmt "  %s@," (finding_to_string f))
    v.findings;
  Format.fprintf fmt "@]"
