(** Differential lint: cross-check TASE-recovered signatures against the
    static calldata access summaries from {!Sigrec_static.Absint}.

    TASE and the abstract interpreter look at the same bytecode through
    different glasses — path-sensitive symbolic traces vs a path-free
    fixpoint — so a disagreement between them localizes a bug in one of
    the two (or a genuinely adversarial contract). Every check is gated
    conservatively: masks are judged only when they have the canonical
    solc type-mask shape, absence checks ([Param_never_read],
    [Dead_firing]) only when the summary is [complete] and saw no
    symbolic reads or copies, so a sound pair of analyses produces zero
    findings on compiler-emitted code. *)

type finding =
  | Mask_conflict of { offset : int; mask : Evm.U256.t; recovered : Abi.Abity.t }
      (** the static pass saw a canonical type mask applied to the word
          at [offset] that contradicts the recovered type *)
  | Signext_conflict of { offset : int; byte : int; recovered : Abi.Abity.t }
      (** [SIGNEXTEND byte] pins [int (8*(byte+1))]; TASE said otherwise *)
  | Param_never_read of { offset : int; recovered : Abi.Abity.t }
      (** TASE recovered a parameter whose head slot the static pass
          proves is never read on any path *)
  | Read_beyond_params of { offset : int }
      (** a head-aligned constant CALLDATALOAD past the recovered head:
          TASE dropped a parameter the body demonstrably touches *)
  | Dead_firing of { rule : string; param_index : int }
      (** a rule fired whose premise (a CALLDATACOPY, a symbolic-offset
          read) the static pass refutes *)
  | Unreachable_entry
      (** the dispatcher entry is unreachable in the fully-resolved
          static CFG *)

type verdict = {
  selector_hex : string;
  entry_pc : int;
  recovered : Recover.recovered;
  findings : finding list;  (** empty = the two analyses agree *)
  summary : Sigrec_static.Summary.t;
}

val agree : verdict -> bool

val check_contract :
  ?stats:Stats.t ->
  ?config:Rules.config ->
  ?static_prune:bool ->
  ?budget:Symex.Exec.budget ->
  Contract.t ->
  verdict list
(** Run TASE and the static pass on every dispatcher entry and diff the
    results. [stats], when given, accumulates [lint_agreements] /
    [lint_disagreements]. *)

val check :
  ?stats:Stats.t ->
  ?config:Rules.config ->
  ?static_prune:bool ->
  ?budget:Symex.Exec.budget ->
  string ->
  verdict list
(** [check bytecode] = [check_contract (Contract.make bytecode)]. *)

val finding_to_string : finding -> string
val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Storage-layout differential}

    The second product's lint: recover the storage layout statically,
    then drive every dispatcher entry through the concrete interpreter
    and diff the observed storage traffic against what the layout can
    explain. *)

type layout_finding =
  | Unexplained_write of { slot : Evm.U256.t }
      (** a successful concrete execution wrote a storage cell that no
          recovered declaration (direct slot, caller-keyed mapping
          cell, array base or a small element window above it)
          accounts for *)
  | Unexercised_slot of { slot : Evm.U256.t }
      (** the static pass saw writes to this declared slot but no
          concrete execution touched it — reported only when every
          dispatcher entry ran to completion, so reverting paths
          cannot masquerade as missing writes *)

type layout_verdict = {
  layout : Sigrec_layout.Layout.t;
  selectors_run : int;   (** dispatcher entries driven concretely *)
  selectors_ok : int;    (** of those, executions that succeeded *)
  writes_observed : int; (** distinct storage cells written *)
  layout_findings : layout_finding list;
}

val layout_agree : layout_verdict -> bool

val check_layout : ?stats:Stats.t -> string -> layout_verdict
(** [stats], when given, counts one lint agreement or disagreement for
    the whole contract. Emits a [Layout]-phase trace span when tracing
    is enabled. *)

val layout_finding_to_string : layout_finding -> string
val pp_layout_verdict : Format.formatter -> layout_verdict -> unit
