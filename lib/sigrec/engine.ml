module Tr = Sigrec_trace.Trace
module Mx = Sigrec_metrics.Metrics

module Config = struct
  type t = {
    rules : Rules.config;
    budget : Symex.Exec.budget option;
    static_prune : bool;
    jobs : int;
    cache_capacity : int;
  }

  let default =
    {
      rules = Rules.default_config;
      budget = None;
      static_prune = true;
      jobs = 0;
      cache_capacity = 0;
    }

  let with_rules rules t = { t with rules }
  let with_budget budget t = { t with budget = Some budget }
  let without_budget t = { t with budget = None }
  let with_static_prune static_prune t = { t with static_prune }
  let with_jobs jobs t = { t with jobs = Stdlib.max 0 jobs }

  let with_cache_capacity cache_capacity t =
    { t with cache_capacity = Stdlib.max 0 cache_capacity }
end

type error = {
  selector : string;
  selector_hex : string;
  entry_pc : int;
  message : string;
}

type outcome =
  | Recovered of { result : Recover.recovered; elapsed_ns : int }
  | Budget_exhausted of {
      partial : Recover.recovered;
      paths_explored : int;
      elapsed_ns : int;
    }
  | Failed of error

type report = {
  code_hash : string;
  outcomes : outcome list;
  from_cache : bool;
}

type t = {
  config : Config.t;
  cache : (string, report) Lru.t; (* 32-byte code hash -> report *)
  layouts : (string, Sigrec_layout.Layout.t) Lru.t; (* code hash -> layout *)
  verdicts : (string, Sigrec_classify.Classify.verdict) Lru.t;
      (* code hash -> interface classification *)
  lock : Mutex.t;
  stats : Stats.t;
}

let make config =
  {
    config;
    cache = Lru.create ~capacity:config.Config.cache_capacity;
    layouts = Lru.create ~capacity:config.Config.cache_capacity;
    verdicts = Lru.create ~capacity:config.Config.cache_capacity;
    lock = Mutex.create ();
    stats = Stats.create ();
  }

let config t = t.config

let signatures report =
  List.filter_map
    (function
      | Recovered { result = r; _ } | Budget_exhausted { partial = r; _ } ->
        Some r
      | Failed _ -> None)
    report.outcomes

let outcome_selector_hex = function
  | Recovered { result = r; _ } | Budget_exhausted { partial = r; _ } ->
    r.Recover.selector_hex
  | Failed e -> e.selector_hex

let outcome_elapsed_ns = function
  | Recovered { elapsed_ns; _ } | Budget_exhausted { elapsed_ns; _ } ->
    Some elapsed_ns
  | Failed _ -> None

(* [elapsed_ns] is deliberately absent here: the rendered report is the
   drift invariant the tests and lint compare byte-for-byte. *)
let pp_outcome fmt = function
  | Recovered { result = r; _ } -> Format.fprintf fmt "%a" Recover.pp r
  | Budget_exhausted { partial; paths_explored; _ } ->
    Format.fprintf fmt "%a [budget exhausted after %d paths]" Recover.pp
      partial paths_explored
  | Failed e ->
    Format.fprintf fmt "0x%s [failed: %s]" e.selector_hex e.message

let pp_report fmt report =
  Format.fprintf fmt "@[<v>code hash 0x%s%s@," report.code_hash
    (if report.from_cache then " (cached)" else "");
  (match report.outcomes with
  | [] -> Format.fprintf fmt "  no public/external functions@,"
  | outcomes ->
    List.iter
      (fun o -> Format.fprintf fmt "  %a@," pp_outcome o)
      outcomes);
  Format.fprintf fmt "@]"

(* Analyze one bytecode cold: build the shared context once, then run
   TASE per dispatcher entry. Every per-function failure mode is
   reified into the outcome instead of yielding a silently shorter
   list. *)
let analyze_uncounted ~cfg ~stats code =
  let lift0 = Tr.now_ns () in
  match Contract.make code with
  | exception e ->
    {
      code_hash = Evm.Hex.encode (Contract.hash_of_code code);
      outcomes =
        [
          Failed
            {
              selector = "";
              selector_hex = "";
              entry_pc = -1;
              message = Printexc.to_string e;
            };
        ];
      from_cache = false;
    }
  | contract ->
    let lift_ns = Tr.now_ns () - lift0 in
    let outcomes =
      List.map
        (fun { Ids.selector; entry_pc; entry_stack_depth = _ } ->
          (* wall clock per function, measured whether or not tracing is
             on: one gettimeofday pair against milliseconds of work *)
          let ns0 = Tr.now_ns () in
          let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
          let outcome =
            match
              Infer.infer ~stats ~config:cfg.Config.rules
                ~static_prune:cfg.Config.static_prune
                ?budget:cfg.Config.budget ~contract ~entry:entry_pc ()
            with
            | result ->
              let r = Recover.of_infer ~selector ~entry_pc result in
              let elapsed_ns = Tr.now_ns () - ns0 in
              if Symex.Trace.truncated result.Infer.trace then
                Budget_exhausted
                  {
                    partial = r;
                    paths_explored =
                      result.Infer.trace.Symex.Trace.paths_explored;
                    elapsed_ns;
                  }
              else Recovered { result = r; elapsed_ns }
            | exception e ->
              Failed
                {
                  selector;
                  selector_hex = Evm.Hex.encode selector;
                  entry_pc;
                  message = Printexc.to_string e;
                }
          in
          if Tr.enabled () then
            Tr.complete Tr.Engine "function" ~t0_us
              [
                ("selector", Tr.Str ("0x" ^ Evm.Hex.encode selector));
                ("entry_pc", Tr.Int entry_pc);
                ( "outcome",
                  Tr.Str
                    (match outcome with
                    | Recovered _ -> "recovered"
                    | Budget_exhausted _ -> "budget_exhausted"
                    | Failed _ -> "failed") );
                ( "paths",
                  Tr.Int
                    (match outcome with
                    | Recovered { result = r; _ }
                    | Budget_exhausted { partial = r; _ } ->
                      r.Recover.paths_explored
                    | Failed _ -> 0) );
              ];
          outcome)
        contract.Contract.entries
    in
    Stats.add_functions stats
      (List.length
         (List.filter (function Recovered _ -> true | _ -> false) outcomes));
    let code_hash = Contract.code_hash_hex contract in
    if Mx.enabled () then begin
      (* top-K slowest ring: the adversarial tail by code hash, with
         enough phase breakdown to tell a slow lift from a slow TASE *)
      let analysis_ns =
        List.fold_left
          (fun acc o ->
            match outcome_elapsed_ns o with Some ns -> acc + ns | None -> acc)
          0 outcomes
      in
      Mx.Top.record ~key:code_hash ~elapsed_ns:(lift_ns + analysis_ns)
        ~detail:
          [
            ("lift_ns", lift_ns);
            ("analysis_ns", analysis_ns);
            ("functions", List.length outcomes);
          ]
    end;
    { code_hash; outcomes; from_cache = false }

let analyze ~cfg ~stats code =
  Stats.cache_miss stats;
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  (* interner traffic is domain-local and an analysis runs entirely in
     one domain, so the before/after delta is exactly this analysis's *)
  let ih0, im0 = Symex.Sexpr.interner_counters () in
  let report = analyze_uncounted ~cfg ~stats code in
  let ih1, im1 = Symex.Sexpr.interner_counters () in
  Stats.add_interner stats ~hits:(ih1 - ih0) ~misses:(im1 - im0);
  if Tr.enabled () then
    Tr.complete Tr.Engine "input" ~t0_us
      [
        ("code_hash", Tr.Str report.code_hash);
        ("functions", Tr.Int (List.length report.outcomes));
        ("bytes", Tr.Int (String.length code));
      ];
  report

(* Insert under the engine lock, attributing any LRU evictions the
   insert caused to the engine's stats. Call with the lock held. *)
let cache_add_locked t hash report =
  let ev0 = Lru.evictions t.cache in
  Lru.add t.cache hash report;
  let ev = Lru.evictions t.cache - ev0 in
  if ev > 0 then Stats.add_evictions t.stats ev

let recover t code =
  let hash = Contract.hash_of_code code in
  let cached =
    Mutex.protect t.lock (fun () -> Lru.find_opt t.cache hash)
  in
  match cached with
  | Some report ->
    Mutex.protect t.lock (fun () -> Stats.cache_hit t.stats);
    if Tr.enabled () then
      Tr.instant Tr.Engine "cache_hit"
        [ ("code_hash", Tr.Str report.code_hash) ];
    { report with from_cache = true }
  | None ->
    let stats = Stats.create () in
    let report = analyze ~cfg:t.config ~stats code in
    Mutex.protect t.lock (fun () ->
        Stats.merge_into ~into:t.stats stats;
        if not (Lru.mem t.cache hash) then cache_add_locked t hash report);
    report

(* [Config.jobs] is a cap, not a demand: OCaml's stop-the-world minor
   collector makes domains that merely timeshare a core actively
   harmful (every minor GC must rendezvous a descheduled domain), so
   the engine never runs more workers than the hardware can schedule
   simultaneously. On a one-core machine jobs=8 and jobs=1 are the
   same engine. *)
let hardware_jobs =
  lazy (Stdlib.max 1 (Domain.recommended_domain_count ()))

let effective_jobs t =
  let hw = Lazy.force hardware_jobs in
  if t.config.Config.jobs > 0 then Stdlib.min t.config.Config.jobs hw
  else hw

let recover_all_n jobs t codes =
  let codes = Array.of_list codes in
  let n = Array.length codes in
  let hashes = Array.map Contract.hash_of_code codes in
  (* Reports this batch needs, keyed by code hash. Kept separate from
     the engine cache so a bounded LRU can evict mid-batch without the
     final assembly losing a report. *)
  let by_hash = Hashtbl.create ((2 * n) + 1) in
  (* Work list: first occurrence of each code hash not already cached.
     Duplicates — the common case on main net — are analyzed exactly
     once and answered from the result. *)
  let fresh = Array.make n false in
  let work = ref [] in
  Mutex.protect t.lock (fun () ->
      let seen = Hashtbl.create 64 in
      let dups = ref 0 in
      for i = 0 to n - 1 do
        let h = hashes.(i) in
        if Hashtbl.mem seen h then incr dups
        else begin
          Hashtbl.replace seen h ();
          match Lru.find_opt t.cache h with
          | Some report -> Hashtbl.replace by_hash h report
          | None ->
            fresh.(i) <- true;
            work := (h, codes.(i)) :: !work
        end
      done;
      if !dups > 0 then begin
        Stats.add_deduped t.stats !dups;
        if Tr.enabled () then
          Tr.instant Tr.Engine "dedup" [ ("duplicates", Tr.Int !dups) ]
      end);
  let work = Array.of_list (List.rev !work) in
  let work_n = Array.length work in
  let results = Array.make work_n None in
  let jobs =
    Stdlib.min
      (Stdlib.min (Stdlib.max 1 jobs) (Lazy.force hardware_jobs))
      (Stdlib.max 1 work_n)
  in
  (* Workers claim chunks of contiguous indices from a shared counter —
     dynamic balancing like per-item claiming, but with fewer atomic
     operations and less false sharing on the results array. Each
     worker accumulates into its own Stats.t; no analysis state is
     shared, so the per-item results are identical whatever the
     interleaving. *)
  let chunk = Stdlib.max 1 (Stdlib.min 16 (work_n / (jobs * 8))) in
  let next = Atomic.make 0 in
  let worker () =
    let stats = Stats.create () in
    let rec loop () =
      let i0 = Atomic.fetch_and_add next chunk in
      if i0 < work_n then begin
        let hi = Stdlib.min (i0 + chunk) work_n in
        for i = i0 to hi - 1 do
          let _, code = work.(i) in
          results.(i) <- Some (analyze ~cfg:t.config ~stats code)
        done;
        loop ()
      end
    in
    loop ();
    stats
  in
  let worker_stats =
    if jobs <= 1 then [ worker () ]
    else begin
      (* Fan out over the persistent pool: helpers are pooled domains
         spawned once per process (warm interners), the calling domain
         takes the remaining share. *)
      Pool.ensure (jobs - 1);
      let helpers = Stdlib.min (jobs - 1) (Pool.workers ()) in
      let collected = Array.make (Stdlib.max 1 helpers) None in
      let batch =
        Pool.submit
          (List.init helpers (fun k () -> collected.(k) <- Some (worker ())))
      in
      let mine = worker () in
      Pool.await batch;
      mine :: List.filter_map Fun.id (Array.to_list collected)
    end
  in
  Mutex.protect t.lock (fun () ->
      (* stats merging is commutative, and the cache inserts are keyed
         by distinct hashes, so the merged state does not depend on
         which domain analyzed what *)
      List.iter (fun s -> Stats.merge_into ~into:t.stats s) worker_stats;
      Array.iteri
        (fun i (h, _) ->
          match results.(i) with
          | Some report ->
            Hashtbl.replace by_hash h report;
            cache_add_locked t h report
          | None -> ())
        work);
  (* Assemble per-input reports in input order: byte-identical output
     whatever [jobs] was. *)
  let hits = ref 0 in
  let reports =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           let report = Hashtbl.find by_hash hashes.(i) in
           if fresh.(i) then report
           else begin
             incr hits;
             if Tr.enabled () then
               Tr.instant Tr.Engine "cache_hit"
                 [ ("code_hash", Tr.Str report.code_hash) ];
             { report with from_cache = true }
           end)
         codes)
  in
  if !hits > 0 then
    Mutex.protect t.lock (fun () ->
        for _ = 1 to !hits do
          Stats.cache_hit t.stats
        done);
  (* per-batch runtime-health sample: one Gc.quick_stat against a batch
     of analyses, so a scraping service sees heap growth between polls *)
  if Mx.enabled () then Mx.sample_gc ();
  reports

let recover_all t codes = recover_all_n (effective_jobs t) t codes

(* ---- streaming recovery --------------------------------------------- *)

(* Push-style front end over [recover_all]: bytecodes accumulate into a
   bounded buffer, and each full buffer goes through the batch engine —
   worker fan-out, in-batch dedup and the report LRU all apply — with
   the reports handed to the caller in input order. Memory is bounded
   by the batch size, never the corpus: a million-line stream holds at
   most [batch] bytecodes plus whatever the LRU retains. Cross-batch
   duplicates are answered by the cache, so the stream exploits chain-
   scale duplication exactly like one huge batch would. *)
module Stream = struct
  type progress = {
    contracts : int;  (** bytecodes fed so far *)
    distinct : int;  (** contracts answered by a fresh analysis *)
    dedup_hits : int;  (** contracts answered from cache / in-batch dedup *)
    elapsed_ns : int;
    rate : float;  (** contracts per second since [start] *)
    heap_mb : float;  (** live major-heap size right now *)
    eta_ns : int option;  (** remaining time at current rate, when the
                              caller declared [expected] *)
  }

  type session = {
    s_engine : t;
    s_batch : int;
    s_emit : report -> unit;
    s_progress : (progress -> unit) option;
    s_every : int;
    s_expected : int option;
    mutable s_buf : string list; (* newest first *)
    mutable s_len : int;
    mutable s_total : int;
    mutable s_dedup : int;
    mutable s_last_report : int; (* s_total at the last heartbeat *)
    s_t0_ns : int;
  }

  let default_batch = 256

  let start ?(batch = default_batch) ?(progress_every = 1000) ?progress
      ?expected engine ~emit =
    {
      s_engine = engine;
      s_batch = Stdlib.max 1 batch;
      s_emit = emit;
      s_progress = progress;
      s_every = Stdlib.max 1 progress_every;
      s_expected = expected;
      s_buf = [];
      s_len = 0;
      s_total = 0;
      s_dedup = 0;
      s_last_report = 0;
      s_t0_ns = Tr.now_ns ();
    }

  (* Heartbeats fire at flush boundaries, not per contract: the batch is
     the unit of work, so the rate and heap numbers describe completed
     analyses, and the callback can never observe a half-flushed
     buffer. *)
  let report_progress s report =
    match s.s_progress with
    | Some f when report ->
      s.s_last_report <- s.s_total;
      let elapsed_ns = Stdlib.max 1 (Tr.now_ns () - s.s_t0_ns) in
      let rate = float_of_int s.s_total /. (float_of_int elapsed_ns *. 1e-9) in
      let heap_mb =
        float_of_int ((Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8))
        /. 1048576.0
      in
      let eta_ns =
        match s.s_expected with
        | Some total when total > s.s_total && rate > 0.0 ->
          Some
            (int_of_float (float_of_int (total - s.s_total) /. rate *. 1e9))
        | _ -> None
      in
      f
        {
          contracts = s.s_total;
          distinct = s.s_total - s.s_dedup;
          dedup_hits = s.s_dedup;
          elapsed_ns;
          rate;
          heap_mb;
          eta_ns;
        }
    | _ -> ()

  let flush s =
    if s.s_len > 0 then begin
      let codes = List.rev s.s_buf in
      s.s_buf <- [];
      s.s_len <- 0;
      let reports = recover_all s.s_engine codes in
      let dedup =
        List.fold_left
          (fun acc r -> if r.from_cache then acc + 1 else acc)
          0 reports
      in
      s.s_dedup <- s.s_dedup + dedup;
      if dedup > 0 then
        Mutex.protect s.s_engine.lock (fun () ->
            Stats.add_stream_dedup s.s_engine.stats dedup);
      List.iter s.s_emit reports;
      report_progress s (s.s_total - s.s_last_report >= s.s_every)
    end

  let feed s code =
    s.s_buf <- code :: s.s_buf;
    s.s_len <- s.s_len + 1;
    s.s_total <- s.s_total + 1;
    if s.s_len >= s.s_batch then flush s

  let finish s =
    flush s;
    (* closing heartbeat, so a consumer always sees the final totals
       even when the stream length is not a multiple of the cadence *)
    if s.s_total > s.s_last_report then report_progress s true;
    s.s_total
end

let recover_stream ?batch t codes ~emit =
  let s = Stream.start ?batch t ~emit in
  Seq.iter (Stream.feed s) codes;
  Stream.finish s

let stats t = t.stats

let cache_size t = Mutex.protect t.lock (fun () -> Lru.length t.cache)

let cache_stats t =
  let row name lru =
    (name, Lru.length lru, Lru.capacity lru, Lru.evictions lru)
  in
  Mutex.protect t.lock (fun () ->
      [
        row "reports" t.cache;
        row "layouts" t.layouts;
        row "verdicts" t.verdicts;
      ])

let clear t =
  Mutex.protect t.lock (fun () ->
      Lru.clear t.cache;
      Lru.clear t.layouts;
      Lru.clear t.verdicts)

(* ---- storage-layout recovery ---------------------------------------- *)

type layout_report = {
  layout_code_hash : string;
  layout : Sigrec_layout.Layout.t;
  layout_from_cache : bool;
}

let layout_of_code ~stats code =
  let layout = Sigrec_layout.Layout.recover code in
  Stats.add_layout stats
    ~slots:(List.length layout.Sigrec_layout.Layout.entries)
    ~unknown:layout.Sigrec_layout.Layout.unknown_ops;
  layout

let layout t code =
  let hash = Contract.hash_of_code code in
  let cached = Mutex.protect t.lock (fun () -> Lru.find_opt t.layouts hash) in
  match cached with
  | Some layout ->
    {
      layout_code_hash = Evm.Hex.encode hash;
      layout;
      layout_from_cache = true;
    }
  | None ->
    let stats = Stats.create () in
    let layout = layout_of_code ~stats code in
    Mutex.protect t.lock (fun () ->
        Stats.merge_into ~into:t.stats stats;
        if not (Lru.mem t.layouts hash) then Lru.add t.layouts hash layout);
    {
      layout_code_hash = Evm.Hex.encode hash;
      layout;
      layout_from_cache = false;
    }

(* The batch sibling: deduplicate by code hash, answer from the layout
   LRU, fan the distinct misses out over the pool. The layout pass
   shares nothing across contracts, so the per-item results are
   independent of the interleaving and the assembly below is
   byte-identical whatever [jobs] resolves to. *)
let layout_all t codes =
  let codes = Array.of_list codes in
  let n = Array.length codes in
  let hashes = Array.map Contract.hash_of_code codes in
  let by_hash = Hashtbl.create ((2 * n) + 1) in
  let fresh = Array.make n false in
  let work = ref [] in
  Mutex.protect t.lock (fun () ->
      let seen = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let h = hashes.(i) in
        if not (Hashtbl.mem seen h) then begin
          Hashtbl.replace seen h ();
          match Lru.find_opt t.layouts h with
          | Some layout -> Hashtbl.replace by_hash h layout
          | None ->
            fresh.(i) <- true;
            work := (h, codes.(i)) :: !work
        end
      done);
  let work = Array.of_list (List.rev !work) in
  let work_n = Array.length work in
  let results = Array.make work_n None in
  let jobs = Stdlib.min (effective_jobs t) (Stdlib.max 1 work_n) in
  let next = Atomic.make 0 in
  let worker () =
    let stats = Stats.create () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < work_n then begin
        let _, code = work.(i) in
        results.(i) <- Some (layout_of_code ~stats code);
        loop ()
      end
    in
    loop ();
    stats
  in
  let worker_stats =
    if jobs <= 1 then [ worker () ]
    else begin
      Pool.ensure (jobs - 1);
      let helpers = Stdlib.min (jobs - 1) (Pool.workers ()) in
      let collected = Array.make (Stdlib.max 1 helpers) None in
      let batch =
        Pool.submit
          (List.init helpers (fun k () -> collected.(k) <- Some (worker ())))
      in
      let mine = worker () in
      Pool.await batch;
      mine :: List.filter_map Fun.id (Array.to_list collected)
    end
  in
  Mutex.protect t.lock (fun () ->
      List.iter (fun s -> Stats.merge_into ~into:t.stats s) worker_stats;
      Array.iteri
        (fun i (h, _) ->
          match results.(i) with
          | Some layout ->
            Hashtbl.replace by_hash h layout;
            if not (Lru.mem t.layouts h) then Lru.add t.layouts h layout
          | None -> ())
        work);
  Array.to_list
    (Array.mapi
       (fun i _ ->
         {
           layout_code_hash = Evm.Hex.encode hashes.(i);
           layout = Hashtbl.find by_hash hashes.(i);
           layout_from_cache = not fresh.(i);
         })
       codes)

(* ---- token-standard interface classification ------------------------- *)

module Classify = Sigrec_classify.Classify

type classify_report = {
  classify_code_hash : string;
  verdict : Classify.verdict;
  classify_from_cache : bool;
}

(* Everything a report knows that the classifier can use: full
   recoveries with their types, budget-exhausted partials flagged as
   such (they can lend partial credit, never an exact match), and the
   bare selector of a per-function failure (the dispatcher proved the
   id exists even though TASE crashed on the body). *)
let evidence_of_report report =
  List.filter_map
    (function
      | Recovered { result = r; _ } ->
        Some
          (Classify.evidence ~selector:r.Recover.selector r.Recover.params)
      | Budget_exhausted { partial = r; _ } ->
        Some
          (Classify.evidence ~partial:true ~selector:r.Recover.selector
             r.Recover.params)
      | Failed e when String.length e.selector = 4 ->
        Some (Classify.bare e.selector)
      | Failed _ -> None)
    report.outcomes

let verdict_outcome (v : Classify.verdict) =
  match v.Classify.best with
  | Some r when r.Classify.level = Classify.Exact -> `Exact
  | Some _ -> `Partial
  | None -> `Unknown

let classify_of_report t ~code report =
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  (* the layout thunk routes through the engine's layout LRU, so the
     classifier only pays for the storage pass when the verdict needs
     the typed-state evidence -- and at most once per bytecode *)
  let force_layout () = (layout t code).layout in
  let verdict =
    Classify.run ~layout:force_layout
      ~probe:(Classify.probe_dispatch ~code)
      (evidence_of_report report)
  in
  if Tr.enabled () then
    Tr.complete Tr.Engine "classify" ~t0_us
      [
        ("code_hash", Tr.Str report.code_hash);
        ("label", Tr.Str (Classify.label verdict));
        ("probes", Tr.Int verdict.Classify.probes_run);
      ];
  verdict

(* The verdict LRU is keyed by the report's hex code hash: recovery
   already paid the Keccak, so classification never rehashes the
   bytecode. *)
let classify_fresh t code report =
  let verdict = classify_of_report t ~code report in
  Mutex.protect t.lock (fun () ->
      Stats.add_classification t.stats ~outcome:(verdict_outcome verdict)
        ~probes:verdict.Classify.probes_run;
      if not (Lru.mem t.verdicts report.code_hash) then
        Lru.add t.verdicts report.code_hash verdict);
  verdict

let classify_cached t hash_hex =
  match Mutex.protect t.lock (fun () -> Lru.find_opt t.verdicts hash_hex) with
  | Some verdict ->
    Mutex.protect t.lock (fun () ->
        Stats.add_classify_cache_hits t.stats 1);
    if Tr.enabled () then
      Tr.instant Tr.Engine "classify_cache_hit"
        [ ("code_hash", Tr.Str hash_hex) ];
    Some verdict
  | None -> None

let classify_of_cached_or_fresh t code report =
  match classify_cached t report.code_hash with
  | Some verdict ->
    {
      classify_code_hash = report.code_hash;
      verdict;
      classify_from_cache = true;
    }
  | None ->
    let verdict = classify_fresh t code report in
    {
      classify_code_hash = report.code_hash;
      verdict;
      classify_from_cache = false;
    }

let classify t code = classify_of_cached_or_fresh t code (recover t code)

(* The batch sibling rides on [recover_all] -- pooled fan-out, in-batch
   dedup and the report LRU all apply to the expensive part -- and then
   scores the verdicts in input order. Matching is selector-set
   arithmetic, orders of magnitude below an analysis, so scoring
   serially keeps the output deterministic at no measurable cost;
   duplicate bytecodes hit the verdict LRU after the first is scored. *)
let classify_all t codes =
  let reports = recover_all t codes in
  List.map2 (classify_of_cached_or_fresh t) codes reports
