module Tr = Sigrec_trace.Trace

type error = {
  selector : string;
  selector_hex : string;
  entry_pc : int;
  message : string;
}

type outcome =
  | Recovered of { result : Recover.recovered; elapsed_ns : int }
  | Budget_exhausted of {
      partial : Recover.recovered;
      paths_explored : int;
      elapsed_ns : int;
    }
  | Failed of error

type report = {
  code_hash : string;
  outcomes : outcome list;
  from_cache : bool;
}

type t = {
  config : Rules.config;
  budget : Symex.Exec.budget option;
  static_prune : bool;
  cache : (string, report) Hashtbl.t; (* 32-byte code hash -> report *)
  lock : Mutex.t;
  stats : Stats.t;
}

let create ?(config = Rules.default_config) ?budget ?(static_prune = true) ()
    =
  {
    config;
    budget;
    static_prune;
    cache = Hashtbl.create 256;
    lock = Mutex.create ();
    stats = Stats.create ();
  }

let signatures report =
  List.filter_map
    (function
      | Recovered { result = r; _ } | Budget_exhausted { partial = r; _ } ->
        Some r
      | Failed _ -> None)
    report.outcomes

let outcome_selector_hex = function
  | Recovered { result = r; _ } | Budget_exhausted { partial = r; _ } ->
    r.Recover.selector_hex
  | Failed e -> e.selector_hex

let outcome_elapsed_ns = function
  | Recovered { elapsed_ns; _ } | Budget_exhausted { elapsed_ns; _ } ->
    Some elapsed_ns
  | Failed _ -> None

(* [elapsed_ns] is deliberately absent here: the rendered report is the
   drift invariant the tests and lint compare byte-for-byte. *)
let pp_outcome fmt = function
  | Recovered { result = r; _ } -> Format.fprintf fmt "%a" Recover.pp r
  | Budget_exhausted { partial; paths_explored; _ } ->
    Format.fprintf fmt "%a [budget exhausted after %d paths]" Recover.pp
      partial paths_explored
  | Failed e ->
    Format.fprintf fmt "0x%s [failed: %s]" e.selector_hex e.message

let pp_report fmt report =
  Format.fprintf fmt "@[<v>code hash 0x%s%s@," report.code_hash
    (if report.from_cache then " (cached)" else "");
  (match report.outcomes with
  | [] -> Format.fprintf fmt "  no public/external functions@,"
  | outcomes ->
    List.iter
      (fun o -> Format.fprintf fmt "  %a@," pp_outcome o)
      outcomes);
  Format.fprintf fmt "@]"

(* Analyze one bytecode cold: build the shared context once, then run
   TASE per dispatcher entry. Every per-function failure mode is
   reified into the outcome instead of yielding a silently shorter
   list. *)
let analyze_uncounted ~config ?budget ?static_prune ~stats code =
  match Contract.make code with
  | exception e ->
    {
      code_hash = Evm.Hex.encode (Contract.hash_of_code code);
      outcomes =
        [
          Failed
            {
              selector = "";
              selector_hex = "";
              entry_pc = -1;
              message = Printexc.to_string e;
            };
        ];
      from_cache = false;
    }
  | contract ->
    let outcomes =
      List.map
        (fun { Ids.selector; entry_pc; entry_stack_depth = _ } ->
          (* wall clock per function, measured whether or not tracing is
             on: one gettimeofday pair against milliseconds of work *)
          let ns0 = Tr.now_ns () in
          let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
          let outcome =
            match
              Infer.infer ~stats ~config ?static_prune ?budget ~contract
                ~entry:entry_pc ()
            with
            | result ->
              let r = Recover.of_infer ~selector ~entry_pc result in
              let elapsed_ns = Tr.now_ns () - ns0 in
              if Symex.Trace.truncated result.Infer.trace then
                Budget_exhausted
                  {
                    partial = r;
                    paths_explored =
                      result.Infer.trace.Symex.Trace.paths_explored;
                    elapsed_ns;
                  }
              else Recovered { result = r; elapsed_ns }
            | exception e ->
              Failed
                {
                  selector;
                  selector_hex = Evm.Hex.encode selector;
                  entry_pc;
                  message = Printexc.to_string e;
                }
          in
          if Tr.enabled () then
            Tr.complete Tr.Engine "function" ~t0_us
              [
                ("selector", Tr.Str ("0x" ^ Evm.Hex.encode selector));
                ("entry_pc", Tr.Int entry_pc);
                ( "outcome",
                  Tr.Str
                    (match outcome with
                    | Recovered _ -> "recovered"
                    | Budget_exhausted _ -> "budget_exhausted"
                    | Failed _ -> "failed") );
                ( "paths",
                  Tr.Int
                    (match outcome with
                    | Recovered { result = r; _ }
                    | Budget_exhausted { partial = r; _ } ->
                      r.Recover.paths_explored
                    | Failed _ -> 0) );
              ];
          outcome)
        contract.Contract.entries
    in
    Stats.add_functions stats
      (List.length
         (List.filter (function Recovered _ -> true | _ -> false) outcomes));
    {
      code_hash = Contract.code_hash_hex contract;
      outcomes;
      from_cache = false;
    }

let analyze ~config ?budget ?static_prune ~stats code =
  Stats.cache_miss stats;
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  (* interner traffic is domain-local and an analysis runs entirely in
     one domain, so the before/after delta is exactly this analysis's *)
  let ih0, im0 = Symex.Sexpr.interner_counters () in
  let report = analyze_uncounted ~config ?budget ?static_prune ~stats code in
  let ih1, im1 = Symex.Sexpr.interner_counters () in
  Stats.add_interner stats ~hits:(ih1 - ih0) ~misses:(im1 - im0);
  if Tr.enabled () then
    Tr.complete Tr.Engine "input" ~t0_us
      [
        ("code_hash", Tr.Str report.code_hash);
        ("functions", Tr.Int (List.length report.outcomes));
        ("bytes", Tr.Int (String.length code));
      ];
  report

let recover t code =
  let hash = Contract.hash_of_code code in
  let cached =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.cache hash)
  in
  match cached with
  | Some report ->
    Mutex.protect t.lock (fun () -> Stats.cache_hit t.stats);
    if Tr.enabled () then
      Tr.instant Tr.Engine "cache_hit"
        [ ("code_hash", Tr.Str report.code_hash) ];
    { report with from_cache = true }
  | None ->
    let stats = Stats.create () in
    let report =
      analyze ~config:t.config ?budget:t.budget
        ~static_prune:t.static_prune ~stats code
    in
    Mutex.protect t.lock (fun () ->
        Stats.merge_into ~into:t.stats stats;
        if not (Hashtbl.mem t.cache hash) then
          Hashtbl.replace t.cache hash report);
    report

let recover_all ?jobs t codes =
  let codes = Array.of_list codes in
  let n = Array.length codes in
  let hashes = Array.map Contract.hash_of_code codes in
  (* Work list: first occurrence of each code hash not already cached.
     Duplicates — the common case on main net — are analyzed exactly
     once and answered from the result. *)
  let fresh = Array.make n false in
  let work = ref [] in
  let work_count = ref 0 in
  Mutex.protect t.lock (fun () ->
      let seen = Hashtbl.create 64 in
      let dups = ref 0 in
      for i = 0 to n - 1 do
        let h = hashes.(i) in
        if Hashtbl.mem seen h then incr dups
        else begin
          Hashtbl.replace seen h ();
          if not (Hashtbl.mem t.cache h) then begin
            fresh.(i) <- true;
            work := (h, codes.(i)) :: !work;
            incr work_count
          end
        end
      done;
      if !dups > 0 then begin
        Stats.add_deduped t.stats !dups;
        if Tr.enabled () then
          Tr.instant Tr.Engine "dedup" [ ("duplicates", Tr.Int !dups) ]
      end);
  let work = Array.of_list (List.rev !work) in
  let results = Array.make (Array.length work) None in
  let next = Atomic.make 0 in
  (* Each worker pulls indices from a shared counter and accumulates
     into its own Stats.t; no analysis state is shared, so the per-item
     results are identical whatever the interleaving. *)
  let worker () =
    let stats = Stats.create () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length work then begin
        let _, code = work.(i) in
        results.(i) <-
          Some
            (analyze ~config:t.config ?budget:t.budget
               ~static_prune:t.static_prune ~stats code);
        loop ()
      end
    in
    loop ();
    stats
  in
  let jobs =
    match jobs with
    | Some j -> Stdlib.max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let jobs = Stdlib.min jobs (Stdlib.max 1 (Array.length work)) in
  let worker_stats =
    if jobs <= 1 then [ worker () ]
    else begin
      let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      let mine = worker () in
      mine :: List.map Domain.join others
    end
  in
  Mutex.protect t.lock (fun () ->
      (* stats merging is commutative, and the cache inserts are keyed
         by distinct hashes, so the merged state does not depend on
         which domain analyzed what *)
      List.iter (fun s -> Stats.merge_into ~into:t.stats s) worker_stats;
      Array.iteri
        (fun i (h, _) ->
          match results.(i) with
          | Some report -> Hashtbl.replace t.cache h report
          | None -> ())
        work);
  (* Assemble per-input reports in input order: byte-identical output
     whatever [jobs] was. *)
  Array.to_list
    (Array.mapi
       (fun i _ ->
         let report =
           Mutex.protect t.lock (fun () -> Hashtbl.find t.cache hashes.(i))
         in
         if fresh.(i) then report
         else begin
           Mutex.protect t.lock (fun () -> Stats.cache_hit t.stats);
           if Tr.enabled () then
             Tr.instant Tr.Engine "cache_hit"
               [ ("code_hash", Tr.Str report.code_hash) ];
           { report with from_cache = true }
         end)
       codes)

let stats t = t.stats
let cache_size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.cache)

let clear t =
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.cache)
