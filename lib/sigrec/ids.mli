(** Function-id extraction from the dispatcher (paper §4.1 /
    supplementary E).

    The dispatcher reads the first four call-data bytes, shifts or
    divides them into place, and compares the result against each
    function id with EQ followed by a conditional jump. This module
    scans the disassembly for those compare-and-jump idioms and returns
    each function's id together with the body's entry offset. *)

type entry = {
  selector : string;     (** 4 bytes *)
  entry_pc : int;        (** JUMPDEST offset of the function body *)
  entry_stack_depth : int;
      (** stack items left by the dispatcher at entry (the selector
          residue) *)
}

val extract : string -> entry list
(** [extract bytecode] returns entries in dispatch order. *)

val extract_prepared : Symex.Exec.program -> entry list
(** Same, over an already-disassembled program (no second sweep). *)

val uses_shr_dispatch : string -> bool
(** Whether the selector is moved with SHR (newer solc) rather than
    DIV. *)
