module Tr = Sigrec_trace.Trace

(* -- the global switch ------------------------------------------------ *)

let on = Atomic.make false
let enabled () = Atomic.get on

(* -- histogram shards -------------------------------------------------- *)

(* One shard per (histogram, domain): a fixed counts array (one slot
   per bound plus overflow) and int sum/count. All fields are
   immediates, so concurrent snapshot reads are racy-but-sound exactly
   like the trace rings: no tearing, no locks on the write path. *)
type shard = {
  s_counts : int array;
  mutable s_sum : int;
  mutable s_count : int;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_bounds : int array; (* ascending upper bounds *)
  h_scale : float;
  h_lock : Mutex.t; (* guards h_shards *)
  h_shards : shard list ref;
  h_key : shard Domain.DLS.key;
}

type counter = {
  c_name : string;
  c_help : string;
  c_v : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_cell : float array; (* one slot: unboxed float store *)
}

type metric = MC of counter | MG of gauge | MH of histogram

type registry = {
  r_lock : Mutex.t;
  mutable r_metrics : metric list; (* newest first *)
  mutable r_collectors : (string * (unit -> string)) list; (* oldest first *)
}

let create_registry () =
  { r_lock = Mutex.create (); r_metrics = []; r_collectors = [] }

let default = create_registry ()

(* -- bucket schemes ---------------------------------------------------- *)

let log_buckets ~base ~lo ~count =
  let b = Array.make count lo in
  for i = 1 to count - 1 do
    b.(i) <- b.(i - 1) * base
  done;
  b

(* 1 µs … ~67 s in powers of 4: one cache line of counts per shard,
   and still a distinct bucket for a dispatcher probe (µs), a typical
   function analysis (ms) and an adversarial symex tail (s). *)
let default_latency_buckets = log_buckets ~base:4 ~lo:1_000 ~count:14

(* -- find-or-create ---------------------------------------------------- *)

(* The DLS initializer only needs the shard list and its lock, both of
   which exist before the record: a domain's first observe creates its
   shard and registers it, exactly like a trace ring buffer. *)
let make_histogram name help labels bounds scale =
  let nb = Array.length bounds + 1 in
  let lock = Mutex.create () in
  let shards = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = { s_counts = Array.make nb 0; s_sum = 0; s_count = 0 } in
        Mutex.protect lock (fun () -> shards := s :: !shards);
        s)
  in
  {
    h_name = name;
    h_help = help;
    h_labels = labels;
    h_bounds = bounds;
    h_scale = scale;
    h_lock = lock;
    h_shards = shards;
    h_key = key;
  }

let find_or_create reg key make =
  Mutex.protect reg.r_lock (fun () ->
      let found =
        List.find_map
          (fun m -> match key m with Some v -> Some v | None -> None)
          reg.r_metrics
      in
      match found with
      | Some v -> v
      | None ->
        let m, v = make () in
        reg.r_metrics <- m :: reg.r_metrics;
        v)

let counter ?(registry = default) ?(help = "") name =
  find_or_create registry
    (function MC c when c.c_name = name -> Some c | _ -> None)
    (fun () ->
      let c = { c_name = name; c_help = help; c_v = Atomic.make 0 } in
      (MC c, c))

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  find_or_create registry
    (function
      | MG g when g.g_name = name && g.g_labels = labels -> Some g
      | _ -> None)
    (fun () ->
      let g =
        {
          g_name = name;
          g_help = help;
          g_labels = labels;
          g_cell = Array.make 1 0.0;
        }
      in
      (MG g, g))

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = default_latency_buckets) ?(scale = 1e-9) name =
  find_or_create registry
    (function
      | MH h when h.h_name = name && h.h_labels = labels -> Some h
      | _ -> None)
    (fun () ->
      let h = make_histogram name help labels buckets scale in
      (MH h, h))

(* -- write paths -------------------------------------------------------- *)

let inc c = ignore (Atomic.fetch_and_add c.c_v 1 : int)
let add c n = ignore (Atomic.fetch_and_add c.c_v n : int)
let counter_value c = Atomic.get c.c_v
let set_gauge g v = g.g_cell.(0) <- v
let gauge_value g = g.g_cell.(0)

(* Tail-recursive bound scan on immediates: no ref cell, no closure —
   the whole observe path allocates nothing (the shard itself is
   created once per domain by the DLS initializer). *)
let rec bucket_index bounds n v i =
  if i < n && v > Array.unsafe_get bounds i then bucket_index bounds n v (i + 1)
  else i

let observe h v =
  let s = Domain.DLS.get h.h_key in
  let i = bucket_index h.h_bounds (Array.length h.h_bounds) v 0 in
  let c = s.s_counts in
  Array.unsafe_set c i (Array.unsafe_get c i + 1);
  s.s_sum <- s.s_sum + v;
  s.s_count <- s.s_count + 1

(* -- snapshots ---------------------------------------------------------- *)

type hist_snapshot = {
  bounds : int array;
  buckets : int array;
  sum : int;
  count : int;
}

let shards_of h = Mutex.protect h.h_lock (fun () -> !(h.h_shards))

let snapshot h =
  let nb = Array.length h.h_bounds + 1 in
  let buckets = Array.make nb 0 in
  let sum = ref 0 and count = ref 0 in
  List.iter
    (fun s ->
      for i = 0 to nb - 1 do
        buckets.(i) <- buckets.(i) + s.s_counts.(i)
      done;
      sum := !sum + s.s_sum;
      count := !count + s.s_count)
    (shards_of h);
  { bounds = Array.copy h.h_bounds; buckets; sum = !sum; count = !count }

let merge_snapshots a b =
  if a.bounds <> b.bounds then
    invalid_arg "Metrics.merge_snapshots: bucket bounds differ";
  {
    bounds = a.bounds;
    buckets = Array.mapi (fun i v -> v + b.buckets.(i)) a.buckets;
    sum = a.sum + b.sum;
    count = a.count + b.count;
  }

let quantile_scaled s q scale =
  if s.count = 0 then nan
  else begin
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (q *. float_of_int s.count)))
    in
    let nb = Array.length s.buckets in
    let rec go i cum =
      if i >= nb then infinity
      else
        let cum = cum + s.buckets.(i) in
        if cum >= rank then
          if i < Array.length s.bounds then
            float_of_int s.bounds.(i) *. scale
          else infinity
        else go (i + 1) cum
    in
    go 0 0
  end

let hist_scale h = h.h_scale

(* Snapshots carry no scale of their own; {!quantile} answers in the
   conventional 1e-9 (ns → s) unit, and the bench reads scaled values
   through {!histograms}. *)
let quantile s q = quantile_scaled s q 1e-9

let metrics_in_order reg =
  Mutex.protect reg.r_lock (fun () -> List.rev reg.r_metrics)

let histograms ?(registry = default) () =
  List.filter_map
    (function
      | MH h -> Some (h.h_name, h.h_labels, h.h_scale, snapshot h)
      | _ -> None)
    (metrics_in_order registry)

(* -- reset -------------------------------------------------------------- *)

let reset ?(registry = default) () =
  List.iter
    (function
      | MC c -> Atomic.set c.c_v 0
      | MG g -> g.g_cell.(0) <- 0.0
      | MH h ->
        List.iter
          (fun s ->
            Array.fill s.s_counts 0 (Array.length s.s_counts) 0;
            s.s_sum <- 0;
            s.s_count <- 0)
          (shards_of h))
    (metrics_in_order registry)

(* -- exposition --------------------------------------------------------- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
    ^ "}"

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let family_header buf ~mtype ~name ~help =
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name mtype)

let render_metric buf seen m =
  let header mtype name help =
    if not (List.mem name !seen) then begin
      seen := name :: !seen;
      family_header buf ~mtype ~name ~help
    end
  in
  match m with
  | MC c ->
    header "counter" c.c_name c.c_help;
    Buffer.add_string buf
      (Printf.sprintf "%s_total %d\n" c.c_name (Atomic.get c.c_v))
  | MG g ->
    header "gauge" g.g_name g.g_help;
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" g.g_name (labels_str g.g_labels)
         (fmt_float g.g_cell.(0)))
  | MH h ->
    header "histogram" h.h_name h.h_help;
    let s = snapshot h in
    let cum = ref 0 in
    Array.iteri
      (fun i n ->
        cum := !cum + n;
        let le =
          if i < Array.length s.bounds then
            Printf.sprintf "%g" (float_of_int s.bounds.(i) *. h.h_scale)
          else "+Inf"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" h.h_name
             (labels_str (h.h_labels @ [ ("le", le) ]))
             !cum))
      s.buckets;
    Buffer.add_string buf
      (Printf.sprintf "%s_sum%s %s\n" h.h_name (labels_str h.h_labels)
         (fmt_float (float_of_int s.sum *. h.h_scale)));
    Buffer.add_string buf
      (Printf.sprintf "%s_count%s %d\n" h.h_name (labels_str h.h_labels)
         s.count)

let register_collector ?(registry = default) ~name f =
  Mutex.protect registry.r_lock (fun () ->
      registry.r_collectors <-
        List.filter (fun (n, _) -> n <> name) registry.r_collectors
        @ [ (name, f) ])

let expose ?(registry = default) () =
  let buf = Buffer.create 4096 in
  let seen = ref [] in
  List.iter (render_metric buf seen) (metrics_in_order registry);
  let collectors =
    Mutex.protect registry.r_lock (fun () -> registry.r_collectors)
  in
  List.iter (fun (_, f) -> Buffer.add_string buf (f ())) collectors;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* -- GC gauges ---------------------------------------------------------- *)

let sample_gc () =
  let st = Gc.quick_stat () in
  let g name help = gauge ~help name in
  set_gauge
    (g "sigrec_gc_minor_words" "cumulative minor-heap words allocated")
    st.Gc.minor_words;
  set_gauge
    (g "sigrec_gc_major_words" "cumulative major-heap words allocated")
    st.Gc.major_words;
  set_gauge
    (g "sigrec_gc_compactions" "heap compactions since program start")
    (float_of_int st.Gc.compactions);
  set_gauge
    (g "sigrec_gc_heap_bytes" "major-heap size in bytes")
    (float_of_int (st.Gc.heap_words * (Sys.word_size / 8)));
  set_gauge
    (g "sigrec_gc_top_heap_bytes" "peak major-heap size in bytes")
    (float_of_int (st.Gc.top_heap_words * (Sys.word_size / 8)))

(* -- per-phase span histograms (the trace observer) --------------------- *)

let phase_index = function
  | Tr.Engine -> 0
  | Tr.Lift -> 1
  | Tr.Absint -> 2
  | Tr.Symex -> 3
  | Tr.Rules -> 4
  | Tr.Lint -> 5
  | Tr.Layout -> 6
  | Tr.Bench -> 7

(* Domain-local memo from span name to histogram, one table per phase:
   the common case (span seen before on this domain) is a lock-free
   Hashtbl read; the miss path does the locked registry find-or-create
   once and caches the result. *)
let span_memo_key :
    (string, histogram) Hashtbl.t array Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Array.init 8 (fun _ -> Hashtbl.create 8))

let span_histogram phase name =
  let memo = (Domain.DLS.get span_memo_key).(phase_index phase) in
  match Hashtbl.find_opt memo name with
  | Some h -> h
  | None ->
    let h =
      histogram
        ~help:"wall time of pipeline spans, by phase and span name"
        ~labels:[ ("phase", Tr.phase_name phase); ("span", name) ]
        "sigrec_phase_duration_seconds"
    in
    Hashtbl.replace memo name h;
    h

let span_observer phase name dur_us =
  if Atomic.get on then
    observe (span_histogram phase name)
      (int_of_float (dur_us *. 1000.0))

let enable () =
  Atomic.set on true;
  Tr.set_observer (Some span_observer)

let disable () =
  Atomic.set on false;
  Tr.set_observer None

(* -- top-K slowest ------------------------------------------------------ *)

module Top = struct
  type entry = {
    key : string;
    elapsed_ns : int;
    detail : (string * int) list;
  }

  let capacity = 16
  let lock = Mutex.create ()
  let entries : entry list ref = ref [] (* slowest first, <= capacity *)

  let record ~key ~elapsed_ns ~detail =
    Mutex.protect lock (fun () ->
        let e =
          match List.find_opt (fun e -> e.key = key) !entries with
          | Some p when p.elapsed_ns >= elapsed_ns -> p
          | _ -> { key; elapsed_ns; detail }
        in
        let rest = List.filter (fun x -> x.key <> key) !entries in
        let merged =
          List.stable_sort
            (fun a b -> compare b.elapsed_ns a.elapsed_ns)
            (e :: rest)
        in
        entries := List.filteri (fun i _ -> i < capacity) merged)

  let slowest () = Mutex.protect lock (fun () -> !entries)
  let reset () = Mutex.protect lock (fun () -> entries := [])
end
