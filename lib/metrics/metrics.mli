(** Typed metric registry: the runtime-health counterpart of the trace
    rings.

    Where {!Sigrec_trace.Trace} answers "what happened during this
    run" (a bounded event log you export and read offline), this module
    answers "how is the process doing right now": monotonic counters,
    gauges, and log-bucketed latency/size histograms that a resident
    service scrapes live in OpenMetrics/Prometheus text format
    ({!expose}).

    Design points, mirroring the trace layer so the two stay cheap the
    same way:

    - {b integer observations.} Histograms record [int] values
      (nanoseconds, bytes); a [float] argument would be boxed at every
      call. The unit conversion (ns → seconds for exposition) is a
      per-histogram [scale] applied at read time.
    - {b per-domain shards merged at read.} [observe] touches only this
      domain's shard ([Domain.DLS]) — a fixed bucket array increment
      plus a sum/count update, no lock, no allocation. Shards register
      themselves in the histogram on first use and {!snapshot} folds
      them together, exactly like the trace ring registry.
    - {b allocation-free disabled path.} Producers guard with
      [if Metrics.enabled () then Metrics.observe h v] — one atomic
      load when metrics are off, gated in the bench
      ([metrics_overhead], BENCH_obs.json).
    - {b one surface.} The process-wide {!default} registry also
      renders registered {!register_collector} chunks (the engine's
      [Stats] descriptor list, LRU/pool gauges), so counters,
      histograms and gauges all come out of one {!expose} call.

    {!enable} additionally installs the {!Sigrec_trace.Trace} span
    observer, so every span close (engine input/function/classify,
    lift, absint fixpoint, symex run, layout pass…) feeds a per-phase
    wall-time histogram without new instrumentation at the call
    sites. *)

type registry

val create_registry : unit -> registry
(** A private registry — used by tests and goldens; production code
    shares {!default}. *)

val default : registry
(** The process-wide registry: what {!enable}, the serve endpoint and
    the [sigrec metrics] subcommand all use. *)

val enabled : unit -> bool
(** One atomic load; the guard for every producer-side observation. *)

val enable : unit -> unit
(** Turn collection on and install the trace span observer (per-phase
    latency histograms in {!default}). Idempotent. *)

val disable : unit -> unit
(** Turn collection off and remove the span observer. Existing values
    remain readable. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every counter, gauge and histogram shard in [registry]
    (default {!default}); collectors and the top-K ring are untouched.
    Bench plumbing — production never resets. *)

(** {1 Counters} *)

type counter

val counter : ?registry:registry -> ?help:string -> string -> counter
(** [counter name] finds or creates the monotonic counter [name] (the
    family name {e without} the OpenMetrics [_total] suffix — that is
    added at exposition). Find-or-create keyed on [(name, labels)], so
    re-creation from independent call sites is safe and cheap. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  gauge

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val default_latency_buckets : int array
(** Log-spaced upper bounds in nanoseconds, 1 µs … ~67 s in powers of
    4 (14 buckets plus the implicit +Inf overflow): wide enough for a
    dispatcher probe and an adversarial symex tail in the same
    histogram, small enough that a shard is one cache line of
    counts. *)

val log_buckets : base:int -> lo:int -> count:int -> int array
(** [log_buckets ~base ~lo ~count] = [lo, lo*base, lo*base^2, …]
    ([count] bounds). *)

val histogram :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:int array ->
  ?scale:float ->
  string ->
  histogram
(** Find-or-create, like {!counter}. [buckets] are ascending upper
    bounds (default {!default_latency_buckets}); [scale] converts the
    integer unit to the exposition unit (default [1e-9]: nanoseconds
    in, seconds out). *)

val observe : histogram -> int -> unit
(** Record one observation into this domain's shard: a bounded linear
    scan of the bucket bounds plus three stores. No lock, no
    allocation — hot-path safe behind [if enabled () then …]. *)

type hist_snapshot = {
  bounds : int array;  (** the histogram's upper bounds (unscaled) *)
  buckets : int array; (** per-bucket counts, [length bounds + 1]
                           (last = overflow), merged across shards *)
  sum : int;
  count : int;
}

val snapshot : histogram -> hist_snapshot
(** Merge every domain's shard. Concurrent observes may or may not be
    included (racy integer reads, like the trace rings) — exact once
    the producing domains are quiescent. *)

val merge_snapshots : hist_snapshot -> hist_snapshot -> hist_snapshot
(** Bucket-wise sum; the two snapshots must share [bounds]. Merging is
    associative and commutative — the shard-merge oracle in the bench
    checks the end-to-end version of this. *)

val quantile : hist_snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile (0 < q <= 1) as the
    {e scaled} upper bound of the bucket holding that rank — within
    one bucket of the exact sample quantile by construction. [nan] on
    an empty snapshot; the overflow bucket answers [infinity]. *)

val hist_scale : histogram -> float

val histograms :
  ?registry:registry ->
  unit ->
  (string * (string * string) list * float * hist_snapshot) list
(** Every histogram in creation order as
    [(name, labels, scale, snapshot)] — the bench reads per-phase
    p50/p99 through this. *)

(** {1 Exposition} *)

val register_collector :
  ?registry:registry -> name:string -> (unit -> string) -> unit
(** Register a callback that renders an exposition chunk (complete
    [# TYPE]-prefixed families, newline-terminated) at {!expose} time —
    how the engine's [Stats] descriptor list and the LRU/pool gauges
    join the surface without living in the registry. Re-registering
    [name] replaces the previous callback. *)

val expose : ?registry:registry -> unit -> string
(** OpenMetrics text format: every registered metric family (grouped,
    [# TYPE]/[# HELP] headers, [_total] counter suffix, cumulative
    [le]-labelled histogram buckets with [_sum]/[_count]), then every
    collector chunk, then the [# EOF] terminator. *)

(** {1 Runtime health helpers} *)

val sample_gc : unit -> unit
(** Sample [Gc.quick_stat] into gauges in {!default}
    ([sigrec_gc_minor_words], [_major_words], [_compactions],
    [_heap_bytes], [_top_heap_bytes]). Called per batch by the engine
    and per scrape by the serve endpoint. *)

(** Top-K slowest-contracts ring: the adversarial tail, by code hash.
    Bounded at {!Top.capacity}; insertion is O(K) under a mutex and
    only happens when metrics are enabled. *)
module Top : sig
  type entry = {
    key : string;  (** hex code hash *)
    elapsed_ns : int;
    detail : (string * int) list;  (** phase breakdown, e.g. lift/analysis ns *)
  }

  val capacity : int
  (** 16. *)

  val record : key:string -> elapsed_ns:int -> detail:(string * int) list -> unit
  (** Keep if among the [capacity] slowest seen; duplicate keys keep
      the slower observation. *)

  val slowest : unit -> entry list
  (** Slowest first. *)

  val reset : unit -> unit
end
