open Evm

(* A bounded set keeps internal-function return addresses precise: a
   body called from several sites sees one pushed return label per
   caller, and collapsing them to a single top would re-lose exactly
   the jumps we are here to resolve. *)
let max_consts = 8

(* Where a storage address came from. [Fixed] is a compile-time slot
   number (those normally stay [Consts] on the stack; [Fixed] appears
   once an SLOAD pins the provenance of the loaded word). [Map_of] and
   [Arr_of] are the two solc derivation idioms: keccak(key . base) for
   a mapping element and keccak(base) (+ index) for a dynamic array
   element. Nested mappings keep the root base — the layout cares
   which declared variable the traffic belongs to, not the path. *)
type slot =
  | Fixed of U256.t
  | Map_of of U256.t
  | Arr_of of U256.t

let slot_equal a b =
  match (a, b) with
  | Fixed x, Fixed y | Map_of x, Map_of y | Arr_of x, Arr_of y ->
    U256.equal x y
  | _ -> false

type t =
  | Consts of U256.t list
  | Load of int
  | Slot of slot
  | Sval of slot * int
  | Untainted
  | Tainted

let const v = Consts [ v ]
let of_int n = const (U256.of_int n)

let tainted = function
  | Tainted | Load _ -> true
  | Consts _ | Slot _ | Sval _ | Untainted -> false

let norm vs =
  let sorted = List.sort_uniq U256.compare vs in
  if List.length sorted > max_consts then Untainted else Consts sorted

(* Abstract values are usually rebuilt from the same pooled U256
   constants (small ints, powers of two), so physical equality settles
   most comparisons without walking the lists. *)
let equal a b =
  a == b
  ||
  match (a, b) with
  | Consts xs, Consts ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun x y -> x == y || U256.equal x y) xs ys
  | Load i, Load j -> i = j
  | Slot x, Slot y -> slot_equal x y
  | Sval (x, i), Sval (y, j) -> i = j && slot_equal x y
  | Untainted, Untainted | Tainted, Tainted -> true
  | _ -> false

let join a b =
  if a == b then a
  else
    match (a, b) with
  | Tainted, _ | _, Tainted -> Tainted
  | Load i, Load j -> if i = j then Load i else Tainted
  | Load _, _ | _, Load _ -> Tainted
  | Slot x, Slot y -> if slot_equal x y then a else Untainted
  | Sval (x, i), Sval (y, j) ->
    if i = j && slot_equal x y then a else Untainted
  | (Slot _ | Sval _), _ | _, (Slot _ | Sval _) -> Untainted
  | Untainted, _ | _, Untainted -> Untainted
  | Consts xs, Consts ys -> norm (xs @ ys)

let to_consts = function Consts vs -> Some vs | _ -> None

let to_const = function Consts [ v ] -> Some v | _ -> None

let to_const_int d = Option.bind (to_const d) U256.to_int

(* The slot a storage access at this abstract address belongs to: a
   singleton constant is a declared slot number, a derived value keeps
   its derivation. Multi-constant sets are ambiguous on purpose. *)
let slot_of = function
  | Consts [ c ] -> Some (Fixed c)
  | Slot s -> Some s
  | _ -> None

(* Concrete single-value semantics, operand order as popped (EVM stack
   top first). Mirrors [Sexpr.eval_bin] so a branch the interpreter
   decides matches what symbolic execution would conclude. *)
let eval2 op a b =
  match op with
  | Opcode.ADD -> Some (U256.add a b)
  | Opcode.SUB -> Some (U256.sub a b)
  | Opcode.MUL -> Some (U256.mul a b)
  | Opcode.DIV -> Some (U256.div a b)
  | Opcode.SDIV -> Some (U256.sdiv a b)
  | Opcode.MOD -> Some (U256.rem a b)
  | Opcode.SMOD -> Some (U256.srem a b)
  | Opcode.EXP -> Some (U256.exp a b)
  | Opcode.AND -> Some (U256.logand a b)
  | Opcode.OR -> Some (U256.logor a b)
  | Opcode.XOR -> Some (U256.logxor a b)
  | Opcode.LT -> Some (if U256.lt a b then U256.one else U256.zero)
  | Opcode.GT -> Some (if U256.gt a b then U256.one else U256.zero)
  | Opcode.SLT -> Some (if U256.slt a b then U256.one else U256.zero)
  | Opcode.SGT -> Some (if U256.sgt a b then U256.one else U256.zero)
  | Opcode.EQ -> Some (if U256.equal a b then U256.one else U256.zero)
  | Opcode.BYTE ->
    Some
      (match U256.to_int a with
      | Some i when i < 32 -> U256.byte i b
      | _ -> U256.zero)
  | Opcode.SHL ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_left b n
      | _ -> U256.zero)
  | Opcode.SHR ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_right b n
      | _ -> U256.zero)
  | Opcode.SAR ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_right_arith b n
      | _ -> U256.shift_right_arith b 255)
  | Opcode.SIGNEXTEND ->
    Some
      (match U256.to_int a with
      | Some k when k < 32 -> U256.signextend k b
      | _ -> b)
  | _ -> None

let eval1 op a =
  match op with
  | Opcode.NOT -> Some (U256.lognot a)
  | Opcode.ISZERO ->
    Some (if U256.is_zero a then U256.one else U256.zero)
  | _ -> None

let pow2_exponent v =
  let n = U256.bits v in
  if n > 0 && n <= 256 && U256.equal v (U256.pow2 (n - 1)) then Some (n - 1)
  else None

let lift2 op a b =
  match (a, b) with
  | (Tainted | Load _), _ | _, (Tainted | Load _) -> Tainted
  (* Derived storage addresses survive element-offset arithmetic: the
     base of keccak(slot) + i is still the same dynamic array, and a
     struct member inside a mapping value stays in that mapping. *)
  | Slot s, (Consts _ | Untainted | Sval _ | Slot _)
  | (Consts _ | Untainted | Sval _), Slot s -> (
    match op with
    | Opcode.ADD -> Slot s
    | Opcode.SUB when (match a with Slot _ -> true | _ -> false) -> Slot s
    | _ -> Untainted)
  (* A storage-loaded word keeps its provenance through the packed
     read idiom — shifts move the tracked bit cursor, masks keep it —
     so the recording pass can attribute the mask to (slot, offset). *)
  | Sval (s, sh), Consts _ | Consts _, Sval (s, sh) -> (
    match op with
    | Opcode.AND | Opcode.OR -> Sval (s, sh)
    | Opcode.SHR -> (
      match (a, to_const_int a) with
      | Consts _, Some k when k < 256 -> Sval (s, sh + k)
      | _ -> Untainted)
    | Opcode.DIV -> (
      match (a, Option.bind (to_const b) pow2_exponent) with
      | Sval _, Some k -> Sval (s, sh + k)
      | _ -> Untainted)
    | _ -> Untainted)
  | Sval _, (Untainted | Sval _) | Untainted, Sval _ -> Untainted
  | Untainted, _ | _, Untainted -> Untainted
  | Consts xs, Consts ys ->
    let all =
      List.concat_map
        (fun x -> List.filter_map (fun y -> eval2 op x y) ys)
        xs
    in
    if all = [] || List.length all < List.length xs * List.length ys then
      Untainted
    else norm all

let lift1 op a =
  match a with
  | Tainted | Load _ -> Tainted
  | Untainted | Slot _ | Sval _ -> Untainted
  | Consts xs -> (
    match List.filter_map (eval1 op) xs with
    | [] -> Untainted
    | vs when List.length vs = List.length xs -> norm vs
    | _ -> Untainted)

(* Truth of a branch condition when every abstract value agrees. *)
let truth = function
  | Consts (v :: vs) ->
    let b = not (U256.is_zero v) in
    if List.for_all (fun v -> not (U256.is_zero v) = b) vs then Some b
    else None
  | _ -> None

let pp_slot fmt = function
  | Fixed c -> Format.fprintf fmt "0x%s" (U256.to_hex c)
  | Map_of c -> Format.fprintf fmt "map(0x%s)" (U256.to_hex c)
  | Arr_of c -> Format.fprintf fmt "arr(0x%s)" (U256.to_hex c)

let pp fmt = function
  | Consts vs ->
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map (fun v -> "0x" ^ U256.to_hex v) vs))
  | Load off -> Format.fprintf fmt "cd[%d]" off
  | Slot s -> Format.fprintf fmt "slot[%a]" pp_slot s
  | Sval (s, 0) -> Format.fprintf fmt "st[%a]" pp_slot s
  | Sval (s, sh) -> Format.fprintf fmt "st[%a]>>%d" pp_slot s sh
  | Untainted -> Format.fprintf fmt "clean"
  | Tainted -> Format.fprintf fmt "top"
