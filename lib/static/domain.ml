open Evm

(* A bounded set keeps internal-function return addresses precise: a
   body called from several sites sees one pushed return label per
   caller, and collapsing them to a single top would re-lose exactly
   the jumps we are here to resolve. *)
let max_consts = 8

type t =
  | Consts of U256.t list
  | Load of int
  | Untainted
  | Tainted

let const v = Consts [ v ]
let of_int n = const (U256.of_int n)

let tainted = function
  | Tainted | Load _ -> true
  | Consts _ | Untainted -> false

let norm vs =
  let sorted = List.sort_uniq U256.compare vs in
  if List.length sorted > max_consts then Untainted else Consts sorted

(* Abstract values are usually rebuilt from the same pooled U256
   constants (small ints, powers of two), so physical equality settles
   most comparisons without walking the lists. *)
let equal a b =
  a == b
  ||
  match (a, b) with
  | Consts xs, Consts ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun x y -> x == y || U256.equal x y) xs ys
  | Load i, Load j -> i = j
  | Untainted, Untainted | Tainted, Tainted -> true
  | _ -> false

let join a b =
  if a == b then a
  else
    match (a, b) with
  | Tainted, _ | _, Tainted -> Tainted
  | Load i, Load j -> if i = j then Load i else Tainted
  | Load _, _ | _, Load _ -> Tainted
  | Untainted, _ | _, Untainted -> Untainted
  | Consts xs, Consts ys -> norm (xs @ ys)

let to_consts = function Consts vs -> Some vs | _ -> None

let to_const = function Consts [ v ] -> Some v | _ -> None

let to_const_int d = Option.bind (to_const d) U256.to_int

(* Concrete single-value semantics, operand order as popped (EVM stack
   top first). Mirrors [Sexpr.eval_bin] so a branch the interpreter
   decides matches what symbolic execution would conclude. *)
let eval2 op a b =
  match op with
  | Opcode.ADD -> Some (U256.add a b)
  | Opcode.SUB -> Some (U256.sub a b)
  | Opcode.MUL -> Some (U256.mul a b)
  | Opcode.DIV -> Some (U256.div a b)
  | Opcode.SDIV -> Some (U256.sdiv a b)
  | Opcode.MOD -> Some (U256.rem a b)
  | Opcode.SMOD -> Some (U256.srem a b)
  | Opcode.EXP -> Some (U256.exp a b)
  | Opcode.AND -> Some (U256.logand a b)
  | Opcode.OR -> Some (U256.logor a b)
  | Opcode.XOR -> Some (U256.logxor a b)
  | Opcode.LT -> Some (if U256.lt a b then U256.one else U256.zero)
  | Opcode.GT -> Some (if U256.gt a b then U256.one else U256.zero)
  | Opcode.SLT -> Some (if U256.slt a b then U256.one else U256.zero)
  | Opcode.SGT -> Some (if U256.sgt a b then U256.one else U256.zero)
  | Opcode.EQ -> Some (if U256.equal a b then U256.one else U256.zero)
  | Opcode.BYTE ->
    Some
      (match U256.to_int a with
      | Some i when i < 32 -> U256.byte i b
      | _ -> U256.zero)
  | Opcode.SHL ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_left b n
      | _ -> U256.zero)
  | Opcode.SHR ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_right b n
      | _ -> U256.zero)
  | Opcode.SAR ->
    Some
      (match U256.to_int a with
      | Some n when n < 256 -> U256.shift_right_arith b n
      | _ -> U256.shift_right_arith b 255)
  | Opcode.SIGNEXTEND ->
    Some
      (match U256.to_int a with
      | Some k when k < 32 -> U256.signextend k b
      | _ -> b)
  | _ -> None

let eval1 op a =
  match op with
  | Opcode.NOT -> Some (U256.lognot a)
  | Opcode.ISZERO ->
    Some (if U256.is_zero a then U256.one else U256.zero)
  | _ -> None

let lift2 op a b =
  match (a, b) with
  | (Tainted | Load _), _ | _, (Tainted | Load _) -> Tainted
  | Untainted, _ | _, Untainted -> Untainted
  | Consts xs, Consts ys ->
    let all =
      List.concat_map
        (fun x -> List.filter_map (fun y -> eval2 op x y) ys)
        xs
    in
    if all = [] || List.length all < List.length xs * List.length ys then
      Untainted
    else norm all

let lift1 op a =
  match a with
  | Tainted | Load _ -> Tainted
  | Untainted -> Untainted
  | Consts xs -> (
    match List.filter_map (eval1 op) xs with
    | [] -> Untainted
    | vs when List.length vs = List.length xs -> norm vs
    | _ -> Untainted)

(* Truth of a branch condition when every abstract value agrees. *)
let truth = function
  | Consts (v :: vs) ->
    let b = not (U256.is_zero v) in
    if List.for_all (fun v -> not (U256.is_zero v) = b) vs then Some b
    else None
  | _ -> None

let pp fmt = function
  | Consts vs ->
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map (fun v -> "0x" ^ U256.to_hex v) vs))
  | Load off -> Format.fprintf fmt "cd[%d]" off
  | Untainted -> Format.fprintf fmt "clean"
  | Tainted -> Format.fprintf fmt "top"
