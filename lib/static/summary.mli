(** The per-function call-data access summary the abstract interpreter
    produces without symbolic execution: which constant offsets are
    read, what masks and sign-extensions are applied to them, the
    CALLDATACOPY ranges, and the bound checks guarding item loads. The
    differential lint diffs this against the TASE-recovered signature. *)

type copy = {
  pc : int;
  src : int option;   (** constant source offset, when known *)
  len : int option;   (** constant length, when known *)
}

type bound_check = {
  pc : int;                 (** the JUMPI guarded by the comparison *)
  offset : int option;      (** call-data offset of the checked value *)
  bound : int option;       (** constant bound, when known *)
}

type t = {
  entry : int;
  const_reads : int list;      (** CALLDATALOAD offsets, ascending, distinct *)
  sym_reads : int;             (** CALLDATALOAD sites at non-constant offsets *)
  masks : (int * Evm.U256.t) list;
      (** (offset, mask) for AND applied directly to a loaded word *)
  signexts : (int * int) list; (** (offset, byte index) for SIGNEXTEND *)
  byte_reads : int list;       (** offsets whose word is read with BYTE *)
  copies : copy list;
  bound_checks : bound_check list;
  uses_cdsize : bool;
  tainted_branches : int;      (** JUMPIs whose condition may depend on
                                   call data *)
  complete : bool;             (** no reachable unresolved jump remains:
                                   the summary covers every path *)
}

val empty : int -> t

val masks_at : t -> int -> Evm.U256.t list
val signexts_at : t -> int -> int list
val reads_offset : t -> int -> bool

val max_head_read : t -> int
(** Highest constant offset >= 4 read, or [-1] when none. *)

val pp : Format.formatter -> t -> unit
