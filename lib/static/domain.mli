(** The abstract value lattice of the static pass: a stack slot is a
    bounded set of known constants, a raw call-data word at a known
    offset, an unknown-but-calldata-independent value, or top.

    Ordering (least to greatest precision loss):
    [Consts] < [Untainted] < [Tainted]; [Load] sits beside [Consts] and
    joins with anything but itself to [Tainted], because a value that
    may be a call-data word is calldata-dependent. [Untainted] is the
    widening target: environment reads (CALLER, CALLVALUE, ...),
    storage, hashes — unknown, but provably not derived from the call
    data, which is what both jump resolution and fork pruning need. *)

type t =
  | Consts of Evm.U256.t list  (** sorted, distinct, bounded set *)
  | Load of int                (** CALLDATALOAD at this constant offset *)
  | Untainted                  (** unknown, not derived from call data *)
  | Tainted                    (** may depend on call data *)

val max_consts : int
(** Set-size bound before widening to [Untainted] (8). *)

val const : Evm.U256.t -> t
val of_int : int -> t

val tainted : t -> bool
(** [Load _] and [Tainted] — anything derived from the call data. *)

val equal : t -> t -> bool
val join : t -> t -> t

val to_consts : t -> Evm.U256.t list option
val to_const : t -> Evm.U256.t option
(** Singleton constant sets only. *)

val to_const_int : t -> int option

val lift2 : Evm.Opcode.t -> t -> t -> t
(** Abstract transfer of a binary instruction; operands in popped order
    (stack top first), concrete cases mirroring [Sexpr.eval_bin]. *)

val lift1 : Evm.Opcode.t -> t -> t
(** NOT / ISZERO. *)

val truth : t -> bool option
(** Definite truth value of a branch condition: [Some b] when every
    constant in the set agrees on zero/non-zero. *)

val eval2 : Evm.Opcode.t -> Evm.U256.t -> Evm.U256.t -> Evm.U256.t option
val eval1 : Evm.Opcode.t -> Evm.U256.t -> Evm.U256.t option

val pp : Format.formatter -> t -> unit
