(** The abstract value lattice of the static pass: a stack slot is a
    bounded set of known constants, a raw call-data word at a known
    offset, an unknown-but-calldata-independent value, or top.

    Ordering (least to greatest precision loss):
    [Consts] < [Untainted] < [Tainted]; [Load] sits beside [Consts] and
    joins with anything but itself to [Tainted], because a value that
    may be a call-data word is calldata-dependent. [Untainted] is the
    widening target: environment reads (CALLER, CALLVALUE, ...),
    storage, hashes — unknown, but provably not derived from the call
    data, which is what both jump resolution and fork pruning need. *)

(** Provenance of a storage address. [Slot]/[Sval] sit between [Consts]
    and [Untainted]: calldata-independent like [Untainted], but they
    remember which declared storage variable they belong to, which is
    what the storage-layout pass consumes. They join with anything but
    an equal self to [Untainted] (or [Tainted] across the taint line),
    so they never make the analysis less convergent than before. *)
type slot =
  | Fixed of Evm.U256.t   (** a compile-time slot number *)
  | Map_of of Evm.U256.t  (** keccak(key . base): mapping element *)
  | Arr_of of Evm.U256.t  (** keccak(base) (+ i): dynamic-array element *)

val slot_equal : slot -> slot -> bool
val pp_slot : Format.formatter -> slot -> unit

type t =
  | Consts of Evm.U256.t list  (** sorted, distinct, bounded set *)
  | Load of int                (** CALLDATALOAD at this constant offset *)
  | Slot of slot               (** a derived storage address *)
  | Sval of slot * int         (** word loaded from a slot, shifted right *)
  | Untainted                  (** unknown, not derived from call data *)
  | Tainted                    (** may depend on call data *)

val max_consts : int
(** Set-size bound before widening to [Untainted] (8). *)

val const : Evm.U256.t -> t
val of_int : int -> t

val tainted : t -> bool
(** [Load _] and [Tainted] — anything derived from the call data. *)

val equal : t -> t -> bool
val join : t -> t -> t

val to_consts : t -> Evm.U256.t list option
val to_const : t -> Evm.U256.t option
(** Singleton constant sets only. *)

val to_const_int : t -> int option

val slot_of : t -> slot option
(** The storage slot an SLOAD/SSTORE address designates: singleton
    constants become [Fixed], derived addresses keep their derivation,
    everything else (including ambiguous multi-constant sets) is
    [None]. *)

val lift2 : Evm.Opcode.t -> t -> t -> t
(** Abstract transfer of a binary instruction; operands in popped order
    (stack top first), concrete cases mirroring [Sexpr.eval_bin]. *)

val lift1 : Evm.Opcode.t -> t -> t
(** NOT / ISZERO. *)

val truth : t -> bool option
(** Definite truth value of a branch condition: [Some b] when every
    constant in the set agrees on zero/non-zero. *)

val eval2 : Evm.Opcode.t -> Evm.U256.t -> Evm.U256.t -> Evm.U256.t option
val eval1 : Evm.Opcode.t -> Evm.U256.t -> Evm.U256.t option

val pp : Format.formatter -> t -> unit
