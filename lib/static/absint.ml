open Evm
module Imap = Map.Make (Int)
module Tr = Sigrec_trace.Trace

(* Abstract machine state at a program point. [mem] holds the words
   stored at known constant offsets; [mem_rest] is the join of
   everything else (the default a read outside [mem] returns). Memory
   starts [Untainted], not zero: at a function entry the dispatcher has
   already written the free pointer, so pretending absent cells are
   zero would fold wrong constants into jump targets. *)
type astate = {
  stack : Domain.t list; (* top first *)
  mem : Domain.t Imap.t;
  mem_rest : Domain.t;
  clipped : bool; (* stack depths disagreed at a join *)
}

type decision = Take_jump | Take_fallthrough

(* Storage traffic observed during the recording pass, the raw
   material of the layout pass. [Smask] attributes a packed-word mask
   to (slot, bit offset, bit width); it fires both on the read idiom
   (SLOAD; SHR k; AND ones(w)) and on the write idiom's clear mask
   (SLOAD; AND ~(ones(w) << k)). *)
type storage_ev = { pc : int; ev : storage_kind }

and storage_kind =
  | Sload of Domain.slot option
  | Sstore of Domain.slot option * Domain.t
  | Sderive of Domain.slot
  | Smask of Domain.slot * int * int

type result = {
  cfg : Cfg.t;
  entry : int;
  entry_states : (int, astate) Hashtbl.t;
  resolved : (int, int list) Hashtbl.t;
  summary : Summary.t;
  storage : storage_ev list;
  prune : (int, decision) Hashtbl.t;
  converged : bool;
}

let max_mem_cells = 512
let max_block_visits = 100

(* The taint class of a value whose bytes get mixed with others:
   constant-set precision is meaningless for partial words, only
   whether call data flowed in survives. *)
let smear v = if Domain.tainted v then Domain.Tainted else Domain.Untainted

(* The transfer function's working state: one mutable record per
   {!interp_block} call, so stepping through a block allocates no
   per-instruction [astate] records. The immutable [astate] is built
   once at block exit (which also keeps {!join_astate}'s physical-
   equality fast path meaningful). *)
type scratch = {
  mutable s_stack : Domain.t list; (* top first *)
  mutable s_mem : Domain.t Imap.t;
  mutable s_rest : Domain.t;
  mutable s_clipped : bool;
}

let scratch_of st =
  { s_stack = st.stack; s_mem = st.mem; s_rest = st.mem_rest;
    s_clipped = st.clipped }

let astate_of_scratch s =
  { stack = s.s_stack; mem = s.s_mem; mem_rest = s.s_rest;
    clipped = s.s_clipped }

let underflow s = if s.s_clipped then Domain.Tainted else Domain.Untainted

let pop s =
  match s.s_stack with
  | v :: rest ->
    s.s_stack <- rest;
    v
  | [] -> underflow s

let popn n s =
  for _ = 1 to n do
    ignore (pop s)
  done

let push v s = s.s_stack <- v :: s.s_stack

(* -- memory ----------------------------------------------------------- *)

let overlapping_cells mem lo hi =
  (* cell keys in (lo, hi), exclusive bounds *)
  Imap.filter (fun c _ -> c > lo && c < hi) mem

let mem_store s off v =
  (* strong update of the exact cell; words overlapping it partially
     are byte-mixed, so they keep only their taint class *)
  let tv = smear v in
  let mem =
    Imap.mapi
      (fun c old ->
        if c <> off && c > off - 32 && c < off + 32 then
          Domain.join (smear old) tv
        else old)
      s.s_mem
  in
  let mem = Imap.add off v mem in
  if Imap.cardinal mem > max_mem_cells then begin
    s.s_rest <- Imap.fold (fun _ v acc -> Domain.join v acc) mem s.s_rest;
    s.s_mem <- Imap.empty
  end
  else s.s_mem <- mem

let mem_store_unknown s v =
  let tv = smear v in
  s.s_mem <- Imap.map (fun old -> Domain.join old tv) s.s_mem;
  s.s_rest <- Domain.join s.s_rest tv

let mem_store_byte s off v =
  let tv = smear v in
  s.s_mem <-
    Imap.mapi
      (fun c old ->
        if c > off - 32 && c <= off then Domain.join (smear old) tv
        else old)
      s.s_mem

let mem_store_range s lo len v =
  let off = ref lo in
  while !off < lo + len do
    mem_store s !off v;
    off := !off + 32
  done
(* a trailing partial word taints its neighbourhood via mem_store's
   overlap smearing; nothing else to do *)

let mem_load s off =
  let base =
    match Imap.find_opt off s.s_mem with
    | Some v -> v
    | None -> s.s_rest
  in
  Imap.fold
    (fun _ v acc -> Domain.join acc (smear v))
    (overlapping_cells (Imap.remove off s.s_mem) (off - 31) (off + 32))
    base

let mem_load_unknown s =
  Imap.fold (fun _ v acc -> Domain.join acc v) s.s_mem s.s_rest

(* -- joins ------------------------------------------------------------ *)

let join_astate_slow a b =
  let la = List.length a.stack and lb = List.length b.stack in
  let n = Stdlib.min la lb in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let stack = List.map2 Domain.join (take n a.stack) (take n b.stack) in
  let mem =
    Imap.merge
      (fun _ va vb ->
        match (va, vb) with
        | Some x, Some y -> Some (Domain.join x y)
        | Some x, None -> Some (Domain.join x b.mem_rest)
        | None, Some y -> Some (Domain.join a.mem_rest y)
        | None, None -> None)
      a.mem b.mem
  in
  {
    stack;
    mem;
    mem_rest = Domain.join a.mem_rest b.mem_rest;
    clipped = a.clipped || b.clipped || la <> lb;
  }

(* Fixpoint iteration re-joins and re-compares the same states many
   times; a physically-identical state (common once the widening has
   settled) answers both in O(1). *)
let join_astate a b = if a == b then a else join_astate_slow a b

let equal_astate a b =
  a == b
  || a.clipped = b.clipped
  && Domain.equal a.mem_rest b.mem_rest
  && List.length a.stack = List.length b.stack
  && List.for_all2 Domain.equal a.stack b.stack
  && Imap.equal Domain.equal a.mem b.mem

(* -- recording -------------------------------------------------------- *)

type rec_acc = {
  mutable const_reads : int list;
  mutable sym_reads : int;
  mutable r_masks : (int * U256.t) list;
  mutable r_signexts : (int * int) list;
  mutable r_byte_reads : int list;
  mutable r_copies : Summary.copy list;
  mutable r_bounds : Summary.bound_check list;
  mutable r_storage : storage_ev list;
  mutable cdsize : bool;
  mutable tainted_branches : int;
}

let fresh_acc () =
  {
    const_reads = [];
    sym_reads = 0;
    r_masks = [];
    r_signexts = [];
    r_byte_reads = [];
    r_copies = [];
    r_bounds = [];
    r_storage = [];
    cdsize = false;
    tainted_branches = 0;
  }

(* [bit_run m] decomposes a contiguous run of ones: [Some (k, w)] when
   [m = ones(w) << k]. The storage packing idioms only ever mask with
   such runs (or their complements). *)
let bit_run m =
  if U256.is_zero m then None
  else if U256.equal m U256.max_int then Some (0, 256)
  else
    let hi = U256.bits m in
    let rec lowest i = if U256.get_bit m i then i else lowest (i + 1) in
    let k = lowest 0 in
    let w = hi - k in
    if
      w < 256
      && U256.equal m (U256.shift_left (U256.sub (U256.pow2 w) U256.one) k)
    then Some (k, w)
    else None

(* -- transfer --------------------------------------------------------- *)

(* How one block ends, with the abstract operands the terminator popped. *)
type term =
  | T_fall
  | T_halt
  | T_jump of Domain.t
  | T_branch of Domain.t * Domain.t (* target, cond *)

let record_cmp acc op pc a b =
  let is_cmp =
    match op with
    | Opcode.LT | Opcode.GT | Opcode.SLT | Opcode.SGT -> true
    | _ -> false
  in
  if is_cmp then
    let note off bound =
      acc.r_bounds <-
        { Summary.pc; offset = Some off; bound } :: acc.r_bounds
    in
    match (a, b) with
    | Domain.Load off, other | other, Domain.Load off ->
      note off (Domain.to_const_int other)
    | _ -> ()

let interp_block ?acc st (b : Cfg.block) =
  let s = scratch_of st in
  let term = ref T_fall in
  let record f = match acc with Some a -> f a | None -> () in
  List.iter
    (fun { Disasm.offset = pc; op } ->
      match !term with
      | T_halt | T_jump _ | T_branch _ -> () (* terminator already seen *)
      | T_fall -> (
        match op with
        | Opcode.STOP | Opcode.RETURN | Opcode.REVERT | Opcode.INVALID
        | Opcode.SELFDESTRUCT | Opcode.UNKNOWN _ ->
          term := T_halt
        | Opcode.JUMP ->
          let t = pop s in
          term := T_jump t
        | Opcode.JUMPI ->
          let t = pop s in
          let c = pop s in
          record (fun a ->
              if Domain.tainted c then
                a.tainted_branches <- a.tainted_branches + 1);
          term := T_branch (t, c)
        | Opcode.ADD | Opcode.MUL | Opcode.SUB | Opcode.DIV | Opcode.SDIV
        | Opcode.MOD | Opcode.SMOD | Opcode.EXP | Opcode.LT | Opcode.GT
        | Opcode.SLT | Opcode.SGT | Opcode.EQ | Opcode.AND | Opcode.OR
        | Opcode.XOR | Opcode.BYTE | Opcode.SHL | Opcode.SHR | Opcode.SAR
        | Opcode.SIGNEXTEND ->
          let a = pop s in
          let b = pop s in
          record (fun r ->
              (match op with
              | Opcode.AND -> (
                match (a, b) with
                | Domain.Load off, other | other, Domain.Load off -> (
                  match Domain.to_const other with
                  | Some m -> r.r_masks <- (off, m) :: r.r_masks
                  | None -> ())
                | Domain.Sval (sl, sh), other | other, Domain.Sval (sl, sh)
                  -> (
                  (* packed storage access: a low run masks the member
                     the (already shifted) read extracts, an inverted
                     run is the write path clearing the member's lane *)
                  match Option.bind (Domain.to_const other) bit_run with
                  | Some (0, w) when w < 256 ->
                    r.r_storage <-
                      { pc; ev = Smask (sl, sh, w) } :: r.r_storage
                  | Some (k, w) when k > 0 && k + w = 256 ->
                    (* keeping only bits [k..256) clears the low lane:
                       the write path for a member at offset 0 *)
                    r.r_storage <-
                      { pc; ev = Smask (sl, 0, k) } :: r.r_storage
                  | Some _ -> ()
                  | None -> (
                    match
                      Option.bind
                        (Option.map U256.lognot (Domain.to_const other))
                        bit_run
                    with
                    | Some (k, w) when w < 256 ->
                      r.r_storage <-
                        { pc; ev = Smask (sl, k, w) } :: r.r_storage
                    | _ -> ()))
                | _ -> ())
              | Opcode.SIGNEXTEND -> (
                match (Domain.to_const_int a, b) with
                | Some k, Domain.Load off ->
                  r.r_signexts <- (off, k) :: r.r_signexts
                | _ -> ())
              | Opcode.BYTE -> (
                match b with
                | Domain.Load off ->
                  r.r_byte_reads <- off :: r.r_byte_reads
                | _ -> ())
              | _ -> ());
              record_cmp r op pc a b);
          push (Domain.lift2 op a b) s
        | Opcode.ADDMOD | Opcode.MULMOD ->
          let a = pop s in
          let b = pop s in
          let c = pop s in
          let v =
            if Domain.tainted a || Domain.tainted b || Domain.tainted c then
              Domain.Tainted
            else Domain.Untainted
          in
          push v s
        | Opcode.ISZERO | Opcode.NOT ->
          let a = pop s in
          push (Domain.lift1 op a) s
        | Opcode.SHA3 ->
          (* The hash is opaque to the executor (a free symbol), but
             its derivation is not: keccak over scratch holding
             [key . slot] is how solc addresses a mapping element, and
             keccak over a single constant word is a dynamic array's
             data base. Everything else stays [Untainted], in parity
             with the executor. *)
          let off = pop s in
          let len = pop s in
          let derived =
            match (Domain.to_const_int off, Domain.to_const_int len) with
            | Some o, Some 0x20 -> (
              match mem_load s o with
              | Domain.Consts [ c ] -> Some (Domain.Arr_of c)
              | _ -> None)
            | Some o, Some 0x40 -> (
              match mem_load s (o + 0x20) with
              | Domain.Consts [ c ] -> Some (Domain.Map_of c)
              | Domain.Slot (Domain.Map_of c | Domain.Arr_of c) ->
                (* nested mapping: keep the root declaration *)
                Some (Domain.Map_of c)
              | _ -> None)
            | _ -> None
          in
          (match derived with
          | Some sl ->
            record (fun r ->
                r.r_storage <- { pc; ev = Sderive sl } :: r.r_storage);
            push (Domain.Slot sl) s
          | None -> push Domain.Untainted s)
        | Opcode.CALLDATALOAD ->
          let loc = pop s in
          record (fun r ->
              match Domain.to_consts loc with
              | Some vs ->
                let offs = List.filter_map U256.to_int vs in
                if List.length offs = List.length vs then
                  r.const_reads <- offs @ r.const_reads
                else r.sym_reads <- r.sym_reads + 1
              | None -> r.sym_reads <- r.sym_reads + 1);
          let v =
            match Domain.to_const_int loc with
            | Some off -> Domain.Load off
            | None -> Domain.Tainted
          in
          push v s
        | Opcode.CALLDATASIZE ->
          record (fun r -> r.cdsize <- true);
          push Domain.Tainted s
        | Opcode.CALLDATACOPY ->
          let dst = pop s in
          let src = pop s in
          let len = pop s in
          record (fun r ->
              r.r_copies <-
                {
                  Summary.pc;
                  src = Domain.to_const_int src;
                  len = Domain.to_const_int len;
                }
                :: r.r_copies);
          (match (Domain.to_const_int dst, Domain.to_const_int len) with
          | Some d, Some l when l <= 0x10000 ->
            mem_store_range s d l Domain.Tainted
          | _ -> mem_store_unknown s Domain.Tainted)
        | Opcode.CODESIZE -> push Domain.Untainted s
        | Opcode.CODECOPY -> (
          let dst = pop s in
          let _ = pop s in
          let len = pop s in
          match (Domain.to_const_int dst, Domain.to_const_int len) with
          | Some d, Some l when l <= 0x10000 ->
            mem_store_range s d l Domain.Untainted
          | _ -> mem_store_unknown s Domain.Untainted)
        | Opcode.ADDRESS | Opcode.ORIGIN | Opcode.CALLER | Opcode.CALLVALUE
        | Opcode.GASPRICE | Opcode.COINBASE | Opcode.TIMESTAMP
        | Opcode.NUMBER | Opcode.PREVRANDAO | Opcode.GASLIMIT
        | Opcode.CHAINID | Opcode.SELFBALANCE | Opcode.BASEFEE
        | Opcode.RETURNDATASIZE | Opcode.MSIZE | Opcode.GAS ->
          push Domain.Untainted s
        | Opcode.BALANCE | Opcode.EXTCODESIZE | Opcode.EXTCODEHASH
        | Opcode.BLOCKHASH ->
          ignore (pop s);
          push Domain.Untainted s
        | Opcode.SLOAD ->
          let loc = pop s in
          let sl = Domain.slot_of loc in
          record (fun r ->
              r.r_storage <- { pc; ev = Sload sl } :: r.r_storage);
          let v =
            match sl with
            | Some sl -> Domain.Sval (sl, 0)
            | None -> Domain.Untainted
          in
          push v s
        | Opcode.EXTCODECOPY ->
          popn 4 s;
          mem_store_unknown s Domain.Untainted
        | Opcode.RETURNDATACOPY ->
          popn 3 s;
          mem_store_unknown s Domain.Untainted
        | Opcode.POP -> ignore (pop s)
        | Opcode.MLOAD ->
          let loc = pop s in
          let v =
            match Domain.to_const_int loc with
            | Some off -> mem_load s off
            | None -> mem_load_unknown s
          in
          push v s
        | Opcode.MSTORE -> (
          let loc = pop s in
          let v = pop s in
          match Domain.to_const_int loc with
          | Some off -> mem_store s off v
          | None -> mem_store_unknown s v)
        | Opcode.MSTORE8 -> (
          let loc = pop s in
          let v = pop s in
          match Domain.to_const_int loc with
          | Some off -> mem_store_byte s off v
          | None -> mem_store_unknown s v)
        | Opcode.SSTORE ->
          let loc = pop s in
          let v = pop s in
          record (fun r ->
              r.r_storage <-
                { pc; ev = Sstore (Domain.slot_of loc, v) } :: r.r_storage)
        | Opcode.PC -> push (Domain.of_int pc) s
        | Opcode.JUMPDEST -> ()
        | Opcode.PUSH (_, v) -> push (Domain.const v) s
        | Opcode.DUP n ->
          let v =
            match List.nth_opt s.s_stack (n - 1) with
            | Some v -> v
            | None -> underflow s
          in
          push v s
        | Opcode.SWAP n ->
          let stack = s.s_stack in
          let stack =
            if List.length stack < n + 1 then
              stack
              @ List.init
                  (n + 1 - List.length stack)
                  (fun _ -> underflow s)
            else stack
          in
          let arr = Array.of_list stack in
          let tmp = arr.(0) in
          arr.(0) <- arr.(n);
          arr.(n) <- tmp;
          s.s_stack <- Array.to_list arr
        | Opcode.LOG n -> popn (n + 2) s
        | Opcode.CREATE ->
          popn 3 s;
          push Domain.Untainted s
        | Opcode.CREATE2 ->
          popn 4 s;
          push Domain.Untainted s
        | Opcode.CALL | Opcode.CALLCODE ->
          popn 7 s;
          mem_store_unknown s Domain.Untainted;
          push Domain.Untainted s
        | Opcode.DELEGATECALL | Opcode.STATICCALL ->
          popn 6 s;
          mem_store_unknown s Domain.Untainted;
          push Domain.Untainted s))
    b.Cfg.instrs;
  (astate_of_scratch s, !term)

(* -- edges ------------------------------------------------------------ *)

let jumpdest_ok cfg start =
  match Cfg.block_at cfg start with
  | Some b -> (
    match b.Cfg.instrs with
    | { Disasm.op = Opcode.JUMPDEST; _ } :: _ -> true
    | _ -> false)
  | None -> false

(* The taken-side targets of a jump: statically resolved edges from the
   CFG plus, when the CFG says [Unresolved], whatever the abstract
   target value pins down. Returns the target starts, whether an
   [Unresolved] edge stayed unresolved, and the newly found targets. *)
let jump_edges cfg (b : Cfg.block) dom =
  let static =
    List.filter_map
      (function
        | Cfg.Jump_to t -> Some t
        | Cfg.Branch { taken; _ } -> Some taken
        | _ -> None)
      b.Cfg.succ
  in
  if not (List.mem Cfg.Unresolved b.Cfg.succ) then (static, false, [])
  else
    match Domain.to_consts dom with
    | Some vs ->
      let ts =
        List.filter (jumpdest_ok cfg) (List.filter_map U256.to_int vs)
      in
      (static @ ts, false, ts)
    | None -> (static, true, [])

let fall_edge (b : Cfg.block) =
  List.find_map
    (function
      | Cfg.Fallthrough o -> Some o
      | Cfg.Branch { fallthrough; _ } -> Some fallthrough
      | _ -> None)
    b.Cfg.succ

(* -- the fixpoint ----------------------------------------------------- *)

let analyze ?(depth = 0) ~entry cfg =
  let t0 = if Tr.enabled () then Tr.now_us () else 0. in
  let iterations = ref 0 in
  let entry_states : (int, astate) Hashtbl.t = Hashtbl.create 64 in
  let visits = Hashtbl.create 64 in
  let resolved = Hashtbl.create 8 in
  let prune = Hashtbl.create 16 in
  let unknown_jump = ref false in
  let diverged = ref false in
  let init =
    {
      stack = List.init depth (fun _ -> Domain.Untainted);
      mem = Imap.empty;
      mem_rest = Domain.Untainted;
      clipped = false;
    }
  in
  let worklist = Queue.create () in
  let propagate tgt out =
    match Hashtbl.find_opt entry_states tgt with
    | None ->
      Hashtbl.replace entry_states tgt out;
      Queue.push tgt worklist
    | Some old ->
      let joined = join_astate old out in
      if not (equal_astate joined old) then begin
        let v = Option.value ~default:0 (Hashtbl.find_opt visits tgt) in
        Hashtbl.replace visits tgt (v + 1);
        if v > max_block_visits then diverged := true
        else begin
          Hashtbl.replace entry_states tgt joined;
          Queue.push tgt worklist
        end
      end
  in
  (match Cfg.block_at cfg entry with
  | Some _ ->
    Hashtbl.replace entry_states entry init;
    Queue.push entry worklist
  | None -> unknown_jump := true);
  while not (Queue.is_empty worklist) do
    let start = Queue.pop worklist in
    incr iterations;
    match Cfg.block_at cfg start with
    | None -> ()
    | Some b ->
      let st = Hashtbl.find entry_states start in
      let out, term = interp_block st b in
      (match term with
      | T_halt -> ()
      | T_fall ->
        Option.iter (fun o -> propagate o out) (fall_edge b)
      | T_jump dom ->
        let edges, unknown, fresh = jump_edges cfg b dom in
        if unknown then unknown_jump := true;
        if fresh <> [] then begin
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt resolved b.Cfg.start)
          in
          Hashtbl.replace resolved b.Cfg.start
            (List.sort_uniq compare (fresh @ cur))
        end;
        List.iter (fun o -> propagate o out) edges
      | T_branch (tdom, cdom) ->
        let taken, unknown, fresh = jump_edges cfg b tdom in
        if unknown then unknown_jump := true;
        if fresh <> [] then begin
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt resolved b.Cfg.start)
          in
          Hashtbl.replace resolved b.Cfg.start
            (List.sort_uniq compare (fresh @ cur))
        end;
        let fall = fall_edge b in
        (match Domain.truth cdom with
        | Some true -> List.iter (fun o -> propagate o out) taken
        | Some false -> Option.iter (fun o -> propagate o out) fall
        | None ->
          List.iter (fun o -> propagate o out) taken;
          Option.iter (fun o -> propagate o out) fall))
  done;
  let converged = not !diverged in

  (* -- which blocks can still touch the call data? -------------------- *)
  let uses_calldata (b : Cfg.block) =
    List.exists
      (fun i ->
        match i.Disasm.op with
        | Opcode.CALLDATALOAD | Opcode.CALLDATACOPY | Opcode.CALLDATASIZE ->
          true
        | _ -> false)
      b.Cfg.instrs
  in
  let succ_starts (b : Cfg.block) =
    List.concat_map
      (function
        | Cfg.Fallthrough o | Cfg.Jump_to o -> [ o ]
        | Cfg.Branch { taken; fallthrough } -> [ taken; fallthrough ]
        | Cfg.Exit -> []
        | Cfg.Unresolved ->
          Option.value ~default:[] (Hashtbl.find_opt resolved b.Cfg.start))
      b.Cfg.succ
  in
  let still_unresolved (b : Cfg.block) =
    List.mem Cfg.Unresolved b.Cfg.succ
    && Hashtbl.find_opt resolved b.Cfg.start = None
  in
  let relevant = Hashtbl.create 64 in
  Cfg.iter_blocks
    (fun b ->
      if uses_calldata b || still_unresolved b then
        Hashtbl.replace relevant b.Cfg.start ())
    cfg;
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_blocks
      (fun b ->
        if not (Hashtbl.mem relevant b.Cfg.start) then
          if List.exists (Hashtbl.mem relevant) (succ_starts b) then begin
            Hashtbl.replace relevant b.Cfg.start ();
            changed := true
          end)
      cfg
  done;

  (* -- recording pass over the reached blocks ------------------------- *)
  let acc = fresh_acc () in
  let clean st =
    (not st.clipped)
    && (not (Domain.tainted st.mem_rest))
    && List.for_all (fun v -> not (Domain.tainted v)) st.stack
    && Imap.for_all (fun _ v -> not (Domain.tainted v)) st.mem
  in
  Hashtbl.iter
    (fun start st ->
      match Cfg.block_at cfg start with
      | None -> ()
      | Some b -> (
        let out, term = interp_block ~acc st b in
        match term with
        | T_branch (tdom, cdom) when converged -> (
          let taken, unknown, _ = jump_edges cfg b tdom in
          let fall = fall_edge b in
          let pc =
            match List.rev b.Cfg.instrs with
            | { Disasm.offset; _ } :: _ -> offset
            | [] -> start
          in
          match Domain.truth cdom with
          | Some true when taken <> [] && not unknown ->
            Hashtbl.replace prune pc Take_jump
          | Some false when fall <> None ->
            Hashtbl.replace prune pc Take_fallthrough
          | Some _ -> ()
          | None ->
            if
              (not (Domain.tainted cdom))
              && clean out && not unknown
              && taken <> [] && fall <> None
            then begin
              let taken_rel = List.exists (Hashtbl.mem relevant) taken in
              let fall_rel =
                match fall with
                | Some o -> Hashtbl.mem relevant o
                | None -> false
              in
              match (taken_rel, fall_rel) with
              | true, true -> ()
              | true, false -> Hashtbl.replace prune pc Take_jump
              | false, _ -> Hashtbl.replace prune pc Take_fallthrough
            end)
        | _ -> ()))
    entry_states;
  let complete = converged && not !unknown_jump in
  let summary =
    {
      Summary.entry;
      const_reads = List.sort_uniq compare acc.const_reads;
      sym_reads = acc.sym_reads;
      masks = List.sort_uniq compare acc.r_masks;
      signexts = List.sort_uniq compare acc.r_signexts;
      byte_reads = List.sort_uniq compare acc.r_byte_reads;
      copies = List.sort_uniq compare acc.r_copies;
      bound_checks = List.sort_uniq compare acc.r_bounds;
      uses_cdsize = acc.cdsize;
      tainted_branches = acc.tainted_branches;
      complete;
    }
  in
  (* The recording pass iterates a hash table, so impose a canonical
     order on the storage events; each pc yields at most one event per
     run, making this a total order. *)
  let storage =
    let slot_key = function
      | None -> "?"
      | Some s -> Format.asprintf "%a" Domain.pp_slot s
    in
    let key e =
      match e.ev with
      | Sload sl -> (e.pc, 0, slot_key sl, 0, 0)
      | Sstore (sl, _) -> (e.pc, 1, slot_key sl, 0, 0)
      | Sderive sl -> (e.pc, 2, slot_key (Some sl), 0, 0)
      | Smask (sl, k, w) -> (e.pc, 3, slot_key (Some sl), k, w)
    in
    List.sort (fun a b -> compare (key a) (key b)) acc.r_storage
  in
  (* a diverged analysis has no business steering the executor *)
  if not converged then Hashtbl.reset prune;
  if Tr.enabled () then
    Tr.complete Tr.Absint "fixpoint" ~t0_us:t0
      [
        ("entry", Tr.Int entry);
        ("iterations", Tr.Int !iterations);
        ("resolved_jumps", Tr.Int (Hashtbl.length resolved));
        ("unresolved", Tr.Bool !unknown_jump);
        ("converged", Tr.Bool converged);
      ];
  { cfg; entry; entry_states; resolved; summary; storage; prune; converged }

let reached t start = Hashtbl.mem t.entry_states start

let prune_decision t pc = Hashtbl.find_opt t.prune pc

let resolved_targets t start =
  Option.value ~default:[] (Hashtbl.find_opt t.resolved start)

let resolved_count t = Hashtbl.length t.resolved

let resolved_cfg t =
  if Hashtbl.length t.resolved = 0 then t.cfg
  else Cfg.resolve t.cfg (resolved_targets t)
