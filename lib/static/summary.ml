open Evm

type copy = { pc : int; src : int option; len : int option }
type bound_check = { pc : int; offset : int option; bound : int option }

type t = {
  entry : int;
  const_reads : int list;
  sym_reads : int;
  masks : (int * U256.t) list;
  signexts : (int * int) list;
  byte_reads : int list;
  copies : copy list;
  bound_checks : bound_check list;
  uses_cdsize : bool;
  tainted_branches : int;
  complete : bool;
}

let empty entry =
  {
    entry;
    const_reads = [];
    sym_reads = 0;
    masks = [];
    signexts = [];
    byte_reads = [];
    copies = [];
    bound_checks = [];
    uses_cdsize = false;
    tainted_branches = 0;
    complete = true;
  }

let masks_at t off =
  List.filter_map (fun (o, m) -> if o = off then Some m else None) t.masks

let signexts_at t off =
  List.filter_map (fun (o, k) -> if o = off then Some k else None) t.signexts

let reads_offset t off = List.mem off t.const_reads

let max_head_read t =
  List.fold_left Stdlib.max (-1)
    (List.filter (fun o -> o >= 4) t.const_reads)

let pp fmt t =
  Format.fprintf fmt "@[<v>entry %04x%s@," t.entry
    (if t.complete then "" else " (incomplete)");
  Format.fprintf fmt "reads: [%s]%s@,"
    (String.concat "; " (List.map string_of_int t.const_reads))
    (if t.sym_reads > 0 then Printf.sprintf " + %d symbolic" t.sym_reads
     else "");
  List.iter
    (fun (o, m) ->
      Format.fprintf fmt "mask @%d: 0x%s@," o (U256.to_hex m))
    t.masks;
  List.iter
    (fun (o, k) -> Format.fprintf fmt "signext @%d: byte %d@," o k)
    t.signexts;
  List.iter
    (fun (c : copy) ->
      Format.fprintf fmt "copy @%04x src=%s len=%s@," c.pc
        (match c.src with Some s -> string_of_int s | None -> "?")
        (match c.len with Some l -> string_of_int l | None -> "?"))
    t.copies;
  List.iter
    (fun b ->
      Format.fprintf fmt "bound @%04x: cd[%s] < %s@," b.pc
        (match b.offset with Some o -> string_of_int o | None -> "?")
        (match b.bound with Some n -> string_of_int n | None -> "?"))
    t.bound_checks;
  if t.uses_cdsize then Format.fprintf fmt "reads CALLDATASIZE@,";
  if t.tainted_branches > 0 then
    Format.fprintf fmt "calldata-dependent branches: %d@,"
      t.tainted_branches;
  Format.fprintf fmt "@]"
