(** Fixpoint abstract interpretation over {!Evm.Cfg} with the
    constant/taint domain of {!Domain}.

    One [analyze] run does three jobs at once:

    - {b jump resolution}: a cross-block pushed target (or one split
      across arithmetic by an obfuscator) reaches its JUMP as a
      [Consts] value; the discovered edges are collected in [resolved]
      and can be folded back into the CFG with {!resolved_cfg},
      shrinking [Unresolved] successors;
    - {b access summaries}: a second, recording pass over the converged
      states fills a {!Summary.t} — constant read offsets, masks,
      sign-extensions, copy ranges and bound checks — without any
      symbolic execution;
    - {b fork pruning}: every JUMPI whose condition is provably
      calldata-independent, in a state with no call-data-derived value
      live, and with at most one calldata-relevant arm gets a
      {!decision} the executor can follow instead of forking.

    The interpreter never unrolls loops: joined counters widen through
    the bounded constant set to [Untainted], so convergence is by
    lattice height, with a per-block visit bound as a backstop (a run
    that trips it reports [converged = false], drops its prune table,
    and marks its summary incomplete). *)

module Imap : Map.S with type key = int

type astate = {
  stack : Domain.t list;       (** top first *)
  mem : Domain.t Imap.t;       (** words stored at constant offsets *)
  mem_rest : Domain.t;         (** everything else *)
  clipped : bool;              (** stack depths disagreed at a join *)
}

type decision =
  | Take_jump          (** only the taken arm matters *)
  | Take_fallthrough   (** only the fall-through arm matters *)

(** Storage traffic observed by the recording pass, in canonical
    (pc-major) order. [Smask (slot, k, w)] is packed-member evidence:
    a mask isolating bits [k, k+w) of the word at [slot], fired by both
    the shifted-read and the clear-before-write idioms. *)
type storage_ev = { pc : int; ev : storage_kind }

and storage_kind =
  | Sload of Domain.slot option     (** [None]: address not resolved *)
  | Sstore of Domain.slot option * Domain.t  (** address, stored value *)
  | Sderive of Domain.slot          (** SHA3 produced this derivation *)
  | Smask of Domain.slot * int * int

type result = {
  cfg : Evm.Cfg.t;                          (** the graph analyzed *)
  entry : int;
  entry_states : (int, astate) Hashtbl.t;   (** per reached block *)
  resolved : (int, int list) Hashtbl.t;
      (** block start -> jump targets found for its [Unresolved] edge *)
  summary : Summary.t;
  storage : storage_ev list;                (** SSTORE/SLOAD/SHA3 traffic *)
  prune : (int, decision) Hashtbl.t;        (** JUMPI pc -> arm to keep *)
  converged : bool;
}

val analyze : ?depth:int -> entry:int -> Evm.Cfg.t -> result
(** [analyze ~entry cfg] runs to fixpoint from [entry]. [depth] is the
    number of opaque (untainted) values on the stack at entry — 0 for
    the contract entry point, 1 for a dispatcher-routed function body,
    matching the selector residue the executor models as a free
    symbol. *)

val reached : result -> int -> bool
(** Whether the block at this start was reached from [entry]. *)

val prune_decision : result -> int -> decision option
val resolved_targets : result -> int -> int list
val resolved_count : result -> int
(** Number of blocks whose [Unresolved] edge gained targets. *)

val resolved_cfg : result -> Evm.Cfg.t
(** The input CFG with every resolved [Unresolved] edge replaced by
    the discovered [Jump_to] edges. *)
