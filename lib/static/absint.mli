(** Fixpoint abstract interpretation over {!Evm.Cfg} with the
    constant/taint domain of {!Domain}.

    One [analyze] run does three jobs at once:

    - {b jump resolution}: a cross-block pushed target (or one split
      across arithmetic by an obfuscator) reaches its JUMP as a
      [Consts] value; the discovered edges are collected in [resolved]
      and can be folded back into the CFG with {!resolved_cfg},
      shrinking [Unresolved] successors;
    - {b access summaries}: a second, recording pass over the converged
      states fills a {!Summary.t} — constant read offsets, masks,
      sign-extensions, copy ranges and bound checks — without any
      symbolic execution;
    - {b fork pruning}: every JUMPI whose condition is provably
      calldata-independent, in a state with no call-data-derived value
      live, and with at most one calldata-relevant arm gets a
      {!decision} the executor can follow instead of forking.

    The interpreter never unrolls loops: joined counters widen through
    the bounded constant set to [Untainted], so convergence is by
    lattice height, with a per-block visit bound as a backstop (a run
    that trips it reports [converged = false], drops its prune table,
    and marks its summary incomplete). *)

module Imap : Map.S with type key = int

type astate = {
  stack : Domain.t list;       (** top first *)
  mem : Domain.t Imap.t;       (** words stored at constant offsets *)
  mem_rest : Domain.t;         (** everything else *)
  clipped : bool;              (** stack depths disagreed at a join *)
}

type decision =
  | Take_jump          (** only the taken arm matters *)
  | Take_fallthrough   (** only the fall-through arm matters *)

type result = {
  cfg : Evm.Cfg.t;                          (** the graph analyzed *)
  entry : int;
  entry_states : (int, astate) Hashtbl.t;   (** per reached block *)
  resolved : (int, int list) Hashtbl.t;
      (** block start -> jump targets found for its [Unresolved] edge *)
  summary : Summary.t;
  prune : (int, decision) Hashtbl.t;        (** JUMPI pc -> arm to keep *)
  converged : bool;
}

val analyze : ?depth:int -> entry:int -> Evm.Cfg.t -> result
(** [analyze ~entry cfg] runs to fixpoint from [entry]. [depth] is the
    number of opaque (untainted) values on the stack at entry — 0 for
    the contract entry point, 1 for a dispatcher-routed function body,
    matching the selector residue the executor models as a free
    symbol. *)

val reached : result -> int -> bool
(** Whether the block at this start was reached from [entry]. *)

val prune_decision : result -> int -> decision option
val resolved_targets : result -> int -> int list
val resolved_count : result -> int
(** Number of blocks whose [Unresolved] edge gained targets. *)

val resolved_cfg : result -> Evm.Cfg.t
(** The input CFG with every resolved [Unresolved] edge replaced by
    the discovered [Jump_to] edges. *)
