(** Storage-layout recovery: a second product of the same abstract
    interpretation that resolves jumps and summarises calldata access.

    The pass classifies every base slot the contract's SSTORE/SLOAD
    traffic touches:

    - a slot addressed only by a constant is a {!Word} (one full-width
      variable), unless mask evidence — [SLOAD; SHR k; AND ones(w)]
      reads or [AND ~(ones(w) << k)] write clears — shows sub-word
      members, in which case it is {!Packed};
    - a slot whose keccak([key . slot]) derivation flows to a storage
      op is a {!Mapping};
    - a slot whose keccak([slot]) derivation does is a {!Dyn_array}
      (the word at the slot itself being the length).

    Derivations are tracked through {!Sigrec_static.Domain.Slot}
    values, so index arithmetic over an array's data base does not
    widen the classification away. *)

type member = { bit_offset : int; bit_width : int }

type decl =
  | Word                   (** one full-width value *)
  | Packed of member list  (** sub-word members, offset-sorted *)
  | Mapping
  | Dyn_array

type entry = {
  slot : Evm.U256.t;
  decl : decl;
  reads : int;   (** SLOADs attributed to the slot *)
  writes : int;  (** SSTOREs attributed to the slot *)
}

type t = {
  entries : entry list;  (** slot-sorted *)
  unknown_ops : int;     (** storage ops whose address stayed opaque *)
  total_ops : int;
  complete : bool;       (** the underlying fixpoint converged fully *)
}

val recover : string -> t
(** [recover code] lifts the runtime bytecode, resolves jumps with a
    whole-contract fixpoint, and classifies its storage traffic.
    Emits a [Layout] trace span when tracing is enabled. *)

val of_cfg : Evm.Cfg.t -> t
val of_result : Sigrec_static.Absint.result -> t
(** Classification only, over an already-run whole-contract fixpoint. *)

val equal_shape : t -> t -> bool
(** Same declared slots with the same types; access counts and
    precision counters are not compared. *)

val equal_decl : decl -> decl -> bool
val decl_to_string : decl -> string
val pp : Format.formatter -> t -> unit
