open Evm
module Absint = Sigrec_static.Absint
module Domain = Sigrec_static.Domain
module Tr = Sigrec_trace.Trace

type member = { bit_offset : int; bit_width : int }

type decl =
  | Word
  | Packed of member list
  | Mapping
  | Dyn_array

type entry = { slot : U256.t; decl : decl; reads : int; writes : int }

type t = {
  entries : entry list;
  unknown_ops : int;
  total_ops : int;
  complete : bool;
}

(* -- classification ---------------------------------------------------- *)

type info = {
  slot : U256.t;
  mutable map : bool;
  mutable arr : bool;
  mutable members : (int * int) list;
  mutable reads : int;
  mutable writes : int;
}

(* Evidence priority per base slot: a keccak derivation outranks
   everything (the word at a mapping/array slot is the declaration
   itself — for arrays, its length), mask evidence outranks the
   full-word default. *)
(* The write path for a lane ending at bit 256 clears with a low-run
   keep mask — which spans every lane below it and so records one
   composite "member". Drop any member that is exactly a concatenation
   of other recorded members: real lanes never overlap, so a covered
   span can only be such a keep-mask artefact. *)
let drop_composites ms =
  let rec covers pos (k, w) =
    pos = k + w
    || List.exists
         (fun (k', w') ->
           k' = pos
           && not (k' = k && w' = w)
           && pos + w' <= k + w
           && covers (pos + w') (k, w))
         ms
  in
  List.filter (fun (k, w) -> not (covers k (k, w))) ms

let decl_of info =
  if info.map then Mapping
  else if info.arr then Dyn_array
  else
    match drop_composites (List.sort_uniq compare info.members) with
    | [] -> Word
    | ms ->
      Packed
        (List.map (fun (bit_offset, bit_width) -> { bit_offset; bit_width }) ms)

let of_result (r : Absint.result) =
  let infos : (string, info) Hashtbl.t = Hashtbl.create 16 in
  let info c =
    let key = U256.to_bytes_be c in
    match Hashtbl.find_opt infos key with
    | Some i -> i
    | None ->
      let i =
        { slot = c; map = false; arr = false; members = []; reads = 0;
          writes = 0 }
      in
      Hashtbl.replace infos key i;
      i
  in
  let unknown = ref 0 in
  let total = ref 0 in
  let derive = function
    | Domain.Fixed _ -> ()
    | Domain.Map_of c -> (info c).map <- true
    | Domain.Arr_of c -> (info c).arr <- true
  in
  let base = function
    | Domain.Fixed c | Domain.Map_of c | Domain.Arr_of c -> c
  in
  List.iter
    (fun { Absint.ev; _ } ->
      match ev with
      | Absint.Sload sl ->
        incr total;
        (match sl with
        | None -> incr unknown
        | Some sl ->
          derive sl;
          let i = info (base sl) in
          i.reads <- i.reads + 1)
      | Absint.Sstore (sl, _) ->
        incr total;
        (match sl with
        | None -> incr unknown
        | Some sl ->
          derive sl;
          let i = info (base sl) in
          i.writes <- i.writes + 1)
      | Absint.Sderive sl -> derive sl
      | Absint.Smask (sl, k, w) -> (
        match sl with
        | Domain.Fixed c ->
          let i = info c in
          i.members <- (k, w) :: i.members
        | Domain.Map_of _ | Domain.Arr_of _ ->
          (* value-type detail of a mapping/array element: outside the
             slot-layout model *)
          ()))
    r.Absint.storage;
  let entries =
    Hashtbl.fold
      (fun _ i acc ->
        ({ slot = i.slot; decl = decl_of i; reads = i.reads;
           writes = i.writes }
          : entry)
        :: acc)
      infos []
    |> List.sort (fun (a : entry) (b : entry) -> U256.compare a.slot b.slot)
  in
  {
    entries;
    unknown_ops = !unknown;
    total_ops = !total;
    complete = r.Absint.summary.Sigrec_static.Summary.complete;
  }

(* -- driving the fixpoint ---------------------------------------------- *)

let of_cfg cfg =
  (* Mirror the signature engine's lifting discipline: one
     whole-contract run resolves pushed cross-block jump targets, a
     second run over the resolved graph reaches the code behind them
     with full precision. *)
  let r0 = Absint.analyze ~depth:0 ~entry:0 cfg in
  let r =
    if Absint.resolved_count r0 > 0 then
      Absint.analyze ~depth:0 ~entry:0 (Absint.resolved_cfg r0)
    else r0
  in
  of_result r

let recover code =
  let t0_us = if Tr.enabled () then Tr.now_us () else 0. in
  let layout = of_cfg (Cfg.build code) in
  if Tr.enabled () then
    Tr.complete Tr.Layout "storage_pass" ~t0_us
      [
        ("bytes", Tr.Int (String.length code));
        ("slots", Tr.Int (List.length layout.entries));
        ("storage_ops", Tr.Int layout.total_ops);
        ("unknown_ops", Tr.Int layout.unknown_ops);
        ("complete", Tr.Bool layout.complete);
      ];
  layout

(* -- comparison and rendering ------------------------------------------ *)

let equal_decl a b =
  match (a, b) with
  | Word, Word | Mapping, Mapping | Dyn_array, Dyn_array -> true
  | Packed xs, Packed ys -> xs = ys
  | _ -> false

(* Shape equality is what the oracles compare: the declared slots and
   their types, not how often the sampled code happened to touch them. *)
let equal_shape a b =
  List.length a.entries = List.length b.entries
  && List.for_all2
       (fun (x : entry) (y : entry) ->
         U256.equal x.slot y.slot && equal_decl x.decl y.decl)
       a.entries b.entries

let decl_to_string = function
  | Word -> "word"
  | Packed ms ->
    Printf.sprintf "packed(%s)"
      (String.concat ","
         (List.map
            (fun m -> Printf.sprintf "%d:%d" m.bit_offset m.bit_width)
            ms))
  | Mapping -> "mapping"
  | Dyn_array -> "dynamic-array"

let pp fmt t =
  Format.fprintf fmt "@[<v>storage layout: %d slot%s%s@,"
    (List.length t.entries)
    (if List.length t.entries = 1 then "" else "s")
    (if t.complete then "" else " (incomplete analysis)");
  List.iter
    (fun (e : entry) ->
      Format.fprintf fmt "  slot 0x%s: %-14s reads %d writes %d@,"
        (U256.to_hex e.slot) (decl_to_string e.decl) e.reads e.writes)
    t.entries;
  if t.unknown_ops > 0 then
    Format.fprintf fmt "  unresolved storage operations: %d/%d@,"
      t.unknown_ops t.total_ops;
  Format.fprintf fmt "@]"
