type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

let int_toward target n =
  if n = target then Seq.empty
  else
    let rec aux delta () =
      if delta = 0 then Seq.Nil
      else Seq.Cons (n - delta, aux (if abs delta = 1 then 0 else delta / 2))
    in
    aux (n - target)

let list_drop_one l =
  let rec aux prefix = function
    | [] -> Seq.empty
    | x :: tl ->
      fun () -> Seq.Cons (List.rev_append prefix tl, aux (x :: prefix) tl)
  in
  aux [] l

let list_elems shrink_elem l =
  let rec aux prefix = function
    | [] -> Seq.empty
    | x :: tl ->
      Seq.append
        (Seq.map (fun x' -> List.rev_append prefix (x' :: tl)) (shrink_elem x))
        (fun () -> aux (x :: prefix) tl ())
  in
  aux [] l

let list ?(min_length = 0) shrink_elem l =
  let drops =
    if List.length l > min_length then list_drop_one l else Seq.empty
  in
  Seq.append drops (list_elems shrink_elem l)

let append = Seq.append
let of_list l _ = List.to_seq l
