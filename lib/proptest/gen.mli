(** Sized, seeded generators — the QuickCheck-style generation half of
    the property harness (stdlib only, no external dependencies).

    A generator is a function of an explicit [Random.State.t] and a
    size bound. Everything is deterministic in the state: running the
    same generator twice on states made from the same seed yields the
    same value, which is what makes failures replayable. The size
    parameter lets the runner ramp from small cases (cheap, good for
    smoking out trivial bugs) to large ones over the course of a run. *)

type 'a t = Random.State.t -> int -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val bool : bool t

val int_range : int -> int -> int t
(** [int_range lo hi] draws uniformly from the inclusive range. *)

val oneofl : 'a list -> 'a t
val oneof : 'a t list -> 'a t

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice between generators — how the signature generators
    encode the corpus type-frequency shape. *)

val frequencyl : (int * 'a) list -> 'a t

val list_n : int -> 'a t -> 'a list t
(** Fixed-length list; elements are generated left to right (the order
    random state is consumed in is part of the replay contract). *)

val list_size : int t -> 'a t -> 'a list t
val sized : (int -> 'a t) -> 'a t
val with_size : int -> 'a t -> 'a t

val state : Random.State.t t
(** The raw random state, for bridging to external seeded generators
    ([Abi.Valgen], [Solc.Corpus.random_type]). *)

val init_in_order : int -> (int -> 'a) -> 'a list
(** [List.init] with a guaranteed left-to-right application order. *)

val run : ?size:int -> seed:int array -> 'a t -> 'a
(** One-shot generation from a fresh seeded state (size defaults 10). *)
