type 'a t = Random.State.t -> int -> 'a

(* List.init's application order is unspecified; generators must consume
   the random state in a fixed order or replay breaks. *)
let init_in_order n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let return x _ _ = x
let map f g rng size = f (g rng size)

let map2 f a b rng size =
  let x = a rng size in
  let y = b rng size in
  f x y

let bind g f rng size = f (g rng size) rng size

let pair a b rng size =
  let x = a rng size in
  let y = b rng size in
  (x, y)

let bool rng _ = Random.State.bool rng

let int_range lo hi rng _ =
  if hi < lo then invalid_arg "Gen.int_range: empty range";
  lo + Random.State.int rng (hi - lo + 1)

let oneofl xs rng _ =
  match xs with
  | [] -> invalid_arg "Gen.oneofl: empty list"
  | _ -> List.nth xs (Random.State.int rng (List.length xs))

let oneof gs rng size =
  match gs with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ -> (List.nth gs (Random.State.int rng (List.length gs))) rng size

let total_weight ws =
  let t = List.fold_left (fun acc (w, _) -> acc + w) 0 ws in
  if t <= 0 then invalid_arg "Gen.frequency: weights must sum to > 0";
  t

let pick_weighted ws roll =
  let rec go acc = function
    | [] -> invalid_arg "Gen.frequency: internal"
    | (w, x) :: tl -> if roll < acc + w then x else go (acc + w) tl
  in
  go 0 ws

let frequency ws rng size =
  (pick_weighted ws (Random.State.int rng (total_weight ws))) rng size

let frequencyl ws rng _ = pick_weighted ws (Random.State.int rng (total_weight ws))
let list_n n g rng size = init_in_order n (fun _ -> g rng size)

let list_size ng g rng size =
  let n = ng rng size in
  init_in_order n (fun _ -> g rng size)

let sized f rng size = f size rng size
let with_size n g rng _ = g rng n
let state rng _ = rng
let run ?(size = 10) ~seed g = g (Random.State.make seed) size
