(** Deterministic property runner with replayable seeds and integrated
    shrinking.

    Every case [i] of a run draws from a fresh
    [Random.State.make [| seed; i |]], so a failure is pinned by
    [(seed, case_index)] alone and an entire run is pinned by the seed.
    The seed defaults to a fixed constant — CI is reproducible by
    default — and can be overridden with the [PROPTEST_SEED]
    environment variable; [PROPTEST_ITERS] multiplies every property's
    case count (the longer-iteration CI job on main sets it). On
    failure, {!report} includes the exact replay command line. *)

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  show : 'a -> string;
}

val make :
  ?shrink:'a Shrink.t -> ?show:('a -> string) -> 'a Gen.t -> 'a arbitrary

type 'a counterexample = {
  name : string;
  seed : int;
  case_index : int;    (** the failing case — replay with [(seed, i)] *)
  cases_run : int;
  original : 'a;
  original_error : string;
  minimal : 'a;        (** the shrunk counterexample; still fails *)
  minimal_error : string;
  shrink_steps : int;
  candidates_tried : int;
}

type 'a result = Pass of { cases : int; seed : int } | Fail of 'a counterexample

val default_seed : unit -> int
(** [PROPTEST_SEED] when set, otherwise the pinned CI seed. *)

val multiplier : unit -> int
(** [PROPTEST_ITERS] when set (>= 1), otherwise 1. *)

val run :
  ?seed:int ->
  ?count:int ->
  ?max_size:int ->
  ?max_shrink_steps:int ->
  ?max_candidates:int ->
  name:string ->
  'a arbitrary ->
  ('a -> (unit, string) Stdlib.result) ->
  'a result
(** [run ~name arb prop] generates [count * multiplier ()] cases with
    sizes ramping from 1 to [max_size]; on the first failure it shrinks
    greedily ([max_shrink_steps] accepted steps, examining at most
    [max_candidates] passing candidates per level) and reports the
    minimal counterexample. Exceptions raised by [prop] count as
    failures. Deterministic in [seed]. *)

val report : 'a arbitrary -> 'a result -> string
(** Human-readable summary; for failures it includes the original and
    minimal counterexamples, both errors, and the replay command. *)

val is_pass : 'a result -> bool
