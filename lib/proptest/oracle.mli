(** The four oracle families of the property harness, each phrased as a
    property over generated {!Sig_gen.case}s (or ABI value vectors):

    - {!round_trip} — [fn_spec -> bytecode -> recover] must reproduce
      the ground truth exactly, except for the paper's documented §5.2
      inaccuracy cases ({!Solc.Corpus.expected_failure}) and for
      obfuscated code, where only the dispatcher selector set is pinned;
    - {!drift} — recovery output must be byte-identical across
      [jobs=1]/[jobs=4], static pruning on/off, and cold/warm cache;
    - {!abi_round_trip} — [Encode] then [Decode] is the identity on
      [Valgen]-generated well-typed values;
    - {!differential} — the TASE recovery and the abstract-interpretation
      summaries must produce zero {!Sigrec.Lint} disagreements.

    {!rule_gate} turns accumulated {!Sigrec.Stats} rule counters into a
    regression gate: every one of R1-R31 must have fired. *)

val round_trip :
  ?stats:Sigrec.Stats.t ->
  ?config:Sigrec.Rules.config ->
  Sig_gen.case ->
  (unit, string) result

val layout_round_trip : Sig_gen.case -> (unit, string) result
(** [svar list -> bytecode -> Layout.recover] must reproduce the
    declared storage layout exactly — slots, kinds, and packed lane
    boundaries — with the analysis complete and zero unresolved
    storage ops. Junk insertion and constant splitting are folded away
    by the abstract domain, so the property holds at every obfuscation
    level the generator emits. *)

val drift : Sig_gen.case list -> (unit, string) result

type abi_case = {
  tys : Abi.Abity.t list;
  vals : Abi.Value.t list;
  selector : string;
}

val abi_round_trip : abi_case -> (unit, string) result
val differential : ?stats:Sigrec.Stats.t -> Sig_gen.case -> (unit, string) result

val classify_round_trip : Sig_gen.token_case -> (unit, string) result
(** Token-standard classification against the generated ground truth: a
    clean {!Sig_gen.token_case} must classify exactly as its standard;
    a drop-one-required mutant must demote to ["<standard> (partial)"]
    — never exact, for any standard — with exactly the dropped member
    reported missing. *)

val rule_gate : Sigrec.Stats.t -> (unit, string) result
(** [Ok] iff all 31 rules fired at least once ({!Sigrec.Stats.unexercised}). *)

val render : Sigrec.Engine.report list -> string
(** Canonical rendering used by the drift comparisons ([from_cache]
    normalized away). *)

val arb_case : Sig_gen.case Prop.arbitrary
val arb_batch : Sig_gen.case list Prop.arbitrary
val arb_abi : abi_case Prop.arbitrary
val arb_token : Sig_gen.token_case Prop.arbitrary
