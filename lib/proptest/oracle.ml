open Abi

(* -- round trip --------------------------------------------------------- *)

let type_list tys = String.concat "," (List.map Abity.to_string tys)

let selector_set fns =
  List.sort_uniq compare
    (List.map (fun (fn : Solc.Lang.fn_spec) ->
         Funsig.selector fn.Solc.Lang.fsig)
       fns)

let recovered_selector_set recs =
  List.sort_uniq compare
    (List.map (fun (r : Sigrec.Recover.recovered) -> r.Sigrec.Recover.selector)
       recs)

let round_trip ?stats ?config (c : Sig_gen.case) =
  let code = Sig_gen.compile c in
  let recovered = Sigrec.Recover.recover ?stats ?config code in
  if c.Sig_gen.obf_level > 0 then
    (* Obfuscated code: TASE survives junk insertion and constant
       splitting almost but not quite exactly (spurious bound-check
       guards can inflate an array dimension), so the oracle only pins
       what must hold: every dispatcher entry is still found, no entry
       is invented. *)
    if recovered_selector_set recovered = selector_set c.Sig_gen.fns then
      Ok ()
    else
      Error
        (Printf.sprintf "obfuscated (level %d): selector set changed, got [%s]"
           c.Sig_gen.obf_level
           (String.concat ";"
              (List.map
                 (fun (r : Sigrec.Recover.recovered) -> r.Sigrec.Recover.selector_hex)
                 recovered)))
  else begin
    (* one dispatcher entry per declared function, none invented *)
    if List.length recovered <> List.length c.Sig_gen.fns then
      Error
        (Printf.sprintf "%d functions declared but %d entries recovered"
           (List.length c.Sig_gen.fns) (List.length recovered))
    else
      let check_fn (fn : Solc.Lang.fn_spec) =
        let fsig = fn.Solc.Lang.fsig in
        let sample =
          { Solc.Corpus.fn; version = c.Sig_gen.version; code }
        in
        match
          List.find_opt
            (fun (r : Sigrec.Recover.recovered) ->
              r.Sigrec.Recover.selector = Funsig.selector fsig)
            recovered
        with
        | None ->
          if Solc.Corpus.expected_failure sample then Ok ()
          else
            Error
              (Printf.sprintf "%s: selector not recovered"
                 (Funsig.canonical fsig))
        | Some r ->
          let exact =
            List.length r.Sigrec.Recover.params
              = List.length fsig.Funsig.params
            && List.for_all2 Abity.equal r.Sigrec.Recover.params
                 fsig.Funsig.params
          in
          if exact || Solc.Corpus.expected_failure sample then Ok ()
          else
            Error
              (Printf.sprintf "%s: recovered (%s)" (Funsig.canonical fsig)
                 (type_list r.Sigrec.Recover.params))
      in
      let rec first_error = function
        | [] -> Ok ()
        | fn :: tl -> (
          match check_fn fn with Ok () -> first_error tl | e -> e)
      in
      first_error c.Sig_gen.fns
  end

(* -- storage-layout round trip ------------------------------------------ *)

module Layout = Sigrec_layout.Layout

let expected_layout_decl (v : Solc.Lang.svar) =
  match v.Solc.Lang.kind with
  | Solc.Lang.Svalue [ 256 ] -> Layout.Word
  | Solc.Lang.Svalue widths ->
    let lanes = Option.get (Solc.Storage.truth_members widths) in
    Layout.Packed
      (List.map
         (fun (bit_offset, bit_width) -> { Layout.bit_offset; bit_width })
         lanes)
  | Solc.Lang.Smapping -> Layout.Mapping
  | Solc.Lang.Sarray -> Layout.Dyn_array

let show_layout_shape shape =
  String.concat "; "
    (List.map
       (fun (slot, decl) ->
         Printf.sprintf "0x%s:%s"
           (Evm.U256.to_hex slot)
           (Layout.decl_to_string decl))
       shape)

let layout_round_trip (c : Sig_gen.case) =
  let code = Sig_gen.compile c in
  let layout = Layout.recover code in
  let want =
    List.sort
      (fun (a, _) (b, _) -> Evm.U256.compare a b)
      (List.map
         (fun (v : Solc.Lang.svar) ->
           (Evm.U256.of_int v.Solc.Lang.slot, expected_layout_decl v))
         c.Sig_gen.svars)
  in
  let got =
    List.map (fun (e : Layout.entry) -> (e.Layout.slot, e.Layout.decl))
      layout.Layout.entries
  in
  if not layout.Layout.complete then Error "layout analysis incomplete"
  else if layout.Layout.unknown_ops > 0 then
    Error
      (Printf.sprintf "%d storage ops left unresolved" layout.Layout.unknown_ops)
  else if show_layout_shape got <> show_layout_shape want then
    Error
      (Printf.sprintf "layout changed: declared [%s], recovered [%s]"
         (show_layout_shape want) (show_layout_shape got))
  else Ok ()

(* -- drift -------------------------------------------------------------- *)

let render reports =
  String.concat "\n"
    (List.map
       (fun r ->
         Format.asprintf "%a" Sigrec.Engine.pp_report
           { r with Sigrec.Engine.from_cache = false })
       reports)

let drift (cases : Sig_gen.case list) =
  let codes = List.map Sig_gen.compile cases in
  let engine ?(jobs = 1) ?(static_prune = true) () =
    Sigrec.Engine.make
      Sigrec.Engine.Config.(
        default |> with_jobs jobs |> with_static_prune static_prune)
  in
  let base = render (Sigrec.Engine.recover_all (engine ()) codes) in
  let legs =
    [
      ( "jobs=4",
        fun () -> Sigrec.Engine.recover_all (engine ~jobs:4 ()) codes );
      ( "static_prune=false",
        fun () ->
          Sigrec.Engine.recover_all (engine ~static_prune:false ()) codes );
      ( "warm cache",
        fun () ->
          let e = engine ~jobs:2 () in
          let _ = Sigrec.Engine.recover_all e codes in
          Sigrec.Engine.recover_all e codes );
    ]
  in
  let rec check = function
    | [] -> Ok ()
    | (leg, run) :: tl ->
      if render (run ()) = base then check tl
      else Error (Printf.sprintf "recovery output drifted under %s" leg)
  in
  check legs

(* -- ABI encode/decode round trip --------------------------------------- *)

type abi_case = { tys : Abity.t list; vals : Value.t list; selector : string }

let gen_abi_case : abi_case Gen.t =
 fun rng size ->
  let vyper = Random.State.int rng 100 < 25 in
  let n = 1 + Random.State.int rng (Stdlib.min 5 (1 + (size / 4))) in
  let tys =
    Gen.init_in_order n (fun _ ->
        if vyper then Abi.Valgen.vy_type rng
        else Solc.Corpus.random_type ~abiv2:true rng)
  in
  let vals = List.map (Abi.Valgen.value rng) tys in
  let selector = String.init 4 (fun _ -> Char.chr (Random.State.int rng 256)) in
  { tys; vals; selector }

let shrink_abi_case (c : abi_case) =
  Seq.map
    (fun pairs ->
      let tys, vals = List.split pairs in
      { c with tys; vals })
    (Shrink.list_drop_one (List.combine c.tys c.vals))

let show_abi_case c =
  Printf.sprintf "(%s) <- (%s)" (type_list c.tys)
    (String.concat ", " (List.map Value.to_string c.vals))

let abi_round_trip (c : abi_case) =
  if c.tys = [] then Ok ()
  else
    let encoded = Encode.encode_args c.tys c.vals in
    match Decode.decode_args c.tys encoded with
    | Error e -> Error (Printf.sprintf "decode_args failed: %s" e)
    | Ok vals' ->
      if vals' <> c.vals then
        Error
          (Printf.sprintf "args changed: got (%s)"
             (String.concat ", " (List.map Value.to_string vals')))
      else (
        match
          Decode.decode_call c.tys
            (Encode.encode_call ~selector:c.selector c.tys c.vals)
        with
        | Error e -> Error (Printf.sprintf "decode_call failed: %s" e)
        | Ok (sel, vals'') ->
          if sel <> c.selector then Error "selector changed"
          else if vals'' <> c.vals then Error "call args changed"
          else Ok ())

(* -- differential: TASE vs the static pass ------------------------------ *)

let differential ?stats (c : Sig_gen.case) =
  let code = Sig_gen.compile c in
  let verdicts = Sigrec.Lint.check ?stats code in
  (* A function whose recovery is wrong in one of the paper's §5.2
     documented ways (e.g. a constant-index access optimized into a
     direct load) legitimately disagrees with the static summary — the
     lint is doing its job by flagging it. Only disagreements on
     functions TASE is supposed to get right count against the
     property. *)
  let tolerated (v : Sigrec.Lint.verdict) =
    List.exists
      (fun (fn : Solc.Lang.fn_spec) ->
        Abi.Funsig.selector fn.Solc.Lang.fsig
          = v.Sigrec.Lint.recovered.Sigrec.Recover.selector
        && Solc.Corpus.expected_failure
             { Solc.Corpus.fn; version = c.Sig_gen.version; code })
      c.Sig_gen.fns
  in
  match
    List.find_opt
      (fun v -> (not (Sigrec.Lint.agree v)) && not (tolerated v))
      verdicts
  with
  | None -> Ok ()
  | Some v ->
    Error
      (Printf.sprintf "lint disagreement on %s: %s"
         v.Sigrec.Lint.selector_hex
         (String.concat "; "
            (List.map Sigrec.Lint.finding_to_string v.Sigrec.Lint.findings)))

(* -- interface-classification round trip --------------------------------- *)

module Classify = Sigrec_classify.Classify

(* Compile a labeled token case, classify it end to end through the
   engine, and hold the verdict to the generator's ground truth: a
   clean case must classify exactly as its standard; a drop-one mutant
   must demote to partial — never exact, for any standard — with the
   dropped member on the missing list. *)
let classify_round_trip (c : Sig_gen.token_case) =
  let code = Sig_gen.compile_token c in
  let engine = Sigrec.Engine.make Sigrec.Engine.Config.default in
  let r = Sigrec.Engine.classify engine code in
  let v = r.Sigrec.Engine.verdict in
  let std =
    List.find_opt
      (fun sr -> sr.Classify.spec.Classify.spec_name = c.Sig_gen.t_standard)
      v.Classify.results
  in
  match (std, c.Sig_gen.t_dropped) with
  | None, _ ->
    Error
      (Printf.sprintf "standard %s absent from scored results"
         c.Sig_gen.t_standard)
  | Some _, [] ->
    if Classify.label v = c.Sig_gen.t_standard then Ok ()
    else
      Error
        (Printf.sprintf "clean %s classified as %S" c.Sig_gen.t_standard
           (Classify.label v))
  | Some std, dropped ->
    (* extensions are excluded: a 721 mutant still carries the full
       ERC-165 surface, and extensions never compete for the verdict *)
    let exact_somewhere =
      List.exists
        (fun sr -> sr.Classify.level = Classify.Exact)
        v.Classify.results
    in
    if exact_somewhere then
      Error
        (Printf.sprintf
           "mutant missing [%s] still classified exact (label %S)"
           (String.concat "," dropped) (Classify.label v))
    else if Classify.label v <> c.Sig_gen.t_standard ^ " (partial)" then
      Error
        (Printf.sprintf "mutant of %s labeled %S, wanted %S"
           c.Sig_gen.t_standard (Classify.label v)
           (c.Sig_gen.t_standard ^ " (partial)"))
    else if List.sort compare std.Classify.missing <> List.sort compare dropped
    then
      Error
        (Printf.sprintf "missing list [%s], wanted [%s]"
           (String.concat "," std.Classify.missing)
           (String.concat "," dropped))
    else Ok ()

(* -- rule-coverage gate -------------------------------------------------- *)

let rule_gate stats =
  match Sigrec.Stats.unexercised stats with
  | [] -> Ok ()
  | missing ->
    Error
      (Printf.sprintf "rules never fired across the run: %s"
         (String.concat ", " missing))

(* -- canned arbitraries -------------------------------------------------- *)

let arb_case =
  Prop.make ~shrink:Sig_gen.shrink_case ~show:Sig_gen.show_case Sig_gen.case

let arb_batch =
  Prop.make
    ~shrink:(Shrink.list ~min_length:1 Sig_gen.shrink_case)
    ~show:(fun cs -> String.concat "\n " (List.map Sig_gen.show_case cs))
    (Gen.list_size (Gen.int_range 1 4) Sig_gen.case)

let arb_abi = Prop.make ~shrink:shrink_abi_case ~show:show_abi_case gen_abi_case

let arb_token =
  Prop.make ~shrink:Sig_gen.shrink_token ~show:Sig_gen.show_token
    Sig_gen.token_case
