type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  show : 'a -> string;
}

let make ?(shrink = Shrink.nothing) ?(show = fun _ -> "<opaque>") gen =
  { gen; shrink; show }

type 'a counterexample = {
  name : string;
  seed : int;
  case_index : int;
  cases_run : int;
  original : 'a;
  original_error : string;
  minimal : 'a;
  minimal_error : string;
  shrink_steps : int;
  candidates_tried : int;
}

type 'a result = Pass of { cases : int; seed : int } | Fail of 'a counterexample

let env_int name =
  match Sys.getenv_opt name with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let default_seed () = Option.value (env_int "PROPTEST_SEED") ~default:20230704
let multiplier () = Stdlib.max 1 (Option.value (env_int "PROPTEST_ITERS") ~default:1)

let eval prop x =
  match prop x with
  | r -> r
  | exception e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))

(* Greedy shrink: recurse on the first strictly-smaller candidate that
   still fails. [max_candidates] bounds the passing candidates examined
   per level so a wide shrink tree cannot stall the run. *)
let shrink_to_minimal ~max_steps ~max_candidates arb prop x0 e0 =
  let current = ref x0 and err = ref e0 in
  let steps = ref 0 and tried = ref 0 in
  let progress = ref true in
  while !progress && !steps < max_steps do
    progress := false;
    let rec scan seq budget =
      if budget > 0 then
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (c, tl) -> (
          incr tried;
          match eval prop c with
          | Error e ->
            current := c;
            err := e;
            incr steps;
            progress := true
          | Ok () -> scan tl (budget - 1))
    in
    scan (arb.shrink !current) max_candidates
  done;
  (!current, !err, !steps, !tried)

let run ?seed ?(count = 100) ?(max_size = 20) ?(max_shrink_steps = 500)
    ?(max_candidates = 200) ~name arb prop =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let count = count * multiplier () in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < count do
    let case_index = !i in
    let rng = Random.State.make [| seed; case_index |] in
    let size = 1 + (case_index * max_size / Stdlib.max 1 count) in
    let x = arb.gen rng size in
    (match eval prop x with
    | Ok () -> ()
    | Error e ->
      let minimal, minimal_error, shrink_steps, candidates_tried =
        shrink_to_minimal ~max_steps:max_shrink_steps ~max_candidates arb
          prop x e
      in
      failure :=
        Some
          {
            name;
            seed;
            case_index;
            cases_run = case_index + 1;
            original = x;
            original_error = e;
            minimal;
            minimal_error;
            shrink_steps;
            candidates_tried;
          });
    incr i
  done;
  match !failure with
  | None -> Pass { cases = count; seed }
  | Some f -> Fail f

let replay_line seed =
  let m = multiplier () in
  let iters = if m > 1 then Printf.sprintf " PROPTEST_ITERS=%d" m else "" in
  Printf.sprintf "PROPTEST_SEED=%d%s dune exec test/test_main.exe -- test proptest"
    seed iters

let report arb = function
  | Pass { cases; seed } ->
    Printf.sprintf "passed %d cases (seed %d)" cases seed
  | Fail f ->
    Printf.sprintf
      "property `%s' failed at case %d/%d (seed %d)\n\
      \  counterexample: %s\n\
      \  error: %s\n\
      \  shrunk %d steps (%d candidates tried) to: %s\n\
      \  error: %s\n\
      \  replay: %s"
      f.name f.case_index f.cases_run f.seed (arb.show f.original)
      f.original_error f.shrink_steps f.candidates_tried (arb.show f.minimal)
      f.minimal_error (replay_line f.seed)

let is_pass = function Pass _ -> true | Fail _ -> false
