open Abi

type case = {
  fns : Solc.Lang.fn_spec list;
  version : Solc.Version.t;
  svars : Solc.Lang.svar list;
  obf_level : int;
  obf_seed : int;
}

let letters = "abcdefghijklmnopqrstuvwxyz"

(* -- size measures ----------------------------------------------------- *)

(* Well-founded measure backing the shrinkers: every shrink candidate is
   strictly smaller. [Uint 256] is the unique minimum among types. *)
let rec size_ty = function
  | Abity.Uint 256 -> 1
  | Abity.Uint _ | Abity.Address | Abity.Bool | Abity.Decimal -> 2
  | Abity.Int 256 | Abity.Bytes_n 32 -> 2
  | Abity.Int _ | Abity.Bytes_n _ | Abity.Bytes -> 3
  | Abity.String_t | Abity.Vbytes _ -> 4
  | Abity.Vstring _ -> 5
  | Abity.Sarray (t, n) -> 1 + n + size_ty t
  | Abity.Darray t -> 3 + size_ty t
  | Abity.Tuple ts -> 2 + List.fold_left (fun acc t -> acc + size_ty t) 0 ts

let default_usage = Solc.Lang.default_usage

let size_fn (fn : Solc.Lang.fn_spec) =
  let specs = fn.Solc.Lang.param_specs in
  let param_cost (s : Solc.Lang.param_spec) =
    size_ty s.Solc.Lang.ty
    + (if s.Solc.Lang.quirk <> Solc.Lang.No_quirk then 1 else 0)
    + if s.Solc.Lang.usage = default_usage then 0 else 1
  in
  1
  + List.length specs
  + List.fold_left (fun acc s -> acc + param_cost s) 0 specs
  + fn.Solc.Lang.asm_reads
  + if fn.Solc.Lang.returns_word then 1 else 0

let version_index (v : Solc.Version.t) =
  let vs =
    match v.Solc.Version.lang with
    | Abity.Solidity -> Solc.Version.solidity_versions
    | Abity.Vyper -> Solc.Version.vyper_versions
  in
  let rec idx i = function
    | [] -> 0
    | x :: tl -> if x.Solc.Version.name = v.Solc.Version.name then i else idx (i + 1) tl
  in
  idx 0 vs

(* The plain word [Svalue [256]] is the unique minimum, so every
   {!shrink_svar} candidate is strictly smaller. *)
let size_svar (v : Solc.Lang.svar) =
  match v.Solc.Lang.kind with
  | Solc.Lang.Svalue [ 256 ] -> 1
  | Solc.Lang.Svalue widths -> 1 + List.length widths
  | Solc.Lang.Smapping | Solc.Lang.Sarray -> 2

let size_case c =
  List.fold_left (fun acc fn -> acc + size_fn fn) 0 c.fns
  + List.fold_left (fun acc v -> acc + size_svar v) 0 c.svars
  + version_index c.version + c.obf_level

(* -- generators -------------------------------------------------------- *)

let gen_name rng slot =
  let base = String.init 5 (fun _ -> letters.[Random.State.int rng 26]) in
  Printf.sprintf "%s_p%d" base slot

let sol_type ~abiv2 : Abity.t Gen.t =
 fun rng size ->
  if size < 4 then Abi.Valgen.sol_basic rng
  else Solc.Corpus.random_type ~abiv2 rng

let vy_type : Abity.t Gen.t = fun rng _ -> Abi.Valgen.vy_type rng

(* Plant one of the paper's §5.2 inaccuracy shapes on the first
   applicable parameter, mirroring the corpus quirk planter; all of
   them are recognized by [Solc.Corpus.expected_failure], which is how
   the round-trip oracle knows to apply the documented tolerance. *)
let plant_quirk rng (fn : Solc.Lang.fn_spec) (version : Solc.Version.t) =
  let map_first f =
    let applied = ref false in
    let specs =
      List.map
        (fun (s : Solc.Lang.param_spec) ->
          if !applied then s
          else
            match f s with
            | Some s' ->
              applied := true;
              s'
            | None -> s)
        fn.Solc.Lang.param_specs
    in
    if !applied then Some { fn with Solc.Lang.param_specs = specs } else None
  in
  let case1 () = Some { fn with Solc.Lang.asm_reads = 1 } in
  let case2 () =
    map_first (fun s ->
        match s.Solc.Lang.ty with
        | Abity.Uint 256 ->
          Some { s with Solc.Lang.quirk = Solc.Lang.Converted (Abity.Uint 8) }
        | _ -> None)
  in
  let case4 () =
    map_first (fun s ->
        if Abity.is_dynamic s.Solc.Lang.ty then
          Some { s with Solc.Lang.quirk = Solc.Lang.Storage_ref }
        else None)
  in
  let case5 () =
    map_first (fun s ->
        match s.Solc.Lang.ty with
        | Abity.Bytes ->
          Some
            {
              s with
              Solc.Lang.usage =
                { s.Solc.Lang.usage with Solc.Lang.byte_access = false };
            }
        | Abity.Darray _
          when fn.Solc.Lang.fsig.Funsig.visibility = Funsig.External ->
          Some
            {
              s with
              Solc.Lang.usage =
                { s.Solc.Lang.usage with Solc.Lang.item_access = false };
            }
        | Abity.Sarray _
          when version.Solc.Version.optimize
               && fn.Solc.Lang.fsig.Funsig.visibility = Funsig.External ->
          Some { s with Solc.Lang.quirk = Solc.Lang.Const_index_optimized }
        | _ -> None)
  in
  let cases =
    match Random.State.int rng 4 with
    | 0 -> [ case1; case2; case4; case5 ]
    | 1 -> [ case2; case4; case5; case1 ]
    | 2 -> [ case4; case5; case1; case2 ]
    | _ -> [ case5; case1; case2; case4 ]
  in
  Option.value ~default:fn (List.find_map (fun c -> c ()) cases)

let gen_fn ~(version : Solc.Version.t) ~slot : Solc.Lang.fn_spec Gen.t =
 fun rng size ->
  let vyper = version.Solc.Version.lang = Abity.Vyper in
  let abiv2 = version.Solc.Version.abiv2 in
  let nparams = 1 + Random.State.int rng (Stdlib.min 5 (1 + (size / 4))) in
  let ty_gen = if vyper then vy_type else sol_type ~abiv2 in
  let tys = Gen.init_in_order nparams (fun _ -> ty_gen rng size) in
  let visibility =
    if vyper || Random.State.bool rng then Funsig.Public else Funsig.External
  in
  let lang = version.Solc.Version.lang in
  let fsig = Funsig.make ~visibility ~lang (gen_name rng slot) tys in
  let fn =
    Solc.Lang.fn_of_sig ~returns_word:(Random.State.int rng 100 < 35) fsig
  in
  if (not vyper) && Random.State.int rng 100 < 7 then
    plant_quirk rng fn version
  else fn

let case : case Gen.t =
 fun rng size ->
  let vyper = Random.State.int rng 100 < 16 in
  let versions =
    if vyper then Solc.Version.vyper_versions
    else Solc.Version.solidity_versions
  in
  let version = List.nth versions (Random.State.int rng (List.length versions)) in
  let nfns =
    if size >= 12 && Random.State.int rng 100 < 25 then
      2 + Random.State.int rng 2
    else 1
  in
  let fns = Gen.init_in_order nfns (fun k -> gen_fn ~version ~slot:k rng size) in
  (* storage declarations are modelled by the Solidity code generator
     only; about half the cases declare some, so the signature
     round-trip keeps running against storage-free contracts too *)
  let svars =
    if vyper || Random.State.bool rng then []
    else
      let n = 1 + Random.State.int rng 3 in
      Gen.init_in_order n (fun k -> Solc.Corpus.random_svar rng k)
  in
  (* semantics-preserving obfuscation is modelled for the Solidity
     code generator only *)
  let obf_level =
    if vyper then 0
    else
      match Random.State.int rng 10 with 0 -> 1 | 1 -> 2 | _ -> 0
  in
  let obf_seed = Random.State.int rng 1_000_000 in
  { fns; version; svars; obf_level; obf_seed }

(* -- compilation and ground truth -------------------------------------- *)

let compile c =
  let contract =
    { Solc.Compile.fns = c.fns; version = c.version; storage = c.svars }
  in
  if c.obf_level = 0 then Solc.Compile.compile contract
  else Solc.Obfuscate.compile_obfuscated ~level:c.obf_level ~seed:c.obf_seed contract

let samples c =
  let code = compile c in
  List.map (fun fn -> { Solc.Corpus.fn; version = c.version; code }) c.fns

(* -- shrinking --------------------------------------------------------- *)

let rec shrink_ty (t : Abity.t) : Abity.t Seq.t =
  let u256 = Abity.Uint 256 in
  match t with
  | Abity.Uint 256 -> Seq.empty
  | Abity.Uint _ | Abity.Address | Abity.Bool | Abity.Decimal
  | Abity.Int 256 | Abity.Bytes_n 32 ->
    List.to_seq [ u256 ]
  | Abity.Int _ -> List.to_seq [ u256; Abity.Int 256 ]
  | Abity.Bytes_n _ -> List.to_seq [ u256; Abity.Bytes_n 32 ]
  | Abity.Bytes -> List.to_seq [ u256 ]
  | Abity.String_t -> List.to_seq [ u256; Abity.Bytes ]
  | Abity.Vbytes _ -> List.to_seq [ u256; Abity.Bytes_n 32 ]
  | Abity.Vstring _ -> List.to_seq [ u256; Abity.Bytes_n 32 ]
  | Abity.Sarray (elem, n) ->
    Seq.append
      (Seq.cons elem
         (Seq.map (fun n' -> Abity.Sarray (elem, n')) (Shrink.int_toward 1 n)))
      (Seq.map (fun e' -> Abity.Sarray (e', n)) (shrink_ty elem))
  | Abity.Darray elem ->
    Seq.append
      (List.to_seq [ elem; Abity.Sarray (elem, 1) ])
      (Seq.map (fun e' -> Abity.Darray e') (shrink_ty elem))
  | Abity.Tuple ts ->
    Seq.append (List.to_seq ts)
      (Seq.map
         (fun ts' -> Abity.Tuple ts')
         (Shrink.list ~min_length:1 shrink_ty ts))

(* Rebuild a spec from shrunk parameter types: quirks and non-default
   usages are dropped (both count toward the measure), the rest of the
   spec is kept. *)
let with_params (fn : Solc.Lang.fn_spec) tys =
  let fsig = { fn.Solc.Lang.fsig with Funsig.params = tys } in
  Solc.Lang.fn
    ~asm_reads:fn.Solc.Lang.asm_reads
    ~returns_word:fn.Solc.Lang.returns_word
    ?bug:fn.Solc.Lang.bug fsig
    (List.map (fun ty -> Solc.Lang.param ty) tys)

let shrink_fn (fn : Solc.Lang.fn_spec) : Solc.Lang.fn_spec Seq.t =
  let lang = fn.Solc.Lang.fsig.Funsig.lang in
  let tys = fn.Solc.Lang.fsig.Funsig.params in
  let plainer =
    (* drop quirk markers / restore default usage / drop asm_reads and
       returns_word before structural shrinking: each is one measure
       point and removing them first keeps counterexamples readable *)
    let candidates = ref [] in
    if fn.Solc.Lang.asm_reads > 0 then
      candidates := { fn with Solc.Lang.asm_reads = 0 } :: !candidates;
    if fn.Solc.Lang.returns_word then
      candidates := { fn with Solc.Lang.returns_word = false } :: !candidates;
    if
      List.exists
        (fun (s : Solc.Lang.param_spec) ->
          s.Solc.Lang.quirk <> Solc.Lang.No_quirk
          || s.Solc.Lang.usage <> default_usage)
        fn.Solc.Lang.param_specs
    then
      candidates :=
        {
          fn with
          Solc.Lang.param_specs =
            List.map
              (fun (s : Solc.Lang.param_spec) -> Solc.Lang.param s.Solc.Lang.ty)
              fn.Solc.Lang.param_specs;
        }
        :: !candidates;
    List.to_seq (List.rev !candidates)
  in
  let structural =
    Seq.filter_map
      (fun tys' ->
        if List.for_all (Abity.valid_in lang) tys' then
          Some (with_params fn tys')
        else None)
      (Shrink.list ~min_length:1 shrink_ty tys)
  in
  Seq.append plainer structural

(* Strictly [size_svar]-decreasing: packed slots lose lanes or
   collapse to a plain word, mappings and arrays collapse to a plain
   word; the declared slot number is preserved throughout. *)
let shrink_svar (v : Solc.Lang.svar) : Solc.Lang.svar Seq.t =
  let word = Solc.Lang.svalue v.Solc.Lang.slot in
  match v.Solc.Lang.kind with
  | Solc.Lang.Svalue [ 256 ] -> Seq.empty
  | Solc.Lang.Svalue widths ->
    Seq.cons word
      (Seq.filter_map
         (fun ws ->
           if ws = [] then None
           else Some (Solc.Lang.svalue ~widths:ws v.Solc.Lang.slot))
         (Shrink.list_drop_one widths))
  | Solc.Lang.Smapping | Solc.Lang.Sarray -> Seq.return word

let shrink_case (c : case) : case Seq.t =
  let drop_obf =
    Seq.map (fun l -> { c with obf_level = l }) (Shrink.int_toward 0 c.obf_level)
  in
  let simpler_version =
    let vs =
      match c.version.Solc.Version.lang with
      | Abity.Solidity -> Solc.Version.solidity_versions
      | Abity.Vyper -> Solc.Version.vyper_versions
    in
    Seq.filter_map
      (fun i ->
        let v = List.nth vs i in
        (* abiv2 types must stay compilable after a version change *)
        if
          List.for_all
            (fun (fn : Solc.Lang.fn_spec) ->
              v.Solc.Version.abiv2
              || List.for_all
                   (fun ty ->
                     match ty with
                     | Abity.Tuple _ -> false
                     | _ -> not (Abity.is_nested_array ty))
                   fn.Solc.Lang.fsig.Funsig.params)
            c.fns
        then Some { c with version = v }
        else None)
      (Shrink.int_toward 0 (version_index c.version))
  in
  let svars =
    Seq.map (fun svars -> { c with svars }) (Shrink.list shrink_svar c.svars)
  in
  let fns =
    Seq.map (fun fns -> { c with fns }) (Shrink.list ~min_length:1 shrink_fn c.fns)
  in
  Seq.append drop_obf
    (Seq.append simpler_version (Seq.append svars fns))

(* -- rendering --------------------------------------------------------- *)

let show_fn (fn : Solc.Lang.fn_spec) =
  let fsig = fn.Solc.Lang.fsig in
  let marks =
    List.concat
      [
        (if fn.Solc.Lang.asm_reads > 0 then
           [ Printf.sprintf "asm_reads=%d" fn.Solc.Lang.asm_reads ]
         else []);
        (if fn.Solc.Lang.returns_word then [ "returns_word" ] else []);
        List.concat
          (List.mapi
             (fun i (s : Solc.Lang.param_spec) ->
               let q =
                 match s.Solc.Lang.quirk with
                 | Solc.Lang.No_quirk -> []
                 | Solc.Lang.Converted t ->
                   [ Printf.sprintf "p%d:converted->%s" i (Abity.to_string t) ]
                 | Solc.Lang.Storage_ref -> [ Printf.sprintf "p%d:storage" i ]
                 | Solc.Lang.Const_index_optimized ->
                   [ Printf.sprintf "p%d:const-index" i ]
               in
               let u =
                 if s.Solc.Lang.usage = default_usage then []
                 else [ Printf.sprintf "p%d:usage-degraded" i ]
               in
               q @ u)
             fn.Solc.Lang.param_specs);
      ]
  in
  let vis =
    match fsig.Funsig.visibility with
    | Funsig.Public -> "public"
    | Funsig.External -> "external"
  in
  Printf.sprintf "%s %s%s" vis (Funsig.canonical fsig)
    (if marks = [] then "" else " [" ^ String.concat "," marks ^ "]")

let show_case c =
  let storage =
    if c.svars = [] then ""
    else
      Printf.sprintf " storage=[%s];"
        (String.concat "," (List.map Solc.Lang.show_svar c.svars))
  in
  Printf.sprintf "{version=%s; obf=%d/seed=%d; size=%d;%s\n   %s}"
    c.version.Solc.Version.name c.obf_level c.obf_seed (size_case c) storage
    (String.concat ";\n   " (List.map show_fn c.fns))

(* -- labeled token cases (interface-classification oracle) -------------- *)

module Classify = Sigrec_classify.Classify

type token_case = {
  t_standard : string;
  t_dropped : string list;
  t_optionals : int;
  t_decoys : Solc.Lang.fn_spec list;
  t_version : Solc.Version.t;
}

let token_spec c = Option.get (Classify.spec_by_name c.t_standard)

let token_case : token_case Gen.t =
 fun rng size ->
  let t_standard =
    Gen.oneofl [ "ERC-20"; "ERC-721"; "ERC-1155" ] rng size
  in
  let spec = Option.get (Classify.spec_by_name t_standard) in
  let required = List.filter (fun m -> m.Classify.required) spec.Classify.members in
  let optional_total =
    List.length spec.Classify.members - List.length required
  in
  (* half the cases are clean, half are drop-one-required mutants — the
     demotion half of the oracle *)
  let t_dropped =
    if Random.State.bool rng then []
    else
      let i = Random.State.int rng (List.length required) in
      [ Funsig.canonical (List.nth required i).Classify.fsig ]
  in
  let t_optionals = Random.State.int rng (optional_total + 1) in
  let t_version =
    List.nth Solc.Version.solidity_versions
      (Random.State.int rng (List.length Solc.Version.solidity_versions))
  in
  let ndecoys = Random.State.int rng (2 + Stdlib.min 2 (size / 8)) in
  let t_decoys =
    Gen.init_in_order ndecoys (fun k ->
        gen_fn ~version:t_version ~slot:(20 + k) rng (Stdlib.min size 8))
  in
  { t_standard; t_dropped; t_optionals; t_decoys; t_version }

let compile_token c =
  let spec = token_spec c in
  let required =
    List.filter
      (fun m ->
        m.Classify.required
        && not (List.mem (Funsig.canonical m.Classify.fsig) c.t_dropped))
      spec.Classify.members
  in
  let optionals =
    List.filteri
      (fun i _ -> i < c.t_optionals)
      (List.filter (fun m -> not m.Classify.required) spec.Classify.members)
  in
  let fns =
    List.map
      (fun m -> Solc.Lang.fn_of_sig m.Classify.fsig)
      (required @ optionals)
    @ c.t_decoys
  in
  Solc.Compile.compile
    {
      Solc.Compile.fns;
      version = c.t_version;
      storage = [ Solc.Lang.svalue 0; Solc.Lang.smapping 1 ];
    }

let size_token c =
  List.length c.t_dropped + c.t_optionals
  + List.fold_left (fun acc fn -> acc + size_fn fn) 0 c.t_decoys

let shrink_token c =
  let decoys =
    Seq.map
      (fun t_decoys -> { c with t_decoys })
      (Shrink.list shrink_fn c.t_decoys)
  in
  let optionals =
    Seq.map
      (fun t_optionals -> { c with t_optionals })
      (Shrink.int_toward 0 c.t_optionals)
  in
  let dropped =
    Seq.map
      (fun t_dropped -> { c with t_dropped })
      (Shrink.list_drop_one c.t_dropped)
  in
  Seq.append decoys (Seq.append optionals dropped)

let show_token c =
  Printf.sprintf "{%s; dropped=[%s]; optionals=%d; version=%s;%s}"
    c.t_standard
    (String.concat "," c.t_dropped)
    c.t_optionals c.t_version.Solc.Version.name
    (if c.t_decoys = [] then ""
     else "\n   decoys: " ^ String.concat ";\n   " (List.map show_fn c.t_decoys))
