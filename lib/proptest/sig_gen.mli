(** Typed generators and shrinkers over the full ABI type grammar and
    the compiler knobs — the domain half of the property harness.

    A {!case} is everything the round-trip pipeline needs: one to three
    function specs (multi-parameter signatures, types weighted to the
    corpus frequency shape via {!Solc.Corpus.random_type}, occasional
    §5.2 quirk planting), a compiler {!Solc.Version.t} (both languages,
    with and without optimisation), and an obfuscation level/seed.

    Shrinking is structural and measure-decreasing: drop functions, drop
    parameters, simplify types toward [uint256], shrink array dims and
    widths, drop quirk markers, lower the obfuscation level and the
    version index — every candidate satisfies
    [size_case candidate < size_case original], which both guarantees
    termination and is what the shrinker-invariant tests check. *)

type case = {
  fns : Solc.Lang.fn_spec list;
  version : Solc.Version.t;
  svars : Solc.Lang.svar list;
      (** storage declarations (Solidity only) — the ground truth for
          the layout round-trip oracle *)
  obf_level : int;  (** 0 = plain, 1 = junk insertion, 2 = + constant split *)
  obf_seed : int;
}

val case : case Gen.t

val sol_type : abiv2:bool -> Abi.Abity.t Gen.t
(** Corpus-weighted Solidity parameter type; small sizes restrict to
    basic types. *)

val vy_type : Abi.Abity.t Gen.t

val compile : case -> string
(** Runtime bytecode (obfuscated when [obf_level > 0]). *)

val samples : case -> Solc.Corpus.sample list
(** One corpus sample per function, sharing the compiled bytecode —
    the bridge to {!Solc.Corpus.truth} / {!Solc.Corpus.expected_failure}. *)

val size_ty : Abi.Abity.t -> int
(** Well-founded measure on types; [uint256] is the unique minimum. *)

val size_fn : Solc.Lang.fn_spec -> int
val size_case : case -> int

val shrink_ty : Abi.Abity.t -> Abi.Abity.t Seq.t
(** Strictly [size_ty]-decreasing candidates (language validity is the
    caller's concern; {!shrink_fn} filters with [Abity.valid_in]). *)

val shrink_fn : Solc.Lang.fn_spec -> Solc.Lang.fn_spec Seq.t

val shrink_svar : Solc.Lang.svar -> Solc.Lang.svar Seq.t
(** Packed slots lose lanes or collapse to a plain word; mappings and
    arrays collapse to a plain word. Slot numbers are preserved. *)

val shrink_case : case Shrink.t

val show_fn : Solc.Lang.fn_spec -> string
val show_case : case -> string

(** {1 Labeled token cases}

    Ground-truth inputs for the interface-classification oracle: the
    full required member set of one ERC standard (or a drop-one-required
    mutant), a prefix of its optional members, and unrelated decoy
    functions. Shrinking drops decoys, optional members and the dropped
    marker, all strictly [size_token]-decreasing. *)

type token_case = {
  t_standard : string;  (** ["ERC-20"], ["ERC-721"] or ["ERC-1155"] *)
  t_dropped : string list;
      (** canonical signatures of required members removed from the
          contract — [[]] for a clean conformant token, one element for
          a demotion mutant *)
  t_optionals : int;    (** how many of the spec's optional members to keep *)
  t_decoys : Solc.Lang.fn_spec list;
  t_version : Solc.Version.t;
}

val token_case : token_case Gen.t
val compile_token : token_case -> string
val size_token : token_case -> int
val shrink_token : token_case Shrink.t
val show_token : token_case -> string
