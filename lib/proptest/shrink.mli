(** Integrated shrinking: a shrinker maps a failing value to a lazy
    sequence of strictly-smaller candidates, best (smallest) first. The
    runner greedily re-runs the property on each candidate and recurses
    on the first one that still fails, so a shrinker only has to make
    local progress — termination comes from every candidate being
    strictly smaller under some well-founded measure. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t

val int_toward : int -> int -> int Seq.t
(** [int_toward target n]: candidates between [target] (first) and [n]
    (exclusive), halving the distance — empty when [n = target]. *)

val list_drop_one : 'a list -> 'a list Seq.t
(** Each list with one element removed, leftmost first. *)

val list_elems : 'a t -> 'a list t
(** Shrink one element in place, leftmost positions first. *)

val list : ?min_length:int -> 'a t -> 'a list t
(** Drop an element (down to [min_length], default 0), then shrink
    elements in place. *)

val append : 'a Seq.t -> 'a Seq.t -> 'a Seq.t
val of_list : 'a list -> 'a t
