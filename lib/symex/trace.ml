type load = { id : int; pc : int; loc : Sexpr.t }
type copy = { pc : int; dst : Sexpr.t; src : Sexpr.t; len : Sexpr.t }
type subject = Sub_load of int | Sub_region of int

type usage_kind =
  | Mask_and of Evm.U256.t
  | Mask_signext of int
  | Mask_bool
  | Byte_read
  | Signed_use
  | Math_use
  | Range_lt of Evm.U256.t
  | Range_sgt of Evm.U256.t
  | Range_slt of Evm.U256.t

type usage = { upc : int; subject : subject; kind : usage_kind }

type t = {
  loads : load list;
  copies : copy list;
  usages : usage list;
  jumpi_conds : (int, Sexpr.t list) Hashtbl.t;
  jumpi_targets : (int, int) Hashtbl.t;
  paths_explored : int;
  forks_pruned : int;
  steps_exhausted : bool;
  paths_exhausted : bool;
}

let truncated t = t.steps_exhausted || t.paths_exhausted

let load_by_id t id = List.find_opt (fun l -> l.id = id) t.loads

let loads_at_const t =
  List.filter_map
    (fun l ->
      match Sexpr.to_const_int l.loc with
      | Some off -> Some (off, l)
      | None -> None)
    t.loads

let usages_of t subject =
  List.filter_map
    (fun u -> if u.subject = subject then Some u.kind else None)
    t.usages

let conds_at t pc =
  match Hashtbl.find_opt t.jumpi_conds pc with Some cs -> cs | None -> []

let kind_to_string = function
  | Mask_and m -> Printf.sprintf "and(0x%s)" (Evm.U256.to_hex m)
  | Mask_signext k -> Printf.sprintf "signext(%d)" k
  | Mask_bool -> "bool"
  | Byte_read -> "byte"
  | Signed_use -> "signed"
  | Math_use -> "math"
  | Range_lt b -> Printf.sprintf "lt(0x%s)" (Evm.U256.to_hex b)
  | Range_sgt b -> Printf.sprintf "sgt(0x%s)" (Evm.U256.to_hex b)
  | Range_slt b -> Printf.sprintf "slt(0x%s)" (Evm.U256.to_hex b)

let pp fmt t =
  Format.fprintf fmt "loads:@.";
  List.iter
    (fun l ->
      Format.fprintf fmt "  cd%d @%04x loc=%s@." l.id l.pc
        (Sexpr.to_string l.loc))
    t.loads;
  Format.fprintf fmt "copies:@.";
  List.iter
    (fun c ->
      Format.fprintf fmt "  @%04x dst=%s src=%s len=%s@." c.pc
        (Sexpr.to_string c.dst) (Sexpr.to_string c.src)
        (Sexpr.to_string c.len))
    t.copies;
  Format.fprintf fmt "usages:@.";
  List.iter
    (fun u ->
      let s =
        match u.subject with
        | Sub_load id -> Printf.sprintf "cd%d" id
        | Sub_region rid -> Printf.sprintf "mem%d" rid
      in
      Format.fprintf fmt "  %s %s @%04x@." s (kind_to_string u.kind) u.upc)
    t.usages
