open Evm

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bsdiv | Bmod | Bsmod | Bexp
  | Band | Bor | Bxor
  | Blt | Bgt | Bslt | Bsgt | Beq
  | Bbyte | Bshl | Bshr | Bsar | Bsignext

type unop = Unot | Uiszero

(* Hash-consed nodes: structurally equal terms are physically equal, so
   [equal] is pointer comparison and [hash]/[compare] read cached
   fields. Construction goes through the smart constructors below, which
   intern into per-domain tables. *)
type t = { node : node; id : int; hkey : int }

and node =
  | Const of U256.t
  | CDLoad of int
  | CDSize
  | Env of string
  | MemItem of int * t
  | Bin of binop * t * t
  | Un of unop * t

let node e = e.node
let id e = e.id
let hash e = e.hkey
let equal (x : t) (y : t) = x == y
let compare (x : t) (y : t) = Stdlib.compare x.id y.id

let binop_tag = function
  | Badd -> 0 | Bsub -> 1 | Bmul -> 2 | Bdiv -> 3 | Bsdiv -> 4
  | Bmod -> 5 | Bsmod -> 6 | Bexp -> 7 | Band -> 8 | Bor -> 9
  | Bxor -> 10 | Blt -> 11 | Bgt -> 12 | Bslt -> 13 | Bsgt -> 14
  | Beq -> 15 | Bbyte -> 16 | Bshl -> 17 | Bshr -> 18 | Bsar -> 19
  | Bsignext -> 20

let unop_tag = function Unot -> 0 | Uiszero -> 1
let combine h1 h2 = (h1 * 0x1000193) lxor (h2 land Stdlib.max_int)

(* -- per-domain interner ----------------------------------------------- *)

type interner = {
  consts : (U256.t, t) Hc.t;
  cdloads : (int, t) Hc.t;
  envs : (string, t) Hc.t;
  mems : (int * t, t) Hc.t;
  bins : (binop * t * t, t) Hc.t;
  uns : (unop * t, t) Hc.t;
  cdsize_node : t;
  (* memo tables for the structural queries the rule matchers repeat;
     keyed by node id, which is unique and never reused in a domain *)
  loads_memo : (int, int list) Hashtbl.t;
  mul_memo : (int * int, bool) Hashtbl.t;
  subject_memo : (int, [ `Load of int | `Region of int ] option) Hashtbl.t;
  offset_memo : (int, int) Hashtbl.t;
  contains_memo : (int * int, bool) Hashtbl.t;
  eval_memo : (int, U256.t option) Hashtbl.t;
}

let make_interner () =
  let ids = ref 0 in
  let fresh node hkey =
    let id = !ids in
    ids := id + 1;
    { node; id; hkey }
  in
  {
    consts = Hc.create ~ids ~hash:U256.hash ~equal:U256.equal 512;
    cdloads =
      Hc.create ~ids ~hash:Stdlib.Hashtbl.hash ~equal:Int.equal 64;
    envs = Hc.create ~ids ~hash:Stdlib.Hashtbl.hash ~equal:String.equal 64;
    mems =
      Hc.create ~ids
        ~hash:(fun (rid, off) -> combine rid off.id)
        ~equal:(fun (r1, o1) (r2, o2) -> r1 = r2 && o1 == o2)
        256;
    bins =
      Hc.create ~ids
        ~hash:(fun (op, a, b) ->
          combine (combine (binop_tag op) a.id) b.id)
        ~equal:(fun (o1, a1, b1) (o2, a2, b2) ->
          o1 = o2 && a1 == a2 && b1 == b2)
        1024;
    uns =
      Hc.create ~ids
        ~hash:(fun (op, a) -> combine (unop_tag op) a.id)
        ~equal:(fun (o1, a1) (o2, a2) -> o1 = o2 && a1 == a2)
        256;
    cdsize_node = fresh CDSize (combine 2 0);
    loads_memo = Hashtbl.create 256;
    mul_memo = Hashtbl.create 64;
    subject_memo = Hashtbl.create 256;
    offset_memo = Hashtbl.create 256;
    contains_memo = Hashtbl.create 256;
    eval_memo = Hashtbl.create 256;
  }

(* One interner per domain: Engine.recover_all workers each intern into
   their own tables, so no cross-domain synchronization is needed. Nodes
   never migrate between domains (each worker runs a complete analysis
   and reports contain no Sexpr values). The interner lives for the
   domain's lifetime and is never reset — resetting would break the
   physical-equality invariant for nodes already in flight. *)
let interner_key = Domain.DLS.new_key make_interner
let interner () = Domain.DLS.get interner_key

let interner_counters () =
  let it = interner () in
  let tables_hits =
    Hc.hits it.consts + Hc.hits it.cdloads + Hc.hits it.envs
    + Hc.hits it.mems + Hc.hits it.bins + Hc.hits it.uns
  and tables_misses =
    Hc.misses it.consts + Hc.misses it.cdloads + Hc.misses it.envs
    + Hc.misses it.mems + Hc.misses it.bins + Hc.misses it.uns
  in
  (tables_hits, tables_misses)

let interner_size () =
  let it = interner () in
  Hc.length it.consts + Hc.length it.cdloads + Hc.length it.envs
  + Hc.length it.mems + Hc.length it.bins + Hc.length it.uns + 1

(* -- interner snapshots -------------------------------------------------

   A snapshot is a read-only view of one domain's interned nodes, in
   interning order. Nodes are immutable, so the array can be shared
   freely across domains; a fresh worker replays it through its own
   interner ([adopt]) and starts warm instead of rebuilding every node
   from cold during its first analyses. Children always precede their
   parents (a node's operands are interned before the node itself), so
   a single left-to-right pass can rebuild the whole table. *)

type snapshot = t array

let snapshot () =
  let it = interner () in
  let nodes = ref [ it.cdsize_node ] in
  let push v = nodes := v :: !nodes in
  Hc.iter_values push it.consts;
  Hc.iter_values push it.cdloads;
  Hc.iter_values push it.envs;
  Hc.iter_values push it.mems;
  Hc.iter_values push it.bins;
  Hc.iter_values push it.uns;
  let arr = Array.of_list !nodes in
  Array.sort (fun a b -> Stdlib.compare a.id b.id) arr;
  arr

let snapshot_size = Array.length

(* -- interning smart constructors --------------------------------------

   The build functions are closed (capture nothing), so [Hc.find_or_add]
   call sites allocate only the key — and nothing at all on a hit for
   the int- and string-keyed tables. *)

let build_const v ~id = { node = Const v; id; hkey = combine 0 (U256.hash v) }

let const v =
  let it = interner () in
  Hc.find_or_add it.consts v build_const

let of_int n = const (U256.of_int n)

let build_cdload i ~id = { node = CDLoad i; id; hkey = combine 1 i }

let cdload i =
  let it = interner () in
  Hc.find_or_add it.cdloads i build_cdload

let cdsize () = (interner ()).cdsize_node

let build_env name ~id =
  { node = Env name; id; hkey = combine 3 (Stdlib.Hashtbl.hash name) }

let env name =
  let it = interner () in
  Hc.find_or_add it.envs name build_env

let build_mem (rid, off) ~id =
  { node = MemItem (rid, off); id; hkey = combine 4 (combine rid off.id) }

let mem_item rid off =
  let it = interner () in
  Hc.find_or_add it.mems (rid, off) build_mem

let build_bin (op, a, b) ~id =
  {
    node = Bin (op, a, b);
    id;
    hkey = combine 5 (combine (combine (binop_tag op) a.hkey) b.hkey);
  }

let intern_bin op a b =
  let it = interner () in
  Hc.find_or_add it.bins (op, a, b) build_bin

let build_un (op, a) ~id =
  { node = Un (op, a); id; hkey = combine 6 (combine (unop_tag op) a.hkey) }

let intern_un op a =
  let it = interner () in
  Hc.find_or_add it.uns (op, a) build_un

(* Replay a snapshot into the current domain's interner. The raw
   [intern_*] constructors are used (not [bin]/[un]): snapshot nodes are
   already post-simplification shapes and must be reproduced literally.
   [map] translates origin ids to local nodes; children precede parents
   in the array, so each operand is already mapped when its parent is
   replayed. Adopting is idempotent — replaying nodes the local interner
   already holds just counts hits. *)
let adopt (snap : snapshot) =
  let map = Hashtbl.create (2 * Array.length snap) in
  Array.iter
    (fun t0 ->
      let local =
        match t0.node with
        | Const v -> const v
        | CDLoad i -> cdload i
        | CDSize -> cdsize ()
        | Env name -> env name
        | MemItem (rid, off) -> mem_item rid (Hashtbl.find map off.id)
        | Bin (op, a, b) ->
          intern_bin op (Hashtbl.find map a.id) (Hashtbl.find map b.id)
        | Un (op, a) -> intern_un op (Hashtbl.find map a.id)
      in
      Hashtbl.replace map t0.id local)
    snap

let eval_bin op a b =
  match op with
  | Badd -> U256.add a b
  | Bsub -> U256.sub a b
  | Bmul -> U256.mul a b
  | Bdiv -> U256.div a b
  | Bsdiv -> U256.sdiv a b
  | Bmod -> U256.rem a b
  | Bsmod -> U256.srem a b
  | Bexp -> U256.exp a b
  | Band -> U256.logand a b
  | Bor -> U256.logor a b
  | Bxor -> U256.logxor a b
  | Blt -> if U256.lt a b then U256.one else U256.zero
  | Bgt -> if U256.gt a b then U256.one else U256.zero
  | Bslt -> if U256.slt a b then U256.one else U256.zero
  | Bsgt -> if U256.sgt a b then U256.one else U256.zero
  | Beq -> if U256.equal a b then U256.one else U256.zero
  | Bbyte -> (
    match U256.to_int a with
    | Some i when i < 32 -> U256.byte i b
    | _ -> U256.zero)
  | Bshl -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_left b n
    | _ -> U256.zero)
  | Bshr -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_right b n
    | _ -> U256.zero)
  | Bsar -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_right_arith b n
    | _ -> U256.shift_right_arith b 255)
  | Bsignext -> (
    match U256.to_int a with
    | Some k when k < 32 -> U256.signextend k b
    | _ -> b)

let un op e =
  match (op, e.node) with
  | Unot, Const v -> const (U256.lognot v)
  | Uiszero, Const v ->
    const (if U256.is_zero v then U256.one else U256.zero)
  | Uiszero, Un (Uiszero, { node = Un (Uiszero, x); _ }) ->
    intern_un Uiszero x
  | _ -> intern_un op e

let is_comparison = function
  | Blt | Bgt | Bslt | Bsgt | Beq -> true
  | _ -> false

(* The simplifier decision tree mirrors the pre-interning one exactly
   (same cases, same order, and the re-associate case does not
   re-simplify its result), so recovery output stays byte-identical.
   Memoization of the simplification itself falls out of interning: the
   default case is a table lookup keyed by [(op, a, b)]. *)
let bin op a b =
  match (a.node, b.node) with
  (* Comparisons stay structural even on constants: branch guards keep
     their LT shape so the rules can read loop bounds out of them. A
     concrete truth value is recovered by eval_concrete when needed. *)
  | Const x, Const y when not (is_comparison op) -> const (eval_bin op x y)
  | _ -> (
    match (op, a.node, b.node) with
    | Badd, _, Const z when U256.is_zero z -> a
    | Badd, Const z, _ when U256.is_zero z -> b
    | Bmul, _, Const o when U256.equal o U256.one -> a
    | Bmul, Const o, _ when U256.equal o U256.one -> b
    (* re-associate (x + c1) + c2 so head offsets stay flat *)
    | Badd, Bin (Badd, x, { node = Const c1; _ }), Const c2 ->
      intern_bin Badd x (const (U256.add c1 c2))
    | Badd, Const c1, Bin (Badd, x, { node = Const c2; _ }) ->
      intern_bin Badd x (const (U256.add c1 c2))
    | _ -> intern_bin op a b)

(* -- printing ----------------------------------------------------------- *)

let binop_name = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bsdiv -> "sdiv"
  | Bmod -> "%" | Bsmod -> "smod" | Bexp -> "**" | Band -> "&" | Bor -> "|"
  | Bxor -> "^" | Blt -> "<" | Bgt -> ">" | Bslt -> "s<" | Bsgt -> "s>"
  | Beq -> "==" | Bbyte -> "byte" | Bshl -> "<<" | Bshr -> ">>"
  | Bsar -> "sar" | Bsignext -> "sext"

let rec to_string e =
  match e.node with
  | Const v -> "0x" ^ U256.to_hex v
  | CDLoad id -> Printf.sprintf "cd%d" id
  | CDSize -> "cdsize"
  | Env name -> name
  | MemItem (rid, off) -> Printf.sprintf "mem%d[%s]" rid (to_string off)
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (binop_name op) (to_string b)
  | Un (Unot, a) -> Printf.sprintf "~%s" (to_string a)
  | Un (Uiszero, a) -> Printf.sprintf "!%s" (to_string a)

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* -- structural queries -------------------------------------------------
   The recursive ones memoize by node id: the rule matchers re-ask the
   same questions about the same (now physically shared) subtrees on
   every path and every load. *)

let to_const e = match e.node with Const v -> Some v | _ -> None
let to_const_int e = match e.node with Const v -> U256.to_int v | _ -> None

let rec add_terms e =
  match e.node with
  | Bin (Badd, a, b) -> add_terms a @ add_terms b
  | _ -> [ e ]

let const_offset e =
  match e.node with
  | Const v -> ( match U256.to_int v with Some n -> n | None -> 0)
  | Bin (Badd, _, _) -> (
    let it = interner () in
    match Hashtbl.find_opt it.offset_memo e.id with
    | Some n -> n
    | None ->
      let n =
        List.fold_left
          (fun acc t ->
            match t.node with
            | Const v -> (
              match U256.to_int v with Some n -> acc + n | None -> acc)
            | _ -> acc)
          0 (add_terms e)
      in
      Hashtbl.replace it.offset_memo e.id n;
      n)
  | _ -> 0

let rec loads_of e =
  match e.node with
  | CDLoad id -> [ id ]
  | Const _ | CDSize | Env _ -> []
  | _ -> (
    let it = interner () in
    match Hashtbl.find_opt it.loads_memo e.id with
    | Some l -> l
    | None ->
      let l =
        match e.node with
        | MemItem (_, off) -> loads_of off
        | Bin (_, a, b) -> loads_of a @ loads_of b
        | Un (_, a) -> loads_of a
        | Const _ | CDLoad _ | CDSize | Env _ -> assert false
      in
      Hashtbl.replace it.loads_memo e.id l;
      l)

let mentions_load e id = List.mem id (loads_of e)

let rec has_mul_by_uncached e k =
  match e.node with
  | Bin (Bmul, { node = Const c; _ }, x) | Bin (Bmul, x, { node = Const c; _ })
    ->
    (U256.equal c (U256.of_int k) && to_const x = None)
    || has_mul_by_uncached x k
  | Bin (_, a, b) -> has_mul_by_uncached a k || has_mul_by_uncached b k
  | Un (_, a) -> has_mul_by_uncached a k
  | MemItem (_, off) -> has_mul_by_uncached off k
  | _ -> false

let has_mul_by e k =
  match e.node with
  | Const _ | CDLoad _ | CDSize | Env _ -> false
  | _ -> (
    let it = interner () in
    match Hashtbl.find_opt it.mul_memo (e.id, k) with
    | Some b -> b
    | None ->
      let b = has_mul_by_uncached e k in
      Hashtbl.replace it.mul_memo (e.id, k) b;
      b)

let rec strip_masks e =
  match e.node with
  | Bin (Band, x, { node = Const _; _ }) | Bin (Band, { node = Const _; _ }, x)
    ->
    strip_masks x
  | Bin (Bsignext, { node = Const _; _ }, x) -> strip_masks x
  | Un (Uiszero, { node = Un (Uiszero, x); _ }) -> strip_masks x
  | _ -> e

let subject e =
  match e.node with
  | CDLoad id -> Some (`Load id)
  | MemItem (rid, _) -> Some (`Region rid)
  | Const _ | CDSize | Env _ -> None
  | _ -> (
    let it = interner () in
    match Hashtbl.find_opt it.subject_memo e.id with
    | Some s -> s
    | None ->
      let s =
        match (strip_masks e).node with
        | CDLoad id -> Some (`Load id)
        | MemItem (rid, _) -> Some (`Region rid)
        | _ -> None
      in
      Hashtbl.replace it.subject_memo e.id s;
      s)

let rec contains_uncached e sub =
  e == sub
  ||
  match e.node with
  | Bin (_, a, b) -> contains_uncached a sub || contains_uncached b sub
  | Un (_, a) -> contains_uncached a sub
  | MemItem (_, off) -> contains_uncached off sub
  | Const _ | CDLoad _ | CDSize | Env _ -> false

let contains e sub =
  e == sub
  ||
  match e.node with
  | Const _ | CDLoad _ | CDSize | Env _ -> false
  | _ -> (
    let it = interner () in
    match Hashtbl.find_opt it.contains_memo (e.id, sub.id) with
    | Some b -> b
    | None ->
      let b = contains_uncached e sub in
      Hashtbl.replace it.contains_memo (e.id, sub.id) b;
      b)

let rec iszero_depth e =
  match e.node with
  | Un (Uiszero, x) ->
    let core, n = iszero_depth x in
    (core, n + 1)
  | _ -> (e, 0)

let rec eval_concrete e =
  match e.node with
  | Const v -> Some v
  | CDLoad _ | CDSize | Env _ | MemItem _ -> None
  | _ -> (
    let it = interner () in
    match Hashtbl.find_opt it.eval_memo e.id with
    | Some r -> r
    | None ->
      let r =
        match e.node with
        | Bin (op, a, b) -> (
          match (eval_concrete a, eval_concrete b) with
          | Some x, Some y -> Some (eval_bin op x y)
          | _ -> None)
        | Un (Unot, a) -> Option.map U256.lognot (eval_concrete a)
        | Un (Uiszero, a) ->
          Option.map
            (fun v -> if U256.is_zero v then U256.one else U256.zero)
            (eval_concrete a)
        | Const _ | CDLoad _ | CDSize | Env _ | MemItem _ -> assert false
      in
      Hashtbl.replace it.eval_memo e.id r;
      r)
