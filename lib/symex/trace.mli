(** The access-event trace produced by symbolic execution of one
    function body. TASE's rules (paper §3) are predicates over this
    trace: which call-data locations were read, how copies were sized,
    which masks/comparisons touched which raw values, and what each
    branch's condition was. *)

type load = { id : int; pc : int; loc : Sexpr.t }
(** One CALLDATALOAD site: distinct (pc, loc) pairs get distinct ids;
    the loaded value appears in expressions as [Sexpr.CDLoad id]. *)

type copy = { pc : int; dst : Sexpr.t; src : Sexpr.t; len : Sexpr.t }
(** One CALLDATACOPY. The destination region is tagged with the copy's
    pc; later MLOADs from it yield [Sexpr.MemItem (pc, off)]. *)

type subject = Sub_load of int | Sub_region of int

type usage_kind =
  | Mask_and of Evm.U256.t   (** AND with a constant mask (R11/R12/R16) *)
  | Mask_signext of int      (** SIGNEXTEND k (R13) *)
  | Mask_bool                (** double ISZERO (R14) *)
  | Byte_read                (** BYTE applied (R17/R18/R26/R31) *)
  | Signed_use               (** SDIV/SMOD operand (R15) *)
  | Math_use                 (** arithmetic operand (R16) *)
  | Range_lt of Evm.U256.t   (** branch-asserted value < bound (R27/R30) *)
  | Range_sgt of Evm.U256.t  (** branch-guarded value > bound (R28/R29) *)
  | Range_slt of Evm.U256.t  (** branch-guarded value < bound, signed *)

type usage = { upc : int; subject : subject; kind : usage_kind }

type t = {
  loads : load list;            (** ascending id *)
  copies : copy list;           (** program order of first occurrence *)
  usages : usage list;
  jumpi_conds : (int, Sexpr.t list) Hashtbl.t;
      (** conditions observed at each JUMPI site (deduped, capped) *)
  jumpi_targets : (int, int) Hashtbl.t;
      (** concrete taken-branch target of each JUMPI site *)
  paths_explored : int;
  forks_pruned : int;           (** forks skipped on a static prune hint *)
  steps_exhausted : bool;       (** some path hit the per-path step budget *)
  paths_exhausted : bool;       (** the path budget was hit with work pending *)
}

val truncated : t -> bool
(** Either budget was exhausted: the trace may be missing access events,
    so downstream results are partial rather than definitive. *)

val load_by_id : t -> int -> load option
val loads_at_const : t -> (int * load) list
(** Loads whose location is a compile-time constant, with the offset. *)

val usages_of : t -> subject -> usage_kind list
val conds_at : t -> int -> Sexpr.t list
val pp : Format.formatter -> t -> unit
