(** Bounded symbolic execution of one function body.

    The executor explores paths from the function entry with the call
    data fully symbolic, forking at branches whose condition involves
    symbols and following the concrete edge otherwise. Environment reads
    (CALLER, CALLVALUE, ...) are free symbols; SHA3 and SLOAD results are
    free symbols; a jump to a symbolic target ends the path (the paper
    notes only a handful of deployed contracts have such jumps). Loops
    with symbolic guards are unrolled a bounded number of times — the
    rules only need one iteration's worth of events. *)

type budget = {
  max_paths : int;       (** default 512 *)
  max_steps : int;       (** per path, default 20_000 *)
  max_forks_per_pc : int; (** symbolic-loop unrolling bound, default 3 *)
}

val default_budget : budget

type prune_decision = Take_jump | Take_fallthrough
(** A static pre-screen's verdict for a JUMPI site: only one arm can
    matter for call-data access, so follow it instead of forking. *)

type program
(** A disassembled program ready for repeated runs: the instruction
    index and jump-destination set are built once. Read-only after
    {!prepare}, so a program can be shared across domains. *)

val prepare : string -> program
(** [prepare code] disassembles and indexes the bytecode. *)

val code : program -> string
val instructions : program -> Evm.Disasm.instruction list

val run_prepared :
  ?budget:budget ->
  ?prune:(int -> prune_decision option) ->
  program ->
  entry:int ->
  init_stack:Sexpr.t list ->
  unit ->
  Trace.t
(** Explore from [entry] without re-disassembling. [prune] is consulted
    at each JUMPI whose condition stays symbolic; a decision makes the
    executor follow that single arm (counted in
    [Trace.forks_pruned]) instead of forking. *)

val run :
  ?budget:budget ->
  ?prune:(int -> prune_decision option) ->
  code:string ->
  entry:int ->
  init_stack:Sexpr.t list ->
  unit ->
  Trace.t
(** [run ~code] is [run_prepared (prepare code)] — one-shot convenience. *)
