open Evm

(* The symex library has its own [Trace] (the symbolic observation
   record); the telemetry layer is aliased to avoid the clash. *)
module Tr = Sigrec_trace.Trace

module Imap = Map.Make (Int)

type budget = { max_paths : int; max_steps : int; max_forks_per_pc : int }

let default_budget = { max_paths = 512; max_steps = 20_000; max_forks_per_pc = 3 }

type prune_decision = Take_jump | Take_fallthrough

type state = {
  pc : int;
  stack : Sexpr.t list;
  mem : Sexpr.t Imap.t;
  forks : int Imap.t; (* per-JUMPI fork counts on this path *)
  steps : int;
}

(* Mutable per-run recorder with global deduplication across paths.
   Dedup keys use interned-node ids: structurally equal expressions are
   physically equal after interning, so (pc, Sexpr.id) identifies an
   event as precisely as the old printed-string keys did, without the
   printing. *)
type recorder = {
  load_ids : (int * int, int) Hashtbl.t; (* (pc, loc id) -> load id *)
  mutable loads : Trace.load list;
  mutable next_load : int;
  copy_keys : (int * int * int, unit) Hashtbl.t; (* pc, src id, len id *)
  mutable copies : Trace.copy list;
  usage_keys : (int * Trace.subject * Trace.usage_kind, unit) Hashtbl.t;
  mutable usages : Trace.usage list;
  jumpi_conds : (int, Sexpr.t list) Hashtbl.t;
  jumpi_targets : (int, int) Hashtbl.t;
  regions : (int * int) Stack.t; (* (base, region id = copy pc), latest first *)
  region_bases : (int, int) Hashtbl.t; (* rid -> lowest base *)
  mutable paths : int;
  mutable pruned : int;
  mutable steps_hit : bool;
}

let make_recorder () =
  {
    load_ids = Hashtbl.create 64;
    loads = [];
    next_load = 0;
    copy_keys = Hashtbl.create 64;
    copies = [];
    usage_keys = Hashtbl.create 64;
    usages = [];
    jumpi_conds = Hashtbl.create 64;
    jumpi_targets = Hashtbl.create 64;
    regions = Stack.create ();
    region_bases = Hashtbl.create 16;
    paths = 0;
    pruned = 0;
    steps_hit = false;
  }

let record_load r pc loc =
  let key = (pc, Sexpr.id loc) in
  match Hashtbl.find_opt r.load_ids key with
  | Some id -> id
  | None ->
    let id = r.next_load in
    r.next_load <- id + 1;
    Hashtbl.replace r.load_ids key id;
    r.loads <- { Trace.id; pc; loc } :: r.loads;
    id

let record_copy r pc dst src len =
  let key = (pc, Sexpr.id src, Sexpr.id len) in
  if not (Hashtbl.mem r.copy_keys key) then begin
    Hashtbl.replace r.copy_keys key ();
    r.copies <- { Trace.pc; dst; src; len } :: r.copies
  end;
  (* register the destination region for MLOAD attribution *)
  match Sexpr.to_const_int dst with
  | Some base ->
    (match Hashtbl.find_opt r.region_bases pc with
    | Some b when b <= base -> ()
    | _ -> Hashtbl.replace r.region_bases pc base);
    Stack.push (base, pc) r.regions
  | None -> ()

let record_usage r upc subject kind =
  let key = (upc, subject, kind) in
  if not (Hashtbl.mem r.usage_keys key) then begin
    Hashtbl.replace r.usage_keys key ();
    r.usages <- { Trace.upc; subject; kind } :: r.usages
  end

let record_jumpi_cond r pc cond =
  let existing =
    match Hashtbl.find_opt r.jumpi_conds pc with Some l -> l | None -> []
  in
  if List.length existing < 8 && not (List.exists (Sexpr.equal cond) existing)
  then Hashtbl.replace r.jumpi_conds pc (cond :: existing)

(* The raw parameter value an operand denotes (possibly under masks). *)
let subject_of e =
  match Sexpr.subject e with
  | Some (`Load id) -> Some (Trace.Sub_load id)
  | Some (`Region rid) -> Some (Trace.Sub_region rid)
  | None -> None

(* Is the operand exactly a raw (unmasked) value? Mask events should
   only fire on direct applications. *)
let raw_subject e =
  match Sexpr.node e with
  | Sexpr.CDLoad id -> Some (Trace.Sub_load id)
  | Sexpr.MemItem (rid, _) -> Some (Trace.Sub_region rid)
  | _ -> None

let region_lookup r off =
  (* find the most recent copy region whose base is <= off, within a
     2 KiB window (regions are allocated far apart by the workloads we
     analyse; real solc keeps them disjoint via the free pointer) *)
  let best = ref None in
  Stack.iter
    (fun (base, rid) ->
      if !best = None && off >= base && off - base < 0x800 then
        best := Some (rid, off - base))
    r.regions;
  !best


(* A disassembled program ready for repeated runs: the instruction
   index and jump-destination set are built once and shared across
   every entry point (and, being read-only after [prepare], across
   domains). *)
type program = {
  code : string;
  instrs : Disasm.instruction list;
  by_offset : (int, Opcode.t) Hashtbl.t;
  jumpdests : (int, unit) Hashtbl.t;
}

let prepare code =
  let instrs = Disasm.disassemble code in
  let by_offset = Hashtbl.create (List.length instrs) in
  List.iter
    (fun i -> Hashtbl.replace by_offset i.Disasm.offset i.Disasm.op)
    instrs;
  let jumpdests = Hashtbl.create 32 in
  List.iter
    (fun i ->
      if i.Disasm.op = Opcode.JUMPDEST then
        Hashtbl.replace jumpdests i.Disasm.offset ())
    instrs;
  { code; instrs; by_offset; jumpdests }

let code p = p.code
let instructions p = p.instrs

let run_prepared ?(budget = default_budget) ?(prune = fun _ -> None) program
    ~entry ~init_stack () =
  let r = make_recorder () in
  let t0 = if Tr.enabled () then Tr.now_us () else 0. in
  let { code; by_offset; jumpdests; _ } = program in
  (* free-symbol names are per-run so that a run's trace depends only on
     its own inputs: re-running the same (program, entry) yields
     byte-identical symbols no matter what ran before or concurrently *)
  let env_counter = ref 0 in
  let fresh_env prefix =
    incr env_counter;
    Sexpr.env (Printf.sprintf "%s_%d" prefix !env_counter)
  in
  let worklist = Stack.create () in
  Stack.push
    { pc = entry; stack = init_stack; mem = Imap.empty; forks = Imap.empty;
      steps = 0 }
    worklist;
  let pop_stack st =
    match st.stack with
    | v :: rest -> (v, { st with stack = rest })
    | [] ->
      (* robustness: an empty stack yields a fresh free symbol rather
         than ending the analysis *)
      (fresh_env "uf", st)
  in
  let pop2 st =
    let a, st = pop_stack st in
    let b, st = pop_stack st in
    (a, b, st)
  in
  let pop3 st =
    let a, st = pop_stack st in
    let b, st = pop_stack st in
    let c, st = pop_stack st in
    (a, b, c, st)
  in
  let push v st = { st with stack = v :: st.stack } in
  while (not (Stack.is_empty worklist)) && r.paths < budget.max_paths do
    let st = ref (Stack.pop worklist) in
    r.paths <- r.paths + 1;
    let running = ref true in
    while !running do
      let s = !st in
      if s.steps > budget.max_steps then begin
        r.steps_hit <- true;
        running := false
      end
      else
        match Hashtbl.find_opt by_offset s.pc with
        | None -> running := false
        | Some op ->
          let s = { s with steps = s.steps + 1 } in
          (* sampled progress beacon: the mask test is one land+compare
             per step, and nothing allocates unless tracing is on *)
          if s.steps land Tr.sample_mask () = 0 && Tr.enabled () then
            Tr.counter Tr.Symex "steps" s.steps;
          let next = s.pc + Opcode.size op in
          let continue s' = st := { s' with pc = next } in
          let binop bop =
            let a, b, s = pop2 s in
            (* usage events from direct operand shapes *)
            (match bop with
            | Sexpr.Band -> (
              match (raw_subject a, Sexpr.to_const b) with
              | Some subj, Some m -> record_usage r s.pc subj (Trace.Mask_and m)
              | _ -> (
                match (raw_subject b, Sexpr.to_const a) with
                | Some subj, Some m ->
                  record_usage r s.pc subj (Trace.Mask_and m)
                | _ -> ()))
            | Sexpr.Bsignext -> (
              match (Sexpr.to_const_int a, raw_subject b) with
              | Some k, Some subj ->
                record_usage r s.pc subj (Trace.Mask_signext k)
              | _ -> ())
            | Sexpr.Bbyte -> (
              match subject_of b with
              | Some subj -> record_usage r s.pc subj Trace.Byte_read
              | None -> ())
            | Sexpr.Bsdiv | Sexpr.Bsmod -> (
              (match subject_of a with
              | Some subj -> record_usage r s.pc subj Trace.Signed_use
              | None -> ());
              match subject_of b with
              | Some subj -> record_usage r s.pc subj Trace.Signed_use
              | None -> ())
            | Sexpr.Badd | Sexpr.Bsub | Sexpr.Bmul | Sexpr.Bdiv | Sexpr.Bmod
            | Sexpr.Bexp -> (
              (match subject_of a with
              | Some subj -> record_usage r s.pc subj Trace.Math_use
              | None -> ());
              match subject_of b with
              | Some subj -> record_usage r s.pc subj Trace.Math_use
              | None -> ())
            | _ -> ());
            continue (push (Sexpr.bin bop a b) s)
          in
          (match op with
          | Opcode.STOP | Opcode.RETURN | Opcode.REVERT | Opcode.INVALID
          | Opcode.SELFDESTRUCT | Opcode.UNKNOWN _ ->
            running := false
          | Opcode.ADD -> binop Sexpr.Badd
          | Opcode.MUL -> binop Sexpr.Bmul
          | Opcode.SUB -> binop Sexpr.Bsub
          | Opcode.DIV -> binop Sexpr.Bdiv
          | Opcode.SDIV -> binop Sexpr.Bsdiv
          | Opcode.MOD -> binop Sexpr.Bmod
          | Opcode.SMOD -> binop Sexpr.Bsmod
          | Opcode.EXP -> binop Sexpr.Bexp
          | Opcode.ADDMOD ->
            let a, b, _, s = pop3 s in
            continue (push (Sexpr.bin Sexpr.Badd a b) s)
          | Opcode.MULMOD ->
            let a, b, _, s = pop3 s in
            continue (push (Sexpr.bin Sexpr.Bmul a b) s)
          | Opcode.SIGNEXTEND -> binop Sexpr.Bsignext
          | Opcode.LT -> binop Sexpr.Blt
          | Opcode.GT -> binop Sexpr.Bgt
          | Opcode.SLT -> binop Sexpr.Bslt
          | Opcode.SGT -> binop Sexpr.Bsgt
          | Opcode.EQ -> binop Sexpr.Beq
          | Opcode.AND -> binop Sexpr.Band
          | Opcode.OR -> binop Sexpr.Bor
          | Opcode.XOR -> binop Sexpr.Bxor
          | Opcode.BYTE -> binop Sexpr.Bbyte
          | Opcode.SHL -> binop Sexpr.Bshl
          | Opcode.SHR -> binop Sexpr.Bshr
          | Opcode.SAR -> binop Sexpr.Bsar
          | Opcode.ISZERO ->
            let a, s = pop_stack s in
            (match Sexpr.node a with
            | Sexpr.Un (Sexpr.Uiszero, inner) -> (
              match raw_subject inner with
              | Some subj -> record_usage r s.pc subj Trace.Mask_bool
              | None -> ())
            | _ -> ());
            continue (push (Sexpr.un Sexpr.Uiszero a) s)
          | Opcode.NOT ->
            let a, s = pop_stack s in
            continue (push (Sexpr.un Sexpr.Unot a) s)
          | Opcode.SHA3 ->
            let _, _, s = pop2 s in
            continue (push (fresh_env "sha3") s)
          | Opcode.CALLDATALOAD ->
            let loc, s = pop_stack s in
            let id = record_load r s.pc loc in
            continue (push (Sexpr.cdload id) s)
          | Opcode.CALLDATASIZE -> continue (push (Sexpr.cdsize ()) s)
          | Opcode.CALLDATACOPY ->
            let dst, src, len, s = pop3 s in
            record_copy r s.pc dst src len;
            continue s
          | Opcode.CODESIZE ->
            continue (push (Sexpr.of_int (String.length code)) s)
          | Opcode.CODECOPY ->
            let _, _, _, s = pop3 s in
            continue s
          | Opcode.CALLER -> continue (push (Sexpr.env "caller") s)
          | Opcode.CALLVALUE -> continue (push (Sexpr.env "callvalue") s)
          | Opcode.ORIGIN -> continue (push (Sexpr.env "origin") s)
          | Opcode.ADDRESS -> continue (push (Sexpr.env "address") s)
          | Opcode.GASPRICE -> continue (push (Sexpr.env "gasprice") s)
          | Opcode.COINBASE -> continue (push (Sexpr.env "coinbase") s)
          | Opcode.TIMESTAMP -> continue (push (Sexpr.env "timestamp") s)
          | Opcode.NUMBER -> continue (push (Sexpr.env "number") s)
          | Opcode.PREVRANDAO -> continue (push (Sexpr.env "prevrandao") s)
          | Opcode.GASLIMIT -> continue (push (Sexpr.env "gaslimit") s)
          | Opcode.CHAINID -> continue (push (Sexpr.env "chainid") s)
          | Opcode.SELFBALANCE -> continue (push (Sexpr.env "selfbalance") s)
          | Opcode.BASEFEE -> continue (push (Sexpr.env "basefee") s)
          | Opcode.BALANCE | Opcode.EXTCODESIZE | Opcode.EXTCODEHASH
          | Opcode.BLOCKHASH ->
            let _, s = pop_stack s in
            continue (push (fresh_env "ext") s)
          | Opcode.EXTCODECOPY ->
            let _, _, _, s = pop3 s in
            let _, s = pop_stack s in
            continue s
          | Opcode.RETURNDATASIZE -> continue (push (fresh_env "rds") s)
          | Opcode.RETURNDATACOPY ->
            let _, _, _, s = pop3 s in
            continue s
          | Opcode.POP ->
            let _, s = pop_stack s in
            continue s
          | Opcode.MLOAD -> (
            let loc, s = pop_stack s in
            match Sexpr.to_const_int loc with
            | Some off -> (
              match Imap.find_opt off s.mem with
              | Some v -> continue (push v s)
              | None -> (
                match region_lookup r off with
                | Some (rid, rel) ->
                  continue (push (Sexpr.mem_item rid (Sexpr.of_int rel)) s)
                | None -> continue (push (fresh_env "mload") s)))
            | None -> continue (push (fresh_env "mload") s))
          | Opcode.MSTORE -> (
            let loc, v, s = pop2 s |> fun (a, b, s) -> (a, b, s) in
            match Sexpr.to_const_int loc with
            | Some off -> continue { s with mem = Imap.add off v s.mem }
            | None -> continue s)
          | Opcode.MSTORE8 ->
            let _, _, s = pop2 s in
            continue s
          | Opcode.SLOAD ->
            let _, s = pop_stack s in
            continue (push (fresh_env "sload") s)
          | Opcode.SSTORE ->
            let _, _, s = pop2 s in
            continue s
          | Opcode.PC -> continue (push (Sexpr.of_int s.pc) s)
          | Opcode.MSIZE -> continue (push (fresh_env "msize") s)
          | Opcode.GAS -> continue (push (fresh_env "gas") s)
          | Opcode.JUMPDEST -> continue s
          | Opcode.PUSH (_, v) -> continue (push (Sexpr.const v) s)
          | Opcode.DUP n ->
            let v = try List.nth s.stack (n - 1) with _ -> fresh_env "uf" in
            continue (push v s)
          | Opcode.SWAP n ->
            let stack = s.stack in
            if List.length stack < n + 1 then running := false
            else begin
              let arr = Array.of_list stack in
              let tmp = arr.(0) in
              arr.(0) <- arr.(n);
              arr.(n) <- tmp;
              continue { s with stack = Array.to_list arr }
            end
          | Opcode.LOG n ->
            let s = ref s in
            for _ = 1 to n + 2 do
              let _, s' = pop_stack !s in
              s := s'
            done;
            continue !s
          | Opcode.CREATE ->
            let _, _, _, s = pop3 s in
            continue (push (fresh_env "create") s)
          | Opcode.CREATE2 ->
            let _, _, _, s = pop3 s in
            let _, s = pop_stack s in
            continue (push (fresh_env "create2") s)
          | Opcode.CALL | Opcode.CALLCODE ->
            let s = ref s in
            for _ = 1 to 7 do
              let _, s' = pop_stack !s in
              s := s'
            done;
            continue (push (fresh_env "call") !s)
          | Opcode.DELEGATECALL | Opcode.STATICCALL ->
            let s = ref s in
            for _ = 1 to 6 do
              let _, s' = pop_stack !s in
              s := s'
            done;
            continue (push (fresh_env "call") !s)
          | Opcode.JUMP -> (
            let target, s = pop_stack s in
            match Sexpr.to_const_int target with
            | Some t when Hashtbl.mem jumpdests t -> st := { s with pc = t }
            | _ -> running := false)
          | Opcode.JUMPI -> (
            let target, cond, s = pop2 s |> fun (a, b, s) -> (a, b, s) in
            match Sexpr.to_const_int target with
            | Some t when Hashtbl.mem jumpdests t -> (
              record_jumpi_cond r s.pc cond;
              Hashtbl.replace r.jumpi_targets s.pc t;
              (* Vyper-style range checks: guard compares a raw loaded
                 value against a constant bound *)
              let core, iszeros = Sexpr.iszero_depth cond in
              (match Sexpr.node core with
              | Sexpr.Bin (cmp, lhs, { Sexpr.node = Sexpr.Const bound; _ }) -> (
                match raw_subject lhs with
                | Some subj ->
                  let kind =
                    match (cmp, iszeros mod 2) with
                    | Sexpr.Blt, _ -> Some (Trace.Range_lt bound)
                    | Sexpr.Bsgt, _ -> Some (Trace.Range_sgt bound)
                    | Sexpr.Bslt, _ -> Some (Trace.Range_slt bound)
                    | _ -> None
                  in
                  Option.iter (fun k -> record_usage r s.pc subj k) kind
                | None -> ())
              | _ -> ());
              match Sexpr.eval_concrete cond with
              | Some v ->
                if U256.is_zero v then continue s else st := { s with pc = t }
              | None -> (
                match prune s.pc with
                | Some decision ->
                  (* the static pass proved only one arm can matter for
                     call-data access: follow it instead of forking *)
                  r.pruned <- r.pruned + 1;
                  if Tr.enabled () then
                    Tr.instant Tr.Symex "prune" [ ("pc", Tr.Int s.pc) ];
                  (match decision with
                  | Take_jump -> st := { s with pc = t }
                  | Take_fallthrough -> continue s)
                | None ->
                  let count =
                    match Imap.find_opt s.pc s.forks with
                    | Some c -> c
                    | None -> 0
                  in
                  let s =
                    { s with forks = Imap.add s.pc (count + 1) s.forks }
                  in
                  if count >= budget.max_forks_per_pc then
                    (* unrolling bound hit: take only the jump, which is
                       the loop exit in compiler-emitted loops *)
                    st := { s with pc = t }
                  else begin
                    if Tr.enabled () then
                      Tr.instant Tr.Symex "fork" [ ("pc", Tr.Int s.pc) ];
                    Stack.push { s with pc = t } worklist;
                    continue s
                  end))
            | _ -> running := false))
    done
  done;
  if Tr.enabled () then
    Tr.complete Tr.Symex "run" ~t0_us:t0
      [
        ("entry", Tr.Int entry);
        ("paths", Tr.Int r.paths);
        ("pruned", Tr.Int r.pruned);
        ("steps_exhausted", Tr.Bool r.steps_hit);
      ];
  {
    Trace.loads =
      List.sort (fun a b -> compare a.Trace.id b.Trace.id) r.loads;
    copies = List.rev r.copies;
    usages = List.rev r.usages;
    jumpi_conds = r.jumpi_conds;
    jumpi_targets = r.jumpi_targets;
    paths_explored = r.paths;
    forks_pruned = r.pruned;
    steps_exhausted = r.steps_hit;
    paths_exhausted = not (Stack.is_empty worklist);
  }

let run ?budget ?prune ~code ~entry ~init_stack () =
  run_prepared ?budget ?prune (prepare code) ~entry ~init_stack ()
