open Evm

(* The symex library has its own [Trace] (the symbolic observation
   record); the telemetry layer is aliased to avoid the clash. *)
module Tr = Sigrec_trace.Trace

module Imap = Map.Make (Int)

type budget = { max_paths : int; max_steps : int; max_forks_per_pc : int }

let default_budget = { max_paths = 512; max_steps = 20_000; max_forks_per_pc = 3 }

type prune_decision = Take_jump | Take_fallthrough

type state = {
  pc : int;
  stack : Sexpr.t list;
  mem : Sexpr.t Imap.t;
  forks : int Imap.t; (* per-JUMPI fork counts on this path *)
  steps : int;
}

(* Mutable per-run recorder with global deduplication across paths.
   Dedup keys use interned-node ids: structurally equal expressions are
   physically equal after interning, so (pc, Sexpr.id) identifies an
   event as precisely as the old printed-string keys did, without the
   printing. *)
type recorder = {
  load_ids : (int * int, int) Hashtbl.t; (* (pc, loc id) -> load id *)
  mutable loads : Trace.load list;
  mutable next_load : int;
  copy_keys : (int * int * int, unit) Hashtbl.t; (* pc, src id, len id *)
  mutable copies : Trace.copy list;
  usage_keys : (int * Trace.subject * Trace.usage_kind, unit) Hashtbl.t;
  mutable usages : Trace.usage list;
  mutable jumpi_conds : (int, Sexpr.t list) Hashtbl.t;
  mutable jumpi_targets : (int, int) Hashtbl.t;
  regions : (int * int) Stack.t; (* (base, region id = copy pc), latest first *)
  region_bases : (int, int) Hashtbl.t; (* rid -> lowest base *)
  mutable paths : int;
  mutable pruned : int;
  mutable steps_hit : bool;
}

let make_recorder () =
  {
    load_ids = Hashtbl.create 64;
    loads = [];
    next_load = 0;
    copy_keys = Hashtbl.create 64;
    copies = [];
    usage_keys = Hashtbl.create 64;
    usages = [];
    jumpi_conds = Hashtbl.create 64;
    jumpi_targets = Hashtbl.create 64;
    regions = Stack.create ();
    region_bases = Hashtbl.create 16;
    paths = 0;
    pruned = 0;
    steps_hit = false;
  }

(* One recorder per domain, reset between runs: runs within a domain
   are sequential, so the dedup tables and region stack are scratch
   that can keep their bucket arrays warm ([Hashtbl.clear] preserves
   capacity). The two jumpi tables are the exception — the returned
   {!Trace.t} aliases them directly, so each run gets fresh ones. *)
let recorder_key = Stdlib.Domain.DLS.new_key make_recorder

let reset_recorder r =
  Hashtbl.clear r.load_ids;
  r.loads <- [];
  r.next_load <- 0;
  Hashtbl.clear r.copy_keys;
  r.copies <- [];
  Hashtbl.clear r.usage_keys;
  r.usages <- [];
  r.jumpi_conds <- Hashtbl.create 64;
  r.jumpi_targets <- Hashtbl.create 64;
  Stack.clear r.regions;
  Hashtbl.clear r.region_bases;
  r.paths <- 0;
  r.pruned <- 0;
  r.steps_hit <- false

let record_load r pc loc =
  let key = (pc, Sexpr.id loc) in
  match Hashtbl.find_opt r.load_ids key with
  | Some id -> id
  | None ->
    let id = r.next_load in
    r.next_load <- id + 1;
    Hashtbl.replace r.load_ids key id;
    r.loads <- { Trace.id; pc; loc } :: r.loads;
    id

let record_copy r pc dst src len =
  let key = (pc, Sexpr.id src, Sexpr.id len) in
  if not (Hashtbl.mem r.copy_keys key) then begin
    Hashtbl.replace r.copy_keys key ();
    r.copies <- { Trace.pc; dst; src; len } :: r.copies
  end;
  (* register the destination region for MLOAD attribution *)
  match Sexpr.to_const_int dst with
  | Some base ->
    (match Hashtbl.find_opt r.region_bases pc with
    | Some b when b <= base -> ()
    | _ -> Hashtbl.replace r.region_bases pc base);
    Stack.push (base, pc) r.regions
  | None -> ()

let record_usage r upc subject kind =
  let key = (upc, subject, kind) in
  if not (Hashtbl.mem r.usage_keys key) then begin
    Hashtbl.replace r.usage_keys key ();
    r.usages <- { Trace.upc; subject; kind } :: r.usages
  end

let record_jumpi_cond r pc cond =
  let existing =
    match Hashtbl.find_opt r.jumpi_conds pc with Some l -> l | None -> []
  in
  if List.length existing < 8 && not (List.exists (Sexpr.equal cond) existing)
  then Hashtbl.replace r.jumpi_conds pc (cond :: existing)

(* The raw parameter value an operand denotes (possibly under masks). *)
let subject_of e =
  match Sexpr.subject e with
  | Some (`Load id) -> Some (Trace.Sub_load id)
  | Some (`Region rid) -> Some (Trace.Sub_region rid)
  | None -> None

(* Is the operand exactly a raw (unmasked) value? Mask events should
   only fire on direct applications. *)
let raw_subject e =
  match Sexpr.node e with
  | Sexpr.CDLoad id -> Some (Trace.Sub_load id)
  | Sexpr.MemItem (rid, _) -> Some (Trace.Sub_region rid)
  | _ -> None

let region_lookup r off =
  (* find the most recent copy region whose base is <= off, within a
     2 KiB window (regions are allocated far apart by the workloads we
     analyse; real solc keeps them disjoint via the free pointer) *)
  let best = ref None in
  Stack.iter
    (fun (base, rid) ->
      if !best = None && off >= base && off - base < 0x800 then
        best := Some (rid, off - base))
    r.regions;
  !best


(* A disassembled program ready for repeated runs: the instruction
   index and jump-destination set are built once and shared across
   every entry point (and, being read-only after [prepare], across
   domains). *)
type program = {
  code : string;
  instrs : Disasm.instruction list;
  by_offset : (int, Opcode.t) Hashtbl.t;
  jumpdests : (int, unit) Hashtbl.t;
}

let prepare code =
  let instrs = Disasm.disassemble code in
  let by_offset = Hashtbl.create (List.length instrs) in
  List.iter
    (fun i -> Hashtbl.replace by_offset i.Disasm.offset i.Disasm.op)
    instrs;
  let jumpdests = Hashtbl.create 32 in
  List.iter
    (fun i ->
      if i.Disasm.op = Opcode.JUMPDEST then
        Hashtbl.replace jumpdests i.Disasm.offset ())
    instrs;
  { code; instrs; by_offset; jumpdests }

let code p = p.code
let instructions p = p.instrs

let run_prepared ?(budget = default_budget) ?(prune = fun _ -> None) program
    ~entry ~init_stack () =
  let r = Stdlib.Domain.DLS.get recorder_key in
  reset_recorder r;
  let t0 = if Tr.enabled () then Tr.now_us () else 0. in
  let { code; by_offset; jumpdests; _ } = program in
  (* free-symbol names are per-run so that a run's trace depends only on
     its own inputs: re-running the same (program, entry) yields
     byte-identical symbols no matter what ran before or concurrently *)
  let env_counter = ref 0 in
  let fresh_env prefix =
    incr env_counter;
    Sexpr.env (Printf.sprintf "%s_%d" prefix !env_counter)
  in
  let worklist = Stack.create () in
  Stack.push
    { pc = entry; stack = init_stack; mem = Imap.empty; forks = Imap.empty;
      steps = 0 }
    worklist;
  (* The path under execution lives in mutable locals, not a [state]
     record: the straight-line hot loop allocates nothing per step
     beyond the expressions it builds. [state] records are only
     materialized as fork snapshots pushed onto the worklist. *)
  let pc = ref 0 and stack = ref [] and steps = ref 0 in
  let mem = ref Imap.empty and forks = ref Imap.empty in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] ->
      (* robustness: an empty stack yields a fresh free symbol rather
         than ending the analysis *)
      fresh_env "uf"
  in
  let push v = stack := v :: !stack in
  let drop n =
    for _ = 1 to n do
      ignore (pop ())
    done
  in
  while (not (Stack.is_empty worklist)) && r.paths < budget.max_paths do
    let s0 = Stack.pop worklist in
    pc := s0.pc;
    stack := s0.stack;
    mem := s0.mem;
    forks := s0.forks;
    steps := s0.steps;
    r.paths <- r.paths + 1;
    let running = ref true in
    while !running do
      if !steps > budget.max_steps then begin
        r.steps_hit <- true;
        running := false
      end
      else
        match Hashtbl.find_opt by_offset !pc with
        | None -> running := false
        | Some op ->
          let cur_pc = !pc in
          incr steps;
          (* sampled progress beacon: the mask test is one land+compare
             per step, and nothing allocates unless tracing is on *)
          if !steps land Tr.sample_mask () = 0 && Tr.enabled () then
            Tr.counter Tr.Symex "steps" !steps;
          (* fallthrough by default; jump/halt handlers override *)
          pc := cur_pc + Opcode.size op;
          let binop bop =
            let a = pop () in
            let b = pop () in
            (* usage events from direct operand shapes *)
            (match bop with
            | Sexpr.Band -> (
              match (raw_subject a, Sexpr.to_const b) with
              | Some subj, Some m ->
                record_usage r cur_pc subj (Trace.Mask_and m)
              | _ -> (
                match (raw_subject b, Sexpr.to_const a) with
                | Some subj, Some m ->
                  record_usage r cur_pc subj (Trace.Mask_and m)
                | _ -> ()))
            | Sexpr.Bsignext -> (
              match (Sexpr.to_const_int a, raw_subject b) with
              | Some k, Some subj ->
                record_usage r cur_pc subj (Trace.Mask_signext k)
              | _ -> ())
            | Sexpr.Bbyte -> (
              match subject_of b with
              | Some subj -> record_usage r cur_pc subj Trace.Byte_read
              | None -> ())
            | Sexpr.Bsdiv | Sexpr.Bsmod -> (
              (match subject_of a with
              | Some subj -> record_usage r cur_pc subj Trace.Signed_use
              | None -> ());
              match subject_of b with
              | Some subj -> record_usage r cur_pc subj Trace.Signed_use
              | None -> ())
            | Sexpr.Badd | Sexpr.Bsub | Sexpr.Bmul | Sexpr.Bdiv | Sexpr.Bmod
            | Sexpr.Bexp -> (
              (match subject_of a with
              | Some subj -> record_usage r cur_pc subj Trace.Math_use
              | None -> ());
              match subject_of b with
              | Some subj -> record_usage r cur_pc subj Trace.Math_use
              | None -> ())
            | _ -> ());
            push (Sexpr.bin bop a b)
          in
          (match op with
          | Opcode.STOP | Opcode.RETURN | Opcode.REVERT | Opcode.INVALID
          | Opcode.SELFDESTRUCT | Opcode.UNKNOWN _ ->
            running := false
          | Opcode.ADD -> binop Sexpr.Badd
          | Opcode.MUL -> binop Sexpr.Bmul
          | Opcode.SUB -> binop Sexpr.Bsub
          | Opcode.DIV -> binop Sexpr.Bdiv
          | Opcode.SDIV -> binop Sexpr.Bsdiv
          | Opcode.MOD -> binop Sexpr.Bmod
          | Opcode.SMOD -> binop Sexpr.Bsmod
          | Opcode.EXP -> binop Sexpr.Bexp
          | Opcode.ADDMOD ->
            let a = pop () in
            let b = pop () in
            drop 1;
            push (Sexpr.bin Sexpr.Badd a b)
          | Opcode.MULMOD ->
            let a = pop () in
            let b = pop () in
            drop 1;
            push (Sexpr.bin Sexpr.Bmul a b)
          | Opcode.SIGNEXTEND -> binop Sexpr.Bsignext
          | Opcode.LT -> binop Sexpr.Blt
          | Opcode.GT -> binop Sexpr.Bgt
          | Opcode.SLT -> binop Sexpr.Bslt
          | Opcode.SGT -> binop Sexpr.Bsgt
          | Opcode.EQ -> binop Sexpr.Beq
          | Opcode.AND -> binop Sexpr.Band
          | Opcode.OR -> binop Sexpr.Bor
          | Opcode.XOR -> binop Sexpr.Bxor
          | Opcode.BYTE -> binop Sexpr.Bbyte
          | Opcode.SHL -> binop Sexpr.Bshl
          | Opcode.SHR -> binop Sexpr.Bshr
          | Opcode.SAR -> binop Sexpr.Bsar
          | Opcode.ISZERO ->
            let a = pop () in
            (match Sexpr.node a with
            | Sexpr.Un (Sexpr.Uiszero, inner) -> (
              match raw_subject inner with
              | Some subj -> record_usage r cur_pc subj Trace.Mask_bool
              | None -> ())
            | _ -> ());
            push (Sexpr.un Sexpr.Uiszero a)
          | Opcode.NOT ->
            let a = pop () in
            push (Sexpr.un Sexpr.Unot a)
          | Opcode.SHA3 ->
            drop 2;
            push (fresh_env "sha3")
          | Opcode.CALLDATALOAD ->
            let loc = pop () in
            let id = record_load r cur_pc loc in
            push (Sexpr.cdload id)
          | Opcode.CALLDATASIZE -> push (Sexpr.cdsize ())
          | Opcode.CALLDATACOPY ->
            let dst = pop () in
            let src = pop () in
            let len = pop () in
            record_copy r cur_pc dst src len
          | Opcode.CODESIZE -> push (Sexpr.of_int (String.length code))
          | Opcode.CODECOPY -> drop 3
          | Opcode.CALLER -> push (Sexpr.env "caller")
          | Opcode.CALLVALUE -> push (Sexpr.env "callvalue")
          | Opcode.ORIGIN -> push (Sexpr.env "origin")
          | Opcode.ADDRESS -> push (Sexpr.env "address")
          | Opcode.GASPRICE -> push (Sexpr.env "gasprice")
          | Opcode.COINBASE -> push (Sexpr.env "coinbase")
          | Opcode.TIMESTAMP -> push (Sexpr.env "timestamp")
          | Opcode.NUMBER -> push (Sexpr.env "number")
          | Opcode.PREVRANDAO -> push (Sexpr.env "prevrandao")
          | Opcode.GASLIMIT -> push (Sexpr.env "gaslimit")
          | Opcode.CHAINID -> push (Sexpr.env "chainid")
          | Opcode.SELFBALANCE -> push (Sexpr.env "selfbalance")
          | Opcode.BASEFEE -> push (Sexpr.env "basefee")
          | Opcode.BALANCE | Opcode.EXTCODESIZE | Opcode.EXTCODEHASH
          | Opcode.BLOCKHASH ->
            drop 1;
            push (fresh_env "ext")
          | Opcode.EXTCODECOPY -> drop 4
          | Opcode.RETURNDATASIZE -> push (fresh_env "rds")
          | Opcode.RETURNDATACOPY -> drop 3
          | Opcode.POP -> drop 1
          | Opcode.MLOAD -> (
            let loc = pop () in
            match Sexpr.to_const_int loc with
            | Some off -> (
              match Imap.find_opt off !mem with
              | Some v -> push v
              | None -> (
                match region_lookup r off with
                | Some (rid, rel) ->
                  push (Sexpr.mem_item rid (Sexpr.of_int rel))
                | None -> push (fresh_env "mload")))
            | None -> push (fresh_env "mload"))
          | Opcode.MSTORE -> (
            let loc = pop () in
            let v = pop () in
            match Sexpr.to_const_int loc with
            | Some off -> mem := Imap.add off v !mem
            | None -> ())
          | Opcode.MSTORE8 -> drop 2
          | Opcode.SLOAD ->
            drop 1;
            push (fresh_env "sload")
          | Opcode.SSTORE -> drop 2
          | Opcode.PC -> push (Sexpr.of_int cur_pc)
          | Opcode.MSIZE -> push (fresh_env "msize")
          | Opcode.GAS -> push (fresh_env "gas")
          | Opcode.JUMPDEST -> ()
          | Opcode.PUSH (_, v) -> push (Sexpr.const v)
          | Opcode.DUP n ->
            let v = try List.nth !stack (n - 1) with _ -> fresh_env "uf" in
            push v
          | Opcode.SWAP n ->
            let cur = !stack in
            if List.length cur < n + 1 then running := false
            else begin
              let arr = Array.of_list cur in
              let tmp = arr.(0) in
              arr.(0) <- arr.(n);
              arr.(n) <- tmp;
              stack := Array.to_list arr
            end
          | Opcode.LOG n -> drop (n + 2)
          | Opcode.CREATE ->
            drop 3;
            push (fresh_env "create")
          | Opcode.CREATE2 ->
            drop 4;
            push (fresh_env "create2")
          | Opcode.CALL | Opcode.CALLCODE ->
            drop 7;
            push (fresh_env "call")
          | Opcode.DELEGATECALL | Opcode.STATICCALL ->
            drop 6;
            push (fresh_env "call")
          | Opcode.JUMP -> (
            let target = pop () in
            match Sexpr.to_const_int target with
            | Some t when Hashtbl.mem jumpdests t -> pc := t
            | _ -> running := false)
          | Opcode.JUMPI -> (
            let target = pop () in
            let cond = pop () in
            match Sexpr.to_const_int target with
            | Some t when Hashtbl.mem jumpdests t -> (
              record_jumpi_cond r cur_pc cond;
              Hashtbl.replace r.jumpi_targets cur_pc t;
              (* Vyper-style range checks: guard compares a raw loaded
                 value against a constant bound *)
              let core, iszeros = Sexpr.iszero_depth cond in
              (match Sexpr.node core with
              | Sexpr.Bin (cmp, lhs, { Sexpr.node = Sexpr.Const bound; _ }) -> (
                match raw_subject lhs with
                | Some subj ->
                  let kind =
                    match (cmp, iszeros mod 2) with
                    | Sexpr.Blt, _ -> Some (Trace.Range_lt bound)
                    | Sexpr.Bsgt, _ -> Some (Trace.Range_sgt bound)
                    | Sexpr.Bslt, _ -> Some (Trace.Range_slt bound)
                    | _ -> None
                  in
                  Option.iter (fun k -> record_usage r cur_pc subj k) kind
                | None -> ())
              | _ -> ());
              match Sexpr.eval_concrete cond with
              | Some v -> if not (U256.is_zero v) then pc := t
              | None -> (
                match prune cur_pc with
                | Some decision ->
                  (* the static pass proved only one arm can matter for
                     call-data access: follow it instead of forking *)
                  r.pruned <- r.pruned + 1;
                  if Tr.enabled () then
                    Tr.instant Tr.Symex "prune" [ ("pc", Tr.Int cur_pc) ];
                  (match decision with
                  | Take_jump -> pc := t
                  | Take_fallthrough -> ())
                | None ->
                  let count =
                    match Imap.find_opt cur_pc !forks with
                    | Some c -> c
                    | None -> 0
                  in
                  forks := Imap.add cur_pc (count + 1) !forks;
                  if count >= budget.max_forks_per_pc then
                    (* unrolling bound hit: take only the jump, which is
                       the loop exit in compiler-emitted loops *)
                    pc := t
                  else begin
                    if Tr.enabled () then
                      Tr.instant Tr.Symex "fork" [ ("pc", Tr.Int cur_pc) ];
                    Stack.push
                      { pc = t; stack = !stack; mem = !mem; forks = !forks;
                        steps = !steps }
                      worklist
                  end))
            | _ -> running := false))
    done
  done;
  if Tr.enabled () then
    Tr.complete Tr.Symex "run" ~t0_us:t0
      [
        ("entry", Tr.Int entry);
        ("paths", Tr.Int r.paths);
        ("pruned", Tr.Int r.pruned);
        ("steps_exhausted", Tr.Bool r.steps_hit);
      ];
  {
    Trace.loads =
      List.sort (fun a b -> compare a.Trace.id b.Trace.id) r.loads;
    copies = List.rev r.copies;
    usages = List.rev r.usages;
    jumpi_conds = r.jumpi_conds;
    jumpi_targets = r.jumpi_targets;
    paths_explored = r.paths;
    forks_pruned = r.pruned;
    steps_exhausted = r.steps_hit;
    paths_exhausted = not (Stack.is_empty worklist);
  }

let run ?budget ?prune ~code ~entry ~init_stack () =
  run_prepared ?budget ?prune (prepare code) ~entry ~init_stack ()
