(** Generic hash-cons table.

    Backs the {!Sexpr} interner: maps a construction request to its
    canonical value, handing each fresh value a unique id drawn from a
    counter that can be shared between several tables (so ids are unique
    across an interner, not just within one table).

    A table is deliberately {e not} thread-safe — the intended use is
    one interner per domain, held in [Domain.DLS], which keeps
    [Engine.recover_all ~jobs] fan-out safe without any locking. *)

type ('k, 'v) t

val create :
  ?ids:int ref -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> int -> ('k, 'v) t
(** [create ~hash ~equal n] makes an empty table with initial capacity
    [n]. [?ids] supplies the shared id counter (a fresh one is made when
    omitted). *)

val find_or_add : ('k, 'v) t -> 'k -> ('k -> id:int -> 'v) -> 'v
(** [find_or_add t k build] returns the value already interned for [k],
    or calls [build k ~id] with a fresh unique id, stores the result
    under [k] and returns it. [build] receives the key so callers can
    pass a closed function and keep the hit path allocation-free.
    [build] may itself intern into [t] (the bucket is re-located after
    it returns) but must not insert [k]. *)

val length : ('k, 'v) t -> int
(** Number of distinct keys interned. *)

val hits : ('k, 'v) t -> int
(** Lookups answered by an already-interned value. *)

val misses : ('k, 'v) t -> int
(** Lookups that had to build a fresh value. *)

val iter_values : ('v -> unit) -> ('k, 'v) t -> unit
(** Apply [f] to every interned value, in unspecified order. Backs
    {!Sexpr.snapshot}; [f] must not intern into the table. *)
