(* Generic hash-cons table.

   Maps a construction request (the key) to its canonical, uniquely
   numbered value. Buckets are plain association lists; the table doubles
   when the load factor passes 2. A table is single-domain state: Sexpr
   keeps one set of tables per domain in Domain.DLS, so no locking is
   needed here. *)

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  ids : int ref;  (* shared across the tables of one interner *)
  mutable buckets : ('k * 'v) list array;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?ids ~hash ~equal n =
  {
    hash;
    equal;
    ids = (match ids with Some r -> r | None -> ref 0);
    buckets = Array.make (max 8 n) [];
    size = 0;
    hits = 0;
    misses = 0;
  }

let index t k = (t.hash k land Stdlib.max_int) mod Array.length t.buckets

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (List.iter (fun ((k, _) as cell) ->
         let i = index t k in
         t.buckets.(i) <- cell :: t.buckets.(i)))
    old

(* [build] receives the key so call sites can pass a closed (statically
   allocated) function, and the bucket walk is top-level recursion
   rather than an inner closure: the hit path — the overwhelmingly
   common one — then allocates nothing at all. *)
let rec find_in t k build bucket =
  match bucket with
  | [] -> add t k build
  | (k', v) :: rest ->
    if t.equal k k' then begin
      t.hits <- t.hits + 1;
      v
    end
    else find_in t k build rest

and add t k build =
  t.misses <- t.misses + 1;
  let id = !(t.ids) in
  t.ids := id + 1;
  (* [build] may recursively intern other keys (and so resize the
     table), so the bucket index is recomputed after it returns. *)
  let v = build k ~id in
  let i = index t k in
  t.buckets.(i) <- (k, v) :: t.buckets.(i);
  t.size <- t.size + 1;
  if t.size > 2 * Array.length t.buckets then resize t;
  v

let find_or_add t k build = find_in t k build t.buckets.(index t k)

let length t = t.size
let hits t = t.hits
let misses t = t.misses

let iter_values f t =
  Array.iter (List.iter (fun (_, v) -> f v)) t.buckets
