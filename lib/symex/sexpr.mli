(** Symbolic expressions over the call data.

    TASE treats the call data as symbols (paper §4.2): every value loaded
    from it is a fresh [CDLoad], every environment read a free [Env]
    symbol, and operations build terms. Constant subterms fold so
    concrete address arithmetic stays concrete.

    Terms are hash-consed: the smart constructors intern every node into
    a per-domain table ({!Hc}, held in [Domain.DLS]), so structurally
    equal terms are physically equal within a domain. {!equal} is
    pointer comparison, {!hash} reads a cached field, and {!compare}
    orders by interning id. Construction outside the smart constructors
    is impossible ([t] is a private record); pattern-match via {!node}.

    The interning id is a per-domain creation counter: it is stable
    within a run but depends on construction order, so it must never be
    used to order user-visible output (load ids from [Trace] are the
    deterministic ordering source). *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bsdiv | Bmod | Bsmod | Bexp
  | Band | Bor | Bxor
  | Blt | Bgt | Bslt | Bsgt | Beq
  | Bbyte | Bshl | Bshr | Bsar | Bsignext

type unop = Unot | Uiszero

type t = private { node : node; id : int; hkey : int }

and node =
  | Const of Evm.U256.t
  | CDLoad of int        (** value of calldata-load event [id] *)
  | CDSize
  | Env of string        (** free environment symbol *)
  | MemItem of int * t   (** word read from tagged memory region [rid] at
                             the given relative offset *)
  | Bin of binop * t * t
  | Un of unop * t

val node : t -> node
val id : t -> int
(** Unique interning id within the current domain. *)

val hash : t -> int
(** Cached structural hash, O(1). *)

(** {1 Interning constructors} *)

val const : Evm.U256.t -> t
val of_int : int -> t
val cdload : int -> t
val cdsize : unit -> t
val env : string -> t

val mem_item : int -> t -> t
(** [mem_item rid off]: word read from region [rid] at offset [off]. *)

val bin : binop -> t -> t -> t
(** Smart constructor: folds constants, normalises [iszero (iszero
    (iszero x))] chains via {!un}, keeps everything else structural.
    The simplification decision tree is identical to the pre-interning
    one, so recovery output is unchanged; the default case is a memo
    lookup keyed by [(op, a, b)]. *)

val un : unop -> t -> t

val equal : t -> t -> bool
(** Physical equality — sound and complete because of interning. *)

val compare : t -> t -> int
(** Total order by interning id (arbitrary but fixed within a domain). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val interner_counters : unit -> int * int
(** [(hits, misses)] accumulated by the current domain's interner —
    misses count distinct nodes built, hits count constructions answered
    by an already-interned node. *)

val interner_size : unit -> int
(** Number of live interned nodes in the current domain. *)

(** {1 Warm-interner handoff}

    A freshly spawned domain starts with an empty interner and pays a
    miss (an allocation) for every node its first analyses build. A
    {!snapshot} captures one domain's interned nodes as a read-only
    array — nodes are immutable, so sharing the array across domains is
    safe — and {!adopt} replays it into the adopting domain's own
    tables, so pooled workers start warm. *)

type snapshot

val snapshot : unit -> snapshot
(** Capture the current domain's interned nodes, in interning order. *)

val snapshot_size : snapshot -> int

val adopt : snapshot -> unit
(** Replay [snapshot] into the current domain's interner. Idempotent;
    replays preserve node shapes exactly (no re-simplification), so
    recovery output is unaffected. Counts one interner miss per node
    not already present locally. *)

(** {1 Structural queries used by the inference rules}

    The recursive queries are memoized per node id in the domain's
    interner, so repeated classification of shared subtrees is O(1). *)

val to_const : t -> Evm.U256.t option
val to_const_int : t -> int option

val add_terms : t -> t list
(** Flatten nested additions: [a + (b + c)] gives [\[a; b; c\]]. *)

val const_offset : t -> int
(** Sum of the constant addition terms (0 if none fit in int). *)

val loads_of : t -> int list
(** All [CDLoad] ids occurring in the term. *)

val mentions_load : t -> int -> bool

val has_mul_by : t -> int -> bool
(** A multiplication by the given constant with a non-constant other
    operand occurs somewhere in the term (R2's "exp(loc) contains 32x"). *)

val strip_masks : t -> t
(** Remove outer mask applications (AND with a constant, SIGNEXTEND,
    double ISZERO) — the "raw value" a mask was applied to. *)

val subject : t -> [ `Load of int | `Region of int ] option
(** The raw parameter value a term directly denotes, if any: a [CDLoad]
    or region read, possibly under masks. *)

val contains : t -> t -> bool
(** [contains e sub]: [sub] occurs as a subterm of [e] (the paper's
    [exp(p)] "contains" [q] relation). *)

val iszero_depth : t -> t * int
(** Peel [Uiszero] applications, returning the core and their count. *)

val eval_concrete : t -> Evm.U256.t option
(** Full evaluation when the term contains no symbols. Comparisons are
    kept structural by {!bin} so guards retain their shape; this
    recovers their truth value for the executor. *)
