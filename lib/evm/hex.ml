let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_chars (b lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_chars (b land 0xf))
  done;
  Bytes.unsafe_to_string out

(* 256-entry digit table: -1 marks a non-hex byte. Shared by the decode
   fast path and the allocation-free [is_valid] scan. *)
let digit_table =
  let t = Array.make 256 (-1) in
  for i = 0 to 9 do
    t.(Char.code '0' + i) <- i
  done;
  for i = 0 to 5 do
    t.(Char.code 'a' + i) <- 10 + i;
    t.(Char.code 'A' + i) <- 10 + i
  done;
  t

let digit c =
  let v = Array.unsafe_get digit_table (Char.code c) in
  if v < 0 then invalid_arg "Hex.decode: bad digit";
  v

let prefix_len s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then 2
  else 0

let decode s =
  let off = prefix_len s in
  let n = String.length s - off in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = digit (String.unsafe_get s (off + (2 * i))) in
    let lo = digit (String.unsafe_get s (off + (2 * i) + 1)) in
    Bytes.unsafe_set out i (Char.unsafe_chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out

let is_valid s =
  let off = prefix_len s in
  let n = String.length s - off in
  if n mod 2 <> 0 then false
  else
    let ok = ref true in
    for i = off to String.length s - 1 do
      if Array.unsafe_get digit_table (Char.code (String.unsafe_get s i)) < 0
      then ok := false
    done;
    !ok
