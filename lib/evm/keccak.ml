(* Keccak-f[1600] sponge with rate 1088 / capacity 512 and the original
   Keccak domain padding (0x01 ... 0x80), which is what Ethereum uses.

   Lanes are 64-bit, but OCaml's Int64 is boxed: an Int64-array state
   would allocate a fresh box for every lane write — thousands of minor
   words per digest, and the engine digests every contract it sees for
   its cache key. Instead each lane is split into two 32-bit halves
   stored in a plain int array, so the whole permutation runs on
   immediate values and allocates nothing. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
    0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
    0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

let rc_lo =
  Array.map
    (fun c -> Int64.to_int (Int64.logand c 0xffffffffL))
    round_constants

let rc_hi =
  Array.map
    (fun c -> Int64.to_int (Int64.shift_right_logical c 32))
    round_constants

(* Rotation offsets for the rho step, indexed by x + 5*y. *)
let rotations =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let mask = 0xffffffff

(* [st] holds lane i as st.(2i) = low 32 bits, st.(2i+1) = high. *)
let keccak_f st =
  let c = Array.make 10 0 and d = Array.make 10 0 in
  let b = Array.make 50 0 in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(2 * x) <-
        st.(2 * x)
        lxor st.(2 * (x + 5))
        lxor st.(2 * (x + 10))
        lxor st.(2 * (x + 15))
        lxor st.(2 * (x + 20));
      c.((2 * x) + 1) <-
        st.((2 * x) + 1)
        lxor st.((2 * (x + 5)) + 1)
        lxor st.((2 * (x + 10)) + 1)
        lxor st.((2 * (x + 15)) + 1)
        lxor st.((2 * (x + 20)) + 1)
    done;
    for x = 0 to 4 do
      let i1 = (x + 1) mod 5 and i4 = (x + 4) mod 5 in
      (* d.(x) = c.(x+4) xor rotl64(c.(x+1), 1) *)
      let lo = c.(2 * i1) and hi = c.((2 * i1) + 1) in
      d.(2 * x) <- c.(2 * i4) lxor (((lo lsl 1) lor (hi lsr 31)) land mask);
      d.((2 * x) + 1) <-
        c.((2 * i4) + 1) lxor (((hi lsl 1) lor (lo lsr 31)) land mask)
    done;
    for i = 0 to 24 do
      st.(2 * i) <- st.(2 * i) lxor d.(2 * (i mod 5));
      st.((2 * i) + 1) <- st.((2 * i) + 1) lxor d.((2 * (i mod 5)) + 1)
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        let n = rotations.(src) in
        let lo = st.(2 * src) and hi = st.((2 * src) + 1) in
        if n = 0 then begin
          b.(2 * dst) <- lo;
          b.((2 * dst) + 1) <- hi
        end
        else if n < 32 then begin
          b.(2 * dst) <- ((lo lsl n) lor (hi lsr (32 - n))) land mask;
          b.((2 * dst) + 1) <- ((hi lsl n) lor (lo lsr (32 - n))) land mask
        end
        else begin
          let n = n - 32 in
          b.(2 * dst) <- ((hi lsl n) lor (lo lsr (32 - n))) land mask;
          b.((2 * dst) + 1) <- ((lo lsl n) lor (hi lsr (32 - n))) land mask
        end
      done
    done;
    (* chi: b values stay within 32 bits, so masking the lnot via the
       land against the (already masked) other operand is enough *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        let i1 = ((x + 1) mod 5) + (5 * y)
        and i2 = ((x + 2) mod 5) + (5 * y) in
        st.(2 * i) <- b.(2 * i) lxor (lnot b.(2 * i1) land b.(2 * i2));
        st.((2 * i) + 1) <-
          b.((2 * i) + 1) lxor (lnot b.((2 * i1) + 1) land b.((2 * i2) + 1))
      done
    done;
    (* iota *)
    st.(0) <- st.(0) lxor rc_lo.(round);
    st.(1) <- st.(1) lxor rc_hi.(round)
  done

let rate_bytes = 136 (* 1088 bits *)

let digest msg =
  let st = Array.make 50 0 in
  let len = String.length msg in
  (* Padded message: msg ^ 0x01 ^ 0x00* ^ 0x80 to a multiple of the rate. *)
  let padded_len = (len / rate_bytes * rate_bytes) + rate_bytes in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 padded 0 len;
  Bytes.set padded len '\001';
  Bytes.set padded (padded_len - 1)
    (Char.chr (Char.code (Bytes.get padded (padded_len - 1)) lor 0x80));
  let byte i = Char.code (Bytes.unsafe_get padded i) in
  for block = 0 to (padded_len / rate_bytes) - 1 do
    let off = block * rate_bytes in
    for i = 0 to (rate_bytes / 8) - 1 do
      let base = off + (i * 8) in
      (* little-endian 64-bit lane, read as two 32-bit halves *)
      let lo =
        byte base
        lor (byte (base + 1) lsl 8)
        lor (byte (base + 2) lsl 16)
        lor (byte (base + 3) lsl 24)
      in
      let hi =
        byte (base + 4)
        lor (byte (base + 5) lsl 8)
        lor (byte (base + 6) lsl 16)
        lor (byte (base + 7) lsl 24)
      in
      st.(2 * i) <- st.(2 * i) lxor lo;
      st.((2 * i) + 1) <- st.((2 * i) + 1) lxor hi
    done;
    keccak_f st
  done;
  String.init 32 (fun i ->
      let half = st.((2 * (i / 8)) + if i land 7 < 4 then 0 else 1) in
      Char.chr ((half lsr (8 * (i land 3))) land 0xff))

let digest_hex msg = Hex.encode (digest msg)

let selector signature = String.sub (digest signature) 0 4
