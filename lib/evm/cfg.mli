(** Basic-block recovery over disassembled bytecode.

    Leaders are: offset 0, every [JUMPDEST], and every instruction
    following a block terminator. Jump targets are resolved statically
    when the jump is immediately preceded by a PUSH in the same block
    (sufficient for compiler-emitted dispatch and loop code, which is all
    SigRec needs — the paper notes that input-dependent jump targets occur
    in only a handful of deployed contracts). *)

type block = {
  start : int;                      (** offset of the first instruction *)
  instrs : Disasm.instruction list; (** in program order *)
  terminator : Opcode.t option;     (** last instruction if a terminator *)
  succ : successor list;
}

and successor =
  | Fallthrough of int
  | Jump_to of int
  | Branch of { taken : int; fallthrough : int }
  | Exit                            (** STOP/RETURN/REVERT/... *)
  | Unresolved                      (** dynamic jump target *)

type t

val build : string -> t
(** [build bytecode] disassembles and partitions into blocks. *)

val of_instructions : Disasm.instruction list -> t

val block_at : t -> int -> block option
val entry : t -> block option
val blocks : t -> block list
(** In ascending start-offset order. *)

val iter_blocks : (block -> unit) -> t -> unit
(** Apply to every block in ascending start-offset order without
    materializing the {!blocks} list — the traversal primitive for
    fixpoint passes that sweep the graph repeatedly. *)

val successors : t -> block -> block list
val block_count : t -> int
val pp : Format.formatter -> t -> unit

val unresolved_count : t -> int
(** Number of [Unresolved] successor edges left in the graph. *)

val resolve : t -> (int -> int list) -> t
(** [resolve t targets_of] replaces each block's [Unresolved] edge with
    [Jump_to] edges to [targets_of block.start]; an empty answer keeps
    the edge [Unresolved]. Used to feed targets recovered by the static
    abstract interpreter back into the graph. *)

val block_of_pc : t -> int -> block option
(** The block containing the instruction at the given byte offset. *)

val branch_condition_pc : block -> int option
(** If the block ends in JUMPI, the offset of that JUMPI. *)

val control_deps : t -> (int, int list) Hashtbl.t
(** Direct control dependences computed from post-dominators (Ferrante
    et al.): maps a block start to the starts of the branch blocks it is
    control-dependent on. The paper's rules R2/R3 interpret the chain of
    LT bound checks that an item load is (transitively)
    control-dependent on. *)

val transitive_deps : (int, int list) Hashtbl.t -> int -> int list
(** Transitive closure of a {!control_deps} table for one block,
    innermost dependence first. *)
