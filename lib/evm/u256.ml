(* 256-bit words as four little-endian 64-bit limbs.

   All arithmetic is modulo 2^256. Unsigned limb comparisons use
   Int64.unsigned_compare; carries are detected by comparing a sum against
   one of its addends. *)

type t = { l0 : int64; l1 : int64; l2 : int64; l3 : int64 }

let make l0 l1 l2 l3 = { l0; l1; l2; l3 }

(* Interned pool of small constants. Entries are physically shared, so
   the pointer fast path in [equal]/[compare] hits for the values the
   compiler patterns hammer (offsets, word sizes, small selectors). The
   arrays are built once at module init and never mutated afterwards, so
   sharing them across domains is safe. *)
let small_pool = Array.init 1025 (fun n -> make (Int64.of_int n) 0L 0L 0L)
let zero = small_pool.(0)
let one = small_pool.(1)
let max_int = { l0 = -1L; l1 = -1L; l2 = -1L; l3 = -1L }

(* Route a limb quadruple through the pool when it denotes a small int. *)
let interned l0 l1 l2 l3 =
  if
    Int64.equal (Int64.logor l1 (Int64.logor l2 l3)) 0L
    && Int64.unsigned_compare l0 1024L <= 0
  then Array.unsafe_get small_pool (Int64.to_int l0)
  else make l0 l1 l2 l3

let limb x = function
  | 0 -> x.l0
  | 1 -> x.l1
  | 2 -> x.l2
  | 3 -> x.l3
  | _ -> 0L

let equal a b =
  a == b
  || Int64.equal a.l0 b.l0 && Int64.equal a.l1 b.l1 && Int64.equal a.l2 b.l2
     && Int64.equal a.l3 b.l3

let is_zero a = equal a zero

let compare a b =
  if a == b then 0
  else
  let c = Int64.unsigned_compare a.l3 b.l3 in
  if c <> 0 then c
  else
    let c = Int64.unsigned_compare a.l2 b.l2 in
    if c <> 0 then c
    else
      let c = Int64.unsigned_compare a.l1 b.l1 in
      if c <> 0 then c else Int64.unsigned_compare a.l0 b.l0

let lt a b = compare a b < 0
let gt a b = compare a b > 0
let le a b = compare a b <= 0

let is_negative a = Int64.compare a.l3 0L < 0

let signed_compare a b =
  match (is_negative a, is_negative b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> compare a b

let slt a b = signed_compare a b < 0
let sgt a b = signed_compare a b > 0

let hash a =
  Int64.to_int
    (Int64.logxor
       (Int64.logxor a.l0 (Int64.mul a.l1 0x9e3779b97f4a7c15L))
       (Int64.logxor (Int64.mul a.l2 0xff51afd7ed558ccdL) a.l3))

(* -- conversions ------------------------------------------------------- *)

let of_int n =
  if n >= 0 then
    if n <= 1024 then small_pool.(n) else { zero with l0 = Int64.of_int n }
  else { max_int with l0 = Int64.of_int n }

let of_int64 x = interned x 0L 0L 0L

let to_int a =
  if
    Int64.equal a.l1 0L && Int64.equal a.l2 0L && Int64.equal a.l3 0L
    && Int64.compare a.l0 0L >= 0
    && Int64.compare a.l0 (Int64.of_int Stdlib.max_int) <= 0
  then Some (Int64.to_int a.l0)
  else None

let to_int_trunc a = Int64.to_int (Int64.logand a.l0 0x3fffffffffffffffL)

(* -- bitwise ----------------------------------------------------------- *)

let logand a b =
  interned (Int64.logand a.l0 b.l0) (Int64.logand a.l1 b.l1)
    (Int64.logand a.l2 b.l2) (Int64.logand a.l3 b.l3)

let logor a b =
  make (Int64.logor a.l0 b.l0) (Int64.logor a.l1 b.l1)
    (Int64.logor a.l2 b.l2) (Int64.logor a.l3 b.l3)

let logxor a b =
  make (Int64.logxor a.l0 b.l0) (Int64.logxor a.l1 b.l1)
    (Int64.logxor a.l2 b.l2) (Int64.logxor a.l3 b.l3)

let lognot a =
  make (Int64.lognot a.l0) (Int64.lognot a.l1) (Int64.lognot a.l2)
    (Int64.lognot a.l3)

let shift_left a n =
  if n <= 0 then if n = 0 then a else zero
  else if n >= 256 then zero
  else
    let word = n / 64 and bit = n mod 64 in
    let get i =
      let src = i - word in
      if src < 0 then 0L
      else if bit = 0 then limb a src
      else
        let lo = if src = 0 then 0L else limb a (src - 1) in
        Int64.logor
          (Int64.shift_left (limb a src) bit)
          (Int64.shift_right_logical lo (64 - bit))
    in
    make (get 0) (get 1) (get 2) (get 3)

let shift_right a n =
  if n <= 0 then if n = 0 then a else zero
  else if n >= 256 then zero
  else
    let word = n / 64 and bit = n mod 64 in
    let get i =
      let src = i + word in
      if src > 3 then 0L
      else if bit = 0 then limb a src
      else
        let hi = if src = 3 then 0L else limb a (src + 1) in
        Int64.logor
          (Int64.shift_right_logical (limb a src) bit)
          (Int64.shift_left hi (64 - bit))
    in
    interned (get 0) (get 1) (get 2) (get 3)

let shift_right_arith a n =
  if not (is_negative a) then shift_right a n
  else if n >= 256 then max_int
  else if n = 0 then a
  else logor (shift_right a n) (shift_left max_int (256 - n))

let get_bit a i =
  if i < 0 || i > 255 then false
  else
    let w = limb a (i / 64) in
    Int64.logand (Int64.shift_right_logical w (i mod 64)) 1L = 1L

let bits a =
  let rec limb_bits w acc =
    if Int64.equal w 0L then acc
    else limb_bits (Int64.shift_right_logical w 1) (acc + 1)
  in
  let rec go i =
    if i < 0 then 0
    else if Int64.equal (limb a i) 0L then go (i - 1)
    else (i * 64) + limb_bits (limb a i) 0
  in
  go 3

(* -- addition / subtraction ------------------------------------------- *)

let add_with_carry x y carry =
  let s = Int64.add x y in
  let c1 = if Int64.unsigned_compare s x < 0 then 1L else 0L in
  let s' = Int64.add s carry in
  let c2 = if Int64.unsigned_compare s' s < 0 then 1L else 0L in
  (s', Int64.add c1 c2)

let add a b =
  let r0, c = add_with_carry a.l0 b.l0 0L in
  let r1, c = add_with_carry a.l1 b.l1 c in
  let r2, c = add_with_carry a.l2 b.l2 c in
  let r3, _ = add_with_carry a.l3 b.l3 c in
  interned r0 r1 r2 r3

let neg a = add (lognot a) one
let sub a b = add a (neg b)

(* Pools for the masks the mask-shape matchers and SIGNEXTEND scan:
   powers of two, byte masks [2^(8k)-1] and their high-byte mirrors.
   Small entries reuse [small_pool] so each value has one canonical
   representative. *)
let pow2_pool =
  Array.init 256 (fun n ->
      if n <= 10 then small_pool.(1 lsl n) else shift_left one n)

let ones_low_pool =
  Array.init 33 (fun k ->
      if k = 0 then zero
      else if k >= 32 then max_int
      else sub (shift_left one (8 * k)) one)

let ones_high_pool =
  Array.init 33 (fun k ->
      if k = 0 then zero
      else if k >= 32 then max_int
      else shift_left max_int (8 * (32 - k)))

(* -- multiplication ---------------------------------------------------- *)

(* Full 64x64 -> 128-bit product via 32-bit halves. *)
let mul64 x y =
  let mask32 = 0xffffffffL in
  let xl = Int64.logand x mask32 and xh = Int64.shift_right_logical x 32 in
  let yl = Int64.logand y mask32 and yh = Int64.shift_right_logical y 32 in
  let ll = Int64.mul xl yl in
  let lh = Int64.mul xl yh in
  let hl = Int64.mul xh yl in
  let hh = Int64.mul xh yh in
  let mid = Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh mask32) in
  let mid = Int64.add mid (Int64.logand hl mask32) in
  let lo =
    Int64.logor (Int64.logand ll mask32) (Int64.shift_left (Int64.logand mid mask32) 32)
  in
  let hi =
    Int64.add hh
      (Int64.add
         (Int64.shift_right_logical lh 32)
         (Int64.add (Int64.shift_right_logical hl 32) (Int64.shift_right_logical mid 32)))
  in
  (hi, lo)

(* Schoolbook 256x256 -> 512-bit product; returns eight 64-bit limbs. *)
let mul_wide a b =
  let r = Array.make 8 0L in
  let la = [| a.l0; a.l1; a.l2; a.l3 |] and lb = [| b.l0; b.l1; b.l2; b.l3 |] in
  for i = 0 to 3 do
    let carry = ref 0L in
    for j = 0 to 3 do
      let hi, lo = mul64 la.(i) lb.(j) in
      let k = i + j in
      let s = Int64.add r.(k) lo in
      let c1 = if Int64.unsigned_compare s r.(k) < 0 then 1L else 0L in
      let s' = Int64.add s !carry in
      let c2 = if Int64.unsigned_compare s' s < 0 then 1L else 0L in
      r.(k) <- s';
      carry := Int64.add hi (Int64.add c1 c2)
    done;
    (* propagate the final carry of this row *)
    let k = ref (i + 4) in
    while not (Int64.equal !carry 0L) && !k < 8 do
      let s = Int64.add r.(!k) !carry in
      carry := if Int64.unsigned_compare s r.(!k) < 0 then 1L else 0L;
      r.(!k) <- s;
      incr k
    done
  done;
  r

let mul a b =
  let r = mul_wide a b in
  interned r.(0) r.(1) r.(2) r.(3)

(* -- division ----------------------------------------------------------
   Bit-by-bit restoring division: adequate for an analysis workload. *)

let divmod a b =
  if is_zero b then (zero, zero)
  else if compare a b < 0 then (zero, a)
  else if Int64.equal b.l1 0L && Int64.equal b.l2 0L && Int64.equal b.l3 0L
          && Int64.equal a.l1 0L && Int64.equal a.l2 0L && Int64.equal a.l3 0L
  then
    ( of_int64 (Int64.unsigned_div a.l0 b.l0),
      of_int64 (Int64.unsigned_rem a.l0 b.l0) )
  else begin
    let q = ref zero and r = ref zero in
    for i = bits a - 1 downto 0 do
      r := shift_left !r 1;
      if get_bit a i then r := logor !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q := logor !q (shift_left one i)
      end
    done;
    (!q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let min_signed = pow2_pool.(255)

let sdiv a b =
  if is_zero b then zero
  else if equal a min_signed && equal b max_int then min_signed
  else
    let sa = is_negative a and sb = is_negative b in
    let abs x = if is_negative x then neg x else x in
    let q = div (abs a) (abs b) in
    if sa <> sb then neg q else q

let srem a b =
  if is_zero b then zero
  else
    let abs x = if is_negative x then neg x else x in
    let r = rem (abs a) (abs b) in
    if is_negative a then neg r else r

(* 512-bit value as (hi, lo) pair of t; bitwise long division by m. *)
let mod512 hi lo m =
  if is_zero m then zero
  else begin
    let r = ref zero in
    (* After a left shift the remainder may exceed 2^256 (tracked via the
       pre-shift top bit), so up to two conditional subtractions of m are
       needed per step. *)
    let feed x nbits =
      for i = nbits - 1 downto 0 do
        let overflow = get_bit !r 255 in
        r := shift_left !r 1;
        if get_bit x i then r := logor !r one;
        if overflow || compare !r m >= 0 then r := sub !r m;
        if compare !r m >= 0 then r := sub !r m
      done
    in
    feed hi 256;
    feed lo 256;
    !r
  end

let addmod a b m =
  if is_zero m then zero
  else
    let s = add a b in
    let carried = compare s a < 0 in
    let hi = if carried then one else zero in
    mod512 hi s m

let mulmod a b m =
  if is_zero m then zero
  else
    let r = mul_wide a b in
    let lo = make r.(0) r.(1) r.(2) r.(3) and hi = make r.(4) r.(5) r.(6) r.(7) in
    mod512 hi lo m

let exp b e =
  let result = ref one and base = ref b in
  for i = 0 to 255 do
    if get_bit e i then result := mul !result !base;
    base := mul !base !base
  done;
  !result

let pow2 n =
  if n < 0 || n > 255 then invalid_arg "U256.pow2" else pow2_pool.(n)

(* -- EVM-specific ------------------------------------------------------ *)

let signextend k x =
  if k >= 31 || k < 0 then x
  else if get_bit x ((8 * (k + 1)) - 1) then logor x ones_high_pool.(31 - k)
  else logand x ones_low_pool.(k + 1)

let byte i x =
  if i < 0 || i > 31 then zero
  else logand (shift_right x (8 * (31 - i))) (of_int 0xff)

let ones_low k =
  if k <= 0 then zero else if k >= 32 then max_int else ones_low_pool.(k)

let ones_high k =
  if k <= 0 then zero else if k >= 32 then max_int else ones_high_pool.(k)

(* -- string conversions ------------------------------------------------ *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "U256.of_hex: bad digit"

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  if String.length s = 0 || String.length s > 64 then
    invalid_arg "U256.of_hex: bad length";
  let r = ref zero in
  String.iter (fun c -> r := logor (shift_left !r 4) (of_int (hex_digit c))) s;
  !r

let to_hex_32 a =
  let buf = Buffer.create 64 in
  for i = 31 downto 0 do
    Buffer.add_string buf
      (Printf.sprintf "%02x" (to_int_trunc (byte (31 - i) a)))
  done;
  Buffer.contents buf

let to_hex a =
  if is_zero a then "0"
  else
    let full = to_hex_32 a in
    let rec first_nonzero i = if full.[i] <> '0' then i else first_nonzero (i + 1) in
    let i = first_nonzero 0 in
    String.sub full i (64 - i)

let of_bytes_be s =
  let n = String.length s in
  if n > 32 then invalid_arg "U256.of_bytes_be: too long";
  let r = ref zero in
  String.iter (fun c -> r := logor (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let to_bytes_be a =
  String.init 32 (fun i -> Char.chr (to_int_trunc (byte i a)))

let ten = of_int 10

let of_decimal s =
  if String.length s = 0 then invalid_arg "U256.of_decimal: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        r := add (mul !r ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "U256.of_decimal: bad digit")
    s;
  !r

let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex s
  else of_decimal s

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
