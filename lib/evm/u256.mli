(** 256-bit EVM machine words.

    Values are immutable and represent integers modulo [2^256]. A value can
    be viewed either as an unsigned integer in [0, 2^256) or as a signed
    two's-complement integer in [-2^255, 2^255); operations whose name
    starts with [s] use the signed view (matching the EVM [SDIV], [SMOD],
    [SLT], [SGT] and [SAR] instructions).

    Common constants are interned: the integers 0–1024, every power of
    two, and the [ones_low]/[ones_high] byte masks are immutable pooled
    blocks, and every normalizing constructor ([of_int], [of_int64],
    [add], [mul], [logand], [shift_right], …) routes small results back
    through the pool. Structurally equal small values are therefore
    usually physically equal — [equal] and [compare] exploit this with
    [(==)] fast paths — but physical equality is {e not} guaranteed for
    arbitrary values; use [equal] for truth, [(==)] only as an
    optimisation. The pools are built once at module initialisation and
    never mutated, so sharing them across domains is safe. *)

type t

val zero : t
val one : t
val max_int : t
(** [2^256 - 1], i.e. all bits set. *)

(** {1 Conversions} *)

val of_int : int -> t
(** [of_int n] converts a non-negative OCaml integer. Negative inputs are
    interpreted two's-complement (so [of_int (-1) = max_int]). *)

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a non-negative OCaml [int]. *)

val to_int_trunc : t -> int
(** Lowest 62 bits of [x] as a non-negative OCaml int (used for offsets
    after a range check). *)

val of_int64 : int64 -> t
(** Unsigned interpretation of the given 64-bit word. *)

val of_hex : string -> t
(** [of_hex s] parses a big-endian hex string, optionally ["0x"]-prefixed.
    Raises [Invalid_argument] on malformed input or overflow. *)

val to_hex : t -> string
(** Minimal-length lowercase hex, no prefix, ["0"] for zero. *)

val to_hex_32 : t -> string
(** 64-digit zero-padded lowercase hex. *)

val of_bytes_be : string -> t
(** Big-endian bytes, length <= 32; shorter strings are left-padded. *)

val to_bytes_be : t -> string
(** 32-byte big-endian representation. *)

val of_decimal : string -> t
(** Parses a decimal number string. *)

(** {1 Predicates and comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison. *)

val signed_compare : t -> t -> int
val is_zero : t -> bool
val lt : t -> t -> bool
val gt : t -> t -> bool
val slt : t -> t -> bool
val sgt : t -> t -> bool
val le : t -> t -> bool
val hash : t -> int

(** {1 Arithmetic modulo 2^256} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Unsigned division; division by zero yields zero (EVM semantics). *)

val rem : t -> t -> t
val sdiv : t -> t -> t
(** Signed division truncated toward zero; [x / 0 = 0];
    [min_int / -1 = min_int] (EVM semantics). *)

val srem : t -> t -> t
(** Signed remainder; sign follows the dividend. *)

val addmod : t -> t -> t -> t
(** [(a + b) mod m] computed without 256-bit overflow; [m = 0] yields 0. *)

val mulmod : t -> t -> t -> t
(** [(a * b) mod m] computed over 512 bits; [m = 0] yields 0. *)

val exp : t -> t -> t
(** Exponentiation modulo [2^256]. *)

(** {1 Bitwise operations} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical right shift. *)

val shift_right_arith : t -> int -> t
(** Arithmetic right shift (sign-preserving). *)

val signextend : int -> t -> t
(** [signextend k x] sign-extends [x] from byte [k] (byte 0 is the least
    significant). If [k >= 31] the value is unchanged (EVM [SIGNEXTEND]). *)

val byte : int -> t -> t
(** [byte i x] extracts the [i]-th byte counting from the most significant
    (EVM [BYTE]); out-of-range indices yield zero. *)

val get_bit : t -> int -> bool
val bits : t -> int
(** Position of the highest set bit plus one; [bits zero = 0]. *)

(** {1 Common constants} *)

val of_string : string -> t
(** Accepts hex with ["0x"] prefix or decimal otherwise. *)

val pow2 : int -> t
(** [pow2 n] is [2^n] for [0 <= n <= 255]. *)

val ones_low : int -> t
(** [ones_low k] is a mask with the low [k] bytes set to [0xff]. *)

val ones_high : int -> t
(** [ones_high k] is a mask with the high [k] bytes set to [0xff]. *)

val pp : Format.formatter -> t -> unit
