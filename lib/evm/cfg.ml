type block = {
  start : int;
  instrs : Disasm.instruction list;
  terminator : Opcode.t option;
  succ : successor list;
}

and successor =
  | Fallthrough of int
  | Jump_to of int
  | Branch of { taken : int; fallthrough : int }
  | Exit
  | Unresolved

(* [arr] holds the blocks in ascending start order and [starts] mirrors
   their start offsets, so traversal ([iter_blocks], [block_of_pc]) is
   array-indexed instead of rebuilding lists; [by_start] keeps O(1)
   lookup by exact offset. *)
type t = {
  by_start : (int, block) Hashtbl.t;
  arr : block array;
  starts : int array;
}

let leaders instrs =
  let set = Hashtbl.create 64 in
  Hashtbl.replace set 0 ();
  let rec go = function
    | [] -> ()
    | { Disasm.offset; op } :: rest ->
      if op = Opcode.JUMPDEST then Hashtbl.replace set offset ();
      if Opcode.is_terminator op then (
        match rest with
        | { Disasm.offset = next; _ } :: _ -> Hashtbl.replace set next ()
        | [] -> ());
      go rest
  in
  go instrs;
  set

(* Static jump target: the PUSH immediately before the jump. *)
let static_target block_instrs =
  let rec last_two = function
    | [ { Disasm.op = Opcode.PUSH (_, v); _ }; _ ] -> U256.to_int v
    | _ :: rest -> last_two rest
    | [] -> None
  in
  last_two block_instrs

let index_of_chunks by_start chunks =
  let arr =
    Array.of_list
      (List.filter_map
         (fun start -> Hashtbl.find_opt by_start start)
         chunks)
  in
  let starts = Array.map (fun b -> b.start) arr in
  { by_start; arr; starts }

let of_instructions instrs =
  let leader_set = leaders instrs in
  (* offset-indexed views of the instruction stream: O(1) jump-dest
     validity and fallthrough checks instead of per-edge list scans *)
  let jumpdests = Hashtbl.create 64 and offsets = Hashtbl.create 256 in
  List.iter
    (fun { Disasm.offset; op } ->
      Hashtbl.replace offsets offset ();
      if op = Opcode.JUMPDEST then Hashtbl.replace jumpdests offset ())
    instrs;
  (* split into chunks at leaders / after terminators *)
  let chunks = ref [] and current = ref [] in
  let flush () =
    match !current with
    | [] -> ()
    | is -> chunks := List.rev is :: !chunks; current := []
  in
  List.iter
    (fun ({ Disasm.offset; op } as i) ->
      if Hashtbl.mem leader_set offset && !current <> [] then flush ();
      current := i :: !current;
      if Opcode.is_terminator op then flush ())
    instrs;
  flush ();
  let chunks = List.rev !chunks in
  let by_start = Hashtbl.create 64 in
  let next_offset chunk =
    match List.rev chunk with
    | { Disasm.offset; op } :: _ -> offset + Opcode.size op
    | [] -> 0
  in
  let order = List.map (fun c -> (List.hd c).Disasm.offset) chunks in
  let valid_dest offset = Hashtbl.mem jumpdests offset in
  List.iter
    (fun chunk ->
      let start = (List.hd chunk).Disasm.offset in
      let last = List.nth chunk (List.length chunk - 1) in
      let after = next_offset chunk in
      let has_next = Hashtbl.mem offsets after in
      let succ =
        match last.Disasm.op with
        | Opcode.JUMP -> (
          match static_target chunk with
          | Some target when valid_dest target -> [ Jump_to target ]
          | Some _ -> [ Exit ] (* jump to invalid destination: halts *)
          | None -> [ Unresolved ])
        | Opcode.JUMPI -> (
          let fallthrough = if has_next then [ Fallthrough after ] else [] in
          match static_target chunk with
          | Some target when valid_dest target ->
            if has_next then [ Branch { taken = target; fallthrough = after } ]
            else [ Jump_to target ]
          | Some _ -> fallthrough
          | None -> Unresolved :: fallthrough)
        | Opcode.STOP | Opcode.RETURN | Opcode.REVERT | Opcode.INVALID
        | Opcode.SELFDESTRUCT ->
          [ Exit ]
        | _ -> if has_next then [ Fallthrough after ] else [ Exit ]
      in
      let terminator =
        if Opcode.is_terminator last.Disasm.op then Some last.Disasm.op
        else None
      in
      Hashtbl.replace by_start start { start; instrs = chunk; terminator; succ })
    chunks;
  index_of_chunks by_start order

let build bytecode = of_instructions (Disasm.disassemble bytecode)

let unresolved_count t =
  Array.fold_left
    (fun acc b ->
      acc
      + List.length
          (List.filter (function Unresolved -> true | _ -> false) b.succ))
    0 t.arr

(* Feed externally discovered jump targets (the static pass) back into
   the graph: every [Unresolved] edge whose block gets targets becomes
   concrete [Jump_to] edges. Blocks without news keep their edge, so a
   partially resolved graph stays honest about what it does not know. *)
let resolve t targets_of =
  let by_start = Hashtbl.create (Hashtbl.length t.by_start) in
  let arr =
    Array.map
      (fun b ->
        let succ =
          List.concat_map
            (fun s ->
              match s with
              | Unresolved -> (
                match targets_of b.start with
                | [] -> [ Unresolved ]
                | ts -> List.map (fun x -> Jump_to x) ts)
              | s -> [ s ])
            b.succ
        in
        let b = { b with succ } in
        Hashtbl.replace by_start b.start b;
        b)
      t.arr
  in
  { by_start; arr; starts = t.starts }

let block_at t start = Hashtbl.find_opt t.by_start start
let entry t = if Array.length t.arr = 0 then None else Some t.arr.(0)
let blocks t = Array.to_list t.arr
let iter_blocks f t = Array.iter f t.arr
let block_count t = Array.length t.arr

let successors t block =
  List.concat_map
    (fun s ->
      match s with
      | Fallthrough o | Jump_to o -> Option.to_list (block_at t o)
      | Branch { taken; fallthrough } ->
        Option.to_list (block_at t taken)
        @ Option.to_list (block_at t fallthrough)
      | Exit | Unresolved -> [])
    block.succ

(* Greatest start <= pc, by binary search over the sorted start array. *)
let block_of_pc t pc =
  let n = Array.length t.starts in
  if n = 0 || t.starts.(0) > pc then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.starts.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    Some t.arr.(!lo)
  end

let branch_condition_pc block =
  match List.rev block.instrs with
  | { Disasm.offset; op = Opcode.JUMPI } :: _ -> Some offset
  | _ -> None

(* Post-dominator computation over the block graph, with a virtual exit
   node (-1). Iterative dataflow on the reverse graph. *)
let postdominators t =
  let exit_node = -1 in
  (* successor starts precomputed once per block; the <=64 fixpoint
     rounds below only walk these arrays *)
  let succ_starts b =
    let concrete = List.map (fun s -> s.start) (successors t b) in
    let exits =
      List.exists (function Exit | Unresolved -> true | _ -> false) b.succ
    in
    if exits || concrete = [] then exit_node :: concrete else concrete
  in
  let succs_of = Array.map succ_starts t.arr in
  let ipdom = Hashtbl.create 64 in
  Hashtbl.replace ipdom exit_node exit_node;
  (* Common ancestor in the (partially built) ipdom tree rooted at the
     virtual exit. Collect the ancestors of one node, then climb from
     the other until the sets meet. Bounded walks guard against the
     transient cycles of an unconverged tree. *)
  let intersect a b =
    let ancestors = Hashtbl.create 16 in
    let rec collect node fuel =
      if fuel > 0 && not (Hashtbl.mem ancestors node) then begin
        Hashtbl.replace ancestors node ();
        if node <> exit_node then
          match Hashtbl.find_opt ipdom node with
          | Some p when p <> node -> collect p (fuel - 1)
          | _ -> ()
      end
    in
    collect a 4096;
    let rec climb node fuel =
      if fuel = 0 then exit_node
      else if Hashtbl.mem ancestors node then node
      else if node = exit_node then exit_node
      else
        match Hashtbl.find_opt ipdom node with
        | Some p when p <> node -> climb p (fuel - 1)
        | _ -> exit_node
    in
    climb b 4096
  in
  let n = Array.length t.arr in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    (* process blocks from the exit backwards; with our forward-ordered
       starts, iterating in descending start order converges quickly *)
    for i = n - 1 downto 0 do
      let s = t.starts.(i) in
      let succs = succs_of.(i) in
      let known =
        List.filter (fun x -> x = exit_node || Hashtbl.mem ipdom x) succs
      in
      match known with
      | [] -> ()
      | first :: rest ->
        let new_ipdom = List.fold_left intersect first rest in
        if Hashtbl.find_opt ipdom s <> Some new_ipdom then begin
          Hashtbl.replace ipdom s new_ipdom;
          changed := true
        end
    done
  done;
  ipdom

let control_deps t =
  let exit_node = -1 in
  let ipdom = postdominators t in
  let deps = Hashtbl.create 64 in
  let add b a =
    let cur = Option.value ~default:[] (Hashtbl.find_opt deps b) in
    if not (List.mem a cur) then Hashtbl.replace deps b (a :: cur)
  in
  iter_blocks
    (fun a ->
      let succs = successors t a in
      let is_branch =
        match a.terminator with
        | Some Opcode.JUMPI -> List.length succs >= 2
        | _ -> false
      in
      if is_branch then
        let stop =
          Option.value ~default:exit_node (Hashtbl.find_opt ipdom a.start)
        in
        List.iter
          (fun s ->
            let rec walk node =
              if node <> stop && node <> exit_node then begin
                add node a.start;
                match Hashtbl.find_opt ipdom node with
                | Some p when p <> node -> walk p
                | _ -> ()
              end
            in
            walk s.start)
          succs)
    t;
  deps

let transitive_deps deps start =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go s =
    match Hashtbl.find_opt deps s with
    | None -> ()
    | Some parents ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.replace seen p ();
            out := p :: !out;
            go p
          end)
        parents
  in
  go start;
  List.rev !out

let pp fmt t =
  iter_blocks
    (fun b ->
      Format.fprintf fmt "block %04x (%d instrs) ->" b.start
        (List.length b.instrs);
      List.iter
        (fun s ->
          match s with
          | Fallthrough o -> Format.fprintf fmt " fall:%04x" o
          | Jump_to o -> Format.fprintf fmt " jump:%04x" o
          | Branch { taken; fallthrough } ->
            Format.fprintf fmt " br:%04x/%04x" taken fallthrough
          | Exit -> Format.fprintf fmt " exit"
          | Unresolved -> Format.fprintf fmt " ?")
        b.succ;
      Format.fprintf fmt "@.")
    t
