(* Regenerate examples/corpus.txt: a small, committed batch-input file
   used by the README quick-start, the CI trace-artifact step, and
   anyone who wants a realistic `sigrec batch` input without running
   the property harness.

   Run with: dune exec examples/make_corpus.exe > examples/corpus.txt *)

let () =
  let open Abi.Abity in
  let token =
    (* ERC-20 shape: total supply word, balances mapping, a packed
       (decimals, owner) slot *)
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:
           [
             Solc.Lang.svalue 0;
             Solc.Lang.smapping 1;
             Solc.Lang.svalue ~widths:[ 8; 160 ] 2;
           ]
         [
           Abi.Funsig.make "transfer" [ Address; Uint 256 ];
           Abi.Funsig.make "approve" [ Address; Uint 256 ];
           Abi.Funsig.make "transferFrom" [ Address; Address; Uint 256 ];
           Abi.Funsig.make "balanceOf" [ Address ];
         ])
  in
  let exchange =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:
           [
             Solc.Lang.smapping 0;
             Solc.Lang.sarray 1;
             Solc.Lang.svalue ~widths:[ 96; 160 ] 2;
           ]
         [
           Abi.Funsig.make ~visibility:Abi.Funsig.External "swap"
             [ Address; Uint 128; Bool ];
           Abi.Funsig.make ~visibility:Abi.Funsig.External "batchSettle"
             [ Darray Address; Darray (Uint 256) ];
           Abi.Funsig.make "setLabel" [ String_t; Bytes_n 32 ];
         ])
  in
  let registry =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:[ Solc.Lang.sarray 0; Solc.Lang.svalue 1 ]
         [
           Abi.Funsig.make "register" [ Bytes; Int 64 ];
           Abi.Funsig.make ~visibility:Abi.Funsig.External "setMatrix"
             [ Sarray (Uint 256, 3) ];
         ])
  in
  print_endline "# sigrec example corpus: one hex runtime bytecode per line";
  print_endline "# regenerate with: dune exec examples/make_corpus.exe";
  List.iter
    (fun code -> print_endline ("0x" ^ Evm.Hex.encode code))
    [
      token;
      exchange;
      registry;
      (* a byte-identical duplicate of the first contract: exercises the
         batch engine's dedup attribution in traces and stats *)
      token;
    ]
