(* Regenerate examples/corpus.txt: a small, committed batch-input file
   used by the README quick-start, the CI trace-artifact step, and
   anyone who wants a realistic `sigrec batch` input without running
   the property harness.

   Run with: dune exec examples/make_corpus.exe > examples/corpus.txt

   With --stream N the tool instead emits an N-contract chain-scale
   corpus (compiled on the fly, ~90% byte-identical duplicates like a
   mainnet dump — tune with --dup RATE, --seed S) straight to stdout,
   line by line, for piping into `sigrec batch --stream -`:

     dune exec examples/make_corpus.exe -- --stream 100000 \
       | dune exec bin/sigrec_cli.exe -- batch --stream - *)

let stream_corpus n dup_rate seed =
  Printf.printf "# sigrec streamed corpus: %d contracts, dup rate %.2f, seed %d\n"
    n dup_rate seed;
  Solc.Corpus.stream ~seed ~n ~dup_rate (fun code ->
      print_string "0x";
      print_string (Evm.Hex.encode code);
      print_char '\n')

(* With --tokens N the tool emits a labeled token mini-corpus for the
   classification harness: still one bytecode per line (valid `sigrec
   classify --batch` input — labels ride in comment lines the parser
   skips), each contract preceded by its ground truth:

     dune exec examples/make_corpus.exe -- --tokens 25 > tokens.txt
     dune exec bin/sigrec_cli.exe -- classify --batch tokens.txt *)

let token_corpus n seed =
  Printf.printf "# sigrec token corpus: %d contracts, seed %d\n" n seed;
  print_endline
    "# each \"expect\" comment gives the ground-truth label of the next line";
  List.iter
    (fun (s : Solc.Corpus.token_sample) ->
      let expect =
        if s.Solc.Corpus.tlabel = "none" then "unknown"
        else if s.Solc.Corpus.texact then s.Solc.Corpus.tlabel
        else s.Solc.Corpus.tlabel ^ " (partial)"
      in
      Printf.printf "# expect: %s" expect;
      (match s.Solc.Corpus.tmissing with
      | [] -> ()
      | missing ->
        Printf.printf " missing=[%s]" (String.concat "; " missing));
      print_char '\n';
      print_string "0x";
      print_string (Evm.Hex.encode s.Solc.Corpus.tcode);
      print_char '\n')
    (Solc.Corpus.token_set ~seed ~n)

let usage () =
  prerr_endline
    "usage: make_corpus [--stream N [--dup RATE] [--seed S]]\n\
    \       make_corpus --tokens N [--seed S]";
  exit 2

let parse_stream_args args =
  let n = ref 0 and dup = ref 0.9 and seed = ref 20230704 in
  let tokens = ref false in
  let rec go = function
    | [] -> ()
    | "--stream" :: v :: rest -> (
      match int_of_string_opt v with
      | Some x when x > 0 ->
        n := x;
        go rest
      | _ -> usage ())
    | "--tokens" :: v :: rest -> (
      match int_of_string_opt v with
      | Some x when x > 0 ->
        n := x;
        tokens := true;
        go rest
      | _ -> usage ())
    | "--dup" :: v :: rest -> (
      match float_of_string_opt v with
      | Some x when x >= 0.0 && x < 1.0 ->
        dup := x;
        go rest
      | _ -> usage ())
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some x ->
        seed := x;
        go rest
      | _ -> usage ())
    | _ -> usage ()
  in
  go args;
  if !n = 0 then usage ();
  (!n, !dup, !seed, !tokens)

let committed_corpus () =
  let open Abi.Abity in
  let token =
    (* ERC-20 shape: total supply word, balances mapping, a packed
       (decimals, owner) slot *)
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:
           [
             Solc.Lang.svalue 0;
             Solc.Lang.smapping 1;
             Solc.Lang.svalue ~widths:[ 8; 160 ] 2;
           ]
         [
           Abi.Funsig.make "transfer" [ Address; Uint 256 ];
           Abi.Funsig.make "approve" [ Address; Uint 256 ];
           Abi.Funsig.make "transferFrom" [ Address; Address; Uint 256 ];
           Abi.Funsig.make "balanceOf" [ Address ];
         ])
  in
  let exchange =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:
           [
             Solc.Lang.smapping 0;
             Solc.Lang.sarray 1;
             Solc.Lang.svalue ~widths:[ 96; 160 ] 2;
           ]
         [
           Abi.Funsig.make ~visibility:Abi.Funsig.External "swap"
             [ Address; Uint 128; Bool ];
           Abi.Funsig.make ~visibility:Abi.Funsig.External "batchSettle"
             [ Darray Address; Darray (Uint 256) ];
           Abi.Funsig.make "setLabel" [ String_t; Bytes_n 32 ];
         ])
  in
  let registry =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:[ Solc.Lang.sarray 0; Solc.Lang.svalue 1 ]
         [
           Abi.Funsig.make "register" [ Bytes; Int 64 ];
           Abi.Funsig.make ~visibility:Abi.Funsig.External "setMatrix"
             [ Sarray (Uint 256, 3) ];
         ])
  in
  print_endline "# sigrec example corpus: one hex runtime bytecode per line";
  print_endline "# regenerate with: dune exec examples/make_corpus.exe";
  List.iter
    (fun code -> print_endline ("0x" ^ Evm.Hex.encode code))
    [
      token;
      exchange;
      registry;
      (* a byte-identical duplicate of the first contract: exercises the
         batch engine's dedup attribution in traces and stats *)
      token;
    ]

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> committed_corpus ()
  | _ :: args ->
    let n, dup_rate, seed, tokens = parse_stream_args args in
    if tokens then token_corpus n seed else stream_corpus n dup_rate seed
  | [] -> committed_corpus ()
