(* The paper's §4.2 worked example, reproduced end to end:

     function test(uint8[] values, address to) public {
         to.send(values[0]);
     }

   Listing 9 of the paper shows the instructions TASE needs; this
   walkthrough compiles the same function, dumps the access-event trace
   the symbolic executor collects, names the rules as they fire, and
   prints the recovered signature.

   Run with: dune exec examples/paper_walkthrough.exe *)

module Sexpr = Symex.Sexpr
module Trace = Symex.Trace

let () =
  let fsig =
    Abi.Funsig.make "test" [ Abi.Abity.Darray (Abi.Abity.Uint 8); Abi.Abity.Address ]
  in
  Printf.printf "source (hidden from the analysis): %s public\n\n"
    (Abi.Funsig.canonical fsig);
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  Printf.printf "compiled to %d bytes of runtime bytecode\n\n"
    (String.length code);

  (* step 0: function ids from the dispatcher *)
  let entry = List.hd (Sigrec.Ids.extract code) in
  Printf.printf "dispatcher: function id 0x%s, body at offset 0x%x\n\n"
    (Evm.Hex.encode entry.Sigrec.Ids.selector)
    entry.Sigrec.Ids.entry_pc;

  (* step 1-3: symbolic execution with the call data as symbols *)
  let trace =
    Symex.Exec.run ~code ~entry:entry.Sigrec.Ids.entry_pc
      ~init_stack:[ Sexpr.env "selector_residue" ] ()
  in
  Printf.printf "access-event trace (%d paths explored):\n"
    trace.Trace.paths_explored;
  Format.printf "%a@." Trace.pp trace;

  (* what the rules see, in the paper's own narration *)
  Printf.printf "rule narration (paper steps 1-4):\n";
  Printf.printf
    "  R1:  the load at offset 4 is dereferenced at value+4 -- the first\n\
    \       parameter is a dynamic array/bytes/string\n";
  Printf.printf
    "  R5:  one CALLDATACOPY consumes that offset field -- public mode\n";
  Printf.printf
    "  R7:  the copy length is num*32 -- a one-dimensional dynamic array\n";
  Printf.printf
    "  R4:  the plain load at offset 36 is a basic parameter (uint256\n\
    \       until refined)\n";
  Printf.printf
    "  R11: the array item read back from memory is masked with 0xff --\n\
    \       the element type is uint8\n";
  Printf.printf
    "  R16: the second word is masked with 20 bytes of 0xff and never\n\
    \       used in arithmetic -- address\n\n";

  (* step 4 + assembly: the recovered signature *)
  let stats = Sigrec.Stats.create () in
  (match Sigrec.Recover.recover ~stats code with
  | [ r ] ->
    Format.printf "recovered: %a@." Sigrec.Recover.pp r;
    Printf.printf "\nrules that actually fired:\n";
    List.iter
      (fun (name, n) ->
        if n > 0 then begin
          let doc =
            match Sigrec.Ruledoc.find name with
            | Some d -> d.Sigrec.Ruledoc.concludes
            | None -> ""
          in
          Printf.printf "  %-4s x%d  %s\n" name n doc
        end)
      (Sigrec.Stats.rule_counts stats)
  | _ -> Printf.printf "unexpected recovery result\n");
  Printf.printf
    "\nthe type list matches the source: \"uint8[],address\" (paper §4.2)\n"
