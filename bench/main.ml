(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) and the three application studies (§6).

   Each experiment prints the same rows/series the paper reports;
   EXPERIMENTS.md records paper-vs-measured. One Bechamel
   micro-benchmark per table/figure times the experiment's unit of
   work. Dataset sizes are scaled so the full run finishes in minutes
   (see DESIGN.md: proportions, not absolute counts, are the target). *)

let seed = 20230704

let section title =
  Printf.printf "\n=== %s %s\n%!" title
    (String.make (Stdlib.max 1 (66 - String.length title)) '=')

(* ---------------------------------------------------------------- *)
(* Shared evaluation plumbing                                        *)
(* ---------------------------------------------------------------- *)

type breakdown = {
  mutable correct : int;
  mutable not_recovered : int;
  mutable aborted : int;
  mutable wrong_types : int;
  mutable wrong_count : int;
  mutable total : int;
}

let fresh_breakdown () =
  {
    correct = 0;
    not_recovered = 0;
    aborted = 0;
    wrong_types = 0;
    wrong_count = 0;
    total = 0;
  }

let classify_outcome b (truth : Abi.Funsig.t) outcome =
  b.total <- b.total + 1;
  match outcome with
  | Tools.Baseline.Aborted -> b.aborted <- b.aborted + 1
  | Tools.Baseline.Not_recovered -> b.not_recovered <- b.not_recovered + 1
  | Tools.Baseline.Recovered tys ->
    if List.length tys <> List.length truth.Abi.Funsig.params then
      b.wrong_count <- b.wrong_count + 1
    else if List.for_all2 Abi.Abity.equal tys truth.Abi.Funsig.params then
      b.correct <- b.correct + 1
    else b.wrong_types <- b.wrong_types + 1

let pct part total =
  100.0 *. float_of_int part /. float_of_int (Stdlib.max 1 total)

(* every bench engine goes through the one Config record *)
let engine_with ?(jobs = 1) ?(static_prune = true) ?(cache_capacity = 0) () =
  Sigrec.Engine.make
    Sigrec.Engine.Config.(
      default |> with_jobs jobs
      |> with_static_prune static_prune
      |> with_cache_capacity cache_capacity)

(* SigRec packaged with the same interface as the baselines. Routed
   through a batch engine so that the repeated per-tool queries of the
   same bytecode hit the content-addressed cache instead of re-running
   the analysis. *)
let sigrec_tool ?engine () =
  let engine =
    match engine with Some e -> e | None -> engine_with ()
  in
  let run ~bytecode ~selector =
    let report = Sigrec.Engine.recover engine bytecode in
    match
      List.find_opt
        (fun r -> r.Sigrec.Recover.selector = selector)
        (Sigrec.Engine.signatures report)
    with
    | Some r -> Tools.Baseline.Recovered r.Sigrec.Recover.params
    | None -> Tools.Baseline.Not_recovered
  in
  { Tools.Baseline.name = "SigRec"; run }

let eval_tools tools samples =
  List.map
    (fun (tool : Tools.Baseline.t) ->
      let b = fresh_breakdown () in
      List.iter
        (fun s ->
          let truth = Solc.Corpus.truth s in
          let outcome =
            tool.Tools.Baseline.run ~bytecode:s.Solc.Corpus.code
              ~selector:(Abi.Funsig.selector truth)
          in
          classify_outcome b truth outcome)
        samples;
      (tool.Tools.Baseline.name, b))
    tools

let print_breakdown_table rows =
  Printf.printf "%-11s %9s %9s %9s %9s %9s\n" "tool" "correct" "norecov"
    "aborted" "wrongty" "wrongcnt";
  List.iter
    (fun (name, b) ->
      Printf.printf "%-11s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n" name
        (pct b.correct b.total)
        (pct b.not_recovered b.total)
        (pct b.aborted b.total)
        (pct b.wrong_types b.total)
        (pct b.wrong_count b.total))
    rows

let standard_tools db =
  Tools.Baseline.[ osd db; ebd db; jeb db; eveem db; gigahorse db ]

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one per table/figure                   *)
(* ---------------------------------------------------------------- *)

let bechamel_tests : (string * (unit -> unit)) list ref = ref []
let register_bench name f = bechamel_tests := (name, f) :: !bechamel_tests

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns per experiment unit)";
  let open Bechamel in
  let tests =
    List.rev_map
      (fun (name, f) -> Test.make ~name (Staged.stage f))
      !bechamel_tests
  in
  let grouped = Test.make_grouped ~name:"sigrec" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun elt ->
      let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
      let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      Printf.printf "%-40s %12.0f ns/run\n" (Test.Elt.name elt) estimate)
    (Test.elements grouped)

(* ---------------------------------------------------------------- *)
(* Table 1: closed-source contracts                                  *)
(* ---------------------------------------------------------------- *)

let table1 () =
  section "Table 1: closed-source contracts (agreement with SigRec)";
  let samples = Solc.Corpus.dataset1 ~seed ~n:1200 in
  (* closed-source: a smaller share of their signatures ever made it
     into public databases *)
  let db = Tools.Efsd.create () in
  Tools.Efsd.populate db ~coverage:0.38 ~seed
    (List.map Solc.Corpus.truth samples);
  let sigrec = sigrec_tool () in
  let tools = standard_tools db in
  Printf.printf "%-11s %16s %9s\n" "tool" "same-as-SigRec" "aborted";
  List.iter
    (fun (tool : Tools.Baseline.t) ->
      let same = ref 0 and aborted = ref 0 and total = ref 0 in
      List.iter
        (fun s ->
          let truth = Solc.Corpus.truth s in
          let selector = Abi.Funsig.selector truth in
          let bytecode = s.Solc.Corpus.code in
          incr total;
          match
            ( sigrec.Tools.Baseline.run ~bytecode ~selector,
              tool.Tools.Baseline.run ~bytecode ~selector )
          with
          | Tools.Baseline.Recovered a, Tools.Baseline.Recovered b
            when List.length a = List.length b
                 && List.for_all2 Abi.Abity.equal a b ->
            incr same
          | _, Tools.Baseline.Aborted -> incr aborted
          | _ -> ())
        samples;
      Printf.printf "%-11s %15.1f%% %8.1f%%\n" tool.Tools.Baseline.name
        (pct !same !total) (pct !aborted !total))
    tools;
  let sample = List.hd samples in
  register_bench "table1:recover-closed-source" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Table 2: 1000 synthesized functions                               *)
(* ---------------------------------------------------------------- *)

let table2 () =
  section "Table 2: 1000 synthesized function signatures";
  let samples = Solc.Corpus.dataset2 ~seed ~n:1000 in
  (* none of the synthesized signatures exist in any database *)
  let empty_db = Tools.Efsd.create () in
  let eveem_rules_only =
    {
      Tools.Baseline.name = "Eveem";
      run =
        (fun ~bytecode ~selector ->
          Tools.Baseline.eveem_heuristic ~bytecode ~selector);
    }
  in
  let tools =
    [ sigrec_tool () ]
    @ Tools.Baseline.[ osd empty_db; ebd empty_db; jeb empty_db ]
    @ [ eveem_rules_only ]
  in
  print_breakdown_table (eval_tools tools samples);
  let sample = List.hd samples in
  register_bench "table2:recover-synthesized" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Table 3: open-source contracts                                    *)
(* ---------------------------------------------------------------- *)

let table3 () =
  section "Table 3: open-source contracts";
  let samples = Solc.Corpus.dataset3 ~seed ~n:2000 in
  (* the paper finds >49% of open-source signatures missing from EFSD *)
  let db = Tools.Efsd.create () in
  Tools.Efsd.populate db ~coverage:0.509 ~seed
    (List.map Solc.Corpus.truth samples);
  let tools = sigrec_tool () :: standard_tools db in
  print_breakdown_table (eval_tools tools samples);
  let sample = List.hd samples in
  register_bench "table3:recover-open-source" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Table 4: struct and nested arrays (ABIEncoderV2)                  *)
(* ---------------------------------------------------------------- *)

let table4 () =
  section "Table 4: struct and nested array parameters";
  let samples = Solc.Corpus.abiv2_set ~seed ~n:1104 in
  (* the paper: 10.1% of these signatures are recorded in EFSD *)
  let db = Tools.Efsd.create () in
  Tools.Efsd.populate db ~coverage:0.101 ~seed
    (List.map Solc.Corpus.truth samples);
  let tools = sigrec_tool () :: standard_tools db in
  print_breakdown_table (eval_tools tools samples);
  let sample = List.hd samples in
  register_bench "table4:recover-abiv2" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Table 5: Vyper contracts                                          *)
(* ---------------------------------------------------------------- *)

let table5 () =
  section "Table 5: Vyper contracts";
  let samples = Solc.Corpus.vyper_set ~seed ~n:1076 in
  let db = Tools.Efsd.create () in
  Tools.Efsd.populate db ~coverage:0.35 ~seed
    (List.map Solc.Corpus.truth samples);
  let tools = sigrec_tool () :: standard_tools db in
  print_breakdown_table (eval_tools tools samples);
  let sample = List.hd samples in
  register_bench "table5:recover-vyper" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Fig. 15 / Fig. 16: accuracy per compiler version                  *)
(* ---------------------------------------------------------------- *)

let fig15_16 () =
  section "Fig. 15/16: accuracy per compiler version";
  let per_version = 80 in
  let groups = Solc.Corpus.versioned ~seed ~per_version in
  let min_sol = ref 100.0 and min_vy = ref 100.0 in
  List.iter
    (fun ((version : Solc.Version.t), samples) ->
      let ok = ref 0 in
      List.iter
        (fun s ->
          let truth = Solc.Corpus.truth s in
          match Sigrec.Recover.recover s.Solc.Corpus.code with
          | [ r ]
            when r.Sigrec.Recover.selector = Abi.Funsig.selector truth
                 && List.length r.Sigrec.Recover.params
                    = List.length truth.Abi.Funsig.params
                 && List.for_all2 Abi.Abity.equal r.Sigrec.Recover.params
                      truth.Abi.Funsig.params ->
            incr ok
          | _ -> ())
        samples;
      let acc = pct !ok per_version in
      let lang =
        match version.Solc.Version.lang with
        | Abi.Abity.Solidity ->
          if acc < !min_sol then min_sol := acc;
          "solidity"
        | Abi.Abity.Vyper ->
          if acc < !min_vy then min_vy := acc;
          "vyper"
      in
      Printf.printf "%-9s %-12s %6.1f%%  %s\n" lang version.Solc.Version.name
        acc
        (String.make (int_of_float (acc /. 2.5)) '#'))
    groups;
  Printf.printf
    "\nminimum accuracy: Solidity %.1f%% (paper: never below 96%%), Vyper \
     %.1f%%\n"
    !min_sol !min_vy;
  let _, samples = List.hd groups in
  let sample = List.hd samples in
  register_bench "fig15:recover-per-version" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Fig. 17: time to recover a signature                              *)
(* ---------------------------------------------------------------- *)

let fig17 () =
  section "Fig. 17: recovery time distribution";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 1) ~n:600 in
  let times =
    List.map
      (fun s ->
        let t0 = Sys.time () in
        ignore (Sigrec.Recover.recover s.Solc.Corpus.code);
        Sys.time () -. t0)
      samples
  in
  let sorted = List.sort compare times in
  let n = List.length sorted in
  let nth p = List.nth sorted (Stdlib.min (n - 1) (p * n / 100)) in
  let avg = List.fold_left ( +. ) 0.0 times /. float_of_int n in
  let buckets =
    [ (0.001, "<= 1 ms"); (0.01, "<= 10 ms"); (0.1, "<= 100 ms");
      (1.0, "<= 1 s"); (infinity, "> 1 s") ]
  in
  let prev = ref 0.0 in
  List.iter
    (fun (ub, label) ->
      let c =
        List.length (List.filter (fun t -> t <= ub && t > !prev) times)
      in
      Printf.printf "%-10s %6d functions  %s\n" label c
        (String.make (60 * c / n) '#');
      prev := ub)
    buckets;
  Printf.printf
    "\naverage %.4f s; median %.4f s; p99 %.4f s; %.1f%% within 1 s\n\
     (paper: average 0.074 s, 99.7%% within 1 s)\n"
    avg (nth 50) (nth 99)
    (pct (List.length (List.filter (fun t -> t <= 1.0) times)) n);
  let sample = List.hd samples in
  register_bench "fig17:recover-one-signature" (fun () ->
      ignore (Sigrec.Recover.recover sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Fig. 18: recovery time vs array dimension                         *)
(* ---------------------------------------------------------------- *)

let fig18 () =
  section "Fig. 18: recovery time vs array dimension (1-20)";
  let time_for dim =
    (* an n-dimensional dynamic uint256 array parameter, lower
       dimensions of size 1, in an external function *)
    let rec build d =
      if d = 0 then Abi.Abity.Uint 256
      else Abi.Abity.Sarray (build (d - 1), 1)
    in
    let ty = Abi.Abity.Darray (build (dim - 1)) in
    let fsig =
      Abi.Funsig.make ~visibility:Abi.Funsig.External "deep" [ ty ]
    in
    let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
    let t0 = Sys.time () in
    let reps = 5 in
    for _ = 1 to reps do
      ignore (Sigrec.Recover.recover code)
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let base = ref 1e-9 in
  List.iter
    (fun dim ->
      let t = time_for dim in
      if dim = 1 then base := Stdlib.max t 1e-9;
      Printf.printf "dim %2d: %8.4f s  %s\n" dim t
        (String.make (Stdlib.min 60 (int_of_float (t /. !base *. 3.0))) '#'))
    [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 14; 16; 18; 20 ];
  Printf.printf
    "(paper: time grows linearly with the dimension; deployed arrays have \
     dimension <= 3)\n";
  register_bench "fig18:recover-dim8-array" (fun () ->
      let rec build d =
        if d = 0 then Abi.Abity.Uint 256
        else Abi.Abity.Sarray (build (d - 1), 1)
      in
      let fsig =
        Abi.Funsig.make ~visibility:Abi.Funsig.External "deep"
          [ Abi.Abity.Darray (build 7) ]
      in
      let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
      ignore (Sigrec.Recover.recover code))

(* ---------------------------------------------------------------- *)
(* Fig. 19: rule usage frequency                                     *)
(* ---------------------------------------------------------------- *)

let fig19 () =
  section "Fig. 19: rule usage frequency";
  let stats = Sigrec.Stats.create () in
  let samples =
    Solc.Corpus.dataset3 ~seed ~n:1200
    @ Solc.Corpus.vyper_set ~seed ~n:300
    @ Solc.Corpus.abiv2_set ~seed ~n:300
  in
  List.iter
    (fun s -> ignore (Sigrec.Recover.recover ~stats s.Solc.Corpus.code))
    samples;
  let counts = Sigrec.Stats.rule_counts stats in
  let maxc = List.fold_left (fun acc (_, c) -> Stdlib.max acc c) 1 counts in
  List.iter
    (fun (name, c) ->
      Printf.printf "%-4s %7d  %s\n" name c (String.make (55 * c / maxc) '#'))
    counts;
  let most, _ =
    List.fold_left
      (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
      ("-", -1) counts
  in
  Printf.printf "\nmost used: %s (paper: R4); all rules exercised: %b\n" most
    (List.for_all (fun (_, c) -> c > 0) counts);
  let sample = List.hd samples in
  register_bench "fig19:recover-with-stats" (fun () ->
      ignore (Sigrec.Recover.recover ~stats sample.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* §6.1: ParChecker                                                  *)
(* ---------------------------------------------------------------- *)

let app_parchecker () =
  section "Application 6.1: ParChecker (invalid arguments, short addresses)";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 2) ~n:120 in
  let sigs =
    List.filter_map
      (fun s ->
        let t = Solc.Corpus.truth s in
        if List.exists Abi.Abity.is_dynamic t.Abi.Funsig.params then None
        else Some t)
      samples
    @ [ Abi.Funsig.make "transfer" [ Abi.Abity.Address; Abi.Abity.Uint 256 ] ]
  in
  let n = 30_000 in
  let txs = Tools.Parchecker.gen_tx_stream ~seed ~n sigs in
  let invalid = ref 0 and attacks_found = ref 0 and attacks_planted = ref 0 in
  List.iter
    (fun (tx : Tools.Parchecker.tx) ->
      let params = tx.Tools.Parchecker.fsig.Abi.Funsig.params in
      (match
         Tools.Parchecker.check_call params tx.Tools.Parchecker.calldata
       with
      | Tools.Parchecker.Invalid _ -> incr invalid
      | Tools.Parchecker.Valid -> ());
      if tx.Tools.Parchecker.label = Tools.Parchecker.Short_address then
        incr attacks_planted;
      if
        Tools.Parchecker.is_short_address_attack params
          tx.Tools.Parchecker.calldata
      then incr attacks_found)
    txs;
  Printf.printf
    "transactions analysed: %d\n\
     invalid actual arguments: %d (%.2f%%; paper: 1%% of transactions)\n\
     short address attacks: %d found / %d planted (paper: 73 attacks found)\n"
    n !invalid (pct !invalid n) !attacks_found !attacks_planted;
  let tx = List.hd txs in
  register_bench "app6.1:parcheck-one-tx" (fun () ->
      ignore
        (Tools.Parchecker.check_call tx.Tools.Parchecker.fsig.Abi.Funsig.params
           tx.Tools.Parchecker.calldata))

(* ---------------------------------------------------------------- *)
(* §6.2: fuzzing                                                     *)
(* ---------------------------------------------------------------- *)

let app_fuzzer () =
  section "Application 6.2: ContractFuzzer with recovered signatures";
  let n = 600 in
  let samples = Solc.Corpus.fuzz_set ~seed ~n in
  let aware = ref 0 and raw = ref 0 and cov = ref 0 in
  List.iteri
    (fun i s ->
      let truth = Solc.Corpus.truth s in
      let selector = Abi.Funsig.selector truth in
      let code = s.Solc.Corpus.code in
      (* ContractFuzzer consumes SigRec's recovered signature *)
      let params =
        match Sigrec.Recover.recover code with
        | r :: _ -> r.Sigrec.Recover.params
        | [] -> truth.Abi.Funsig.params
      in
      let rng = Random.State.make [| seed; i |] in
      let a =
        Tools.Fuzzer.run_campaign ~rng ~code ~selector
          (Tools.Fuzzer.Signature_aware params)
      in
      let rng = Random.State.make [| seed; i |] in
      let b =
        Tools.Fuzzer.run_campaign ~rng ~code ~selector Tools.Fuzzer.Raw
      in
      if a.Tools.Fuzzer.bug_found then incr aware;
      if b.Tools.Fuzzer.bug_found then incr raw;
      let rng = Random.State.make [| seed; i |] in
      let c =
        Tools.Fuzzer.run_coverage_campaign ~rng ~code ~selector params
      in
      if c.Tools.Fuzzer.bug_found then incr cov)
    samples;
  Printf.printf
    "vulnerable contracts found:\n\
    \  ContractFuzzer      (with recovered signatures): %d/%d\n\
    \  ContractFuzzer-cov  (+ coverage feedback):       %d/%d\n\
    \  ContractFuzzer-     (raw byte sequences):        %d/%d\n\
     improvement: +%.1f%% (paper: +23%% bugs, +25%% vulnerable contracts)\n"
    !aware n !cov n !raw n
    (100.0
    *. float_of_int (!aware - !raw)
    /. float_of_int (Stdlib.max 1 !raw));
  let s = List.hd samples in
  register_bench "app6.2:fuzz-one-campaign" (fun () ->
      let truth = Solc.Corpus.truth s in
      let rng = Random.State.make [| 1 |] in
      ignore
        (Tools.Fuzzer.run_campaign ~budget:8 ~rng ~code:s.Solc.Corpus.code
           ~selector:(Abi.Funsig.selector truth) Tools.Fuzzer.Raw))

(* ---------------------------------------------------------------- *)
(* §6.3: Erays+                                                      *)
(* ---------------------------------------------------------------- *)

let app_erays () =
  section "Application 6.3: Erays+ readability improvement";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 3) ~n:400 in
  let types = ref 0 and names = ref 0 and nums = ref 0 and removed = ref 0 in
  let count = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun (e : Tools.Eraysplus.enhanced) ->
          incr count;
          types := !types + e.Tools.Eraysplus.added_types;
          names := !names + e.Tools.Eraysplus.added_arg_names;
          nums := !nums + e.Tools.Eraysplus.added_num_names;
          removed := !removed + e.Tools.Eraysplus.removed_lines)
        (Tools.Eraysplus.enhance s.Solc.Corpus.code))
    samples;
  let avg x = float_of_int !x /. float_of_int (Stdlib.max 1 !count) in
  Printf.printf
    "functions enhanced: %d\n\
     average added types:           %5.1f (paper: 5.5)\n\
     average added parameter names: %5.1f (paper: 15)\n\
     average added num names:       %5.1f (paper: 3.4)\n\
     average removed access lines:  %5.1f (paper: 15)\n"
    !count (avg types) (avg names) (avg nums) (avg removed);
  let s = List.hd samples in
  register_bench "app6.3:lift-and-enhance" (fun () ->
      ignore (Tools.Eraysplus.enhance s.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Ablation: contribution of each rule group                         *)
(* ---------------------------------------------------------------- *)

let ablation () =
  section "Ablation: rule-group contributions (extension)";
  let samples =
    Solc.Corpus.dataset3 ~seed:(seed + 4) ~n:400
    @ Solc.Corpus.vyper_set ~seed:(seed + 4) ~n:150
    @ Solc.Corpus.abiv2_set ~seed:(seed + 4) ~n:150
  in
  let correct config =
    List.length
      (List.filter
         (fun s ->
           let truth = Solc.Corpus.truth s in
           match
             List.find_opt
               (fun r ->
                 r.Sigrec.Recover.selector = Abi.Funsig.selector truth)
               (Sigrec.Recover.recover ~config s.Solc.Corpus.code)
           with
           | Some r ->
             List.length r.Sigrec.Recover.params
             = List.length truth.Abi.Funsig.params
             && List.for_all2 Abi.Abity.equal r.Sigrec.Recover.params
                  truth.Abi.Funsig.params
           | None -> false)
         samples)
  in
  let total = List.length samples in
  let open Sigrec.Rules in
  List.iter
    (fun (name, config) ->
      let ok = correct config in
      Printf.printf "%-36s %5.1f%%  %s\n" name (pct ok total)
        (String.make (40 * ok / total) '#'))
    [
      ("full rule set", default_config);
      ("without fine masks (R11-R18/R26-R31)",
       { default_config with fine_masks = false });
      ("without bound-check dims (R2/R3/R9/R10)",
       { default_config with guard_dims = false });
      ("without struct/nested (R19/R21/R22)",
       { default_config with nested = false });
      ("without Vyper rules (R20/R23-R31)",
       { default_config with vyper = false });
    ];
  let s = List.hd samples in
  register_bench "ablation:recover-no-masks" (fun () ->
      ignore
        (Sigrec.Recover.recover
           ~config:{ default_config with fine_masks = false }
           s.Solc.Corpus.code))

(* ---------------------------------------------------------------- *)
(* Obfuscation study (paper Â§7)                                      *)
(* ---------------------------------------------------------------- *)

let obfuscation () =
  section "Obfuscation resistance (extension; paper sec. 7)";
  let base = Solc.Corpus.dataset3 ~seed:(seed + 5) ~n:300 in
  Printf.printf "%-8s %22s %22s\n" "level" "SigRec (TASE)" "Eveem (patterns)";
  List.iter
    (fun level ->
      let samples =
        List.map
          (fun s ->
            let code =
              if level = 0 then s.Solc.Corpus.code
              else
                Solc.Obfuscate.compile_obfuscated ~level ~seed
                  {
                    Solc.Compile.fns = [ s.Solc.Corpus.fn ];
                    version = s.Solc.Corpus.version;
                    storage = [];
                  }
            in
            (code, Solc.Corpus.truth s))
          base
      in
      let count recover_fn =
        List.length
          (List.filter
             (fun (code, truth) ->
               match recover_fn code truth with
               | Some tys ->
                 List.length tys = List.length truth.Abi.Funsig.params
                 && List.for_all2 Abi.Abity.equal tys
                      truth.Abi.Funsig.params
               | None -> false)
             samples)
      in
      let sig_ok =
        count (fun code truth ->
            match
              List.find_opt
                (fun r ->
                  r.Sigrec.Recover.selector = Abi.Funsig.selector truth)
                (Sigrec.Recover.recover code)
            with
            | Some r -> Some r.Sigrec.Recover.params
            | None -> None)
      in
      let eveem_ok =
        count (fun code truth ->
            match
              Tools.Baseline.eveem_heuristic ~bytecode:code
                ~selector:(Abi.Funsig.selector truth)
            with
            | Tools.Baseline.Recovered tys -> Some tys
            | _ -> None)
      in
      let n = List.length samples in
      Printf.printf "%-8d %20.1f%% %20.1f%%\n" level (pct sig_ok n)
        (pct eveem_ok n))
    [ 0; 1; 2; 3 ];
  Printf.printf
    "(levels: 1 junk insertion, 2 +constant splitting, 3 +semantic mask\n\
    \ rewriting; TASE survives syntactic obfuscation, pattern matching\n\
    \ does not -- the gradient motivating sec. 7's future-work rules)\n";
  let s = List.hd base in
  register_bench "obfuscation:recover-level2" (fun () ->
      let code =
        Solc.Obfuscate.compile_obfuscated ~level:2 ~seed
          { Solc.Compile.fns = [ s.Solc.Corpus.fn ];
            version = s.Solc.Corpus.version;
            storage = [] }
      in
      ignore (Sigrec.Recover.recover code))

(* ---------------------------------------------------------------- *)
(* Batch engine: multicore fan-out + content-addressed cache         *)
(* ---------------------------------------------------------------- *)

let engine_batch () =
  section "Batch engine: multicore fan-out and content-addressed cache";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 7) ~n:160 in
  let codes = List.map (fun s -> s.Solc.Corpus.code) samples in
  let render reports =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Sigrec.Engine.pp_report) reports)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq =
    wall (fun () -> Sigrec.Engine.recover_all (engine_with ()) codes)
  in
  let jobs = Domain.recommended_domain_count () in
  let par, t_par =
    wall (fun () ->
        Sigrec.Engine.recover_all (engine_with ~jobs ()) codes)
  in
  Printf.printf
    "recover_all over %d contracts:\n\
    \  sequential (jobs=1):  %6.2f s\n\
    \  parallel   (jobs=%d): %6.2f s   speedup %.2fx\n\
    \  parallel output byte-identical to sequential: %b\n"
    (List.length codes) t_seq jobs t_par
    (t_seq /. Stdlib.max 1e-9 t_par)
    (render seq = render par);
  (* main net is dominated by byte-identical duplicates: each distinct
     bytecode must be analyzed exactly once *)
  let dup_codes = codes @ codes @ List.rev codes in
  let engine = engine_with ~jobs () in
  let _, t_dup =
    wall (fun () -> Sigrec.Engine.recover_all engine dup_codes)
  in
  let stats = Sigrec.Engine.stats engine in
  Printf.printf
    "duplicate-heavy corpus: %d inputs -> %d analyses, %d cache hits \
     (%.2f s)\n"
    (List.length dup_codes)
    (Sigrec.Stats.cache_misses stats)
    (Sigrec.Stats.cache_hits stats)
    t_dup;
  let outcomes =
    List.concat_map (fun r -> r.Sigrec.Engine.outcomes) seq
  in
  let count p = List.length (List.filter p outcomes) in
  Printf.printf
    "outcomes: %d recovered, %d budget-exhausted, %d failed\n"
    (count (function Sigrec.Engine.Recovered _ -> true | _ -> false))
    (count (function Sigrec.Engine.Budget_exhausted _ -> true | _ -> false))
    (count (function Sigrec.Engine.Failed _ -> true | _ -> false));
  let one = [ List.hd codes ] in
  register_bench "engine:recover-one-cached" (fun () ->
      ignore (Sigrec.Engine.recover_all engine one))

(* ---------------------------------------------------------------- *)
(* Static pass: jump resolution, fork pruning, differential lint     *)
(* ---------------------------------------------------------------- *)

let static_pass () =
  section "Static pass: jump resolution, fork pruning, differential lint";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 8) ~n:200 in
  (* plain corpus plus obfuscated variants: junk insertion separates the
     PUSH from its JUMP, so only the abstract interpreter can resolve
     those targets (the single-block peephole cannot) *)
  let obf =
    List.filteri (fun i _ -> i < 50) samples
    |> List.map (fun s ->
           Solc.Obfuscate.compile_obfuscated ~level:2 ~seed
             {
               Solc.Compile.fns = [ s.Solc.Corpus.fn ];
               version = s.Solc.Corpus.version;
               storage = [];
             })
  in
  let codes = List.map (fun s -> s.Solc.Corpus.code) samples @ obf in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* abstract-interpretation throughput, measured alone *)
  let contracts, t_static =
    wall (fun () -> List.map Sigrec.Contract.make codes)
  in
  let resolved =
    List.fold_left (fun acc c -> acc + Sigrec.Contract.jumps_resolved c) 0
      contracts
  in
  let unresolved_after =
    List.fold_left
      (fun acc (c : Sigrec.Contract.t) ->
        acc + Evm.Cfg.unresolved_count c.Sigrec.Contract.cfg)
      0 contracts
  in
  let bytes =
    List.fold_left (fun acc c -> acc + String.length c) 0 codes
  in
  let throughput = float_of_int bytes /. Stdlib.max 1e-9 t_static in
  Printf.printf
    "static analysis of %d contracts (%d bytes): %.3f s (%.0f bytes/s)\n\
     unresolved jump edges: %d resolved by the abstract interpreter, %d left\n"
    (List.length codes) bytes t_static throughput resolved unresolved_after;
  (* symbolic paths with and without the static prune *)
  let run_engine ~static_prune =
    let engine = engine_with ~static_prune () in
    let _, t = wall (fun () -> Sigrec.Engine.recover_all engine codes) in
    (Sigrec.Engine.stats engine, t)
  in
  let stats_off, t_off = run_engine ~static_prune:false in
  let stats_on, t_on = run_engine ~static_prune:true in
  let paths_off = Sigrec.Stats.paths_explored stats_off in
  let paths_on = Sigrec.Stats.paths_explored stats_on in
  let pruned = Sigrec.Stats.forks_pruned stats_on in
  Printf.printf
    "symbolic paths: %d without pruning -> %d with pruning (%d forks \
     skipped)\n\
     recover_all: %.2f s unpruned, %.2f s pruned\n"
    paths_off paths_on pruned t_off t_on;
  (* cache behaviour, cold and warm measured separately: folding the
     warm-up pass into one number used to report a meaningless 50% *)
  let engine = engine_with () in
  let _ = Sigrec.Engine.recover_all engine codes in
  let cstats = Sigrec.Engine.stats engine in
  let cold_hits = Sigrec.Stats.cache_hits cstats in
  let cold_misses = Sigrec.Stats.cache_misses cstats in
  let _ = Sigrec.Engine.recover_all engine codes in
  let warm_hits = Sigrec.Stats.cache_hits cstats - cold_hits in
  let warm_misses = Sigrec.Stats.cache_misses cstats - cold_misses in
  let cold_rate = pct cold_hits (cold_hits + cold_misses) in
  let warm_rate = pct warm_hits (warm_hits + warm_misses) in
  Printf.printf
    "cache: cold %d hits / %d misses (%.1f%%), warm %d hits / %d misses \
     (%.1f%%)\n"
    cold_hits cold_misses cold_rate warm_hits warm_misses warm_rate;
  (* differential lint: clean configuration, then a mutated rule set *)
  let lint_stats = Sigrec.Stats.create () in
  List.iter
    (fun code -> ignore (Sigrec.Lint.check ~stats:lint_stats code))
    codes;
  let agree = Sigrec.Stats.lint_agreements lint_stats in
  let disagree = Sigrec.Stats.lint_disagreements lint_stats in
  let mutated = { Sigrec.Rules.default_config with fine_masks = false } in
  let mut_stats = Sigrec.Stats.create () in
  List.iter
    (fun code ->
      ignore (Sigrec.Lint.check ~stats:mut_stats ~config:mutated code))
    codes;
  let mut_disagree = Sigrec.Stats.lint_disagreements mut_stats in
  Printf.printf
    "lint: %d agree / %d disagree on the default rules\n\
     lint with fine masks disabled: %d functions flagged (injected \
     mutation)\n"
    agree disagree mut_disagree;
  (* machine-readable summary for CI trend tracking *)
  let json =
    Printf.sprintf
      "{\"contracts\":%d,\"bytes\":%d,\"static_seconds\":%.6f,\
       \"throughput_bytes_per_s\":%.0f,\"jumps_resolved\":%d,\
       \"unresolved_after\":%d,\"paths_without_pruning\":%d,\
       \"paths_with_pruning\":%d,\"forks_pruned\":%d,\
       \"seconds_without_pruning\":%.3f,\"seconds_with_pruning\":%.3f,\
       \"cache_cold_hits\":%d,\"cache_cold_misses\":%d,\
       \"cache_cold_hit_rate\":%.3f,\
       \"cache_warm_hits\":%d,\"cache_warm_misses\":%d,\
       \"cache_warm_hit_rate\":%.3f,\
       \"lint_agree\":%d,\"lint_disagree\":%d,\
       \"mutated_config_disagreements\":%d}"
      (List.length codes) bytes t_static throughput resolved unresolved_after
      paths_off paths_on pruned t_off t_on cold_hits cold_misses
      (cold_rate /. 100.0) warm_hits warm_misses (warm_rate /. 100.0)
      agree disagree mut_disagree
  in
  Out_channel.with_open_text "BENCH_static.json" (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "wrote BENCH_static.json\n";
  let one = List.hd codes in
  register_bench "static:abstract-interpretation" (fun () ->
      ignore (Sigrec.Contract.make one));
  register_bench "static:lint-one-contract" (fun () ->
      ignore (Sigrec.Lint.check one))

(* ---------------------------------------------------------------- *)
(* Symbolic core: hash-consing wall-clock and allocation profile     *)
(* ---------------------------------------------------------------- *)

(* A structural mirror of the symbolic expression nodes as they stood
   before hash-consing: every construction allocates a fresh block and
   equality walks both trees. The micro-benchmark below pushes the same
   offset-arithmetic shapes through both representations; the ratio of
   the two measurements is the honest pre/post comparison recorded in
   BENCH_perf.json. *)
module Structural = struct
  type t =
    | Const of Evm.U256.t
    | CDLoad of int
    | Bin of int * t * t
    | Un of int * t

  let rec equal a b =
    match (a, b) with
    | Const x, Const y -> Evm.U256.equal x y
    | CDLoad i, CDLoad j -> i = j
    | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      o1 = o2 && equal a1 a2 && equal b1 b2
    | Un (o1, a1), Un (o2, a2) -> o1 = o2 && equal a1 a2
    | _ -> false
end

(* Wall time plus per-domain Gc deltas. The allocation numbers are
   meaningful only when [f] runs entirely in this domain (jobs=1). *)
let measured f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let t = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  ( v,
    t,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.major_words -. g0.Gc.major_words )

let symex_core ?(emit = true) ?(n = 120) () =
  section "Symbolic core: hash-consed expressions";
  let extra = Stdlib.max 4 (n / 4) in
  let samples =
    Solc.Corpus.dataset3 ~seed:(seed + 9) ~n
    @ Solc.Corpus.vyper_set ~seed:(seed + 9) ~n:extra
    @ Solc.Corpus.abiv2_set ~seed:(seed + 9) ~n:extra
  in
  let codes = List.map (fun s -> s.Solc.Corpus.code) samples in
  let render reports =
    String.concat "\n"
      (List.map
         (fun r ->
           Format.asprintf "%a" Sigrec.Engine.pp_report
             { r with Sigrec.Engine.from_cache = false })
         reports)
  in
  (* stage 1: sequential recovery with allocation accounting *)
  let engine1 = engine_with () in
  let seq, t_seq, minor1, major1 =
    measured (fun () -> Sigrec.Engine.recover_all engine1 codes)
  in
  let stats1 = Sigrec.Engine.stats engine1 in
  let paths = Sigrec.Stats.paths_explored stats1 in
  let ih = Sigrec.Stats.intern_hits stats1 in
  let im = Sigrec.Stats.intern_misses stats1 in
  let nc = List.length codes in
  Printf.printf
    "recover_all jobs=1 over %d contracts: %.2f s, %d paths\n\
     allocation: %.2e minor words (%.0f/contract), %.2e major words\n\
     interner: %d hits / %d misses (%.1f%% hit rate, %d live nodes)\n"
    nc t_seq paths minor1
    (minor1 /. float_of_int nc)
    major1 ih im
    (pct ih (ih + im))
    (Symex.Sexpr.interner_size ());
  (* stage 2: a warm re-run answers everything from the cache and the
     reports must render identically *)
  let warm = Sigrec.Engine.recover_all engine1 codes in
  let warm_same = render seq = render warm in
  (* stage 3: parallel fan-out must stay byte-identical *)
  let jobs = Stdlib.max 2 (Domain.recommended_domain_count ()) in
  let par, t_par, _, _ =
    measured (fun () ->
        Sigrec.Engine.recover_all (engine_with ~jobs ()) codes)
  in
  let par_same = render seq = render par in
  Printf.printf
    "recover_all jobs=%d: %.2f s (speedup %.2fx); byte-identical: %b\n"
    jobs t_par
    (t_seq /. Stdlib.max 1e-9 t_par)
    par_same;
  (* stage 4: the static prune must not change output either *)
  let unpruned, t_unpruned, _, _ =
    measured (fun () ->
        Sigrec.Engine.recover_all (engine_with ~static_prune:false ()) codes)
  in
  let prune_same = render seq = render unpruned in
  Printf.printf
    "pruning off: %.2f s; byte-identical to pruned run: %b; warm cache \
     byte-identical: %b\n"
    t_unpruned prune_same warm_same;
  (* stage 5: representation micro-benchmark. Both builders produce the
     same tree shapes, so the pairwise-equality counts must agree; the
     structural side re-allocates and deep-compares where the interned
     side reuses nodes and compares pointers. *)
  let classes = 4 and micro_trees = 240 and reps = 25 in
  let build_structural i =
    let open Structural in
    let t = ref (CDLoad (4 + (32 * (i mod classes)))) in
    for k = 1 to 6 do
      t :=
        Bin
          ( 0,
            Bin (1, !t, Const (Evm.U256.of_int 32)),
            Const (Evm.U256.of_int (k * 32)) )
    done;
    Un (0, !t)
  in
  let build_interned i =
    let open Symex.Sexpr in
    let t = ref (cdload (4 + (32 * (i mod classes)))) in
    for k = 1 to 6 do
      t := bin Badd (bin Bmul !t (of_int 32)) (of_int (k * 32))
    done;
    un Uiszero !t
  in
  let pairwise build equal =
    let eqs = ref 0 in
    for _ = 1 to reps do
      let trees = Array.init micro_trees build in
      Array.iter
        (fun a -> Array.iter (fun b -> if equal a b then incr eqs) trees)
        trees
    done;
    !eqs
  in
  let s_eqs, t_struct, _, _ =
    measured (fun () -> pairwise build_structural Structural.equal)
  in
  let i_eqs, t_intern, _, _ =
    measured (fun () -> pairwise build_interned Symex.Sexpr.equal)
  in
  let eq_agree = s_eqs = i_eqs in
  let eq_speedup = t_struct /. Stdlib.max 1e-9 t_intern in
  (* the recorder's hot loop: deduplicate every access event by a key
     derived from its expression. Pre hash-consing that key was a
     rendered string; with interned nodes it is the node id. *)
  let rec structural_render t =
    let open Structural in
    match t with
    | Const v -> "0x" ^ Evm.U256.to_hex v
    | CDLoad i -> Printf.sprintf "cd[%d]" i
    | Bin (o, a, b) ->
      Printf.sprintf "(%d %s %s)" o (structural_render a)
        (structural_render b)
    | Un (o, a) -> Printf.sprintf "(%d %s)" o (structural_render a)
  in
  let dedup build key =
    let seen = Hashtbl.create 64 in
    for _ = 1 to reps do
      for i = 0 to micro_trees - 1 do
        Hashtbl.replace seen (key (build i)) ()
      done
    done;
    Hashtbl.length seen
  in
  let s_classes, t_sdedup, minor_s, _ =
    measured (fun () ->
        dedup build_structural (fun t -> `S (structural_render t)))
  in
  let i_classes, t_idedup, minor_i, _ =
    measured (fun () -> dedup build_interned (fun t -> `I (Symex.Sexpr.id t)))
  in
  let dedup_agree = s_classes = i_classes in
  let dedup_speedup = t_sdedup /. Stdlib.max 1e-9 t_idedup in
  let alloc_ratio = minor_s /. Stdlib.max 1.0 minor_i in
  let micro_agree = eq_agree && dedup_agree in
  Printf.printf
    "micro (%d trees x %d reps):\n\
    \  pairwise equality: structural %.4f s, interned %.4f s (%.1fx)\n\
    \  event dedup keys:  structural %.4f s / %.2e minor words,\n\
    \                     interned   %.4f s / %.2e minor words\n\
    \                     (%.1fx faster, %.1fx fewer words)\n\
    \  same equality/dedup classes: %b\n"
    micro_trees reps t_struct t_intern eq_speedup t_sdedup minor_s t_idedup
    minor_i dedup_speedup alloc_ratio micro_agree;
  let ok = warm_same && par_same && prune_same && micro_agree in
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\"paths\":%d,\
         \"wall_seconds_jobs1\":%.3f,\"jobs\":%d,\
         \"wall_seconds_parallel\":%.3f,\"parallel_identical\":%b,\
         \"wall_seconds_unpruned\":%.3f,\"prune_identical\":%b,\
         \"warm_cache_identical\":%b,\
         \"minor_words\":%.0f,\"minor_words_per_contract\":%.0f,\
         \"major_words\":%.0f,\
         \"intern_hits\":%d,\"intern_misses\":%d,\"intern_hit_rate\":%.3f,\
         \"interner_nodes\":%d,\
         \"micro_equality_structural_seconds\":%.6f,\
         \"micro_equality_interned_seconds\":%.6f,\
         \"micro_equality_speedup\":%.2f,\
         \"micro_dedup_structural_seconds\":%.6f,\
         \"micro_dedup_interned_seconds\":%.6f,\
         \"micro_dedup_speedup\":%.2f,\
         \"micro_dedup_structural_minor_words\":%.0f,\
         \"micro_dedup_interned_minor_words\":%.0f,\
         \"micro_allocation_ratio\":%.2f}"
        nc paths t_seq jobs t_par par_same t_unpruned prune_same warm_same
        minor1
        (minor1 /. float_of_int nc)
        major1 ih im
        (pct ih (ih + im) /. 100.0)
        (Symex.Sexpr.interner_size ())
        t_struct t_intern eq_speedup t_sdedup t_idedup dedup_speedup minor_s
        minor_i alloc_ratio
    in
    Out_channel.with_open_text "BENCH_perf.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_perf.json\n";
    register_bench "symex:interned-pairwise-equality" (fun () ->
        ignore (pairwise build_interned Symex.Sexpr.equal))
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Aggregation across contracts (paper sec. 7 proposal)              *)
(* ---------------------------------------------------------------- *)

let aggregation () =
  section "Cross-contract aggregation (extension; paper sec. 7)";
  let groups = Solc.Corpus.multi_body ~seed:(seed + 6) ~n:250 ~bodies:5 in
  let matches truth tys =
    List.length tys = List.length truth.Abi.Funsig.params
    && List.for_all2 Abi.Abity.equal tys truth.Abi.Funsig.params
  in
  let single_ok = ref 0 and single_total = ref 0 and agg_ok = ref 0 in
  List.iter
    (fun (truth, codes) ->
      let recoveries =
        List.filter_map
          (fun code ->
            match
              List.find_opt
                (fun r ->
                  r.Sigrec.Recover.selector = Abi.Funsig.selector truth)
                (Sigrec.Recover.recover code)
            with
            | Some r -> Some r.Sigrec.Recover.params
            | None -> None)
          codes
      in
      List.iter
        (fun tys ->
          incr single_total;
          if matches truth tys then incr single_ok)
        recoveries;
      match Sigrec.Aggregate.join_all recoveries with
      | Some joined when matches truth joined -> incr agg_ok
      | _ -> ())
    groups;
  Printf.printf
    "bodies per signature: 5 (varying parameter usage and compiler)\n\
     single-body recovery accuracy:   %5.1f%%\n\
     aggregated recovery accuracy:    %5.1f%%\n\
     (the paper's sec. 7 proposal: combine the clues different function\n\
    \ bodies expose to resolve case-5 ambiguities)\n"
    (pct !single_ok !single_total)
    (pct !agg_ok (List.length groups));
  let _, codes = List.hd groups in
  register_bench "aggregation:join-five-bodies" (fun () ->
      ignore (Sigrec.Aggregate.recover_many codes))

let proptest_volume () =
  section "Property harness at volume (lib/proptest)";
  let stats = Sigrec.Stats.create () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let count = 2000 in
  let rt, t_rt =
    wall (fun () ->
        Proptest.Prop.run ~seed ~count ~max_size:20 ~name:"round_trip"
          Proptest.Oracle.arb_case
          (Proptest.Oracle.round_trip ~stats))
  in
  let diff, t_diff =
    wall (fun () ->
        Proptest.Prop.run ~seed:(seed + 1) ~count:400 ~max_size:20
          ~name:"differential" Proptest.Oracle.arb_case
          (Proptest.Oracle.differential ~stats))
  in
  let verdict r arb =
    if Proptest.Prop.is_pass r then "pass"
    else "FAIL\n" ^ Proptest.Prop.report arb r
  in
  Printf.printf
    "round-trip: %d generated signatures in %.2f s (%.0f cases/s): %s\n\
     differential: 400 cases in %.2f s: %s\n\
     rule coverage over the sweep: %s\n"
    count t_rt
    (float_of_int count /. Stdlib.max 1e-9 t_rt)
    (verdict rt Proptest.Oracle.arb_case)
    t_diff
    (verdict diff Proptest.Oracle.arb_case)
    (match Proptest.Oracle.rule_gate stats with
    | Ok () -> "all 31 rules fired"
    | Error e -> "INCOMPLETE — " ^ e);
  register_bench "proptest:generate-compile-one-case" (fun () ->
      ignore
        (Proptest.Sig_gen.compile
           (Proptest.Gen.run ~size:16 ~seed:[| seed; 11 |] Proptest.Sig_gen.case)))

(* ---------------------------------------------------------------- *)
(* Trace overhead: the observability layer must be free when off     *)
(* ---------------------------------------------------------------- *)

module Tr = Sigrec_trace.Trace

(* Two gates, both emitted to BENCH_trace.json and enforced in --smoke:

   - disabled: with tracing off, a probe at a hot call site costs one
     atomic load and a branch — measured directly as ns/op and minor
     words/op over 10M iterations, and indirectly as byte-identical
     recovery output.
   - enabled: full tracing slows the end-to-end batch by less than 10%
     (or 3x the measured run-to-run noise plus 2%, whichever is larger,
     so a noisy CI machine doesn't produce false alarms). *)
let trace_overhead ?(emit = true) ?(n = 48) () =
  section "Trace overhead: spans and rule instants vs. tracing off";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 9) ~n in
  let codes = List.map (fun s -> s.Solc.Corpus.code) samples in
  let render reports =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Sigrec.Engine.pp_report) reports)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* a fresh engine per run: the content-addressed cache would otherwise
     turn every run after the first into a lookup benchmark *)
  let run () = Sigrec.Engine.recover_all (engine_with ()) codes in
  ignore (run ());
  Tr.disable ();
  (* min-of-3 / min-of-2: single samples at this scale (a few ms) are
     at the mercy of the scheduler, especially with other domains
     alive in the process *)
  let out_off, t_off1 = wall run in
  let _, t_off2 = wall run in
  let _, t_off3 = wall run in
  (* warm the enabled path untimed — the first event after {!enable}
     allocates the per-domain ring, which is setup cost, not per-event
     overhead — then drop the warm-up events before the timed run *)
  Tr.enable ();
  ignore (run ());
  Tr.reset ();
  let out_on, t_on1 = wall run in
  Tr.reset ();
  let _, t_on2 = wall run in
  let events = List.length (Tr.collect ()) in
  let dropped = Tr.dropped () in
  Tr.disable ();
  Tr.reset ();
  let identical = render out_off = render out_on in
  let t_off = Stdlib.min t_off1 (Stdlib.min t_off2 t_off3) in
  let t_on = Stdlib.min t_on1 t_on2 in
  let noise =
    (Stdlib.max t_off1 (Stdlib.max t_off2 t_off3) -. t_off)
    /. Stdlib.max 1e-9 t_off
  in
  let ratio = t_on /. Stdlib.max 1e-9 t_off in
  let budget = Stdlib.max 0.10 ((3.0 *. noise) +. 0.02) in
  let enabled_ok = ratio -. 1.0 < budget in
  (* per-op micro cost of a disabled probe *)
  let ops = 10_000_000 in
  let m0 = Gc.minor_words () in
  let mt0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    if Tr.enabled () then Tr.counter Tr.Bench "noop" i
  done;
  let micro_ns =
    (Unix.gettimeofday () -. mt0) *. 1e9 /. float_of_int ops
  in
  let micro_words = (Gc.minor_words () -. m0) /. float_of_int ops in
  let disabled_ok = micro_ns < 50.0 && micro_words < 0.01 in
  let ok = identical && enabled_ok && disabled_ok in
  Printf.printf
    "recover_all over %d contracts (jobs=1):\n\
    \  tracing off: %.3f s / %.3f s / %.3f s  (run-to-run noise %.1f%%)\n\
    \  tracing on:  %.3f s  (%+.1f%% vs off, budget %.1f%%; %d events, \
     %d dropped)\n\
    \  rendered output byte-identical on/off: %b\n\
     disabled probe: %.2f ns/op, %.5f minor words/op (gate: <50 ns, no \
     allocation)\n\
     gates: disabled %s, enabled %s\n"
    (List.length codes) t_off1 t_off2 t_off3 (noise *. 100.) t_on
    ((ratio -. 1.0) *. 100.)
    (budget *. 100.) events dropped identical micro_ns micro_words
    (if disabled_ok then "ok" else "FAIL")
    (if enabled_ok then "ok" else "FAIL");
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\
         \"wall_seconds_disabled\":%.4f,\"wall_seconds_disabled2\":%.4f,\
         \"wall_seconds_disabled3\":%.4f,\
         \"wall_seconds_enabled\":%.4f,\"wall_seconds_enabled2\":%.4f,\
         \"noise_fraction\":%.4f,\"overhead_fraction\":%.4f,\
         \"overhead_budget_fraction\":%.4f,\
         \"events\":%d,\"events_dropped\":%d,\
         \"disabled_ns_per_op\":%.2f,\"disabled_minor_words_per_op\":%.5f,\
         \"output_identical\":%b,\"disabled_gate\":%b,\"enabled_gate\":%b}"
        (List.length codes) t_off1 t_off2 t_off3 t_on1 t_on2 noise
        (ratio -. 1.0) budget
        events dropped micro_ns micro_words identical disabled_ok enabled_ok
    in
    Out_channel.with_open_text "BENCH_trace.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_trace.json\n"
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Metrics overhead: the registry must be free when off, cheap when on *)
(* ---------------------------------------------------------------- *)

module Mx = Sigrec_metrics.Metrics

(* Five gates, emitted to BENCH_obs.json and enforced in --smoke:

   - disabled: a metrics probe at a hot call site (one atomic load and
     a branch) costs a few ns and allocates nothing — 10M-op micro
     measurement, same shape as the trace probe gate;
   - enabled observe: the full shard update (bucket scan + three
     stores) allocates nothing — the hot path must survive a
     chain-scale census without feeding the GC;
   - enabled end-to-end: metrics collection (span observer feeding the
     per-phase histograms) slows the batch by less than the
     noise-widened 10% budget, and the rendered recovery output stays
     byte-identical;
   - shard merge: observations spread over pool domains snapshot to
     exactly the bucket counts of a sequential reference — the merge
     is lossless, not just approximately right;
   - exposition golden: a fixed registry renders to a byte-stable
     OpenMetrics document.

   The section also records per-phase duration p50/p99 over the corpus
   (through the public quantile estimator) so BENCH_obs.json doubles as
   the committed latency profile. *)
let metrics_overhead ?(emit = true) ?(n = 48) () =
  section "Metrics overhead: registry and span observer vs. metrics off";
  let samples = Solc.Corpus.dataset3 ~seed:(seed + 13) ~n in
  let codes = List.map (fun s -> s.Solc.Corpus.code) samples in
  let render reports =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Sigrec.Engine.pp_report) reports)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run () = Sigrec.Engine.recover_all (engine_with ()) codes in
  ignore (run ());
  Mx.disable ();
  let out_off, t_off1 = wall run in
  let _, t_off2 = wall run in
  let _, t_off3 = wall run in
  (* warm the enabled path untimed (first observe per domain builds the
     shard and the span-histogram memo), then zero the shards so the
     quantiles below describe only the timed runs *)
  Mx.enable ();
  ignore (run ());
  Mx.reset ();
  let out_on, t_on1 = wall run in
  let _, t_on2 = wall run in
  let identical = render out_off = render out_on in
  let t_off = Stdlib.min t_off1 (Stdlib.min t_off2 t_off3) in
  let t_on = Stdlib.min t_on1 t_on2 in
  let noise =
    (Stdlib.max t_off1 (Stdlib.max t_off2 t_off3) -. t_off)
    /. Stdlib.max 1e-9 t_off
  in
  let ratio = t_on /. Stdlib.max 1e-9 t_off in
  let budget = Stdlib.max 0.10 ((3.0 *. noise) +. 0.02) in
  let enabled_ok = ratio -. 1.0 < budget in
  (* per-phase latency profile from the timed enabled runs *)
  let phases =
    List.filter_map
      (fun (name, labels, _scale, snap) ->
        if name = "sigrec_phase_duration_seconds" && snap.Mx.count > 0 then
          Some
            ( String.concat "/" (List.map snd labels),
              snap.Mx.count,
              Mx.quantile snap 0.5,
              Mx.quantile snap 0.99 )
        else None)
      (Mx.histograms ())
  in
  (* micro gates against a private registry so the probes don't pollute
     the default surface *)
  let reg = Mx.create_registry () in
  let mh = Mx.histogram ~registry:reg "bench_probe_ns" in
  Mx.disable ();
  let ops = 10_000_000 in
  let m0 = Gc.minor_words () in
  let mt0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    if Mx.enabled () then Mx.observe mh i
  done;
  let micro_ns = (Unix.gettimeofday () -. mt0) *. 1e9 /. float_of_int ops in
  let micro_words = (Gc.minor_words () -. m0) /. float_of_int ops in
  let disabled_ok = micro_ns < 50.0 && micro_words < 0.01 in
  let o0 = Gc.minor_words () in
  let ot0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    Mx.observe mh i
  done;
  let observe_ns = (Unix.gettimeofday () -. ot0) *. 1e9 /. float_of_int ops in
  let observe_words = (Gc.minor_words () -. o0) /. float_of_int ops in
  let observe_ok = observe_words < 0.01 in
  (* shard-merge oracle: the same seeded observations through pool
     domains and through plain sequential code must agree bucket for
     bucket *)
  let oracle_n = 100_000 in
  let value st =
    (* LCG (java.util.Random multiplier) over the histogram's range *)
    st := (!st * 25214903917) + 11;
    !st land max_int mod 100_000_000
  in
  let bounds = Mx.default_latency_buckets in
  let expect_buckets = Array.make (Array.length bounds + 1) 0 in
  let expect_sum = ref 0 in
  let st = ref (seed + 17) in
  for _ = 1 to oracle_n do
    let v = value st in
    expect_sum := !expect_sum + v;
    let rec idx i =
      if i < Array.length bounds && v > bounds.(i) then idx (i + 1) else i
    in
    expect_buckets.(idx 0) <- expect_buckets.(idx 0) + 1
  done;
  let oh = Mx.histogram ~registry:reg "bench_oracle" in
  let shards = 4 in
  Sigrec.Pool.ensure (shards - 1);
  (* pre-split the value stream so each task is deterministic whatever
     domain runs it *)
  let chunks =
    let st = ref (seed + 17) in
    List.init shards (fun _ ->
        Array.init (oracle_n / shards) (fun _ -> value st))
  in
  let batch =
    Sigrec.Pool.submit
      (List.map
         (fun chunk () -> Array.iter (fun v -> Mx.observe oh v) chunk)
         chunks)
  in
  Sigrec.Pool.await batch;
  let snap = Mx.snapshot oh in
  let merge_ok =
    snap.Mx.buckets = expect_buckets
    && snap.Mx.sum = !expect_sum
    && snap.Mx.count = shards * (oracle_n / shards)
  in
  (* exposition golden: byte-stable rendering of a fixed registry *)
  let greg = Mx.create_registry () in
  let gc = Mx.counter ~registry:greg ~help:"test counter" "golden_requests" in
  Mx.add gc 3;
  let gg =
    Mx.gauge ~registry:greg ~help:"test gauge"
      ~labels:[ ("k", "v\"w") ]
      "golden_temp"
  in
  Mx.set_gauge gg 1.5;
  let gh =
    Mx.histogram ~registry:greg ~buckets:[| 10; 100 |] ~scale:1.0
      "golden_sizes"
  in
  Mx.observe gh 5;
  Mx.observe gh 50;
  Mx.observe gh 500;
  let golden = Mx.expose ~registry:greg () in
  let expected_golden =
    "# HELP golden_requests test counter\n\
     # TYPE golden_requests counter\n\
     golden_requests_total 3\n\
     # HELP golden_temp test gauge\n\
     # TYPE golden_temp gauge\n\
     golden_temp{k=\"v\\\"w\"} 1.5\n\
     # TYPE golden_sizes histogram\n\
     golden_sizes_bucket{le=\"10\"} 1\n\
     golden_sizes_bucket{le=\"100\"} 2\n\
     golden_sizes_bucket{le=\"+Inf\"} 3\n\
     golden_sizes_sum 555\n\
     golden_sizes_count 3\n\
     # EOF\n"
  in
  let golden_ok = golden = expected_golden in
  Mx.disable ();
  Mx.reset ();
  let ok = identical && enabled_ok && disabled_ok && observe_ok && merge_ok
           && golden_ok
  in
  Printf.printf
    "recover_all over %d contracts (jobs=1):\n\
    \  metrics off: %.3f s / %.3f s / %.3f s  (run-to-run noise %.1f%%)\n\
    \  metrics on:  %.3f s  (%+.1f%% vs off, budget %.1f%%)\n\
    \  rendered output byte-identical on/off: %b\n\
     disabled probe: %.2f ns/op, %.5f minor words/op (gate: <50 ns, no \
     allocation)\n\
     enabled observe: %.2f ns/op, %.5f minor words/op (gate: no allocation)\n\
     shard merge (%d pool domains, %d obs): %s\n\
     exposition golden: %s\n"
    (List.length codes) t_off1 t_off2 t_off3 (noise *. 100.) t_on
    ((ratio -. 1.0) *. 100.)
    (budget *. 100.) identical micro_ns micro_words observe_ns observe_words
    shards
    (shards * (oracle_n / shards))
    (if merge_ok then "exact" else "MISMATCH")
    (if golden_ok then "stable" else "DRIFTED");
  List.iter
    (fun (phase, count, p50, p99) ->
      Printf.printf "  phase %-24s %6d spans  p50 %8.1f us  p99 %8.1f us\n"
        phase count (p50 *. 1e6) (p99 *. 1e6))
    phases;
  Printf.printf "gates: disabled %s, observe %s, enabled %s, merge %s, \
                 golden %s\n"
    (if disabled_ok then "ok" else "FAIL")
    (if observe_ok then "ok" else "FAIL")
    (if enabled_ok then "ok" else "FAIL")
    (if merge_ok then "ok" else "FAIL")
    (if golden_ok then "ok" else "FAIL");
  if emit then begin
    let phases_json =
      String.concat ","
        (List.map
           (fun (phase, count, p50, p99) ->
             Printf.sprintf
               "{\"phase\":\"%s\",\"spans\":%d,\"p50_seconds\":%.9f,\
                \"p99_seconds\":%.9f}"
               phase count p50 p99)
           phases)
    in
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\
         \"wall_seconds_disabled\":%.4f,\"wall_seconds_disabled2\":%.4f,\
         \"wall_seconds_disabled3\":%.4f,\
         \"wall_seconds_enabled\":%.4f,\"wall_seconds_enabled2\":%.4f,\
         \"noise_fraction\":%.4f,\"overhead_fraction\":%.4f,\
         \"overhead_budget_fraction\":%.4f,\
         \"disabled_ns_per_op\":%.2f,\"disabled_minor_words_per_op\":%.5f,\
         \"observe_ns_per_op\":%.2f,\"observe_minor_words_per_op\":%.5f,\
         \"shard_merge_exact\":%b,\"exposition_golden_stable\":%b,\
         \"output_identical\":%b,\
         \"disabled_gate\":%b,\"observe_gate\":%b,\"enabled_gate\":%b,\
         \"phase_latency\":[%s]}"
        (List.length codes) t_off1 t_off2 t_off3 t_on1 t_on2 noise
        (ratio -. 1.0) budget micro_ns micro_words observe_ns observe_words
        merge_ok golden_ok identical disabled_ok observe_ok enabled_ok
        phases_json
    in
    Out_channel.with_open_text "BENCH_obs.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_obs.json\n"
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Resident service: pooled multicore scaling and warm cache         *)
(* ---------------------------------------------------------------- *)

(* Four gates, emitted to BENCH_serve.json and enforced in --smoke:

   - parallel output stays byte-identical to sequential (drift);
   - jobs=2 over the corpus is at least as fast as sequential (the
     budget is 3x the measured sequential run-to-run noise plus 2%,
     floored at 10%, the same noise-aware shape as the trace gate).
     The engine clamps worker domains to the hardware count, so on a
     one-core machine this measures graceful degradation (jobs=2 IS
     the sequential engine — before the clamp, oversubscribed domains
     timesharing one core were ~1.7x slower than jobs=1 because every
     minor GC must rendezvous a descheduled domain), and on a
     multicore machine it measures real fan-out;
   - a pooled submit/await round-trip is cheaper than a raw
     Domain.spawn/join round-trip — the machine-independent measure of
     what the persistent pool saves a resident daemon per batch;
   - a resident serve session answers a repeated batch request from
     the cross-request report cache (hits recorded in Stats).

   [big] > 0 additionally measures jobs=2 scaling on a [big]-contract
   corpus (the full bench uses 1000); when the hardware has >= 2
   domains the win must be real, not just break-even, otherwise the
   clamp must hold the loss within the noise budget. *)
let serve_scaling ?(emit = true) ?(n = 180) ?(big = 0) () =
  section "Resident service: pooled multicore scaling and warm cache";
  let corpus n off =
    List.map
      (fun s -> s.Solc.Corpus.code)
      (Solc.Corpus.dataset3 ~seed:(seed + 11 + off) ~n)
  in
  let codes = corpus n 0 in
  let render reports =
    String.concat "\n"
      (List.map
         (fun r ->
           Format.asprintf "%a" Sigrec.Engine.pp_report
             { r with Sigrec.Engine.from_cache = false })
         reports)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let hw = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  (* deliberately request more jobs than the hardware has: the engine
     clamps, and the gate below checks the clamp holds the line *)
  let jobs_n = Stdlib.max 2 hw in
  (* warm the pool (domain spawn + interner snapshot adoption) untimed:
     a resident daemon pays this once at startup, so the measurement
     excludes it the same way the trace bench excludes ring setup *)
  ignore (Sigrec.Engine.recover_all (engine_with ~jobs:jobs_n ()) codes);
  let seq, t_seq1 =
    wall (fun () -> Sigrec.Engine.recover_all (engine_with ()) codes)
  in
  let _, t_seq2 =
    wall (fun () -> Sigrec.Engine.recover_all (engine_with ()) codes)
  in
  let t_seq = Stdlib.min t_seq1 t_seq2 in
  let noise = Float.abs (t_seq1 -. t_seq2) /. Stdlib.max 1e-9 t_seq in
  let par2, t_par2 =
    wall (fun () -> Sigrec.Engine.recover_all (engine_with ~jobs:2 ()) codes)
  in
  let parn, t_parn =
    wall (fun () ->
        Sigrec.Engine.recover_all (engine_with ~jobs:jobs_n ()) codes)
  in
  let identical = render seq = render par2 && render seq = render parn in
  let budget = Stdlib.max 0.10 ((3.0 *. noise) +. 0.02) in
  let pool_gate = t_par2 <= t_seq *. (1.0 +. budget) in
  Printf.printf
    "recover_all over %d contracts (%d hardware domains, %d pooled \
     workers):\n\
    \  sequential (jobs=1): %6.3f s / %6.3f s  (noise %.1f%%)\n\
    \  parallel   (jobs=2): %6.3f s  speedup %.2fx (gate: >= %.2fx)\n\
    \  parallel   (jobs=%d): %6.3f s  speedup %.2fx\n\
    \  parallel output byte-identical to sequential: %b\n"
    n hw
    (Sigrec.Pool.workers ())
    t_seq1 t_seq2 (noise *. 100.) t_par2
    (t_seq /. Stdlib.max 1e-9 t_par2)
    (1.0 /. (1.0 +. budget))
    jobs_n t_parn
    (t_seq /. Stdlib.max 1e-9 t_parn)
    identical;
  (* what the persistent pool saves per batch, independent of core
     count: a submit/await round-trip through an already-spawned
     worker vs paying Domain.spawn/join every batch (the old
     recover_all fan-out). Round-trips, not throughput: the daemon
     pays one hand-off per batch. *)
  Sigrec.Pool.ensure 1;
  let iters = 200 in
  let (), t_pool_rt =
    wall (fun () ->
        for _ = 1 to iters do
          Sigrec.Pool.await (Sigrec.Pool.submit [ (fun () -> ()) ])
        done)
  in
  let (), t_spawn_rt =
    wall (fun () ->
        for _ = 1 to iters do
          Domain.join (Domain.spawn (fun () -> ()))
        done)
  in
  let pool_us = t_pool_rt /. float_of_int iters *. 1e6 in
  let spawn_us = t_spawn_rt /. float_of_int iters *. 1e6 in
  let handoff_gate = t_pool_rt < t_spawn_rt in
  Printf.printf
    "pooled hand-off: %.1f us/round-trip vs Domain.spawn %.1f \
     us/round-trip (%.1fx cheaper; gate: cheaper)\n"
    pool_us spawn_us
    (spawn_us /. Stdlib.max 1e-3 pool_us);
  (* optional large corpus: with real cores break-even is not enough,
     the fan-out must actually win; on a one-core machine the clamp
     must hold jobs=2 within the noise budget of jobs=1 *)
  let big_seq, big_par2, big_gate =
    if big <= 0 then (0., 0., true)
    else begin
      let bcodes = corpus big 1 in
      let _, tbs =
        wall (fun () -> Sigrec.Engine.recover_all (engine_with ()) bcodes)
      in
      let _, tbp =
        wall (fun () ->
            Sigrec.Engine.recover_all (engine_with ~jobs:2 ()) bcodes)
      in
      let gate =
        if hw >= 2 then tbp < tbs else tbp <= tbs *. (1.0 +. budget)
      in
      Printf.printf
        "large corpus (%d contracts): jobs=1 %.3f s, jobs=2 %.3f s \
         (speedup %.2fx, gate: %s)\n"
        big tbs tbp
        (tbs /. Stdlib.max 1e-9 tbp)
        (if hw >= 2 then "faster" else "break-even, one-core hardware");
      (tbs, tbp, gate)
    end
  in
  (* resident serve session: the same batch request twice; the second
     must be answered from the cross-request report cache *)
  let t =
    Sigrec.Serve.create
      Sigrec.Engine.Config.(
        default |> with_jobs jobs_n |> with_cache_capacity 4096)
  in
  let request =
    Printf.sprintf {|{"id":1,"op":"recover","codes":[%s]}|}
      (String.concat ","
         (List.map (fun c -> "\"" ^ Evm.Hex.encode c ^ "\"") codes))
  in
  let r1, t_req1 = wall (fun () -> Sigrec.Serve.handle_line t request) in
  let r2, t_req2 = wall (fun () -> Sigrec.Serve.handle_line t request) in
  let stats = Sigrec.Engine.stats (Sigrec.Serve.engine t) in
  let hits = Sigrec.Stats.cache_hits stats in
  let distinct = Sigrec.Stats.cache_misses stats in
  let serve_gate =
    hits >= n
    && (not r1.Sigrec.Serve.shutdown)
    && not r2.Sigrec.Serve.shutdown
  in
  Printf.printf
    "serve session: first request %.3f s (%d analyses), repeat %.3f s \
     (%d cross-request cache hits; gate: >= %d)\n\
     gates: drift %s, pool %s, serve %s%s\n"
    t_req1 distinct t_req2 hits n
    (if identical then "ok" else "FAIL")
    (if pool_gate then "ok" else "FAIL")
    (if serve_gate then "ok" else "FAIL")
    ((if handoff_gate then ", hand-off ok" else ", hand-off FAIL")
    ^
    if big > 0 then
      if big_gate then ", large-corpus ok" else ", large-corpus FAIL"
    else "");
  let ok = identical && pool_gate && handoff_gate && serve_gate && big_gate in
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\"hardware_domains\":%d,\
         \"wall_seconds_jobs1\":%.4f,\"wall_seconds_jobs1_2\":%.4f,\
         \"wall_seconds_jobs2\":%.4f,\
         \"jobs_n\":%d,\"wall_seconds_jobsn\":%.4f,\
         \"speedup_jobs2\":%.3f,\"speedup_jobsn\":%.3f,\
         \"noise_fraction\":%.4f,\"budget_fraction\":%.4f,\
         \"parallel_identical\":%b,\"pool_workers\":%d,\
         \"pool_roundtrip_us\":%.1f,\"spawn_roundtrip_us\":%.1f,\
         \"big_corpus_contracts\":%d,\
         \"big_wall_seconds_jobs1\":%.4f,\"big_wall_seconds_jobs2\":%.4f,\
         \"serve_first_request_seconds\":%.4f,\
         \"serve_repeat_request_seconds\":%.4f,\
         \"serve_cross_request_cache_hits\":%d,\
         \"drift_gate\":%b,\"pool_gate\":%b,\"handoff_gate\":%b,\
         \"serve_gate\":%b,\"big_gate\":%b}"
        n hw t_seq1 t_seq2 t_par2 jobs_n t_parn
        (t_seq /. Stdlib.max 1e-9 t_par2)
        (t_seq /. Stdlib.max 1e-9 t_parn)
        noise budget identical (Sigrec.Pool.workers ()) pool_us spawn_us big
        big_seq big_par2 t_req1 t_req2 hits identical pool_gate handoff_gate
        serve_gate big_gate
    in
    Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_serve.json\n"
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Storage-layout pass: the second recovery product                  *)
(* ---------------------------------------------------------------- *)

(* Three gates, emitted to BENCH_layout.json and enforced in --smoke:

   - precision: the recovered layout matches the generator's declared
     storage exactly — slots, kinds, packed lane boundaries — on every
     contract of the seeded layout corpus, with zero unresolved
     storage ops;
   - drift: the batch fan-out output is byte-identical across jobs=1
     and jobs=2;
   - cache: a repeated batch is answered from the layout LRU without
     re-analysis.

   Throughput (layouts/sec) is reported for tracking but not gated:
   absolute timing is machine-dependent. *)
let layout_pass ?(emit = true) ?(n = 150) () =
  section "Storage-layout pass: precision and batch fan-out";
  let samples = Solc.Corpus.layout_set ~seed:(seed + 17) ~n in
  let codes = List.map (fun s -> s.Solc.Corpus.lcode) samples in
  let module Layout = Sigrec_layout.Layout in
  let expected_decl (v : Solc.Lang.svar) =
    match v.Solc.Lang.kind with
    | Solc.Lang.Svalue [ 256 ] -> Layout.Word
    | Solc.Lang.Svalue widths ->
      Layout.Packed
        (List.map
           (fun (bit_offset, bit_width) -> { Layout.bit_offset; bit_width })
           (Option.get (Solc.Storage.truth_members widths)))
    | Solc.Lang.Smapping -> Layout.Mapping
    | Solc.Lang.Sarray -> Layout.Dyn_array
  in
  let shape_string entries =
    String.concat "; "
      (List.map
         (fun (slot, decl) ->
           Printf.sprintf "0x%s:%s"
             (Evm.U256.to_hex slot)
             (Layout.decl_to_string decl))
         entries)
  in
  let render reports =
    String.concat "\n"
      (List.map
         (fun (r : Sigrec.Engine.layout_report) ->
           Format.asprintf "0x%s %a" r.Sigrec.Engine.layout_code_hash
             Layout.pp r.Sigrec.Engine.layout)
         reports)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq =
    wall (fun () -> Sigrec.Engine.layout_all (engine_with ()) codes)
  in
  let par, t_par =
    wall (fun () -> Sigrec.Engine.layout_all (engine_with ~jobs:2 ()) codes)
  in
  let drift_gate = render seq = render par in
  (* precision against the declared ground truth *)
  let declared = ref 0 and exact = ref 0 and unresolved = ref 0 in
  let total_slots = ref 0 in
  List.iter2
    (fun (s : Solc.Corpus.layout_sample)
         (r : Sigrec.Engine.layout_report) ->
      let want =
        List.sort
          (fun (a, _) (b, _) -> Evm.U256.compare a b)
          (List.map
             (fun (v : Solc.Lang.svar) ->
               (Evm.U256.of_int v.Solc.Lang.slot, expected_decl v))
             s.Solc.Corpus.svars)
      in
      let got =
        List.map
          (fun (e : Layout.entry) -> (e.Layout.slot, e.Layout.decl))
          r.Sigrec.Engine.layout.Layout.entries
      in
      incr declared;
      total_slots := !total_slots + List.length want;
      unresolved :=
        !unresolved + r.Sigrec.Engine.layout.Layout.unknown_ops;
      if
        shape_string got = shape_string want
        && r.Sigrec.Engine.layout.Layout.complete
      then incr exact)
    samples seq;
  let precision_gate = !exact = !declared && !unresolved = 0 in
  (* a repeated batch must be answered from the layout LRU *)
  let engine = engine_with ~jobs:2 () in
  let _ = Sigrec.Engine.layout_all engine codes in
  let warm = Sigrec.Engine.layout_all engine codes in
  let cache_gate =
    List.for_all (fun r -> r.Sigrec.Engine.layout_from_cache) warm
    && render warm = render seq
  in
  let per_sec = float_of_int n /. Stdlib.max 1e-9 t_seq in
  Printf.printf
    "layout recovery over %d contracts (%d declared slots):\n\
    \  exact layouts: %d/%d  unresolved storage ops: %d\n\
    \  sequential: %.3f s (%.0f layouts/s)   jobs=2: %.3f s\n\
    \  parallel output byte-identical: %b   warm batch cached: %b\n\
     gates: precision %s, drift %s, cache %s\n"
    n !total_slots !exact !declared !unresolved t_seq per_sec t_par
    drift_gate cache_gate
    (if precision_gate then "ok" else "FAIL")
    (if drift_gate then "ok" else "FAIL")
    (if cache_gate then "ok" else "FAIL");
  let ok = precision_gate && drift_gate && cache_gate in
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\"declared_slots\":%d,\
         \"exact_layouts\":%d,\"unresolved_ops\":%d,\
         \"wall_seconds_jobs1\":%.4f,\"wall_seconds_jobs2\":%.4f,\
         \"layouts_per_second\":%.1f,\
         \"precision_gate\":%b,\"drift_gate\":%b,\"cache_gate\":%b}"
        n !total_slots !exact !unresolved t_seq t_par per_sec
        precision_gate drift_gate cache_gate
    in
    Out_channel.with_open_text "BENCH_layout.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_layout.json\n"
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Token-standard classification: ground-truth accuracy harness      *)
(* ---------------------------------------------------------------- *)

(* Three gates, emitted to BENCH_classify.json and enforced in
   --smoke — ratios and booleans only, never absolute timing:

   - accuracy: over the labeled token corpus, precision on exact
     verdicts must be 1.0 — every contract classified as an exact
     standard really carries the full required member set, so the
     planted negatives (dropped members, selector collisions,
     non-tokens) never classify exact — and recall over the exact
     positives must reach 0.95;
   - overhead: scoring is a thin layer over recovery. classify_all on
     a warm engine repeats the hash-and-lookup pass recover_all runs
     on the same warm engine, so the difference of the two isolates
     what classification itself adds; that must stay under 10% of the
     cold recovery wall-clock, widened to the measured cold-run noise
     when the machine is too jittery to resolve 10% (same convention
     as the serve-scaling budget);
   - serve: a resident session answers a repeated classify request
     from the cross-request verdict LRU (classify_cache_hits > 0). *)
let classify_pass ?(emit = true) ?(n = 150) () =
  section "Token-standard classification: ground-truth accuracy";
  let samples = Solc.Corpus.token_set ~seed:(seed + 19) ~n in
  let codes = List.map (fun s -> s.Solc.Corpus.tcode) samples in
  let module C = Sigrec_classify.Classify in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let engine = engine_with () in
  let _, t_rec = wall (fun () -> Sigrec.Engine.recover_all engine codes) in
  let _, t_rec_b =
    wall (fun () -> Sigrec.Engine.recover_all (engine_with ()) codes)
  in
  let noise = abs_float (t_rec -. t_rec_b) /. Stdlib.max 1e-9 t_rec in
  let _, t_warm = wall (fun () -> Sigrec.Engine.recover_all engine codes) in
  let verdicts, t_cls =
    wall (fun () -> Sigrec.Engine.classify_all engine codes)
  in
  let t_scoring = Stdlib.max 0.0 (t_cls -. t_warm) in
  let overhead = t_scoring /. Stdlib.max 1e-9 (Stdlib.min t_rec t_rec_b) in
  let budget = Stdlib.max 0.10 noise in
  let overhead_gate = overhead < budget in
  (* accuracy against the generator's ground truth *)
  let exact_positives = ref 0 and exact_hits = ref 0 in
  let exact_claims = ref 0 and exact_correct = ref 0 in
  let partial_hits = ref 0 in
  List.iter2
    (fun (s : Solc.Corpus.token_sample) (r : Sigrec.Engine.classify_report) ->
      let v = r.Sigrec.Engine.verdict in
      let is_exact =
        match v.C.best with Some b -> b.C.level = C.Exact | None -> false
      in
      let lbl = C.label v in
      if s.Solc.Corpus.texact then incr exact_positives;
      if is_exact then begin
        incr exact_claims;
        if s.Solc.Corpus.texact && lbl = s.Solc.Corpus.tlabel then begin
          incr exact_correct;
          incr exact_hits
        end
      end
      else if
        s.Solc.Corpus.tlabel <> "none"
        && lbl = s.Solc.Corpus.tlabel ^ " (partial)"
      then incr partial_hits)
    samples verdicts;
  let precision =
    if !exact_claims = 0 then 1.0
    else float_of_int !exact_correct /. float_of_int !exact_claims
  in
  let recall =
    if !exact_positives = 0 then 1.0
    else float_of_int !exact_hits /. float_of_int !exact_positives
  in
  let accuracy_gate = precision = 1.0 && recall >= 0.95 in
  (* a resident session must answer a repeated classify request from
     the verdict LRU *)
  let t =
    Sigrec.Serve.create
      Sigrec.Engine.Config.(default |> with_cache_capacity 4096)
  in
  let request =
    Printf.sprintf {|{"id":1,"op":"classify","codes":[%s]}|}
      (String.concat ","
         (List.map
            (fun c -> "\"" ^ Evm.Hex.encode c ^ "\"")
            (List.filteri (fun i _ -> i < 12) codes)))
  in
  let r1 = Sigrec.Serve.handle_line t request in
  let r2 = Sigrec.Serve.handle_line t request in
  let serve_hits =
    Sigrec.Stats.classify_cache_hits
      (Sigrec.Engine.stats (Sigrec.Serve.engine t))
  in
  let serve_gate =
    serve_hits > 0
    && (not r1.Sigrec.Serve.shutdown)
    && not r2.Sigrec.Serve.shutdown
  in
  let per_sec = float_of_int n /. Stdlib.max 1e-9 (t_rec +. t_scoring) in
  Printf.printf
    "classification over %d labeled contracts (%d exact positives):\n\
    \  precision %.3f (%d/%d exact claims correct)  recall %.3f \
     (%d/%d)  partials caught: %d\n\
    \  recovery %.3f s, scoring +%.3f s (%.1f%% overhead, budget \
     %.0f%%, %.0f contracts/s end to end)\n\
    \  serve verdict-LRU hits on repeat request: %d\n\
     gates: accuracy %s, overhead %s, serve %s\n"
    n !exact_positives precision !exact_correct !exact_claims recall
    !exact_hits !exact_positives !partial_hits t_rec t_scoring
    (overhead *. 100.0) (budget *. 100.0) per_sec serve_hits
    (if accuracy_gate then "ok" else "FAIL")
    (if overhead_gate then "ok" else "FAIL")
    (if serve_gate then "ok" else "FAIL");
  let ok = accuracy_gate && overhead_gate && serve_gate in
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\"exact_positives\":%d,\
         \"exact_claims\":%d,\"exact_correct\":%d,\
         \"precision\":%.4f,\"recall\":%.4f,\"partials_caught\":%d,\
         \"wall_seconds_recovery\":%.4f,\"wall_seconds_scoring\":%.4f,\
         \"scoring_overhead_fraction\":%.4f,\"budget_fraction\":%.4f,\
         \"contracts_per_second\":%.1f,\
         \"serve_verdict_cache_hits\":%d,\
         \"accuracy_gate\":%b,\"overhead_gate\":%b,\"serve_gate\":%b}"
        n !exact_positives !exact_claims !exact_correct precision recall
        !partial_hits t_rec t_scoring overhead budget per_sec serve_hits
        accuracy_gate overhead_gate serve_gate
    in
    Out_channel.with_open_text "BENCH_classify.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_classify.json\n"
  end;
  ok

(* ---------------------------------------------------------------- *)
(* Chain-scale streaming (10^5-contract corpora)                     *)
(* ---------------------------------------------------------------- *)

(* Four gates, emitted to BENCH_scale.json and enforced in --smoke —
   ratios and booleans only, never absolute timing:

   - identity: recover_stream emits the same reports as recover_all
     over the same codes (renders compared with from_cache normalized
     away — which batch first analyzes a bytecode depends on batch
     boundaries);
   - memory: streaming a generated corpus (default ~90% byte-identical
     duplicates, the mainnet profile) must cost less peak heap than the
     non-streaming path, which materializes every input line before
     recovering — the high-water growth of the whole cold streamed run
     must stay below what merely materializing the same corpus adds on
     top of it (the gap widens with n: the streamed side is bounded by
     distinct contracts, the materialized side grows with the stream);
   - dedup: the duplicated stream must run at a higher contracts/sec
     than a duplicate-free stream of the same pipeline (the cache is
     doing its job);
   - allocation: the jobs=1 engine's minor words per contract over the
     symex_core corpus must stay at least 25% below the pre-diet
     baseline (54,613 words/contract, committed in BENCH_perf.json
     before the scratch-buffer work). *)

let alloc_baseline_words_per_contract = 54_613.0

let scale ?(emit = true) ?(n = 10_000) ?(alloc_n = 120) () =
  section "Chain-scale streaming recovery";
  let dup_rate = 0.9 in
  let domains = Domain.recommended_domain_count () in
  let render_normalized reports =
    String.concat "\n"
      (List.map
         (fun r ->
           Format.asprintf "%a" Sigrec.Engine.pp_report
             { r with Sigrec.Engine.from_cache = false })
         reports)
  in
  (* gate 1: stream/batch identity on a prefix-sized corpus *)
  let k = Stdlib.min n 400 in
  let ident_codes = ref [] in
  Solc.Corpus.stream ~seed:(seed + 13) ~n:k ~dup_rate (fun code ->
      ident_codes := code :: !ident_codes);
  let ident_codes = List.rev !ident_codes in
  let batch_reports = Sigrec.Engine.recover_all (engine_with ()) ident_codes in
  let stream_reports = ref [] in
  let fed =
    Sigrec.Engine.recover_stream (engine_with ()) ~batch:64
      (List.to_seq ident_codes) ~emit:(fun r ->
        stream_reports := r :: !stream_reports)
  in
  let identity_gate =
    fed = k
    && render_normalized batch_reports
       = render_normalized (List.rev !stream_reports)
  in
  Printf.printf
    "stream vs batch over %d contracts: %d emitted, identical: %b\n" k fed
    identity_gate;
  (* gates 2+3: stream the full corpus; generation happens inside the
     feed loop (as it would from a pipe), so both the duplicated and
     the duplicate-free run pay it identically *)
  let top_heap_bytes () =
    (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8)
  in
  let run_streamed ~engine ~dup_rate ~n =
    let bytes_seen = ref 0 in
    let emitted = ref 0 in
    let h0 = top_heap_bytes () in
    let t0 = Unix.gettimeofday () in
    let session =
      Sigrec.Engine.Stream.start engine ~emit:(fun _ -> incr emitted)
    in
    Solc.Corpus.stream ~seed:(seed + 13) ~n ~dup_rate (fun code ->
        bytes_seen := !bytes_seen + String.length code;
        Sigrec.Engine.Stream.feed session code);
    let contracts = Sigrec.Engine.Stream.finish session in
    let t = Unix.gettimeofday () -. t0 in
    let heap_growth_bytes = top_heap_bytes () - h0 in
    let stats = Sigrec.Engine.stats engine in
    ( contracts,
      float_of_int contracts /. Stdlib.max 1e-9 t,
      !bytes_seen,
      heap_growth_bytes,
      Sigrec.Stats.cache_misses stats,
      Sigrec.Stats.stream_dedup_hits stats )
  in
  let stream_engine = engine_with ~jobs:domains () in
  let contracts, rate_dedup, corpus_bytes, heap_growth, distinct, dedup_hits
      =
    run_streamed ~engine:stream_engine ~dup_rate ~n
  in
  (* memory baseline: what the non-streaming path pays before analysis
     even starts — every line of the same corpus materialized as its
     own string (duplicates included, exactly as a file read does) plus
     a full-corpus report list. The engine is the warm one from the
     streamed run, so the delta isolates materialization: it must
     exceed what the entire cold streamed run added to the high-water
     mark. *)
  let h0 = top_heap_bytes () in
  let materialized = ref [] in
  Solc.Corpus.stream ~seed:(seed + 13) ~n ~dup_rate (fun code ->
      materialized := String.sub code 0 (String.length code) :: !materialized);
  let batch_reports =
    Sigrec.Engine.recover_all stream_engine (List.rev !materialized)
  in
  let batch_growth = top_heap_bytes () - h0 in
  let batch_count = List.length batch_reports in
  materialized := [];
  let memory_gate = batch_count = n && heap_growth < batch_growth in
  let n_cold = Stdlib.max 25 (n / 20) in
  let _, rate_cold, _, _, _, _ =
    run_streamed ~engine:(engine_with ~jobs:domains ()) ~dup_rate:0.0
      ~n:n_cold
  in
  let dedup_gate = rate_dedup > rate_cold in
  Printf.printf
    "streamed %d contracts (%d distinct analyses, %d dedup hits, %.1f MB \
     corpus):\n\
    \  deduped (%.0f%% duplicates): %.0f contracts/s on %d domains\n\
    \  duplicate-free (%d contracts): %.0f contracts/s\n\
    \  peak-heap growth: streamed %.2f MB vs materialized corpus %.2f MB\n"
    contracts distinct dedup_hits
    (float_of_int corpus_bytes /. 1e6)
    (dup_rate *. 100.0) rate_dedup domains n_cold rate_cold
    (float_of_int heap_growth /. 1e6)
    (float_of_int batch_growth /. 1e6);
  (* gate 4: the allocation diet, measured the same way BENCH_perf.json
     measures it (jobs=1 recover_all, symex_core corpus shape) so the
     number is comparable to the committed pre-diet baseline *)
  let extra = Stdlib.max 4 (alloc_n / 4) in
  let alloc_samples =
    Solc.Corpus.dataset3 ~seed:(seed + 9) ~n:alloc_n
    @ Solc.Corpus.vyper_set ~seed:(seed + 9) ~n:extra
    @ Solc.Corpus.abiv2_set ~seed:(seed + 9) ~n:extra
  in
  let alloc_codes = List.map (fun s -> s.Solc.Corpus.code) alloc_samples in
  (* flush the young generation around the run: the allocated-words
     counter only advances at minor collections, so without the flush
     the delta is quantized to whole minor-heap units — far too coarse
     for a small corpus *)
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  let (_ : Sigrec.Engine.report list) =
    Sigrec.Engine.recover_all (engine_with ()) alloc_codes
  in
  Gc.minor ();
  let g1 = Gc.quick_stat () in
  let minor = g1.Gc.minor_words -. g0.Gc.minor_words in
  let words_per_contract =
    minor /. float_of_int (List.length alloc_codes)
  in
  let reduction = 1.0 -. (words_per_contract /. alloc_baseline_words_per_contract) in
  let alloc_gate =
    words_per_contract <= 0.75 *. alloc_baseline_words_per_contract
  in
  Printf.printf
    "allocation: %.0f minor words/contract (baseline %.0f, %.0f%% \
     reduction)\n\
     gates: identity %s, memory %s, dedup %s, allocation %s\n"
    words_per_contract alloc_baseline_words_per_contract
    (reduction *. 100.0)
    (if identity_gate then "ok" else "FAIL")
    (if memory_gate then "ok" else "FAIL")
    (if dedup_gate then "ok" else "FAIL")
    (if alloc_gate then "ok" else "FAIL");
  let ok = identity_gate && memory_gate && dedup_gate && alloc_gate in
  if emit then begin
    let json =
      Printf.sprintf
        "{\"corpus_contracts\":%d,\"distinct_analyses\":%d,\
         \"dup_rate\":%.2f,\"stream_dedup_hits\":%d,\
         \"hardware_domains\":%d,\
         \"contracts_per_sec_deduped\":%.1f,\
         \"contracts_per_sec_cold\":%.1f,\
         \"corpus_bytes\":%d,\"stream_heap_growth_bytes\":%d,\
         \"materialized_heap_growth_bytes\":%d,\
         \"minor_words_per_contract\":%.0f,\
         \"baseline_minor_words_per_contract\":%.0f,\
         \"minor_words_reduction\":%.3f,\
         \"identity_gate\":%b,\"memory_gate\":%b,\
         \"dedup_gate\":%b,\"allocation_gate\":%b}"
        contracts distinct dup_rate dedup_hits domains rate_dedup rate_cold
        corpus_bytes heap_growth batch_growth words_per_contract
        alloc_baseline_words_per_contract reduction identity_gate
        memory_gate dedup_gate alloc_gate
    in
    Out_channel.with_open_text "BENCH_scale.json" (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote BENCH_scale.json\n"
  end;
  ok

(* --smoke: the drift checks only, on a small corpus, fast enough for
   CI. Exit status 1 when any recovery output drifts (parallel vs
   sequential, pruned vs unpruned, warm vs cold, interned vs structural
   equality classes), when the tracing overhead gates fail, or when the
   resident-service gates fail (pooled jobs=2 slower than sequential,
   or a repeated serve request missing the cache); absolute timing is
   deliberately NOT checked, only ratios. *)
let smoke () =
  let ok = symex_core ~emit:false ~n:16 () in
  let trace_ok = trace_overhead ~emit:true ~n:32 () in
  let serve_ok = serve_scaling ~emit:true ~n:180 () in
  let layout_ok = layout_pass ~emit:true ~n:60 () in
  let classify_ok = classify_pass ~emit:true ~n:60 () in
  let scale_ok = scale ~emit:true ~n:8_000 ~alloc_n:120 () in
  (* last on purpose: the scale section's memory gate reads the
     process-wide top-heap high-water mark, and the serve section's
     timing gates are noise-sensitive — the metrics section's corpus
     runs and 100k-observation oracle must not shift their baselines *)
  let obs_ok = metrics_overhead ~emit:true ~n:32 () in
  if
    ok && trace_ok && obs_ok && serve_ok && layout_ok && classify_ok
    && scale_ok
  then
    Printf.printf
      "\nsmoke: recovery output stable, trace and metrics overhead in \
       budget, resident-service, layout, classification and chain-scale \
       gates hold\n"
  else begin
    if not ok then Printf.printf "\nsmoke: RECOVERY OUTPUT DRIFT DETECTED\n";
    if not trace_ok then
      Printf.printf "\nsmoke: TRACE OVERHEAD GATE FAILED (see BENCH_trace.json)\n";
    if not obs_ok then
      Printf.printf
        "\nsmoke: METRICS OVERHEAD GATE FAILED (see BENCH_obs.json)\n";
    if not serve_ok then
      Printf.printf
        "\nsmoke: RESIDENT SERVICE GATE FAILED (see BENCH_serve.json)\n";
    if not layout_ok then
      Printf.printf
        "\nsmoke: STORAGE-LAYOUT GATE FAILED (see BENCH_layout.json)\n";
    if not classify_ok then
      Printf.printf
        "\nsmoke: CLASSIFICATION GATE FAILED (see BENCH_classify.json)\n";
    if not scale_ok then
      Printf.printf
        "\nsmoke: CHAIN-SCALE STREAMING GATE FAILED (see BENCH_scale.json)\n";
    exit 1
  end

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then smoke ()
  else begin
    let t0 = Sys.time () in
    table1 ();
    table2 ();
    table3 ();
    table4 ();
    table5 ();
    fig15_16 ();
    fig17 ();
    fig18 ();
    fig19 ();
    app_parchecker ();
    app_fuzzer ();
    app_erays ();
    ablation ();
    obfuscation ();
    engine_batch ();
    static_pass ();
    let (_ : bool) = symex_core () in
    let (_ : bool) = trace_overhead () in
    let (_ : bool) = serve_scaling ~big:1000 () in
    let (_ : bool) = layout_pass () in
    let (_ : bool) = classify_pass () in
    let (_ : bool) = scale ~n:100_000 () in
    (* last: must not perturb the serve timing or scale heap gates *)
    let (_ : bool) = metrics_overhead () in
    aggregation ();
    proptest_volume ();
    run_bechamel ();
    Printf.printf "\ntotal bench time: %.1f s\n" (Sys.time () -. t0)
  end
