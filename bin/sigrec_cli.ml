(* The sigrec command-line tool: recover function signatures from EVM
   runtime bytecode (one contract or a batch), check call data against
   them, lift bytecode to readable IR, or stay resident as a recovery
   daemon ([sigrec serve]).

   Subcommands share the same input conventions and one flag-spec table
   (module [Flags]): bytecode is hex (optional 0x prefix) or raw bytes,
   [--format json|text] selects machine- or human-readable output, and
   [--jobs N] / the budget flags configure the recovery engine the same
   way everywhere — they are folded into one [Sigrec.Engine.Config.t]
   per invocation. *)

let read_raw input =
  try
    if input = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_bin input In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "sigrec: %s\n" msg;
    exit 2

let read_bytecode input =
  let raw = read_raw input in
  let trimmed = String.trim raw in
  if Evm.Hex.is_valid trimmed then Evm.Hex.decode trimmed else raw

let with_input_channel input f =
  try
    if input = "-" then f In_channel.stdin
    else In_channel.with_open_bin input f
  with Sys_error msg ->
    Printf.eprintf "sigrec: %s\n" msg;
    exit 2

let warn_malformed input ~line ~reason =
  Printf.eprintf "sigrec: %s:%d: skipping malformed line (%s)\n%!" input
    line reason

(* One hex bytecode per line; blank lines, #-comments, CRLF and 0x
   prefixes tolerated; malformed lines are warned about on stderr (as
   they are found, via the warn callback — never stdout, which may be
   carrying --format json output) and skipped rather than failing the
   whole file. Read incrementally: the raw text is never held whole,
   only the decoded bytecodes are. *)
let read_bytecode_list input =
  let codes, _totals =
    with_input_channel input
      (Sigrec.Input.fold_lines ~warn:(warn_malformed input)
         ~f:(fun acc code -> code :: acc)
         [])
  in
  List.rev codes

(* ---- tracing -------------------------------------------------------- *)

module Trace = Sigrec_trace.Trace
module Texport = Sigrec_trace.Export

(* Run [f] with tracing on and export the collected events afterwards:
   Chrome trace_event JSON by default (chrome://tracing, Perfetto),
   JSONL when the file name ends in [.jsonl]. *)
let with_trace trace_file f =
  match trace_file with
  | None -> f ()
  | Some file ->
    Trace.enable ();
    let finish () =
      Trace.disable ();
      let events = Trace.collect () in
      let rendered =
        if Filename.check_suffix file ".jsonl" then Texport.to_jsonl events
        else Texport.to_chrome events
      in
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc rendered);
      let dropped = Trace.dropped () in
      if dropped > 0 then
        Printf.eprintf
          "sigrec: trace ring wrapped, %d oldest events dropped\n" dropped;
      Printf.eprintf "sigrec: wrote %d trace events to %s\n"
        (List.length events) file
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* ---- shared printing ---------------------------------------------- *)

let print_rule_stats stats =
  Format.printf "@.rule usage:@.";
  List.iter
    (fun (name, n) ->
      if n > 0 then begin
        let doc =
          match Sigrec.Ruledoc.find name with
          | Some d -> d.Sigrec.Ruledoc.concludes
          | None -> ""
        in
        Format.printf "  %-4s %4d  %s@." name n doc
      end)
    (Sigrec.Stats.rule_counts stats);
  Format.printf "functions recovered: %d; paths explored: %d@."
    (Sigrec.Stats.functions_recovered stats)
    (Sigrec.Stats.paths_explored stats);
  let hits = Sigrec.Stats.cache_hits stats
  and misses = Sigrec.Stats.cache_misses stats in
  if hits + misses > 1 then
    Format.printf "cache: %d hits / %d analyses@." hits misses

let print_report_text ~explain (report : Sigrec.Engine.report) =
  if report.Sigrec.Engine.outcomes = [] then
    Printf.printf "no public/external functions found\n"
  else
    List.iter
      (fun outcome ->
        Format.printf "%a@." Sigrec.Engine.pp_outcome outcome;
        if explain then
          match outcome with
          | Sigrec.Engine.Recovered { result = r; _ }
          | Sigrec.Engine.Budget_exhausted { partial = r; _ } ->
            List.iteri
              (fun i (ty, path) ->
                Format.printf "    arg%d %-14s via %s@." (i + 1)
                  (Abi.Abity.to_string ty)
                  (if path = [] then "-" else String.concat " -> " path))
              (List.combine r.Sigrec.Recover.params
                 r.Sigrec.Recover.rule_paths)
          | Sigrec.Engine.Failed _ -> ())
      report.Sigrec.Engine.outcomes

(* ---- subcommand bodies -------------------------------------------- *)

(* With --format json, --stats appends one {"stats":{...}} line after
   the report output: stdout stays line-oriented JSON throughout. *)
let print_stats_json stats =
  print_endline (Printf.sprintf "{\"stats\":%s}" (Sigrec.Stats.to_json stats))

let recover_cmd config input show_stats explain format trace =
  let bytecode = read_bytecode input in
  let engine = Sigrec.Engine.make config in
  let report =
    with_trace trace (fun () -> Sigrec.Engine.recover engine bytecode)
  in
  (match format with
  | `Json -> print_endline (Sigrec.Render.report report)
  | `Text -> print_report_text ~explain report);
  if show_stats then begin
    match format with
    | `Text -> print_rule_stats (Sigrec.Engine.stats engine)
    | `Json -> print_stats_json (Sigrec.Engine.stats engine)
  end;
  match
    List.find_opt
      (function Sigrec.Engine.Failed _ -> true | _ -> false)
      report.Sigrec.Engine.outcomes
  with
  | Some _ -> 1
  | None -> 0

(* Streamed batch: contracts flow from the input channel through the
   engine's streaming session and out as they are recovered — at most
   one internal batch of bytecodes is resident, so a 10^5-contract
   corpus runs in constant memory. Reports still print in input
   order. *)
(* Census heartbeat on stderr — never stdout, which may be carrying
   --format json report lines. *)
let print_progress (p : Sigrec.Engine.Stream.progress) =
  let eta =
    match p.Sigrec.Engine.Stream.eta_ns with
    | Some ns -> Printf.sprintf ", eta %.0fs" (float_of_int ns *. 1e-9)
    | None -> ""
  in
  Printf.eprintf
    "sigrec: progress %d contracts (%d distinct, %.1f%% dedup), %.1f/s, \
     heap %.1f MB%s\n\
     %!"
    p.Sigrec.Engine.Stream.contracts p.Sigrec.Engine.Stream.distinct
    (if p.Sigrec.Engine.Stream.contracts = 0 then 0.0
     else
       100.0
       *. float_of_int p.Sigrec.Engine.Stream.dedup_hits
       /. float_of_int p.Sigrec.Engine.Stream.contracts)
    p.Sigrec.Engine.Stream.rate p.Sigrec.Engine.Stream.heap_mb eta

let batch_stream_cmd config input show_stats format trace progress =
  let engine = Sigrec.Engine.make config in
  let print_report r =
    match format with
    | `Json -> print_endline (Sigrec.Render.report r)
    | `Text -> Format.printf "%a@." Sigrec.Engine.pp_report r
  in
  let contracts, totals =
    with_trace trace (fun () ->
        with_input_channel input (fun ic ->
            let session =
              Sigrec.Engine.Stream.start
                ?progress:(if progress then Some print_progress else None)
                engine ~emit:print_report
            in
            let (), totals =
              Sigrec.Input.fold_lines ~warn:(warn_malformed input)
                ~f:(fun () code -> Sigrec.Engine.Stream.feed session code)
                () ic
            in
            (Sigrec.Engine.Stream.finish session, totals)))
  in
  let stats = Sigrec.Engine.stats engine in
  Sigrec.Stats.add_stream_lines stats ~lines:totals.Sigrec.Input.lines
    ~skipped:totals.Sigrec.Input.skipped;
  (* The summary is unconditional — census scripts parse the final line
     of a streamed run, so it must exist even for zero-line input. *)
  (match format with
  | `Text ->
    Format.printf
      "@.stream: %d contracts over %d lines (%d skipped), %d distinct \
       analyses, %d answered from cache@."
      contracts totals.Sigrec.Input.lines totals.Sigrec.Input.skipped
      (Sigrec.Stats.cache_misses stats)
      (Sigrec.Stats.cache_hits stats)
  | `Json ->
    print_endline
      (Sigrec.Json.obj
         [
           ( "summary",
             Sigrec.Json.obj
               [
                 ("contracts", string_of_int contracts);
                 ("lines", string_of_int totals.Sigrec.Input.lines);
                 ("skipped", string_of_int totals.Sigrec.Input.skipped);
                 ("distinct", string_of_int (Sigrec.Stats.cache_misses stats));
                 ("cached", string_of_int (Sigrec.Stats.cache_hits stats));
               ] );
         ]));
  if show_stats then begin
    match format with
    | `Text -> print_rule_stats stats
    | `Json -> print_stats_json stats
  end;
  0

let batch_cmd config input show_stats format trace stream progress =
  if stream then
    batch_stream_cmd config input show_stats format trace progress
  else begin
    if progress then
      Printf.eprintf "sigrec: --progress has no effect without --stream\n%!";
    let bytecodes = read_bytecode_list input in
    let engine = Sigrec.Engine.make config in
    let reports =
      with_trace trace (fun () -> Sigrec.Engine.recover_all engine bytecodes)
    in
    (match format with
    | `Json ->
      List.iter (fun r -> print_endline (Sigrec.Render.report r)) reports
    | `Text ->
      List.iter
        (fun r -> Format.printf "%a@." Sigrec.Engine.pp_report r)
        reports);
    if show_stats then begin
      match format with
      | `Text ->
        let stats = Sigrec.Engine.stats engine in
        Format.printf
          "@.batch: %d contracts, %d distinct analyses, %d cache hits@."
          (List.length bytecodes)
          (Sigrec.Stats.cache_misses stats)
          (Sigrec.Stats.cache_hits stats);
        print_rule_stats stats
      | `Json -> print_stats_json (Sigrec.Engine.stats engine)
    end;
    0
  end

let print_layout_text (lr : Sigrec.Engine.layout_report) =
  Format.printf "code hash 0x%s%s@.%a@."
    lr.Sigrec.Engine.layout_code_hash
    (if lr.Sigrec.Engine.layout_from_cache then " (cached)" else "")
    Sigrec_layout.Layout.pp lr.Sigrec.Engine.layout

let layout_cmd config input batch show_stats format trace =
  let engine = Sigrec.Engine.make config in
  let reports =
    with_trace trace (fun () ->
        if batch then
          Sigrec.Engine.layout_all engine (read_bytecode_list input)
        else [ Sigrec.Engine.layout engine (read_bytecode input) ])
  in
  (match format with
  | `Json ->
    List.iter
      (fun lr -> print_endline (Sigrec.Render.layout_report lr))
      reports
  | `Text -> List.iter print_layout_text reports);
  if show_stats then begin
    match format with
    | `Text ->
      let stats = Sigrec.Engine.stats engine in
      Format.printf "layouts: %d recovered, %d slots (%d unresolved ops)@."
        (Sigrec.Stats.layouts_recovered stats)
        (Sigrec.Stats.layout_slots stats)
        (Sigrec.Stats.layout_unknown_ops stats)
    | `Json -> print_stats_json (Sigrec.Engine.stats engine)
  end;
  0

let print_classify_text (cr : Sigrec.Engine.classify_report) =
  Format.printf "code hash 0x%s%s@.%a@."
    cr.Sigrec.Engine.classify_code_hash
    (if cr.Sigrec.Engine.classify_from_cache then " (cached)" else "")
    Sigrec_classify.Classify.pp cr.Sigrec.Engine.verdict

let print_classify_stats stats format =
  match format with
  | `Text ->
    Format.printf
      "classify: %d verdicts (%d exact / %d partial / %d unknown), %d \
       probes, %d cache hits@."
      (Sigrec.Stats.classifications stats)
      (Sigrec.Stats.classify_exact stats)
      (Sigrec.Stats.classify_partial stats)
      (Sigrec.Stats.classify_unknown stats)
      (Sigrec.Stats.classify_probes stats)
      (Sigrec.Stats.classify_cache_hits stats)
  | `Json -> print_stats_json stats

(* Streamed classification: bounded buffers through [classify_all], so
   recovery gets the pooled batch path and verdicts print in input
   order at constant memory, mirroring [batch --stream]. *)
let classify_stream_cmd config input show_stats format trace =
  let engine = Sigrec.Engine.make config in
  let print_verdict cr =
    match format with
    | `Json -> print_endline (Sigrec.Render.classify_report cr)
    | `Text -> print_classify_text cr
  in
  let buf = ref [] and len = ref 0 in
  let flush () =
    if !len > 0 then begin
      let codes = List.rev !buf in
      buf := [];
      len := 0;
      List.iter print_verdict (Sigrec.Engine.classify_all engine codes)
    end
  in
  let totals =
    with_trace trace (fun () ->
        with_input_channel input (fun ic ->
            let (), totals =
              Sigrec.Input.fold_lines ~warn:(warn_malformed input)
                ~f:(fun () code ->
                  buf := code :: !buf;
                  incr len;
                  if !len >= Sigrec.Engine.Stream.default_batch then flush ())
                () ic
            in
            flush ();
            totals))
  in
  let stats = Sigrec.Engine.stats engine in
  Sigrec.Stats.add_stream_lines stats ~lines:totals.Sigrec.Input.lines
    ~skipped:totals.Sigrec.Input.skipped;
  if show_stats then print_classify_stats stats format;
  0

let classify_cmd config input batch stream show_stats format trace =
  if stream then classify_stream_cmd config input show_stats format trace
  else begin
    let engine = Sigrec.Engine.make config in
    let reports =
      with_trace trace (fun () ->
          if batch then
            Sigrec.Engine.classify_all engine (read_bytecode_list input)
          else [ Sigrec.Engine.classify engine (read_bytecode input) ])
    in
    (match format with
    | `Json ->
      List.iter
        (fun cr -> print_endline (Sigrec.Render.classify_report cr))
        reports
    | `Text -> List.iter print_classify_text reports);
    if show_stats then print_classify_stats (Sigrec.Engine.stats engine) format;
    0
  end

let lint_cmd input layout show_stats format trace =
  let bytecode = read_bytecode input in
  let stats = Sigrec.Stats.create () in
  let verdicts, layout_verdict =
    with_trace trace (fun () ->
        let verdicts = Sigrec.Lint.check ~stats bytecode in
        let lv =
          if layout then Some (Sigrec.Lint.check_layout ~stats bytecode)
          else None
        in
        (verdicts, lv))
  in
  (match format with
  | `Json ->
    print_endline
      (Sigrec.Json.arr (List.map Sigrec.Render.verdict verdicts));
    Option.iter
      (fun lv -> print_endline (Sigrec.Render.layout_verdict lv))
      layout_verdict
  | `Text ->
    if verdicts = [] then
      Printf.printf "no public/external functions found\n"
    else
      List.iter
        (fun v -> Format.printf "%a" Sigrec.Lint.pp_verdict v)
        verdicts;
    Option.iter
      (fun lv -> Format.printf "%a" Sigrec.Lint.pp_layout_verdict lv)
      layout_verdict);
  if show_stats then begin
    match format with
    | `Text ->
      Format.printf "lint: %d agree / %d disagree@."
        (Sigrec.Stats.lint_agreements stats)
        (Sigrec.Stats.lint_disagreements stats)
    | `Json -> print_stats_json stats
  end;
  if
    List.for_all Sigrec.Lint.agree verdicts
    && Option.fold ~none:true ~some:Sigrec.Lint.layout_agree layout_verdict
  then 0
  else 1

(* ---- explain: the per-function recovery narrative ------------------- *)

let pp_pc pc = if pc >= 0 then Printf.sprintf "pc 0x%x" pc else "pc -"

let explain_function (r : Sigrec.Recover.recovered) elapsed_ns =
  Printf.printf "selector 0x%s: %d path%s explored%s\n"
    r.Sigrec.Recover.selector_hex r.Sigrec.Recover.paths_explored
    (if r.Sigrec.Recover.paths_explored = 1 then "" else "s")
    (match elapsed_ns with
    | Some ns -> Printf.sprintf ", %.2f ms" (float_of_int ns /. 1e6)
    | None -> "");
  Printf.printf "  signature  0x%s(%s)%s\n" r.Sigrec.Recover.selector_hex
    (Sigrec.Recover.type_list r)
    (match r.Sigrec.Recover.lang with
    | Abi.Abity.Solidity -> ""
    | Abi.Abity.Vyper -> " [vyper]");
  List.iteri
    (fun i (ty, path) ->
      Printf.printf "  arg%-2d %-16s via %s\n" (i + 1)
        (Abi.Abity.to_string ty)
        (if path = [] then "-" else String.concat " -> " path))
    (List.combine r.Sigrec.Recover.params r.Sigrec.Recover.rule_paths);
  (match r.Sigrec.Recover.evidence with
  | [] -> ()
  | evidence ->
    Printf.printf "  evidence:\n";
    List.iter
      (fun (e : Sigrec.Rules.evidence) ->
        Printf.printf "    %-4s %-8s %-10s %s\n" e.Sigrec.Rules.rule
          (if e.Sigrec.Rules.fired then "fired" else "rejected")
          (pp_pc e.Sigrec.Rules.pc)
          e.Sigrec.Rules.note)
      evidence);
  print_newline ()

let explain_cmd config input profile =
  let bytecode = read_bytecode input in
  let engine = Sigrec.Engine.make config in
  let run () = Sigrec.Engine.recover engine bytecode in
  let report, profile_txt =
    if profile then begin
      Trace.enable ();
      let report = run () in
      Trace.disable ();
      (report, Some (Texport.summary (Trace.collect ())))
    end
    else (run (), None)
  in
  Printf.printf "code hash 0x%s\n\n" report.Sigrec.Engine.code_hash;
  if report.Sigrec.Engine.outcomes = [] then
    Printf.printf "no public/external functions found\n"
  else
    List.iter
      (fun outcome ->
        match outcome with
        | Sigrec.Engine.Recovered { result; elapsed_ns } ->
          explain_function result (Some elapsed_ns)
        | Sigrec.Engine.Budget_exhausted { partial; paths_explored; elapsed_ns }
          ->
          Printf.printf
            "selector 0x%s: budget exhausted after %d paths (partial below)\n"
            partial.Sigrec.Recover.selector_hex paths_explored;
          explain_function partial (Some elapsed_ns)
        | Sigrec.Engine.Failed e ->
          Printf.printf "selector 0x%s: FAILED at entry %04x: %s\n\n"
            e.Sigrec.Engine.selector_hex e.Sigrec.Engine.entry_pc
            e.Sigrec.Engine.message)
      report.Sigrec.Engine.outcomes;
  Option.iter print_string profile_txt;
  match
    List.find_opt
      (function Sigrec.Engine.Failed _ -> true | _ -> false)
      report.Sigrec.Engine.outcomes
  with
  | Some _ -> 1
  | None -> 0

(* ---- serve: resident recovery daemon -------------------------------- *)

(* One connection at a time: requests within a connection are already
   pipelined, and the engine fans each batch out over the domain pool,
   so a second acceptor would only interleave output. *)
let serve_cmd config socket trace =
  (* a client hanging up mid-response must surface as a write error on
     this connection, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* a resident service is exactly what the metric registry is for:
     phase-latency histograms, pool/LRU/GC gauges and the slowest-
     contracts ring, scraped via {"op":"metrics","format":"openmetrics"}
     or the [sigrec metrics] subcommand *)
  Sigrec_metrics.Metrics.enable ();
  with_trace trace (fun () ->
      let t = Sigrec.Serve.create config in
      match socket with
      | None ->
        let _ = Sigrec.Serve.run t stdin stdout in
        0
      | Some path ->
        if Sys.file_exists path then Sys.remove path;
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        Printf.eprintf "sigrec: serving on %s\n%!" path;
        let rec accept_loop () =
          let fd, _ = Unix.accept sock in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          let outcome =
            try Sigrec.Serve.run t ic oc with
            | Sys_error _ | Unix.Unix_error _ -> `Eof
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          match outcome with `Eof -> accept_loop () | `Shutdown -> ()
        in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            (try Sys.remove path with Sys_error _ -> ()))
          accept_loop;
        0)

(* ---- metrics: scrape a resident daemon ------------------------------ *)

(* One request over the daemon's Unix socket, one response line back.
   Default: the OpenMetrics exposition, printed raw (pipe it to a
   Prometheus textfile collector or a node-exporter sidecar). --top:
   the slowest-contracts table instead. *)
let metrics_cmd socket top =
  match socket with
  | None ->
    Printf.eprintf
      "sigrec: metrics needs --socket PATH (the socket of a running \
       'sigrec serve --socket PATH' daemon)\n";
    2
  | Some path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "sigrec: cannot connect to %s: %s\n" path
        (Unix.error_message e);
      3
    | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let req =
        if top <> None then
          {|{"id":"metrics","op":"metrics","top":true}|}
        else {|{"id":"metrics","op":"metrics","format":"openmetrics"}|}
      in
      Out_channel.output_string oc (req ^ "\n");
      Out_channel.flush oc;
      let code =
        match In_channel.input_line ic with
        | None ->
          Printf.eprintf "sigrec: daemon closed the connection\n";
          3
        | Some line ->
          (match Sigrec.Json.parse line with
          | Error msg ->
            Printf.eprintf "sigrec: unparseable response (%s)\n" msg;
            3
          | Ok resp ->
            (match top with
            | Some n ->
              (match Sigrec.Json.member "slowest" resp with
              | Some (Sigrec.Json.Arr entries) ->
                Printf.printf "%-64s %12s  %s\n" "code hash" "elapsed"
                  "breakdown";
                List.iteri
                  (fun i e ->
                    if i < n then begin
                      let str k =
                        match Sigrec.Json.member k e with
                        | Some (Sigrec.Json.Str s) -> s
                        | _ -> "?"
                      in
                      let elapsed =
                        match Sigrec.Json.member "elapsed_ns" e with
                        | Some v ->
                          (match Sigrec.Json.to_int_opt v with
                          | Some ns ->
                            Printf.sprintf "%.2f ms"
                              (float_of_int ns /. 1e6)
                          | None -> "?")
                        | None -> "?"
                      in
                      let detail =
                        match Sigrec.Json.member "detail" e with
                        | Some (Sigrec.Json.Obj fields) ->
                          String.concat ", "
                            (List.map
                               (fun (k, v) ->
                                 Printf.sprintf "%s=%s" k
                                   (match Sigrec.Json.to_int_opt v with
                                   | Some i -> string_of_int i
                                   | None -> "?"))
                               fields)
                        | _ -> ""
                      in
                      Printf.printf "%-64s %12s  %s\n" (str "code_hash")
                        elapsed detail
                    end)
                  entries;
                0
              | _ ->
                Printf.eprintf "sigrec: response carries no \"slowest\"\n";
                3)
            | None ->
              (match Sigrec.Json.member "exposition" resp with
              | Some (Sigrec.Json.Str text) ->
                print_string text;
                0
              | _ ->
                Printf.eprintf
                  "sigrec: response carries no \"exposition\"\n";
                3)))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      code)

let find_selector bytecode calldata k =
  if String.length calldata < 4 then begin
    Printf.eprintf "call data shorter than a function id\n";
    1
  end
  else begin
    let selector = String.sub calldata 0 4 in
    let recovered = Sigrec.Recover.recover bytecode in
    match
      List.find_opt (fun r -> r.Sigrec.Recover.selector = selector) recovered
    with
    | None ->
      Printf.printf "function id 0x%s not found in bytecode\n"
        (Evm.Hex.encode selector);
      1
    | Some r -> k r
  end

let check_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  find_selector bytecode calldata (fun r ->
      Printf.printf "signature: ";
      Format.printf "%a@." Sigrec.Recover.pp r;
      match Tools.Parchecker.check_call r.Sigrec.Recover.params calldata with
      | Tools.Parchecker.Valid ->
        Printf.printf "arguments: valid\n";
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then begin
          Printf.printf "WARNING: short address attack pattern\n";
          2
        end
        else 0
      | Tools.Parchecker.Invalid reason ->
        Printf.printf "arguments: INVALID (%s)\n" reason;
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then Printf.printf "WARNING: short address attack pattern\n";
        2)

let decode_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  find_selector bytecode calldata (fun r ->
      match Abi.Decode.decode_call r.Sigrec.Recover.params calldata with
      | Ok (_, values) ->
        Format.printf "0x%s%a@." r.Sigrec.Recover.selector_hex
          Abi.Decode.pp_decoded
          (r.Sigrec.Recover.params, values);
        0
      | Error reason ->
        Printf.printf "cannot decode: %s\n" reason;
        1)

let lift_cmd input plain =
  let bytecode = read_bytecode input in
  if plain then
    List.iter
      (fun (fn : Tools.Erays.lifted_fn) ->
        Printf.printf "function 0x%s {\n" fn.Tools.Erays.selector_hex;
        List.iter
          (fun (s : Tools.Erays.stmt) ->
            Printf.printf "  %s\n" s.Tools.Erays.text)
          fn.Tools.Erays.stmts;
        Printf.printf "}\n")
      (Tools.Erays.lift bytecode)
  else
    List.iter
      (fun e -> Format.printf "%a" Tools.Eraysplus.pp e)
      (Tools.Eraysplus.enhance bytecode);
  0

(* ---- the shared flag table ---------------------------------------- *)

open Cmdliner

(* Every flag that more than one subcommand accepts is defined exactly
   once here; recover/batch/lint/explain/serve compose their terms from
   these specs, so a flag's name, docv and semantics cannot drift
   between subcommands. The engine-shaping flags (--jobs, the budget
   trio, --cache-capacity) fold into one [Engine.Config.t] term. *)
module Flags = struct
  let format =
    let doc = "Output format: $(b,text) or $(b,json)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc)

  let jobs =
    let doc =
      "Number of worker domains for the recovery engine (default: the \
       recommended domain count of this machine)."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print per-rule usage counts (with --format json: one \
             {\"stats\":...} line after the report output).")

  let trace =
    let doc =
      "Record a telemetry trace of the run into $(docv): Chrome \
       trace_event JSON (load in chrome://tracing or Perfetto), or JSONL \
       when $(docv) ends in .jsonl."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

  let max_paths =
    let doc =
      "Symbolic-execution budget: maximum paths explored per function \
       (default unbounded; the built-in default budget uses 512)."
    in
    Arg.(value & opt (some int) None & info [ "max-paths" ] ~docv:"N" ~doc)

  let max_steps =
    let doc =
      "Symbolic-execution budget: maximum interpreter steps per path."
    in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)

  let max_forks =
    let doc =
      "Symbolic-execution budget: maximum JUMPI forks taken at one \
       program counter (symbolic-loop unrolling bound)."
    in
    Arg.(value & opt (some int) None & info [ "max-forks" ] ~docv:"N" ~doc)

  let cache_capacity =
    let doc =
      "Bound the engine's report cache to $(docv) entries \
       (least-recently-used eviction); 0 or absent means unbounded."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N" ~doc)

  (* Any budget flag given -> a budget based on the executor default;
     none -> unbounded (the library default). *)
  let budget =
    let make mp ms mf =
      match (mp, ms, mf) with
      | None, None, None -> None
      | _ ->
        let d = Symex.Exec.default_budget in
        Some
          {
            Symex.Exec.max_paths =
              Option.value ~default:d.Symex.Exec.max_paths mp;
            max_steps = Option.value ~default:d.Symex.Exec.max_steps ms;
            max_forks_per_pc =
              Option.value ~default:d.Symex.Exec.max_forks_per_pc mf;
          }
    in
    Term.(const make $ max_paths $ max_steps $ max_forks)

  let engine_config =
    let make jobs budget cache_capacity =
      let open Sigrec.Engine.Config in
      default
      |> (match jobs with Some j -> with_jobs j | None -> Fun.id)
      |> (match budget with Some b -> with_budget b | None -> Fun.id)
      |>
      match cache_capacity with
      | Some c -> with_cache_capacity c
      | None -> Fun.id
    in
    Term.(const make $ jobs $ budget $ cache_capacity)
end

let input_arg =
  let doc = "File containing hex (or raw) runtime bytecode; - for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BYTECODE" ~doc)

let recover_term =
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Show each parameter's path through the rule decision tree.")
  in
  Term.(
    const recover_cmd $ Flags.engine_config $ input_arg $ Flags.stats
    $ explain $ Flags.format $ Flags.trace)

let batch_term =
  let input =
    let doc =
      "File with one hex bytecode per line (blank lines and # comments \
       skipped); - for stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LIST" ~doc)
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream the input instead of loading it whole: contracts are \
             read, recovered and printed in bounded batches, so \
             chain-scale corpora run in constant memory. Reports still \
             appear in input order.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "With --stream: print a census heartbeat to stderr every \
             1000 contracts (rate, dedup ratio, live heap) and once at \
             the end.")
  in
  Term.(
    const batch_cmd $ Flags.engine_config $ input $ Flags.stats
    $ Flags.format $ Flags.trace $ stream $ progress)

let explain_term =
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Trace the recovery internally and append the phase/rule \
             latency summary tree.")
  in
  Term.(const explain_cmd $ Flags.engine_config $ input_arg $ profile)

let layout_term =
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Treat $(b,BYTECODE) as a list file (one hex bytecode per \
             line, # comments skipped) and recover every layout through \
             the batch engine.")
  in
  Term.(
    const layout_cmd $ Flags.engine_config $ input_arg $ batch $ Flags.stats
    $ Flags.format $ Flags.trace)

let classify_term =
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Treat $(b,BYTECODE) as a list file (one hex bytecode per \
             line, # comments skipped) and classify every contract \
             through the batch engine.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream the input instead of loading it whole: contracts \
             are read, classified and printed in bounded batches, in \
             input order, at constant memory.")
  in
  Term.(
    const classify_cmd $ Flags.engine_config $ input_arg $ batch $ stream
    $ Flags.stats $ Flags.format $ Flags.trace)

let serve_term =
  let socket =
    let doc =
      "Listen on a Unix domain socket at $(docv) instead of serving \
       stdin/stdout; connections are served one at a time and the \
       socket file is removed on exit."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  Term.(const serve_cmd $ Flags.engine_config $ socket $ Flags.trace)

let metrics_term =
  let socket =
    let doc =
      "Socket of the running daemon (the $(b,--socket) path it was \
       started with)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let top =
    let doc =
      "Show the $(docv) slowest contracts the daemon has analyzed \
       (code hash, elapsed time, phase breakdown) instead of the \
       OpenMetrics exposition."
    in
    Arg.(
      value
      & opt ~vopt:(Some 16) (some int) None
      & info [ "top" ] ~docv:"N" ~doc)
  in
  Term.(const metrics_cmd $ socket $ top)

let check_term =
  let calldata =
    let doc = "Hex call data of the invocation to validate." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
  in
  Term.(const check_cmd $ input_arg $ calldata)

let lift_term =
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ] ~doc:"Raw Erays output without signature-based enhancement.")
  in
  Term.(const lift_cmd $ input_arg $ plain)

let cmds =
  [
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Recover the function signatures of all public/external functions.")
      recover_term;
    Cmd.v
      (Cmd.info "batch"
         ~doc:
           "Recover a list of contracts through the batch engine: \
            duplicates are analyzed once, distinct bytecodes fan out \
            over worker domains.")
      batch_term;
    Cmd.v
      (Cmd.info "layout"
         ~doc:
           "Recover the contract's storage layout: declared slots with \
            their kind (word, packed members, mapping, dynamic array) \
            from a static pass over the SSTORE/SLOAD patterns.")
      layout_term;
    Cmd.v
      (Cmd.info "classify"
         ~doc:
           "Classify the contract against the ERC token-interface \
            specs (ERC-20/721/1155 plus extensions): recover its \
            signatures, match selectors and parameter types with the \
            \xc2\xa75.2 tolerance, corroborate near-misses behaviourally and \
            with the recovered storage layout.")
      classify_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Stay resident as a recovery daemon: line-oriented JSON \
            requests over stdin/stdout or a Unix socket, with the \
            report cache and worker-domain pool kept warm across \
            requests.")
      serve_term;
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Scrape a resident daemon's metrics over its Unix socket: \
            the OpenMetrics exposition (phase-latency histograms, \
            pool/cache/GC gauges, analysis counters) by default, or \
            the slowest-contracts table with --top.")
      metrics_term;
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Cross-check the recovered signatures against a static \
            abstract-interpretation summary of the same bytecode; exits \
            non-zero on any disagreement.")
      (let layout =
         Arg.(
           value & flag
           & info [ "layout" ]
               ~doc:
                 "Also diff the recovered storage layout against \
                  interpreter-observed storage traffic: every dispatcher \
                  entry is driven concretely and each written cell must \
                  be explained by a recovered declaration.")
       in
       Term.(
         const lint_cmd $ input_arg $ layout $ Flags.stats $ Flags.format
         $ Flags.trace));
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Narrate each function's recovery: selector, path count, \
            per-parameter rule path, and every rule decision (fired or \
            rejected) with its bytecode pc evidence.")
      explain_term;
    Cmd.v
      (Cmd.info "check"
         ~doc:"Validate call data against the recovered signature (ParChecker).")
      check_term;
    Cmd.v
      (Cmd.info "decode"
         ~doc:"Decode call data into typed arguments using the recovered signature.")
      (let calldata =
         let doc = "Hex call data of the invocation to decode." in
         Arg.(
           required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
       in
       Term.(const decode_cmd $ input_arg $ calldata));
    Cmd.v
      (Cmd.info "lift" ~doc:"Lift bytecode to readable IR (Erays+).")
      lift_term;
  ]

let () =
  let info =
    Cmd.info "sigrec" ~version:"1.0.0"
      ~doc:"Automatic recovery of function signatures in smart contracts"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
