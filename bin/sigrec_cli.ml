(* The sigrec command-line tool: recover function signatures from EVM
   runtime bytecode (one contract or a batch), check call data against
   them, or lift bytecode to readable IR.

   Subcommands share the same input conventions and flags: bytecode is
   hex (optional 0x prefix) or raw bytes, [--format json|text] selects
   machine- or human-readable output, and [--jobs N] sizes the batch
   engine's domain pool. *)

let read_raw input =
  try
    if input = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_bin input In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "sigrec: %s\n" msg;
    exit 2

let read_bytecode input =
  let raw = read_raw input in
  let trimmed = String.trim raw in
  if Evm.Hex.is_valid trimmed then Evm.Hex.decode trimmed else raw

(* One hex bytecode per line; blank lines, #-comments, CRLF and 0x
   prefixes tolerated; malformed lines are warned about on stderr (as
   they are found, via the warn callback — never stdout, which may be
   carrying --format json output) and skipped rather than failing the
   whole file. *)
let read_bytecode_list input =
  let warn ~line ~reason =
    Printf.eprintf "sigrec: %s:%d: skipping malformed line (%s)\n%!" input
      line reason
  in
  let batch = Sigrec.Input.parse_batch ~warn (read_raw input) in
  batch.Sigrec.Input.codes

(* ---- tracing -------------------------------------------------------- *)

module Trace = Sigrec_trace.Trace
module Texport = Sigrec_trace.Export

(* Run [f] with tracing on and export the collected events afterwards:
   Chrome trace_event JSON by default (chrome://tracing, Perfetto),
   JSONL when the file name ends in [.jsonl]. *)
let with_trace trace_file f =
  match trace_file with
  | None -> f ()
  | Some file ->
    Trace.enable ();
    let finish () =
      Trace.disable ();
      let events = Trace.collect () in
      let rendered =
        if Filename.check_suffix file ".jsonl" then Texport.to_jsonl events
        else Texport.to_chrome events
      in
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc rendered);
      let dropped = Trace.dropped () in
      if dropped > 0 then
        Printf.eprintf
          "sigrec: trace ring wrapped, %d oldest events dropped\n" dropped;
      Printf.eprintf "sigrec: wrote %d trace events to %s\n"
        (List.length events) file
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* ---- JSON rendering (no external dependency) ---------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_list items = Printf.sprintf "[%s]" (String.concat "," items)

let json_of_recovered (r : Sigrec.Recover.recovered) extra =
  let fields =
    [
      ("selector", json_string ("0x" ^ r.Sigrec.Recover.selector_hex));
      ( "types",
        json_list
          (List.map
             (fun ty -> json_string (Abi.Abity.to_string ty))
             r.Sigrec.Recover.params) );
      ( "lang",
        json_string
          (match r.Sigrec.Recover.lang with
          | Abi.Abity.Solidity -> "solidity"
          | Abi.Abity.Vyper -> "vyper") );
      ( "rule_paths",
        json_list
          (List.map
             (fun path -> json_list (List.map json_string path))
             r.Sigrec.Recover.rule_paths) );
      ("entry_pc", string_of_int r.Sigrec.Recover.entry_pc);
    ]
    @ extra
  in
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v)
          fields))

let json_of_outcome = function
  | Sigrec.Engine.Recovered { result; elapsed_ns } ->
    json_of_recovered result
      [
        ("outcome", json_string "recovered");
        ("elapsed_ns", string_of_int elapsed_ns);
      ]
  | Sigrec.Engine.Budget_exhausted { partial; paths_explored; elapsed_ns } ->
    json_of_recovered partial
      [
        ("outcome", json_string "budget_exhausted");
        ("paths_explored", string_of_int paths_explored);
        ("elapsed_ns", string_of_int elapsed_ns);
      ]
  | Sigrec.Engine.Failed e ->
    Printf.sprintf
      "{\"selector\":%s,\"entry_pc\":%d,\"outcome\":\"failed\",\"error\":%s}"
      (json_string ("0x" ^ e.Sigrec.Engine.selector_hex))
      e.Sigrec.Engine.entry_pc
      (json_string e.Sigrec.Engine.message)

let json_of_report (report : Sigrec.Engine.report) =
  Printf.sprintf
    "{\"code_hash\":%s,\"from_cache\":%b,\"functions\":%s}"
    (json_string ("0x" ^ report.Sigrec.Engine.code_hash))
    report.Sigrec.Engine.from_cache
    (json_list (List.map json_of_outcome report.Sigrec.Engine.outcomes))

let json_of_finding f =
  let obj fields =
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v)
            fields))
  in
  match f with
  | Sigrec.Lint.Mask_conflict { offset; mask; recovered } ->
    obj
      [
        ("kind", json_string "mask_conflict");
        ("offset", string_of_int offset);
        ("mask", json_string ("0x" ^ Evm.U256.to_hex mask));
        ("recovered", json_string (Abi.Abity.to_string recovered));
      ]
  | Sigrec.Lint.Signext_conflict { offset; byte; recovered } ->
    obj
      [
        ("kind", json_string "signext_conflict");
        ("offset", string_of_int offset);
        ("byte", string_of_int byte);
        ("recovered", json_string (Abi.Abity.to_string recovered));
      ]
  | Sigrec.Lint.Param_never_read { offset; recovered } ->
    obj
      [
        ("kind", json_string "param_never_read");
        ("offset", string_of_int offset);
        ("recovered", json_string (Abi.Abity.to_string recovered));
      ]
  | Sigrec.Lint.Read_beyond_params { offset } ->
    obj
      [
        ("kind", json_string "read_beyond_params");
        ("offset", string_of_int offset);
      ]
  | Sigrec.Lint.Dead_firing { rule; param_index } ->
    obj
      [
        ("kind", json_string "dead_firing");
        ("rule", json_string rule);
        ("param_index", string_of_int param_index);
      ]
  | Sigrec.Lint.Unreachable_entry ->
    obj [ ("kind", json_string "unreachable_entry") ]

let json_of_verdict (v : Sigrec.Lint.verdict) =
  Printf.sprintf
    "{\"selector\":%s,\"entry_pc\":%d,\"types\":%s,\"agree\":%b,\"findings\":%s}"
    (json_string ("0x" ^ v.Sigrec.Lint.selector_hex))
    v.Sigrec.Lint.entry_pc
    (json_list
       (List.map
          (fun ty -> json_string (Abi.Abity.to_string ty))
          v.Sigrec.Lint.recovered.Sigrec.Recover.params))
    (Sigrec.Lint.agree v)
    (json_list (List.map json_of_finding v.Sigrec.Lint.findings))

(* ---- shared printing ---------------------------------------------- *)

let print_rule_stats stats =
  Format.printf "@.rule usage:@.";
  List.iter
    (fun (name, n) ->
      if n > 0 then begin
        let doc =
          match Sigrec.Ruledoc.find name with
          | Some d -> d.Sigrec.Ruledoc.concludes
          | None -> ""
        in
        Format.printf "  %-4s %4d  %s@." name n doc
      end)
    (Sigrec.Stats.rule_counts stats);
  Format.printf "functions recovered: %d; paths explored: %d@."
    (Sigrec.Stats.functions_recovered stats)
    (Sigrec.Stats.paths_explored stats);
  let hits = Sigrec.Stats.cache_hits stats
  and misses = Sigrec.Stats.cache_misses stats in
  if hits + misses > 1 then
    Format.printf "cache: %d hits / %d analyses@." hits misses

let print_report_text ~explain (report : Sigrec.Engine.report) =
  if report.Sigrec.Engine.outcomes = [] then
    Printf.printf "no public/external functions found\n"
  else
    List.iter
      (fun outcome ->
        Format.printf "%a@." Sigrec.Engine.pp_outcome outcome;
        if explain then
          match outcome with
          | Sigrec.Engine.Recovered { result = r; _ }
          | Sigrec.Engine.Budget_exhausted { partial = r; _ } ->
            List.iteri
              (fun i (ty, path) ->
                Format.printf "    arg%d %-14s via %s@." (i + 1)
                  (Abi.Abity.to_string ty)
                  (if path = [] then "-" else String.concat " -> " path))
              (List.combine r.Sigrec.Recover.params
                 r.Sigrec.Recover.rule_paths)
          | Sigrec.Engine.Failed _ -> ())
      report.Sigrec.Engine.outcomes

(* ---- subcommand bodies -------------------------------------------- *)

(* With --format json, --stats appends one {"stats":{...}} line after
   the report output: stdout stays line-oriented JSON throughout. *)
let print_stats_json stats =
  print_endline (Printf.sprintf "{\"stats\":%s}" (Sigrec.Stats.to_json stats))

let recover_cmd input show_stats explain format trace =
  let bytecode = read_bytecode input in
  let engine = Sigrec.Engine.create () in
  let report =
    with_trace trace (fun () -> Sigrec.Engine.recover engine bytecode)
  in
  (match format with
  | `Json -> print_endline (json_of_report report)
  | `Text -> print_report_text ~explain report);
  if show_stats then begin
    match format with
    | `Text -> print_rule_stats (Sigrec.Engine.stats engine)
    | `Json -> print_stats_json (Sigrec.Engine.stats engine)
  end;
  match
    List.find_opt
      (function Sigrec.Engine.Failed _ -> true | _ -> false)
      report.Sigrec.Engine.outcomes
  with
  | Some _ -> 1
  | None -> 0

let batch_cmd input jobs show_stats format trace =
  let bytecodes = read_bytecode_list input in
  let engine = Sigrec.Engine.create () in
  let reports =
    with_trace trace (fun () ->
        Sigrec.Engine.recover_all ?jobs engine bytecodes)
  in
  (match format with
  | `Json -> List.iter (fun r -> print_endline (json_of_report r)) reports
  | `Text ->
    List.iter (fun r -> Format.printf "%a@." Sigrec.Engine.pp_report r) reports);
  if show_stats then begin
    match format with
    | `Text ->
      let stats = Sigrec.Engine.stats engine in
      Format.printf
        "@.batch: %d contracts, %d distinct analyses, %d cache hits@."
        (List.length bytecodes)
        (Sigrec.Stats.cache_misses stats)
        (Sigrec.Stats.cache_hits stats);
      print_rule_stats stats
    | `Json -> print_stats_json (Sigrec.Engine.stats engine)
  end;
  0

let lint_cmd input show_stats format trace =
  let bytecode = read_bytecode input in
  let stats = Sigrec.Stats.create () in
  let verdicts = with_trace trace (fun () -> Sigrec.Lint.check ~stats bytecode) in
  (match format with
  | `Json ->
    print_endline (json_list (List.map json_of_verdict verdicts))
  | `Text ->
    if verdicts = [] then
      Printf.printf "no public/external functions found\n"
    else
      List.iter
        (fun v -> Format.printf "%a" Sigrec.Lint.pp_verdict v)
        verdicts);
  if show_stats then begin
    match format with
    | `Text ->
      Format.printf "lint: %d agree / %d disagree@."
        (Sigrec.Stats.lint_agreements stats)
        (Sigrec.Stats.lint_disagreements stats)
    | `Json -> print_stats_json stats
  end;
  if List.for_all Sigrec.Lint.agree verdicts then 0 else 1

(* ---- explain: the per-function recovery narrative ------------------- *)

let pp_pc pc = if pc >= 0 then Printf.sprintf "pc 0x%x" pc else "pc -"

let explain_function (r : Sigrec.Recover.recovered) elapsed_ns =
  Printf.printf "selector 0x%s: %d path%s explored%s\n"
    r.Sigrec.Recover.selector_hex r.Sigrec.Recover.paths_explored
    (if r.Sigrec.Recover.paths_explored = 1 then "" else "s")
    (match elapsed_ns with
    | Some ns -> Printf.sprintf ", %.2f ms" (float_of_int ns /. 1e6)
    | None -> "");
  Printf.printf "  signature  0x%s(%s)%s\n" r.Sigrec.Recover.selector_hex
    (Sigrec.Recover.type_list r)
    (match r.Sigrec.Recover.lang with
    | Abi.Abity.Solidity -> ""
    | Abi.Abity.Vyper -> " [vyper]");
  List.iteri
    (fun i (ty, path) ->
      Printf.printf "  arg%-2d %-16s via %s\n" (i + 1)
        (Abi.Abity.to_string ty)
        (if path = [] then "-" else String.concat " -> " path))
    (List.combine r.Sigrec.Recover.params r.Sigrec.Recover.rule_paths);
  (match r.Sigrec.Recover.evidence with
  | [] -> ()
  | evidence ->
    Printf.printf "  evidence:\n";
    List.iter
      (fun (e : Sigrec.Rules.evidence) ->
        Printf.printf "    %-4s %-8s %-10s %s\n" e.Sigrec.Rules.rule
          (if e.Sigrec.Rules.fired then "fired" else "rejected")
          (pp_pc e.Sigrec.Rules.pc)
          e.Sigrec.Rules.note)
      evidence);
  print_newline ()

let explain_cmd input profile =
  let bytecode = read_bytecode input in
  let engine = Sigrec.Engine.create () in
  let run () = Sigrec.Engine.recover engine bytecode in
  let report, profile_txt =
    if profile then begin
      Trace.enable ();
      let report = run () in
      Trace.disable ();
      (report, Some (Texport.summary (Trace.collect ())))
    end
    else (run (), None)
  in
  Printf.printf "code hash 0x%s\n\n" report.Sigrec.Engine.code_hash;
  if report.Sigrec.Engine.outcomes = [] then
    Printf.printf "no public/external functions found\n"
  else
    List.iter
      (fun outcome ->
        match outcome with
        | Sigrec.Engine.Recovered { result; elapsed_ns } ->
          explain_function result (Some elapsed_ns)
        | Sigrec.Engine.Budget_exhausted { partial; paths_explored; elapsed_ns }
          ->
          Printf.printf
            "selector 0x%s: budget exhausted after %d paths (partial below)\n"
            partial.Sigrec.Recover.selector_hex paths_explored;
          explain_function partial (Some elapsed_ns)
        | Sigrec.Engine.Failed e ->
          Printf.printf "selector 0x%s: FAILED at entry %04x: %s\n\n"
            e.Sigrec.Engine.selector_hex e.Sigrec.Engine.entry_pc
            e.Sigrec.Engine.message)
      report.Sigrec.Engine.outcomes;
  Option.iter print_string profile_txt;
  match
    List.find_opt
      (function Sigrec.Engine.Failed _ -> true | _ -> false)
      report.Sigrec.Engine.outcomes
  with
  | Some _ -> 1
  | None -> 0

let find_selector bytecode calldata k =
  if String.length calldata < 4 then begin
    Printf.eprintf "call data shorter than a function id\n";
    1
  end
  else begin
    let selector = String.sub calldata 0 4 in
    let recovered = Sigrec.Recover.recover bytecode in
    match
      List.find_opt (fun r -> r.Sigrec.Recover.selector = selector) recovered
    with
    | None ->
      Printf.printf "function id 0x%s not found in bytecode\n"
        (Evm.Hex.encode selector);
      1
    | Some r -> k r
  end

let check_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  find_selector bytecode calldata (fun r ->
      Printf.printf "signature: ";
      Format.printf "%a@." Sigrec.Recover.pp r;
      match Tools.Parchecker.check_call r.Sigrec.Recover.params calldata with
      | Tools.Parchecker.Valid ->
        Printf.printf "arguments: valid\n";
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then begin
          Printf.printf "WARNING: short address attack pattern\n";
          2
        end
        else 0
      | Tools.Parchecker.Invalid reason ->
        Printf.printf "arguments: INVALID (%s)\n" reason;
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then Printf.printf "WARNING: short address attack pattern\n";
        2)

let decode_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  find_selector bytecode calldata (fun r ->
      match Abi.Decode.decode_call r.Sigrec.Recover.params calldata with
      | Ok (_, values) ->
        Format.printf "0x%s%a@." r.Sigrec.Recover.selector_hex
          Abi.Decode.pp_decoded
          (r.Sigrec.Recover.params, values);
        0
      | Error reason ->
        Printf.printf "cannot decode: %s\n" reason;
        1)

let lift_cmd input plain =
  let bytecode = read_bytecode input in
  if plain then
    List.iter
      (fun (fn : Tools.Erays.lifted_fn) ->
        Printf.printf "function 0x%s {\n" fn.Tools.Erays.selector_hex;
        List.iter
          (fun (s : Tools.Erays.stmt) ->
            Printf.printf "  %s\n" s.Tools.Erays.text)
          fn.Tools.Erays.stmts;
        Printf.printf "}\n")
      (Tools.Erays.lift bytecode)
  else
    List.iter
      (fun e -> Format.printf "%a" Tools.Eraysplus.pp e)
      (Tools.Eraysplus.enhance bytecode);
  0

(* ---- command-line structure --------------------------------------- *)

open Cmdliner

let input_arg =
  let doc = "File containing hex (or raw) runtime bytecode; - for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BYTECODE" ~doc)

let format_arg =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for the batch engine (default: the \
     recommended domain count of this machine)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-rule usage counts (with --format json: one \
           {\"stats\":...} line after the report output).")

let trace_arg =
  let doc =
    "Record a telemetry trace of the run into $(docv): Chrome \
     trace_event JSON (load in chrome://tracing or Perfetto), or JSONL \
     when $(docv) ends in .jsonl."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let recover_term =
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Show each parameter's path through the rule decision tree.")
  in
  Term.(
    const recover_cmd $ input_arg $ stats_flag $ explain $ format_arg
    $ trace_arg)

let batch_term =
  let input =
    let doc =
      "File with one hex bytecode per line (blank lines and # comments \
       skipped); - for stdin."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LIST" ~doc)
  in
  Term.(
    const batch_cmd $ input $ jobs_arg $ stats_flag $ format_arg $ trace_arg)

let explain_term =
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Trace the recovery internally and append the phase/rule \
             latency summary tree.")
  in
  Term.(const explain_cmd $ input_arg $ profile)

let check_term =
  let calldata =
    let doc = "Hex call data of the invocation to validate." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
  in
  Term.(const check_cmd $ input_arg $ calldata)

let lift_term =
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ] ~doc:"Raw Erays output without signature-based enhancement.")
  in
  Term.(const lift_cmd $ input_arg $ plain)

let cmds =
  [
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Recover the function signatures of all public/external functions.")
      recover_term;
    Cmd.v
      (Cmd.info "batch"
         ~doc:
           "Recover a list of contracts through the batch engine: \
            duplicates are analyzed once, distinct bytecodes fan out \
            over worker domains.")
      batch_term;
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Cross-check the recovered signatures against a static \
            abstract-interpretation summary of the same bytecode; exits \
            non-zero on any disagreement.")
      Term.(const lint_cmd $ input_arg $ stats_flag $ format_arg $ trace_arg);
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Narrate each function's recovery: selector, path count, \
            per-parameter rule path, and every rule decision (fired or \
            rejected) with its bytecode pc evidence.")
      explain_term;
    Cmd.v
      (Cmd.info "check"
         ~doc:"Validate call data against the recovered signature (ParChecker).")
      check_term;
    Cmd.v
      (Cmd.info "decode"
         ~doc:"Decode call data into typed arguments using the recovered signature.")
      (let calldata =
         let doc = "Hex call data of the invocation to decode." in
         Arg.(
           required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
       in
       Term.(const decode_cmd $ input_arg $ calldata));
    Cmd.v
      (Cmd.info "lift" ~doc:"Lift bytecode to readable IR (Erays+).")
      lift_term;
  ]

let () =
  let info =
    Cmd.info "sigrec" ~version:"1.0.0"
      ~doc:"Automatic recovery of function signatures in smart contracts"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
