(* The metric registry's contract: histograms place and merge exactly,
   quantiles stay within one bucket of the truth, and the OpenMetrics
   exposition is byte-stable and self-consistent.

   - Bucket bounds are strictly ascending and observations land in the
     first bucket whose bound covers them (cumulative `le` semantics).
   - Per-domain shards merged at read equal a single-domain reference,
     and merge_snapshots is associative/commutative.
   - The quantile estimate is the upper bound of the bucket holding the
     exact sample quantile — within one bucket by construction.
   - A fresh registry renders a hand-checked exposition golden, which
     also parses back line by line (families typed once, cumulative
     buckets, `# EOF` terminator).
   - The serve endpoint reports the hardware-clamped worker count and,
     in OpenMetrics form, the engine collector's families. *)

module Mx = Sigrec_metrics.Metrics

let compile fsig = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig)

(* -- buckets ----------------------------------------------------------- *)

let test_bucket_bounds_monotonic () =
  let ascending a =
    let ok = ref true in
    for i = 1 to Array.length a - 1 do
      if a.(i) <= a.(i - 1) then ok := false
    done;
    !ok
  in
  Alcotest.(check bool) "default latency bounds ascend" true
    (ascending Mx.default_latency_buckets);
  Alcotest.(check bool) "default bounds non-empty" true
    (Array.length Mx.default_latency_buckets > 4);
  let b = Mx.log_buckets ~base:10 ~lo:5 ~count:6 in
  Alcotest.(check bool) "log bounds ascend" true (ascending b);
  Alcotest.(check int) "log lo" 5 b.(0);
  Alcotest.(check int) "log growth" 50 b.(1);
  Alcotest.(check int) "log count" 6 (Array.length b)

let test_observe_placement () =
  let reg = Mx.create_registry () in
  let h =
    Mx.histogram ~registry:reg ~buckets:[| 10; 100; 1000 |] ~scale:1.0
      "placement"
  in
  (* one value per region: each bucket holds v <= bound, > previous *)
  List.iter (Mx.observe h) [ 1; 10; 11; 100; 1000; 1001 ];
  let s = Mx.snapshot h in
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 2; 1; 1 |] s.buckets;
  Alcotest.(check int) "count" 6 s.Mx.count;
  Alcotest.(check int) "sum" 2123 s.Mx.sum;
  Alcotest.(check (array int)) "bounds preserved" [| 10; 100; 1000 |]
    s.Mx.bounds

(* -- shard merge ------------------------------------------------------- *)

(* java.util.Random's LCG multiplier — 6364136223846793005 would
   overflow OCaml's 63-bit int *)
let lcg seed =
  let st = ref seed in
  fun () ->
    st := (!st * 25214903917) + 11;
    !st land max_int mod 100_000_000

let test_shard_merge_matches_sequential () =
  let n = 40_000 and shards = 4 in
  let reg = Mx.create_registry () in
  let seq = Mx.histogram ~registry:reg "seq" in
  let par = Mx.histogram ~registry:reg "par" in
  let next = lcg 42 in
  let values = Array.init n (fun _ -> next ()) in
  Array.iter (Mx.observe seq) values;
  let chunk = n / shards in
  Sigrec.Pool.ensure shards;
  let tasks =
    List.init shards (fun s () ->
        for i = s * chunk to ((s + 1) * chunk) - 1 do
          Mx.observe par values.(i)
        done)
  in
  Sigrec.Pool.await (Sigrec.Pool.submit tasks);
  let a = Mx.snapshot seq and b = Mx.snapshot par in
  Alcotest.(check (array int)) "buckets merge exactly" a.Mx.buckets b.Mx.buckets;
  Alcotest.(check int) "sums equal" a.Mx.sum b.Mx.sum;
  Alcotest.(check int) "counts equal" a.Mx.count b.Mx.count

let test_merge_snapshots_associative () =
  let reg = Mx.create_registry () in
  let mk name vals =
    let h = Mx.histogram ~registry:reg ~buckets:[| 10; 100 |] name in
    List.iter (Mx.observe h) vals;
    Mx.snapshot h
  in
  let a = mk "a" [ 1; 5; 200 ]
  and b = mk "b" [ 50; 60 ]
  and c = mk "c" [ 2; 101; 300; 7 ] in
  let l = Mx.merge_snapshots (Mx.merge_snapshots a b) c in
  let r = Mx.merge_snapshots a (Mx.merge_snapshots b c) in
  Alcotest.(check (array int)) "associative buckets" l.Mx.buckets r.Mx.buckets;
  Alcotest.(check int) "associative sum" l.Mx.sum r.Mx.sum;
  let ab = Mx.merge_snapshots a b and ba = Mx.merge_snapshots b a in
  Alcotest.(check (array int)) "commutative buckets" ab.Mx.buckets ba.Mx.buckets;
  Alcotest.(check int) "total count" 9 l.Mx.count

(* -- quantiles --------------------------------------------------------- *)

let test_quantile_within_one_bucket () =
  let reg = Mx.create_registry () in
  let bounds = Mx.log_buckets ~base:4 ~lo:16 ~count:10 in
  let h = Mx.histogram ~registry:reg ~buckets:bounds "q" in
  let next = lcg 7 in
  let n = 5_000 in
  let values = Array.init n (fun _ -> (next () mod 1_000_000) + 1) in
  Array.iter (Mx.observe h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let s = Mx.snapshot h in
  (* the bucket that holds a value v: first bound >= v, else overflow *)
  let bucket_of v =
    let rec go i =
      if i >= Array.length bounds then i
      else if v <= bounds.(i) then i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun q ->
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let exact = sorted.(rank - 1) in
      (* quantile answers in the conventional ns→s scale *)
      let estimate_ns = Mx.quantile s q *. 1e9 in
      let est_bucket =
        if Float.is_integer estimate_ns then bucket_of (int_of_float estimate_ns)
        else Array.length bounds
      in
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f estimate is the exact sample's bucket" q)
        (bucket_of exact) est_bucket)
    [ 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check bool) "empty snapshot answers nan" true
    (Float.is_nan
       (Mx.quantile
          (Mx.snapshot (Mx.histogram ~registry:reg ~buckets:bounds "empty"))
          0.5))

(* -- exposition -------------------------------------------------------- *)

let exposition_golden =
  String.concat "\n"
    [
      "# HELP t_requests handled requests";
      "# TYPE t_requests counter";
      "t_requests_total 3";
      "# TYPE t_temp gauge";
      "t_temp{k=\"v\"} 1.5";
      "# TYPE t_sizes histogram";
      "t_sizes_bucket{le=\"10\"} 1";
      "t_sizes_bucket{le=\"100\"} 2";
      "t_sizes_bucket{le=\"+Inf\"} 3";
      "t_sizes_sum 555";
      "t_sizes_count 3";
      "# EOF";
      "";
    ]

let test_exposition_golden () =
  let reg = Mx.create_registry () in
  let c = Mx.counter ~registry:reg ~help:"handled requests" "t_requests" in
  Mx.inc c;
  Mx.add c 2;
  Mx.set_gauge (Mx.gauge ~registry:reg ~labels:[ ("k", "v") ] "t_temp") 1.5;
  let h =
    Mx.histogram ~registry:reg ~buckets:[| 10; 100 |] ~scale:1.0 "t_sizes"
  in
  List.iter (Mx.observe h) [ 5; 50; 500 ];
  Alcotest.(check string) "exposition byte-stable" exposition_golden
    (Mx.expose ~registry:reg ());
  (* parse it back: every family typed exactly once, buckets cumulative *)
  let lines = String.split_on_char '\n' (Mx.expose ~registry:reg ()) in
  let type_lines =
    List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
      lines
  in
  Alcotest.(check int) "three families typed" 3 (List.length type_lines);
  Alcotest.(check int) "families typed once" 3
    (List.length (List.sort_uniq compare type_lines));
  Alcotest.(check string) "terminator" "# EOF"
    (List.nth lines (List.length lines - 2))

let test_collector_replacement () =
  let reg = Mx.create_registry () in
  Mx.register_collector ~registry:reg ~name:"x" (fun () ->
      "# TYPE x_old gauge\nx_old 1\n");
  Mx.register_collector ~registry:reg ~name:"x" (fun () ->
      "# TYPE x_new gauge\nx_new 2\n");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let text = Mx.expose ~registry:reg () in
  Alcotest.(check bool) "replacement rendered" true (contains "x_new 2" text);
  Alcotest.(check bool) "replaced chunk gone" false (contains "x_old" text)

(* -- top-K ring -------------------------------------------------------- *)

let test_top_ring () =
  Mx.Top.reset ();
  for i = 1 to Mx.Top.capacity + 5 do
    Mx.Top.record
      ~key:(Printf.sprintf "c%02d" i)
      ~elapsed_ns:(i * 100)
      ~detail:[ ("lift_ns", i) ]
  done;
  let entries = Mx.Top.slowest () in
  Alcotest.(check int) "bounded at capacity" Mx.Top.capacity
    (List.length entries);
  Alcotest.(check string) "slowest first"
    (Printf.sprintf "c%02d" (Mx.Top.capacity + 5))
    (List.hd entries).Mx.Top.key;
  (* duplicate keys keep the slower observation *)
  Mx.Top.record ~key:"c21" ~elapsed_ns:1 ~detail:[];
  Alcotest.(check int) "slower duplicate kept" 2100
    (List.hd (Mx.Top.slowest ())).Mx.Top.elapsed_ns;
  Mx.Top.reset ()

(* -- serve surface ----------------------------------------------------- *)

let handle t line = (Sigrec.Serve.handle_line t line).Sigrec.Serve.response

let parse_exn line =
  match Sigrec.Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response: %s" e

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_serve_workers_field () =
  let t = Sigrec.Serve.create Sigrec.Engine.Config.default in
  let metrics = parse_exn (handle t {|{"id":1,"op":"metrics"}|}) in
  let int_field k =
    Option.bind (Sigrec.Json.member k metrics) Sigrec.Json.to_int_opt
  in
  Alcotest.(check (option int)) "workers = effective, hardware-clamped jobs"
    (Some (Sigrec.Engine.effective_jobs (Sigrec.Serve.engine t)))
    (int_field "workers");
  Alcotest.(check (option int)) "unbounded cache capacity reported" (Some 0)
    (int_field "cache_capacity")

let test_serve_openmetrics () =
  let t = Sigrec.Serve.create Sigrec.Engine.Config.default in
  Mx.enable ();
  Fun.protect
    ~finally:(fun () ->
      Mx.disable ();
      Mx.reset ())
    (fun () ->
      let code = compile (Abi.Funsig.make "transfer" [ Abi.Abity.Address ]) in
      let (_ : string) =
        handle t
          (Printf.sprintf {|{"id":1,"op":"recover","codes":["0x%s"]}|}
             (Evm.Hex.encode code))
      in
      let reply =
        parse_exn (handle t {|{"id":2,"op":"metrics","format":"openmetrics"}|})
      in
      let exposition =
        match Sigrec.Json.member "exposition" reply with
        | Some (Sigrec.Json.Str s) -> s
        | _ -> Alcotest.fail "no exposition string in reply"
      in
      List.iter
        (fun family ->
          Alcotest.(check bool)
            (Printf.sprintf "exposition carries %s" family)
            true
            (contains family exposition))
        [
          "sigrec_phase_duration_seconds";
          "sigrec_request_duration_seconds";
          "sigrec_gc_heap_bytes";
          "sigrec_lru_entries";
          "sigrec_pool_workers";
          "sigrec_serve_requests_total";
          "sigrec_cache_misses_total";
          "# EOF";
        ];
      (* the top ring saw the analysis the recover request ran *)
      let top = parse_exn (handle t {|{"id":3,"op":"metrics","top":true}|}) in
      match Sigrec.Json.member "slowest" top with
      | Some (Sigrec.Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "top ring empty after a fresh analysis")

let suite =
  [
    Alcotest.test_case "bucket bounds monotonic" `Quick
      test_bucket_bounds_monotonic;
    Alcotest.test_case "observe placement" `Quick test_observe_placement;
    Alcotest.test_case "shard merge matches sequential" `Quick
      test_shard_merge_matches_sequential;
    Alcotest.test_case "merge snapshots associative" `Quick
      test_merge_snapshots_associative;
    Alcotest.test_case "quantile within one bucket" `Quick
      test_quantile_within_one_bucket;
    Alcotest.test_case "exposition golden" `Quick test_exposition_golden;
    Alcotest.test_case "collector replacement" `Quick
      test_collector_replacement;
    Alcotest.test_case "top-K ring" `Quick test_top_ring;
    Alcotest.test_case "serve workers field" `Quick test_serve_workers_field;
    Alcotest.test_case "serve openmetrics exposition" `Quick
      test_serve_openmetrics;
  ]
