(* Token-standard interface classification: the spec matcher against
   compiled ground truth, the §5.2 type-compatibility relaxation, and
   the hostile cases — selector collisions with genuinely wrong types,
   fallback-only contracts, budget-starved recoveries — none of which
   may ever produce a false exact verdict. *)

open Abi.Abity
module C = Sigrec_classify.Classify
module Funsig = Abi.Funsig

let engine ?config () =
  let config =
    Option.value config ~default:Sigrec.Engine.Config.default
  in
  Sigrec.Engine.make config

let spec name = Option.get (C.spec_by_name name)

let required_sigs name =
  List.map (fun (m : C.member) -> m.C.fsig) (C.required_members (spec name))

(* Compile a contract carrying exactly [fns] (plus token-shaped
   storage, so every body has state to touch). *)
let compile_fns fns =
  Solc.Compile.compile
    {
      Solc.Compile.fns;
      version = Solc.Version.latest_solidity;
      storage = [ Solc.Lang.svalue 0; Solc.Lang.smapping 1 ];
    }

let compile_sigs sigs = compile_fns (List.map Solc.Lang.fn_of_sig sigs)

let best_level (v : C.verdict) =
  match v.C.best with Some b -> Some b.C.level | None -> None

let classify_code ?config code =
  (Sigrec.Engine.classify (engine ?config ()) code).Sigrec.Engine.verdict

(* -- §5.2 type-compatibility relaxation ---------------------------------- *)

let test_compatible () =
  let yes a b = Alcotest.(check bool) "compatible" true (C.compatible a b) in
  let no a b = Alcotest.(check bool) "incompatible" false (C.compatible a b) in
  yes (Uint 256) (Uint 256);
  yes (Uint 256) (Uint 128);
  yes (Int 256) (Int 8);
  yes Address (Uint 160);
  yes (Uint 160) Address;
  yes Bytes String_t;
  yes String_t Bytes;
  yes (Bytes_n 32) (Uint 256);
  yes (Uint 256) (Bytes_n 32);
  yes (Darray (Uint 256)) (Darray (Uint 64));
  yes (Sarray (Address, 3)) (Sarray (Uint 160, 3));
  (* anything beyond the documented §5.2 losses is a real mismatch *)
  no Address (Uint 8);
  no Address Bool;
  no (Uint 256) Address;
  no (Bytes_n 4) (Uint 256);
  no Bool (Uint 256);
  no (Darray (Uint 256)) (Sarray (Uint 256, 2));
  no (Sarray (Uint 256, 2)) (Sarray (Uint 256, 3))

(* -- exact conformance and the verdict LRU ------------------------------- *)

let test_exact_erc20 () =
  let code = compile_sigs (required_sigs "ERC-20") in
  let e = engine () in
  let r = Sigrec.Engine.classify e code in
  let v = r.Sigrec.Engine.verdict in
  Alcotest.(check string) "label" "ERC-20" (C.label v);
  Alcotest.(check bool) "exact" true (best_level v = Some C.Exact);
  Alcotest.(check bool) "cold verdict" false r.Sigrec.Engine.classify_from_cache;
  let r2 = Sigrec.Engine.classify e code in
  Alcotest.(check bool) "warm verdict" true r2.Sigrec.Engine.classify_from_cache;
  Alcotest.(check string) "warm label" "ERC-20"
    (C.label r2.Sigrec.Engine.verdict);
  Alcotest.(check bool) "verdict cache hit counted" true
    (Sigrec.Stats.classify_cache_hits (Sigrec.Engine.stats e) > 0)

let test_relaxed_still_exact () =
  (* a §5.2-convertible cast on one parameter (declared uint256, body
     uses uint128) recovers as uint128 — compatible, so still exact *)
  let target = Funsig.make "transfer" [ Address; Uint 256 ] in
  let converted =
    Solc.Lang.fn target
      [
        Solc.Lang.param Address;
        Solc.Lang.param ~quirk:(Solc.Lang.Converted (Uint 128)) (Uint 256);
      ]
  in
  let rest =
    List.filter
      (fun f -> not (Funsig.equal f target))
      (required_sigs "ERC-20")
  in
  let code = compile_fns (List.map Solc.Lang.fn_of_sig rest @ [ converted ]) in
  let v = classify_code code in
  Alcotest.(check string) "label" "ERC-20" (C.label v);
  let best = Option.get v.C.best in
  Alcotest.(check bool) "exact through relaxation" true
    (best.C.level = C.Exact && best.C.relaxed > 0)

(* -- demotion: a dropped required member is never papered over ----------- *)

let test_dropped_member_demotes () =
  let dropped = Funsig.make "transfer" [ Address; Uint 256 ] in
  let kept =
    List.filter
      (fun f -> not (Funsig.equal f dropped))
      (required_sigs "ERC-20")
  in
  let v = classify_code (compile_sigs kept) in
  Alcotest.(check string) "label" "ERC-20 (partial)" (C.label v);
  let best = Option.get v.C.best in
  Alcotest.(check (list string))
    "missing lists the dropped member"
    [ Funsig.canonical dropped ]
    best.C.missing;
  Alcotest.(check bool) "never exact" true
    (List.for_all (fun r -> r.C.level <> C.Exact) v.C.results)

(* -- hostile: selector collision with genuinely wrong types -------------- *)

let test_selector_collision_never_exact () =
  (* same 4-byte id as transfer(address,uint256) — the declared types
     fix the selector — but the body reads the first parameter as a
     uint8, which is outside every §5.2 tolerance, so recovery reports
     incompatible types *)
  let target = Funsig.make "transfer" [ Address; Uint 256 ] in
  let collided =
    Solc.Lang.fn target
      [
        Solc.Lang.param ~quirk:(Solc.Lang.Converted (Uint 8)) Address;
        Solc.Lang.param (Uint 256);
      ]
  in
  let rest =
    List.filter
      (fun f -> not (Funsig.equal f target))
      (required_sigs "ERC-20")
  in
  let code = compile_fns (List.map Solc.Lang.fn_of_sig rest @ [ collided ]) in
  let v = classify_code code in
  let best = Option.get v.C.best in
  Alcotest.(check string) "demoted to partial" "ERC-20 (partial)" (C.label v);
  Alcotest.(check (list string))
    "collision reported as mismatch"
    [ Funsig.canonical target ]
    best.C.mismatched;
  Alcotest.(check bool) "never exact" true
    (List.for_all (fun r -> r.C.level <> C.Exact) v.C.results)

(* -- hostile: nothing to classify ---------------------------------------- *)

let test_fallback_only_unknown () =
  (* a bare STOP has no dispatcher at all *)
  let v = classify_code "\x00" in
  Alcotest.(check string) "label" "unknown" (C.label v);
  Alcotest.(check bool) "no best" true (v.C.best = None)

let test_non_token_unknown () =
  let sigs =
    [
      Funsig.make "frobnicate" [ Uint 256 ];
      Funsig.make "quux" [ Bool; Bytes_n 8 ];
    ]
  in
  let v = classify_code (compile_sigs sigs) in
  Alcotest.(check string) "label" "unknown" (C.label v);
  Alcotest.(check bool) "nothing matched exactly" true
    (List.for_all (fun r -> r.C.level = C.No_match) v.C.results)

(* -- hostile: budget-starved recovery ------------------------------------ *)

let test_budget_exhausted_never_exact () =
  let code = compile_sigs (required_sigs "ERC-20") in
  let starved =
    {
      Symex.Exec.max_paths = 1;
      Symex.Exec.max_steps = 4;
      Symex.Exec.max_forks_per_pc = 0;
    }
  in
  let config = Sigrec.Engine.Config.(default |> with_budget starved) in
  let e = engine ~config () in
  let report = Sigrec.Engine.recover e code in
  (* precondition: the starved run really is budget-limited *)
  Alcotest.(check bool) "recovery was truncated" true
    (List.exists
       (function Sigrec.Engine.Budget_exhausted _ -> true | _ -> false)
       report.Sigrec.Engine.outcomes);
  let v = (Sigrec.Engine.classify e code).Sigrec.Engine.verdict in
  Alcotest.(check bool) "truncated evidence never classifies exact" true
    (List.for_all (fun r -> r.C.level <> C.Exact) v.C.results);
  (* the partial evidence still lends partial credit *)
  Alcotest.(check string) "still recognized partially" "ERC-20 (partial)"
    (C.label v)

let test_bare_selectors_partial_only () =
  (* dispatcher-only evidence (per-function analysis failures) counts
     toward partial conformance, never exact *)
  let evs =
    List.map (fun f -> C.bare (Funsig.selector f)) (required_sigs "ERC-20")
  in
  let v = C.run evs in
  Alcotest.(check string) "label" "ERC-20 (partial)" (C.label v);
  let best = Option.get v.C.best in
  Alcotest.(check int) "all members corroborated" 6 best.C.corroborated;
  Alcotest.(check bool) "never exact" true (best.C.level <> C.Exact)

(* -- behavioural corroboration ------------------------------------------- *)

let test_probe_corroborates_withheld_member () =
  (* the contract implements full ERC-20, but we withhold transfer's
     recovery evidence: the near-miss probe must find the member in the
     dispatcher and corroborate it — raising the match count without
     ever upgrading to exact *)
  let code = compile_sigs (required_sigs "ERC-20") in
  let withheld = Funsig.selector (Funsig.make "transfer" [ Address; Uint 256 ]) in
  let report = Sigrec.Engine.recover (engine ()) code in
  let evs =
    List.filter
      (fun ev -> ev.C.ev_selector <> withheld)
      (Sigrec.Engine.evidence_of_report report)
  in
  let v = C.run ~probe:(C.probe_dispatch ~code) evs in
  Alcotest.(check bool) "probes ran" true (v.C.probes_run > 0);
  let best = Option.get v.C.best in
  Alcotest.(check string) "label" "ERC-20 (partial)" (C.label v);
  Alcotest.(check int) "all six members counted" 6 best.C.required_matched;
  Alcotest.(check int) "the withheld one is corroborated" 1 best.C.corroborated;
  (* control: without the probe the member stays missing *)
  let v0 = C.run evs in
  Alcotest.(check int) "without probe: five members"
    5 (Option.get v0.C.best).C.required_matched

let test_probe_rejects_absent_member () =
  (* drop transfer from the contract entirely: the probe must not
     corroborate a member the dispatcher does not have *)
  let dropped = Funsig.make "transfer" [ Address; Uint 256 ] in
  let kept =
    List.filter
      (fun f -> not (Funsig.equal f dropped))
      (required_sigs "ERC-20")
  in
  let code = compile_sigs kept in
  let report = Sigrec.Engine.recover (engine ()) code in
  let v =
    C.run ~probe:(C.probe_dispatch ~code)
      (Sigrec.Engine.evidence_of_report report)
  in
  let best = Option.get v.C.best in
  Alcotest.(check int) "five members only" 5 best.C.required_matched;
  Alcotest.(check (list string))
    "dropped member still missing"
    [ Funsig.canonical dropped ]
    best.C.missing

(* -- lazy layout: forced for tie-breaks only ----------------------------- *)

(* Evidence matching 3/6 of ERC-20 and 5/10 of ERC-721 — same level
   (partial), same required-match ratio — via their shared members plus
   two 721-only ones. *)
let tied_evidence () =
  let shared =
    [
      Funsig.make "balanceOf" [ Address ];
      Funsig.make "transferFrom" [ Address; Address; Uint 256 ];
      Funsig.make "approve" [ Address; Uint 256 ];
    ]
  in
  let erc721_only =
    [ Funsig.make "ownerOf" [ Uint 256 ]; Funsig.make "getApproved" [ Uint 256 ] ]
  in
  List.map
    (fun f ->
      C.evidence ~selector:(Funsig.selector f) f.Funsig.params)
    (shared @ erc721_only)

let test_layout_lazy_on_clear_winner () =
  let forced = ref false in
  let layout () =
    forced := true;
    Sigrec_layout.Layout.recover (compile_sigs (required_sigs "ERC-20"))
  in
  let evs =
    List.map
      (fun f -> C.evidence ~selector:(Funsig.selector f) f.Funsig.params)
      (required_sigs "ERC-20")
  in
  let v = C.run ~layout evs in
  Alcotest.(check string) "exact without the layout pass" "ERC-20" (C.label v);
  Alcotest.(check bool) "layout never forced" false !forced

let test_layout_forced_breaks_tie () =
  let forced = ref false in
  let layout () =
    forced := true;
    (* any layout with a mapping slot *)
    Sigrec_layout.Layout.recover (compile_sigs (required_sigs "ERC-20"))
  in
  let v = C.run ~layout (tied_evidence ()) in
  Alcotest.(check bool) "layout forced on the tie" true !forced;
  let best = Option.get v.C.best in
  (* both contenders want mapping state, so support marks them both and
     the absolute match count prefers ERC-721 (5 members over 3) *)
  Alcotest.(check string) "tie resolved" "ERC-721 (partial)" (C.label v);
  Alcotest.(check bool) "typed-state support recorded" true
    best.C.layout_support;
  (* control: no layout available — same winner, no support mark *)
  let v0 = C.run (tied_evidence ()) in
  Alcotest.(check bool) "no support without layout" false
    (Option.get v0.C.best).C.layout_support

let suite =
  [
    Alcotest.test_case "§5.2 type compatibility" `Quick test_compatible;
    Alcotest.test_case "exact ERC-20, verdict LRU" `Quick test_exact_erc20;
    Alcotest.test_case "relaxed types still exact" `Quick
      test_relaxed_still_exact;
    Alcotest.test_case "dropped member demotes to partial" `Quick
      test_dropped_member_demotes;
    Alcotest.test_case "selector collision never exact" `Quick
      test_selector_collision_never_exact;
    Alcotest.test_case "fallback-only contract is unknown" `Quick
      test_fallback_only_unknown;
    Alcotest.test_case "non-token is unknown" `Quick test_non_token_unknown;
    Alcotest.test_case "budget exhaustion never exact" `Quick
      test_budget_exhausted_never_exact;
    Alcotest.test_case "bare selectors lend partial credit only" `Quick
      test_bare_selectors_partial_only;
    Alcotest.test_case "probe corroborates a withheld member" `Quick
      test_probe_corroborates_withheld_member;
    Alcotest.test_case "probe rejects an absent member" `Quick
      test_probe_rejects_absent_member;
    Alcotest.test_case "layout lazy on a clear winner" `Quick
      test_layout_lazy_on_clear_winner;
    Alcotest.test_case "layout forced to break a tie" `Quick
      test_layout_forced_breaks_tie;
  ]
