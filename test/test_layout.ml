(* Storage-layout recovery: the static pass against the generator's
   ground-truth state-variable declarations, across compiler versions
   (SHR/SHL vs the pre-0.5 DIV/MUL shift idiom). *)

open Evm
module Lang = Solc.Lang
module Layout = Sigrec_layout.Layout

let expected_decl (v : Lang.svar) =
  match v.Lang.kind with
  | Lang.Svalue [ 256 ] -> Layout.Word
  | Lang.Svalue ws ->
    let lanes = Option.get (Solc.Storage.truth_members ws) in
    Layout.Packed
      (List.map
         (fun (bit_offset, bit_width) -> { Layout.bit_offset; bit_width })
         lanes)
  | Lang.Smapping -> Layout.Mapping
  | Lang.Sarray -> Layout.Dyn_array

let expected_of_svars svars =
  List.map
    (fun (v : Lang.svar) -> (U256.of_int v.Lang.slot, expected_decl v))
    svars
  |> List.sort (fun (a, _) (b, _) -> U256.compare a b)

let recovered_shape (t : Layout.t) =
  List.map (fun (e : Layout.entry) -> (e.Layout.slot, e.Layout.decl)) t.entries

let show_shape shape =
  String.concat "; "
    (List.map
       (fun (slot, decl) ->
         Printf.sprintf "0x%s:%s" (U256.to_hex slot)
           (Layout.decl_to_string decl))
       shape)

let contract_for version svars =
  let fsig = Abi.Funsig.make "touch" [ Abi.Abity.Uint 256 ] in
  {
    Solc.Compile.fns = [ Solc.Lang.fn_of_sig fsig ];
    version;
    storage = svars;
  }

let check_recovers ?(contract = contract_for) version svars =
  let code = Solc.Compile.compile (contract version svars) in
  let layout = Layout.recover code in
  let got = recovered_shape layout in
  let want = expected_of_svars svars in
  Alcotest.(check string)
    (Printf.sprintf "layout @ %s" version.Solc.Version.name)
    (show_shape want) (show_shape got);
  Alcotest.(check bool) "analysis complete" true layout.Layout.complete;
  Alcotest.(check int) "no unresolved storage ops" 0 layout.Layout.unknown_ops

let all_kinds =
  [
    Lang.svalue 0;
    Lang.svalue ~widths:[ 8; 160; 88 ] 1;
    Lang.smapping 2;
    Lang.sarray 3;
  ]

let shr_version = Solc.Version.latest_solidity

let div_version =
  List.find
    (fun (v : Solc.Version.t) ->
      (not v.Solc.Version.shr_dispatch) && not v.Solc.Version.optimize)
    Solc.Version.solidity_versions

let test_all_kinds_shr () = check_recovers shr_version all_kinds
let test_all_kinds_div () = check_recovers div_version all_kinds

let test_word () = check_recovers shr_version [ Lang.svalue 7 ]

let test_packed_two_lanes_filling_word () =
  (* top lane ends at bit 256: its write clears with a low-run keep
     mask, exercising the composite-drop path *)
  check_recovers shr_version [ Lang.svalue ~widths:[ 96; 160 ] 0 ]

let test_packed_three_lanes_filling_word () =
  check_recovers shr_version [ Lang.svalue ~widths:[ 8; 120; 128 ] 4 ];
  check_recovers div_version [ Lang.svalue ~widths:[ 8; 120; 128 ] 4 ]

let test_packed_partial_word () =
  (* high bits unused: clear masks keep them, so no composite ever
     forms *)
  check_recovers shr_version [ Lang.svalue ~widths:[ 8; 120 ] 2 ];
  check_recovers div_version [ Lang.svalue ~widths:[ 8; 8; 16 ] 3 ]

let test_single_subword_lane () =
  check_recovers shr_version [ Lang.svalue ~widths:[ 8 ] 1 ]

let test_mapping_only () = check_recovers shr_version [ Lang.smapping 5 ]
let test_array_only () = check_recovers shr_version [ Lang.sarray 6 ]

let test_fallback_contract () =
  (* no functions: the storage accesses live in the fallback block *)
  let contract version svars =
    { Solc.Compile.fns = []; version; storage = svars }
  in
  check_recovers ~contract shr_version all_kinds

let test_many_functions_round_robin () =
  (* more svars than functions: round-robin spreads them across bodies
     and the recovered layout is still the union *)
  let contract version svars =
    let fns =
      List.map
        (fun name ->
          Solc.Lang.fn_of_sig (Abi.Funsig.make name [ Abi.Abity.Uint 256 ]))
        [ "alpha"; "beta"; "gamma" ]
    in
    { Solc.Compile.fns = fns; version; storage = svars }
  in
  let svars =
    [
      Lang.svalue 0;
      Lang.smapping 1;
      Lang.sarray 2;
      Lang.svalue ~widths:[ 128; 128 ] 3;
      Lang.svalue 4;
    ]
  in
  check_recovers ~contract shr_version svars

let test_empty_contract () =
  let code =
    Solc.Compile.compile
      {
        Solc.Compile.fns = [ Solc.Lang.fn_of_sig (Abi.Funsig.make "f" []) ];
        version = shr_version;
        storage = [];
      }
  in
  let layout = Layout.recover code in
  Alcotest.(check int) "no slots" 0 (List.length layout.Layout.entries);
  Alcotest.(check int) "no ops" 0 layout.Layout.total_ops

let test_layout_corpus_zero_disagreements () =
  (* the acceptance gate: the static pass agrees with the generator's
     declarations on every contract of the seeded layout corpus *)
  let samples = Solc.Corpus.layout_set ~seed:7 ~n:60 in
  let kinds = Hashtbl.create 4 in
  List.iter
    (fun (s : Solc.Corpus.layout_sample) ->
      let layout = Layout.recover s.Solc.Corpus.lcode in
      let got = recovered_shape layout in
      let want = expected_of_svars s.Solc.Corpus.svars in
      Alcotest.(check string)
        (Printf.sprintf "corpus layout @ %s [%s]"
           s.Solc.Corpus.lversion.Solc.Version.name
           (String.concat " " (List.map Lang.show_svar s.Solc.Corpus.svars)))
        (show_shape want) (show_shape got);
      List.iter
        (fun (v : Lang.svar) ->
          let k =
            match v.Lang.kind with
            | Lang.Svalue [ 256 ] -> "word"
            | Lang.Svalue _ -> "packed"
            | Lang.Smapping -> "mapping"
            | Lang.Sarray -> "array"
          in
          Hashtbl.replace kinds k ())
        s.Solc.Corpus.svars)
    samples;
  (* the corpus must actually represent all four declaration kinds *)
  Alcotest.(check int) "all four kinds represented" 4 (Hashtbl.length kinds)

let test_lint_layout_agrees () =
  (* the execution differential: interpreter-observed SSTORE traffic
     is fully explained by the recovered layout on seeded corpus
     contracts, and writes are actually exercised along the way *)
  let samples = Solc.Corpus.layout_set ~seed:31 ~n:12 in
  let writes = ref 0 in
  List.iter
    (fun (s : Solc.Corpus.layout_sample) ->
      let v = Sigrec.Lint.check_layout s.Solc.Corpus.lcode in
      if not (Sigrec.Lint.layout_agree v) then
        Alcotest.failf "layout lint disagreement @ %s [%s]: %s"
          s.Solc.Corpus.lversion.Solc.Version.name
          (String.concat " " (List.map Lang.show_svar s.Solc.Corpus.svars))
          (String.concat "; "
             (List.map Sigrec.Lint.layout_finding_to_string
                v.Sigrec.Lint.layout_findings));
      Alcotest.(check int)
        "every dispatcher selector executed"
        v.Sigrec.Lint.selectors_run v.Sigrec.Lint.selectors_ok;
      writes := !writes + v.Sigrec.Lint.writes_observed)
    samples;
  Alcotest.(check bool) "the differential exercised concrete writes" true
    (!writes > 0)

let test_equal_shape () =
  let code v = Solc.Compile.compile (contract_for v all_kinds) in
  let a = Layout.recover (code shr_version) in
  let b = Layout.recover (code div_version) in
  Alcotest.(check bool)
    "same shape across shift idioms" true
    (Layout.equal_shape a b);
  let c = Layout.recover (code shr_version) in
  Alcotest.(check bool) "reflexive" true (Layout.equal_shape a c)

let suite =
  [
    Alcotest.test_case "all kinds, SHR idiom" `Quick test_all_kinds_shr;
    Alcotest.test_case "all kinds, DIV idiom" `Quick test_all_kinds_div;
    Alcotest.test_case "plain word" `Quick test_word;
    Alcotest.test_case "packed: two lanes filling the word" `Quick
      test_packed_two_lanes_filling_word;
    Alcotest.test_case "packed: three lanes filling the word" `Quick
      test_packed_three_lanes_filling_word;
    Alcotest.test_case "packed: partial word" `Quick test_packed_partial_word;
    Alcotest.test_case "packed: single sub-word lane" `Quick
      test_single_subword_lane;
    Alcotest.test_case "mapping only" `Quick test_mapping_only;
    Alcotest.test_case "dynamic array only" `Quick test_array_only;
    Alcotest.test_case "storage in the fallback" `Quick test_fallback_contract;
    Alcotest.test_case "round-robin across functions" `Quick
      test_many_functions_round_robin;
    Alcotest.test_case "contract without storage" `Quick test_empty_contract;
    Alcotest.test_case "corpus: zero disagreements vs ground truth" `Quick
      test_layout_corpus_zero_disagreements;
    Alcotest.test_case "lint: differential agrees on corpus" `Quick
      test_lint_layout_agrees;
    Alcotest.test_case "equal_shape across idioms" `Quick test_equal_shape;
  ]
