(* Negative-input coverage for Input.parse_batch: the tolerant batch
   parser must skip exactly the malformed lines, report them with the
   right 1-based line numbers, and never hand an empty bytecode
   downstream. *)

let parse = Sigrec.Input.parse_batch

let check_batch name text ~codes ~skipped =
  let b = parse text in
  Alcotest.(check (list string)) (name ^ ": codes") codes
    (List.map (fun c -> "0x" ^ Evm.Hex.encode c) b.Sigrec.Input.codes);
  Alcotest.(check (list int)) (name ^ ": skipped lines") skipped
    (List.map fst b.Sigrec.Input.skipped)

let basics () =
  check_batch "two plain lines" "0x6001\n6002\n" ~codes:[ "0x6001"; "0x6002" ]
    ~skipped:[];
  check_batch "comments and blanks skipped"
    "# header\n\n0x6001\n   \n# tail\n" ~codes:[ "0x6001" ] ~skipped:[]

let bare_prefix_rejected () =
  (* "0x" decodes to zero bytes; it must be a reported skip, not an
     empty contract *)
  check_batch "bare 0x" "0x\n0x6001\n" ~codes:[ "0x6001" ] ~skipped:[ 1 ];
  (match Sigrec.Input.parse_line "0x" with
  | `Bad reason ->
    Alcotest.(check string) "reason" "empty bytecode" reason
  | `Blank -> Alcotest.fail "bare 0x classified as blank"
  | `Code _ -> Alcotest.fail "bare 0x classified as bytecode")

let odd_length_rejected () =
  check_batch "odd-length after 0x strip" "0xabc\n6001\n" ~codes:[ "0x6001" ]
    ~skipped:[ 1 ];
  check_batch "odd-length without prefix" "abc\n" ~codes:[] ~skipped:[ 1 ]

let bad_digits_rejected () =
  check_batch "non-hex digits" "0x60zz\n" ~codes:[] ~skipped:[ 1 ]

let line_numbers_survive_noise () =
  (* skipped-line numbers are positions in the original file, counting
     blanks and comments *)
  check_batch "numbering with noise" "# c\n\n0x\n0x6001\nxyz\n"
    ~codes:[ "0x6001" ] ~skipped:[ 3; 5 ]

let crlf_and_eof () =
  check_batch "CRLF line endings" "0x6001\r\n0x6002\r\n"
    ~codes:[ "0x6001"; "0x6002" ] ~skipped:[];
  check_batch "trailing blank lines at EOF" "0x6001\n\n\n" ~codes:[ "0x6001" ]
    ~skipped:[];
  check_batch "no final newline" "0x6001\n0x6002" ~codes:[ "0x6001"; "0x6002" ]
    ~skipped:[];
  check_batch "empty file" "" ~codes:[] ~skipped:[];
  check_batch "only a newline" "\n" ~codes:[] ~skipped:[]

(* Generator-driven: render any list of bytecodes to a file with random
   noise (comments, blanks, CRLF, bad rows) interleaved, parse it back,
   and the codes must round-trip in order with exactly the bad rows
   skipped. *)
let batch_round_trip () =
  let rng = Random.State.make [| 0xbadfeed |] in
  for _ = 1 to 100 do
    let n = Random.State.int rng 8 in
    let codes =
      Proptest.Gen.init_in_order n (fun _ ->
          let len = 1 + Random.State.int rng 40 in
          String.init len (fun _ -> Char.chr (Random.State.int rng 256)))
    in
    let buf = Buffer.create 256 in
    let bad = ref 0 in
    List.iter
      (fun code ->
        (* noise before each code line *)
        (match Random.State.int rng 4 with
        | 0 -> Buffer.add_string buf "# comment\n"
        | 1 -> Buffer.add_string buf "\n"
        | 2 ->
          incr bad;
          Buffer.add_string buf
            (match Random.State.int rng 3 with
            | 0 -> "0x\n"
            | 1 -> "0xabc\n"
            | _ -> "nothex!\n")
        | _ -> ());
        let hex = Evm.Hex.encode code in
        let hex = if Random.State.bool rng then "0x" ^ hex else hex in
        Buffer.add_string buf hex;
        Buffer.add_string buf (if Random.State.bool rng then "\r\n" else "\n"))
      codes;
    let b = parse (Buffer.contents buf) in
    Alcotest.(check (list string)) "codes round-trip"
      (List.map Evm.Hex.encode codes)
      (List.map Evm.Hex.encode b.Sigrec.Input.codes);
    Alcotest.(check int) "every planted bad row reported" !bad
      (List.length b.Sigrec.Input.skipped)
  done

(* -- the streaming reader -------------------------------------------- *)

(* Drive fold_reads from an in-memory string, delivering at most
   [chunk] bytes per read, so lines spanning read boundaries are
   exercised down to one byte per read. *)
let fold_string ?warn ?max_line_bytes ~chunk text =
  let pos = ref 0 in
  let read buf =
    let n =
      Stdlib.min chunk
        (Stdlib.min (Bytes.length buf) (String.length text - !pos))
    in
    Bytes.blit_string text !pos buf 0 n;
    pos := !pos + n;
    n
  in
  Sigrec.Input.fold_reads ?warn ?max_line_bytes ~read
    ~f:(fun acc code -> code :: acc)
    []

let check_fold_agrees name ~chunk text =
  let b = parse text in
  let warned = ref [] in
  let codes, totals =
    fold_string
      ~warn:(fun ~line ~reason:_ -> warned := line :: !warned)
      ~chunk text
  in
  Alcotest.(check (list string))
    (Printf.sprintf "%s (chunk %d): codes agree" name chunk)
    (List.map Evm.Hex.encode b.Sigrec.Input.codes)
    (List.map Evm.Hex.encode (List.rev codes));
  Alcotest.(check (list int))
    (Printf.sprintf "%s (chunk %d): skip lines agree" name chunk)
    (List.map fst b.Sigrec.Input.skipped)
    (List.rev !warned);
  Alcotest.(check int)
    (Printf.sprintf "%s (chunk %d): totals.codes" name chunk)
    (List.length b.Sigrec.Input.codes)
    totals.Sigrec.Input.codes;
  Alcotest.(check int)
    (Printf.sprintf "%s (chunk %d): totals.skipped" name chunk)
    (List.length b.Sigrec.Input.skipped)
    totals.Sigrec.Input.skipped

let fold_lines_agrees_with_parse_batch () =
  let fixtures =
    [
      ("plain", "0x6001\n6002\n");
      ("noise", "# header\n\n0x6001\n   \n# tail\n");
      ("bare 0x", "0x\n0x6001\n");
      ("odd length", "0xabc\n6001\n");
      ("bad digits", "0x60zz\n");
      ("numbering", "# c\n\n0x\n0x6001\nxyz\n");
      ("CRLF", "0x6001\r\n0x6002\r\n");
      ("no final newline", "0x6001\n0x6002");
      ("empty", "");
      ("only newline", "\n");
      ("trailing blanks", "0x6001\n\n\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      List.iter
        (fun chunk -> check_fold_agrees name ~chunk text)
        [ 1; 2; 3; 7; 64; 65536 ])
    fixtures

(* Generator-driven agreement: the same noisy batches the round-trip
   test feeds parse_batch, re-read through fold_reads at a random chunk
   size each round. *)
let fold_round_trip () =
  let rng = Random.State.make [| 0xfeedbad |] in
  for round = 1 to 100 do
    let n = Random.State.int rng 8 in
    let buf = Buffer.create 256 in
    for _ = 1 to n do
      (match Random.State.int rng 5 with
      | 0 -> Buffer.add_string buf "# comment\n"
      | 1 -> Buffer.add_string buf "\n"
      | 2 ->
        Buffer.add_string buf
          (match Random.State.int rng 3 with
          | 0 -> "0x\n"
          | 1 -> "0xabc\n"
          | _ -> "nothex!\n")
      | _ -> ());
      let len = 1 + Random.State.int rng 40 in
      let code =
        String.init len (fun _ -> Char.chr (Random.State.int rng 256))
      in
      let hex = Evm.Hex.encode code in
      Buffer.add_string buf (if Random.State.bool rng then "0x" ^ hex else hex);
      Buffer.add_string buf (if Random.State.bool rng then "\r\n" else "\n")
    done;
    let chunk = 1 + Random.State.int rng 96 in
    check_fold_agrees
      (Printf.sprintf "round %d" round)
      ~chunk (Buffer.contents buf)
  done

let oversized_lines_skipped () =
  (* a line over the cap is reported with its line number and never
     delivered; surrounding lines are unaffected. The cap only guards
     lines that would otherwise be buffered, so the reads must be
     smaller than the cap (as they always are under fold_lines, whose
     64 KiB reads sit far below the 4 MiB default cap). *)
  let big = String.make 200 '6' in
  let text = "0x6001\n" ^ big ^ "\n0x6002\n" in
  let warned = ref [] in
  let codes, totals =
    fold_string
      ~warn:(fun ~line ~reason -> warned := (line, reason) :: !warned)
      ~max_line_bytes:64 ~chunk:7 text
  in
  Alcotest.(check (list string)) "neighbors survive" [ "6001"; "6002" ]
    (List.rev_map Evm.Hex.encode codes);
  Alcotest.(check int) "one skip" 1 totals.Sigrec.Input.skipped;
  (match !warned with
  | [ (line, reason) ] ->
    Alcotest.(check int) "reported on its own line" 2 line;
    Alcotest.(check bool) "reason names the cap" true
      (String.length reason > 0)
  | _ -> Alcotest.fail "expected exactly one oversized warning");
  (* an oversized final line without a newline is still reported *)
  let _, totals =
    fold_string ~max_line_bytes:64 ~chunk:7 ("0x6001\n" ^ big)
  in
  Alcotest.(check int) "unterminated oversized line skipped" 1
    totals.Sigrec.Input.skipped;
  Alcotest.(check int) "short line still delivered" 1
    totals.Sigrec.Input.codes

let final_line_exactly_at_cap () =
  (* a final line of exactly [max_line_bytes] with no trailing newline
     sits right on the cap: it must be delivered, not skipped, and the
     streaming read must agree with parse_batch — the cap rejects
     strictly longer lines only *)
  let exact = "0x" ^ String.make 62 '6' in
  Alcotest.(check int) "fixture is cap-sized" 64 (String.length exact);
  List.iter
    (fun (name, text) ->
      let b = parse text in
      List.iter
        (fun chunk ->
          let codes, totals = fold_string ~max_line_bytes:64 ~chunk text in
          Alcotest.(check (list string))
            (Printf.sprintf "%s (chunk %d): codes agree" name chunk)
            (List.map Evm.Hex.encode b.Sigrec.Input.codes)
            (List.rev_map Evm.Hex.encode codes);
          Alcotest.(check int)
            (Printf.sprintf "%s (chunk %d): nothing skipped" name chunk)
            0 totals.Sigrec.Input.skipped)
        [ 1; 7; 63; 64; 65; 65536 ])
    [ ("cap-sized only line", exact); ("after a neighbor", "0x6001\n" ^ exact) ];
  (* one byte past the cap, same unterminated shape, is skipped *)
  let over = "0x" ^ String.make 63 '6' in
  let codes, totals = fold_string ~max_line_bytes:64 ~chunk:7 ("0x6001\n" ^ over) in
  Alcotest.(check (list string)) "neighbor survives" [ "6001" ]
    (List.rev_map Evm.Hex.encode codes);
  Alcotest.(check int) "cap+1 skipped" 1 totals.Sigrec.Input.skipped

let suite =
  [
    ("well-formed lines parse", `Quick, basics);
    ("bare 0x is rejected, not an empty contract", `Quick, bare_prefix_rejected);
    ("odd-length hex is rejected", `Quick, odd_length_rejected);
    ("non-hex digits are rejected", `Quick, bad_digits_rejected);
    ("skip numbering counts noise lines", `Quick, line_numbers_survive_noise);
    ("CRLF, EOF blanks, missing final newline", `Quick, crlf_and_eof);
    ("generated batches round-trip", `Quick, batch_round_trip);
    ( "fold_lines agrees with parse_batch",
      `Quick,
      fold_lines_agrees_with_parse_batch );
    ("generated streams agree with parse_batch", `Quick, fold_round_trip);
    ("oversized lines are skipped, not buffered", `Quick, oversized_lines_skipped);
    ("final line exactly at the cap survives", `Quick, final_line_exactly_at_cap);
  ]
