let () =
  Alcotest.run "sigrec"
    [
      ("u256", Test_u256.suite);
      ("keccak", Test_keccak.suite);
      ("evm-code", Test_evm_code.suite);
      ("machine", Test_machine.suite);
      ("interp", Test_interp.suite);
      ("abi", Test_abi.suite);
      ("decode", Test_decode.suite);
      ("hc", Test_hc.suite);
      ("symex", Test_symex.suite);
      ("solc", Test_solc.suite);
      ("ids", Test_ids.suite);
      ("recover", Test_recover.suite);
      ("foreign", Test_foreign.suite);
      ("robustness", Test_robustness.suite);
      ("aggregate", Test_aggregate.suite);
      ("engine", Test_engine.suite);
      ("static", Test_static.suite);
      ("corpus", Test_corpus.suite);
      ("tools", Test_tools.suite);
      ("input", Test_input.suite);
      ("serve", Test_serve.suite);
      ("pool", Test_pool.suite);
      ("trace", Test_trace.suite);
      ("metrics", Test_metrics.suite);
      ("drift", Test_drift.suite);
      ("proptest", Test_prop.suite);
      ("layout", Test_layout.suite);
      ("classify", Test_classify.suite);
    ]
