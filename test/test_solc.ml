(* The synthetic compiler itself: dispatcher shape, version knobs,
   differential execution between public and external modes, and the
   obfuscation pass. *)

open Evm

let compile_one ?version ?(vis = Abi.Funsig.Public) tys =
  let fsig = Abi.Funsig.make ~visibility:vis "f" tys in
  (fsig, Solc.Compile.compile_fn ?version (Solc.Lang.fn_of_sig fsig))

let ops_of code = List.map (fun i -> i.Disasm.op) (Disasm.disassemble code)

let test_dispatcher_styles () =
  let old = List.hd Solc.Version.solidity_versions in
  let newest = Solc.Version.latest_solidity in
  let _, old_code = compile_one ~version:old [ Abi.Abity.Bool ] in
  let _, new_code = compile_one ~version:newest [ Abi.Abity.Bool ] in
  Alcotest.(check bool) "old uses DIV" true
    (List.mem Opcode.DIV (ops_of old_code));
  Alcotest.(check bool) "old has no SHR dispatch" false
    (Sigrec.Ids.uses_shr_dispatch old_code);
  Alcotest.(check bool) "new uses SHR dispatch" true
    (Sigrec.Ids.uses_shr_dispatch new_code)

let test_mask_emission () =
  (* the documented mask idioms must appear in the bytecode verbatim *)
  let has_push code v =
    List.exists
      (function Opcode.PUSH (_, w) -> U256.equal w v | _ -> false)
      (ops_of code)
  in
  let _, c = compile_one [ Abi.Abity.Uint 64 ] in
  Alcotest.(check bool) "uint64 mask" true (has_push c (U256.ones_low 8));
  let _, c = compile_one [ Abi.Abity.Bytes_n 4 ] in
  Alcotest.(check bool) "bytes4 high mask" true (has_push c (U256.ones_high 4));
  let _, c = compile_one [ Abi.Abity.Address ] in
  Alcotest.(check bool) "address 20-byte mask" true (has_push c (U256.ones_low 20));
  let _, c = compile_one [ Abi.Abity.Int 32 ] in
  Alcotest.(check bool) "int32 signextend" true
    (List.mem Opcode.SIGNEXTEND (ops_of c));
  let _, c = compile_one [ Abi.Abity.Uint 256 ] in
  Alcotest.(check bool) "uint256 unmasked" false
    (List.exists
       (function
         | Opcode.PUSH (_, w) -> U256.equal w (U256.ones_low 16)
         | _ -> false)
       (ops_of c))

let test_public_copies_external_loads () =
  (* public arrays are CALLDATACOPYed; external arrays are loaded on
     demand (paper §2.3.1) *)
  let ty = [ Abi.Abity.Sarray (Abi.Abity.Uint 256, 3) ] in
  let _, pub = compile_one ~vis:Abi.Funsig.Public ty in
  let _, ext = compile_one ~vis:Abi.Funsig.External ty in
  Alcotest.(check bool) "public copies" true
    (List.mem Opcode.CALLDATACOPY (ops_of pub));
  Alcotest.(check bool) "external does not copy" false
    (List.mem Opcode.CALLDATACOPY (ops_of ext))

let test_vyper_range_checks () =
  (* Vyper output uses comparisons, not masks (paper §2.3.2) *)
  let fsig = Abi.Funsig.make ~lang:Abi.Abity.Vyper "f" [ Abi.Abity.Address ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let ops = ops_of code in
  Alcotest.(check bool) "no AND mask after load" false
    (List.exists
       (function
         | Opcode.PUSH (_, w) -> U256.equal w (U256.ones_low 20)
         | _ -> false)
       ops);
  Alcotest.(check bool) "2^160 bound pushed" true
    (List.exists
       (function
         | Opcode.PUSH (_, w) -> U256.equal w (U256.pow2 160)
         | _ -> false)
       ops)

let test_differential_public_external () =
  (* the two visibilities must compute the same observable outcome on
     the same call data *)
  let rng = Random.State.make [| 88 |] in
  let tys =
    [
      [ Abi.Abity.Uint 64; Abi.Abity.Bool ];
      [ Abi.Abity.Darray (Abi.Abity.Uint 8) ];
      [ Abi.Abity.Bytes ];
      [ Abi.Abity.Sarray (Abi.Abity.Uint 256, 2); Abi.Abity.Address ];
    ]
  in
  List.iter
    (fun tys ->
      let fsig_pub, pub = compile_one ~vis:Abi.Funsig.Public tys in
      let _, ext = compile_one ~vis:Abi.Funsig.External tys in
      let args = List.map (Abi.Valgen.value rng) tys in
      let cd =
        Abi.Encode.encode_call ~selector:(Abi.Funsig.selector fsig_pub) tys args
      in
      let a = Interp.execute ~code:pub ~calldata:cd () in
      let b = Interp.execute ~code:ext ~calldata:cd () in
      let tag r =
        match r.Interp.outcome with
        | Interp.Stopped -> "stop"
        | Interp.Returned _ -> "ret"
        | Interp.Reverted _ -> "rev"
        | _ -> "other"
      in
      Alcotest.(check string) "same outcome" (tag a) (tag b))
    tys

let test_version_determinism () =
  let c =
    Solc.Compile.contract_of_sigs [ Abi.Funsig.make "f" [ Abi.Abity.Bool ] ]
  in
  Alcotest.(check string) "compile deterministic"
    (Hex.encode (Solc.Compile.compile c))
    (Hex.encode (Solc.Compile.compile c))

let test_rejects_wrong_language () =
  Alcotest.(check bool) "vyper type in solidity rejected" true
    (try
       ignore
         (Solc.Compile.compile_fn
            (Solc.Lang.fn_of_sig (Abi.Funsig.make "f" [ Abi.Abity.Decimal ])));
       false
     with Invalid_argument _ -> true)

(* -- obfuscation --------------------------------------------------------- *)

let obfuscated_contract level =
  let fsig =
    Abi.Funsig.make "obf" [ Abi.Abity.Uint 32; Abi.Abity.Darray (Abi.Abity.Uint 8) ]
  in
  let contract =
    { Solc.Compile.fns = [ Solc.Lang.fn_of_sig fsig ];
      version = Solc.Version.latest_solidity;
      storage = [] }
  in
  (fsig, Solc.Obfuscate.compile_obfuscated ~level ~seed:99 contract)

let test_obfuscation_preserves_semantics () =
  let rng = Random.State.make [| 12 |] in
  List.iter
    (fun level ->
      let fsig, code = obfuscated_contract level in
      let args = List.map (Abi.Valgen.value rng) fsig.Abi.Funsig.params in
      let cd =
        Abi.Encode.encode_call ~selector:(Abi.Funsig.selector fsig)
          fsig.Abi.Funsig.params args
      in
      let res = Interp.execute ~code ~calldata:cd () in
      match res.Interp.outcome with
      | Interp.Stopped | Interp.Reverted _ -> ()
      | o ->
        Alcotest.failf "level %d broke execution: %a" level Interp.pp_outcome o)
    [ 1; 2; 3 ]

let test_obfuscation_grows_code () =
  let _, plain = obfuscated_contract 0 |> fun (f, _) ->
    (f, Solc.Compile.compile_fn (Solc.Lang.fn_of_sig f))
  in
  let _, obf = obfuscated_contract 2 in
  Alcotest.(check bool) "obfuscated code is larger" true
    (String.length obf > String.length plain)

let test_obfuscation_recoverable_at_low_levels () =
  List.iter
    (fun level ->
      let _fsig, code = obfuscated_contract level in
      match Sigrec.Recover.recover code with
      | [ r ] ->
        Alcotest.(check string)
          (Printf.sprintf "level %d recovery" level)
          "uint32,uint8[]"
          (Sigrec.Recover.type_list r)
      | _ -> Alcotest.failf "level %d: function not found" level)
    [ 1; 2 ]

let test_obfuscation_defeats_pattern_matching () =
  let fsig, code = obfuscated_contract 1 in
  match
    Tools.Baseline.eveem_heuristic ~bytecode:code
      ~selector:(Abi.Funsig.selector fsig)
  with
  | Tools.Baseline.Recovered tys
    when List.length tys = 2
         && List.for_all2 Abi.Abity.equal tys fsig.Abi.Funsig.params ->
    Alcotest.fail "pattern matching should not survive junk insertion"
  | _ -> ()

let suite =
  [
    Alcotest.test_case "dispatcher styles" `Quick test_dispatcher_styles;
    Alcotest.test_case "mask emission" `Quick test_mask_emission;
    Alcotest.test_case "public copies / external loads" `Quick test_public_copies_external_loads;
    Alcotest.test_case "vyper range checks" `Quick test_vyper_range_checks;
    Alcotest.test_case "public/external differential" `Quick test_differential_public_external;
    Alcotest.test_case "compile deterministic" `Quick test_version_determinism;
    Alcotest.test_case "language check" `Quick test_rejects_wrong_language;
    Alcotest.test_case "obfuscation preserves semantics" `Quick test_obfuscation_preserves_semantics;
    Alcotest.test_case "obfuscation grows code" `Quick test_obfuscation_grows_code;
    Alcotest.test_case "obfuscation recoverable (TASE)" `Quick test_obfuscation_recoverable_at_low_levels;
    Alcotest.test_case "obfuscation defeats patterns" `Quick test_obfuscation_defeats_pattern_matching;
  ]
