(* The observability layer's contract: free when off, faithful when on.

   - Disabled probes allocate nothing and recovery output is
     byte-identical with tracing on vs off (the drift invariant that
     lets the instrumentation live in hot paths permanently).
   - The Chrome exporter emits the trace_event shapes Perfetto loads;
     the JSONL exporter round-trips losslessly through its own parser.
   - Ring wrap-around drops the oldest events and counts them.
   - Rule evidence is collected even with tracing off, so `sigrec
     explain` works without a trace file. *)

module Tr = Sigrec_trace.Trace
module Ex = Sigrec_trace.Export

let compile sigs = Solc.Compile.compile (Solc.Compile.contract_of_sigs sigs)

let token () =
  let open Abi.Abity in
  compile
    [
      Abi.Funsig.make "transfer" [ Address; Uint 256 ];
      Abi.Funsig.make "balanceOf" [ Address ];
    ]

let render code =
  String.concat "\n"
    (List.map
       (Format.asprintf "%a" Sigrec.Engine.pp_report)
       (Sigrec.Engine.recover_all
          (Sigrec.Engine.make
             Sigrec.Engine.Config.(default |> with_jobs 1))
          [ code ]))

(* tracing on vs off must not change a single output byte *)
let on_off_identical () =
  let code = token () in
  Tr.disable ();
  let off = render code in
  Tr.enable ();
  let on = render code in
  Tr.disable ();
  Tr.reset ();
  Alcotest.(check string) "rendered reports identical" off on

(* a disabled probe is one atomic load and a branch: zero words *)
let disabled_path_allocates_nothing () =
  Tr.disable ();
  let probe i =
    if Tr.enabled () then Tr.counter Tr.Symex "steps" i;
    if i land Tr.sample_mask () = 0 && Tr.enabled () then
      Tr.instant Tr.Rules "hit" [ ("pc", Tr.Int i) ]
  in
  probe 0;
  (* warm *)
  let m0 = Gc.minor_words () in
  for i = 1 to 100_000 do
    probe i
  done;
  let words = Gc.minor_words () -. m0 in
  if words > 64.0 then
    Alcotest.failf "disabled probes allocated %.0f minor words" words

let emit_sample () =
  Tr.enable ();
  Tr.instant Tr.Rules "R16"
    [ ("pc", Tr.Int 0x66); ("fired", Tr.Bool true); ("note", Tr.Str "mask") ];
  Tr.counter Tr.Symex "steps" 4096;
  let t0 = Tr.now_us () in
  Tr.complete Tr.Engine "input" ~t0_us:t0
    [ ("functions", Tr.Int 2); ("ratio", Tr.Float 0.5) ];
  let evs = Tr.collect () in
  Tr.disable ();
  Tr.reset ();
  evs

let chrome_shape () =
  let doc = Ex.to_chrome (emit_sample ()) in
  let contains needle =
    let n = String.length needle and h = String.length doc in
    let rec go i = i + n <= h && (String.sub doc i n = needle || go (i + 1)) in
    if not (go 0) then
      Alcotest.failf "chrome export missing %s in:\n%s" needle doc
  in
  contains "{\"traceEvents\":[";
  contains "\"displayTimeUnit\":\"ms\"";
  (* one of each phase letter: instant, counter, complete *)
  contains "\"ph\":\"i\"";
  contains "\"ph\":\"C\"";
  contains "\"ph\":\"X\"";
  (* categories come from the phase taxonomy; tid from the domain *)
  contains "\"cat\":\"rules\"";
  contains "\"cat\":\"engine\"";
  contains "\"pid\":1";
  contains "\"s\":\"t\"";
  contains "\"name\":\"R16\"";
  contains "\"pc\":102"

let jsonl_round_trip () =
  let evs = emit_sample () in
  let back = Ex.of_jsonl (Ex.to_jsonl evs) in
  Alcotest.(check int) "event count" (List.length evs) (List.length back);
  List.iter2
    (fun (a : Tr.event) (b : Tr.event) ->
      Alcotest.(check string) "phase" (Tr.phase_name a.phase)
        (Tr.phase_name b.phase);
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check bool) "kind" true (a.kind = b.kind);
      Alcotest.(check int) "domain" a.dom b.dom;
      Alcotest.(check (float 0.0)) "ts exact" a.ts_us b.ts_us;
      Alcotest.(check (float 0.0)) "dur exact" a.dur_us b.dur_us;
      Alcotest.(check bool) "args" true (a.args = b.args))
    evs back

let jsonl_rejects_garbage () =
  List.iter
    (fun bad ->
      match Ex.of_jsonl bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "of_jsonl accepted %S" bad)
    [ "not json\n"; "{\"ts_us\":}\n"; "{\"ts_us\":1.0\n" ]

let ring_wraps_and_counts_drops () =
  Tr.enable ~config:{ Tr.capacity = 16; sample_every = 1 } ();
  for i = 1 to 100 do
    Tr.instant Tr.Bench "tick" [ ("i", Tr.Int i) ]
  done;
  let evs = Tr.collect () in
  let dropped = Tr.dropped () in
  Tr.disable ();
  Tr.reset ();
  Alcotest.(check int) "ring keeps capacity" 16 (List.length evs);
  Alcotest.(check int) "drops counted" 84 dropped;
  (* the survivors are the newest events, in order *)
  match List.rev evs with
  | last :: _ ->
    Alcotest.(check bool) "newest survives" true
      (last.Tr.args = [ ("i", Tr.Int 100) ])
  | [] -> Alcotest.fail "no events"

let summary_mentions_rules () =
  let s = Ex.summary (emit_sample ()) in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "summary missing %s in:\n%s" needle s
  in
  contains "rules";
  contains "R16";
  contains "engine"

(* evidence is recorded with tracing OFF: explain needs no trace file *)
let evidence_without_tracing () =
  Tr.disable ();
  let recovered = Sigrec.Recover.recover (token ()) in
  Alcotest.(check bool) "recovered something" true (recovered <> []);
  List.iter
    (fun (r : Sigrec.Recover.recovered) ->
      let ev = r.Sigrec.Recover.evidence in
      Alcotest.(check bool) "evidence nonempty" true (ev <> []);
      let fired =
        List.filter (fun (e : Sigrec.Rules.evidence) -> e.fired) ev
      in
      Alcotest.(check bool) "some rule fired" true (fired <> []);
      (* at least one firing carries a concrete program counter *)
      Alcotest.(check bool) "pc evidence present" true
        (List.exists (fun (e : Sigrec.Rules.evidence) -> e.pc >= 0) fired);
      Alcotest.(check bool) "paths explored recorded" true
        (r.Sigrec.Recover.paths_explored > 0))
    recovered;
  (* the address parameter of transfer(address,uint256) must cite R16 *)
  let transfer =
    List.find
      (fun (r : Sigrec.Recover.recovered) ->
        List.length r.Sigrec.Recover.params = 2)
      recovered
  in
  Alcotest.(check bool) "R16 cited for the address parameter" true
    (List.exists
       (fun (e : Sigrec.Rules.evidence) -> e.rule = "R16" && e.fired)
       transfer.Sigrec.Recover.evidence)

(* per-input wall clock lives in the outcome, never in the rendering *)
let elapsed_ns_in_outcomes () =
  let code = token () in
  let report =
    List.hd
      (Sigrec.Engine.recover_all
         (Sigrec.Engine.make Sigrec.Engine.Config.(default |> with_jobs 1))
         [ code ])
  in
  List.iter
    (fun o ->
      match Sigrec.Engine.outcome_elapsed_ns o with
      | Some ns -> Alcotest.(check bool) "elapsed positive" true (ns > 0)
      | None -> Alcotest.fail "recovered outcome without elapsed_ns")
    report.Sigrec.Engine.outcomes;
  (* the drift invariant: two analyses of the same input measure
     different elapsed_ns yet render byte-identically, so the timing
     field cannot have leaked into pp *)
  Alcotest.(check string) "timings never rendered"
    (Format.asprintf "%a" Sigrec.Engine.pp_report report)
    (Format.asprintf "%a" Sigrec.Engine.pp_report
       (List.hd
          (Sigrec.Engine.recover_all
             (Sigrec.Engine.make
                Sigrec.Engine.Config.(default |> with_jobs 1))
             [ code ])))

let stats_json_shape () =
  let s = Sigrec.Stats.create () in
  Sigrec.Stats.hit_rule s "R4";
  Sigrec.Stats.hit_rule s "R4";
  Sigrec.Stats.hit_rule s "R16";
  Sigrec.Stats.add_paths s 7;
  Sigrec.Stats.cache_hit s;
  let j = Sigrec.Stats.to_json s in
  let idx needle =
    let n = String.length needle and h = String.length j in
    let rec go i =
      if i + n > h then Alcotest.failf "stats json missing %s in %s" needle j
      else if String.sub j i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "single line" false (String.contains j '\n');
  Alcotest.(check bool) "rules nested first" true
    (idx "{\"rules\":{" = 0);
  Alcotest.(check bool) "R4 counted" true (idx "\"R4\":2" > 0);
  Alcotest.(check bool) "R16 counted" true (idx "\"R16\":1" > 0);
  (* scalar keys appear in the descriptor-list order pp uses *)
  Alcotest.(check bool) "stable scalar order" true
    (idx "\"functions_recovered\":" < idx "\"paths_explored\":"
    && idx "\"paths_explored\":" < idx "\"cache_hits\":");
  Alcotest.(check bool) "paths value" true (idx "\"paths_explored\":7" > 0);
  Alcotest.(check bool) "cache value" true (idx "\"cache_hits\":1" > 0)

let warn_callback_fires () =
  let seen = ref [] in
  let b =
    Sigrec.Input.parse_batch
      ~warn:(fun ~line ~reason -> seen := (line, reason) :: !seen)
      "0x6001\n0xzz\n\n0x\n0x6002\n"
  in
  Alcotest.(check int) "codes parsed" 2 (List.length b.Sigrec.Input.codes);
  Alcotest.(check (list int)) "warned lines match skipped" [ 2; 4 ]
    (List.rev_map fst !seen);
  Alcotest.(check bool) "same rows as skipped" true
    (List.rev !seen = b.Sigrec.Input.skipped)

let suite =
  [
    ("tracing on/off output byte-identical", `Quick, on_off_identical);
    ( "disabled probes allocate nothing",
      `Quick,
      disabled_path_allocates_nothing );
    ("chrome export has trace_event shape", `Quick, chrome_shape);
    ("jsonl round-trips losslessly", `Quick, jsonl_round_trip);
    ("jsonl parser rejects garbage", `Quick, jsonl_rejects_garbage);
    ("ring wraps, drops counted", `Quick, ring_wraps_and_counts_drops);
    ("summary aggregates rules and spans", `Quick, summary_mentions_rules);
    ("evidence recorded with tracing off", `Quick, evidence_without_tracing);
    ("outcomes carry elapsed_ns, pp does not", `Quick, elapsed_ns_in_outcomes);
    ("stats json: stable keys, nested rules", `Quick, stats_json_shape);
    ("parse_batch warn callback", `Quick, warn_callback_fires);
  ]
