(* The resident recovery service: protocol goldens, malformed requests
   answered without killing the daemon, warnings routed into the JSON
   response stream, cross-request cache hits, the bounded LRU actually
   bounding, and jobs>=2 responses byte-identical to sequential. *)

open Abi.Abity

let default_serve () = Sigrec.Serve.create Sigrec.Engine.Config.default

let handle t line = (Sigrec.Serve.handle_line t line).Sigrec.Serve.response

let compile fsig = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig)

let recover_request ?(id = "1") codes =
  Printf.sprintf {|{"id":%s,"op":"recover","codes":[%s]}|} id
    (String.concat ","
       (List.map (fun c -> "\"0x" ^ Evm.Hex.encode c ^ "\"") codes))

(* -- goldens ----------------------------------------------------------- *)

let test_protocol_goldens () =
  let t = default_serve () in
  Alcotest.(check string) "ping" {|{"id":7,"ok":true,"pong":true}|}
    (handle t {|{"id":7,"op":"ping"}|});
  Alcotest.(check string) "id echoed verbatim"
    {|{"id":"req-a","ok":true,"pong":true}|}
    (handle t {|{"id":"req-a","op":"ping"}|});
  Alcotest.(check string) "missing id becomes null"
    {|{"id":null,"ok":true,"pong":true}|}
    (handle t {|{"op":"ping"}|});
  Alcotest.(check string) "unknown op rejected"
    {|{"id":1,"ok":false,"error":"unknown op \"frob\""}|}
    (handle t {|{"id":1,"op":"frob"}|});
  Alcotest.(check string) "missing op rejected"
    {|{"id":2,"ok":false,"error":"missing \"op\""}|}
    (handle t {|{"id":2}|});
  let reply = Sigrec.Serve.handle_line t {|{"id":3,"op":"shutdown"}|} in
  Alcotest.(check string) "shutdown acknowledged"
    {|{"id":3,"ok":true,"shutdown":true}|}
    reply.Sigrec.Serve.response;
  Alcotest.(check bool) "shutdown flagged" true reply.Sigrec.Serve.shutdown

let test_malformed_does_not_kill () =
  let t = default_serve () in
  (* every hostile line must produce an ok:false line, and the very
     same daemon must still answer the next well-formed request *)
  List.iter
    (fun line ->
      match Sigrec.Json.parse (handle t line) with
      | Ok response ->
        Alcotest.(check bool)
          (Printf.sprintf "ok:false for %S" line)
          true
          (Sigrec.Json.member "ok" response = Some (Sigrec.Json.Bool false))
      | Error e -> Alcotest.failf "unparseable error response: %s" e)
    [
      "not json at all";
      "{\"id\":1,\"op\":";
      {|{"id":1,"op":42}|};
      {|{"id":1,"op":"recover"}|};
      {|{"id":1,"op":"recover","codes":"0x60"}|};
      {|{"id":1,"op":"recover","codes":[1,2]}|};
      "[1,2,3]";
      {|"just a string"|};
    ];
  Alcotest.(check string) "daemon still alive"
    {|{"id":9,"ok":true,"pong":true}|}
    (handle t {|{"id":9,"op":"ping"}|})

(* -- recover: reports, warnings, cache --------------------------------- *)

let member_exn name json =
  match Sigrec.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S" name

let parse_exn line =
  match Sigrec.Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response: %s" e

let test_recover_warnings_in_stream () =
  let t = default_serve () in
  let code = compile (Abi.Funsig.make "w" [ Uint 256 ]) in
  let request =
    Printf.sprintf {|{"id":1,"op":"recover","codes":["0x%s","xyz",""]}|}
      (Evm.Hex.encode code)
  in
  let response = parse_exn (handle t request) in
  Alcotest.(check bool) "ok" true
    (member_exn "ok" response = Sigrec.Json.Bool true);
  (match Sigrec.Json.to_list_opt (member_exn "reports" response) with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected exactly one report");
  match Sigrec.Json.to_list_opt (member_exn "warnings" response) with
  | Some [ w1; w2 ] ->
    Alcotest.(check (option int)) "bad entry index" (Some 1)
      (Option.bind (Sigrec.Json.member "index" w1) Sigrec.Json.to_int_opt);
    Alcotest.(check (option int)) "blank entry index" (Some 2)
      (Option.bind (Sigrec.Json.member "index" w2) Sigrec.Json.to_int_opt);
    Alcotest.(check bool) "blank entry reason" true
      (Sigrec.Json.member "reason" w2
      = Some (Sigrec.Json.Str "empty bytecode"))
  | _ -> Alcotest.fail "expected two warnings in the response stream"

let test_cross_request_cache_hits () =
  let t = default_serve () in
  let codes =
    [
      compile (Abi.Funsig.make "a" [ Address ]);
      compile (Abi.Funsig.make "b" [ Uint 8; Bytes ]);
    ]
  in
  let cold = parse_exn (handle t (recover_request codes)) in
  let warm = parse_exn (handle t (recover_request codes)) in
  let from_cache response =
    match Sigrec.Json.to_list_opt (member_exn "reports" response) with
    | Some reports ->
      List.map (fun r -> member_exn "from_cache" r) reports
    | None -> Alcotest.fail "reports not a list"
  in
  Alcotest.(check bool) "cold run is fresh" true
    (List.for_all (( = ) (Sigrec.Json.Bool false)) (from_cache cold));
  Alcotest.(check bool) "repeat answered from cache" true
    (List.for_all (( = ) (Sigrec.Json.Bool true)) (from_cache warm));
  let stats = Sigrec.Engine.stats (Sigrec.Serve.engine t) in
  Alcotest.(check int) "cross-request cache hits counted"
    (List.length codes)
    (Sigrec.Stats.cache_hits stats);
  Alcotest.(check int) "each bytecode analyzed once" (List.length codes)
    (Sigrec.Stats.cache_misses stats);
  (* metrics reflect the same counters, live *)
  let metrics = parse_exn (handle t {|{"id":2,"op":"metrics"}|}) in
  let stats_json = member_exn "stats" metrics in
  Alcotest.(check (option int)) "metrics cache_hits" (Some 2)
    (Option.bind
       (Sigrec.Json.member "cache_hits" stats_json)
       Sigrec.Json.to_int_opt);
  Alcotest.(check (option int)) "metrics request count" (Some 3)
    (Option.bind (Sigrec.Json.member "requests" metrics)
       Sigrec.Json.to_int_opt)

(* elapsed_ns is a wall-clock measurement, deliberately excluded from
   the determinism invariant (as it is from pp_report); everything else
   in the response must match byte for byte *)
let rec strip_timing = function
  | Sigrec.Json.Obj fields ->
    Sigrec.Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "elapsed_ns" then None else Some (k, strip_timing v))
         fields)
  | Sigrec.Json.Arr items -> Sigrec.Json.Arr (List.map strip_timing items)
  | v -> v

let test_parallel_response_identical () =
  let codes =
    [
      compile (Abi.Funsig.make "p" [ Uint 256; Address ]);
      compile (Abi.Funsig.make "q" [ Bytes ]);
      compile (Abi.Funsig.make "r" [ Bool; Uint 32 ]);
    ]
  in
  let codes = codes @ codes in
  let response jobs =
    let t =
      Sigrec.Serve.create
        Sigrec.Engine.Config.(default |> with_jobs jobs)
    in
    Sigrec.Json.to_string
      (strip_timing (parse_exn (handle t (recover_request codes))))
  in
  Alcotest.(check string) "jobs=4 response byte-identical to jobs=1"
    (response 1) (response 4)

(* -- layout op --------------------------------------------------------- *)

let layout_request ?(id = "1") codes =
  Printf.sprintf {|{"id":%s,"op":"layout","codes":[%s]}|} id
    (String.concat ","
       (List.map (fun c -> "\"0x" ^ Evm.Hex.encode c ^ "\"") codes))

let test_layout_op () =
  let t = default_serve () in
  let code =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:[ Solc.Lang.svalue 0; Solc.Lang.smapping 1 ]
         [ Abi.Funsig.make "f" [ Uint 256 ] ])
  in
  let kinds response =
    match Sigrec.Json.to_list_opt (member_exn "layouts" response) with
    | Some [ l ] -> (
      match Sigrec.Json.to_list_opt (member_exn "slots" l) with
      | Some slots ->
        ( List.map
            (fun s ->
              match member_exn "kind" s with
              | Sigrec.Json.Str k -> k
              | _ -> Alcotest.fail "kind not a string")
            slots,
          member_exn "from_cache" l )
      | None -> Alcotest.fail "slots not a list")
    | _ -> Alcotest.fail "expected exactly one layout"
  in
  let cold = kinds (parse_exn (handle t (layout_request [ code ]))) in
  Alcotest.(check (list string)) "slot kinds" [ "word"; "mapping" ] (fst cold);
  Alcotest.(check bool) "cold run is fresh" true
    (snd cold = Sigrec.Json.Bool false);
  let warm = kinds (parse_exn (handle t (layout_request [ code ]))) in
  Alcotest.(check bool) "repeat answered from cache" true
    (snd warm = Sigrec.Json.Bool true);
  (* malformed layout requests are rejected without killing the daemon *)
  (match Sigrec.Json.parse (handle t {|{"id":5,"op":"layout"}|}) with
  | Ok response ->
    Alcotest.(check bool) "missing codes rejected" true
      (Sigrec.Json.member "ok" response = Some (Sigrec.Json.Bool false))
  | Error e -> Alcotest.failf "unparseable error response: %s" e);
  Alcotest.(check string) "daemon still alive"
    {|{"id":6,"ok":true,"pong":true}|}
    (handle t {|{"id":6,"op":"ping"}|})

(* -- classify op ------------------------------------------------------- *)

let classify_request ?(id = "1") codes =
  Printf.sprintf {|{"id":%s,"op":"classify","codes":[%s]}|} id
    (String.concat ","
       (List.map (fun c -> "\"0x" ^ Evm.Hex.encode c ^ "\"") codes))

let test_classify_op () =
  let t = default_serve () in
  let spec =
    match Sigrec_classify.Classify.spec_by_name "ERC-20" with
    | Some s -> s
    | None -> Alcotest.fail "ERC-20 spec missing"
  in
  let code =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:[ Solc.Lang.svalue 0; Solc.Lang.smapping 1 ]
         (List.map
            (fun m -> m.Sigrec_classify.Classify.fsig)
            (Sigrec_classify.Classify.required_members spec)))
  in
  let verdict response =
    match Sigrec.Json.to_list_opt (member_exn "classifications" response) with
    | Some [ c ] ->
      ( member_exn "label" c,
        member_exn "from_cache" c,
        member_exn "best" c )
    | _ -> Alcotest.fail "expected exactly one classification"
  in
  let label, cold_cached, best =
    verdict (parse_exn (handle t (classify_request [ code ])))
  in
  Alcotest.(check bool) "full ERC-20 surface labelled exact" true
    (label = Sigrec.Json.Str "ERC-20");
  Alcotest.(check bool) "cold run is fresh" true
    (cold_cached = Sigrec.Json.Bool false);
  Alcotest.(check bool) "best verdict is not null" true (best <> Sigrec.Json.Null);
  let _, warm_cached, _ =
    verdict (parse_exn (handle t (classify_request [ code ])))
  in
  Alcotest.(check bool) "repeat answered from verdict cache" true
    (warm_cached = Sigrec.Json.Bool true);
  (* the metrics op reports the classification counters, live *)
  let metrics = parse_exn (handle t {|{"id":2,"op":"metrics"}|}) in
  let stats_json = member_exn "stats" metrics in
  let counter name =
    Option.bind (Sigrec.Json.member name stats_json) Sigrec.Json.to_int_opt
  in
  Alcotest.(check (option int)) "one fresh classification" (Some 1)
    (counter "classifications");
  Alcotest.(check (option int)) "one exact verdict" (Some 1)
    (counter "classify_exact");
  Alcotest.(check (option int)) "repeat served from the verdict cache"
    (Some 1)
    (counter "classify_cache_hits");
  (* malformed classify requests are rejected without killing the daemon *)
  List.iter
    (fun line ->
      match Sigrec.Json.parse (handle t line) with
      | Ok response ->
        Alcotest.(check bool)
          (Printf.sprintf "ok:false for %S" line)
          true
          (Sigrec.Json.member "ok" response = Some (Sigrec.Json.Bool false))
      | Error e -> Alcotest.failf "unparseable error response: %s" e)
    [
      {|{"id":5,"op":"classify"}|};
      {|{"id":5,"op":"classify","codes":"0x60"}|};
      {|{"id":5,"op":"classify","codes":[42]}|};
    ];
  Alcotest.(check string) "daemon still alive"
    {|{"id":6,"ok":true,"pong":true}|}
    (handle t {|{"id":6,"op":"ping"}|})

(* -- stream op --------------------------------------------------------- *)

(* Drive a full [Serve.run] session from a scripted input channel and
   capture the response lines — the only way to exercise the streaming
   mode, which takes over the connection between its ack and the
   sentinel. *)
let run_session t script =
  let in_file = Filename.temp_file "sigrec_serve" ".in" in
  let out_file = Filename.temp_file "sigrec_serve" ".out" in
  Out_channel.with_open_text in_file (fun oc ->
      Out_channel.output_string oc script);
  let ic = In_channel.open_text in_file in
  let oc = Out_channel.open_text out_file in
  let outcome = Sigrec.Serve.run t ic oc in
  In_channel.close ic;
  Out_channel.close oc;
  let out = In_channel.with_open_text out_file In_channel.input_all in
  Sys.remove in_file;
  Sys.remove out_file;
  (outcome, String.split_on_char '\n' (String.trim out))

let test_stream_session () =
  let t = default_serve () in
  let code = compile (Abi.Funsig.make "s" [ Uint 256 ]) in
  let hex = "0x" ^ Evm.Hex.encode code in
  let script =
    String.concat "\n"
      [
        {|{"id":1,"op":"ping"}|};
        {|{"id":"s1","op":"stream"}|};
        hex;
        "# a comment";
        "";
        "zz";
        hex;
        ".";
        {|{"id":2,"op":"ping"}|};
        {|{"id":3,"op":"shutdown"}|};
        "";
      ]
  in
  let outcome, lines = run_session t script in
  Alcotest.(check bool) "session ends in shutdown" true
    (outcome = `Shutdown);
  match lines with
  | [ ping1; ack; warning; report1; report2; done_line; ping2; shutdown ]
    ->
    Alcotest.(check string) "ping before the stream"
      {|{"id":1,"ok":true,"pong":true}|} ping1;
    Alcotest.(check string) "stream acked"
      {|{"id":"s1","ok":true,"streaming":true}|} ack;
    let warning = parse_exn warning in
    Alcotest.(check bool) "warning echoes the stream id" true
      (member_exn "id" warning = Sigrec.Json.Str "s1");
    Alcotest.(check (option int)) "warning carries the corpus line"
      (Some 4)
      (Option.bind
         (Sigrec.Json.member "line" (member_exn "warning" warning))
         Sigrec.Json.to_int_opt);
    let report_cached line =
      let r = parse_exn line in
      Alcotest.(check bool) "report echoes the stream id" true
        (member_exn "id" r = Sigrec.Json.Str "s1");
      member_exn "from_cache" (member_exn "report" r)
    in
    Alcotest.(check bool) "first appearance analyzed" true
      (report_cached report1 = Sigrec.Json.Bool false);
    Alcotest.(check bool) "repeat answered from cache" true
      (report_cached report2 = Sigrec.Json.Bool true);
    let d = parse_exn done_line in
    List.iter
      (fun (key, v) ->
        Alcotest.(check (option int)) ("summary " ^ key) (Some v)
          (Option.bind (Sigrec.Json.member key d) Sigrec.Json.to_int_opt))
      [ ("contracts", 2); ("lines", 5); ("skipped", 1); ("dedup_hits", 1) ];
    Alcotest.(check string) "request mode resumes after the sentinel"
      {|{"id":2,"ok":true,"pong":true}|} ping2;
    Alcotest.(check string) "shutdown still honored"
      {|{"id":3,"ok":true,"shutdown":true}|} shutdown;
    let stats = Sigrec.Engine.stats (Sigrec.Serve.engine t) in
    Alcotest.(check int) "stream lines counted" 5
      (Sigrec.Stats.stream_lines stats);
    Alcotest.(check int) "stream skips counted" 1
      (Sigrec.Stats.stream_skipped stats);
    Alcotest.(check int) "stream dedup counted" 1
      (Sigrec.Stats.stream_dedup_hits stats)
  | other ->
    Alcotest.failf "expected 8 response lines, got %d:\n%s"
      (List.length other) (String.concat "\n" other)

let test_stream_ends_at_eof () =
  (* a stream cut off by the client hanging up still flushes what it
     buffered and reports the summary before the server sees EOF *)
  let t = default_serve () in
  let code = compile (Abi.Funsig.make "e" [ Address ]) in
  let script =
    String.concat "\n"
      [ {|{"id":4,"op":"stream"}|}; "0x" ^ Evm.Hex.encode code; "" ]
  in
  let outcome, lines = run_session t script in
  Alcotest.(check bool) "EOF surfaces to the listener" true
    (outcome = `Eof);
  match List.rev lines with
  | done_line :: _ ->
    let d = parse_exn done_line in
    Alcotest.(check (option int)) "buffered contract still recovered"
      (Some 1)
      (Option.bind (Sigrec.Json.member "contracts" d) Sigrec.Json.to_int_opt)
  | [] -> Alcotest.fail "no response lines at all"

(* -- bounded LRU ------------------------------------------------------- *)

let test_lru_eviction_bound () =
  let lru = Sigrec.Lru.create ~capacity:2 in
  Sigrec.Lru.add lru "a" 1;
  Sigrec.Lru.add lru "b" 2;
  (* touching [a] makes [b] the eviction victim *)
  Alcotest.(check (option int)) "find promotes" (Some 1)
    (Sigrec.Lru.find_opt lru "a");
  Sigrec.Lru.add lru "c" 3;
  Alcotest.(check int) "bound held" 2 (Sigrec.Lru.length lru);
  Alcotest.(check bool) "LRU entry evicted" false (Sigrec.Lru.mem lru "b");
  Alcotest.(check bool) "promoted entry kept" true (Sigrec.Lru.mem lru "a");
  Alcotest.(check int) "eviction counted" 1 (Sigrec.Lru.evictions lru);
  (* peek must not disturb recency order *)
  Alcotest.(check (option int)) "peek reads" (Some 1)
    (Sigrec.Lru.peek_opt lru "a");
  ignore (Sigrec.Lru.find_opt lru "c");
  ignore (Sigrec.Lru.peek_opt lru "a");
  Sigrec.Lru.add lru "d" 4;
  Alcotest.(check bool) "peek did not promote" false
    (Sigrec.Lru.mem lru "a")

let test_engine_cache_bounded () =
  let engine =
    Sigrec.Engine.make
      Sigrec.Engine.Config.(
        default |> with_jobs 1 |> with_cache_capacity 2)
  in
  let codes =
    List.map compile
      [
        Abi.Funsig.make "e1" [ Uint 256 ];
        Abi.Funsig.make "e2" [ Address ];
        Abi.Funsig.make "e3" [ Bool ];
        Abi.Funsig.make "e4" [ Bytes ];
      ]
  in
  let reports = Sigrec.Engine.recover_all engine codes in
  Alcotest.(check int) "all inputs answered despite evictions"
    (List.length codes) (List.length reports);
  Alcotest.(check bool) "cache stayed within capacity" true
    (Sigrec.Engine.cache_size engine <= 2);
  Alcotest.(check int) "evictions surfaced in stats" 2
    (Sigrec.Stats.cache_evictions (Sigrec.Engine.stats engine))

(* -- the JSON layer itself --------------------------------------------- *)

let test_json_round_trip () =
  List.iter
    (fun s ->
      match Sigrec.Json.parse s with
      | Ok v -> Alcotest.(check string) s s (Sigrec.Json.to_string v)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      {|{"a":[1,2,3],"b":{"c":null,"d":false},"e":"x"}|};
      {|[true,false,null,-7,"\\\""]|};
      {|"esc\n\t"|};
      "123456";
    ];
  List.iter
    (fun s ->
      match Sigrec.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ];
  (* \u escapes decode to UTF-8 *)
  match Sigrec.Json.parse {|"é😀"|} with
  | Ok (Sigrec.Json.Str s) ->
    Alcotest.(check string) "utf-8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escape rejected"

let test_parse_codes_indices () =
  let batch = Sigrec.Input.parse_codes [ "0x60016002"; "zz"; ""; "0x" ] in
  Alcotest.(check int) "one valid code" 1
    (List.length batch.Sigrec.Input.codes);
  Alcotest.(check (list int)) "0-based skip indices" [ 1; 2; 3 ]
    (List.map fst batch.Sigrec.Input.skipped)

let suite =
  [
    Alcotest.test_case "protocol goldens" `Quick test_protocol_goldens;
    Alcotest.test_case "malformed requests do not kill the daemon" `Quick
      test_malformed_does_not_kill;
    Alcotest.test_case "warnings routed into the response stream" `Quick
      test_recover_warnings_in_stream;
    Alcotest.test_case "cross-request cache hits" `Quick
      test_cross_request_cache_hits;
    Alcotest.test_case "jobs>=2 response byte-identical" `Slow
      test_parallel_response_identical;
    Alcotest.test_case "layout op over the wire" `Quick test_layout_op;
    Alcotest.test_case "classify op over the wire" `Quick test_classify_op;
    Alcotest.test_case "stream session over the wire" `Quick
      test_stream_session;
    Alcotest.test_case "stream flushes at EOF" `Quick test_stream_ends_at_eof;
    Alcotest.test_case "LRU eviction bound" `Quick test_lru_eviction_bound;
    Alcotest.test_case "engine cache bounded" `Quick
      test_engine_cache_bounded;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "parse_codes indices" `Quick
      test_parse_codes_indices;
  ]
