(* Function-id extraction: the static idioms, the symbolic fallback, and
   their agreement on compiler output. Plus the Ruledoc table staying in
   sync with the rule engine. *)

let contract_with n =
  Solc.Compile.compile
    (Solc.Compile.contract_of_sigs
       (List.init n (fun i ->
            Abi.Funsig.make (Printf.sprintf "fn%d" i) [ Abi.Abity.Uint 8 ])))

let test_count_and_order () =
  let code = contract_with 7 in
  let entries = Sigrec.Ids.extract code in
  Alcotest.(check int) "seven ids" 7 (List.length entries);
  (* entry pcs ascend with dispatch order in our layout *)
  let pcs = List.map (fun e -> e.Sigrec.Ids.entry_pc) entries in
  Alcotest.(check (list int)) "ascending entries" (List.sort compare pcs) pcs

let test_selectors_valid () =
  let sigs =
    [
      Abi.Funsig.make "transfer" [ Abi.Abity.Address; Abi.Abity.Uint 256 ];
      Abi.Funsig.make "mint" [ Abi.Abity.Uint 256 ];
    ]
  in
  let code = Solc.Compile.compile (Solc.Compile.contract_of_sigs sigs) in
  let entries = Sigrec.Ids.extract code in
  List.iter2
    (fun fsig e ->
      Alcotest.(check string) "selector matches"
        (Abi.Funsig.selector_hex fsig)
        (Evm.Hex.encode e.Sigrec.Ids.selector))
    sigs entries

let test_both_dispatch_styles () =
  let sigs = [ Abi.Funsig.make "f" [ Abi.Abity.Bool ] ] in
  List.iter
    (fun version ->
      let code =
        Solc.Compile.compile
          { (Solc.Compile.contract_of_sigs sigs) with Solc.Compile.version }
      in
      Alcotest.(check int)
        (Printf.sprintf "found under %s" version.Solc.Version.name)
        1
        (List.length (Sigrec.Ids.extract code)))
    [ List.hd Solc.Version.solidity_versions; Solc.Version.latest_solidity ]

let test_symbolic_matches_static () =
  (* on plain compiler output the symbolic explorer must find the same
     ids the static idioms find *)
  let code = contract_with 5 in
  let static =
    List.map (fun e -> e.Sigrec.Ids.selector) (Sigrec.Ids.extract code)
  in
  (* obfuscate with junk only: the static idioms break, but the
     selectors must still be found (symbolically) *)
  let fns =
    List.init 5 (fun i ->
        Solc.Lang.fn_of_sig
          (Abi.Funsig.make (Printf.sprintf "fn%d" i) [ Abi.Abity.Uint 8 ]))
  in
  let obf =
    Solc.Obfuscate.compile_obfuscated ~level:1 ~seed:7
      { Solc.Compile.fns; version = Solc.Version.latest_solidity; storage = [] }
  in
  let after =
    List.map (fun e -> e.Sigrec.Ids.selector) (Sigrec.Ids.extract obf)
  in
  List.iter
    (fun sel ->
      Alcotest.(check bool)
        (Printf.sprintf "id %s survives obfuscation" (Evm.Hex.encode sel))
        true (List.mem sel after))
    static

let test_no_functions () =
  Alcotest.(check int) "empty bytecode" 0
    (List.length (Sigrec.Ids.extract ""));
  Alcotest.(check int) "stop only" 0
    (List.length (Sigrec.Ids.extract "\x00"))

let test_ruledoc_complete () =
  Alcotest.(check int) "31 rules documented" 31
    (List.length Sigrec.Ruledoc.all);
  List.iter
    (fun name ->
      match Sigrec.Ruledoc.find name with
      | Some d ->
        Alcotest.(check string) "name matches" name d.Sigrec.Ruledoc.name;
        Alcotest.(check bool) "has description" true
          (String.length d.Sigrec.Ruledoc.concludes > 0)
      | None -> Alcotest.failf "%s undocumented" name)
    Sigrec.Rules.all_rule_names

let test_recover_deterministic () =
  let code = contract_with 3 in
  let show rs = String.concat ";" (List.map Sigrec.Recover.type_list rs) in
  Alcotest.(check string) "same result twice"
    (show (Sigrec.Recover.recover code))
    (show (Sigrec.Recover.recover code))

let suite =
  [
    Alcotest.test_case "count and order" `Quick test_count_and_order;
    Alcotest.test_case "selectors valid" `Quick test_selectors_valid;
    Alcotest.test_case "both dispatch styles" `Quick test_both_dispatch_styles;
    Alcotest.test_case "symbolic survives obfuscation" `Quick test_symbolic_matches_static;
    Alcotest.test_case "no functions" `Quick test_no_functions;
    Alcotest.test_case "ruledoc complete" `Quick test_ruledoc_complete;
    Alcotest.test_case "recovery deterministic" `Quick test_recover_deterministic;
  ]
