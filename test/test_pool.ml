(* The persistent worker-domain pool, exercised directly: the engine
   clamps its fan-out to the hardware domain count, so on a one-core CI
   machine [Engine.recover_all] never reaches the pooled path — these
   cases cover the cross-domain machinery regardless of core count. *)

module Pool = Sigrec.Pool

let test_submit_runs_on_pool () =
  Pool.ensure 1;
  Alcotest.(check bool) "at least one worker" true (Pool.workers () >= 1);
  let self = Domain.self () in
  let ran_on = Atomic.make None in
  let counter = Atomic.make 0 in
  let batch =
    Pool.submit
      [
        (fun () ->
          Atomic.set ran_on (Some (Domain.self ()));
          Atomic.incr counter);
        (fun () -> Atomic.incr counter);
        (fun () -> Atomic.incr counter);
      ]
  in
  Pool.await batch;
  Alcotest.(check int) "all tasks ran" 3 (Atomic.get counter);
  (match Atomic.get ran_on with
  | None -> Alcotest.fail "task never recorded its domain"
  | Some d ->
    Alcotest.(check bool)
      "ran on a worker domain, not the caller" true (d <> self))

let test_await_reraises () =
  Pool.ensure 1;
  let survivor = Atomic.make false in
  let batch =
    Pool.submit
      [ (fun () -> failwith "boom"); (fun () -> Atomic.set survivor true) ]
  in
  (try
     Pool.await batch;
     Alcotest.fail "await should re-raise the task exception"
   with Failure msg -> Alcotest.(check string) "message" "boom" msg);
  Alcotest.(check bool)
    "other tasks of the batch still completed" true (Atomic.get survivor)

let test_pool_survives_failure () =
  (* a raising task must not kill its worker: the next batch still runs *)
  let batch = Pool.submit [ (fun () -> failwith "again") ] in
  (try Pool.await batch with Failure _ -> ());
  let ok = Atomic.make false in
  Pool.await (Pool.submit [ (fun () -> Atomic.set ok true) ]);
  Alcotest.(check bool) "pool alive after task failure" true (Atomic.get ok)

let test_ensure_is_monotone_and_capped () =
  Pool.ensure 1;
  let before = Pool.workers () in
  Pool.ensure 0;
  Pool.ensure (-3);
  Alcotest.(check int) "ensure never shrinks" before (Pool.workers ());
  Pool.ensure (Pool.max_workers + 100);
  Alcotest.(check bool)
    "capped at max_workers" true
    (Pool.workers () <= Pool.max_workers)

let test_worker_interner_adopted () =
  (* the worker's domain-local interner is seeded from the spawner's
     snapshot, so interning the same expression on a pooled domain
     yields a structurally equal (and locally hash-consed) node *)
  Pool.ensure 1;
  let open Symex in
  let mk () = Sexpr.bin Sexpr.Badd (Sexpr.cdload 4) (Sexpr.of_int 32) in
  let e = mk () in
  let worker_repr = ref "" in
  Pool.await
    (Pool.submit
       [ (fun () -> worker_repr := Format.asprintf "%a" Sexpr.pp (mk ())) ]);
  Alcotest.(check string)
    "same rendering across domains"
    (Format.asprintf "%a" Sexpr.pp e)
    !worker_repr

let test_many_small_batches () =
  Pool.ensure 2;
  let total = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.await
      (Pool.submit [ (fun () -> Atomic.incr total); (fun () -> Atomic.incr total) ])
  done;
  Alcotest.(check int) "every task of every batch ran" 100 (Atomic.get total)

let suite =
  [
    Alcotest.test_case "submit runs on a worker domain" `Quick
      test_submit_runs_on_pool;
    Alcotest.test_case "await re-raises task exceptions" `Quick
      test_await_reraises;
    Alcotest.test_case "pool survives a failing task" `Quick
      test_pool_survives_failure;
    Alcotest.test_case "ensure is monotone and capped" `Quick
      test_ensure_is_monotone_and_capped;
    Alcotest.test_case "worker interner adopted from snapshot" `Quick
      test_worker_interner_adopted;
    Alcotest.test_case "many small batches" `Quick test_many_small_batches;
  ]
