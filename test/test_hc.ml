(* The generic hash-cons table behind the Sexpr interner: canonical
   values, unique ids (optionally shared across tables), hit/miss
   accounting, and growth under load. *)

let make ?ids () =
  Symex.Hc.create ?ids ~hash:Hashtbl.hash ~equal:String.equal 8

let test_canonical_values () =
  let t = make () in
  let build k ~id = (k, id) in
  let a = Symex.Hc.find_or_add t "x" build in
  let b = Symex.Hc.find_or_add t "x" build in
  Alcotest.(check bool) "same key returns the same value" true (a == b);
  let c = Symex.Hc.find_or_add t "y" build in
  Alcotest.(check bool) "distinct keys differ" true (a != c);
  Alcotest.(check int) "two keys interned" 2 (Symex.Hc.length t)

let test_unique_ids_shared_counter () =
  let ids = ref 0 in
  let t1 = make ~ids () and t2 = make ~ids () in
  let build _k ~id = id in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (t, k) ->
      let id = Symex.Hc.find_or_add t k build in
      Alcotest.(check bool)
        (Printf.sprintf "id %d fresh" id)
        false (Hashtbl.mem seen id);
      Hashtbl.replace seen id ())
    [ (t1, "a"); (t1, "b"); (t2, "a"); (t2, "c"); (t1, "c") ];
  (* ids are unique across BOTH tables because the counter is shared *)
  Alcotest.(check int) "five distinct ids" 5 (Hashtbl.length seen);
  Alcotest.(check int) "counter advanced once per miss" 5 !ids

let test_hit_miss_accounting () =
  let t = make () in
  let build k ~id = (k, id) in
  ignore (Symex.Hc.find_or_add t "a" build);
  ignore (Symex.Hc.find_or_add t "a" build);
  ignore (Symex.Hc.find_or_add t "b" build);
  ignore (Symex.Hc.find_or_add t "a" build);
  Alcotest.(check int) "hits" 2 (Symex.Hc.hits t);
  Alcotest.(check int) "misses" 2 (Symex.Hc.misses t)

let test_growth_keeps_bindings () =
  let t = make () in
  let build k ~id = (k, id) in
  (* far past the initial capacity, forcing several resizes *)
  for i = 0 to 999 do
    ignore (Symex.Hc.find_or_add t (string_of_int i) build)
  done;
  Alcotest.(check int) "all keys kept" 1000 (Symex.Hc.length t);
  for i = 0 to 999 do
    let k = string_of_int i in
    let v, _ = Symex.Hc.find_or_add t k build in
    Alcotest.(check string) "old binding survives resize" k v
  done;
  Alcotest.(check int) "no spurious misses after resize" 1000
    (Symex.Hc.misses t)

let test_build_may_intern_recursively () =
  (* interning "n" builds "n-1" first, as Sexpr's simplifier does when a
     smart constructor interns subterms from inside [build] *)
  let t = make () in
  let rec build k ~id:_ =
    match int_of_string k with
    | 0 -> 0
    | n -> 1 + Symex.Hc.find_or_add t (string_of_int (n - 1)) build
  in
  let v = Symex.Hc.find_or_add t "64" build in
  Alcotest.(check int) "recursive interning" 64 v;
  Alcotest.(check int) "every level interned once" 65 (Symex.Hc.length t);
  let v' = Symex.Hc.find_or_add t "64" build in
  Alcotest.(check int) "now cached" 64 v'

let suite =
  [
    Alcotest.test_case "canonical values" `Quick test_canonical_values;
    Alcotest.test_case "unique ids across shared counter" `Quick
      test_unique_ids_shared_counter;
    Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss_accounting;
    Alcotest.test_case "growth keeps bindings" `Quick
      test_growth_keeps_bindings;
    Alcotest.test_case "build may intern recursively" `Quick
      test_build_may_intern_recursively;
  ]
