(* The batch recovery engine: parallel fan-out is byte-identical to
   sequential, the content-addressed cache answers duplicates without
   re-analysis, budget exhaustion surfaces as a structured outcome
   rather than a silently-empty list, and per-domain stats merge
   deterministically. *)

open Abi.Abity

let render reports =
  String.concat "\n"
    (List.map
       (fun r ->
         Format.asprintf "%a" Sigrec.Engine.pp_report
           { r with Sigrec.Engine.from_cache = false })
       reports)

let corpus_codes ?(seed = 11) n =
  List.map (fun s -> s.Solc.Corpus.code) (Solc.Corpus.dataset3 ~seed ~n)

let engine ?(jobs = 1) () =
  Sigrec.Engine.make Sigrec.Engine.Config.(default |> with_jobs jobs)

let test_parallel_matches_sequential () =
  let codes = corpus_codes 12 in
  let seq =
    Sigrec.Engine.recover_all (engine ~jobs:1 ()) codes
  in
  let par =
    Sigrec.Engine.recover_all (engine ~jobs:4 ()) codes
  in
  Alcotest.(check int) "one report per input" (List.length codes)
    (List.length par);
  Alcotest.(check string) "byte-identical output" (render seq) (render par);
  let recovered reports =
    List.concat_map Sigrec.Engine.signatures reports |> List.length
  in
  Alcotest.(check bool) "recovered something" true (recovered seq > 0)

let test_cache_identical_to_cold () =
  let codes = corpus_codes ~seed:12 8 in
  let engine = engine ~jobs:2 () in
  let cold = Sigrec.Engine.recover_all engine codes in
  let warm = Sigrec.Engine.recover_all engine codes in
  Alcotest.(check string) "warm results identical to cold" (render cold)
    (render warm);
  List.iter
    (fun r ->
      Alcotest.(check bool) "warm report marked cached" true
        r.Sigrec.Engine.from_cache)
    warm;
  let stats = Sigrec.Engine.stats engine in
  Alcotest.(check bool) "cache hits counted" true
    (Sigrec.Stats.cache_hits stats >= List.length codes)

let test_one_analysis_per_distinct_bytecode () =
  let sigs =
    [
      Abi.Funsig.make "one" [ Uint 8 ];
      Abi.Funsig.make "two" [ Address; Bytes ];
    ]
  in
  let distinct =
    List.map
      (fun fsig -> Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig))
      sigs
  in
  (* a duplicate-heavy batch: main net's common case *)
  let codes = distinct @ distinct @ List.rev distinct in
  let engine = engine ~jobs:2 () in
  let merged = Sigrec.Aggregate.recover_many ~engine codes in
  let stats = Sigrec.Engine.stats engine in
  Alcotest.(check int) "one analysis per distinct bytecode"
    (List.length distinct)
    (Sigrec.Stats.cache_misses stats);
  Alcotest.(check int) "duplicates answered from cache"
    (List.length codes - List.length distinct)
    (Sigrec.Stats.cache_hits stats);
  Alcotest.(check int) "batch duplicates counted"
    (List.length codes - List.length distinct)
    (Sigrec.Stats.inputs_deduped stats);
  Alcotest.(check int) "both ids aggregated" 2 (List.length merged);
  List.iter
    (fun fsig ->
      match List.assoc_opt (Abi.Funsig.selector fsig) merged with
      | Some params ->
        Alcotest.(check bool)
          (Abi.Funsig.canonical fsig)
          true
          (List.length params = List.length fsig.Abi.Funsig.params
          && List.for_all2 Abi.Abity.equal params fsig.Abi.Funsig.params)
      | None -> Alcotest.failf "missing %s" (Abi.Funsig.canonical fsig))
    sigs

let test_batch_dedup_counted () =
  let code =
    Solc.Compile.compile_fn
      (Solc.Lang.fn_of_sig (Abi.Funsig.make "d" [ Uint 256 ]))
  in
  let engine = engine ~jobs:2 () in
  let reports = Sigrec.Engine.recover_all engine [ code; code; code ] in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  Alcotest.(check int) "two batch duplicates" 2
    (Sigrec.Stats.inputs_deduped (Sigrec.Engine.stats engine));
  (* duplicates of an already-cached input still count as batch dups *)
  let _ = Sigrec.Engine.recover_all engine [ code; code ] in
  Alcotest.(check int) "cached duplicate counted" 3
    (Sigrec.Stats.inputs_deduped (Sigrec.Engine.stats engine))

let test_interner_traffic_recorded () =
  let code =
    Solc.Compile.compile_fn
      (Solc.Lang.fn_of_sig (Abi.Funsig.make "i" [ Address; Uint 256 ]))
  in
  let engine = engine () in
  let _ = Sigrec.Engine.recover engine code in
  let stats = Sigrec.Engine.stats engine in
  let hits = Sigrec.Stats.intern_hits stats in
  let misses = Sigrec.Stats.intern_misses stats in
  (* misses may be 0 when earlier tests already interned every node this
     contract builds, but an analysis cannot run without interner
     lookups *)
  Alcotest.(check bool) "interner traffic attributed to the analysis" true
    (hits + misses > 0);
  Alcotest.(check bool) "counters are non-negative" true
    (hits >= 0 && misses >= 0)

let test_budget_exhaustion_surfaces () =
  let fsig = Abi.Funsig.make "f" [ Uint 256; Address ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  (* control: with the default budget this recovers cleanly *)
  let ok = Sigrec.Engine.recover (engine ()) code in
  Alcotest.(check bool) "control run recovers" true
    (List.exists
       (function Sigrec.Engine.Recovered _ -> true | _ -> false)
       ok.Sigrec.Engine.outcomes);
  (* a starved step budget must surface per function, not yield [] *)
  let budget =
    {
      Symex.Exec.max_paths = 1;
      Symex.Exec.max_steps = 4;
      Symex.Exec.max_forks_per_pc = 0;
    }
  in
  let engine =
    Sigrec.Engine.make Sigrec.Engine.Config.(default |> with_budget budget)
  in
  let report = Sigrec.Engine.recover engine code in
  Alcotest.(check bool) "outcomes not silently empty" true
    (report.Sigrec.Engine.outcomes <> []);
  List.iter
    (fun outcome ->
      match outcome with
      | Sigrec.Engine.Budget_exhausted _ -> ()
      | Sigrec.Engine.Recovered _ ->
        Alcotest.fail "starved run reported a full recovery"
      | Sigrec.Engine.Failed e ->
        Alcotest.failf "starved run failed outright: %s"
          e.Sigrec.Engine.message)
    report.Sigrec.Engine.outcomes

let test_no_functions_is_empty_not_failed () =
  (* PUSH1 0; PUSH1 0; RETURN — valid bytecode, no dispatcher *)
  let code = Evm.Hex.decode "60006000f3" in
  let report = Sigrec.Engine.recover (engine ()) code in
  Alcotest.(check int) "no outcomes" 0
    (List.length report.Sigrec.Engine.outcomes)

let test_stats_merge () =
  let a = Sigrec.Stats.create () in
  Sigrec.Stats.hit_rule a "R1";
  Sigrec.Stats.hit_rule a "R1";
  Sigrec.Stats.hit_rule a "R4";
  Sigrec.Stats.cache_miss a;
  Sigrec.Stats.add_paths a 7;
  let b = Sigrec.Stats.create () in
  Sigrec.Stats.hit_rule b "R1";
  Sigrec.Stats.hit_rule b "R17";
  Sigrec.Stats.cache_hit b;
  Sigrec.Stats.add_paths b 3;
  Sigrec.Stats.add_functions b 2;
  let ab = Sigrec.Stats.merge a b and ba = Sigrec.Stats.merge b a in
  Alcotest.(check int) "R1 summed" 3 (Sigrec.Stats.rule_count ab "R1");
  Alcotest.(check int) "R4 kept" 1 (Sigrec.Stats.rule_count ab "R4");
  Alcotest.(check int) "paths summed" 10 (Sigrec.Stats.paths_explored ab);
  Alcotest.(check int) "hits summed" 1 (Sigrec.Stats.cache_hits ab);
  Alcotest.(check int) "misses summed" 1 (Sigrec.Stats.cache_misses ab);
  Alcotest.(check int) "functions summed" 2
    (Sigrec.Stats.functions_recovered ab);
  List.iter2
    (fun (n1, c1) (n2, c2) ->
      Alcotest.(check string) "same rule order" n1 n2;
      Alcotest.(check int) ("commutative " ^ n1) c1 c2)
    (Sigrec.Stats.rule_counts ab)
    (Sigrec.Stats.rule_counts ba);
  (* neither input was modified *)
  Alcotest.(check int) "a untouched" 2 (Sigrec.Stats.rule_count a "R1")

let test_stats_scalar_sync () =
  (* both rendered surfaces must carry exactly the descriptor list's
     counters — including the layout ones added with the second
     product — with the descriptor's values *)
  let s = Sigrec.Stats.create () in
  Sigrec.Stats.add_layout s ~slots:3 ~unknown:1;
  Sigrec.Stats.add_layout s ~slots:2 ~unknown:0;
  Sigrec.Stats.cache_hit s;
  let json =
    match Sigrec.Json.parse (Sigrec.Stats.to_json s) with
    | Ok v -> v
    | Error e -> Alcotest.failf "stats JSON unparseable: %s" e
  in
  let counters = Sigrec.Stats.scalar_counters s in
  List.iter
    (fun (key, v) ->
      Alcotest.(check (option int)) ("json carries " ^ key) (Some v)
        (Option.bind (Sigrec.Json.member key json) Sigrec.Json.to_int_opt))
    counters;
  Alcotest.(check int) "layouts counted" 2
    (List.assoc "layouts_recovered" counters);
  Alcotest.(check int) "slots summed" 5 (List.assoc "layout_slots" counters);
  Alcotest.(check int) "unknown ops summed" 1
    (List.assoc "layout_unknown_ops" counters);
  (* merge sums every descriptor counter pointwise *)
  let m = Sigrec.Stats.merge s s in
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      Alcotest.(check string) "same descriptor order" k1 k2;
      Alcotest.(check int) ("merge doubled " ^ k1) (2 * v1) v2)
    counters
    (Sigrec.Stats.scalar_counters m);
  (* the human rendering draws from the same values *)
  let text = Format.asprintf "%a" Sigrec.Stats.pp s in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "pp shows the layout counters" true
    (contains "layouts: 2 recovered, 5 slots (1 unresolved ops)")

let test_engine_matches_recover () =
  (* the engine's signature view is the old Recover.recover result *)
  let codes = corpus_codes ~seed:13 6 in
  let engine = engine () in
  List.iter
    (fun code ->
      let via_engine =
        Sigrec.Engine.signatures (Sigrec.Engine.recover engine code)
      in
      let direct = Sigrec.Recover.recover code in
      Alcotest.(check int) "same count" (List.length direct)
        (List.length via_engine);
      List.iter2
        (fun (a : Sigrec.Recover.recovered) (b : Sigrec.Recover.recovered) ->
          Alcotest.(check string) "same selector" a.selector_hex
            b.selector_hex;
          Alcotest.(check bool) "same params" true
            (List.length a.params = List.length b.params
            && List.for_all2 Abi.Abity.equal a.params b.params))
        direct via_engine)
    codes

(* -- streaming recovery -------------------------------------------------- *)

let test_stream_matches_batch () =
  (* recover_stream must emit report-for-report what recover_all
     returns — up to from_cache flags, which depend on where the batch
     boundaries fall — whatever the batch size, including one that
     forces a flush on every feed and one larger than the corpus *)
  let distinct = corpus_codes ~seed:14 6 in
  let codes =
    distinct @ [ List.nth distinct 2; List.hd distinct ] @ distinct
  in
  let batch_reports = Sigrec.Engine.recover_all (engine ()) codes in
  List.iter
    (fun batch ->
      let emitted = ref [] in
      let fed =
        Sigrec.Engine.recover_stream ~batch (engine ()) (List.to_seq codes)
          ~emit:(fun r -> emitted := r :: !emitted)
      in
      Alcotest.(check int)
        (Printf.sprintf "batch %d: all inputs fed" batch)
        (List.length codes) fed;
      Alcotest.(check string)
        (Printf.sprintf "batch %d: identical reports" batch)
        (render batch_reports)
        (render (List.rev !emitted)))
    [ 1; 4; 256 ]

let test_stream_dedup_counted () =
  let distinct = corpus_codes ~seed:15 3 in
  (* 3 distinct codes streamed 4 times each across small batches: the
     first appearance of each is an analysis, every later one must be
     answered from the cache and counted as a stream dedup hit *)
  let codes = List.concat [ distinct; distinct; distinct; distinct ] in
  let engine = engine () in
  let emitted = ref 0 in
  let fed =
    Sigrec.Engine.recover_stream ~batch:2 engine (List.to_seq codes)
      ~emit:(fun _ -> incr emitted)
  in
  Alcotest.(check int) "one report per fed code" fed !emitted;
  let stats = Sigrec.Engine.stats engine in
  Alcotest.(check int) "one analysis per distinct code"
    (List.length distinct)
    (Sigrec.Stats.cache_misses stats);
  Alcotest.(check int) "every repeat is a stream dedup hit"
    (List.length codes - List.length distinct)
    (Sigrec.Stats.stream_dedup_hits stats)

let test_stream_counters_in_descriptor_list () =
  (* the three stream counters flow through the shared descriptor list:
     present in scalar_counters and the JSON with the recorded values,
     summed by merge *)
  let s = Sigrec.Stats.create () in
  Sigrec.Stats.add_stream_lines s ~lines:120 ~skipped:3;
  Sigrec.Stats.add_stream_dedup s 70;
  let counters = Sigrec.Stats.scalar_counters s in
  Alcotest.(check int) "stream_lines" 120 (List.assoc "stream_lines" counters);
  Alcotest.(check int) "stream_skipped" 3
    (List.assoc "stream_skipped" counters);
  Alcotest.(check int) "stream_dedup_hits" 70
    (List.assoc "stream_dedup_hits" counters);
  let json =
    match Sigrec.Json.parse (Sigrec.Stats.to_json s) with
    | Ok v -> v
    | Error e -> Alcotest.failf "stats JSON unparseable: %s" e
  in
  List.iter
    (fun key ->
      Alcotest.(check (option int)) ("json carries " ^ key)
        (Some (List.assoc key counters))
        (Option.bind (Sigrec.Json.member key json) Sigrec.Json.to_int_opt))
    [ "stream_lines"; "stream_skipped"; "stream_dedup_hits" ];
  let m = Sigrec.Stats.merge s s in
  Alcotest.(check int) "merge sums stream_lines" 240
    (List.assoc "stream_lines" (Sigrec.Stats.scalar_counters m))

(* -- the layout product ------------------------------------------------- *)

let layout_codes ?(seed = 21) n =
  List.map
    (fun s -> s.Solc.Corpus.lcode)
    (Solc.Corpus.layout_set ~seed ~n)

let render_layouts reports =
  String.concat "\n"
    (List.map
       (fun (r : Sigrec.Engine.layout_report) ->
         Format.asprintf "0x%s %a" r.Sigrec.Engine.layout_code_hash
           Sigrec_layout.Layout.pp r.Sigrec.Engine.layout)
       reports)

let test_layout_parallel_matches_sequential () =
  let codes = layout_codes 8 in
  let seq = Sigrec.Engine.layout_all (engine ~jobs:1 ()) codes in
  let par = Sigrec.Engine.layout_all (engine ~jobs:4 ()) codes in
  Alcotest.(check int) "one layout per input" (List.length codes)
    (List.length par);
  Alcotest.(check string) "byte-identical output" (render_layouts seq)
    (render_layouts par)

let test_layout_cache_and_dedup () =
  let distinct = layout_codes ~seed:22 4 in
  let codes = distinct @ [ List.hd distinct ] in
  let engine = engine ~jobs:2 () in
  let cold = Sigrec.Engine.layout_all engine codes in
  (* in-batch duplicate answered without re-analysis *)
  Alcotest.(check (list bool)) "only the duplicate attributed to cache"
    [ false; false; false; false; true ]
    (List.map (fun r -> r.Sigrec.Engine.layout_from_cache) cold);
  Alcotest.(check int) "one analysis per distinct bytecode"
    (List.length distinct)
    (Sigrec.Stats.layouts_recovered (Sigrec.Engine.stats engine));
  let warm = Sigrec.Engine.layout_all engine codes in
  Alcotest.(check string) "warm results identical to cold"
    (render_layouts cold) (render_layouts warm);
  Alcotest.(check bool) "warm batch answered from cache" true
    (List.for_all (fun r -> r.Sigrec.Engine.layout_from_cache) warm);
  Alcotest.(check int) "no re-analysis on the warm run"
    (List.length distinct)
    (Sigrec.Stats.layouts_recovered (Sigrec.Engine.stats engine));
  (* the single-code entry point shares the same cache *)
  let single = Sigrec.Engine.layout engine (List.hd distinct) in
  Alcotest.(check bool) "single lookup hits the batch-filled cache" true
    single.Sigrec.Engine.layout_from_cache

let test_layout_cache_independent_of_reports () =
  (* the two products cache independently: filling one LRU does not
     evict or pollute the other *)
  let code =
    Solc.Compile.compile
      (Solc.Compile.contract_of_sigs
         ~storage:[ Solc.Lang.svalue 0 ]
         [ Abi.Funsig.make "x" [ Uint 256 ] ])
  in
  let engine = engine () in
  let l1 = Sigrec.Engine.layout engine code in
  let _report = Sigrec.Engine.recover engine code in
  let r2 = Sigrec.Engine.recover engine code in
  let l2 = Sigrec.Engine.layout engine code in
  Alcotest.(check bool) "layout still cached after recover" true
    l2.Sigrec.Engine.layout_from_cache;
  Alcotest.(check bool) "report still cached after layout" true
    r2.Sigrec.Engine.from_cache;
  Alcotest.(check bool) "fresh first layout" false
    l1.Sigrec.Engine.layout_from_cache

let suite =
  [
    Alcotest.test_case "parallel = sequential" `Slow
      test_parallel_matches_sequential;
    Alcotest.test_case "warm cache = cold run" `Slow
      test_cache_identical_to_cold;
    Alcotest.test_case "one analysis per distinct bytecode" `Quick
      test_one_analysis_per_distinct_bytecode;
    Alcotest.test_case "batch duplicates counted" `Quick
      test_batch_dedup_counted;
    Alcotest.test_case "interner traffic recorded" `Quick
      test_interner_traffic_recorded;
    Alcotest.test_case "budget exhaustion surfaces" `Quick
      test_budget_exhaustion_surfaces;
    Alcotest.test_case "no functions /= failure" `Quick
      test_no_functions_is_empty_not_failed;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "stats scalar descriptor sync" `Quick
      test_stats_scalar_sync;
    Alcotest.test_case "engine = Recover.recover" `Quick
      test_engine_matches_recover;
    Alcotest.test_case "stream = batch" `Quick test_stream_matches_batch;
    Alcotest.test_case "stream dedup counted" `Quick
      test_stream_dedup_counted;
    Alcotest.test_case "stream counters in descriptor list" `Quick
      test_stream_counters_in_descriptor_list;
    Alcotest.test_case "layout: parallel = sequential" `Quick
      test_layout_parallel_matches_sequential;
    Alcotest.test_case "layout: cache and dedup" `Quick
      test_layout_cache_and_dedup;
    Alcotest.test_case "layout: caches are per-product" `Quick
      test_layout_cache_independent_of_reports;
  ]
