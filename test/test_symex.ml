(* The symbolic executor: event recording, expression shapes, loop
   bounding, fork budgets. Programs are hand-assembled so the expected
   traces are known exactly. *)

open Evm
module Sexpr = Symex.Sexpr
module Trace = Symex.Trace

let run_ops ?budget ops =
  Symex.Exec.run ?budget ~code:(Asm.assemble_ops ops) ~entry:0 ~init_stack:[] ()

let run_items ?budget items =
  Symex.Exec.run ?budget ~code:(Asm.assemble items) ~entry:0 ~init_stack:[] ()

let test_load_recorded () =
  let t = run_ops Opcode.[ push 4; CALLDATALOAD; POP; STOP ] in
  match t.Trace.loads with
  | [ l ] ->
    Alcotest.(check (option int)) "constant loc" (Some 4)
      (Sexpr.to_const_int l.Trace.loc)
  | ls -> Alcotest.failf "expected one load, got %d" (List.length ls)

let test_mask_event () =
  let t =
    run_ops
      Opcode.[ push 4; CALLDATALOAD; push_u256 (U256.ones_low 20); AND; POP; STOP ]
  in
  match t.Trace.usages with
  | [ { Trace.kind = Trace.Mask_and m; subject = Trace.Sub_load 0; _ } ] ->
    Alcotest.(check bool) "20-byte mask" true (U256.equal m (U256.ones_low 20))
  | _ -> Alcotest.fail "expected one Mask_and usage on load 0"

let test_signextend_event () =
  let t =
    run_ops Opcode.[ push 4; CALLDATALOAD; push 3; SIGNEXTEND; POP; STOP ]
  in
  Alcotest.(check bool) "signext recorded" true
    (List.exists
       (fun u -> u.Trace.kind = Trace.Mask_signext 3)
       t.Trace.usages)

let test_bool_mask_event () =
  let t =
    run_ops Opcode.[ push 4; CALLDATALOAD; ISZERO; ISZERO; POP; STOP ]
  in
  Alcotest.(check bool) "double iszero recorded" true
    (List.exists (fun u -> u.Trace.kind = Trace.Mask_bool) t.Trace.usages)

let test_byte_event () =
  let t =
    run_ops Opcode.[ push 4; CALLDATALOAD; push 0; BYTE; POP; STOP ]
  in
  Alcotest.(check bool) "byte read recorded" true
    (List.exists (fun u -> u.Trace.kind = Trace.Byte_read) t.Trace.usages)

let test_signed_use_event () =
  let t =
    run_ops Opcode.[ push 2; push 4; CALLDATALOAD; SDIV; POP; STOP ]
  in
  Alcotest.(check bool) "sdiv recorded" true
    (List.exists (fun u -> u.Trace.kind = Trace.Signed_use) t.Trace.usages)

let test_copy_and_region () =
  (* copy 32 bytes of calldata into memory, read it back, mask it: the
     mask must be attributed to the copy's region *)
  let t =
    run_ops
      Opcode.[
        push 32; push 4; push 0x100; CALLDATACOPY;
        push 0x100; MLOAD;
        push_u256 (U256.ones_low 1); AND; POP; STOP;
      ]
  in
  (match t.Trace.copies with
  | [ c ] ->
    Alcotest.(check (option int)) "src" (Some 4) (Sexpr.to_const_int c.Trace.src)
  | _ -> Alcotest.fail "expected one copy");
  Alcotest.(check bool) "mask on region" true
    (List.exists
       (fun u ->
         match (u.Trace.subject, u.Trace.kind) with
         | Trace.Sub_region _, Trace.Mask_and _ -> true
         | _ -> false)
       t.Trace.usages)

let test_mstore_mload_roundtrip () =
  (* a value stored to concrete memory comes back symbolically intact *)
  let t =
    run_ops
      Opcode.[
        push 4; CALLDATALOAD; push 0x40; MSTORE;
        push 0x40; MLOAD; push 1; ADD; POP; STOP;
      ]
  in
  (* the math use must land on the original load *)
  Alcotest.(check bool) "math on load through memory" true
    (List.exists
       (fun u ->
         u.Trace.subject = Trace.Sub_load 0 && u.Trace.kind = Trace.Math_use)
       t.Trace.usages)

let test_symbolic_branch_forks () =
  (* both sides of a symbolic branch must be explored *)
  let t =
    run_items
      Asm.[
        Op Opcode.CALLVALUE;
        Push_label "a";
        Op Opcode.JUMPI;
        Op (Opcode.push 8); Op Opcode.CALLDATALOAD; Op Opcode.POP;
        Op Opcode.STOP;
        Label "a";
        Op (Opcode.push 40); Op Opcode.CALLDATALOAD; Op Opcode.POP;
        Op Opcode.STOP;
      ]
  in
  let locs =
    List.filter_map (fun l -> Sexpr.to_const_int l.Trace.loc) t.Trace.loads
  in
  Alcotest.(check bool) "both branches visited" true
    (List.mem 8 locs && List.mem 40 locs);
  Alcotest.(check int) "two paths" 2 t.Trace.paths_explored

let test_concrete_branch_no_fork () =
  let t =
    run_items
      Asm.[
        Op (Opcode.push 0);
        Push_label "dead";
        Op Opcode.JUMPI;
        Op Opcode.STOP;
        Label "dead";
        Op (Opcode.push 99); Op Opcode.CALLDATALOAD; Op Opcode.POP;
        Op Opcode.STOP;
      ]
  in
  Alcotest.(check int) "dead branch not taken" 0 (List.length t.Trace.loads);
  Alcotest.(check int) "single path" 1 t.Trace.paths_explored

let test_symbolic_loop_bounded () =
  (* while (i < calldataload(4)) i++ — must terminate via the fork
     budget *)
  let t =
    run_items
      Asm.[
        Op (Opcode.push 0); Op (Opcode.push 0); Op Opcode.MSTORE;
        Label "head";
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.push 0); Op Opcode.MLOAD;
        Op Opcode.LT;
        Op Opcode.ISZERO;
        Push_label "exit";
        Op Opcode.JUMPI;
        Op (Opcode.push 0); Op Opcode.MLOAD;
        Op (Opcode.push 1); Op Opcode.ADD;
        Op (Opcode.push 0); Op Opcode.MSTORE;
        Push_label "head";
        Op Opcode.JUMP;
        Label "exit";
        Op Opcode.STOP;
      ]
  in
  Alcotest.(check bool) "bounded paths" true (t.Trace.paths_explored <= 16)

let test_jumpi_conds_recorded () =
  let t =
    run_items
      Asm.[
        Op (Opcode.push 10);
        Op Opcode.CALLVALUE;
        Op Opcode.LT;
        Push_label "ok";
        Op Opcode.JUMPI;
        Op Opcode.STOP;
        Label "ok";
        Op Opcode.STOP;
      ]
  in
  let found = ref false in
  Hashtbl.iter
    (fun _ conds ->
      List.iter
        (fun c ->
          match Sexpr.node c with
          | Sexpr.Bin (Sexpr.Blt, l, r) -> (
            match (Sexpr.node l, Sexpr.node r) with
            | Sexpr.Env _, Sexpr.Const _ -> found := true
            | _ -> ())
          | _ -> ())
        conds)
    t.Trace.jumpi_conds;
  Alcotest.(check bool) "LT condition kept structurally" true !found

let test_range_check_event () =
  (* Vyper-style: value < bound guarded branch yields a Range_lt *)
  let t =
    run_items
      Asm.[
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.push_u256 (U256.pow2 160));
        Op (Opcode.DUP 2); Op Opcode.LT; Op Opcode.ISZERO;
        Push_label "revert"; Op Opcode.JUMPI;
        Op Opcode.POP; Op Opcode.POP; Op Opcode.STOP;
        Label "revert";
        Op (Opcode.push 0); Op (Opcode.push 0); Op Opcode.REVERT;
      ]
  in
  Alcotest.(check bool) "range check recorded" true
    (List.exists
       (fun u ->
         match u.Trace.kind with
         | Trace.Range_lt b -> U256.equal b (U256.pow2 160)
         | _ -> false)
       t.Trace.usages)

let test_symbolic_jump_kills_path () =
  (* jump to a calldata-dependent target must end the path quietly *)
  let t = run_ops Opcode.[ push 4; CALLDATALOAD; JUMP; STOP ] in
  Alcotest.(check int) "one path" 1 t.Trace.paths_explored

let test_stack_underflow_recovers () =
  (* popping an empty stack yields a fresh symbol, not a crash *)
  let t = run_ops Opcode.[ POP; POP; push 1; POP; STOP ] in
  Alcotest.(check int) "no loads" 0 (List.length t.Trace.loads)

let test_expr_queries () =
  let x = Sexpr.cdload 0 in
  let e =
    Sexpr.bin Sexpr.Badd (Sexpr.of_int 4)
      (Sexpr.bin Sexpr.Bmul (Sexpr.of_int 32) (Sexpr.env "cv"))
  in
  Alcotest.(check bool) "has_mul_by 32" true (Sexpr.has_mul_by e 32);
  Alcotest.(check bool) "no mul by 31" false (Sexpr.has_mul_by e 31);
  Alcotest.(check int) "const offset" 4 (Sexpr.const_offset e);
  Alcotest.(check bool) "contains env" true (Sexpr.contains e (Sexpr.env "cv"));
  Alcotest.(check bool) "mentions load" true
    (Sexpr.mentions_load (Sexpr.bin Sexpr.Badd x (Sexpr.of_int 4)) 0);
  let masked = Sexpr.bin Sexpr.Band x (Sexpr.const (U256.ones_low 20)) in
  Alcotest.(check bool) "subject strips mask" true
    (Sexpr.subject masked = Some (`Load 0));
  (* constant folding except comparisons *)
  (match Sexpr.node (Sexpr.bin Sexpr.Badd (Sexpr.of_int 2) (Sexpr.of_int 3)) with
  | Sexpr.Const v -> Alcotest.(check bool) "2+3 folds" true (U256.equal v (U256.of_int 5))
  | _ -> Alcotest.fail "addition should fold");
  (match Sexpr.node (Sexpr.bin Sexpr.Blt (Sexpr.of_int 2) (Sexpr.of_int 3)) with
  | Sexpr.Bin (Sexpr.Blt, _, _) -> ()
  | _ -> Alcotest.fail "comparison must stay structural");
  Alcotest.(check bool) "eval_concrete recovers truth" true
    (match Sexpr.eval_concrete (Sexpr.bin Sexpr.Blt (Sexpr.of_int 2) (Sexpr.of_int 3)) with
    | Some v -> U256.equal v U256.one
    | None -> false)

(* ---- hash-consing invariants ---------------------------------------- *)

let test_interning_physical_equality () =
  (* the same tree built along different construction paths must come
     back as the same physical node *)
  let a =
    Sexpr.bin Sexpr.Badd (Sexpr.cdload 1)
      (Sexpr.bin Sexpr.Bmul (Sexpr.of_int 32) (Sexpr.env "i"))
  in
  let mul = Sexpr.bin Sexpr.Bmul (Sexpr.of_int 32) (Sexpr.env "i") in
  let b = Sexpr.bin Sexpr.Badd (Sexpr.cdload 1) mul in
  Alcotest.(check bool) "physically equal" true (a == b);
  Alcotest.(check bool) "equal agrees" true (Sexpr.equal a b);
  Alcotest.(check int) "same id" (Sexpr.id a) (Sexpr.id b);
  Alcotest.(check int) "same hash" (Sexpr.hash a) (Sexpr.hash b);
  (* leaves intern too *)
  Alcotest.(check bool) "const interned" true
    (Sexpr.const (U256.of_int 77777) == Sexpr.const (U256.of_int 77777));
  Alcotest.(check bool) "cdload interned" true
    (Sexpr.cdload 3 == Sexpr.cdload 3);
  Alcotest.(check bool) "env interned" true
    (Sexpr.env "caller" == Sexpr.env "caller");
  Alcotest.(check bool) "cdsize interned" true
    (Sexpr.cdsize () == Sexpr.cdsize ());
  Alcotest.(check bool) "mem_item interned" true
    (Sexpr.mem_item 5 (Sexpr.of_int 0) == Sexpr.mem_item 5 (Sexpr.of_int 0));
  (* distinct trees stay distinct *)
  Alcotest.(check bool) "different ops differ" false
    (Sexpr.bin Sexpr.Bsub a a == Sexpr.bin Sexpr.Badd a a);
  (* simplifier runs before interning: x + 0 yields x itself *)
  Alcotest.(check bool) "x + 0 is x" true
    (Sexpr.bin Sexpr.Badd a (Sexpr.of_int 0) == a);
  (* triple-iszero collapses to the interned single iszero *)
  let iz e = Sexpr.un Sexpr.Uiszero e in
  Alcotest.(check bool) "iszero^3 = iszero^1" true (iz (iz (iz a)) == iz a)

(* A structural clone of the pre-interning Sexpr: plain variant nodes,
   the same simplifier decision tree, injective printing. Used as the
   oracle for "simplifier output unchanged under interning". *)
module Oracle = struct
  type t =
    | Const of U256.t
    | CDLoad of int
    | CDSize
    | Env of string
    | MemItem of int * t
    | Bin of Sexpr.binop * t * t
    | Un of Sexpr.unop * t

  let un op e =
    match (op, e) with
    | Sexpr.Unot, Const v -> Const (U256.lognot v)
    | Sexpr.Uiszero, Const v ->
      Const (if U256.is_zero v then U256.one else U256.zero)
    | Sexpr.Uiszero, Un (Sexpr.Uiszero, Un (Sexpr.Uiszero, x)) ->
      Un (Sexpr.Uiszero, x)
    | _ -> Un (op, e)

  let is_comparison = function
    | Sexpr.Blt | Sexpr.Bgt | Sexpr.Bslt | Sexpr.Bsgt | Sexpr.Beq -> true
    | _ -> false

  let eval_bin op a b =
    Option.get
      (Sexpr.eval_concrete
         (Sexpr.bin op (Sexpr.const a) (Sexpr.const b)))

  let bin op a b =
    match (a, b) with
    | Const x, Const y when not (is_comparison op) -> Const (eval_bin op x y)
    | _ -> (
      match (op, a, b) with
      | Sexpr.Badd, x, Const z when U256.is_zero z -> x
      | Sexpr.Badd, Const z, x when U256.is_zero z -> x
      | Sexpr.Bmul, x, Const o when U256.equal o U256.one -> x
      | Sexpr.Bmul, Const o, x when U256.equal o U256.one -> x
      | Sexpr.Badd, Bin (Sexpr.Badd, x, Const c1), Const c2 ->
        Bin (Sexpr.Badd, x, Const (U256.add c1 c2))
      | Sexpr.Badd, Const c1, Bin (Sexpr.Badd, x, Const c2) ->
        Bin (Sexpr.Badd, x, Const (U256.add c1 c2))
      | _ -> Bin (op, a, b))

  let binop_name op =
    (* reuse the interned printer for operator names via a probe term *)
    match
      String.split_on_char ' '
        (Sexpr.to_string
           (Sexpr.bin op (Sexpr.env "l") (Sexpr.env "r")))
    with
    | [ _; name; _ ] -> name
    | _ -> assert false

  let rec to_string = function
    | Const v -> "0x" ^ U256.to_hex v
    | CDLoad id -> Printf.sprintf "cd%d" id
    | CDSize -> "cdsize"
    | Env name -> name
    | MemItem (rid, off) -> Printf.sprintf "mem%d[%s]" rid (to_string off)
    | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (binop_name op) (to_string b)
    | Un (Sexpr.Unot, a) -> Printf.sprintf "~%s" (to_string a)
    | Un (Sexpr.Uiszero, a) -> Printf.sprintf "!%s" (to_string a)
end

let all_binops =
  Sexpr.
    [
      Badd; Bsub; Bmul; Bdiv; Bsdiv; Bmod; Bsmod; Bexp; Band; Bor; Bxor;
      Blt; Bgt; Bslt; Bsgt; Beq; Bbyte; Bshl; Bshr; Bsar; Bsignext;
    ]

let test_simplifier_matches_oracle () =
  (* drive both constructors with the same random construction schedule
     and require identical printed terms. Seeded: reproducible corpus. *)
  let rng = Random.State.make [| 0x5169ec |] in
  let interesting_consts =
    [ 0; 1; 2; 3; 4; 31; 32; 36; 255; 256; 1024 ]
  in
  let rand_const () =
    if Random.State.bool rng then
      U256.of_int
        (List.nth interesting_consts
           (Random.State.int rng (List.length interesting_consts)))
    else U256.of_int64 (Random.State.int64 rng Int64.max_int)
  in
  let rec gen depth : Sexpr.t * Oracle.t =
    if depth = 0 || Random.State.int rng 4 = 0 then
      match Random.State.int rng 5 with
      | 0 ->
        let v = rand_const () in
        (Sexpr.const v, Oracle.Const v)
      | 1 ->
        let i = Random.State.int rng 4 in
        (Sexpr.cdload i, Oracle.CDLoad i)
      | 2 -> (Sexpr.cdsize (), Oracle.CDSize)
      | 3 ->
        let name = Printf.sprintf "e%d" (Random.State.int rng 3) in
        (Sexpr.env name, Oracle.Env name)
      | _ ->
        let rid = Random.State.int rng 3 in
        let off = U256.of_int (32 * Random.State.int rng 4) in
        (Sexpr.mem_item rid (Sexpr.const off),
         Oracle.MemItem (rid, Oracle.Const off))
    else if Random.State.int rng 4 = 0 then begin
      let op = if Random.State.bool rng then Sexpr.Unot else Sexpr.Uiszero in
      let s, o = gen (depth - 1) in
      (Sexpr.un op s, Oracle.un op o)
    end
    else begin
      let op = List.nth all_binops (Random.State.int rng 21) in
      let sa, oa = gen (depth - 1) in
      let sb, ob = gen (depth - 1) in
      (Sexpr.bin op sa sb, Oracle.bin op oa ob)
    end
  in
  for i = 1 to 1000 do
    let s, o = gen 5 in
    let ss = Sexpr.to_string s and os = Oracle.to_string o in
    if not (String.equal ss os) then
      Alcotest.failf "case %d: interned %s <> oracle %s" i ss os
  done

let test_query_memo_consistency () =
  (* memoized queries must agree with themselves across repeated calls
     and with a fresh structurally identical term *)
  let e =
    Sexpr.bin Sexpr.Badd
      (Sexpr.bin Sexpr.Bmul (Sexpr.of_int 32) (Sexpr.cdload 2))
      (Sexpr.bin Sexpr.Badd (Sexpr.cdload 1) (Sexpr.of_int 68))
  in
  let l1 = Sexpr.loads_of e in
  let l2 = Sexpr.loads_of e in
  Alcotest.(check (list int)) "loads_of stable" l1 l2;
  Alcotest.(check (list int)) "loads in traversal order" [ 2; 1 ] l1;
  Alcotest.(check int) "const_offset memo" (Sexpr.const_offset e)
    (Sexpr.const_offset e);
  Alcotest.(check bool) "has_mul_by memo" (Sexpr.has_mul_by e 32)
    (Sexpr.has_mul_by e 32);
  let hits0, misses0 = Sexpr.interner_counters () in
  let _ = Sexpr.bin Sexpr.Badd (Sexpr.cdload 1) (Sexpr.of_int 68) in
  let hits1, misses1 = Sexpr.interner_counters () in
  Alcotest.(check bool) "rebuild hits the interner" true (hits1 > hits0);
  Alcotest.(check int) "rebuild allocates nothing" misses0 misses1

let suite =
  [
    Alcotest.test_case "load recorded" `Quick test_load_recorded;
    Alcotest.test_case "mask event" `Quick test_mask_event;
    Alcotest.test_case "signextend event" `Quick test_signextend_event;
    Alcotest.test_case "bool mask event" `Quick test_bool_mask_event;
    Alcotest.test_case "byte event" `Quick test_byte_event;
    Alcotest.test_case "signed use event" `Quick test_signed_use_event;
    Alcotest.test_case "copy region attribution" `Quick test_copy_and_region;
    Alcotest.test_case "memory roundtrip" `Quick test_mstore_mload_roundtrip;
    Alcotest.test_case "symbolic branch forks" `Quick test_symbolic_branch_forks;
    Alcotest.test_case "concrete branch no fork" `Quick test_concrete_branch_no_fork;
    Alcotest.test_case "symbolic loop bounded" `Quick test_symbolic_loop_bounded;
    Alcotest.test_case "jumpi conds recorded" `Quick test_jumpi_conds_recorded;
    Alcotest.test_case "range check event" `Quick test_range_check_event;
    Alcotest.test_case "symbolic jump ends path" `Quick test_symbolic_jump_kills_path;
    Alcotest.test_case "stack underflow recovers" `Quick test_stack_underflow_recovers;
    Alcotest.test_case "expression queries" `Quick test_expr_queries;
    Alcotest.test_case "interning physical equality" `Quick
      test_interning_physical_equality;
    Alcotest.test_case "simplifier matches oracle" `Quick
      test_simplifier_matches_oracle;
    Alcotest.test_case "query memo consistency" `Quick
      test_query_memo_consistency;
  ]
