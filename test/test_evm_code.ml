(* Opcode encoding, assembler/disassembler roundtrips and CFG recovery
   (including the control-dependence analysis the rules lean on). *)

open Evm

let all_simple_opcodes =
  Opcode.
    [
      STOP; ADD; MUL; SUB; DIV; SDIV; MOD; SMOD; ADDMOD; MULMOD; EXP;
      SIGNEXTEND; LT; GT; SLT; SGT; EQ; ISZERO; AND; OR; XOR; NOT; BYTE;
      SHL; SHR; SAR; SHA3; ADDRESS; BALANCE; ORIGIN; CALLER; CALLVALUE;
      CALLDATALOAD; CALLDATASIZE; CALLDATACOPY; CODESIZE; CODECOPY;
      GASPRICE; EXTCODESIZE; EXTCODECOPY; RETURNDATASIZE; RETURNDATACOPY;
      EXTCODEHASH; BLOCKHASH; COINBASE; TIMESTAMP; NUMBER; PREVRANDAO;
      GASLIMIT; CHAINID; SELFBALANCE; BASEFEE; POP; MLOAD; MSTORE;
      MSTORE8; SLOAD; SSTORE; JUMP; JUMPI; PC; MSIZE; GAS; JUMPDEST;
      CREATE; CALL; CALLCODE; RETURN; DELEGATECALL; CREATE2; STATICCALL;
      REVERT; INVALID; SELFDESTRUCT;
    ]

let test_opcode_roundtrip () =
  let ops =
    all_simple_opcodes
    @ List.init 16 (fun i -> Opcode.DUP (i + 1))
    @ List.init 16 (fun i -> Opcode.SWAP (i + 1))
    @ List.init 5 (fun i -> Opcode.LOG i)
    @ List.init 32 (fun i -> Opcode.PUSH (i + 1, U256.of_int i))
  in
  let code = Asm.assemble_ops ops in
  let back = List.map (fun i -> i.Disasm.op) (Disasm.disassemble code) in
  Alcotest.(check int) "same length" (List.length ops) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same op" (Opcode.mnemonic a) (Opcode.mnemonic b))
    ops back

let test_push_immediates () =
  let v = U256.of_hex "0xdeadbeefcafe" in
  let code = Asm.assemble_ops [ Opcode.push_u256 v ] in
  Alcotest.(check int) "PUSH6 size" 7 (String.length code);
  match Disasm.disassemble code with
  | [ { Disasm.op = Opcode.PUSH (6, w); _ } ] ->
    Alcotest.(check bool) "value" true (U256.equal v w)
  | _ -> Alcotest.fail "expected one PUSH6"

let test_truncated_push () =
  (* a PUSH whose immediate runs past the end of code reads zeros *)
  let code = "\x62\xaa" (* PUSH3 with only one immediate byte *) in
  match Disasm.disassemble code with
  | [ { Disasm.op = Opcode.PUSH (3, v); _ } ] ->
    Alcotest.(check bool) "zero padded" true
      (U256.equal v (U256.of_hex "0xaa0000"))
  | _ -> Alcotest.fail "expected truncated PUSH3"

let test_labels () =
  let open Asm in
  let code =
    assemble
      [
        Op (Opcode.push 1);
        Push_label "target";
        Op Opcode.JUMPI;
        Op Opcode.STOP;
        Label "target";
        Op (Opcode.push 42);
        Op Opcode.STOP;
      ]
  in
  let res = Interp.execute ~code ~calldata:"" () in
  Alcotest.(check bool) "jumps and stops" true
    (res.Interp.outcome = Interp.Stopped)

let test_duplicate_label () =
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Asm.assemble: duplicate label x") (fun () ->
      ignore (Asm.assemble [ Asm.Label "x"; Asm.Label "x" ]))

let test_undefined_label () =
  Alcotest.check_raises "undefined label"
    (Invalid_argument "Asm.assemble: undefined label nope") (fun () ->
      ignore (Asm.assemble [ Asm.Push_label "nope" ]))

(* -- CFG ----------------------------------------------------------------- *)

(* if (x) { A } else { B }; C — the classic diamond *)
let diamond =
  Asm.
    [
      Op (Opcode.push 1);
      Push_label "then";
      Op Opcode.JUMPI;
      (* else *)
      Op (Opcode.push 0);
      Op Opcode.POP;
      Push_label "join";
      Op Opcode.JUMP;
      Label "then";
      Op (Opcode.push 1);
      Op Opcode.POP;
      Label "join";
      Op Opcode.STOP;
    ]

let test_cfg_blocks () =
  let cfg = Cfg.build (Asm.assemble diamond) in
  Alcotest.(check int) "four blocks" 4 (Cfg.block_count cfg);
  match Cfg.entry cfg with
  | Some b -> (
    match b.Cfg.succ with
    | [ Cfg.Branch _ ] -> ()
    | _ -> Alcotest.fail "entry should branch")
  | None -> Alcotest.fail "no entry"

let test_cfg_diamond_control_deps () =
  let code = Asm.assemble diamond in
  let cfg = Cfg.build code in
  let deps = Cfg.control_deps cfg in
  (* then and else are control dependent on the entry branch; the join
     is not *)
  let entry = (Option.get (Cfg.entry cfg)).Cfg.start in
  let blocks = Cfg.blocks cfg in
  let join = List.nth blocks (List.length blocks - 1) in
  Alcotest.(check bool) "join not dependent" true
    (match Hashtbl.find_opt deps join.Cfg.start with
    | None -> true
    | Some parents -> not (List.mem entry parents));
  let then_or_else = List.nth blocks 1 in
  Alcotest.(check bool) "arm depends on branch" true
    (match Hashtbl.find_opt deps then_or_else.Cfg.start with
    | Some parents -> List.mem entry parents
    | None -> false)

(* while-style loop: the body must be control dependent on the guard *)
let loop_prog =
  Asm.
    [
      Op (Opcode.push 0); Op (Opcode.push 0); Op Opcode.MSTORE;
      Label "head";
      Op (Opcode.push 3);
      Op (Opcode.push 0); Op Opcode.MLOAD;
      Op Opcode.LT;
      Op Opcode.ISZERO;
      Push_label "exit";
      Op Opcode.JUMPI;
      (* body *)
      Op (Opcode.push 0); Op Opcode.MLOAD;
      Op (Opcode.push 1); Op Opcode.ADD;
      Op (Opcode.push 0); Op Opcode.MSTORE;
      Push_label "head";
      Op Opcode.JUMP;
      Label "exit";
      Op Opcode.STOP;
    ]

let test_cfg_loop_control_deps () =
  let code = Asm.assemble loop_prog in
  let cfg = Cfg.build code in
  let deps = Cfg.control_deps cfg in
  (* find the guard block (ends in JUMPI) and the body block after it *)
  let guard =
    List.find
      (fun b -> b.Cfg.terminator = Some Opcode.JUMPI)
      (Cfg.blocks cfg)
  in
  let body =
    List.find
      (fun (b : Cfg.block) ->
        match guard.Cfg.succ with
        | [ Cfg.Branch { fallthrough; _ } ] -> b.Cfg.start = fallthrough
        | _ -> false)
      (Cfg.blocks cfg)
  in
  Alcotest.(check bool) "body depends on guard" true
    (match Hashtbl.find_opt deps body.Cfg.start with
    | Some parents -> List.mem guard.Cfg.start parents
    | None -> false);
  (* the loop runs in the interpreter and terminates *)
  let res = Interp.execute ~code ~calldata:"" () in
  Alcotest.(check bool) "terminates" true (res.Interp.outcome = Interp.Stopped)

let test_transitive_deps () =
  (* nested guards: inner guard depends on outer; transitive closure of
     a block under both lists both *)
  let prog =
    Asm.
      [
        Op Opcode.CALLVALUE;
        Push_label "l1";
        Op Opcode.JUMPI;
        Op Opcode.STOP;
        Label "l1";
        Op Opcode.CALLER;
        Push_label "l2";
        Op Opcode.JUMPI;
        Op Opcode.STOP;
        Label "l2";
        Op (Opcode.push 1);
        Op Opcode.POP;
        Op Opcode.STOP;
      ]
  in
  let code = Asm.assemble prog in
  let cfg = Cfg.build code in
  let deps = Cfg.control_deps cfg in
  let l2 =
    List.find
      (fun (b : Cfg.block) ->
        List.exists
          (fun i -> i.Disasm.op = Opcode.PUSH (1, U256.one))
          b.Cfg.instrs)
      (Cfg.blocks cfg)
  in
  let chain = Cfg.transitive_deps deps l2.Cfg.start in
  Alcotest.(check int) "two guards in chain" 2 (List.length chain)

(* nested loops: inner body depends on both guards, outer body only on
   the outer guard *)
let nested_loop_prog =
  Asm.
    [
      Op (Opcode.push 0); Op (Opcode.push 0); Op Opcode.MSTORE;
      Label "outer";
      Op (Opcode.push 2);
      Op (Opcode.push 0); Op Opcode.MLOAD;
      Op Opcode.LT;
      Op Opcode.ISZERO;
      Push_label "done";
      Op Opcode.JUMPI;
      (* outer body: reset the inner counter *)
      Op (Opcode.push 0); Op (Opcode.push 32); Op Opcode.MSTORE;
      Label "inner";
      Op (Opcode.push 2);
      Op (Opcode.push 32); Op Opcode.MLOAD;
      Op Opcode.LT;
      Op Opcode.ISZERO;
      Push_label "inner_done";
      Op Opcode.JUMPI;
      (* inner body *)
      Op (Opcode.push 32); Op Opcode.MLOAD;
      Op (Opcode.push 1); Op Opcode.ADD;
      Op (Opcode.push 32); Op Opcode.MSTORE;
      Push_label "inner";
      Op Opcode.JUMP;
      Label "inner_done";
      Op (Opcode.push 0); Op Opcode.MLOAD;
      Op (Opcode.push 1); Op Opcode.ADD;
      Op (Opcode.push 0); Op Opcode.MSTORE;
      Push_label "outer";
      Op Opcode.JUMP;
      Label "done";
      Op Opcode.STOP;
    ]

let test_nested_loop_control_deps () =
  let code = Asm.assemble nested_loop_prog in
  let cfg = Cfg.build code in
  let deps = Cfg.control_deps cfg in
  let guards =
    List.filter
      (fun (b : Cfg.block) -> b.Cfg.terminator = Some Opcode.JUMPI)
      (Cfg.blocks cfg)
  in
  Alcotest.(check int) "two guards" 2 (List.length guards);
  let outer_guard = List.nth guards 0 and inner_guard = List.nth guards 1 in
  let fallthrough_of (g : Cfg.block) =
    match g.Cfg.succ with
    | [ Cfg.Branch { fallthrough; _ } ] -> fallthrough
    | _ -> Alcotest.fail "guard should branch"
  in
  let inner_body = fallthrough_of inner_guard in
  let outer_body = fallthrough_of outer_guard in
  let chain = Cfg.transitive_deps deps inner_body in
  Alcotest.(check bool) "inner body under inner guard" true
    (List.mem inner_guard.Cfg.start chain);
  Alcotest.(check bool) "inner body under outer guard" true
    (List.mem outer_guard.Cfg.start chain);
  let outer_chain = Cfg.transitive_deps deps outer_body in
  Alcotest.(check bool) "outer body not under inner guard" true
    (not (List.mem inner_guard.Cfg.start outer_chain));
  (* sanity: both loops terminate under the reference interpreter *)
  let res = Interp.execute ~code ~calldata:"" () in
  Alcotest.(check bool) "terminates" true (res.Interp.outcome = Interp.Stopped)

(* the target is pushed in one block and consumed by a JUMP in another:
   the single-block peephole cannot resolve it *)
let cross_block_jump_prog =
  Asm.
    [
      Push_label "target";
      Op Opcode.CALLVALUE;
      Push_label "mid";
      Op Opcode.JUMPI;
      Label "mid";
      Op Opcode.JUMP;
      Label "target";
      Op Opcode.STOP;
    ]

let test_unresolved_and_resolve () =
  let code = Asm.assemble cross_block_jump_prog in
  let cfg = Cfg.build code in
  Alcotest.(check int) "one unresolved edge" 1 (Cfg.unresolved_count cfg);
  let jump_block =
    List.find
      (fun (b : Cfg.block) -> b.Cfg.terminator = Some Opcode.JUMP)
      (Cfg.blocks cfg)
  in
  Alcotest.(check bool) "edge is Unresolved" true
    (List.mem Cfg.Unresolved jump_block.Cfg.succ);
  let target =
    List.find
      (fun (b : Cfg.block) -> b.Cfg.terminator = Some Opcode.STOP)
      (Cfg.blocks cfg)
  in
  let resolved =
    Cfg.resolve cfg (fun start ->
        if start = jump_block.Cfg.start then [ target.Cfg.start ] else [])
  in
  Alcotest.(check int) "no unresolved edges left" 0
    (Cfg.unresolved_count resolved);
  (match Cfg.block_at resolved jump_block.Cfg.start with
  | Some b ->
    Alcotest.(check bool) "edge became Jump_to" true
      (List.mem (Cfg.Jump_to target.Cfg.start) b.Cfg.succ)
  | None -> Alcotest.fail "jump block lost by resolve");
  (* an empty answer keeps the edge Unresolved *)
  let kept = Cfg.resolve cfg (fun _ -> []) in
  Alcotest.(check int) "empty answer keeps edge" 1 (Cfg.unresolved_count kept)

let test_block_of_pc () =
  let code = Asm.assemble diamond in
  let cfg = Cfg.build code in
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun i ->
          match Cfg.block_of_pc cfg i.Disasm.offset with
          | Some found ->
            Alcotest.(check int) "pc maps to its block" b.Cfg.start
              found.Cfg.start
          | None -> Alcotest.fail "pc not mapped")
        b.Cfg.instrs)
    (Cfg.blocks cfg)

let suite =
  [
    Alcotest.test_case "opcode roundtrip" `Quick test_opcode_roundtrip;
    Alcotest.test_case "push immediates" `Quick test_push_immediates;
    Alcotest.test_case "truncated push" `Quick test_truncated_push;
    Alcotest.test_case "labels assemble and jump" `Quick test_labels;
    Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label;
    Alcotest.test_case "undefined label rejected" `Quick test_undefined_label;
    Alcotest.test_case "cfg blocks" `Quick test_cfg_blocks;
    Alcotest.test_case "diamond control deps" `Quick test_cfg_diamond_control_deps;
    Alcotest.test_case "loop control deps" `Quick test_cfg_loop_control_deps;
    Alcotest.test_case "transitive deps" `Quick test_transitive_deps;
    Alcotest.test_case "nested loop control deps" `Quick
      test_nested_loop_control_deps;
    Alcotest.test_case "unresolved edges and resolve" `Quick
      test_unresolved_and_resolve;
    Alcotest.test_case "block_of_pc" `Quick test_block_of_pc;
  ]
