(* Tier-1 promotion of the bench --smoke drift gates: on a small mixed
   corpus (Solidity across versions, Vyper, abiv2, obfuscated), the
   engine's rendered reports must be byte-identical across every
   execution knob — parallel fan-out, static pruning, and a warm cache.
   The bench keeps its own larger-corpus run; this copy is the one that
   blocks a merge. *)

let seed = 0x5d21f7

let corpus () =
  let samples =
    Solc.Corpus.dataset3 ~seed ~n:24
    @ Solc.Corpus.vyper_set ~seed ~n:6
    @ Solc.Corpus.abiv2_set ~seed ~n:6
  in
  let plain = List.map (fun s -> s.Solc.Corpus.code) samples in
  (* a few obfuscated bodies so the gate also covers the junk-insertion
     and constant-splitting paths *)
  let rng = Random.State.make [| seed; 1 |] in
  let obf =
    List.filteri (fun i _ -> i < 4) samples
    |> List.mapi (fun i (s : Solc.Corpus.sample) ->
           Solc.Obfuscate.compile_obfuscated
             ~level:(1 + (i mod 2))
             ~seed:(Random.State.int rng 1_000_000)
             {
               Solc.Compile.fns = [ s.Solc.Corpus.fn ];
               version = s.Solc.Corpus.version;
               storage = [];
             })
  in
  plain @ obf

let render reports =
  String.concat "\n"
    (List.map
       (fun r ->
         Format.asprintf "%a" Sigrec.Engine.pp_report
           { r with Sigrec.Engine.from_cache = false })
       reports)

let check_identical name base other =
  if base <> other then
    Alcotest.failf "recovery output drifted under %s" name

let engine ?(jobs = 1) ?(static_prune = true) () =
  Sigrec.Engine.make
    Sigrec.Engine.Config.(
      default |> with_jobs jobs |> with_static_prune static_prune)

let baseline codes =
  render (Sigrec.Engine.recover_all (engine ()) codes)

let parallel_identical () =
  let codes = corpus () in
  let base = baseline codes in
  List.iter
    (fun jobs ->
      check_identical
        (Printf.sprintf "jobs=%d" jobs)
        base
        (render (Sigrec.Engine.recover_all (engine ~jobs ()) codes)))
    [ 2; 4 ]

let prune_identical () =
  let codes = corpus () in
  check_identical "static_prune=false" (baseline codes)
    (render
       (Sigrec.Engine.recover_all (engine ~static_prune:false ()) codes))

let warm_cache_identical () =
  let codes = corpus () in
  let engine = engine ~jobs:2 () in
  let cold = render (Sigrec.Engine.recover_all engine codes) in
  let warm = render (Sigrec.Engine.recover_all engine codes) in
  check_identical "warm cache" cold warm;
  (* the warm run must actually have been answered from the cache *)
  let stats = Sigrec.Engine.stats engine in
  if Sigrec.Stats.cache_hits stats = 0 then
    Alcotest.fail "second run recorded no cache hits"

let suite =
  [
    ("parallel fan-out is byte-identical", `Quick, parallel_identical);
    ("static pruning does not change output", `Quick, prune_identical);
    ("warm cache replays identically", `Quick, warm_cache_identical);
  ]
