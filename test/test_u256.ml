(* Unit and property tests for 256-bit machine words. *)

open Evm

let u = Alcotest.testable U256.pp U256.equal

let check_u = Alcotest.check u
let of_s = U256.of_string

(* -- generators --------------------------------------------------------- *)

let gen_u256 =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) ->
        let word x = U256.of_int64 x in
        U256.logor
          (U256.shift_left (word a) 192)
          (U256.logor
             (U256.shift_left (word b) 128)
             (U256.logor (U256.shift_left (word c) 64) (word d))))
      (quad int64 int64 int64 int64))

let arb_u256 = QCheck.make ~print:(fun v -> "0x" ^ U256.to_hex v) gen_u256

let arb_small =
  QCheck.make
    ~print:(fun v -> "0x" ^ U256.to_hex v)
    QCheck.Gen.(map (fun n -> U256.of_int (abs n)) int)

(* -- unit tests ---------------------------------------------------------- *)

let test_constants () =
  check_u "zero" U256.zero (of_s "0");
  check_u "one" U256.one (of_s "1");
  check_u "max"
    (of_s "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
    U256.max_int

let test_add_carry_chain () =
  (* carries must propagate through all four limbs *)
  check_u "max+1 wraps" U256.zero (U256.add U256.max_int U256.one);
  check_u "carry through limb 1"
    (of_s "0x10000000000000000")
    (U256.add (of_s "0xffffffffffffffff") U256.one);
  check_u "carry through limb 2"
    (of_s "0x100000000000000000000000000000000")
    (U256.add (of_s "0xffffffffffffffffffffffffffffffff") U256.one);
  check_u "carry through limb 3"
    (of_s "0x1000000000000000000000000000000000000000000000000")
    (U256.add (of_s "0xffffffffffffffffffffffffffffffffffffffffffffffff") U256.one)

let test_sub_borrow () =
  check_u "0-1 wraps" U256.max_int (U256.sub U256.zero U256.one);
  check_u "borrow chain" (of_s "0xffffffffffffffff")
    (U256.sub (of_s "0x10000000000000000") U256.one)

let test_mul_known () =
  check_u "small" (of_s "0x1532718febb346e1ce")
    (U256.mul (of_s "123456789123") (of_s "3167233434"));
  (* (2^128-1)^2 = 2^256 - 2^129 + 1 *)
  let m128 = U256.sub (U256.pow2 128) U256.one in
  check_u "wide square"
    (U256.add (U256.sub U256.zero (U256.pow2 129)) U256.one)
    (U256.mul m128 m128)

let test_div_known () =
  check_u "exact" (of_s "0x100") (U256.div (of_s "0x10000") (of_s "0x100"));
  check_u "by zero is zero" U256.zero (U256.div U256.one U256.zero);
  check_u "rem by zero is zero" U256.zero (U256.rem U256.one U256.zero);
  check_u "big division"
    (of_s "0x55555555555555555555555555555555")
    (U256.div (of_s "0xffffffffffffffffffffffffffffffff") (of_s "3"))

let test_sdiv_smod () =
  let minus x = U256.neg (U256.of_int x) in
  check_u "(-7)/2 = -3" (minus 3) (U256.sdiv (minus 7) (U256.of_int 2));
  check_u "7/(-2) = -3" (minus 3) (U256.sdiv (U256.of_int 7) (minus 2));
  check_u "(-7) smod 2 = -1" (minus 1) (U256.srem (minus 7) (U256.of_int 2));
  check_u "7 smod (-2) = 1" (U256.of_int 1) (U256.srem (U256.of_int 7) (minus 2));
  (* EVM edge case: MIN_INT / -1 = MIN_INT *)
  let min_int = U256.shift_left U256.one 255 in
  check_u "min/-1" min_int (U256.sdiv min_int U256.max_int)

let test_addmod_mulmod () =
  check_u "(max+max) mod 10 = 0" U256.zero
    (U256.addmod U256.max_int U256.max_int (U256.of_int 10));
  check_u "mulmod big" (U256.of_int 198967538)
    (U256.mulmod (U256.pow2 200) (U256.pow2 200) (U256.of_int 1000000007));
  check_u "addmod m=0" U256.zero (U256.addmod U256.one U256.one U256.zero);
  check_u "mulmod m=0" U256.zero (U256.mulmod U256.one U256.one U256.zero)

let test_exp () =
  check_u "3^5" (U256.of_int 243) (U256.exp (U256.of_int 3) (U256.of_int 5));
  check_u "2^256 wraps" U256.zero (U256.exp (U256.of_int 2) (U256.of_int 256));
  check_u "x^0" U256.one (U256.exp U256.max_int U256.zero);
  check_u "0^0" U256.one (U256.exp U256.zero U256.zero)

let test_signextend () =
  check_u "extend 0xff from byte 0" U256.max_int
    (U256.signextend 0 (U256.of_int 0xff));
  check_u "extend 0x7f from byte 0" (U256.of_int 0x7f)
    (U256.signextend 0 (U256.of_int 0x7f));
  check_u "k>=31 unchanged" (U256.of_int 0x1234)
    (U256.signextend 31 (U256.of_int 0x1234));
  (* sign extension also clears junk above a non-negative value *)
  check_u "clears high garbage" (U256.of_int 0x7f)
    (U256.signextend 0 (of_s "0xabcdef000000000000000000000000000000000000000000000000000000007f"))

let test_byte () =
  let v = of_s "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20" in
  check_u "byte 0 is most significant" (U256.of_int 0x01) (U256.byte 0 v);
  check_u "byte 31 is least significant" (U256.of_int 0x20) (U256.byte 31 v);
  check_u "byte 15" (U256.of_int 0x10) (U256.byte 15 v);
  check_u "out of range" U256.zero (U256.byte 32 v)

let test_shifts () =
  check_u "shl across limb" (U256.pow2 130) (U256.shift_left (U256.pow2 2) 128);
  check_u "shr across limb" (U256.pow2 2) (U256.shift_right (U256.pow2 130) 128);
  check_u "shl 256" U256.zero (U256.shift_left U256.one 256);
  check_u "sar negative" (U256.neg (U256.of_int 4))
    (U256.shift_right_arith (U256.neg (U256.of_int 16)) 2);
  check_u "sar 255 of negative" U256.max_int
    (U256.shift_right_arith (U256.neg U256.one) 255)

let test_masks () =
  check_u "ones_low 20"
    (of_s "0xffffffffffffffffffffffffffffffffffffffff")
    (U256.ones_low 20);
  check_u "ones_high 4"
    (of_s "0xffffffff00000000000000000000000000000000000000000000000000000000")
    (U256.ones_high 4);
  check_u "ones_low 32" U256.max_int (U256.ones_low 32);
  check_u "ones_high 0" U256.zero (U256.ones_high 0)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.check Alcotest.string "hex roundtrip" s (U256.to_hex (of_s ("0x" ^ s))))
    [ "0"; "1"; "deadbeef"; "ffffffffffffffffffffffff";
      "123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef" ]

let test_bytes_be () =
  let v = of_s "0xa9059cbb" in
  let b = U256.to_bytes_be v in
  Alcotest.(check int) "length" 32 (String.length b);
  Alcotest.(check char) "last byte" '\xbb' b.[31];
  check_u "roundtrip" v (U256.of_bytes_be b)

let test_decimal () =
  check_u "decimal parse" (U256.of_int 123456) (U256.of_decimal "123456");
  check_u "scale" (of_s "10000000000") (U256.of_decimal "10000000000")

let test_comparisons () =
  Alcotest.(check bool) "unsigned max > 1" true (U256.gt U256.max_int U256.one);
  Alcotest.(check bool) "signed max < 0 is -1 < 0... max_int is -1" true
    (U256.slt U256.max_int U256.zero);
  Alcotest.(check bool) "slt -1 < 1" true (U256.slt (U256.neg U256.one) U256.one);
  Alcotest.(check bool) "sgt 1 > -1" true (U256.sgt U256.one (U256.neg U256.one));
  Alcotest.(check int) "bits of 255" 8 (U256.bits (U256.of_int 255));
  Alcotest.(check int) "bits of 2^200" 201 (U256.bits (U256.pow2 200));
  Alcotest.(check int) "bits of zero" 0 (U256.bits U256.zero)

(* -- properties ---------------------------------------------------------- *)

(* deterministically seeded: a property failure here must reproduce on
   re-run, not depend on the harness's ambient randomness *)
let prop name arb f =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x51953c |])
    (QCheck.Test.make ~name ~count:300 arb f)

let properties =
  [
    prop "add commutative" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        U256.equal (U256.add a b) (U256.add b a));
    prop "add associative" (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U256.equal (U256.add a (U256.add b c)) (U256.add (U256.add a b) c));
    prop "sub inverse" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        U256.equal (U256.sub (U256.add a b) b) a);
    prop "neg involution" arb_u256 (fun a ->
        U256.equal (U256.neg (U256.neg a)) a);
    prop "mul commutative" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        U256.equal (U256.mul a b) (U256.mul b a));
    prop "mul distributes" (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U256.equal
          (U256.mul a (U256.add b c))
          (U256.add (U256.mul a b) (U256.mul a c)));
    prop "divmod reconstruction" (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        QCheck.assume (not (U256.is_zero b));
        U256.equal a (U256.add (U256.mul (U256.div a b) b) (U256.rem a b)));
    prop "rem < divisor" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        QCheck.assume (not (U256.is_zero b));
        U256.lt (U256.rem a b) b);
    prop "sdiv/smod reconstruction" (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        QCheck.assume (not (U256.is_zero b));
        U256.equal a (U256.add (U256.mul (U256.sdiv a b) b) (U256.srem a b)));
    prop "shl/shr inverse for small" (QCheck.pair arb_small QCheck.(int_bound 190))
      (fun (a, k) ->
        U256.equal (U256.shift_right (U256.shift_left a k) k) a);
    prop "and/or identity" arb_u256 (fun a ->
        U256.equal (U256.logand a U256.max_int) a
        && U256.equal (U256.logor a U256.zero) a);
    prop "de morgan" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        U256.equal
          (U256.lognot (U256.logand a b))
          (U256.logor (U256.lognot a) (U256.lognot b)));
    prop "bytes_be roundtrip" arb_u256 (fun a ->
        U256.equal a (U256.of_bytes_be (U256.to_bytes_be a)));
    prop "hex roundtrip" arb_u256 (fun a ->
        U256.equal a (U256.of_hex (U256.to_hex a)));
    prop "byte composition" arb_u256 (fun a ->
        (* reassembling all 32 bytes yields the value *)
        let rec build i acc =
          if i = 32 then acc
          else
            build (i + 1)
              (U256.logor (U256.shift_left acc 8) (U256.byte i a))
        in
        U256.equal a (build 0 U256.zero));
    prop "addmod matches wide sum" (QCheck.pair arb_small arb_small)
      (fun (a, b) ->
        (* for values with no 256-bit overflow, addmod = (a+b) mod m *)
        let m = U256.of_int 1000003 in
        U256.equal (U256.addmod a b m) (U256.rem (U256.add a b) m));
    prop "mulmod matches small product" (QCheck.pair arb_small arb_small)
      (fun (a, b) ->
        let a = U256.logand a (U256.ones_low 8)
        and b = U256.logand b (U256.ones_low 8) in
        let m = U256.of_int 65537 in
        U256.equal (U256.mulmod a b m) (U256.rem (U256.mul a b) m));
    prop "signextend idempotent" (QCheck.pair arb_u256 QCheck.(int_bound 31))
      (fun (a, k) ->
        let once = U256.signextend k a in
        U256.equal once (U256.signextend k once));
    prop "unsigned compare total order" (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U256.compare a b = -U256.compare b a);
    prop "add/sub roundtrip" (QCheck.pair arb_u256 arb_u256) (fun (a, b) ->
        U256.equal (U256.add (U256.sub a b) b) a);
    prop "mul by pow2 = shl" (QCheck.pair arb_u256 QCheck.(int_bound 255))
      (fun (a, k) ->
        U256.equal (U256.mul a (U256.pow2 k)) (U256.shift_left a k));
    prop "low/high masks complementary" QCheck.(int_bound 32) (fun k ->
        U256.equal (U256.ones_low k) (U256.lognot (U256.ones_high (32 - k))));
    prop "byte agrees with shift+mask"
      (QCheck.pair arb_u256 QCheck.(int_bound 31))
      (fun (a, i) ->
        U256.equal (U256.byte i a)
          (U256.logand
             (U256.shift_right a (8 * (31 - i)))
             (U256.ones_low 1)));
    prop "signextend then mask is identity on low bytes"
      (QCheck.pair arb_u256 QCheck.(int_bound 30))
      (fun (a, k) ->
        (* extending from byte k never changes bytes 0..k *)
        let m = U256.ones_low (k + 1) in
        U256.equal (U256.logand (U256.signextend k a) m) (U256.logand a m));
  ]

(* the small-constant pools must hand back one canonical block per
   value: structural equality and physical equality coincide there *)
let test_pooled_constants_physical () =
  let phys = Alcotest.(check bool) in
  phys "of_int pooled" true (U256.of_int 1024 == U256.of_int 1024);
  phys "of_int64 routes through the pool" true
    (U256.of_int64 7L == U256.of_int 7);
  phys "arithmetic lands in the pool" true
    (U256.add (U256.of_int 40) (U256.of_int 2) == U256.of_int 42);
  phys "pow2 pooled" true (U256.pow2 255 == U256.pow2 255);
  phys "small pow2 shares the int pool" true
    (U256.pow2 8 == U256.of_int 256);
  phys "masks pooled" true (U256.ones_low 20 == U256.ones_low 20);
  phys "zero canonical" true (U256.sub U256.one U256.one == U256.zero)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "add carry chain" `Quick test_add_carry_chain;
    Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
    Alcotest.test_case "mul known values" `Quick test_mul_known;
    Alcotest.test_case "div known values" `Quick test_div_known;
    Alcotest.test_case "sdiv/smod" `Quick test_sdiv_smod;
    Alcotest.test_case "addmod/mulmod" `Quick test_addmod_mulmod;
    Alcotest.test_case "exp" `Quick test_exp;
    Alcotest.test_case "signextend" `Quick test_signextend;
    Alcotest.test_case "byte" `Quick test_byte;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "masks" `Quick test_masks;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "bytes_be" `Quick test_bytes_be;
    Alcotest.test_case "decimal" `Quick test_decimal;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "pooled constants are physically shared" `Quick
      test_pooled_constants_physical;
  ]
  @ properties
