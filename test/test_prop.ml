(* The property-based differential harness (lib/proptest) wired into
   tier 1. Every run is pinned by Proptest.Prop.default_seed () —
   override with PROPTEST_SEED to replay a CI failure, and scale the
   case counts with PROPTEST_ITERS (the longer CI job on main sets it). *)

open Proptest

let seed () = Prop.default_seed ()

let check_pass arb result =
  if not (Prop.is_pass result) then Alcotest.fail (Prop.report arb result)

(* Stats shared by the recovery-driven properties; the rule-coverage
   gate runs over their union, after all cases have been analyzed. *)
let stats = Sigrec.Stats.create ()

let round_trip () =
  check_pass Oracle.arb_case
    (Prop.run ~seed:(seed ()) ~count:500 ~max_size:20 ~name:"round_trip"
       Oracle.arb_case
       (Oracle.round_trip ~stats))

let differential () =
  check_pass Oracle.arb_case
    (Prop.run ~seed:(seed () + 1) ~count:80 ~max_size:20 ~name:"differential"
       Oracle.arb_case
       (Oracle.differential ~stats))

let rule_coverage () =
  (* Must run after the 580 recovery cases above (alcotest executes a
     suite's tests in order): every one of R1-R31 must have fired. *)
  match Oracle.rule_gate stats with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let layout_round_trip () =
  check_pass Oracle.arb_case
    (Prop.run ~seed:(seed () + 4) ~count:150 ~max_size:20
       ~name:"layout_round_trip" Oracle.arb_case Oracle.layout_round_trip)

let classify_round_trip () =
  check_pass Oracle.arb_token
    (Prop.run ~seed:(seed () + 5) ~count:80 ~max_size:16
       ~name:"classify_round_trip" Oracle.arb_token Oracle.classify_round_trip)

(* The token-case shrinker obeys the same strict-measure contract as
   the signature-case one. *)
let token_shrink_strictly_smaller () =
  let rng = Random.State.make [| seed (); 979 |] in
  for i = 1 to 200 do
    let c = Sig_gen.token_case rng (1 + (i mod 16)) in
    let n = Sig_gen.size_token c in
    Seq.iter
      (fun c' ->
        let n' = Sig_gen.size_token c' in
        if n' >= n then
          Alcotest.failf
            "token shrink candidate not smaller (%d >= %d):
%s
-> %s" n' n
            (Sig_gen.show_token c) (Sig_gen.show_token c'))
      (Sig_gen.shrink_token c)
  done

let abi_round_trip () =
  check_pass Oracle.arb_abi
    (Prop.run ~seed:(seed () + 2) ~count:300 ~max_size:24 ~name:"abi_round_trip"
       Oracle.arb_abi Oracle.abi_round_trip)

let drift () =
  check_pass Oracle.arb_batch
    (Prop.run ~seed:(seed () + 3) ~count:10 ~max_size:16 ~name:"drift"
       Oracle.arb_batch Oracle.drift)

(* Forced regression: with the R11-R18 refinement group disabled, the
   coverage gate must trip — this is what protects the suite against a
   rule being silently turned off while accuracy quietly degrades. *)
let ablation_caught () =
  let ablated = Sigrec.Stats.create () in
  let config = { Sigrec.Rules.default_config with fine_masks = false } in
  let _ =
    Prop.run ~seed:(seed ()) ~count:80 ~max_size:20 ~name:"ablation"
      Oracle.arb_case
      (fun c ->
        (* recovery may legitimately differ with the group off; only
           the rule counters matter here *)
        let _ = Oracle.round_trip ~stats:ablated ~config c in
        Ok ())
  in
  let missing = Sigrec.Stats.unexercised ablated in
  let fine = [ "R11"; "R12"; "R13"; "R14"; "R15"; "R16"; "R17"; "R18" ] in
  if not (List.exists (fun r -> List.mem r fine) missing) then
    Alcotest.fail
      "disabling fine_masks left no R11-R18 rule unexercised; the \
       coverage gate would miss this regression"

(* An oracle made to fail: rejects any case whose signature contains a
   static array. Drives the replay/shrinking properties below. *)
let reject_sarray (c : Sig_gen.case) =
  let rec has_sarray = function
    | Abi.Abity.Sarray _ -> true
    | Abi.Abity.Darray t -> has_sarray t
    | Abi.Abity.Tuple ts -> List.exists has_sarray ts
    | _ -> false
  in
  if
    List.exists
      (fun (fn : Solc.Lang.fn_spec) ->
        List.exists
          (fun (p : Solc.Lang.param_spec) -> has_sarray p.Solc.Lang.ty)
          fn.Solc.Lang.param_specs)
      c.Sig_gen.fns
  then Error "contains a static array"
  else Ok ()

let failing_run () =
  Prop.run ~seed:42 ~count:400 ~max_size:20 ~name:"reject_sarray"
    Oracle.arb_case reject_sarray

let replay_determinism () =
  match (failing_run (), failing_run ()) with
  | Prop.Fail c1, Prop.Fail c2 ->
    Alcotest.(check int) "same failing case index" c1.Prop.case_index
      c2.Prop.case_index;
    Alcotest.(check string) "same minimal counterexample"
      (Sig_gen.show_case c1.Prop.minimal)
      (Sig_gen.show_case c2.Prop.minimal)
  | _ -> Alcotest.fail "expected the planted oracle to fail"

let minimal_still_fails () =
  match failing_run () with
  | Prop.Fail c -> (
    match reject_sarray c.Prop.minimal with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "shrunk counterexample no longer fails")
  | Prop.Pass _ -> Alcotest.fail "expected the planted oracle to fail"

(* Shrinker invariants: every candidate is strictly smaller under the
   size measure (termination + true minimality), and case candidates
   stay inside the generator's domain. *)
let shrink_strictly_smaller () =
  let rng = Random.State.make [| seed (); 977 |] in
  for i = 1 to 200 do
    let c = Sig_gen.case rng (1 + (i mod 20)) in
    let n = Sig_gen.size_case c in
    Seq.iter
      (fun c' ->
        let n' = Sig_gen.size_case c' in
        if n' >= n then
          Alcotest.failf "shrink candidate not smaller (%d >= %d):\n%s\n-> %s"
            n' n (Sig_gen.show_case c) (Sig_gen.show_case c'))
      (Sig_gen.shrink_case c)
  done

let shrink_types_smaller () =
  let rng = Random.State.make [| seed (); 978 |] in
  for i = 1 to 400 do
    let ty = Sig_gen.sol_type ~abiv2:true rng (1 + (i mod 24)) in
    let n = Sig_gen.size_ty ty in
    Seq.iter
      (fun ty' ->
        let n' = Sig_gen.size_ty ty' in
        if n' >= n then
          Alcotest.failf "type shrink not smaller: %s (%d) -> %s (%d)"
            (Abi.Abity.to_string ty) n
            (Abi.Abity.to_string ty') n')
      (Sig_gen.shrink_ty ty)
  done

let generator_deterministic () =
  let draw () =
    Gen.run ~size:18 ~seed:[| seed (); 4 |]
      (Gen.list_n 25 Sig_gen.case)
  in
  Alcotest.(check (list string))
    "same seed, same cases"
    (List.map Sig_gen.show_case (draw ()))
    (List.map Sig_gen.show_case (draw ()))

let suite =
  [
    ("round-trip: 500 seeded recoveries", `Quick, round_trip);
    ("differential: TASE vs static, zero disagreements", `Quick, differential);
    ("rule coverage: all 31 rules fired", `Quick, rule_coverage);
    ("layout: declared storage recovered exactly", `Quick, layout_round_trip);
    ( "classify: token labels recovered, mutants demoted",
      `Quick,
      classify_round_trip );
    ("abi: encode/decode round trip", `Quick, abi_round_trip);
    ("drift: jobs/prune/cache byte-identical", `Quick, drift);
    ("gate catches a disabled rule group", `Quick, ablation_caught);
    ("failure replays to the same minimum", `Quick, replay_determinism);
    ("minimal counterexample still fails", `Quick, minimal_still_fails);
    ("shrink candidates strictly smaller", `Quick, shrink_strictly_smaller);
    ( "token shrink candidates strictly smaller",
      `Quick,
      token_shrink_strictly_smaller );
    ("type shrink candidates strictly smaller", `Quick, shrink_types_smaller);
    ("generators are seed-deterministic", `Quick, generator_deterministic);
  ]
