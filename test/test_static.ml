(* The static abstract-interpretation pass: cross-block jump resolution,
   calldata access summaries, fork-prune equivalence with plain TASE,
   and the differential lint (zero findings on the synthetic corpus, an
   injected rule mutation flagged). *)

open Evm
module Absint = Sigrec_static.Absint
module Summary = Sigrec_static.Summary
module Domain = Sigrec_static.Domain

(* ---- jump resolution ---------------------------------------------- *)

(* target pushed in the entry block, consumed by a JUMP in another *)
let cross_block_prog =
  Asm.
    [
      Push_label "target";
      Op Opcode.CALLVALUE;
      Push_label "mid";
      Op Opcode.JUMPI;
      Label "mid";
      Op Opcode.JUMP;
      Label "target";
      Op Opcode.STOP;
    ]

let test_cross_block_resolution () =
  let cfg = Cfg.build (Asm.assemble cross_block_prog) in
  Alcotest.(check int) "peephole leaves it unresolved" 1
    (Cfg.unresolved_count cfg);
  let r = Absint.analyze ~entry:0 cfg in
  Alcotest.(check bool) "converged" true r.Absint.converged;
  Alcotest.(check int) "one block resolved" 1 (Absint.resolved_count r);
  Alcotest.(check int) "resolved cfg has no unresolved edge" 0
    (Cfg.unresolved_count (Absint.resolved_cfg r))

(* the target constant is split across blocks by arithmetic, the way the
   obfuscator hides it: target = a + b with both halves pushed early *)
let split_constant_prog target_label =
  Asm.
    [
      Push_label target_label;    (* whole target ... *)
      Op (Opcode.push 7);
      Op Opcode.ADD;              (* ... shifted up by 7 *)
      Op Opcode.CALLVALUE;
      Push_label "mid";
      Op Opcode.JUMPI;
      Label "mid";
      Op (Opcode.push 7);
      Op (Opcode.SWAP 1);
      Op Opcode.SUB;              (* recover the target in another block *)
      Op Opcode.JUMP;
      Label target_label;
      Op Opcode.STOP;
    ]

let test_split_constant_resolution () =
  let cfg = Cfg.build (Asm.assemble (split_constant_prog "t")) in
  Alcotest.(check int) "unresolved before" 1 (Cfg.unresolved_count cfg);
  let r = Absint.analyze ~entry:0 cfg in
  Alcotest.(check int) "arithmetic-split target resolved" 1
    (Absint.resolved_count r);
  Alcotest.(check int) "unresolved after" 0
    (Cfg.unresolved_count (Absint.resolved_cfg r))

let test_obfuscated_corpus_resolution () =
  (* level-2 obfuscation inserts junk between PUSH and JUMP and splits
     constants; every edge the peephole loses must come back *)
  let samples = Solc.Corpus.dataset3 ~seed:41 ~n:30 in
  let before = ref 0 and after = ref 0 in
  List.iter
    (fun (s : Solc.Corpus.sample) ->
      let code =
        Solc.Obfuscate.compile_obfuscated ~level:2 ~seed:17
          {
            Solc.Compile.fns = [ s.Solc.Corpus.fn ];
            version = s.Solc.Corpus.version;
            storage = [];
          }
      in
      let contract = Sigrec.Contract.make code in
      before := !before + contract.Sigrec.Contract.unresolved_before;
      after := !after + contract.Sigrec.Contract.unresolved_after)
    samples;
  Alcotest.(check bool) "obfuscation produced unresolved edges" true
    (!before > 0);
  Alcotest.(check int) "all resolved by the abstract interpreter" 0 !after

(* ---- access summaries --------------------------------------------- *)

let summary_of code ~entry = (Absint.analyze ~depth:1 ~entry (Cfg.build code)).Absint.summary

let test_summary_uint32 () =
  let fsig =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "f"
      [ Abi.Abity.Uint 32; Abi.Abity.Uint 256 ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let contract = Sigrec.Contract.make code in
  let entry =
    (List.hd contract.Sigrec.Contract.entries).Sigrec.Ids.entry_pc
  in
  let s =
    (Absint.analyze ~depth:1 ~entry contract.Sigrec.Contract.cfg)
      .Absint.summary
  in
  Alcotest.(check bool) "summary complete" true s.Summary.complete;
  Alcotest.(check bool) "reads offset 4" true (Summary.reads_offset s 4);
  Alcotest.(check bool) "reads offset 36" true (Summary.reads_offset s 36);
  Alcotest.(check bool) "uint32 mask recorded" true
    (List.exists (U256.equal (U256.ones_low 4)) (Summary.masks_at s 4));
  Alcotest.(check int) "no symbolic reads" 0 s.Summary.sym_reads

let test_summary_int8_signext () =
  let fsig =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "g" [ Abi.Abity.Int 8 ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let contract = Sigrec.Contract.make code in
  let entry =
    (List.hd contract.Sigrec.Contract.entries).Sigrec.Ids.entry_pc
  in
  let s =
    (Absint.analyze ~depth:1 ~entry contract.Sigrec.Contract.cfg)
      .Absint.summary
  in
  Alcotest.(check bool) "SIGNEXTEND 0 recorded" true
    (List.mem 0 (Summary.signexts_at s 4))

let test_summary_darray_copy () =
  let fsig =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "h"
      [ Abi.Abity.Darray (Abi.Abity.Uint 256) ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let contract = Sigrec.Contract.make code in
  let entry =
    (List.hd contract.Sigrec.Contract.entries).Sigrec.Ids.entry_pc
  in
  let s =
    (Absint.analyze ~depth:1 ~entry contract.Sigrec.Contract.cfg)
      .Absint.summary
  in
  Alcotest.(check bool) "dynamic array body is read" true
    (s.Summary.copies <> [] || s.Summary.sym_reads > 0)

let _ = summary_of

(* ---- prune equivalence -------------------------------------------- *)

let corpus_slice () =
  Solc.Corpus.dataset3 ~seed:43 ~n:40
  @ Solc.Corpus.vyper_set ~seed:44 ~n:15
  @ Solc.Corpus.abiv2_set ~seed:45 ~n:15

let render (rs : Sigrec.Recover.recovered list) =
  String.concat ";"
    (List.map
       (fun r ->
         r.Sigrec.Recover.selector_hex ^ "(" ^ Sigrec.Recover.type_list r ^ ")")
       rs)

let test_prune_equivalence () =
  let samples = corpus_slice () in
  let total_off = ref 0 and total_on = ref 0 and pruned = ref 0 in
  List.iter
    (fun (s : Solc.Corpus.sample) ->
      let contract = Sigrec.Contract.make s.Solc.Corpus.code in
      let run static_prune =
        let stats = Sigrec.Stats.create () in
        let rs =
          Sigrec.Recover.recover_contract ~stats ~static_prune contract
        in
        (rs, stats)
      in
      let off, soff = run false and on_, son = run true in
      Alcotest.(check string) "same signatures with and without pruning"
        (render off) (render on_);
      total_off := !total_off + Sigrec.Stats.paths_explored soff;
      total_on := !total_on + Sigrec.Stats.paths_explored son;
      pruned := !pruned + Sigrec.Stats.forks_pruned son)
    samples;
  Alcotest.(check bool) "pruning never explores more paths" true
    (!total_on <= !total_off);
  Alcotest.(check bool) "pruning fires somewhere in the corpus" true
    (!pruned > 0);
  Alcotest.(check bool) "pruned paths strictly fewer" true
    (!total_on < !total_off)

(* ---- differential lint -------------------------------------------- *)

let test_lint_clean_on_corpus () =
  (* every compiler version/optimisation knob contributes samples *)
  let versioned =
    List.concat_map snd (Solc.Corpus.versioned ~seed:46 ~per_version:4)
  in
  let samples = corpus_slice () @ versioned in
  let stats = Sigrec.Stats.create () in
  List.iter
    (fun (s : Solc.Corpus.sample) ->
      let verdicts = Sigrec.Lint.check ~stats s.Solc.Corpus.code in
      List.iter
        (fun v ->
          if not (Sigrec.Lint.agree v) then
            Alcotest.failf "false lint disagreement on 0x%s: %s"
              v.Sigrec.Lint.selector_hex
              (String.concat "; "
                 (List.map Sigrec.Lint.finding_to_string
                    v.Sigrec.Lint.findings)))
        verdicts)
    samples;
  Alcotest.(check int) "no disagreements counted" 0
    (Sigrec.Stats.lint_disagreements stats);
  Alcotest.(check bool) "agreements counted" true
    (Sigrec.Stats.lint_agreements stats > 0)

let test_lint_flags_mutation () =
  (* turning off the fine-mask refinements makes small unsigned types
     recover as uint256, which contradicts the statically observed type
     masks: the lint must notice *)
  let mutated = { Sigrec.Rules.default_config with fine_masks = false } in
  let samples = Solc.Corpus.dataset3 ~seed:47 ~n:40 in
  let flagged = ref 0 in
  List.iter
    (fun (s : Solc.Corpus.sample) ->
      List.iter
        (fun v -> if not (Sigrec.Lint.agree v) then incr flagged)
        (Sigrec.Lint.check ~config:mutated s.Solc.Corpus.code))
    samples;
  Alcotest.(check bool) "mutation detected" true (!flagged > 0)

let test_lint_exercises_mask_conflict () =
  (* at least one mutated-config finding must be a mask conflict
     specifically, not just a side effect of another check *)
  let mutated = { Sigrec.Rules.default_config with fine_masks = false } in
  let fsig =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "m" [ Abi.Abity.Uint 32 ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let verdicts = Sigrec.Lint.check ~config:mutated code in
  let has_mask_conflict =
    List.exists
      (fun v ->
        List.exists
          (function Sigrec.Lint.Mask_conflict _ -> true | _ -> false)
          v.Sigrec.Lint.findings)
      verdicts
  in
  Alcotest.(check bool) "mask conflict reported" true has_mask_conflict

(* ---- batch input parsing ------------------------------------------ *)

let test_batch_parser_tolerant () =
  let hex = Evm.Hex.encode "\x60\x00\x60\x00\xf3" in
  let text =
    "# comment\r\n" ^ "0x" ^ hex ^ "\r\n" ^ "\n" ^ "   \n" ^ "zz-not-hex\n"
    ^ String.uppercase_ascii hex ^ "\n" ^ "abc\n" (* odd length: invalid *)
  in
  let batch = Sigrec.Input.parse_batch text in
  Alcotest.(check int) "two codes decoded" 2
    (List.length batch.Sigrec.Input.codes);
  List.iter
    (fun code ->
      Alcotest.(check string) "decoded to the same bytes" "\x60\x00\x60\x00\xf3"
        code)
    batch.Sigrec.Input.codes;
  Alcotest.(check (list int)) "malformed lines reported with line numbers"
    [ 5; 7 ]
    (List.map fst batch.Sigrec.Input.skipped)

let test_batch_parser_empty_and_comments () =
  let batch = Sigrec.Input.parse_batch "# only\n\n\r\n  # comments\n" in
  Alcotest.(check int) "no codes" 0 (List.length batch.Sigrec.Input.codes);
  Alcotest.(check int) "nothing skipped" 0
    (List.length batch.Sigrec.Input.skipped)

(* ---- domain sanity ------------------------------------------------- *)

let test_domain_widening () =
  (* joining more than the constant cap widens to Untainted, never to
     Tainted: loop counters must not poison the prune analysis *)
  let d =
    List.fold_left
      (fun acc i -> Domain.join acc (Domain.of_int i))
      (Domain.of_int 0)
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check bool) "widened" true (Domain.to_const d = None);
  Alcotest.(check bool) "still untainted" true
    (Domain.equal d Domain.Untainted)

(* ---- the slot lattice (storage-layout provenance) ------------------- *)

let test_domain_slot_lattice () =
  let s3 = Domain.Slot (Domain.Fixed (U256.of_int 3)) in
  let s4 = Domain.Slot (Domain.Fixed (U256.of_int 4)) in
  Alcotest.(check bool) "a slot joined with itself keeps its identity" true
    (Domain.equal (Domain.join s3 s3) s3);
  Alcotest.(check bool) "distinct slots widen to Untainted, not Tainted" true
    (Domain.equal (Domain.join s3 s4) Domain.Untainted);
  let sval = Domain.Sval (Domain.Fixed (U256.of_int 1), 0) in
  Alcotest.(check bool) "a storage read joined with Untainted widens" true
    (Domain.equal (Domain.join sval Domain.Untainted) Domain.Untainted);
  Alcotest.(check bool) "the taint line still dominates" true
    (Domain.equal (Domain.join s3 Domain.Tainted) Domain.Tainted);
  (* address classification: singleton constants name a fixed slot,
     ambiguous sets name nothing *)
  (match Domain.slot_of (Domain.const (U256.of_int 5)) with
  | Some s ->
    Alcotest.(check bool) "constant address is a fixed slot" true
      (Domain.slot_equal s (Domain.Fixed (U256.of_int 5)))
  | None -> Alcotest.fail "constant address not classified");
  Alcotest.(check bool) "multi-constant address stays unclassified" true
    (Domain.slot_of (Domain.join (Domain.of_int 1) (Domain.of_int 2)) = None);
  Alcotest.(check bool) "untainted address stays unclassified" true
    (Domain.slot_of Domain.Untainted = None)

let test_domain_slot_arithmetic () =
  let base = Domain.Arr_of (U256.of_int 9) in
  (* index arithmetic over a derived base: even a counter widened past
     max_consts does not lose the slot attribution *)
  let widened =
    List.fold_left
      (fun acc i -> Domain.join acc (Domain.of_int i))
      (Domain.of_int 0)
      (List.init (Domain.max_consts + 4) (fun i -> i + 1))
  in
  Alcotest.(check bool) "counter widened to Untainted" true
    (Domain.equal widened Domain.Untainted);
  Alcotest.(check bool) "base + widened index stays on the array" true
    (Domain.equal
       (Domain.lift2 Opcode.ADD widened (Domain.Slot base))
       (Domain.Slot base));
  Alcotest.(check bool) "constant - base loses the attribution" true
    (Domain.equal
       (Domain.lift2 Opcode.SUB (Domain.of_int 1) (Domain.Slot base))
       Domain.Untainted);
  (* the packed-read idiom moves the bit cursor of a loaded word *)
  let loaded = Domain.Sval (Domain.Fixed (U256.of_int 2), 0) in
  Alcotest.(check bool) "SHR moves the cursor" true
    (Domain.equal
       (Domain.lift2 Opcode.SHR (Domain.of_int 8) loaded)
       (Domain.Sval (Domain.Fixed (U256.of_int 2), 8)));
  Alcotest.(check bool) "DIV by 2^k moves the cursor (pre-0.5 idiom)" true
    (Domain.equal
       (Domain.lift2 Opcode.DIV loaded (Domain.const (U256.pow2 16)))
       (Domain.Sval (Domain.Fixed (U256.of_int 2), 16)));
  Alcotest.(check bool) "AND keeps the cursor" true
    (Domain.equal
       (Domain.lift2 Opcode.AND (Domain.of_int 255) loaded)
       loaded);
  Alcotest.(check bool) "other arithmetic widens the loaded word" true
    (Domain.equal
       (Domain.lift2 Opcode.MUL loaded (Domain.of_int 3))
       Domain.Untainted)

let test_keccak_constant_derivations () =
  (* hand-written SHA3 idioms over constant memory: the recording pass
     must emit the derivation and attribute the following SLOAD to it *)
  let events prog =
    let r = Absint.analyze ~entry:0 (Cfg.build (Asm.assemble prog)) in
    Alcotest.(check bool) "converged" true r.Absint.converged;
    List.map (fun (e : Absint.storage_ev) -> e.Absint.ev) r.Absint.storage
  in
  let has evs p = List.exists p evs in
  (* keccak(pad32 slot): a dynamic array's data base *)
  let arr =
    events
      Asm.
        [
          Op (Opcode.push 7); Op (Opcode.push 0); Op Opcode.MSTORE;
          Op (Opcode.push 0x20); Op (Opcode.push 0); Op Opcode.SHA3;
          Op Opcode.SLOAD; Op Opcode.POP; Op Opcode.STOP;
        ]
  in
  let arr_slot = Domain.Arr_of (U256.of_int 7) in
  Alcotest.(check bool) "keccak(const) derives the array base" true
    (has arr (function
      | Absint.Sderive s -> Domain.slot_equal s arr_slot
      | _ -> false));
  Alcotest.(check bool) "the load is attributed to the array" true
    (has arr (function
      | Absint.Sload (Some s) -> Domain.slot_equal s arr_slot
      | _ -> false));
  (* keccak(key . pad32 slot) with an environment-read key: a mapping
     element — the untainted key must not widen the derivation away *)
  let map =
    events
      Asm.
        [
          Op Opcode.CALLER; Op (Opcode.push 0); Op Opcode.MSTORE;
          Op (Opcode.push 5); Op (Opcode.push 0x20); Op Opcode.MSTORE;
          Op (Opcode.push 0x40); Op (Opcode.push 0); Op Opcode.SHA3;
          Op Opcode.SLOAD; Op Opcode.POP; Op Opcode.STOP;
        ]
  in
  let map_slot = Domain.Map_of (U256.of_int 5) in
  Alcotest.(check bool) "keccak(key . const) derives the mapping" true
    (has map (function
      | Absint.Sderive s -> Domain.slot_equal s map_slot
      | _ -> false));
  Alcotest.(check bool) "the load is attributed to the mapping" true
    (has map (function
      | Absint.Sload (Some s) -> Domain.slot_equal s map_slot
      | _ -> false))

let test_domain_eval_parity () =
  (* the abstract evaluator must agree with the concrete semantics the
     symbolic executor uses, or resolved jump targets would be wrong *)
  let a = U256.of_int 1000 and b = U256.of_int 7 in
  let check op expect =
    match Domain.eval2 op a b with
    | Some v ->
      Alcotest.(check bool)
        (Opcode.mnemonic op ^ " matches") true (U256.equal v expect)
    | None -> Alcotest.failf "%s not evaluated" (Opcode.mnemonic op)
  in
  check Opcode.ADD (U256.of_int 1007);
  check Opcode.SUB (U256.of_int 993);
  check Opcode.MUL (U256.of_int 7000);
  check Opcode.DIV (U256.of_int 142);
  check Opcode.AND (U256.of_int (1000 land 7));
  match Domain.eval2 Opcode.EXP (U256.of_int 2) (U256.of_int 10) with
  | Some v ->
    Alcotest.(check bool) "EXP matches" true (U256.equal v (U256.of_int 1024))
  | None -> Alcotest.fail "EXP not evaluated"

let suite =
  [
    Alcotest.test_case "cross-block jump resolution" `Quick
      test_cross_block_resolution;
    Alcotest.test_case "split-constant jump resolution" `Quick
      test_split_constant_resolution;
    Alcotest.test_case "obfuscated corpus fully resolved" `Quick
      test_obfuscated_corpus_resolution;
    Alcotest.test_case "summary: uint32 masks" `Quick test_summary_uint32;
    Alcotest.test_case "summary: int8 signextend" `Quick
      test_summary_int8_signext;
    Alcotest.test_case "summary: dynamic array copy" `Quick
      test_summary_darray_copy;
    Alcotest.test_case "prune equivalence over corpus" `Quick
      test_prune_equivalence;
    Alcotest.test_case "lint clean on corpus" `Quick test_lint_clean_on_corpus;
    Alcotest.test_case "lint flags rule mutation" `Quick
      test_lint_flags_mutation;
    Alcotest.test_case "lint reports mask conflict" `Quick
      test_lint_exercises_mask_conflict;
    Alcotest.test_case "batch parser tolerant" `Quick
      test_batch_parser_tolerant;
    Alcotest.test_case "batch parser comments" `Quick
      test_batch_parser_empty_and_comments;
    Alcotest.test_case "domain widening" `Quick test_domain_widening;
    Alcotest.test_case "domain slot lattice" `Quick test_domain_slot_lattice;
    Alcotest.test_case "domain slot arithmetic" `Quick
      test_domain_slot_arithmetic;
    Alcotest.test_case "keccak derivations recorded" `Quick
      test_keccak_constant_derivations;
    Alcotest.test_case "domain eval parity" `Quick test_domain_eval_parity;
  ]
