(** The EVM instruction set (Shanghai-era, incl. SHL/SHR/SAR and PUSH0). *)

type t =
  (* 0x00s: stop and arithmetic *)
  | STOP | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | ADDMOD | MULMOD
  | EXP | SIGNEXTEND
  (* 0x10s: comparison and bitwise *)
  | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT | BYTE
  | SHL | SHR | SAR
  (* 0x20 *)
  | SHA3
  (* 0x30s: environment *)
  | ADDRESS | BALANCE | ORIGIN | CALLER | CALLVALUE | CALLDATALOAD
  | CALLDATASIZE | CALLDATACOPY | CODESIZE | CODECOPY | GASPRICE
  | EXTCODESIZE | EXTCODECOPY | RETURNDATASIZE | RETURNDATACOPY | EXTCODEHASH
  (* 0x40s: block *)
  | BLOCKHASH | COINBASE | TIMESTAMP | NUMBER | PREVRANDAO | GASLIMIT
  | CHAINID | SELFBALANCE | BASEFEE
  (* 0x50s: stack, memory, storage, flow *)
  | POP | MLOAD | MSTORE | MSTORE8 | SLOAD | SSTORE | JUMP | JUMPI
  | PC | MSIZE | GAS | JUMPDEST
  (* 0x5f-0x7f *)
  | PUSH of int * U256.t  (** [PUSH (n, v)]: [0 <= n <= 32]; [PUSH (0, _)] is PUSH0. *)
  (* 0x80s / 0x90s *)
  | DUP of int   (** [DUP n], [1 <= n <= 16] *)
  | SWAP of int  (** [SWAP n], [1 <= n <= 16] *)
  (* 0xa0s *)
  | LOG of int   (** [LOG n], [0 <= n <= 4] *)
  (* 0xf0s: system *)
  | CREATE | CALL | CALLCODE | RETURN | DELEGATECALL | CREATE2
  | STATICCALL | REVERT | INVALID | SELFDESTRUCT
  | UNKNOWN of int  (** any unassigned byte *)

val code : t -> int
(** Leading byte of the encoded instruction. *)

val size : t -> int
(** Encoded size in bytes (1 + immediate length for PUSH). *)

val stack_arity : t -> int * int
(** [(consumed, produced)] stack items. *)

val is_terminator : t -> bool
(** True for instructions that end a basic block (JUMP, JUMPI, STOP,
    RETURN, REVERT, INVALID, SELFDESTRUCT). *)

val mnemonic : t -> string
val pp : Format.formatter -> t -> unit

val push : int -> t
(** [push n] is [PUSH (k, of_int n)] with minimal [k >= 1]. *)

val push_u256 : U256.t -> t
val push_width : int -> U256.t -> t
(** [push_width n v]: PUSHn with an explicit width. *)
