(** Keccak-256 as used by Ethereum (original Keccak padding [0x01], not the
    NIST SHA3 variant). *)

val digest : string -> string
(** [digest msg] is the 32-byte Keccak-256 hash of [msg]. *)

val digest_hex : string -> string
(** Hash as 64 lowercase hex digits. *)

val selector : string -> string
(** [selector signature] is the 4-byte Ethereum function id: the first four
    bytes of [digest signature]. *)
