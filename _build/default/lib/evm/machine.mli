(** Concrete EVM machine-state components: stack, byte-addressed memory,
    call data and storage. All reads beyond the end of call data yield
    zero bytes, as the EVM specifies. *)

module Stack : sig
  type t

  exception Underflow
  exception Overflow

  val create : unit -> t
  val push : t -> U256.t -> unit
  val pop : t -> U256.t
  val peek : t -> int -> U256.t
  (** [peek s 0] is the top item. *)

  val dup : t -> int -> unit
  (** [dup s n]: push a copy of the [n]-th item (1-based, EVM DUPn). *)

  val swap : t -> int -> unit
  (** [swap s n]: exchange top with the [n+1]-th item (EVM SWAPn). *)

  val depth : t -> int
  val to_list : t -> U256.t list
  (** Top first. *)
end

module Memory : sig
  type t

  val create : unit -> t
  val load_word : t -> int -> U256.t
  val store_word : t -> int -> U256.t -> unit
  val store_byte : t -> int -> int -> unit
  val load_bytes : t -> int -> int -> string
  val store_bytes : t -> int -> string -> unit
  val size : t -> int
  (** Current size, always a multiple of 32. *)
end

module Calldata : sig
  type t

  val of_string : string -> t
  val create : selector:string -> args:string -> t
  (** [create ~selector ~args]: 4-byte selector followed by encoded
      arguments. *)

  val load_word : t -> int -> U256.t
  (** 32-byte read, zero-extended past the end. *)

  val read : t -> int -> int -> string
  val size : t -> int
  val to_string : t -> string
end

module Storage : sig
  type t

  val create : unit -> t
  val load : t -> U256.t -> U256.t
  val store : t -> U256.t -> U256.t -> unit
  val bindings : t -> (U256.t * U256.t) list
end
