(** Linear-sweep disassembler (equivalent to the Geth disassembler the
    paper uses): decodes runtime bytecode into instructions located by
    byte offset. A PUSH whose immediate is truncated by the end of code is
    decoded with the missing bytes as zero, as EVM does. *)

type instruction = { offset : int; op : Opcode.t }

val disassemble : string -> instruction list

val pp_listing : Format.formatter -> instruction list -> unit

val instruction_at : instruction list -> int -> Opcode.t option
(** Lookup by exact byte offset. *)
