module Stack = struct
  type t = { mutable items : U256.t list; mutable depth : int }

  exception Underflow
  exception Overflow

  let limit = 1024
  let create () = { items = []; depth = 0 }

  let push s v =
    if s.depth >= limit then raise Overflow;
    s.items <- v :: s.items;
    s.depth <- s.depth + 1

  let pop s =
    match s.items with
    | [] -> raise Underflow
    | v :: rest ->
      s.items <- rest;
      s.depth <- s.depth - 1;
      v

  let peek s n =
    let rec go items n =
      match (items, n) with
      | v :: _, 0 -> v
      | _ :: rest, n -> go rest (n - 1)
      | [], _ -> raise Underflow
    in
    go s.items n

  let dup s n = push s (peek s (n - 1))

  let swap s n =
    if s.depth < n + 1 then raise Underflow;
    let top = peek s 0 and deep = peek s n in
    s.items <-
      List.mapi
        (fun i v -> if i = 0 then deep else if i = n then top else v)
        s.items

  let depth s = s.depth
  let to_list s = s.items
end

module Memory = struct
  type t = { mutable data : Bytes.t; mutable used : int }

  let create () = { data = Bytes.make 1024 '\000'; used = 0 }

  let ensure m n =
    let needed = (n + 31) / 32 * 32 in
    if needed > Bytes.length m.data then begin
      let cap = ref (Bytes.length m.data) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let fresh = Bytes.make !cap '\000' in
      Bytes.blit m.data 0 fresh 0 m.used;
      m.data <- fresh
    end;
    if needed > m.used then m.used <- needed

  let load_word m off =
    ensure m (off + 32);
    U256.of_bytes_be (Bytes.sub_string m.data off 32)

  let store_word m off v =
    ensure m (off + 32);
    Bytes.blit_string (U256.to_bytes_be v) 0 m.data off 32

  let store_byte m off b =
    ensure m (off + 1);
    Bytes.set m.data off (Char.chr (b land 0xff))

  let load_bytes m off len =
    if len = 0 then ""
    else begin
      ensure m (off + len);
      Bytes.sub_string m.data off len
    end

  let store_bytes m off s =
    if String.length s > 0 then begin
      ensure m (off + String.length s);
      Bytes.blit_string s 0 m.data off (String.length s)
    end

  let size m = m.used
end

module Calldata = struct
  type t = string

  let of_string s = s
  let create ~selector ~args = selector ^ args

  let read cd off len =
    String.init len (fun i ->
        let p = off + i in
        if p < String.length cd then cd.[p] else '\000')

  let load_word cd off = U256.of_bytes_be (read cd off 32)
  let size = String.length
  let to_string cd = cd
end

module Storage = struct
  type t = (string, U256.t) Hashtbl.t

  let create () = Hashtbl.create 16
  let key k = U256.to_bytes_be k

  let load t k =
    match Hashtbl.find_opt t (key k) with Some v -> v | None -> U256.zero

  let store t k v =
    if U256.is_zero v then Hashtbl.remove t (key k)
    else Hashtbl.replace t (key k) v

  let bindings t =
    Hashtbl.fold (fun k v acc -> (U256.of_bytes_be k, v) :: acc) t []
end
