(** Hex encoding and decoding of raw byte strings. *)

val encode : string -> string
(** Lowercase hex, two digits per byte, no prefix. *)

val decode : string -> string
(** Inverse of {!encode}; accepts an optional ["0x"] prefix and uppercase
    digits. Raises [Invalid_argument] on odd length or bad digits. *)

val is_valid : string -> bool
