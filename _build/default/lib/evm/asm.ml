type item = Op of Opcode.t | Label of string | Push_label of string

let item_size = function
  | Op op -> Opcode.size op
  | Label _ -> 1 (* JUMPDEST *)
  | Push_label _ -> 3 (* PUSH2 xx xx *)

let encode_op buf op =
  Buffer.add_char buf (Char.chr (Opcode.code op));
  match op with
  | Opcode.PUSH (n, v) ->
    let bytes = U256.to_bytes_be v in
    Buffer.add_string buf (String.sub bytes (32 - n) n)
  | _ -> ()

let assemble items =
  let table = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
        if Hashtbl.mem table name then
          invalid_arg (Printf.sprintf "Asm.assemble: duplicate label %s" name);
        Hashtbl.replace table name !pos
      | Op _ | Push_label _ -> ());
      pos := !pos + item_size item)
    items;
  let buf = Buffer.create !pos in
  List.iter
    (fun item ->
      match item with
      | Op op -> encode_op buf op
      | Label _ -> encode_op buf Opcode.JUMPDEST
      | Push_label name -> (
        match Hashtbl.find_opt table name with
        | None ->
          invalid_arg (Printf.sprintf "Asm.assemble: undefined label %s" name)
        | Some addr ->
          if addr > 0xffff then invalid_arg "Asm.assemble: label beyond 64KiB";
          encode_op buf (Opcode.PUSH (2, U256.of_int addr))))
    items;
  Buffer.contents buf

let assemble_ops ops = assemble (List.map (fun op -> Op op) ops)

let concat_u256 words = String.concat "" (List.map U256.to_bytes_be words)
