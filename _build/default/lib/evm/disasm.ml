type instruction = { offset : int; op : Opcode.t }

let decode_one code pos =
  let b = Char.code code.[pos] in
  if b >= 0x5f && b <= 0x7f then begin
    let n = b - 0x5f in
    let avail = Stdlib.min n (String.length code - pos - 1) in
    let imm = String.sub code (pos + 1) avail in
    (* missing trailing bytes read as zero: pad on the right *)
    let imm = imm ^ String.make (n - avail) '\000' in
    Opcode.PUSH (n, U256.of_bytes_be imm)
  end
  else if b >= 0x80 && b <= 0x8f then Opcode.DUP (b - 0x80 + 1)
  else if b >= 0x90 && b <= 0x9f then Opcode.SWAP (b - 0x90 + 1)
  else if b >= 0xa0 && b <= 0xa4 then Opcode.LOG (b - 0xa0)
  else
    match b with
    | 0x00 -> STOP | 0x01 -> ADD | 0x02 -> MUL | 0x03 -> SUB | 0x04 -> DIV
    | 0x05 -> SDIV | 0x06 -> MOD | 0x07 -> SMOD | 0x08 -> ADDMOD
    | 0x09 -> MULMOD | 0x0a -> EXP | 0x0b -> SIGNEXTEND
    | 0x10 -> LT | 0x11 -> GT | 0x12 -> SLT | 0x13 -> SGT | 0x14 -> EQ
    | 0x15 -> ISZERO | 0x16 -> AND | 0x17 -> OR | 0x18 -> XOR | 0x19 -> NOT
    | 0x1a -> BYTE | 0x1b -> SHL | 0x1c -> SHR | 0x1d -> SAR
    | 0x20 -> SHA3
    | 0x30 -> ADDRESS | 0x31 -> BALANCE | 0x32 -> ORIGIN | 0x33 -> CALLER
    | 0x34 -> CALLVALUE | 0x35 -> CALLDATALOAD | 0x36 -> CALLDATASIZE
    | 0x37 -> CALLDATACOPY | 0x38 -> CODESIZE | 0x39 -> CODECOPY
    | 0x3a -> GASPRICE | 0x3b -> EXTCODESIZE | 0x3c -> EXTCODECOPY
    | 0x3d -> RETURNDATASIZE | 0x3e -> RETURNDATACOPY | 0x3f -> EXTCODEHASH
    | 0x40 -> BLOCKHASH | 0x41 -> COINBASE | 0x42 -> TIMESTAMP
    | 0x43 -> NUMBER | 0x44 -> PREVRANDAO | 0x45 -> GASLIMIT
    | 0x46 -> CHAINID | 0x47 -> SELFBALANCE | 0x48 -> BASEFEE
    | 0x50 -> POP | 0x51 -> MLOAD | 0x52 -> MSTORE | 0x53 -> MSTORE8
    | 0x54 -> SLOAD | 0x55 -> SSTORE | 0x56 -> JUMP | 0x57 -> JUMPI
    | 0x58 -> PC | 0x59 -> MSIZE | 0x5a -> GAS | 0x5b -> JUMPDEST
    | 0xf0 -> CREATE | 0xf1 -> CALL | 0xf2 -> CALLCODE | 0xf3 -> RETURN
    | 0xf4 -> DELEGATECALL | 0xf5 -> CREATE2 | 0xfa -> STATICCALL
    | 0xfd -> REVERT | 0xfe -> INVALID | 0xff -> SELFDESTRUCT
    | b -> UNKNOWN b

let disassemble code =
  let rec go pos acc =
    if pos >= String.length code then List.rev acc
    else
      let op = decode_one code pos in
      go (pos + Opcode.size op) ({ offset = pos; op } :: acc)
  in
  go 0 []

let pp_listing fmt instrs =
  List.iter
    (fun { offset; op } ->
      Format.fprintf fmt "%06x: %s@." offset (Opcode.mnemonic op))
    instrs

let instruction_at instrs offset =
  List.find_map
    (fun i -> if i.offset = offset then Some i.op else None)
    instrs
