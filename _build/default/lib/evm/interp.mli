(** Concrete EVM interpreter.

    Executes runtime bytecode against a message-call environment. External
    interactions (balances, external calls, block data) are modelled with
    fixed environment values — enough to run the contracts produced by the
    synthetic compiler, the fuzzer workloads and differential tests of the
    symbolic engine. *)

type env = {
  caller : U256.t;
  callvalue : U256.t;
  address : U256.t;
  origin : U256.t;
  timestamp : U256.t;
  number : U256.t;
  chainid : U256.t;
}

val default_env : env

type outcome =
  | Stopped                    (** STOP or running off the end of code *)
  | Returned of string         (** RETURN with its data *)
  | Reverted of string         (** REVERT with its data *)
  | Invalid_op                 (** INVALID executed *)
  | Out_of_gas
  | Stack_error                (** underflow or overflow *)
  | Bad_jump of int            (** jump to a non-JUMPDEST target *)

type result = {
  outcome : outcome;
  gas_used : int;
  steps : int;
  storage : Machine.Storage.t;
  trace_pcs : int list;        (** executed program counters, in order *)
}

val execute :
  ?env:env ->
  ?storage:Machine.Storage.t ->
  ?gas_limit:int ->
  ?record_trace:bool ->
  code:string ->
  calldata:string ->
  unit ->
  result

val succeeded : outcome -> bool
(** True for [Stopped] and [Returned _]. *)

val pp_outcome : Format.formatter -> outcome -> unit
