type env = {
  caller : U256.t;
  callvalue : U256.t;
  address : U256.t;
  origin : U256.t;
  timestamp : U256.t;
  number : U256.t;
  chainid : U256.t;
}

let default_env =
  {
    caller = U256.of_hex "0xca11e800000000000000000000000000000000ca";
    callvalue = U256.zero;
    address = U256.of_hex "0xc0de00000000000000000000000000000000c0de";
    origin = U256.of_hex "0x0419100000000000000000000000000000000419";
    timestamp = U256.of_int 1_700_000_000;
    number = U256.of_int 11_600_000;
    chainid = U256.one;
  }

type outcome =
  | Stopped
  | Returned of string
  | Reverted of string
  | Invalid_op
  | Out_of_gas
  | Stack_error
  | Bad_jump of int

type result = {
  outcome : outcome;
  gas_used : int;
  steps : int;
  storage : Machine.Storage.t;
  trace_pcs : int list;
}

let succeeded = function Stopped | Returned _ -> true | _ -> false

let pp_outcome fmt = function
  | Stopped -> Format.pp_print_string fmt "stopped"
  | Returned d -> Format.fprintf fmt "returned(%d bytes)" (String.length d)
  | Reverted d -> Format.fprintf fmt "reverted(%d bytes)" (String.length d)
  | Invalid_op -> Format.pp_print_string fmt "invalid opcode"
  | Out_of_gas -> Format.pp_print_string fmt "out of gas"
  | Stack_error -> Format.pp_print_string fmt "stack error"
  | Bad_jump t -> Format.fprintf fmt "bad jump to 0x%x" t

(* Simplified gas schedule: enough to bound execution and to make gas a
   meaningful fuzzing budget; not a consensus-accurate table. *)
let gas_cost op =
  match op with
  | Opcode.STOP | Opcode.JUMPDEST -> 1
  | Opcode.ADD | Opcode.SUB | Opcode.NOT | Opcode.LT | Opcode.GT
  | Opcode.SLT | Opcode.SGT | Opcode.EQ | Opcode.ISZERO | Opcode.AND
  | Opcode.OR | Opcode.XOR | Opcode.BYTE | Opcode.SHL | Opcode.SHR
  | Opcode.SAR | Opcode.POP | Opcode.PC | Opcode.MSIZE | Opcode.GAS
  | Opcode.CALLDATALOAD | Opcode.CALLDATASIZE | Opcode.CALLER
  | Opcode.CALLVALUE | Opcode.ADDRESS | Opcode.ORIGIN ->
    3
  | Opcode.MUL | Opcode.DIV | Opcode.SDIV | Opcode.MOD | Opcode.SMOD
  | Opcode.SIGNEXTEND ->
    5
  | Opcode.ADDMOD | Opcode.MULMOD | Opcode.JUMP -> 8
  | Opcode.JUMPI -> 10
  | Opcode.EXP -> 60
  | Opcode.SHA3 -> 36
  | Opcode.MLOAD | Opcode.MSTORE | Opcode.MSTORE8 -> 3
  | Opcode.CALLDATACOPY | Opcode.CODECOPY -> 6
  | Opcode.SLOAD -> 200
  | Opcode.SSTORE -> 5000
  | Opcode.PUSH _ | Opcode.DUP _ | Opcode.SWAP _ -> 3
  | Opcode.LOG n -> 375 * (n + 1)
  | Opcode.BALANCE | Opcode.EXTCODESIZE | Opcode.EXTCODEHASH -> 400
  | Opcode.CALL | Opcode.CALLCODE | Opcode.DELEGATECALL | Opcode.STATICCALL
    ->
    700
  | Opcode.CREATE | Opcode.CREATE2 -> 32000
  | _ -> 3

let bool_word b = if b then U256.one else U256.zero

let execute ?(env = default_env) ?storage ?(gas_limit = 10_000_000)
    ?(record_trace = false) ~code ~calldata () =
  let storage =
    match storage with Some s -> s | None -> Machine.Storage.create ()
  in
  let stack = Machine.Stack.create () in
  let memory = Machine.Memory.create () in
  let cd = Machine.Calldata.of_string calldata in
  let instrs = Disasm.disassemble code in
  let by_offset = Hashtbl.create (List.length instrs) in
  List.iter (fun i -> Hashtbl.replace by_offset i.Disasm.offset i.Disasm.op) instrs;
  let jumpdests = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if i.Disasm.op = Opcode.JUMPDEST then
        Hashtbl.replace jumpdests i.Disasm.offset ())
    instrs;
  let gas = ref gas_limit in
  let steps = ref 0 in
  let trace = ref [] in
  (* quadratic memory-expansion cost, as the Yellow Paper charges: 3
     gas per fresh word plus words^2/512 *)
  let mem_words_charged = ref 0 in
  let charge_memory () =
    let words = (Machine.Memory.size memory + 31) / 32 in
    if words > !mem_words_charged then begin
      let cost w = (3 * w) + (w * w / 512) in
      gas := !gas - (cost words - cost !mem_words_charged);
      mem_words_charged := words
    end
  in
  let as_offset v =
    (* offsets beyond a sane bound abort via Out_of_gas-like behaviour *)
    match U256.to_int v with Some n when n < 0x200000 -> Some n | _ -> None
  in
  let finish outcome =
    {
      outcome;
      gas_used = gas_limit - !gas;
      steps = !steps;
      storage;
      trace_pcs = List.rev !trace;
    }
  in
  let pop () = Machine.Stack.pop stack in
  let push v = Machine.Stack.push stack v in
  let sha3_mem off len = Keccak.digest (Machine.Memory.load_bytes memory off len) in
  let rec step pc =
    match Hashtbl.find_opt by_offset pc with
    | None -> finish Stopped (* ran off the end of code *)
    | Some op ->
      incr steps;
      if record_trace then trace := pc :: !trace;
      let cost = gas_cost op in
      if !gas < cost then finish Out_of_gas
      else begin
        gas := !gas - cost;
        let next = pc + Opcode.size op in
        let binop f =
          let a = pop () in
          let b = pop () in
          push (f a b);
          step next
        in
        let cmp f =
          let a = pop () in
          let b = pop () in
          push (bool_word (f a b));
          step next
        in
        match op with
        | Opcode.STOP -> finish Stopped
        | Opcode.ADD -> binop U256.add
        | Opcode.MUL -> binop U256.mul
        | Opcode.SUB -> binop U256.sub
        | Opcode.DIV -> binop U256.div
        | Opcode.SDIV -> binop U256.sdiv
        | Opcode.MOD -> binop U256.rem
        | Opcode.SMOD -> binop U256.srem
        | Opcode.ADDMOD ->
          let a = pop () in
          let b = pop () in
          let m = pop () in
          push (U256.addmod a b m);
          step next
        | Opcode.MULMOD ->
          let a = pop () in
          let b = pop () in
          let m = pop () in
          push (U256.mulmod a b m);
          step next
        | Opcode.EXP -> binop U256.exp
        | Opcode.SIGNEXTEND ->
          let k = pop () in
          let x = pop () in
          push
            (match U256.to_int k with
            | Some k when k < 32 -> U256.signextend k x
            | _ -> x);
          step next
        | Opcode.LT -> cmp U256.lt
        | Opcode.GT -> cmp U256.gt
        | Opcode.SLT -> cmp U256.slt
        | Opcode.SGT -> cmp U256.sgt
        | Opcode.EQ -> cmp U256.equal
        | Opcode.ISZERO ->
          let a = pop () in
          push (bool_word (U256.is_zero a));
          step next
        | Opcode.AND -> binop U256.logand
        | Opcode.OR -> binop U256.logor
        | Opcode.XOR -> binop U256.logxor
        | Opcode.NOT ->
          let a = pop () in
          push (U256.lognot a);
          step next
        | Opcode.BYTE ->
          let i = pop () in
          let x = pop () in
          push
            (match U256.to_int i with
            | Some i when i < 32 -> U256.byte i x
            | _ -> U256.zero);
          step next
        | Opcode.SHL ->
          let n = pop () in
          let x = pop () in
          push
            (match U256.to_int n with
            | Some n when n < 256 -> U256.shift_left x n
            | _ -> U256.zero);
          step next
        | Opcode.SHR ->
          let n = pop () in
          let x = pop () in
          push
            (match U256.to_int n with
            | Some n when n < 256 -> U256.shift_right x n
            | _ -> U256.zero);
          step next
        | Opcode.SAR ->
          let n = pop () in
          let x = pop () in
          push
            (match U256.to_int n with
            | Some n when n < 256 -> U256.shift_right_arith x n
            | _ -> U256.shift_right_arith x 255);
          step next
        | Opcode.SHA3 -> (
          let off = pop () in
          let len = pop () in
          match (as_offset off, as_offset len) with
          | Some off, Some len ->
            push (U256.of_bytes_be (sha3_mem off len));
            step next
          | _ -> finish Out_of_gas)
        | Opcode.ADDRESS -> push env.address; step next
        | Opcode.BALANCE -> ignore (pop ()); push (U256.of_int 1_000_000); step next
        | Opcode.ORIGIN -> push env.origin; step next
        | Opcode.CALLER -> push env.caller; step next
        | Opcode.CALLVALUE -> push env.callvalue; step next
        | Opcode.CALLDATALOAD -> (
          let off = pop () in
          match as_offset off with
          | Some off -> push (Machine.Calldata.load_word cd off); step next
          | None -> push U256.zero; step next)
        | Opcode.CALLDATASIZE ->
          push (U256.of_int (Machine.Calldata.size cd));
          step next
        | Opcode.CALLDATACOPY -> (
          let dst = pop () in
          let src = pop () in
          let len = pop () in
          match (as_offset dst, as_offset src, as_offset len) with
          | Some dst, Some src, Some len ->
            Machine.Memory.store_bytes memory dst
              (Machine.Calldata.read cd src len);
            charge_memory ();
            if !gas < 0 then finish Out_of_gas else step next
          | _ -> finish Out_of_gas)
        | Opcode.CODESIZE -> push (U256.of_int (String.length code)); step next
        | Opcode.CODECOPY -> (
          let dst = pop () in
          let src = pop () in
          let len = pop () in
          match (as_offset dst, as_offset src, as_offset len) with
          | Some dst, Some src, Some len ->
            let piece =
              String.init len (fun i ->
                  let p = src + i in
                  if p < String.length code then code.[p] else '\000')
            in
            Machine.Memory.store_bytes memory dst piece;
            step next
          | _ -> finish Out_of_gas)
        | Opcode.GASPRICE -> push (U256.of_int 1); step next
        | Opcode.EXTCODESIZE -> ignore (pop ()); push U256.zero; step next
        | Opcode.EXTCODECOPY ->
          ignore (pop ()); ignore (pop ()); ignore (pop ()); ignore (pop ());
          step next
        | Opcode.RETURNDATASIZE -> push U256.zero; step next
        | Opcode.RETURNDATACOPY ->
          ignore (pop ()); ignore (pop ()); ignore (pop ());
          step next
        | Opcode.EXTCODEHASH -> ignore (pop ()); push U256.zero; step next
        | Opcode.BLOCKHASH -> ignore (pop ()); push U256.zero; step next
        | Opcode.COINBASE -> push U256.zero; step next
        | Opcode.TIMESTAMP -> push env.timestamp; step next
        | Opcode.NUMBER -> push env.number; step next
        | Opcode.PREVRANDAO -> push (U256.of_int 42); step next
        | Opcode.GASLIMIT -> push (U256.of_int gas_limit); step next
        | Opcode.CHAINID -> push env.chainid; step next
        | Opcode.SELFBALANCE -> push (U256.of_int 1_000_000); step next
        | Opcode.BASEFEE -> push (U256.of_int 7); step next
        | Opcode.POP -> ignore (pop ()); step next
        | Opcode.MLOAD -> (
          let off = pop () in
          match as_offset off with
          | Some off ->
            push (Machine.Memory.load_word memory off);
            charge_memory ();
            if !gas < 0 then finish Out_of_gas else step next
          | None -> finish Out_of_gas)
        | Opcode.MSTORE -> (
          let off = pop () in
          let v = pop () in
          match as_offset off with
          | Some off ->
            Machine.Memory.store_word memory off v;
            charge_memory ();
            if !gas < 0 then finish Out_of_gas else step next
          | None -> finish Out_of_gas)
        | Opcode.MSTORE8 -> (
          let off = pop () in
          let v = pop () in
          match as_offset off with
          | Some off ->
            Machine.Memory.store_byte memory off (U256.to_int_trunc v);
            step next
          | None -> finish Out_of_gas)
        | Opcode.SLOAD ->
          let k = pop () in
          push (Machine.Storage.load storage k);
          step next
        | Opcode.SSTORE ->
          let k = pop () in
          let v = pop () in
          Machine.Storage.store storage k v;
          step next
        | Opcode.JUMP -> (
          let t = pop () in
          match U256.to_int t with
          | Some t when Hashtbl.mem jumpdests t -> step t
          | Some t -> finish (Bad_jump t)
          | None -> finish (Bad_jump (-1)))
        | Opcode.JUMPI -> (
          let t = pop () in
          let c = pop () in
          if U256.is_zero c then step next
          else
            match U256.to_int t with
            | Some t when Hashtbl.mem jumpdests t -> step t
            | Some t -> finish (Bad_jump t)
            | None -> finish (Bad_jump (-1)))
        | Opcode.PC -> push (U256.of_int pc); step next
        | Opcode.MSIZE -> push (U256.of_int (Machine.Memory.size memory)); step next
        | Opcode.GAS -> push (U256.of_int !gas); step next
        | Opcode.JUMPDEST -> step next
        | Opcode.PUSH (_, v) -> push v; step next
        | Opcode.DUP n -> Machine.Stack.dup stack n; step next
        | Opcode.SWAP n -> Machine.Stack.swap stack n; step next
        | Opcode.LOG n ->
          ignore (pop ()); ignore (pop ());
          for _ = 1 to n do ignore (pop ()) done;
          step next
        | Opcode.CREATE | Opcode.CREATE2 ->
          let arity = if op = Opcode.CREATE then 3 else 4 in
          for _ = 1 to arity do ignore (pop ()) done;
          push U256.zero;
          step next
        | Opcode.CALL | Opcode.CALLCODE ->
          for _ = 1 to 7 do ignore (pop ()) done;
          push U256.one;
          step next
        | Opcode.DELEGATECALL | Opcode.STATICCALL ->
          for _ = 1 to 6 do ignore (pop ()) done;
          push U256.one;
          step next
        | Opcode.RETURN -> (
          let off = pop () in
          let len = pop () in
          match (as_offset off, as_offset len) with
          | Some off, Some len ->
            finish (Returned (Machine.Memory.load_bytes memory off len))
          | _ -> finish (Returned ""))
        | Opcode.REVERT -> (
          let off = pop () in
          let len = pop () in
          match (as_offset off, as_offset len) with
          | Some off, Some len ->
            finish (Reverted (Machine.Memory.load_bytes memory off len))
          | _ -> finish (Reverted ""))
        | Opcode.INVALID -> finish Invalid_op
        | Opcode.SELFDESTRUCT -> ignore (pop ()); finish Stopped
        | Opcode.UNKNOWN _ -> finish Invalid_op
      end
  in
  try step 0 with
  | Machine.Stack.Underflow | Machine.Stack.Overflow -> finish Stack_error
