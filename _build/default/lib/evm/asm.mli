(** Two-pass assembler from labelled instruction streams to runtime
    bytecode. Label references are assembled as fixed-width PUSH2
    immediates, so code addresses fit 64 KiB programs. *)

type item =
  | Op of Opcode.t
  | Label of string          (** defines a JUMPDEST at this point *)
  | Push_label of string     (** PUSH2 <address of label> *)

val assemble : item list -> string
(** Raises [Invalid_argument] on undefined or duplicate labels. *)

val assemble_ops : Opcode.t list -> string
(** Assembles a label-free stream. *)

val concat_u256 : U256.t list -> string
(** Helper: concatenation of 32-byte big-endian words (call-data building). *)
