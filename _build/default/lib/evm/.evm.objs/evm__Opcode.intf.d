lib/evm/opcode.mli: Format U256
