lib/evm/hex.mli:
