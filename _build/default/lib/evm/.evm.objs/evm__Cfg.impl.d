lib/evm/cfg.ml: Disasm Format Hashtbl List Opcode Option U256
