lib/evm/disasm.ml: Char Format List Opcode Stdlib String U256
