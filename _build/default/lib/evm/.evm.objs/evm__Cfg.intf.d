lib/evm/cfg.mli: Disasm Format Hashtbl Opcode
