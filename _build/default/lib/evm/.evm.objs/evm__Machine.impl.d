lib/evm/machine.ml: Bytes Char Hashtbl List String U256
