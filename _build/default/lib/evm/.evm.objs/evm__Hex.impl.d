lib/evm/hex.ml: Buffer Char Printf String
