lib/evm/u256.ml: Array Buffer Char Format Int64 Printf Stdlib String
