lib/evm/u256.mli: Format
