lib/evm/keccak.ml: Array Buffer Bytes Char Int64 Printf String
