lib/evm/interp.mli: Format Machine U256
