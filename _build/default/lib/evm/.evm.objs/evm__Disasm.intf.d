lib/evm/disasm.mli: Format Opcode
