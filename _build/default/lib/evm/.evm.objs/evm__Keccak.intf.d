lib/evm/keccak.mli:
