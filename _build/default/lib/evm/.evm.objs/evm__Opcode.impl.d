lib/evm/opcode.ml: Format Printf Stdlib U256
