lib/evm/interp.ml: Disasm Format Hashtbl Keccak List Machine Opcode String U256
