(* Keccak-f[1600] sponge with rate 1088 / capacity 512 and the original
   Keccak domain padding (0x01 ... 0x80), which is what Ethereum uses. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
    0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
    0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

(* Rotation offsets for the rho step, indexed by x + 5*y. *)
let rotations =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f state =
  let c = Array.make 5 0L and d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10)
                (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for i = 0 to 24 do
      state.(i) <- Int64.logxor state.(i) d.(i mod 5)
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        b.(dst) <- rotl64 state.(src) rotations.(src)
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        state.(i) <-
          Int64.logxor b.(i)
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136 (* 1088 bits *)

let digest msg =
  let state = Array.make 25 0L in
  let len = String.length msg in
  (* Padded message: msg ^ 0x01 ^ 0x00* ^ 0x80 to a multiple of the rate. *)
  let padded_len = (len / rate_bytes * rate_bytes) + rate_bytes in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 padded 0 len;
  Bytes.set padded len '\001';
  Bytes.set padded (padded_len - 1)
    (Char.chr (Char.code (Bytes.get padded (padded_len - 1)) lor 0x80));
  let lane block_off i =
    (* little-endian 64-bit lane *)
    let v = ref 0L in
    for k = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get padded (block_off + (i * 8) + k))))
    done;
    !v
  in
  for block = 0 to (padded_len / rate_bytes) - 1 do
    let off = block * rate_bytes in
    for i = 0 to (rate_bytes / 8) - 1 do
      state.(i) <- Int64.logxor state.(i) (lane off i)
    done;
    keccak_f state
  done;
  String.init 32 (fun i ->
      let w = state.(i / 8) in
      Char.chr
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical w (8 * (i mod 8))) 0xffL)))

let digest_hex msg =
  let d = digest msg in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let selector signature = String.sub (digest signature) 0 4
