let encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: bad digit"

let strip_prefix s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    String.sub s 2 (String.length s - 2)
  else s

let decode s =
  let s = strip_prefix s in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let is_valid s =
  match decode s with _ -> true | exception Invalid_argument _ -> false
