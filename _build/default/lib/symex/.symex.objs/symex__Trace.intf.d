lib/symex/trace.mli: Evm Format Hashtbl Sexpr
