lib/symex/sexpr.ml: Evm Format List Option Printf String U256
