lib/symex/sexpr.mli: Evm Format
