lib/symex/exec.mli: Sexpr Trace
