lib/symex/exec.ml: Array Disasm Evm Hashtbl Int List Map Opcode Option Printf Sexpr Stack String Trace U256
