lib/symex/trace.ml: Evm Format Hashtbl List Printf Sexpr
