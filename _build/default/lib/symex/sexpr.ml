open Evm

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bsdiv | Bmod | Bsmod | Bexp
  | Band | Bor | Bxor
  | Blt | Bgt | Bslt | Bsgt | Beq
  | Bbyte | Bshl | Bshr | Bsar | Bsignext

type unop = Unot | Uiszero

type t =
  | Const of U256.t
  | CDLoad of int
  | CDSize
  | Env of string
  | MemItem of int * t
  | Bin of binop * t * t
  | Un of unop * t

let const v = Const v
let of_int n = Const (U256.of_int n)

let eval_bin op a b =
  match op with
  | Badd -> U256.add a b
  | Bsub -> U256.sub a b
  | Bmul -> U256.mul a b
  | Bdiv -> U256.div a b
  | Bsdiv -> U256.sdiv a b
  | Bmod -> U256.rem a b
  | Bsmod -> U256.srem a b
  | Bexp -> U256.exp a b
  | Band -> U256.logand a b
  | Bor -> U256.logor a b
  | Bxor -> U256.logxor a b
  | Blt -> if U256.lt a b then U256.one else U256.zero
  | Bgt -> if U256.gt a b then U256.one else U256.zero
  | Bslt -> if U256.slt a b then U256.one else U256.zero
  | Bsgt -> if U256.sgt a b then U256.one else U256.zero
  | Beq -> if U256.equal a b then U256.one else U256.zero
  | Bbyte -> (
    match U256.to_int a with
    | Some i when i < 32 -> U256.byte i b
    | _ -> U256.zero)
  | Bshl -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_left b n
    | _ -> U256.zero)
  | Bshr -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_right b n
    | _ -> U256.zero)
  | Bsar -> (
    match U256.to_int a with
    | Some n when n < 256 -> U256.shift_right_arith b n
    | _ -> U256.shift_right_arith b 255)
  | Bsignext -> (
    match U256.to_int a with
    | Some k when k < 32 -> U256.signextend k b
    | _ -> b)

let un op e =
  match (op, e) with
  | Unot, Const v -> Const (U256.lognot v)
  | Uiszero, Const v ->
    Const (if U256.is_zero v then U256.one else U256.zero)
  | Uiszero, Un (Uiszero, Un (Uiszero, x)) -> Un (Uiszero, x)
  | _ -> Un (op, e)

let is_comparison = function
  | Blt | Bgt | Bslt | Bsgt | Beq -> true
  | _ -> false

let bin op a b =
  match (a, b) with
  (* Comparisons stay structural even on constants: branch guards keep
     their LT shape so the rules can read loop bounds out of them. A
     concrete truth value is recovered by eval_concrete when needed. *)
  | Const x, Const y when not (is_comparison op) -> Const (eval_bin op x y)
  | _ -> (
    match (op, a, b) with
    | Badd, x, Const z when U256.is_zero z -> x
    | Badd, Const z, x when U256.is_zero z -> x
    | Bmul, x, Const o when U256.equal o U256.one -> x
    | Bmul, Const o, x when U256.equal o U256.one -> x
    (* re-associate (x + c1) + c2 so head offsets stay flat *)
    | Badd, Bin (Badd, x, Const c1), Const c2 ->
      Bin (Badd, x, Const (U256.add c1 c2))
    | Badd, Const c1, Bin (Badd, x, Const c2) ->
      Bin (Badd, x, Const (U256.add c1 c2))
    | _ -> Bin (op, a, b))

let rec equal x y =
  match (x, y) with
  | Const a, Const b -> U256.equal a b
  | CDLoad a, CDLoad b -> a = b
  | CDSize, CDSize -> true
  | Env a, Env b -> String.equal a b
  | MemItem (r1, o1), MemItem (r2, o2) -> r1 = r2 && equal o1 o2
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Un (o1, a1), Un (o2, a2) -> o1 = o2 && equal a1 a2
  | _ -> false

let binop_name = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bsdiv -> "sdiv"
  | Bmod -> "%" | Bsmod -> "smod" | Bexp -> "**" | Band -> "&" | Bor -> "|"
  | Bxor -> "^" | Blt -> "<" | Bgt -> ">" | Bslt -> "s<" | Bsgt -> "s>"
  | Beq -> "==" | Bbyte -> "byte" | Bshl -> "<<" | Bshr -> ">>"
  | Bsar -> "sar" | Bsignext -> "sext"

let rec to_string = function
  | Const v -> "0x" ^ U256.to_hex v
  | CDLoad id -> Printf.sprintf "cd%d" id
  | CDSize -> "cdsize"
  | Env name -> name
  | MemItem (rid, off) -> Printf.sprintf "mem%d[%s]" rid (to_string off)
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (binop_name op) (to_string b)
  | Un (Unot, a) -> Printf.sprintf "~%s" (to_string a)
  | Un (Uiszero, a) -> Printf.sprintf "!%s" (to_string a)

let pp fmt e = Format.pp_print_string fmt (to_string e)

let to_const = function Const v -> Some v | _ -> None

let to_const_int = function Const v -> U256.to_int v | _ -> None

let rec add_terms = function
  | Bin (Badd, a, b) -> add_terms a @ add_terms b
  | e -> [ e ]

let const_offset e =
  List.fold_left
    (fun acc t ->
      match t with
      | Const v -> ( match U256.to_int v with Some n -> acc + n | None -> acc)
      | _ -> acc)
    0 (add_terms e)

let rec loads_of = function
  | CDLoad id -> [ id ]
  | MemItem (_, off) -> loads_of off
  | Bin (_, a, b) -> loads_of a @ loads_of b
  | Un (_, a) -> loads_of a
  | Const _ | CDSize | Env _ -> []

let mentions_load e id = List.mem id (loads_of e)

let rec has_mul_by e k =
  match e with
  | Bin (Bmul, Const c, x) | Bin (Bmul, x, Const c) ->
    (U256.equal c (U256.of_int k) && to_const x = None) || has_mul_by x k
  | Bin (_, a, b) -> has_mul_by a k || has_mul_by b k
  | Un (_, a) -> has_mul_by a k
  | MemItem (_, off) -> has_mul_by off k
  | _ -> false

let rec strip_masks = function
  | Bin (Band, x, Const _) | Bin (Band, Const _, x) -> strip_masks x
  | Bin (Bsignext, Const _, x) -> strip_masks x
  | Un (Uiszero, Un (Uiszero, x)) -> strip_masks x
  | e -> e

let subject e =
  match strip_masks e with
  | CDLoad id -> Some (`Load id)
  | MemItem (rid, _) -> Some (`Region rid)
  | _ -> None

let rec contains e sub =
  equal e sub
  ||
  match e with
  | Bin (_, a, b) -> contains a sub || contains b sub
  | Un (_, a) -> contains a sub
  | MemItem (_, off) -> contains off sub
  | Const _ | CDLoad _ | CDSize | Env _ -> false

let rec iszero_depth = function
  | Un (Uiszero, x) ->
    let core, n = iszero_depth x in
    (core, n + 1)
  | e -> (e, 0)

let rec eval_concrete = function
  | Const v -> Some v
  | CDLoad _ | CDSize | Env _ | MemItem _ -> None
  | Bin (op, a, b) -> (
    match (eval_concrete a, eval_concrete b) with
    | Some x, Some y -> Some (eval_bin op x y)
    | _ -> None)
  | Un (Unot, a) -> Option.map Evm.U256.lognot (eval_concrete a)
  | Un (Uiszero, a) ->
    Option.map
      (fun v -> if Evm.U256.is_zero v then Evm.U256.one else Evm.U256.zero)
      (eval_concrete a)
