(** Symbolic expressions over the call data.

    TASE treats the call data as symbols (paper §4.2): every value loaded
    from it is a fresh [CDLoad], every environment read a free [Env]
    symbol, and operations build terms. Constant subterms fold so
    concrete address arithmetic stays concrete. *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bsdiv | Bmod | Bsmod | Bexp
  | Band | Bor | Bxor
  | Blt | Bgt | Bslt | Bsgt | Beq
  | Bbyte | Bshl | Bshr | Bsar | Bsignext

type unop = Unot | Uiszero

type t =
  | Const of Evm.U256.t
  | CDLoad of int        (** value of calldata-load event [id] *)
  | CDSize
  | Env of string        (** free environment symbol *)
  | MemItem of int * t   (** word read from tagged memory region [rid] at
                             the given relative offset *)
  | Bin of binop * t * t
  | Un of unop * t

val const : Evm.U256.t -> t
val of_int : int -> t

val bin : binop -> t -> t -> t
(** Smart constructor: folds constants, normalises [iszero (iszero
    (iszero x))] chains via {!un}, keeps everything else structural. *)

val un : unop -> t -> t

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Structural queries used by the inference rules} *)

val to_const : t -> Evm.U256.t option
val to_const_int : t -> int option

val add_terms : t -> t list
(** Flatten nested additions: [a + (b + c)] gives [\[a; b; c\]]. *)

val const_offset : t -> int
(** Sum of the constant addition terms (0 if none fit in int). *)

val loads_of : t -> int list
(** All [CDLoad] ids occurring in the term. *)

val mentions_load : t -> int -> bool

val has_mul_by : t -> int -> bool
(** A multiplication by the given constant with a non-constant other
    operand occurs somewhere in the term (R2's "exp(loc) contains 32x"). *)

val strip_masks : t -> t
(** Remove outer mask applications (AND with a constant, SIGNEXTEND,
    double ISZERO) — the "raw value" a mask was applied to. *)

val subject : t -> [ `Load of int | `Region of int ] option
(** The raw parameter value a term directly denotes, if any: a [CDLoad]
    or region read, possibly under masks. *)

val contains : t -> t -> bool
(** [contains e sub]: [sub] occurs as a subterm of [e] (the paper's
    [exp(p)] "contains" [q] relation). *)

val iszero_depth : t -> t * int
(** Peel [Uiszero] applications, returning the core and their count. *)

val eval_concrete : t -> Evm.U256.t option
(** Full evaluation when the term contains no symbols. Comparisons are
    kept structural by {!bin} so guards retain their shape; this
    recovers their truth value for the executor. *)
