type t =
  | Uint of int
  | Int of int
  | Address
  | Bool
  | Bytes_n of int
  | Bytes
  | String_t
  | Sarray of t * int
  | Darray of t
  | Tuple of t list
  | Decimal
  | Vbytes of int
  | Vstring of int

type lang = Solidity | Vyper

let rec equal a b =
  match (a, b) with
  | Uint m, Uint n | Int m, Int n | Bytes_n m, Bytes_n n -> m = n
  | Address, Address | Bool, Bool | Bytes, Bytes | String_t, String_t
  | Decimal, Decimal ->
    true
  | Vbytes m, Vbytes n | Vstring m, Vstring n -> m = n
  | Sarray (x, m), Sarray (y, n) -> m = n && equal x y
  | Darray x, Darray y -> equal x y
  | Tuple xs, Tuple ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | _ -> false

let rec to_string = function
  | Uint m -> Printf.sprintf "uint%d" m
  | Int m -> Printf.sprintf "int%d" m
  | Address -> "address"
  | Bool -> "bool"
  | Bytes_n m -> Printf.sprintf "bytes%d" m
  | Bytes -> "bytes"
  | String_t -> "string"
  | Sarray (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Darray t -> Printf.sprintf "%s[]" (to_string t)
  | Tuple ts -> "(" ^ String.concat "," (List.map to_string ts) ^ ")"
  | Decimal -> "decimal"
  | Vbytes n -> Printf.sprintf "bytes[%d]" n
  | Vstring n -> Printf.sprintf "string[%d]" n

let compare a b = Stdlib.compare (to_string a) (to_string b)
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* -- parser ------------------------------------------------------------ *)

exception Parse_error of string

let fail msg = raise (Parse_error msg)

(* Split "a,b,(c,d),e" at top-level commas. *)
let split_top_commas s =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' -> incr depth; Buffer.add_char buf c
      | ')' -> decr depth; Buffer.add_char buf c
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let rec parse s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then fail "empty type";
  (* peel a trailing array suffix "[...]" *)
  if s.[n - 1] = ']' then begin
    (* find matching '[' scanning backwards (suffix has no nesting) *)
    match String.rindex_opt s '[' with
    | None -> fail "unbalanced ]"
    | Some i ->
      let inner = String.sub s (i + 1) (n - i - 2) in
      let elem_str = String.sub s 0 i in
      (* "bytes[50]" / "string[50]" are Vyper fixed-size sequences, not
         arrays, when the element spelling is exactly bytes/string *)
      if (elem_str = "bytes" || elem_str = "string") && inner <> "" then
        let len = int_of_string inner in
        if elem_str = "bytes" then Vbytes len else Vstring len
      else
        let elem = parse elem_str in
        if inner = "" then Darray elem
        else
          let k = try int_of_string inner with _ -> fail "bad array size" in
          if k <= 0 then fail "array size must be positive" else Sarray (elem, k)
  end
  else if n >= 2 && s.[0] = '(' && s.[n - 1] = ')' then
    let body = String.sub s 1 (n - 2) in
    if String.trim body = "" then Tuple []
    else Tuple (List.map parse (split_top_commas body))
  else
    match s with
    | "address" -> Address
    | "bool" -> Bool
    | "bytes" -> Bytes
    | "string" -> String_t
    | "decimal" -> Decimal
    | "uint" -> Uint 256
    | "int" -> Int 256
    | "byte" -> Bytes_n 1
    | _ ->
      let prefix p =
        if String.length s > String.length p && String.sub s 0 (String.length p) = p
        then
          Some
            (try int_of_string (String.sub s (String.length p) (n - String.length p))
             with _ -> fail ("bad width in " ^ s))
        else None
      in
      (match prefix "uint" with
      | Some m when m mod 8 = 0 && m >= 8 && m <= 256 -> Uint m
      | Some _ -> fail ("bad uint width: " ^ s)
      | None -> (
        match prefix "int" with
        | Some m when m mod 8 = 0 && m >= 8 && m <= 256 -> Int m
        | Some _ -> fail ("bad int width: " ^ s)
        | None -> (
          match prefix "bytes" with
          | Some m when m >= 1 && m <= 32 -> Bytes_n m
          | Some _ -> fail ("bad bytesM width: " ^ s)
          | None -> fail ("unknown type: " ^ s))))

let of_string s =
  try parse s with Parse_error m -> invalid_arg ("Abity.of_string: " ^ m)

let of_string_opt s = try Some (parse s) with Parse_error _ -> None

(* -- structural properties --------------------------------------------- *)

let rec is_dynamic = function
  | Bytes | String_t | Darray _ | Vbytes _ | Vstring _ -> true
  | Sarray (t, _) -> is_dynamic t
  | Tuple ts -> List.exists is_dynamic ts
  | Uint _ | Int _ | Address | Bool | Bytes_n _ | Decimal -> false

let rec head_size t =
  if is_dynamic t then 32
  else
    match t with
    | Sarray (elem, n) -> n * head_size elem
    | Tuple ts -> List.fold_left (fun acc t -> acc + head_size t) 0 ts
    | _ -> 32

let is_basic = function
  | Uint _ | Int _ | Address | Bool | Bytes_n _ -> true
  | _ -> false

let rec dims = function
  | Sarray (t, _) | Darray t -> 1 + dims t
  | _ -> 0

let rec base_elem = function
  | Sarray (t, _) | Darray t -> base_elem t
  | t -> t

let is_nested_array t =
  (* dynamic dimension somewhere below the top dimension *)
  let rec has_dynamic = function
    | Darray _ -> true
    | Sarray (t, _) -> has_dynamic t
    | _ -> false
  in
  match t with
  | Sarray (t, _) | Darray t -> has_dynamic t
  | _ -> false

let rec valid_in lang t =
  match lang with
  | Solidity -> (
    match t with
    | Decimal | Vbytes _ | Vstring _ -> false
    | Sarray (t, _) | Darray t -> valid_in Solidity t
    | Tuple ts -> ts <> [] && List.for_all (valid_in Solidity) ts
    | _ -> true)
  | Vyper -> (
    match t with
    | Bool | Int 128 | Uint 256 | Address | Bytes_n 32 | Decimal | Vbytes _
    | Vstring _ ->
      true
    | Sarray (elem, _) -> (
      (* fixed-size list of (possibly listed) basic Vyper types *)
      match elem with
      | Sarray _ -> valid_in Vyper elem
      | Bool | Int 128 | Uint 256 | Address | Bytes_n 32 | Decimal -> true
      | _ -> false)
    | Tuple ts ->
      ts <> []
      && List.for_all
           (function
             | Bool | Int 128 | Uint 256 | Address | Bytes_n 32 | Decimal ->
               true
             | _ -> false)
           ts
    | _ -> false)

let canonical_sig name params =
  name ^ "(" ^ String.concat "," (List.map to_string params) ^ ")"
