(** Runtime ABI values (actual arguments). *)

type t =
  | VUint of Evm.U256.t
  | VInt of Evm.U256.t     (** two's-complement *)
  | VBool of bool
  | VAddr of Evm.U256.t    (** 160-bit *)
  | VFixed of string       (** bytesM payload, [String.length = M] *)
  | VBytes of string
  | VString of string
  | VArray of t list
  | VTuple of t list
  | VDecimal of Evm.U256.t (** Vyper decimal: scaled integer, two's-complement *)

val type_check : Abity.t -> t -> bool
(** Whether the value inhabits the type (widths in range, array sizes
    matching static dimensions, Vyper max lengths respected). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
