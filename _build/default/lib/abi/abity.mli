(** Parameter types of Solidity and Vyper functions.

    One AST covers both languages; Vyper reuses the Solidity constructors
    for its five shared basic types ([bool], [int128], [uint256],
    [address], [bytes32]), its fixed-size list ([Sarray]) and its struct
    ([Tuple]), and adds [Decimal], [Vbytes] and [Vstring]. *)

type t =
  | Uint of int        (** [uint M], 8 <= M <= 256, M mod 8 = 0 *)
  | Int of int         (** [int M] *)
  | Address
  | Bool
  | Bytes_n of int     (** [bytesM], 1 <= M <= 32 *)
  | Bytes              (** dynamic byte sequence *)
  | String_t           (** dynamic string *)
  | Sarray of t * int  (** [T\[n\]]: n items of T (static dimension) *)
  | Darray of t        (** [T\[\]]: dynamic dimension *)
  | Tuple of t list    (** struct *)
  | Decimal            (** Vyper fixed-point decimal *)
  | Vbytes of int      (** Vyper [bytes\[maxLen\]] *)
  | Vstring of int     (** Vyper [string\[maxLen\]] *)

type lang = Solidity | Vyper

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** Canonical form, e.g. ["uint256\[3\]\[2\]"], ["(uint256,bytes)"] for a
    struct, ["bytes\[50\]"] for a Vyper fixed byte array. *)

val of_string : string -> t
(** Inverse of {!to_string}. Also accepts the aliases [uint], [int],
    [byte]. Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option

val is_dynamic : t -> bool
(** Whether the ABI encoding of the type has dynamic length (requires an
    offset field in the call data head). *)

val head_size : t -> int
(** Bytes the type occupies in the static head: 32 for dynamic types
    (the offset field), the full flattened size otherwise. *)

val is_basic : t -> bool
(** The paper's "basic types": uintM/intM/address/bool/bytesM. *)

val dims : t -> int
(** Array nesting depth ([dims (uint256\[3\]\[\]) = 2]); 0 for non-arrays. *)

val base_elem : t -> t
(** Innermost non-array type. *)

val is_nested_array : t -> bool
(** At least one of the lower n-1 dimensions is dynamic (paper §2.3.1). *)

val valid_in : lang -> t -> bool
(** Whether the type can appear as a parameter in the given language. *)

val canonical_sig : string -> t list -> string
(** [canonical_sig name params] is ["name(ty1,ty2,...)"] with structs
    spelled as parenthesised tuples, as used for function-id hashing. *)

val pp : Format.formatter -> t -> unit
