open Evm

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let random_u256_bits rng bits =
  if bits = 0 then U256.zero
  else begin
    let v = ref U256.zero in
    for _ = 1 to (bits + 63) / 64 do
      v := U256.logor (U256.shift_left !v 64)
             (U256.of_int64 (Random.State.int64 rng Int64.max_int))
    done;
    if bits >= 256 then !v
    else U256.logand !v (U256.sub (U256.shift_left U256.one bits) U256.one)
  end

let random_bytes rng n =
  String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let rec value rng ty =
  match ty with
  | Abity.Uint m -> Value.VUint (random_u256_bits rng m)
  | Abity.Int m ->
    let mag = random_u256_bits rng (m - 1) in
    Value.VInt (if Random.State.bool rng then U256.neg mag else mag)
  | Abity.Bool -> Value.VBool (Random.State.bool rng)
  | Abity.Address -> Value.VAddr (random_u256_bits rng 160)
  | Abity.Bytes_n m -> Value.VFixed (random_bytes rng m)
  | Abity.Bytes -> Value.VBytes (random_bytes rng (Random.State.int rng 70))
  | Abity.String_t ->
    Value.VString
      (String.init (Random.State.int rng 50) (fun _ ->
           Char.chr (32 + Random.State.int rng 95)))
  | Abity.Sarray (elem, n) ->
    Value.VArray (List.init n (fun _ -> value rng elem))
  | Abity.Darray elem ->
    Value.VArray (List.init (Random.State.int rng 5) (fun _ -> value rng elem))
  | Abity.Tuple tys -> Value.VTuple (List.map (value rng) tys)
  | Abity.Decimal ->
    let mag = random_u256_bits rng 100 in
    Value.VDecimal (if Random.State.bool rng then U256.neg mag else mag)
  | Abity.Vbytes max ->
    Value.VBytes (random_bytes rng (Random.State.int rng (max + 1)))
  | Abity.Vstring max ->
    Value.VString
      (String.init (Random.State.int rng (max + 1)) (fun _ ->
           Char.chr (32 + Random.State.int rng 95)))

let widths = List.init 32 (fun i -> 8 * (i + 1))

(* deployed parameters heavily favour the full-width types *)
let random_width rng =
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 -> 256
  | 5 -> 128
  | 6 -> 8
  | _ -> pick rng widths

let sol_basic rng =
  match Random.State.int rng 5 with
  | 0 -> Abity.Uint (random_width rng)
  | 1 -> Abity.Int (random_width rng)
  | 2 -> Abity.Address
  | 3 -> Abity.Bool
  | _ ->
    Abity.Bytes_n
      (if Random.State.int rng 10 < 4 then 32
       else 1 + Random.State.int rng 32)

let sol_type ?(max_depth = 3) ?(abiv2 = false) rng =
  let depth_left = max_depth in
  match Random.State.int rng (if abiv2 then 12 else 10) with
  | 0 | 1 | 2 | 3 | 4 -> sol_basic rng
  | 5 -> Abity.Bytes
  | 6 -> Abity.String_t
  | 7 when depth_left > 0 ->
    (* static array of basic elements (or of a static array) *)
    let rec static d =
      if d = 0 || Random.State.bool rng then sol_basic rng
      else Abity.Sarray (static (d - 1), 1 + Random.State.int rng 4)
    in
    Abity.Sarray (static (depth_left - 1), 1 + Random.State.int rng 4)
  | 8 when depth_left > 0 ->
    (* dynamic array: top dimension dynamic, lower dims static *)
    let rec static d =
      if d = 0 || Random.State.bool rng then sol_basic rng
      else Abity.Sarray (static (d - 1), 1 + Random.State.int rng 4)
    in
    Abity.Darray (static (depth_left - 1))
  | 9 -> sol_basic rng
  | 10 ->
    (* ABIEncoderV2 nested array: a dynamic dimension below the top *)
    let inner = Abity.Darray (sol_basic rng) in
    if Random.State.bool rng then
      Abity.Sarray (inner, 1 + Random.State.int rng 3)
    else Abity.Darray inner
  | _ ->
    (* ABIEncoderV2 struct *)
    let n = 1 + Random.State.int rng 3 in
    Abity.Tuple
      (List.init n (fun _ ->
           match Random.State.int rng 3 with
           | 0 -> sol_basic rng
           | 1 -> Abity.Darray (sol_basic rng)
           | _ -> Abity.Uint 256))

let vy_basic rng =
  pick rng
    [ Abity.Bool; Abity.Int 128; Abity.Uint 256; Abity.Address;
      Abity.Bytes_n 32; Abity.Decimal ]

let vy_type rng =
  (* struct parameters are rare in deployed Vyper contracts (and their
     flattened layout is unrecoverable, paper case 5) *)
  match Random.State.int rng 100 with
  | r when r < 55 -> vy_basic rng
  | r when r < 75 ->
    (* fixed-size list, possibly multidimensional *)
    let rec list d elem =
      if d = 0 then elem
      else list (d - 1) (Abity.Sarray (elem, 1 + Random.State.int rng 4))
    in
    list (1 + Random.State.int rng 2) (vy_basic rng)
  | r when r < 88 -> Abity.Vbytes (1 + Random.State.int rng 50)
  | r when r < 99 -> Abity.Vstring (1 + Random.State.int rng 50)
  | _ ->
    let n = 1 + Random.State.int rng 3 in
    Abity.Tuple (List.init n (fun _ -> vy_basic rng))
