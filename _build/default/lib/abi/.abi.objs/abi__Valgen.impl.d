lib/abi/valgen.ml: Abity Char Evm Int64 List Random String U256 Value
