lib/abi/decode.mli: Abity Format Value
