lib/abi/decode.ml: Abity Evm Format List Printf Result String U256 Value
