lib/abi/funsig.ml: Abity Evm Format List
