lib/abi/valgen.mli: Abity Random Value
