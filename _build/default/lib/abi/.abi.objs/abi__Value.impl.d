lib/abi/value.ml: Abity Evm Format Hex List Printf String U256
