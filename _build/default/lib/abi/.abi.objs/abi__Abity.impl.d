lib/abi/abity.ml: Buffer Format List Printf Stdlib String
