lib/abi/encode.mli: Abity Value
