lib/abi/abity.mli: Format
