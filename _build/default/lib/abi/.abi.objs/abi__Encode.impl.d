lib/abi/encode.ml: Abity Buffer Evm List String U256 Value
