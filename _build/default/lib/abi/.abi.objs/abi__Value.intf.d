lib/abi/value.mli: Abity Evm Format
