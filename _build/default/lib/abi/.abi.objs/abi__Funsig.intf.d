lib/abi/funsig.mli: Abity Format
