(** Function signatures: name, parameter types, visibility and source
    language; function-id computation. *)

type visibility = Public | External

type t = {
  name : string;
  params : Abity.t list;
  visibility : visibility;
  lang : Abity.lang;
}

val make :
  ?visibility:visibility -> ?lang:Abity.lang -> string -> Abity.t list -> t

val canonical : t -> string
(** ["name(ty1,ty2,...)"]. *)

val selector : t -> string
(** 4-byte function id: first four bytes of the Keccak-256 of
    {!canonical}. *)

val selector_hex : t -> string
val equal : t -> t -> bool

val equal_types : t -> t -> bool
(** Same parameter list (the recovery-accuracy criterion: id, number,
    order and types of parameters; names don't matter). *)

val pp : Format.formatter -> t -> unit
