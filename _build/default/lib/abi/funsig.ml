type visibility = Public | External

type t = {
  name : string;
  params : Abity.t list;
  visibility : visibility;
  lang : Abity.lang;
}

let make ?(visibility = Public) ?(lang = Abity.Solidity) name params =
  { name; params; visibility; lang }

let canonical t = Abity.canonical_sig t.name t.params
let selector t = Evm.Keccak.selector (canonical t)
let selector_hex t = Evm.Hex.encode (selector t)

let equal a b =
  a.name = b.name && a.visibility = b.visibility && a.lang = b.lang
  && List.length a.params = List.length b.params
  && List.for_all2 Abity.equal a.params b.params

let equal_types a b =
  List.length a.params = List.length b.params
  && List.for_all2 Abity.equal a.params b.params

let pp fmt t =
  Format.fprintf fmt "%s %s%s" (canonical t)
    (match t.visibility with Public -> "public" | External -> "external")
    (match t.lang with Abity.Solidity -> "" | Abity.Vyper -> " [vyper]")
