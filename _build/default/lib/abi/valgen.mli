(** Deterministic random generation of types and well-typed values, used
    by the corpus builder, the fuzzer and property-based tests. *)

val value : Random.State.t -> Abity.t -> Value.t
(** A uniformly-varied well-typed value; dynamic dimensions get small
    sizes (0-4 items) so encodings stay compact. *)

val sol_type : ?max_depth:int -> ?abiv2:bool -> Random.State.t -> Abity.t
(** A random Solidity parameter type. [abiv2] enables struct and nested
    arrays (ABIEncoderV2, Solidity >= 0.4.19); default false.
    [max_depth] bounds array nesting (default 3, matching the paper's
    observation that deployed arrays have dimension <= 3). *)

val vy_type : Random.State.t -> Abity.t
(** A random Vyper parameter type. *)

val sol_basic : Random.State.t -> Abity.t
(** One of the paper's basic types with random width. *)
