open Evm

type t =
  | VUint of U256.t
  | VInt of U256.t
  | VBool of bool
  | VAddr of U256.t
  | VFixed of string
  | VBytes of string
  | VString of string
  | VArray of t list
  | VTuple of t list
  | VDecimal of U256.t

let fits_unsigned bits v = U256.bits v <= bits

let fits_signed bits v =
  (* value in [-2^(bits-1), 2^(bits-1)) as two's complement over 256 bits *)
  let bound = U256.pow2 (bits - 1) in
  if U256.get_bit v 255 then U256.compare (U256.neg v) bound <= 0
  else U256.lt v bound

let rec type_check ty v =
  match (ty, v) with
  | Abity.Uint m, VUint x -> fits_unsigned m x
  | Abity.Int m, VInt x -> fits_signed m x
  | Abity.Bool, VBool _ -> true
  | Abity.Address, VAddr x -> fits_unsigned 160 x
  | Abity.Bytes_n m, VFixed s -> String.length s = m
  | Abity.Bytes, VBytes _ -> true
  | Abity.String_t, VString _ -> true
  | Abity.Sarray (elem, n), VArray items ->
    List.length items = n && List.for_all (type_check elem) items
  | Abity.Darray elem, VArray items -> List.for_all (type_check elem) items
  | Abity.Tuple tys, VTuple items ->
    List.length tys = List.length items && List.for_all2 type_check tys items
  | Abity.Decimal, VDecimal x -> fits_signed 168 x
  | Abity.Vbytes max, VBytes s -> String.length s <= max
  | Abity.Vstring max, VString s -> String.length s <= max
  | _ -> false

let rec to_string = function
  | VUint x -> U256.to_hex x
  | VInt x ->
    if U256.get_bit x 255 then "-" ^ U256.to_hex (U256.neg x)
    else U256.to_hex x
  | VBool b -> string_of_bool b
  | VAddr x -> "0x" ^ U256.to_hex x
  | VFixed s | VBytes s -> "0x" ^ Hex.encode s
  | VString s -> Printf.sprintf "%S" s
  | VArray items -> "[" ^ String.concat ", " (List.map to_string items) ^ "]"
  | VTuple items -> "(" ^ String.concat ", " (List.map to_string items) ^ ")"
  | VDecimal x -> "dec:" ^ U256.to_hex x

let pp fmt v = Format.pp_print_string fmt (to_string v)
