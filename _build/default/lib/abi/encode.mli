(** Spec-exact ABI encoder for call data (Solidity ABI v2; Vyper encodes
    compatibly). Implements the head/tail scheme: static values are
    encoded in place, dynamic values contribute a 32-byte offset to the
    head and their payload to the tail. *)

val encode_value : Abity.t -> Value.t -> string
(** Encoding of a single value of the given type (the tail payload for a
    dynamic type). Raises [Invalid_argument] if the value does not
    type-check. *)

val encode_args : Abity.t list -> Value.t list -> string
(** The argument block that follows the 4-byte function id. *)

val encode_call : selector:string -> Abity.t list -> Value.t list -> string
(** Full call data: selector ^ {!encode_args}. *)

val pad_right_32 : string -> string
(** Zero-pad on the right to a multiple of 32 bytes. *)
