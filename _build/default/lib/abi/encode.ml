open Evm

let word_of_int n = U256.to_bytes_be (U256.of_int n)

let pad_right_32 s =
  let n = String.length s in
  let padded = (n + 31) / 32 * 32 in
  s ^ String.make (padded - n) '\000'

(* Encode a sequence of typed values with the head/tail scheme. *)
let rec encode_seq tys vs =
  let head_len =
    List.fold_left (fun acc ty -> acc + Abity.head_size ty) 0 tys
  in
  let heads = Buffer.create 64 and tails = Buffer.create 64 in
  List.iter2
    (fun ty v ->
      if Abity.is_dynamic ty then begin
        Buffer.add_string heads (word_of_int (head_len + Buffer.length tails));
        Buffer.add_string tails (encode_one ty v)
      end
      else Buffer.add_string heads (encode_one ty v))
    tys vs;
  Buffer.contents heads ^ Buffer.contents tails

and encode_one ty v =
  match (ty, v) with
  | Abity.Uint _, Value.VUint x
  | Abity.Int _, Value.VInt x
  | Abity.Address, Value.VAddr x
  | Abity.Decimal, Value.VDecimal x ->
    U256.to_bytes_be x
  | Abity.Bool, Value.VBool b ->
    U256.to_bytes_be (if b then U256.one else U256.zero)
  | Abity.Bytes_n _, Value.VFixed s -> pad_right_32 s
  | (Abity.Bytes | Abity.Vbytes _), Value.VBytes s
  | (Abity.String_t | Abity.Vstring _), Value.VString s ->
    word_of_int (String.length s) ^ pad_right_32 s
  | Abity.Sarray (elem, n), Value.VArray items ->
    assert (List.length items = n);
    encode_seq (List.init n (fun _ -> elem)) items
  | Abity.Darray elem, Value.VArray items ->
    let n = List.length items in
    word_of_int n ^ encode_seq (List.init n (fun _ -> elem)) items
  | Abity.Tuple tys, Value.VTuple items -> encode_seq tys items
  | _ -> invalid_arg "Encode.encode_one: value does not match type"

let encode_value ty v =
  if not (Value.type_check ty v) then
    invalid_arg "Encode.encode_value: ill-typed value";
  encode_one ty v

let encode_args tys vs =
  if List.length tys <> List.length vs then
    invalid_arg "Encode.encode_args: arity mismatch";
  List.iter2
    (fun ty v ->
      if not (Value.type_check ty v) then
        invalid_arg "Encode.encode_args: ill-typed value")
    tys vs;
  encode_seq tys vs

let encode_call ~selector tys vs =
  if String.length selector <> 4 then
    invalid_arg "Encode.encode_call: selector must be 4 bytes";
  selector ^ encode_args tys vs
