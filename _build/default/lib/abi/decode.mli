(** ABI decoder: the inverse of {!Encode}. Given the recovered parameter
    types, turns raw call data back into structured values — the last
    step of making opaque transactions readable (used by the CLI's
    [decode] output and the transaction-inspection examples).

    Decoding is total on well-formed encodings produced by {!Encode};
    malformed call data yields [Error] with a description (truncated
    content, absurd offsets or lengths). Decoding is deliberately more
    lenient than {!Parchecker} validation: dirty padding is accepted and
    masked off, as the EVM itself would. *)

val decode_value : Abity.t -> string -> (Value.t, string) result
(** Decode one value whose encoding starts at offset 0 of the given
    block. *)

val decode_args : Abity.t list -> string -> (Value.t list, string) result
(** Decode the argument block following the 4-byte function id. *)

val decode_call :
  Abity.t list -> string -> (string * Value.t list, string) result
(** Split full call data into (4-byte selector, decoded arguments). *)

val pp_decoded :
  Format.formatter -> Abity.t list * Value.t list -> unit
(** Render like ["(address 0xca11..., uint256 1000)"]. *)
