open Evm

let ( let* ) = Result.bind

let word_at data off =
  if off + 32 <= String.length data then
    Ok (U256.of_bytes_be (String.sub data off 32))
  else if off <= String.length data then
    (* the EVM zero-extends reads past the end *)
    Ok
      (U256.of_bytes_be
         (String.init 32 (fun i ->
              if off + i < String.length data then data.[off + i] else '\000')))
  else Error (Printf.sprintf "read at %d past end of %d-byte data" off (String.length data))

let int_at data off what =
  let* w = word_at data off in
  match U256.to_int w with
  | Some n when n <= 0x100000 -> Ok n
  | _ -> Error (Printf.sprintf "%s at %d out of range" what off)

let rec decode_at ty data off =
  match ty with
  | Abity.Uint m ->
    let* w = word_at data off in
    Ok (Value.VUint (U256.logand w (U256.ones_low (m / 8))))
  | Abity.Int m ->
    let* w = word_at data off in
    Ok (Value.VInt (U256.signextend ((m / 8) - 1) w))
  | Abity.Address ->
    let* w = word_at data off in
    Ok (Value.VAddr (U256.logand w (U256.ones_low 20)))
  | Abity.Bool ->
    let* w = word_at data off in
    Ok (Value.VBool (not (U256.is_zero w)))
  | Abity.Bytes_n m ->
    let* w = word_at data off in
    Ok (Value.VFixed (String.sub (U256.to_bytes_be w) 0 m))
  | Abity.Decimal ->
    let* w = word_at data off in
    Ok (Value.VDecimal (U256.signextend 20 w))
  | Abity.Bytes | Abity.Vbytes _ ->
    let* len = int_at data off "bytes length" in
    if off + 32 + len > String.length data then
      Error (Printf.sprintf "bytes at %d truncated" off)
    else Ok (Value.VBytes (String.sub data (off + 32) len))
  | Abity.String_t | Abity.Vstring _ ->
    let* len = int_at data off "string length" in
    if off + 32 + len > String.length data then
      Error (Printf.sprintf "string at %d truncated" off)
    else Ok (Value.VString (String.sub data (off + 32) len))
  | Abity.Darray elem ->
    let* n = int_at data off "array length" in
    let* items = decode_seq (List.init n (fun _ -> elem)) data (off + 32) in
    Ok (Value.VArray items)
  | Abity.Sarray (elem, n) ->
    let* items = decode_seq (List.init n (fun _ -> elem)) data off in
    Ok (Value.VArray items)
  | Abity.Tuple tys ->
    let* items = decode_seq tys data off in
    Ok (Value.VTuple items)

(* Decode a head/tail sequence whose block starts at [base]. *)
and decode_seq tys data base =
  let rec go tys head_off acc =
    match tys with
    | [] -> Ok (List.rev acc)
    | ty :: rest ->
      let* v =
        if Abity.is_dynamic ty then
          let* rel = int_at data head_off "offset" in
          decode_at ty data (base + rel)
        else decode_at ty data head_off
      in
      go rest (head_off + Abity.head_size ty) (v :: acc)
  in
  go tys base []

let decode_value ty data = decode_at ty data 0

let decode_args tys data = decode_seq tys data 0

let decode_call tys calldata =
  if String.length calldata < 4 then Error "call data shorter than a function id"
  else
    let selector = String.sub calldata 0 4 in
    let args = String.sub calldata 4 (String.length calldata - 4) in
    let* vs = decode_args tys args in
    Ok (selector, vs)

let pp_decoded fmt (tys, vs) =
  Format.fprintf fmt "(";
  List.iteri
    (fun i (ty, v) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s %s" (Abity.to_string ty) (Value.to_string v))
    (List.combine tys vs);
  Format.fprintf fmt ")"
