(** ContractFuzzer / ContractFuzzer− (§6.2).

    Both fuzzers run the same contracts under the same execution budget
    on the concrete interpreter and use the same oracle (an executed
    INVALID trap). ContractFuzzer knows the function signature — it
    generates well-typed, correctly encoded arguments and mutates them
    with a dictionary of constants harvested from the bytecode's PUSH
    immediates. ContractFuzzer− is the paper's ablation: it does not
    know the signature and feeds random byte strings (with the same
    dictionary available, but no knowledge of argument positions or
    encoding). *)

type mode =
  | Signature_aware of Abi.Abity.t list
  | Raw

type campaign_result = {
  bug_found : bool;
  executions : int;          (** executions actually spent *)
  first_hit : int option;    (** execution index of the first trap *)
}

val dictionary : string -> Evm.U256.t list
(** Constants harvested from PUSH immediates (>= 4 bytes wide). *)

val run_campaign :
  ?budget:int ->
  rng:Random.State.t ->
  code:string ->
  selector:string ->
  mode ->
  campaign_result
(** [budget] defaults to 96 executions. *)

val run_coverage_campaign :
  ?budget:int ->
  rng:Random.State.t ->
  code:string ->
  selector:string ->
  Abi.Abity.t list ->
  campaign_result
(** Signature-aware fuzzing with execution-trace feedback, the way the
    real ContractFuzzer iterates: inputs that reach new program counters
    are kept as seeds and mutated one argument at a time. *)
