(** ParChecker (§6.1): validation of actual arguments against a
    recovered function signature, including short-address-attack
    detection.

    The checker walks the call data according to the ABI layout of the
    recovered parameter types and verifies every padding rule of
    Table 6: left zero padding for unsigned integers and addresses, sign
    extension for signed integers, 0/1 for bool, right zero padding for
    bytesM/bytes/string, and well-formed offset/num fields for dynamic
    data. *)

type verdict = Valid | Invalid of string

val check_args : Abi.Abity.t list -> string -> verdict
(** [check_args params args] validates the argument block (the call
    data after the 4-byte function id). *)

val check_call : Abi.Abity.t list -> string -> verdict
(** Validates full call data (id + arguments). *)

val is_short_address_attack : Abi.Abity.t list -> string -> bool
(** The §6.1 detector: the actual arguments are shorter than the static
    layout requires and the missing low-order address bytes were
    complemented from the following argument. Applies to signatures
    ending in [..., address, uint256] like ERC-20 [transfer]. *)

(** Synthetic transaction stream for the §6.1 experiment. *)
type tx_label = Ok_tx | Short_address | Bad_padding | Truncated

type tx = {
  fsig : Abi.Funsig.t;
  calldata : string;
  label : tx_label;
}

val gen_tx_stream :
  seed:int -> n:int -> Abi.Funsig.t list -> tx list
(** Mostly well-formed invocations with ≈1 % malformed ones, including
    short-address attacks against transfer-like signatures. *)
