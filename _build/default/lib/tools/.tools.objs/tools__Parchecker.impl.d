lib/tools/parchecker.ml: Abi Array Bytes Char Evm List Printf Random Stdlib String U256
