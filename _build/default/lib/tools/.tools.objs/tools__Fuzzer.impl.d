lib/tools/fuzzer.ml: Abi Char Disasm Evm Hashtbl Interp List Opcode Random String U256
