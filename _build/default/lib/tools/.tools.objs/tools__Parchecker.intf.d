lib/tools/parchecker.mli: Abi
