lib/tools/baseline.mli: Abi Efsd
