lib/tools/erays.mli:
