lib/tools/eraysplus.ml: Abi Buffer Erays Format Hashtbl List Printf Sigrec String
