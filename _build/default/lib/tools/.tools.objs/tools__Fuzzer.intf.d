lib/tools/fuzzer.mli: Abi Evm Random
