lib/tools/efsd.ml: Abi Hashtbl List Random
