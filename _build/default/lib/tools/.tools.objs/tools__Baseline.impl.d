lib/tools/baseline.ml: Abi Array Disasm Efsd Evm Hashtbl Hex List Opcode Sigrec Stdlib U256
