lib/tools/eraysplus.mli: Erays Format
