lib/tools/efsd.mli: Abi
