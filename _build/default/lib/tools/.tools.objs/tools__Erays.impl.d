lib/tools/erays.ml: Array Cfg Disasm Evm Hashtbl List Opcode Printf Sigrec String U256
