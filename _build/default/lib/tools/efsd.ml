type t = (string, Abi.Funsig.t) Hashtbl.t

let create () = Hashtbl.create 1024
let add t fsig = Hashtbl.replace t (Abi.Funsig.selector fsig) fsig

let populate t ~coverage ~seed sigs =
  let rng = Random.State.make [| seed; 0xef5d |] in
  List.iter
    (fun fsig -> if Random.State.float rng 1.0 < coverage then add t fsig)
    sigs

let lookup t selector = Hashtbl.find_opt t selector
let size t = Hashtbl.length t
