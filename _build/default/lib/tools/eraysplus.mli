(** Erays+ (§6.3): improve the readability of lifted code using the
    function signatures recovered by SigRec.

    The enhancement (i) heads each function with its recovered
    signature, (ii) renames registers copied from parameters to
    [argN]/[num(argN)], (iii) annotates them with the recovered types,
    and (iv) collapses compiler-generated parameter-access code (offset
    arithmetic, masks, copy loops) into single assignments. *)

type enhanced = {
  fn : Erays.lifted_fn;       (** the original lifting *)
  header : string;            (** recovered signature line *)
  stmts : string list;        (** rewritten statements *)
  added_types : int;
  added_arg_names : int;
  added_num_names : int;
  removed_lines : int;
}

val enhance : string -> enhanced list
(** [enhance bytecode] runs SigRec and rewrites every lifted
    function. *)

val pp : Format.formatter -> enhanced -> unit
