type enhanced = {
  fn : Erays.lifted_fn;
  header : string;
  stmts : string list;
  added_types : int;
  added_arg_names : int;
  added_num_names : int;
  removed_lines : int;
}

(* Replace whole-identifier occurrences of [word] by [name]. *)
let replace_word text word name =
  let n = String.length text and m = String.length word in
  let is_ident c =
    match c with '0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
  in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if
      !i + m <= n
      && String.sub text !i m = word
      && (!i + m = n || not (is_ident text.[!i + m]))
      && (!i = 0 || not (is_ident text.[!i - 1]))
    then begin
      Buffer.add_string buf name;
      i := !i + m
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Registers assigned from the call data become parameter names; every
   statement that only exists to access parameters (offset arithmetic,
   masks, copy loops) is folded away and replaced by one assignment per
   parameter. *)
let enhance_fn (recovered : Sigrec.Recover.recovered) (fn : Erays.lifted_fn) =
  let params = recovered.Sigrec.Recover.params in
  let header =
    Printf.sprintf "function 0x%s(%s)"
      recovered.Sigrec.Recover.selector_hex
      (String.concat ", "
         (List.mapi
            (fun i ty ->
              Printf.sprintf "%s arg%d" (Abi.Abity.to_string ty) (i + 1))
            params))
  in
  (* name the registers produced by calldata reads, in head order *)
  let arg_counter = ref 0 and num_counter = ref 0 in
  let renames = Hashtbl.create 16 in
  let folded = ref 0 in
  let kept = ref [] in
  let declarations =
    List.mapi
      (fun i ty ->
        Printf.sprintf "%s arg%d = calldata.arg(%d)" (Abi.Abity.to_string ty)
          (i + 1) (i + 1))
      params
  in
  List.iter
    (fun (s : Erays.stmt) ->
      if s.Erays.reads_calldata then begin
        (* parameter-access code: fold into the declaration block *)
        incr folded;
        (match String.index_opt s.Erays.text '=' with
        | Some eq when String.length s.Erays.text > 4 ->
          let reg = String.trim (String.sub s.Erays.text 0 eq) in
          if String.length reg > 0 && reg.[0] = 'v' then begin
            if
              !arg_counter < List.length params
              && not (Hashtbl.mem renames reg)
            then begin
              (* the first read of each parameter region names an arg;
                 the num-field read of a dynamic parameter names its
                 length *)
              let is_num =
                String.length s.Erays.text >= 2
                && !arg_counter > 0
                &&
                let sub = Printf.sprintf "calldata[v" in
                let rec find i =
                  i + String.length sub <= String.length s.Erays.text
                  && (String.sub s.Erays.text i (String.length sub) = sub
                     || find (i + 1))
                in
                find 0
              in
              if is_num then begin
                incr num_counter;
                Hashtbl.replace renames reg
                  (Printf.sprintf "num(arg%d)" !arg_counter)
              end
              else begin
                incr arg_counter;
                Hashtbl.replace renames reg
                  (Printf.sprintf "arg%d" !arg_counter)
              end
            end
          end
        | _ -> ())
      end
      else begin
        let text =
          Hashtbl.fold
            (fun reg name acc -> replace_word acc reg name)
            renames s.Erays.text
        in
        kept := text :: !kept
      end)
    fn.Erays.stmts;
  let stmts = declarations @ List.rev !kept in
  {
    fn;
    header;
    stmts;
    added_types = List.length params;
    added_arg_names = Hashtbl.length renames + List.length params;
    added_num_names = !num_counter;
    removed_lines = !folded;
  }

let enhance bytecode =
  let recovered = Sigrec.Recover.recover bytecode in
  let lifted = Erays.lift bytecode in
  List.filter_map
    (fun (fn : Erays.lifted_fn) ->
      match
        List.find_opt
          (fun r -> r.Sigrec.Recover.selector_hex = fn.Erays.selector_hex)
          recovered
      with
      | Some r -> Some (enhance_fn r fn)
      | None -> None)
    lifted

let pp fmt e =
  Format.fprintf fmt "%s {@." e.header;
  List.iter (fun s -> Format.fprintf fmt "  %s@." s) e.stmts;
  Format.fprintf fmt "}@."
