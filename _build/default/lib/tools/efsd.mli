(** A model of the Ethereum Function Signature Database (EFSD) that
    OSD, EBD, JEB and Eveem consult. The paper's finding is that such
    databases are incomplete — more than 49 % of open-source function
    signatures are missing — so the database is populated with a
    configurable fraction of the corpus. *)

type t

val create : unit -> t
val add : t -> Abi.Funsig.t -> unit

val populate :
  t -> coverage:float -> seed:int -> Abi.Funsig.t list -> unit
(** Deterministically add ≈[coverage] of the given signatures. *)

val lookup : t -> string -> Abi.Funsig.t option
(** Lookup by 4-byte function id. *)

val size : t -> int
